package backscatter

import "dnsbackscatter/internal/faults"

// Fault injection surface: seeded, deterministic failure storms for the
// DNS path (packet loss, latency, TC truncation, SERVFAIL bursts, dead
// authorities). A spec string "profile@seed" selects a plan; the same
// spec replays the identical storm at any worker count. See DESIGN §8.
type (
	// FaultProfile parameterizes one failure regime (loss rate, burst
	// windows, flap periods).
	FaultProfile = faults.Profile
	// FaultPlan is an immutable seeded fault schedule; nil injects
	// nothing. Install on live servers with AuthorityServer.SetFaults.
	FaultPlan = faults.Plan
)

// FaultProfiles returns the built-in failure regimes (none, lossy,
// middlebox, servfail-storm, flaky-auth, chaos), mildest first.
func FaultProfiles() []FaultProfile { return faults.Profiles() }

// ParseFaults builds a fault plan from a "profile" or "profile@seed"
// spec. "" and "none" return a nil plan (no faults); unknown profiles or
// malformed seeds error.
func ParseFaults(spec string) (*FaultPlan, error) { return faults.Parse(spec) }
