package backscatter

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// streamSpec is the configuration every root stream test replays: small
// enough that the tiny dataset overflows nothing, epoching on the
// dataset's own interval.
func streamSpec(workers int) StreamSpec {
	return StreamSpec{
		SampleK:     128,
		HHHCapacity: 256,
		Workers:     workers,
	}
}

// trainTiny trains the CART model the stream tests score with — cheap,
// deterministic, and shared between the batch and stream paths.
func trainTiny(t *testing.T) (*Dataset, *Model) {
	t.Helper()
	d := tiny(t)
	m, err := d.TrainWith(AlgCART, 1, d.Labels)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return d, m
}

// TestStreamWorkerDeterminism extends the repo's worker-invariance
// matrix to the streaming engine: replaying the dataset at workers
// {1, 8} must produce byte-identical snapshots, status, and comparison
// reports. `make determinism` runs this under -race.
func TestStreamWorkerDeterminism(t *testing.T) {
	d, model := trainTiny(t)
	var snaps, statuses, reports [][]byte
	for _, w := range []int{1, 8} {
		e := d.NewStream(streamSpec(w), model)
		const chunk = 4096
		for i := 0; i < len(d.Records); i += chunk {
			e.Ingest(d.Records[i:min(i+chunk, len(d.Records))])
		}
		e.Tick(d.Spec.Start.Add(d.Spec.Duration))
		snaps = append(snaps, e.Snapshot())
		statuses = append(statuses, e.StatusJSON())

		cmp := d.CompareStream(streamSpec(w), model)
		js, err := json.Marshal(cmp)
		if err != nil {
			t.Fatalf("marshal comparison: %v", err)
		}
		reports = append(reports, js)
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Error("engine snapshot differs between workers 1 and 8")
	}
	if !bytes.Equal(statuses[0], statuses[1]) {
		t.Errorf("engine status differs between workers 1 and 8:\n%s\n%s", statuses[0], statuses[1])
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Errorf("CompareStream differs between workers 1 and 8:\n%s\n%s", reports[0], reports[1])
	}
}

// TestCompareStreamGolden pins the batch-vs-stream accuracy gap as a
// golden artifact: per-class precision/recall for both paths live in
// testdata/stream_delta.json, and every run must stay within tolerance
// of the pinned values. Regenerate deliberately with
// BS_UPDATE_GOLDEN=1 go test -run TestCompareStreamGolden .
func TestCompareStreamGolden(t *testing.T) {
	d, model := trainTiny(t)
	cmp := d.CompareStream(streamSpec(0), model)

	if cmp.StreamVerdicts == 0 {
		t.Fatal("stream path produced no verdicts")
	}
	if cmp.Agreement < 0.5 {
		t.Fatalf("stream agrees with batch on only %.0f%% of shared originators",
			100*cmp.Agreement)
	}
	if len(cmp.PerClass) == 0 {
		t.Fatal("comparison has no per-class rows")
	}

	golden := filepath.Join("testdata", "stream_delta.json")
	if os.Getenv("BS_UPDATE_GOLDEN") == "1" {
		js, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := os.WriteFile(golden, append(js, '\n'), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		t.Logf("updated %s", golden)
	}
	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with BS_UPDATE_GOLDEN=1): %v", err)
	}
	var want StreamComparison
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}

	// The run is deterministic, so drift beyond tolerance means the
	// pipeline's accuracy characteristics changed — re-pin deliberately,
	// don't loosen. The tolerance absorbs small intentional changes
	// upstream (extractor tweaks) without churning the artifact.
	const tol = 0.02
	near := func(a, b float64) bool { return math.Abs(a-b) <= tol }
	if cmp.BatchVerdicts != want.BatchVerdicts || cmp.StreamVerdicts != want.StreamVerdicts {
		t.Errorf("verdict counts drifted: batch %d->%d stream %d->%d",
			want.BatchVerdicts, cmp.BatchVerdicts, want.StreamVerdicts, cmp.StreamVerdicts)
	}
	if !near(cmp.Agreement, want.Agreement) {
		t.Errorf("agreement drifted: %.4f -> %.4f", want.Agreement, cmp.Agreement)
	}
	wantByClass := make(map[string]ClassDelta, len(want.PerClass))
	for _, w := range want.PerClass {
		wantByClass[w.Class] = w
	}
	for _, got := range cmp.PerClass {
		w, ok := wantByClass[got.Class]
		if !ok {
			t.Errorf("class %s appeared since the golden was pinned", got.Class)
			continue
		}
		delete(wantByClass, got.Class)
		for _, f := range []struct {
			name      string
			got, want float64
		}{
			{"batch precision", got.BatchPrecision, w.BatchPrecision},
			{"stream precision", got.StreamPrecision, w.StreamPrecision},
			{"batch recall", got.BatchRecall, w.BatchRecall},
			{"stream recall", got.StreamRecall, w.StreamRecall},
			{"precision delta", got.PrecisionDelta, w.PrecisionDelta},
			{"recall delta", got.RecallDelta, w.RecallDelta},
		} {
			if !near(f.got, f.want) {
				t.Errorf("%s %s drifted: %.4f -> %.4f", got.Class, f.name, f.want, f.got)
			}
		}
	}
	for cls := range wantByClass {
		t.Errorf("class %s vanished from the comparison", cls)
	}
}

// TestNewStreamDefaults checks the dataset wiring: the engine inherits
// the dataset's interval as its epoch and its analyzability threshold.
func TestNewStreamDefaults(t *testing.T) {
	d := tiny(t)
	e := d.NewStream(StreamSpec{}, nil)
	e.Ingest(d.Records[:min(2000, len(d.Records))])
	e.Tick(d.Spec.Start.Add(d.Spec.Duration))
	st := e.Status()
	if st.Records == 0 || st.Tracked == 0 {
		t.Fatalf("engine saw nothing: %+v", st)
	}
	if st.Epochs == 0 {
		t.Fatal("final tick did not score — epoch wiring broken")
	}
	if len(e.Verdicts()) != 0 {
		t.Error("nil scorer must produce no verdicts")
	}
	spec := DefaultStreamSpec()
	if spec.Epoch == 0 || spec.MaxOriginators == 0 || spec.SampleK == 0 {
		t.Errorf("DefaultStreamSpec has zero fields: %+v", spec)
	}
}
