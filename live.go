package backscatter

import (
	"dnsbackscatter/internal/dnsserver"
	"dnsbackscatter/internal/dnssim"
)

// Live deployment surface: run the paper's collection architecture over
// real UDP sockets — authoritative reverse-DNS servers at any level of the
// hierarchy, stub clients with retransmit behavior, and a caching
// recursive resolver. See cmd/bsserve and examples/livehierarchy.
type (
	// OriginatorProfile is the reverse-DNS posture of one originator:
	// PTR name and TTL, NXDomain, or an unreachable final authority.
	OriginatorProfile = dnssim.OriginatorProfile
	// AuthorityServer is a UDP authoritative server with a sensor sink.
	AuthorityServer = dnsserver.Server
	// AuthoritySink receives one record per observed reverse query.
	AuthoritySink = dnsserver.Sink
	// PTRClient is a stub resolver performing reverse lookups.
	PTRClient = dnsserver.Client
	// Recursor is a caching recursive resolver walking a live hierarchy.
	Recursor = dnsserver.Recursor
	// Delegation names the authoritative server for a child reverse zone.
	Delegation = dnsserver.Delegation
	// ScanTrace reports which hierarchy levels one resolution contacted.
	ScanTrace = dnsserver.Trace
)

// ListenFinalAuthority starts a UDP final authority answering PTR queries
// from profile (nil = a deterministic synthetic zone). Its sink observes
// the backscatter of whatever activity drives lookups at it.
func ListenFinalAuthority(addr, sensorName string, profile func(Addr) OriginatorProfile) (*AuthorityServer, error) {
	var pf dnssim.ProfileFunc
	if profile != nil {
		pf = profile
	}
	return dnsserver.Listen(addr, sensorName, pf)
}

// ListenReferralAuthority starts a UDP referral server (a root or national
// registry): pick returns the delegation covering each queried originator,
// or false for undelegated space (answered NXDomain).
func ListenReferralAuthority(addr, sensorName string, pick func(Addr) (Delegation, bool)) (*AuthorityServer, error) {
	s, err := dnsserver.ListenHandler(addr, sensorName, nil)
	if err != nil {
		return nil, err
	}
	dnsserver.InstallReferralHandler(s, pick)
	return s, nil
}

// NewRecursor returns a caching recursive resolver rooted at the given
// server addresses.
func NewRecursor(roots ...string) *Recursor { return dnsserver.NewRecursor(roots...) }
