package backscatter

import (
	"dnsbackscatter/internal/classify"
	"dnsbackscatter/internal/groundtruth"
	"dnsbackscatter/internal/ml"
	"dnsbackscatter/internal/rng"
)

// Algorithm selects the classification algorithm (§III-D).
type Algorithm int

// The paper's three algorithms.
const (
	AlgCART Algorithm = iota
	AlgRandomForest
	AlgSVM
)

// String returns the paper's algorithm label.
func (a Algorithm) String() string {
	switch a {
	case AlgCART:
		return "CART"
	case AlgRandomForest:
		return "RF"
	case AlgSVM:
		return "SVM"
	default:
		return "unknown"
	}
}

// Trainer returns the underlying ml.Trainer.
func (a Algorithm) Trainer() ml.Trainer {
	switch a {
	case AlgCART:
		return ml.CART{Config: ml.CARTConfig{MaxDepth: 12}}
	case AlgSVM:
		return ml.SVM{}
	default:
		return ml.Forest{Config: ml.ForestConfig{Trees: 60}}
	}
}

// Model is a trained originator classifier.
type Model = classify.Model

// LabeledSet is a curated set of (originator, class) labels.
type LabeledSet = groundtruth.LabeledSet

// TrainClassifier trains the paper's preferred configuration (Random
// Forest, majority of votes runs) on the dataset's curated labels over the
// full span. votes <= 1 trains a single forest.
func (d *Dataset) TrainClassifier(votes int) (*Model, error) {
	return d.TrainWith(AlgRandomForest, votes, d.Labels)
}

// TrainWith trains a specific algorithm on the given labels. On datasets
// built with BuildObserved, training and later ClassifyAll calls record
// into the dataset's registry as the "train" and "classify" stages.
func (d *Dataset) TrainWith(alg Algorithm, votes int, labels *LabeledSet) (*Model, error) {
	p := classify.NewPipeline()
	p.Trainer = alg.Trainer()
	p.Obs = d.obs
	p.Acct = d.acct
	p.Workers = d.Spec.Workers
	if votes > 1 {
		p.Votes = votes
	}
	st := rng.NewSource(d.Spec.Seed).Stream("train-" + alg.String())
	return p.Train(d.Whole(), labels, st)
}

// Validate runs the paper's §IV-C protocol on this dataset: `runs` random
// splits at trainFrac, returning mean±std metrics for the algorithm.
func (d *Dataset) Validate(alg Algorithm, trainFrac float64, runs int) (ml.ValidationResult, error) {
	p := classify.NewPipeline()
	ds, _, err := p.TrainingSet(d.Whole(), d.Labels)
	if err != nil {
		return ml.ValidationResult{}, err
	}
	st := rng.NewSource(d.Spec.Seed).Stream("validate-" + alg.String())
	v := ml.Validator{
		Trainer:   alg.Trainer(),
		TrainFrac: trainFrac,
		Runs:      runs,
		Workers:   d.Spec.Workers,
		Obs:       d.obs,
		Acct:      d.acct,
	}
	return v.Run(ds, st), nil
}

// FeatureImportance trains a Random Forest on the dataset's labels and
// returns the top-k features by Gini importance with their names
// (Table IV).
func (d *Dataset) FeatureImportance(k int) ([]string, []float64, error) {
	p := classify.NewPipeline()
	ds, _, err := p.TrainingSet(d.Whole(), d.Labels)
	if err != nil {
		return nil, nil, err
	}
	st := rng.NewSource(d.Spec.Seed).Stream("importance")
	cfg := ml.ForestConfig{Trees: 100, Workers: d.Spec.Workers, Obs: d.obs, Acct: d.acct}
	forest := ml.Forest{Config: cfg}.TrainForest(ds, st)
	names := FeatureNames()
	var outNames []string
	var outVals []float64
	for _, fr := range forest.TopFeatures(k) {
		outNames = append(outNames, names[fr.Feature])
		outVals = append(outVals, fr.Importance)
	}
	return outNames, outVals, nil
}
