package backscatter

import (
	"fmt"
	"sync"
	"time"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/alert"
	"dnsbackscatter/internal/classify"
	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/faults"
	"dnsbackscatter/internal/features"
	"dnsbackscatter/internal/groundtruth"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/prof"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
	"dnsbackscatter/internal/trace"
	"dnsbackscatter/internal/world"
)

// DatasetSpec describes a dataset to simulate — the knobs of the paper's
// Table I plus simulation-scale controls.
type DatasetSpec struct {
	Name      string
	Authority string   // "jp", "b-root", or "m-root"
	Start     Time     // collection start
	Duration  Duration // collection length
	Interval  Duration // feature-aggregation interval d (§III-B)
	Sample    int      // M-Root sampling divisor (1 = unsampled)
	Seed      uint64

	// Scale multiplies class populations; RateScale multiplies campaign
	// touch rates. Together they size the simulation.
	Scale     float64
	RateScale float64

	// Population is the steady-state concurrent campaigns per class
	// before Scale.
	Population [NumClasses]int

	// MinQueriers is the analyzability threshold; the paper uses 20.
	MinQueriers int

	// Heartbleed injects the 2014-04-07 scanning burst when the window
	// covers it.
	Heartbleed bool

	// Darknet enables the /17+/18 scan monitors.
	Darknet bool

	// JPShare boosts the fraction of originators in jp space.
	JPShare float64

	// QMinFraction is the share of resolvers performing QNAME
	// minimization, which hides lookups from root and national sensors
	// (§VII). 0 matches the paper's 2014-era world.
	QMinFraction float64

	// TeamProb is the probability a scan campaign spawns as a /24 team
	// (§VI-B). Negative disables teams; 0 uses the world default.
	TeamProb float64

	// Workers bounds the goroutines each pipeline stage (extract, train,
	// validate, classify) may use; <= 0 uses runtime.GOMAXPROCS(0) and 1
	// reproduces the sequential code path exactly. Every worker count
	// yields byte-identical snapshots, models, and metrics.
	Workers int

	// Faults degrades the simulated DNS path with a seeded fault plan,
	// written as "profile" or "profile@seed" (e.g. "lossy@42"; see
	// FaultProfiles). Empty or "none" keeps the fault-free network. The
	// schedule is a pure function of the spec, so a faulted dataset is
	// byte-identical at any worker count.
	Faults string

	// Trace enables end-to-end query tracing with head-based sampling:
	// 0 disables tracing, 1 traces every lookup, and N > 1 keeps the
	// deterministic 1/N of lookups whose trace ID satisfies
	// id % N == 0. Trace IDs are pure hashes of (seed, querier, qname,
	// time), so the sampled subset — and the rendered JSONL — is
	// byte-identical at any worker count.
	Trace int

	// NoReuse disables the extraction pipeline's scratch reuse (columnar
	// shard buffers, vector scratch pools), allocating fresh memory per
	// batch instead. Output is byte-identical either way; the flag exists
	// so invariance tests can prove it. Production runs leave it false.
	NoReuse bool

	// Alerts attaches a declarative alert/SLO rule file (the alerts.rules
	// grammar; see ParseAlertRules) evaluated on demand by
	// Dataset.Alerts against the build's windowed metrics and traces.
	// "default" selects the built-in DefaultAlertRules; empty disables
	// alerting (Dataset.Alerts returns a nil, fully no-op engine).
	// Evaluation is clocked purely by simulated time, so the transition
	// log is byte-identical at any worker count.
	Alerts string
}

// Scaled returns a copy with populations and rates multiplied by f — the
// single knob for shrinking simulations in tests.
func (s DatasetSpec) Scaled(f float64) DatasetSpec {
	s.Scale *= f
	return s
}

// WithParallelism returns a copy that runs pipeline stages on up to n
// goroutines (see Workers). Output is byte-identical for every n.
func (s DatasetSpec) WithParallelism(n int) DatasetSpec {
	s.Workers = n
	return s
}

// WithFaults returns a copy whose DNS path degrades under the given
// "profile@seed" fault spec (see Faults).
func (s DatasetSpec) WithFaults(spec string) DatasetSpec {
	s.Faults = spec
	return s
}

// WithoutScratchReuse returns a copy whose extraction pipeline allocates
// fresh buffers per batch instead of reusing scratch (see NoReuse).
// Output bytes are identical; only allocation behavior changes.
func (s DatasetSpec) WithoutScratchReuse() DatasetSpec {
	s.NoReuse = true
	return s
}

// WithTracing returns a copy that records end-to-end lookup traces,
// keeping the deterministic 1/n sample (n = 1 traces everything; see
// Trace).
func (s DatasetSpec) WithTracing(n int) DatasetSpec {
	s.Trace = n
	return s
}

// WithAlerts returns a copy that evaluates the given alert/SLO rule
// text ("default" for the built-in rules; see Alerts).
func (s DatasetSpec) WithAlerts(rules string) DatasetSpec {
	s.Alerts = rules
	return s
}

// basePopulation reflects the relative class sizes of Table V.
func basePopulation() [NumClasses]int {
	var p [NumClasses]int
	p[Spam] = 36
	p[Scan] = 30
	p[Mail] = 22
	p[CDN] = 14
	p[P2P] = 12
	p[AdTracker] = 8
	p[Cloud] = 8
	p[Crawler] = 6
	p[DNSServer] = 6
	p[Push] = 5
	p[NTP] = 4
	p[Update] = 3
	return p
}

// JPDitl is the ccTLD 50-hour dataset (Table I row 1): unsampled, low in
// the hierarchy, jp-space originators only.
func JPDitl() DatasetSpec {
	return DatasetSpec{
		Name:        "JP-ditl",
		Authority:   "jp",
		Start:       simtime.Date(2014, time.April, 15, 11, 0),
		Duration:    simtime.Hours(50),
		Interval:    simtime.Hours(50),
		Sample:      1,
		Seed:        1404,
		Scale:       1,
		RateScale:   0.6,
		Population:  jpPopulation(),
		MinQueriers: 20,
		Darknet:     true,
		JPShare:     0.5,
		TeamProb:    0.02,
	}
}

// jpPopulation skews toward spam, the most common class the paper sees at
// the JP authority (Table V); scan teams otherwise dominate the small
// simulated ccTLD view.
func jpPopulation() [NumClasses]int {
	p := basePopulation()
	p[Spam] = 52
	p[Scan] = 18
	return p
}

// BPostDitl is B-Root's 36-hour dataset (taken shortly after DITL 2014).
func BPostDitl() DatasetSpec {
	s := JPDitl()
	s.Name = "B-post-ditl"
	s.TeamProb = 0.08
	s.Population = basePopulation()
	s.Authority = "b-root"
	s.Start = simtime.Date(2014, time.April, 28, 19, 56)
	s.Duration = simtime.Hours(36)
	s.Interval = simtime.Hours(36)
	s.Seed = 1428
	s.RateScale = 0.8
	s.JPShare = 0.12
	return s
}

// MDitl is M-Root's 50-hour DITL 2014 dataset.
func MDitl() DatasetSpec {
	s := JPDitl()
	s.Name = "M-ditl"
	s.TeamProb = 0.08
	s.Population = basePopulation()
	s.Authority = "m-root"
	s.Seed = 1415
	s.RateScale = 0.8
	s.JPShare = 0.12
	return s
}

// MDitl2015 is M-Root's DITL 2015 collection.
func MDitl2015() DatasetSpec {
	s := MDitl()
	s.Name = "M-ditl-2015"
	s.Start = simtime.Date(2015, time.April, 13, 11, 0)
	s.Seed = 1513
	return s
}

// MSampled is the nine-month, 1:10-sampled M-Root dataset used for the
// paper's longitudinal analysis (§VI-C), with weekly feature intervals
// (d = 7 days) and the Heartbleed window inside its span.
func MSampled() DatasetSpec {
	s := JPDitl()
	s.Name = "M-sampled"
	s.TeamProb = 0.08
	s.Authority = "m-root"
	s.Start = simtime.Date(2014, time.February, 16, 0, 0)
	s.Duration = simtime.Days(252) // 36 weeks ≈ 9 months
	s.Interval = simtime.Week
	s.Sample = 10
	s.Seed = 1402
	s.RateScale = 0.45
	s.JPShare = 0.12
	s.Heartbleed = true
	// Longitudinal trend shapes (Figures 11-15) need a deeper malicious
	// population than the two-day snapshots.
	s.Population[Scan] = 48
	s.Population[Spam] = 48
	return s
}

// BLong is B-Root's five-month unsampled dataset (controlled experiments,
// §IV-D).
func BLong() DatasetSpec {
	s := JPDitl()
	s.Name = "B-long"
	s.TeamProb = 0.08
	s.Population = basePopulation()
	s.Authority = "b-root"
	s.Start = simtime.Date(2015, time.January, 1, 0, 0)
	s.Duration = simtime.Days(150)
	s.Interval = simtime.Week
	s.Seed = 1501
	s.RateScale = 0.15
	s.JPShare = 0.12
	return s
}

// BMultiYear is B-Root's 4.16-year dataset behind the long-term accuracy
// study (§V), with daily intervals around the 2014-04-28..30 curation.
func BMultiYear() DatasetSpec {
	s := JPDitl()
	s.Name = "B-multi-year"
	s.TeamProb = 0.08
	s.Population = basePopulation()
	s.Authority = "b-root"
	s.Start = simtime.Date(2011, time.July, 8, 0, 0)
	s.Duration = simtime.Days(1520)
	s.Interval = simtime.Week
	s.Seed = 1107
	s.RateScale = 0.08 // leaner rates keep 4 years tractable
	s.JPShare = 0.12
	s.Heartbleed = true
	return s
}

// Dataset is a built (simulated and collected) dataset: the world, the
// authority's records, interval snapshots, and curated ground truth.
type Dataset struct {
	Spec    DatasetSpec
	World   *world.World
	Records []Record
	// Snapshots are the per-interval feature views; Whole() aggregates
	// the full span.
	Snapshots []*Snapshot
	Extractor *features.Extractor
	Oracle    *groundtruth.Oracle
	// Labels is the expert curation over the whole span.
	Labels *groundtruth.LabeledSet

	whole      *Snapshot
	obs        *obs.Registry    // non-nil when built with BuildObserved
	tracer     *trace.Tracer    // non-nil when built with tracing enabled
	acct       *prof.Accountant // non-nil when built with BuildInstrumented
	alertRules []alert.Rule     // parsed from Spec.Alerts, nil when disabled

	truthOnce sync.Once
	truth     map[Addr]Class
}

// heartbleedBurst models the post-announcement scanning surge: the paper
// measures a ~25% jump in weekly scanner counts lasting about a month.
func heartbleedBurst(scanPop int) world.Burst {
	return world.Burst{
		Class:    Scan,
		Port:     "tcp443",
		Start:    simtime.Date(2014, time.April, 7, 12, 0),
		Duration: simtime.Days(28),
		Extra:    scanPop/3 + 1,
	}
}

// Build simulates the dataset. Large specs (M-sampled, B-multi-year) take
// tens of seconds; use Scaled for tests.
func Build(spec DatasetSpec) *Dataset { return BuildObserved(spec, nil) }

// BuildObserved is Build with an observability registry attached: the
// world, hierarchy, resolver caches, and the Figure 2 pipeline stages
// (dedup/filter/extract, and classify via TrainClassifier) all record
// into reg, and later pipeline runs on this dataset keep recording. A nil
// reg is exactly Build. With a deterministic clock (TickClock), the full
// snapshot is a pure function of the spec. When spec.Trace > 0 a tracer
// is created from spec.Seed automatically (see BuildTraced).
func BuildObserved(spec DatasetSpec, reg *obs.Registry) *Dataset {
	return BuildTraced(spec, reg, nil)
}

// BuildTraced is BuildObserved with an explicit tracer: every simulated
// lookup threads through tr (activity annotation, cache hits, per-level
// hops, faults, sensor taps) and the pipeline stages annotate record
// provenance. A nil tr creates one from spec.Seed when spec.Trace > 0;
// pass a pre-configured tracer to control ring capacity (SetMax) before
// the build commits traces.
func BuildTraced(spec DatasetSpec, reg *obs.Registry, tr *trace.Tracer) *Dataset {
	return BuildInstrumented(spec, reg, tr, nil)
}

// BuildInstrumented is BuildTraced with a resource accountant attached:
// the Figure 2 pipeline stages (dedup, filter, extract, and train /
// validate / classify through TrainClassifier and friends) accumulate
// per-stage resource accounting — alloc deltas, GC cycles, goroutine
// and pool-worker high-water marks — into acct. The accountant is the
// repository's *ops* channel: its readings depend on scheduling and GC
// timing, so they are reported only via Resources(), never folded into
// the deterministic obs snapshot, traces, or time series. A nil acct is
// exactly BuildTraced.
func BuildInstrumented(spec DatasetSpec, reg *obs.Registry, tr *trace.Tracer, acct *prof.Accountant) *Dataset {
	if spec.Scale <= 0 {
		spec.Scale = 1
	}
	cfg := world.DefaultConfig()
	cfg.Seed = spec.Seed
	cfg.Start = spec.Start
	cfg.Duration = spec.Duration
	cfg.RateScale = spec.RateScale
	if cfg.RateScale <= 0 {
		cfg.RateScale = 1
	}
	cfg.MSample = spec.Sample
	cfg.JPShare = spec.JPShare
	for cls, n := range spec.Population {
		scaled := int(float64(n)*spec.Scale + 0.5)
		if n > 0 && scaled == 0 {
			scaled = 1
		}
		cfg.ClassPopulation[cls] = scaled
	}
	cfg.QMinFraction = spec.QMinFraction
	if spec.TeamProb != 0 {
		cfg.Teams = spec.TeamProb
		if cfg.Teams < 0 {
			cfg.Teams = 0
		}
	}
	if spec.Darknet {
		cfg.DarknetSlash8 = 150
	}
	plan, err := faults.Parse(spec.Faults)
	if err != nil {
		panic(fmt.Sprintf("backscatter: %v", err))
	}
	cfg.Faults = plan
	var alertRules []alert.Rule
	switch spec.Alerts {
	case "":
	case "default":
		alertRules = alert.DefaultRules()
	default:
		alertRules, err = alert.Parse(spec.Alerts)
		if err != nil {
			panic(fmt.Sprintf("backscatter: %v", err))
		}
	}
	if spec.Heartbleed {
		hb := heartbleedBurst(cfg.ClassPopulation[Scan])
		end := spec.Start.Add(spec.Duration)
		if hb.Start.After(spec.Start) && hb.Start.Before(end) {
			cfg.Bursts = append(cfg.Bursts, hb)
		}
	}

	w := world.New(cfg)
	w.SetMetrics(reg)
	if tr == nil && spec.Trace > 0 {
		tr = trace.New(spec.Seed, uint64(spec.Trace))
	}
	w.SetTracer(tr)
	w.Run()

	d := &Dataset{Spec: spec, World: w, obs: reg, tracer: tr, acct: acct, alertRules: alertRules}
	switch spec.Authority {
	case "jp":
		d.Records = w.National["jp"].Records()
	case "b-root":
		d.Records = w.BRoot.Records()
	case "m-root":
		d.Records = w.MRoot.Records()
	default:
		panic(fmt.Sprintf("backscatter: unknown authority %q", spec.Authority))
	}

	d.Extractor = features.NewExtractor(w.Geo, w.QuerierName)
	d.Extractor.Obs = reg
	d.Extractor.Tracer = tr
	d.Extractor.Acct = acct
	d.Extractor.Workers = spec.Workers
	d.Extractor.NoReuse = spec.NoReuse
	if spec.MinQueriers > 0 {
		d.Extractor.MinQueriers = spec.MinQueriers
	}
	d.Snapshots = classify.SnapIntervals(d.Records, d.Extractor, spec.Start, spec.Duration, spec.Interval)

	truth := make(map[ipaddr.Addr]activity.Class)
	for a, tr := range w.TruthMap() {
		truth[a] = tr.Class
	}
	d.Oracle = groundtruth.NewOracle(truth, w.Dark, spec.Seed)
	cur := groundtruth.DefaultCuration()
	st := rng.NewSource(spec.Seed).Stream("curation")
	d.Labels = groundtruth.Curate(d.Whole().Ranked(), d.Oracle, cur, st)
	return d
}

// Whole returns the single snapshot aggregating the dataset's full span.
func (d *Dataset) Whole() *Snapshot {
	if d.whole == nil {
		d.whole = classify.Snap(d.Records, d.Extractor, d.Spec.Start, d.Spec.Duration)
	}
	return d.whole
}

// Truth returns the true class of an originator, if it ran a campaign.
func (d *Dataset) Truth(a Addr) (Class, bool) {
	tr, ok := d.World.Truth(a)
	return tr.Class, ok
}

// FullTruth returns an originator's class, scan-port label, and scanner
// team id (0 = none).
func (d *Dataset) FullTruth(a Addr) (cls Class, port string, team int, ok bool) {
	tr, ok := d.World.Truth(a)
	return tr.Class, tr.Port, tr.Team, ok
}

// TruthMap returns all originator classes. The map is built once and
// shared across calls (and across workers) — treat it as read-only.
func (d *Dataset) TruthMap() map[Addr]Class {
	d.truthOnce.Do(func() {
		wt := d.World.TruthMap()
		d.truth = make(map[Addr]Class, len(wt))
		for a, tr := range wt {
			d.truth[a] = tr.Class
		}
	})
	return d.truth
}

// ReverseQueries reports how many reverse queries arrived at the dataset's
// authority before sampling (Table I's reverse-query column).
func (d *Dataset) ReverseQueries() uint64 {
	switch d.Spec.Authority {
	case "jp":
		return d.World.National["jp"].Seen()
	case "b-root":
		return d.World.BRoot.Seen()
	default:
		return d.World.MRoot.Seen()
	}
}

// LogRecord re-exports dnslog parsing for tools.
func LogRecord(line string) (Record, error) { return dnslog.ParseRecord(line) }

// NewStreamExtractor returns a bounded-memory streaming extractor wired to
// this dataset's geo registry and querier-name source. Feed records with
// Observe and call Snapshot at interval boundaries; vectors are
// approximate (HLL footprints, sampled statics) but classifier-compatible.
func (d *Dataset) NewStreamExtractor() *StreamExtractor {
	x := features.NewStreamExtractor(d.World.Geo, d.World.QuerierName)
	x.MinQueriers = d.Extractor.MinQueriers
	return x
}
