// Scratch-reuse invariance: the PR 8 acceptance bar for the allocation
// blitz. Every pooled or reused buffer in the pipeline — columnar shard
// scratch, vector scratch, intern tables, encode pools — is an ops-only
// optimization, so a run with reuse disabled (DatasetSpec.NoReuse) must
// produce byte-identical observability snapshots, trace JSONL, and
// classification reports at every worker count.
package backscatter_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	backscatter "dnsbackscatter"
)

// reuseRun executes the full pipeline for one (seed, workers, noReuse)
// cell with tracing on and returns the three artifacts compared by the
// invariance matrix.
func reuseRun(t *testing.T, seed uint64, workers int, noReuse bool) (snapJSON, jsonl, report []byte) {
	t.Helper()
	reg := backscatter.NewRegistry()
	reg.SetClock(backscatter.TickClock(1))
	spec := seedMatrixSpec(seed, workers, "").WithTracing(4)
	if noReuse {
		spec = spec.WithoutScratchReuse()
	}
	ds := backscatter.BuildObserved(spec, reg)
	tr := ds.Tracer()
	if tr == nil {
		t.Fatalf("seed=%d workers=%d: WithTracing(4) built no tracer", seed, workers)
	}

	model, err := ds.TrainClassifier(3)
	if err != nil {
		t.Fatalf("seed=%d workers=%d noReuse=%v: train: %v", seed, workers, noReuse, err)
	}
	labels := model.ClassifyAll(ds.Whole())
	addrs := make([]backscatter.Addr, 0, len(labels))
	for a := range labels {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var b bytes.Buffer
	for _, a := range addrs {
		fmt.Fprintf(&b, "%s\t%s\n", a, labels[a])
	}
	return reg.SnapshotJSON(), tr.JSONL(), b.Bytes()
}

// TestScratchReuseInvariance runs workers {1, 8} × 2 seeds and asserts
// that disabling scratch reuse changes no output byte in the snapshot,
// the trace JSONL, or the classification report.
func TestScratchReuseInvariance(t *testing.T) {
	for _, seed := range []uint64{1404, 7} {
		for _, w := range []int{1, 8} {
			wantSnap, wantJSONL, wantReport := reuseRun(t, seed, w, false)
			if len(wantReport) == 0 {
				t.Fatalf("seed=%d workers=%d: empty classification report", seed, w)
			}
			if len(wantJSONL) == 0 {
				t.Fatalf("seed=%d workers=%d: empty trace JSONL", seed, w)
			}
			gotSnap, gotJSONL, gotReport := reuseRun(t, seed, w, true)
			if !bytes.Equal(gotSnap, wantSnap) {
				t.Errorf("seed=%d workers=%d: SnapshotJSON differs with NoReuse", seed, w)
			}
			if !bytes.Equal(gotJSONL, wantJSONL) {
				t.Errorf("seed=%d workers=%d: trace JSONL differs with NoReuse", seed, w)
			}
			if !bytes.Equal(gotReport, wantReport) {
				t.Errorf("seed=%d workers=%d: classification report differs with NoReuse:\n--- reuse ---\n%s--- noReuse ---\n%s",
					seed, w, wantReport, gotReport)
			}
		}
	}
}
