// Resource-observatory tests: the accountant is an *ops* channel, so
// attaching it must never perturb the deterministic artifacts — the
// obs snapshot, the trace JSONL, and the windowed time series stay
// byte-identical with accounting on and off.
package backscatter_test

import (
	"bytes"
	"testing"

	backscatter "dnsbackscatter"
)

// instrumentedRun executes the traced chaos pipeline with an optional
// accountant attached and returns the three deterministic artifacts.
func instrumentedRun(t *testing.T, acct *backscatter.Accountant) (snap, jsonl, series []byte) {
	t.Helper()
	reg := backscatter.NewRegistry()
	reg.SetClock(backscatter.TickClock(1))
	reg.SetWindow(backscatter.NewWindow(6 * 3600))
	spec := seedMatrixSpec(7, 4, "lossy@1").WithTracing(4)
	ds := backscatter.BuildInstrumented(spec, reg, nil, acct)
	m, err := ds.TrainClassifier(3)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	m.ClassifyAll(ds.Whole())
	return reg.SnapshotJSON(), ds.Tracer().JSONL(), reg.Window().SnapshotJSON()
}

// TestProfDoesNotPerturbArtifacts pins the ops/deterministic split:
// building and classifying with a resource accountant attached produces
// byte-identical snapshot, trace JSONL, and windowed series to the same
// run without one. Resource readings may vary run to run; the
// deterministic artifacts may not.
func TestProfDoesNotPerturbArtifacts(t *testing.T) {
	wantSnap, wantJSONL, wantTS := instrumentedRun(t, nil)
	acct := backscatter.NewAccountant()
	gotSnap, gotJSONL, gotTS := instrumentedRun(t, acct)
	if !bytes.Equal(gotSnap, wantSnap) {
		t.Error("SnapshotJSON differs with accounting attached")
	}
	if !bytes.Equal(gotJSONL, wantJSONL) {
		t.Error("trace JSONL differs with accounting attached")
	}
	if !bytes.Equal(gotTS, wantTS) {
		t.Error("windowed series differs with accounting attached")
	}
	if len(acct.Report().Stages) == 0 {
		t.Error("instrumented run recorded no stages — the comparison proved nothing")
	}
}

// TestResourcesReport pins the dataset-level accounting surface: the
// pipeline stages land in Resources(), and a dataset built without an
// accountant reports nothing rather than failing.
func TestResourcesReport(t *testing.T) {
	acct := backscatter.NewAccountant()
	_, _, _ = instrumentedRun(t, acct)
	report := acct.Report()
	byStage := make(map[string]backscatter.StageStats, len(report.Stages))
	for _, s := range report.Stages {
		byStage[s.Stage] = s
	}
	for _, stage := range []string{"dedup", "filter", "extract", "train", "classify"} {
		s, ok := byStage[stage]
		if !ok {
			t.Errorf("stage %q missing from resource report (have %v)", stage, report.Stages)
			continue
		}
		if s.Calls == 0 {
			t.Errorf("stage %q recorded no completed calls", stage)
		}
	}
	if s := byStage["extract"]; s.Shards == 0 || s.WorkerPeak == 0 {
		t.Errorf("extract stage missed pool accounting: %+v", s)
	}

	plain := backscatter.Build(seedMatrixSpec(7, 1, ""))
	if plain.Accountant() != nil {
		t.Error("plain Build attached an accountant")
	}
	if got := plain.Resources(); len(got.Stages) != 0 {
		t.Errorf("plain Build reported stages: %+v", got.Stages)
	}
}
