package backscatter

import (
	"bytes"
	"strings"
	"testing"

	"dnsbackscatter/internal/obs"
)

// buildObservedRun drives the full Fig 2 pipeline — build (dedup, filter,
// extract), train, classify — against one fresh registry with a
// deterministic tick clock, and returns that registry.
func buildObservedRun(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.SetClock(TickClock(1))
	spec := JPDitl().Scaled(0.6)
	spec.Duration = Duration(24 * 3600)
	spec.Interval = spec.Duration
	spec.MinQueriers = 10
	ds := BuildObserved(spec, reg)
	model, err := ds.TrainClassifier(1)
	if err != nil {
		t.Fatal(err)
	}
	model.ClassifyAll(ds.Whole())
	return reg
}

// TestSnapshotDeterministic pins the PR's central guarantee: two identical
// observed runs produce byte-identical text and JSON snapshots, spans
// included.
func TestSnapshotDeterministic(t *testing.T) {
	a := buildObservedRun(t)
	b := buildObservedRun(t)
	sa, sb := a.Snapshot(), b.Snapshot()
	if !bytes.Equal(sa, sb) {
		t.Errorf("text snapshots differ:\n--- run A ---\n%s--- run B ---\n%s", sa, sb)
	}
	ja, jb := a.SnapshotJSON(), b.SnapshotJSON()
	if !bytes.Equal(ja, jb) {
		t.Errorf("JSON snapshots differ:\n--- run A ---\n%s\n--- run B ---\n%s", ja, jb)
	}
}

// TestPipelineStageSpans checks the stage report covers all four Fig 2
// stages with nonzero call counts and nonzero simulated durations.
func TestPipelineStageSpans(t *testing.T) {
	reg := buildObservedRun(t)
	for _, stage := range []string{"dedup", "filter", "extract", "classify"} {
		h := reg.Histogram("stage_ticks", obs.L("stage", stage))
		if h.Count() == 0 {
			t.Errorf("stage %q: no spans recorded", stage)
		}
		if h.Sum() == 0 {
			t.Errorf("stage %q: zero total duration", stage)
		}
	}
	report := reg.StageReport()
	for _, stage := range []string{"dedup", "filter", "extract", "classify", "train"} {
		if !strings.Contains(report, stage) {
			t.Errorf("StageReport missing stage %q:\n%s", stage, report)
		}
	}
}

// TestBuildObservedCounters sanity-checks that the counters a live /metrics
// endpoint would serve line up with the dataset's own accounting.
func TestBuildObservedCounters(t *testing.T) {
	reg := buildObservedRun(t)
	snap := string(reg.Snapshot())
	get := func(name string, labels ...Label) uint64 {
		t.Helper()
		return reg.Counter(name, labels...).Value()
	}
	if n := get("pipeline_records_total"); n == 0 {
		t.Error("pipeline_records_total = 0")
	}
	if get("pipeline_records_kept_total") > get("pipeline_records_total") {
		t.Error("kept more records than seen")
	}
	if n := get("pipeline_classified_total"); n == 0 {
		t.Error("pipeline_classified_total = 0")
	}
	// §IV-D: caching attenuates queries level by level — the root of the
	// reverse hierarchy must see no more queries than the final authority.
	root := get("dnssim_queries_total", obs.L("level", "root"))
	final := get("dnssim_queries_total", obs.L("level", "final"))
	if root == 0 || final == 0 || root > final {
		t.Errorf("attenuation violated: root=%d final=%d", root, final)
	}
	for _, metric := range []string{"world_events_total", "dnssim_resolves_total", "cache_hits_total"} {
		if !strings.Contains(snap, metric) {
			t.Errorf("snapshot missing %s:\n%s", metric, snap[:min(len(snap), 2000)])
		}
	}
}
