module dnsbackscatter

go 1.22
