// Command bstrend runs the paper's longitudinal analyses (§VI-C) over a
// simulated long-term dataset: weekly per-class originator counts, scanner
// churn, and /24 scanning teams.
//
// Usage:
//
//	bstrend -dataset m-sampled -scale 0.3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	backscatter "dnsbackscatter"

	"dnsbackscatter/internal/obs"
)

func main() {
	var (
		dataset = flag.String("dataset", "m-sampled", "m-sampled, b-long, or b-multi-year")
		scale   = flag.Float64("scale", 0.3, "population scale factor")
		minTeam = flag.Int("team", 4, "minimum /24 co-located originators to flag a team")
	)
	flag.Parse()

	var spec backscatter.DatasetSpec
	switch strings.ToLower(*dataset) {
	case "m-sampled":
		spec = backscatter.MSampled()
	case "b-long":
		spec = backscatter.BLong()
	case "b-multi-year":
		spec = backscatter.BMultiYear()
	default:
		fmt.Fprintf(os.Stderr, "bstrend: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "bstrend: simulating %s at scale %.2f...\n", spec.Name, *scale)
	// Bucket world metrics by the dataset's own feature interval, so the
	// activity strip below comes straight from the windowed time-series
	// JSON document rather than a recount of the campaign list.
	reg := backscatter.NewRegistry()
	reg.SetWindow(backscatter.NewWindow(spec.Interval))
	d := backscatter.BuildObserved(spec.Scaled(*scale), reg)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	// Consume the same JSON document bsrepro -timeseries writes; the
	// parse round-trip keeps this renderer honest about the format.
	ts, err := obs.ParseTimeseries(reg.Window().SnapshotJSON())
	if err != nil {
		fmt.Fprintf(os.Stderr, "bstrend: timeseries: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "world activity per interval (windowed time series, %dh buckets):\n", ts.Width/3600)
	for _, s := range ts.Series {
		fmt.Fprintf(w, "  %-42s %s\n", s.Metric, obs.SparkSeries(s, ts.Width))
	}
	fmt.Fprintf(w, "\n")

	weekly := d.ClassifyIntervals()
	fmt.Fprintf(w, "originators per interval (%d intervals):\n", len(weekly))
	fmt.Fprintf(w, "interval\tstart\ttotal\tscan\tspam\tmail\tcdn\n")
	for i, wk := range weekly {
		counts := backscatter.ClassCounts(wk)
		total := 0
		for _, c := range counts {
			total += c
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%d\t%d\n",
			i, d.Snapshots[i].Start, total,
			counts[backscatter.Scan], counts[backscatter.Spam],
			counts[backscatter.Mail], counts[backscatter.CDN])
	}

	fmt.Fprintf(w, "\nscanner churn (new / continuing / departing):\n")
	for _, p := range backscatter.Churn(weekly, backscatter.Scan) {
		fmt.Fprintf(w, "%d\t+%d\t=%d\t-%d\n", p.Week, p.New, p.Continuing, p.Departing)
	}

	// Teams over the cumulative classification.
	all := make(map[backscatter.Addr]backscatter.Class)
	for _, wk := range weekly {
		for a, c := range wk {
			all[a] = c
		}
	}
	st := backscatter.ScannerTeams(all, *minTeam)
	fmt.Fprintf(w, "\nscanner teams: %d scanners in %d /24 blocks; %d blocks with ≥%d members (%d all-scan)\n",
		st.UniqueScanners, st.Blocks, st.BlocksWithNPlus, *minTeam, st.SameClassBlocks)
}
