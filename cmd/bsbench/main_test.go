package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dnsbackscatter/internal/benchparse"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := benchparse.ParseLine("BenchmarkExtract-8   \t 12\t 95123456 ns/op\t 35180928 B/op\t  196373 allocs/op")
	if !ok {
		t.Fatal("bench line did not parse")
	}
	if r.Name != "BenchmarkExtract" || r.Iterations != 12 || r.NsPerOp != 95123456 ||
		r.BytesPerOp != 35180928 || r.AllocsPerOp != 196373 {
		t.Fatalf("parsed %+v", r)
	}
	if _, ok := benchparse.ParseLine("ok  \tdnsbackscatter\t1.2s"); ok {
		t.Fatal("non-bench line parsed")
	}
}

func refResults() []benchparse.Result {
	return []benchparse.Result{
		{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkGone", NsPerOp: 500, BytesPerOp: 500, AllocsPerOp: 50},
	}
}

// TestCompare covers the gate's three behaviors: within-tolerance passes,
// a >15% allocation growth is a regression, and benchmarks on only one
// side are skipped, not failed.
func TestCompare(t *testing.T) {
	current := []benchparse.Result{
		{Name: "BenchmarkA", NsPerOp: 1100, BytesPerOp: 1100, AllocsPerOp: 110}, // +10%: inside 15%
		{Name: "BenchmarkNew", NsPerOp: 1, BytesPerOp: 1, AllocsPerOp: 1},
	}
	regs, skipped, shared := compare(refResults(), current, 0.15, 1.0, floors{})
	if len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", regs)
	}
	if shared != 1 || len(skipped) != 2 {
		t.Fatalf("shared=%d skipped=%v, want 1 shared and 2 skipped", shared, skipped)
	}

	current[0].BytesPerOp = 1200 // +20% B/op
	current[0].NsPerOp = 2500    // +150% ns/op, past even the loose gate
	regs, _, _ = compare(refResults(), current, 0.15, 1.0, floors{})
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2 (B/op and ns/op): %v", len(regs), regs)
	}
	msg := regs[0].String() + regs[1].String()
	if !strings.Contains(msg, "B/op") || !strings.Contains(msg, "ns/op") {
		t.Fatalf("regression report missing metrics: %s", msg)
	}
}

// TestCompareNoiseFloors pins the absolute floors: a huge relative jump
// whose absolute delta is tiny (pooled-scratch warm-up noise) passes,
// while the same relative jump past the floor still fails.
func TestCompareNoiseFloors(t *testing.T) {
	ref := []benchparse.Result{{Name: "BenchmarkTiny", NsPerOp: 1000, BytesPerOp: 12000, AllocsPerOp: 70}}
	cur := []benchparse.Result{{Name: "BenchmarkTiny", NsPerOp: 500000, BytesPerOp: 49000, AllocsPerOp: 180}}
	fl := floors{bytes: 1 << 20, allocs: 512, ns: 1e9}
	if regs, _, _ := compare(ref, cur, 0.15, 1.0, fl); len(regs) != 0 {
		t.Fatalf("sub-floor deltas flagged: %v", regs)
	}
	cur[0].BytesPerOp = 12000 + 2<<20 // past the byte floor and far past 15%
	regs, _, _ := compare(ref, cur, 0.15, 1.0, fl)
	if len(regs) != 1 || regs[0].metric != "B/op" {
		t.Fatalf("past-floor regression not flagged: %v", regs)
	}
}

func runBsbench(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

const benchOutput = `goos: linux
BenchmarkA-8	100	1000 ns/op	1000 B/op	100 allocs/op
PASS
`

// TestRunAgainst drives the CLI end to end: a clean diff exits 0, a
// regressed run exits 1 and names the metric.
func TestRunAgainst(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.json")
	doc, err := json.Marshal(refResults())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(refPath, doc, 0o644); err != nil {
		t.Fatal(err)
	}

	code, _, stderr := runBsbench(t, benchOutput, "-against", refPath)
	if code != 0 {
		t.Fatalf("exit %d on identical run; stderr=%s", code, stderr)
	}
	if !strings.Contains(stderr, "no regressions") {
		t.Errorf("stderr lacks the all-clear: %s", stderr)
	}

	// The toy numbers sit under the default noise floors, so pin the
	// floor to zero to exercise the relative gate itself.
	regressed := strings.Replace(benchOutput, "1000 B/op", "2000 B/op", 1)
	code, _, stderr = runBsbench(t, regressed, "-against", refPath, "-min-bytes-delta", "0")
	if code != 1 {
		t.Fatalf("exit %d on regressed run, want 1; stderr=%s", code, stderr)
	}
	if !strings.Contains(stderr, "REGRESSION") || !strings.Contains(stderr, "B/op") {
		t.Errorf("stderr lacks the regression report: %s", stderr)
	}

	code, _, stderr = runBsbench(t, benchOutput, "-against", filepath.Join(dir, "missing.json"))
	if code != 2 {
		t.Fatalf("exit %d on missing reference, want 2; stderr=%s", code, stderr)
	}
}

// TestLatestTrajectory pins "-against latest" resolution: numeric order
// beats lexical (PR10 > PR9), the -o file is excluded, and an empty dir
// is an error rather than a silent pass.
func TestLatestTrajectory(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_PR9.json", "BENCH_PR10.json", "BENCH_PR2.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("[]"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := latestTrajectory(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_PR10.json" {
		t.Fatalf("latest = %s, want BENCH_PR10.json", got)
	}
	got, err = latestTrajectory(dir, "BENCH_PR10.json")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_PR9.json" {
		t.Fatalf("latest excluding PR10 = %s, want BENCH_PR9.json", got)
	}
	if _, err := latestTrajectory(t.TempDir(), ""); err == nil {
		t.Fatal("empty dir resolved a trajectory")
	}
}

// TestRunWritesTrajectory pins the -o flow the Makefile bench target uses.
func TestRunWritesTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	code, stdout, _ := runBsbench(t, benchOutput, "-o", path)
	if code != 0 {
		t.Fatalf("exit %d writing trajectory", code)
	}
	if !strings.Contains(stdout, "BenchmarkA-8") {
		t.Errorf("bench output not echoed: %q", stdout)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var results []benchparse.Result
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("trajectory is not JSON: %v\n%s", err, data)
	}
	if len(results) != 1 || results[0].Name != "BenchmarkA" {
		t.Fatalf("trajectory = %+v", results)
	}
}
