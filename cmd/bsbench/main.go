// Command bsbench turns `go test -bench` output into a benchmark-
// trajectory JSON file, so successive PRs can diff performance on the
// same experiments.
//
// It reads benchmark output on stdin, echoes every line through to stdout
// (the run stays readable), and writes the parsed results — name,
// iterations, ns/op, and when -benchmem is on, B/op and allocs/op — as
// sorted JSON to the -o file:
//
//	go test -run '^$' -bench . -benchmem . | bsbench -o BENCH_PR2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Workers stamps the pipeline worker count the run used (-workers),
	// so trajectory files from different parallelism are distinguishable.
	Workers int `json:"workers,omitempty"`
}

// benchLine matches standard testing benchmark output, with the GOMAXPROCS
// suffix stripped from the name and the -benchmem columns optional.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(line string) (result, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return result{}, false
	}
	iters, _ := strconv.ParseInt(m[2], 10, 64)
	ns, _ := strconv.ParseFloat(m[3], 64)
	r := result{Name: m[1], Iterations: iters, NsPerOp: ns}
	if m[4] != "" {
		r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
	}
	if m[5] != "" {
		r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
	}
	return r, true
}

func main() {
	out := flag.String("o", "", "write parsed results as JSON to this file (stdout JSON when empty)")
	workers := flag.Int("workers", 0, "stamp this pipeline worker count into every result (0 = omit)")
	flag.Parse()

	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parse(line); ok {
			r.Workers = *workers
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bsbench: read:", err)
		os.Exit(1)
	}
	// Sorted by name so the trajectory file is byte-stable run to run.
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })

	doc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsbench: marshal:", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if *out == "" {
		_, _ = os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bsbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bsbench: wrote %d results to %s\n", len(results), *out)
}
