// Command bsbench turns `go test -bench` output into a benchmark-
// trajectory JSON file, so successive PRs can diff performance on the
// same experiments.
//
// It reads benchmark output on stdin, echoes every line through to stdout
// (the run stays readable), and writes the parsed results — name,
// iterations, ns/op, and when -benchmem is on, B/op and allocs/op — as
// sorted JSON to the -o file:
//
//	go test -run '^$' -bench . -benchmem . | bsbench -o BENCH_PR2.json
//
// With -against it also diffs the current run against a previous
// trajectory file and exits nonzero when any shared benchmark regressed
// beyond tolerance:
//
//	go test -run '^$' -bench . -benchmem . | bsbench -against BENCH_PR5.json
//
// Allocation metrics (B/op, allocs/op) gate at -tolerance (default 15%):
// they are near-deterministic, so a breach is a real regression. Wall
// time gates at the looser -time-tolerance (default 100%), loose enough
// that shared-runner noise does not fail CI but a genuine blow-up does.
// Benchmarks present on only one side are never silently dropped: each
// is logged, and the summary line carries the skip count.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"dnsbackscatter/internal/benchparse"
)

// regression is one metric that moved past its tolerance against the
// reference trajectory.
type regression struct {
	name, metric   string
	before, after  float64
	ratio, allowed float64
}

func (r regression) String() string {
	return fmt.Sprintf("%s %s regressed %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
		r.name, r.metric, (r.ratio-1)*100, r.before, r.after, r.allowed*100)
}

// compare diffs current against a reference trajectory. Benchmarks
// present on only one side are reported in skipped (renames and new
// benchmarks are not regressions); shared ones contribute a regression
// per metric that grew beyond its tolerance.
func compare(reference, current []benchparse.Result, tolerance, timeTolerance float64) (regs []regression, skipped []string, shared int) {
	ref := make(map[string]benchparse.Result, len(reference))
	for _, r := range reference {
		ref[r.Name] = r
	}
	seen := make(map[string]bool, len(current))
	for _, cur := range current {
		seen[cur.Name] = true
		base, ok := ref[cur.Name]
		if !ok {
			skipped = append(skipped, cur.Name+" (not in reference)")
			continue
		}
		shared++
		check := func(metric string, before, after, allowed float64) {
			if before <= 0 {
				return
			}
			if ratio := after / before; ratio > 1+allowed {
				regs = append(regs, regression{cur.Name, metric, before, after, ratio, allowed})
			}
		}
		check("ns/op", base.NsPerOp, cur.NsPerOp, timeTolerance)
		check("B/op", base.BytesPerOp, cur.BytesPerOp, tolerance)
		check("allocs/op", float64(base.AllocsPerOp), float64(cur.AllocsPerOp), tolerance)
	}
	for _, r := range reference {
		if !seen[r.Name] {
			skipped = append(skipped, r.Name+" (not in current run)")
		}
	}
	sort.Strings(skipped)
	return regs, skipped, shared
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write parsed results as JSON to this file (stdout JSON when empty)")
	workers := fs.Int("workers", 0, "stamp this pipeline worker count into every result (0 = omit)")
	against := fs.String("against", "", "reference trajectory JSON to diff the current run against; regressions beyond tolerance exit nonzero")
	tolerance := fs.Float64("tolerance", 0.15, "allowed fractional growth in B/op and allocs/op before -against fails")
	timeTolerance := fs.Float64("time-tolerance", 1.0, "allowed fractional growth in ns/op before -against fails (loose: wall time is noisy)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var results []benchparse.Result
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(stdout, line)
		if r, ok := benchparse.ParseLine(line); ok {
			r.Workers = *workers
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, "bsbench: read:", err)
		return 1
	}
	// Sorted by name so the trajectory file is byte-stable run to run.
	benchparse.Sort(results)

	doc, err := benchparse.Marshal(results)
	if err != nil {
		fmt.Fprintln(stderr, "bsbench:", err)
		return 1
	}
	if *out == "" && *against == "" {
		_, _ = stdout.Write(doc)
	}
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fmt.Fprintln(stderr, "bsbench:", err)
			return 1
		}
		fmt.Fprintf(stderr, "bsbench: wrote %d results to %s\n", len(results), *out)
	}

	if *against == "" {
		return 0
	}
	reference, err := benchparse.LoadFile(*against)
	if err != nil {
		fmt.Fprintln(stderr, "bsbench:", err)
		return 2
	}
	regs, skipped, shared := compare(reference, results, *tolerance, *timeTolerance)
	for _, s := range skipped {
		fmt.Fprintln(stderr, "bsbench: skipped:", s)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(stderr, "bsbench: REGRESSION:", r)
		}
		fmt.Fprintf(stderr, "bsbench: %d regression(s) against %s (%d shared, %d skipped)\n",
			len(regs), *against, shared, len(skipped))
		return 1
	}
	fmt.Fprintf(stderr, "bsbench: no regressions against %s (%d shared benchmarks, %d skipped)\n",
		*against, shared, len(skipped))
	return 0
}
