// Command bsbench turns `go test -bench` output into a benchmark-
// trajectory JSON file, so successive PRs can diff performance on the
// same experiments.
//
// It reads benchmark output on stdin, echoes every line through to stdout
// (the run stays readable), and writes the parsed results — name,
// iterations, ns/op, and when -benchmem is on, B/op and allocs/op — as
// sorted JSON to the -o file:
//
//	go test -run '^$' -bench . -benchmem . | bsbench -o BENCH_PR2.json
//
// With -against it also diffs the current run against a previous
// trajectory file and exits nonzero when any shared benchmark regressed
// beyond tolerance:
//
//	go test -run '^$' -bench . -benchmem . | bsbench -against BENCH_PR5.json
//
// The special value `-against latest` resolves to the newest checked-in
// BENCH_*.json (highest trailing number, so BENCH_PR10 beats BENCH_PR9),
// excluding any file the same run writes with -o. The Makefile gates use
// it so recording a new trajectory automatically retargets the diff.
//
// Allocation metrics (B/op, allocs/op) gate at -tolerance (default 15%):
// they are near-deterministic, so a breach is a real regression. Wall
// time gates at the looser -time-tolerance (default 100%), loose enough
// that shared-runner noise does not fail CI but a genuine blow-up does.
// Benchmarks present on only one side are never silently dropped: each
// is logged, and the summary line carries the skip count.
//
// Relative tolerances are meaningless for tiny benchmarks: a pooled hot
// path that allocates 12 KB/op one run and 48 KB/op the next (scratch
// warm-up landed on its op) has "regressed 300%" while the absolute
// movement is noise at dataset scale. Deltas below the absolute noise
// floors — -min-bytes-delta (1 MiB), -min-allocs-delta (512),
// -min-ns-delta (1 s) — are therefore ignored; alloc.budgets still
// bounds every small benchmark absolutely.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"dnsbackscatter/internal/benchparse"
)

// regression is one metric that moved past its tolerance against the
// reference trajectory.
type regression struct {
	name, metric   string
	before, after  float64
	ratio, allowed float64
}

func (r regression) String() string {
	return fmt.Sprintf("%s %s regressed %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
		r.name, r.metric, (r.ratio-1)*100, r.before, r.after, r.allowed*100)
}

// floors holds the per-metric absolute deltas below which a relative
// regression is treated as noise.
type floors struct {
	bytes, allocs, ns float64
}

// compare diffs current against a reference trajectory. Benchmarks
// present on only one side are reported in skipped (renames and new
// benchmarks are not regressions); shared ones contribute a regression
// per metric that grew beyond its tolerance AND past the metric's
// absolute noise floor.
func compare(reference, current []benchparse.Result, tolerance, timeTolerance float64, fl floors) (regs []regression, skipped []string, shared int) {
	ref := make(map[string]benchparse.Result, len(reference))
	for _, r := range reference {
		ref[r.Name] = r
	}
	seen := make(map[string]bool, len(current))
	for _, cur := range current {
		seen[cur.Name] = true
		base, ok := ref[cur.Name]
		if !ok {
			skipped = append(skipped, cur.Name+" (not in reference)")
			continue
		}
		shared++
		check := func(metric string, before, after, allowed, floor float64) {
			if before <= 0 || after-before < floor {
				return
			}
			if ratio := after / before; ratio > 1+allowed {
				regs = append(regs, regression{cur.Name, metric, before, after, ratio, allowed})
			}
		}
		check("ns/op", base.NsPerOp, cur.NsPerOp, timeTolerance, fl.ns)
		check("B/op", base.BytesPerOp, cur.BytesPerOp, tolerance, fl.bytes)
		check("allocs/op", float64(base.AllocsPerOp), float64(cur.AllocsPerOp), tolerance, fl.allocs)
	}
	for _, r := range reference {
		if !seen[r.Name] {
			skipped = append(skipped, r.Name+" (not in current run)")
		}
	}
	sort.Strings(skipped)
	return regs, skipped, shared
}

// trailingNum extracts the number a trajectory filename ends with
// ("BENCH_PR10.json" -> 10); -1 when there is none, so numbered files
// always outrank unnumbered ones.
func trailingNum(path string) int {
	s := strings.TrimSuffix(filepath.Base(path), ".json")
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return -1
	}
	n, err := strconv.Atoi(s[i:])
	if err != nil {
		return -1
	}
	return n
}

// latestTrajectory resolves "-against latest" to the newest BENCH_*.json
// in dir — highest trailing number first, lexical order as tiebreak —
// skipping exclude (the file this run writes with -o, which would
// otherwise diff the run against itself).
func latestTrajectory(dir, exclude string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, m := range matches {
		if exclude != "" && filepath.Base(m) == filepath.Base(exclude) {
			continue
		}
		if n := trailingNum(m); n > bestN || (n == bestN && m > best) {
			best, bestN = m, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no prior BENCH_*.json trajectory in %s", dir)
	}
	return best, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write parsed results as JSON to this file (stdout JSON when empty)")
	workers := fs.Int("workers", 0, "stamp this pipeline worker count into every result (0 = omit)")
	against := fs.String("against", "", "reference trajectory JSON to diff the current run against; regressions beyond tolerance exit nonzero")
	tolerance := fs.Float64("tolerance", 0.15, "allowed fractional growth in B/op and allocs/op before -against fails")
	timeTolerance := fs.Float64("time-tolerance", 1.0, "allowed fractional growth in ns/op before -against fails (loose: wall time is noisy)")
	minBytes := fs.Float64("min-bytes-delta", 1<<20, "absolute B/op growth below which a relative regression is noise")
	minAllocs := fs.Float64("min-allocs-delta", 512, "absolute allocs/op growth below which a relative regression is noise")
	minNs := fs.Float64("min-ns-delta", 1e9, "absolute ns/op growth below which a relative regression is noise")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *against == "latest" {
		p, err := latestTrajectory(".", *out)
		if err != nil {
			fmt.Fprintln(stderr, "bsbench:", err)
			return 2
		}
		*against = p
		fmt.Fprintf(stderr, "bsbench: comparing against %s\n", p)
	}

	var results []benchparse.Result
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(stdout, line)
		if r, ok := benchparse.ParseLine(line); ok {
			r.Workers = *workers
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, "bsbench: read:", err)
		return 1
	}
	// Sorted by name so the trajectory file is byte-stable run to run.
	benchparse.Sort(results)

	doc, err := benchparse.Marshal(results)
	if err != nil {
		fmt.Fprintln(stderr, "bsbench:", err)
		return 1
	}
	if *out == "" && *against == "" {
		_, _ = stdout.Write(doc)
	}
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fmt.Fprintln(stderr, "bsbench:", err)
			return 1
		}
		fmt.Fprintf(stderr, "bsbench: wrote %d results to %s\n", len(results), *out)
	}

	if *against == "" {
		return 0
	}
	reference, err := benchparse.LoadFile(*against)
	if err != nil {
		fmt.Fprintln(stderr, "bsbench:", err)
		return 2
	}
	regs, skipped, shared := compare(reference, results, *tolerance, *timeTolerance,
		floors{bytes: *minBytes, allocs: *minAllocs, ns: *minNs})
	for _, s := range skipped {
		fmt.Fprintln(stderr, "bsbench: skipped:", s)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(stderr, "bsbench: REGRESSION:", r)
		}
		fmt.Fprintf(stderr, "bsbench: %d regression(s) against %s (%d shared, %d skipped)\n",
			len(regs), *against, shared, len(skipped))
		return 1
	}
	fmt.Fprintf(stderr, "bsbench: no regressions against %s (%d shared benchmarks, %d skipped)\n",
		*against, shared, len(skipped))
	return 0
}
