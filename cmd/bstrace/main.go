// Command bstrace renders end-to-end lookup traces written by
// bsrepro -trace (or fetched from bsserve's /traces endpoint as JSONL).
//
// Without -id it prints the aggregate view — the top-N slowest lookup
// chains, where lookups gave up, and per-level injected-latency
// histograms. With -id (a 16-digit hex trace ID) it renders that trace's
// span tree: activity, per-level query attempts, injected faults, TCP
// retries, the sensor tap, and the pipeline's verdicts.
//
// Usage:
//
//	bsrepro -experiment table1 -trace traces.jsonl
//	bstrace -in traces.jsonl                       # aggregates
//	bstrace -in traces.jsonl -trees -rcode nxdomain -limit 5
//	bstrace -in traces.jsonl -id 63a25dd9d44cdb9b  # one span tree
package main

import (
	"flag"
	"fmt"
	"os"

	"dnsbackscatter/internal/simtime"
	"dnsbackscatter/internal/trace"
)

func main() {
	var (
		in     = flag.String("in", "", "trace JSONL file (default stdin)")
		id     = flag.String("id", "", "render the span tree of this trace ID (16-digit hex)")
		trees  = flag.Bool("trees", false, "render span trees for every matching trace instead of aggregates")
		top    = flag.Int("top", 10, "slowest chains to list in the aggregate view")
		orig   = flag.String("originator", "", "keep traces for this originator address")
		qr     = flag.String("querier", "", "keep traces from this querier address")
		rcode  = flag.String("rcode", "", "keep traces seeing this rcode (noerror, nxdomain, servfail)")
		mindur = flag.Int("mindur", 0, "keep traces lasting at least this many simulated seconds")
		limit  = flag.Int("limit", 0, "keep only the most recent N matches (0 = all)")
	)
	flag.Parse()

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bstrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	ts, err := trace.ParseJSONL(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bstrace:", err)
		os.Exit(1)
	}

	if *id != "" {
		want, err := trace.ParseID(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bstrace:", err)
			os.Exit(1)
		}
		for _, tr := range ts {
			if tr.ID == want {
				fmt.Print(trace.RenderTree(tr))
				return
			}
		}
		fmt.Fprintf(os.Stderr, "bstrace: trace %s not found in %d traces\n", want, len(ts))
		os.Exit(1)
	}

	f := trace.Filter{
		Originator: *orig,
		Querier:    *qr,
		RCode:      *rcode,
		MinDur:     simtime.Duration(*mindur),
		Limit:      *limit,
	}
	ts = f.Apply(ts)
	if *trees {
		for _, tr := range ts {
			fmt.Println(trace.RenderTree(tr))
		}
		return
	}
	fmt.Print(trace.Summarize(ts, *top))
}
