// Command bsclassify trains a classifier from a labeled subset of a query
// log and classifies every analyzable originator — the operational shape
// of the paper's Figure 2 pipeline.
//
// Usage:
//
//	bsclassify -log out/log.tsv -queriers out/queriers.tsv \
//	           -truth out/truth.tsv -labels 40 -top 30
//
// The geo/AS database is the deterministic synthetic registry; -seed must
// match the generating world (bsgen prints it via the dataset spec).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	backscatter "dnsbackscatter"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/classify"
	"dnsbackscatter/internal/features"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/groundtruth"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/ml"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

func main() {
	var (
		logPath  = flag.String("log", "log.tsv", "authority query log (TSV)")
		wirePath = flag.String("wirelog", "", "framed wire-format capture; overrides -log")
		qPath    = flag.String("queriers", "queriers.tsv", "querier reverse-name table")
		tPath    = flag.String("truth", "truth.tsv", "originator truth for label curation")
		seed     = flag.Uint64("seed", 1404, "geo registry seed (must match the generator)")
		alg      = flag.String("algorithm", "rf", "cart, rf, or svm")
		labels   = flag.Int("labels", 40, "max labeled examples per class")
		top      = flag.Int("top", 30, "print the top-N originators")
		minQ     = flag.Int("minqueriers", 20, "analyzability threshold")
		showAll  = flag.Bool("all", false, "print every classified originator")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "pipeline worker goroutines (1 = sequential; output is identical either way)")
	)
	flag.Parse()

	var recs []backscatter.Record
	var err error
	if *wirePath != "" {
		recs, err = readCapture(*wirePath)
	} else {
		recs, err = readLog(*logPath)
	}
	if err != nil {
		fatal(err)
	}
	names, err := readQueriers(*qPath)
	if err != nil {
		fatal(err)
	}
	truth, err := readTruth(*tPath)
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("empty log %s", *logPath))
	}

	g := geo.NewRegistry(*seed)
	x := features.NewExtractor(g, func(a ipaddr.Addr) (string, bool) {
		e, ok := names[a]
		if !ok {
			return "", false
		}
		return e.name, e.unreach
	})
	x.MinQueriers = *minQ
	x.Workers = *workers

	start := recs[0].Time
	end := recs[0].Time
	for _, r := range recs {
		if r.Time.Before(start) {
			start = r.Time
		}
		if r.Time.After(end) {
			end = r.Time
		}
	}
	snap := classify.Snap(recs, x, start, end.Sub(start)+simtime.Second)
	fmt.Fprintf(os.Stderr, "bsclassify: %d records, %d analyzable originators\n",
		len(recs), len(snap.Vectors))

	oracle := groundtruth.NewOracle(truth, nil, *seed)
	cur := groundtruth.DefaultCuration()
	cur.MaxPerClass = *labels
	labeled := groundtruth.Curate(snap.Ranked(), oracle, cur, rng.New(*seed))
	fmt.Fprintf(os.Stderr, "bsclassify: curated %d labeled examples\n", labeled.Total())

	p := classify.NewPipeline()
	p.Workers = *workers
	switch strings.ToLower(*alg) {
	case "cart":
		p.Trainer = ml.CART{Config: ml.CARTConfig{MaxDepth: 12}}
	case "svm":
		p.Trainer = ml.SVM{}
	case "rf":
		p.Trainer = ml.Forest{Config: ml.ForestConfig{Trees: 60}}
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}
	model, err := p.Train(snap, labeled, rng.New(*seed+1))
	if err != nil {
		fatal(err)
	}

	n := *top
	if *showAll || n > len(snap.Vectors) {
		n = len(snap.Vectors)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "rank\toriginator\tqueriers\tclass\ttruth")
	agree, scored := 0, 0
	for i, v := range snap.Vectors[:n] {
		cls := model.Classify(v)
		truthStr := "-"
		if tc, ok := truth[v.Originator]; ok {
			truthStr = tc.String()
			scored++
			if tc == cls {
				agree++
			}
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%s\t%s\n", i+1, v.Originator, v.Queriers, cls, truthStr)
	}
	if scored > 0 {
		fmt.Fprintf(os.Stderr, "bsclassify: truth agreement %d/%d (%.0f%%)\n",
			agree, scored, 100*float64(agree)/float64(scored))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bsclassify:", err)
	os.Exit(1)
}

func readCapture(path string) ([]backscatter.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return backscatter.ReadCapture(f)
}

func readLog(path string) ([]backscatter.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return backscatter.ReadLog(f)
}

type querierEntry struct {
	name    string
	unreach bool
}

func readQueriers(path string) (map[ipaddr.Addr]querierEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[ipaddr.Addr]querierEntry)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) != 2 {
			continue
		}
		a, err := ipaddr.Parse(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		switch fields[1] {
		case "!nxdomain":
			out[a] = querierEntry{}
		case "!unreach":
			out[a] = querierEntry{unreach: true}
		default:
			out[a] = querierEntry{name: fields[1]}
		}
	}
	return out, sc.Err()
}

func readTruth(path string) (map[ipaddr.Addr]activity.Class, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[ipaddr.Addr]activity.Class)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) < 2 {
			continue
		}
		a, err := ipaddr.Parse(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		cls, ok := activity.ParseClass(fields[1])
		if !ok {
			return nil, fmt.Errorf("%s:%d: unknown class %q", path, line, fields[1])
		}
		out[a] = cls
	}
	return out, sc.Err()
}
