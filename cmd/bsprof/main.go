// Command bsprof inspects the repo's resource-observatory artifacts:
// pprof profiles (from bsserve's /profiles ring, CI, or `go test
// -memprofile`), per-stage resource reports (bsrepro -resources), and
// the checked-in allocation budgets.
//
// Modes:
//
//	bsprof -heap heap.pprof -top 10          # top allocation sites
//	bsprof -heap heap.pprof -paths           # top sites per pipeline path
//	bsprof -heap after.pprof -base before.pprof  # heap growth between snapshots
//	bsprof -report resources.json            # per-stage resource table
//	bsprof -check -budgets alloc.budgets <bench.txt  # allocation-budget gate
//
// The -paths view attributes each heap sample to a Figure 2 pipeline
// path by the packages its stack crosses (extract = features/qname/geo,
// qname-min = the dnssim resolver walk, and so on), then ranks leaf
// allocation sites inside each path — "where do the extract stage's
// bytes actually come from".
//
// The -check gate reads `go test -bench -benchmem` output (raw text or
// a BENCH_*.json trajectory) and fails when any budgeted benchmark
// exceeds its max B/op or allocs/op. Budgets live in alloc.budgets;
// entries on only one side are logged, never silently dropped.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"dnsbackscatter/internal/benchparse"
	"dnsbackscatter/internal/prof"
)

// pipelinePaths attributes heap samples to Figure 2 pipeline paths by
// the packages their stacks cross. Order is presentation order.
var pipelinePaths = []struct {
	name string
	subs []string
}{
	{"dedup", []string{"dnsbackscatter/internal/dnslog"}},
	{"extract", []string{"dnsbackscatter/internal/features", "dnsbackscatter/internal/qname", "dnsbackscatter/internal/geo"}},
	{"qname-min", []string{"dnsbackscatter/internal/dnssim", "dnsbackscatter/internal/dnswire"}},
	{"train", []string{"dnsbackscatter/internal/ml"}},
	{"classify", []string{"dnsbackscatter/internal/classify"}},
	{"world", []string{"dnsbackscatter/internal/world"}},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bsprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	heap := fs.String("heap", "", "pprof profile to rank allocation sites from")
	base := fs.String("base", "", "earlier pprof profile; with -heap, rank the growth between them")
	typ := fs.String("type", "alloc_space", "sample-type column to rank (alloc_space, alloc_objects, inuse_space, samples, ...)")
	top := fs.Int("top", 10, "sites to print per ranking")
	paths := fs.Bool("paths", false, "with -heap, rank sites per pipeline path instead of globally")
	report := fs.String("report", "", "per-stage resource report JSON (bsrepro -resources) to print")
	check := fs.Bool("check", false, "enforce alloc.budgets against bench output (stdin or -bench)")
	budgets := fs.String("budgets", "alloc.budgets", "budget file for -check")
	bench := fs.String("bench", "", "bench output for -check: raw `go test -bench` text or a BENCH_*.json trajectory (empty = stdin)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	did := false
	if *report != "" {
		if code := runReport(*report, stdout, stderr); code != 0 {
			return code
		}
		did = true
	}
	if *heap != "" {
		if code := runHeap(*heap, *base, *typ, *top, *paths, stdout, stderr); code != 0 {
			return code
		}
		did = true
	}
	if *check {
		return runCheck(*budgets, *bench, stdin, stdout, stderr)
	}
	if !did {
		fmt.Fprintln(stderr, "bsprof: nothing to do (want -heap, -report, or -check; see -h)")
		return 2
	}
	return 0
}

// runReport prints a resource report as the aligned per-stage table.
func runReport(path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "bsprof:", err)
		return 2
	}
	r, err := prof.ParseReport(data)
	if err != nil {
		fmt.Fprintln(stderr, "bsprof:", err)
		return 2
	}
	fmt.Fprintf(stdout, "resource report %s (%d stages; ops channel — values are scheduling-dependent)\n", path, len(r.Stages))
	fmt.Fprint(stdout, r.String())
	return 0
}

// runHeap ranks allocation sites in a profile, optionally against a
// base profile (growth) and optionally split per pipeline path.
func runHeap(heapPath, basePath, typ string, top int, paths bool, stdout, stderr io.Writer) int {
	p, code := loadProfile(heapPath, stderr)
	if code != 0 {
		return code
	}
	idx := p.TypeIndex(typ)
	if idx < 0 {
		fmt.Fprintf(stderr, "bsprof: %s has no %q sample type (has: %s)\n", heapPath, typ, strings.Join(p.SampleTypes, ", "))
		return 2
	}

	if basePath != "" {
		b, code := loadProfile(basePath, stderr)
		if code != 0 {
			return code
		}
		bIdx := b.TypeIndex(typ)
		if bIdx != idx {
			fmt.Fprintf(stderr, "bsprof: %s and %s disagree on sample types; diffing %q by matching index\n", basePath, heapPath, typ)
		}
		fmt.Fprintf(stdout, "top %d %s growth %s -> %s\n", top, typ, basePath, heapPath)
		printSites(stdout, prof.DiffSites(b, p, idx, top))
		return 0
	}

	if paths {
		fmt.Fprintf(stdout, "top %d %s sites per pipeline path (%s)\n", top, typ, heapPath)
		for _, pp := range pipelinePaths {
			sites := p.PathSites(idx, pp.subs, top)
			fmt.Fprintf(stdout, "\n%s (%s):\n", pp.name, strings.Join(trimPkgs(pp.subs), ", "))
			if len(sites) == 0 {
				fmt.Fprintln(stdout, "  (no samples crossed this path)")
				continue
			}
			printSites(stdout, sites)
		}
		return 0
	}

	fmt.Fprintf(stdout, "top %d %s sites (%s)\n", top, typ, heapPath)
	printSites(stdout, p.TopSites(idx, top))
	return 0
}

// trimPkgs shortens package paths for path headers (internal/features
// instead of the full module path).
func trimPkgs(subs []string) []string {
	out := make([]string, len(subs))
	for i, s := range subs {
		out[i] = strings.TrimPrefix(s, "dnsbackscatter/")
	}
	return out
}

// loadProfile reads and parses one pprof file.
func loadProfile(path string, stderr io.Writer) (*prof.Profile, int) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "bsprof:", err)
		return nil, 2
	}
	p, err := prof.ParseProfile(data)
	if err != nil {
		fmt.Fprintf(stderr, "bsprof: %s: %v\n", path, err)
		return nil, 2
	}
	return p, 0
}

// printSites renders ranked sites, one per line.
func printSites(w io.Writer, sites []prof.Site) {
	for i, s := range sites {
		fmt.Fprintf(w, "  %2d. %12s  %s\n", i+1, prof.SizeString(uint64(max64(s.Flat, 0))), s.Func)
	}
}

// max64 clamps negative diff values for size rendering.
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// budget is one benchmark's allocation ceiling.
type budget struct {
	maxBytes  float64
	maxAllocs int64
}

// parseBudgets reads the alloc.budgets format: one
// "name max_B/op max_allocs/op" triple per line, '#' comments.
func parseBudgets(data []byte) (map[string]budget, []string, error) {
	out := make(map[string]budget)
	var order []string
	for ln, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return nil, nil, fmt.Errorf("line %d: want \"name max_B/op max_allocs/op\", got %q", ln+1, line)
		}
		b, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: bad max B/op %q: %v", ln+1, fields[1], err)
		}
		a, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: bad max allocs/op %q: %v", ln+1, fields[2], err)
		}
		if _, dup := out[fields[0]]; dup {
			return nil, nil, fmt.Errorf("line %d: duplicate budget for %s", ln+1, fields[0])
		}
		out[fields[0]] = budget{maxBytes: b, maxAllocs: a}
		order = append(order, fields[0])
	}
	return out, order, nil
}

// runCheck enforces the allocation budgets against a bench run.
func runCheck(budgetPath, benchPath string, stdin io.Reader, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(budgetPath)
	if err != nil {
		fmt.Fprintln(stderr, "bsprof:", err)
		return 2
	}
	buds, order, err := parseBudgets(data)
	if err != nil {
		fmt.Fprintf(stderr, "bsprof: %s: %v\n", budgetPath, err)
		return 2
	}

	var results []benchparse.Result
	if benchPath != "" {
		results, err = benchparse.LoadFile(benchPath)
	} else {
		results, err = benchparse.Read(stdin)
	}
	if err != nil {
		fmt.Fprintln(stderr, "bsprof:", err)
		return 2
	}

	byName := make(map[string]benchparse.Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}

	violations, checked, skipped := 0, 0, 0
	for _, name := range order {
		b := buds[name]
		r, ok := byName[name]
		if !ok {
			// Never silently cap coverage: a budgeted benchmark missing
			// from the run is visible in the output and the summary.
			fmt.Fprintf(stderr, "bsprof: budget skipped: %s (not in this bench run)\n", name)
			skipped++
			continue
		}
		checked++
		if r.BytesPerOp > b.maxBytes {
			fmt.Fprintf(stderr, "bsprof: OVER BUDGET: %s B/op %.0f > %.0f (+%.1f%%)\n",
				name, r.BytesPerOp, b.maxBytes, (r.BytesPerOp/b.maxBytes-1)*100)
			violations++
		}
		if r.AllocsPerOp > b.maxAllocs {
			fmt.Fprintf(stderr, "bsprof: OVER BUDGET: %s allocs/op %d > %d\n",
				name, r.AllocsPerOp, b.maxAllocs)
			violations++
		}
	}
	var unbudgeted []string
	for _, r := range results {
		if _, ok := buds[r.Name]; !ok && r.BytesPerOp > 0 {
			unbudgeted = append(unbudgeted, r.Name)
		}
	}
	sort.Strings(unbudgeted)
	for _, name := range unbudgeted {
		fmt.Fprintf(stderr, "bsprof: unbudgeted: %s (add to %s to gate it)\n", name, budgetPath)
	}

	if violations > 0 {
		fmt.Fprintf(stderr, "bsprof: %d budget violation(s) against %s (%d checked, %d skipped, %d unbudgeted)\n",
			violations, budgetPath, checked, skipped, len(unbudgeted))
		return 1
	}
	fmt.Fprintf(stdout, "bsprof: all %d budgeted benchmarks within %s (%d skipped, %d unbudgeted)\n",
		checked, budgetPath, skipped, len(unbudgeted))
	return 0
}
