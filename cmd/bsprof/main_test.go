package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"

	backscatter "dnsbackscatter"
)

func TestMain(m *testing.M) {
	// Sample every allocation so the tiny test workload produces dense
	// heap profiles; must be set before the workload allocates.
	runtime.MemProfileRate = 1
	os.Exit(m.Run())
}

// buildOnce runs one small pipeline (world with QNAME-minimizing
// resolvers, extract, train, classify) so the heap profile contains
// samples for every pipeline path bsprof attributes.
var buildOnce sync.Once

func runWorkload(t *testing.T) {
	t.Helper()
	buildOnce.Do(func() {
		// 5% scale with the JP-dominant classes deepened pre-scale, the
		// same shape the root determinism tests use to keep training
		// feasible on a tiny world.
		spec := backscatter.JPDitl().Scaled(0.05)
		spec.QMinFraction = 0.4 // exercise the dnssim minimization walk
		spec.MinQueriers = 10
		spec.Population[backscatter.Spam] = 300
		spec.Population[backscatter.Scan] = 300
		spec.Population[backscatter.Mail] = 200
		d := backscatter.Build(spec)
		m, err := d.TrainClassifier(1)
		if err != nil {
			panic(err)
		}
		m.ClassifyAll(d.Whole())
	})
}

// writeHeapProfile snapshots the live heap into a temp pprof file.
func writeHeapProfile(t *testing.T) string {
	t.Helper()
	runtime.GC()
	path := filepath.Join(t.TempDir(), "heap.pprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func runBsprof(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

// sitesUnder counts ranked site lines in the section headed by path.
func sitesUnder(output, path string) int {
	inSection := false
	n := 0
	for _, line := range strings.Split(output, "\n") {
		switch {
		case strings.HasPrefix(line, path+" ("):
			inSection = true
		case inSection && strings.HasPrefix(line, "  "):
			if strings.Contains(line, ". ") {
				n++
			}
		case inSection && line != "":
			return n
		}
	}
	return n
}

// TestHeapPaths pins the acceptance criterion: the per-path stage
// report names the top-3 allocation sites for the extract and
// QName-minimization paths of a real pipeline run.
func TestHeapPaths(t *testing.T) {
	runWorkload(t)
	heap := writeHeapProfile(t)
	code, stdout, stderr := runBsprof(t, "", "-heap", heap, "-paths", "-top", "3")
	if code != 0 {
		t.Fatalf("exit %d; stderr=%s", code, stderr)
	}
	for _, path := range []string{"extract", "qname-min", "train", "classify"} {
		if got := sitesUnder(stdout, path); got < 3 {
			t.Errorf("path %s lists %d sites, want 3:\n%s", path, got, stdout)
		}
	}
}

// TestHeapTopAndDiff drives the global ranking and the snapshot diff.
func TestHeapTopAndDiff(t *testing.T) {
	runWorkload(t)
	before := writeHeapProfile(t)
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 16384))
	}
	after := writeHeapProfile(t)
	_ = sink

	code, stdout, stderr := runBsprof(t, "", "-heap", after, "-top", "5")
	if code != 0 || !strings.Contains(stdout, "1.") {
		t.Fatalf("top ranking: exit %d stdout=%q stderr=%q", code, stdout, stderr)
	}
	code, stdout, stderr = runBsprof(t, "", "-heap", after, "-base", before)
	if code != 0 || !strings.Contains(stdout, "growth") {
		t.Fatalf("diff: exit %d stdout=%q stderr=%q", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "TestHeapTopAndDiff") {
		t.Errorf("diff did not surface the allocating test function:\n%s", stdout)
	}

	if code, _, _ := runBsprof(t, "", "-heap", after, "-type", "nope"); code != 2 {
		t.Errorf("unknown sample type: exit %d, want 2", code)
	}
	if code, _, _ := runBsprof(t, "", "-heap", filepath.Join(t.TempDir(), "missing")); code != 2 {
		t.Errorf("missing profile: exit %d, want 2", code)
	}
}

// TestReport pins the resource-report rendering path.
func TestReport(t *testing.T) {
	acct := backscatter.NewAccountant()
	acct.Stage("extract").AddShards(16)
	path := filepath.Join(t.TempDir(), "resources.json")
	if err := os.WriteFile(path, acct.Report().JSON(), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runBsprof(t, "", "-report", path)
	if code != 0 || !strings.Contains(stdout, "extract") {
		t.Fatalf("exit %d stdout=%q stderr=%q", code, stdout, stderr)
	}
	if code, _, _ := runBsprof(t, "", "-report", filepath.Join(t.TempDir(), "missing")); code != 2 {
		t.Error("missing report did not exit 2")
	}
}

const benchRun = `goos: linux
BenchmarkParallelExtract/w1-8	50	20000000 ns/op	20000000 B/op	5000 allocs/op
BenchmarkNewThing-8	100	1000 ns/op	512 B/op	3 allocs/op
PASS
`

func writeBudgets(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "alloc.budgets")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCheck drives the budget gate: pass, violation, skipped budget,
// and unbudgeted benchmark are all visible.
func TestCheck(t *testing.T) {
	budgets := writeBudgets(t, `# name  max B/op  max allocs/op
BenchmarkParallelExtract/w1  25000000  6000
BenchmarkGone                1000      10
`)
	code, stdout, stderr := runBsprof(t, benchRun, "-check", "-budgets", budgets)
	if code != 0 {
		t.Fatalf("within-budget run failed: stderr=%s", stderr)
	}
	if !strings.Contains(stdout, "1 skipped") || !strings.Contains(stdout, "1 unbudgeted") {
		t.Errorf("summary hides skips: %q", stdout)
	}
	if !strings.Contains(stderr, "budget skipped: BenchmarkGone") {
		t.Errorf("skipped budget not logged: %q", stderr)
	}
	if !strings.Contains(stderr, "unbudgeted: BenchmarkNewThing") {
		t.Errorf("unbudgeted benchmark not logged: %q", stderr)
	}

	tight := writeBudgets(t, "BenchmarkParallelExtract/w1 19000000 4000\n")
	code, _, stderr = runBsprof(t, benchRun, "-check", "-budgets", tight)
	if code != 1 {
		t.Fatalf("over-budget run exited %d, want 1; stderr=%s", code, stderr)
	}
	if !strings.Contains(stderr, "OVER BUDGET") || !strings.Contains(stderr, "B/op") || !strings.Contains(stderr, "allocs/op") {
		t.Errorf("violations not named: %q", stderr)
	}

	if code, _, _ := runBsprof(t, benchRun, "-check", "-budgets", filepath.Join(t.TempDir(), "missing")); code != 2 {
		t.Error("missing budget file did not exit 2")
	}
	bad := writeBudgets(t, "BenchmarkX 12\n")
	if code, _, _ := runBsprof(t, benchRun, "-check", "-budgets", bad); code != 2 {
		t.Error("malformed budget file did not exit 2")
	}
}

// TestCheckBenchFile pins -bench file input (text and trajectory JSON).
func TestCheckBenchFile(t *testing.T) {
	budgets := writeBudgets(t, "BenchmarkParallelExtract/w1 25000000 6000\n")
	benchPath := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(benchPath, []byte(benchRun), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runBsprof(t, "", "-check", "-budgets", budgets, "-bench", benchPath)
	if code != 0 {
		t.Fatalf("exit %d; stderr=%s", code, stderr)
	}
}

// TestNoMode pins the usage error.
func TestNoMode(t *testing.T) {
	if code, _, _ := runBsprof(t, ""); code != 2 {
		t.Error("no mode did not exit 2")
	}
}
