// Command bsrepro regenerates the paper's tables and figures from the
// simulated datasets and prints them in paper-style rows/series.
//
// Usage:
//
//	bsrepro -scale 0.5                 # everything
//	bsrepro -experiment table3,figure4 # a subset
//	bsrepro -list                      # available experiments
//	bsrepro -stats -experiment table1  # plus per-stage pipeline timings
//
// Tracing, time series, and resource accounting:
//
//	bsrepro -experiment table1 -trace traces.jsonl       # end-to-end lookup traces
//	bsrepro -experiment table1 -timeseries ts.json       # windowed metric buckets
//	bsrepro -experiment table1 -resources res.json       # per-stage resource report
//	bsrepro -experiment table1 -alerts alerts.jsonl      # alert transition log
//
// -alerts replays alert/SLO rules (built-in, or a file via -rules) over
// the windowed metrics after the experiments finish and writes the
// state-machine transition log; with -trace active, firing transitions
// carry worst-offender trace IDs. Trace JSONL, the windowed time-series
// JSON, and the alert transition log are byte-identical at any -workers
// count; render traces with cmd/bstrace and replay rules offline with
// cmd/bswatch. The -resources report
// is the ops channel: alloc deltas, GC cycles, and worker peaks per
// pipeline stage, scheduling-dependent by design; inspect it with
// cmd/bsprof -report.
//
// Batch-vs-stream replay:
//
//	bsrepro -stream -scale 0.3                    # print the comparison
//	bsrepro -stream -stream-out delta.json        # also write it as JSON
//
// -stream builds one JP dataset at -scale, trains the paper's classifier,
// replays the records through the bounded-memory streaming engine, and
// scores both paths against ground truth — the accuracy cost of sketched
// features, per class. The report is deterministic at any -workers count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	backscatter "dnsbackscatter"

	"dnsbackscatter/internal/alert"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/report"
	"dnsbackscatter/internal/simtime"
	"dnsbackscatter/internal/trace"
)

// runStream is the -stream mode: build one JP dataset, train the paper's
// classifier, replay the records through the streaming engine, and print
// the per-class accuracy of both paths against ground truth.
func runStream(scale float64, workers int, outPath string) error {
	spec := backscatter.JPDitl().Scaled(scale)
	if workers > 0 {
		spec = spec.WithParallelism(workers)
	}
	fmt.Fprintf(os.Stderr, "bsrepro: building JP dataset at scale %g\n", scale)
	d := backscatter.Build(spec)
	model, err := d.TrainClassifier(1)
	if err != nil {
		return err
	}
	cmp := d.CompareStream(backscatter.DefaultStreamSpec(), model)

	fmt.Printf("batch-vs-stream replay (JP, scale %g): %d batch / %d stream verdicts, %.1f%% agreement\n\n",
		scale, cmp.BatchVerdicts, cmp.StreamVerdicts, 100*cmp.Agreement)
	fmt.Printf("%-12s %7s  %8s %8s  %8s %8s  %7s %7s\n",
		"class", "support", "batch-P", "batch-R", "strm-P", "strm-R", "dP", "dR")
	for _, c := range cmp.PerClass {
		fmt.Printf("%-12s %7d  %8.3f %8.3f  %8.3f %8.3f  %+7.3f %+7.3f\n",
			c.Class, c.Support, c.BatchPrecision, c.BatchRecall,
			c.StreamPrecision, c.StreamRecall, c.PrecisionDelta, c.RecallDelta)
	}
	if outPath != "" {
		js, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(js, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bsrepro: wrote comparison to %s\n", outPath)
	}
	return nil
}

func main() {
	var (
		scale     = flag.Float64("scale", 0.5, "dataset population scale (1 = spec defaults)")
		exps      = flag.String("experiment", "all", "comma-separated experiment names, or all")
		heavy     = flag.Bool("heavy", false, "run the most expensive trial points too")
		list      = flag.Bool("list", false, "list experiments and exit")
		stats     = flag.Bool("stats", false, "print pipeline stage timings (µs) and metric totals after each experiment")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "pipeline worker goroutines (1 = sequential; output is identical either way)")
		fspec     = flag.String("faults", "", `fault-injection profile@seed (e.g. "lossy@7") applied to every dataset; empty disables`)
		trPath    = flag.String("trace", "", "write end-to-end lookup traces (sorted JSONL) to this file")
		trSamp    = flag.Int("trace-sample", 1, "trace 1 in N lookups (head-based, deterministic); requires -trace")
		tsPath    = flag.String("timeseries", "", "write windowed time-series metric buckets (JSON) to this file")
		window    = flag.Duration("window", time.Hour, "simulated-time bucket width for -timeseries")
		resPath   = flag.String("resources", "", "write the per-stage resource report (JSON, scheduling-dependent) to this file")
		streamOn  = flag.Bool("stream", false, "replay the dataset through the streaming engine and print the batch-vs-stream comparison, then exit")
		streamOut = flag.String("stream-out", "", "also write the batch-vs-stream comparison (JSON) to this file; requires -stream")
		alPath    = flag.String("alerts", "", "replay alert rules over the windowed metrics and write the transition log (sorted JSONL) to this file")
		rulesPath = flag.String("rules", "", "alert rule file for -alerts; empty uses the built-in rules")
	)
	flag.Parse()

	if *list {
		for _, e := range report.All() {
			fmt.Printf("%-20s %s\n", e.Name, e.Desc)
		}
		return
	}

	if _, err := backscatter.ParseFaults(*fspec); err != nil {
		fmt.Fprintf(os.Stderr, "bsrepro: %v\n", err)
		os.Exit(2)
	}

	if *streamOn {
		if err := runStream(*scale, *workers, *streamOut); err != nil {
			fmt.Fprintln(os.Stderr, "bsrepro:", err)
			os.Exit(1)
		}
		return
	}

	store := report.NewStore(*scale)
	store.Heavy = *heavy
	store.Workers = *workers
	store.Faults = *fspec

	if *trPath != "" {
		if *trSamp < 1 {
			*trSamp = 1
		}
		store.Trace = *trSamp
	}

	var reg *obs.Registry
	if *stats || *tsPath != "" || *alPath != "" {
		reg = obs.NewRegistry()
		store.Obs = reg
	}
	if *resPath != "" {
		store.Acct = backscatter.NewAccountant()
	}
	if *stats {
		// A main is free to time stages with the wall clock; microseconds
		// resolve the sub-second pipeline stages that simtime.Wall's whole
		// seconds would round to zero.
		reg.SetClock(func() simtime.Time { return simtime.Time(time.Now().UnixMicro()) })
	}
	if *tsPath != "" || *alPath != "" {
		width := simtime.Duration(*window / time.Second)
		reg.SetWindow(obs.NewWindow(width))
	}

	var todo []report.Experiment
	if *exps == "all" {
		todo = report.All()
	} else {
		for _, name := range strings.Split(*exps, ",") {
			e, ok := report.Find(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "bsrepro: unknown experiment %q (try -list)\n", name)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		start := time.Now()
		out := e.Run(store)
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n\n", e.Name, time.Since(start).Seconds())
		if *stats {
			fmt.Fprintf(os.Stderr, "pipeline stages after %s (µs):\n%s\n", e.Name, reg.StageReport())
			fmt.Fprintf(os.Stderr, "metric totals after %s:\n%s\n", e.Name, reg.Snapshot())
		}
	}

	if *trPath != "" {
		f, err := os.Create(*trPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsrepro:", err)
			os.Exit(1)
		}
		traces := 0
		for _, d := range store.Datasets() {
			t := d.Tracer()
			if t == nil {
				continue
			}
			traces += t.Len()
			if _, err := f.Write(t.JSONL()); err != nil {
				fmt.Fprintln(os.Stderr, "bsrepro:", err)
				os.Exit(1)
			}
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bsrepro:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bsrepro: wrote %d traces (1 in %d lookups) to %s\n", traces, *trSamp, *trPath)
	}
	if *tsPath != "" {
		if err := os.WriteFile(*tsPath, reg.Window().SnapshotJSON(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bsrepro:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bsrepro: wrote windowed time series (%s buckets) to %s\n", *window, *tsPath)
	}
	if *alPath != "" {
		rules := alert.DefaultRules()
		if *rulesPath != "" {
			src, err := os.ReadFile(*rulesPath)
			if err == nil {
				rules, err = alert.Parse(string(src))
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "bsrepro:", err)
				os.Exit(2)
			}
		}
		eng := alert.New(rules)
		// Worst-offender exemplars merge across every traced dataset the
		// experiments built (empty without -trace: transitions then carry
		// no trace IDs, and the log bytes stay deterministic either way).
		exemplars := func(from, to simtime.Time, n int) []trace.Exemplar {
			var lists [][]trace.Exemplar
			for _, d := range store.Datasets() {
				if t := d.Tracer(); t != nil {
					lists = append(lists, t.Exemplars(from, to, n))
				}
			}
			return trace.MergeExemplars(n, lists...)
		}
		eng.Eval(alert.Data{Series: reg.Window().Timeseries(), Exemplars: exemplars})
		if err := os.WriteFile(*alPath, eng.JSONL(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bsrepro:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bsrepro: wrote %d alert transitions (%d rules, %d firing) to %s\n",
			len(eng.Log()), len(rules), eng.Firing(), *alPath)
	}
	if *resPath != "" {
		if err := os.WriteFile(*resPath, store.Acct.Report().JSON(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bsrepro:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bsrepro: wrote per-stage resource report to %s\n", *resPath)
	}
}
