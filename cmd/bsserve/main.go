// Command bsserve runs an authoritative reverse-DNS server over UDP,
// answering PTR queries from a seeded synthetic world's originator
// profiles and logging the resulting backscatter — a live, networked
// version of the paper's final-authority sensor (§III-A).
//
// Usage:
//
//	bsserve -addr 127.0.0.1:5353 -seed 1404 -log backscatter.tsv
//
// then point bsdig (or dig -x) at it.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/dnsserver"
	"dnsbackscatter/internal/dnssim"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/simtime"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:5353", "UDP listen address")
		seed    = flag.Uint64("seed", 1404, "world seed for the zone contents")
		logPath = flag.String("log", "", "append observed backscatter records to this TSV file")
		name    = flag.String("authority", "final", "authority name in emitted records")
	)
	flag.Parse()

	// A seeded profile source: the same deterministic reverse-zone
	// distribution the simulator uses, re-keyed by this server's seed.
	profile := func(a ipaddr.Addr) dnssim.OriginatorProfile {
		p := dnssim.DefaultProfile(a + ipaddr.Addr(*seed))
		if p.HasName {
			p.Name = "host-" + a.String() + ".example.net"
		}
		return p
	}

	s, err := dnsserver.Listen(*addr, *name, profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsserve:", err)
		os.Exit(1)
	}
	defer s.Close()

	var lw *dnslog.Writer
	if *logPath != "" {
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsserve:", err)
			os.Exit(1)
		}
		defer f.Close()
		lw = dnslog.NewWriter(f)
		defer lw.Flush()
		s.SetSink(func(r dnslog.Record) {
			if err := lw.Write(r); err != nil {
				fmt.Fprintln(os.Stderr, "bsserve: log:", err)
			}
		})
	} else {
		s.SetSink(func(r dnslog.Record) {
			fmt.Printf("%s\tPTR %s\tfrom %s\trcode %d\n",
				simtime.Time(r.Time).String(), r.Originator, r.Querier, r.RCode)
		})
	}

	fmt.Fprintf(os.Stderr, "bsserve: authoritative for in-addr.arpa on %s (seed %d)\n", s.Addr(), *seed)
	fmt.Fprintf(os.Stderr, "bsserve: try: go run ./cmd/bsdig -server %s 8.8.8.8\n", s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Fprintf(os.Stderr, "\nbsserve: %d queries served, %d datagrams dropped\n", s.Queries(), s.Dropped())
}
