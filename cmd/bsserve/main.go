// Command bsserve runs an authoritative reverse-DNS server over UDP,
// answering PTR queries from a seeded synthetic world's originator
// profiles and logging the resulting backscatter — a live, networked
// version of the paper's final-authority sensor (§III-A).
//
// Usage:
//
//	bsserve -addr 127.0.0.1:5353 -seed 1404 -log backscatter.tsv
//
// then point bsdig (or dig -x) at it.
//
// With -http, bsserve also serves its live metrics, traces, windowed
// time series, and health endpoints:
//
//	bsserve -addr 127.0.0.1:5353 -http 127.0.0.1:8080
//	curl http://127.0.0.1:8080/                      # endpoint directory
//	curl http://127.0.0.1:8080/metrics               # sorted text
//	curl http://127.0.0.1:8080/metrics?format=json   # same, as JSON
//	curl http://127.0.0.1:8080/metrics.json          # always JSON
//	curl http://127.0.0.1:8080/traces                # recent span trees
//	curl 'http://127.0.0.1:8080/traces?rcode=nxdomain&format=json'
//	curl http://127.0.0.1:8080/timeseries            # bucketed sparklines
//	curl http://127.0.0.1:8080/healthz               # liveness: 200 once serving HTTP
//	curl http://127.0.0.1:8080/readyz                # readiness: 503 until serving state loaded
//	curl http://127.0.0.1:8080/debug/vars            # expvar
//
// /traces filters on originator=, querier=, rcode=, mindur= (seconds),
// and limit=. Tracing keeps the most recent -trace-keep traces in a ring.
// net/http/pprof profiling endpoints hang off /debug/pprof/.
//
// With -stream, every observed record also feeds a bounded-memory
// streaming classification engine (sliding dedup, per-originator
// sketches, hierarchical heavy hitters) that re-scores at -stream-epoch
// boundaries of record time:
//
//	bsserve -addr 127.0.0.1:5353 -http 127.0.0.1:8080 -stream
//	curl http://127.0.0.1:8080/stream                # canonical snapshot
//	curl http://127.0.0.1:8080/stream?format=json    # status document
//
// With -profiles DIR, bsserve continuously profiles itself: rolling
// CPU-profile windows of -profile-window each, plus heap snapshots
// gated on -heap-growth, all in a bounded on-disk ring of
// -profile-keep files per kind. The ring is listed and downloadable:
//
//	bsserve -addr 127.0.0.1:5353 -http 127.0.0.1:8080 -profiles /tmp/bsprofiles
//	curl http://127.0.0.1:8080/profiles              # ring listing
//	curl -O http://127.0.0.1:8080/profiles/cpu-000001.pprof
//	go run ./cmd/bsprof -heap heap-000002.pprof -paths
//
// With -alerts (a rule file, or "default" for the built-in rules),
// bsserve re-evaluates the rules against the live window every
// -alert-every and serves the state machine:
//
//	bsserve -addr 127.0.0.1:5353 -http 127.0.0.1:8080 -alerts default
//	curl http://127.0.0.1:8080/alerts                # dashboard + transition tail
//	curl 'http://127.0.0.1:8080/alerts?state=firing&format=json'
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"time"

	backscatter "dnsbackscatter"

	"dnsbackscatter/internal/alert"
	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/dnsserver"
	"dnsbackscatter/internal/dnssim"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/prof"
	"dnsbackscatter/internal/simtime"
	"dnsbackscatter/internal/stream"
	"dnsbackscatter/internal/trace"
)

// serveStream exposes the streaming engine on /stream: the canonical
// text snapshot (verdicts, sketch summaries, heavy hitters) by default,
// the status document with ?format=json.
func serveStream(e *stream.Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(e.StatusJSON())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(e.Snapshot())
	}
}

// serveTraces exposes the tracer's ring on /traces: span trees by
// default, JSON with ?format=json, filtered by originator=, querier=,
// rcode=, mindur= (seconds), and limit= query parameters.
func serveTraces(tr *trace.Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		f := trace.Filter{
			Originator: q.Get("originator"),
			Querier:    q.Get("querier"),
			RCode:      q.Get("rcode"),
			Limit:      50,
		}
		if v := q.Get("mindur"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "bad mindur: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.MinDur = simtime.Duration(n)
		}
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "bad limit: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		ts := tr.Traces(f)
		if q.Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(ts)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%d traces held (%d evicted), showing %d\n\n", tr.Len(), tr.Dropped(), len(ts))
		for _, t := range ts {
			fmt.Fprintln(w, trace.RenderTree(t))
		}
	}
}

// serveTimeseries exposes the window's buckets on /timeseries: sorted
// text plus sparklines by default, the JSON document with ?format=json.
func serveTimeseries(win *obs.Window) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(win.SnapshotJSON())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(win.Snapshot())
		_, _ = w.Write([]byte("\n"))
		_, _ = w.Write(win.Sparklines())
	}
}

// serveMetricsText exposes the registry snapshot on /metrics: sorted
// text by default, JSON with ?format=json.
func serveMetricsText(reg *obs.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			serveMetricsJSON(reg)(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(reg.Snapshot())
	}
}

// serveMetricsJSON exposes the registry snapshot on /metrics.json:
// always the JSON document, whatever the query string says.
func serveMetricsJSON(reg *obs.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(reg.SnapshotJSON())
	}
}

// serveAlerts exposes the alert engine on /alerts: the text dashboard
// (summary, per-rule sparklines, transition tail) by default, the status
// document with ?format=json, both narrowed by state= and severity=.
func serveAlerts(al *alert.Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		f := alert.Filter{State: q.Get("state"), Severity: q.Get("severity")}
		if q.Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(al.StatusJSON(f))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(al.RenderText(f))
	}
}

// serveIndex answers / with a plain-text directory of the routes this
// process actually registered, and 404s every other unclaimed path (the
// "/" mux pattern would otherwise swallow typos with a 200).
func serveIndex(routes [][2]string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "bsserve endpoints:")
		for _, rt := range routes {
			fmt.Fprintf(w, "  %-18s %s\n", rt[0], rt[1])
		}
	}
}

// newMux assembles bsserve's HTTP surface. Nil components simply leave
// their routes unregistered, so tests can wire exactly the handlers
// under test. The ready flag backs /readyz: 503 until the operational
// state (zone, faults, sink, tracer) is loaded, 200 after — the split
// load balancers expect between "process is up" and "safe to route
// to". /debug/ (pprof, expvar) delegates to the default mux, where
// those packages self-register.
func newMux(reg *obs.Registry, win *obs.Window, tr *trace.Tracer, cont *prof.Continuous, eng *stream.Engine, al *alert.Engine, ready *atomic.Bool) *http.ServeMux {
	mux := http.NewServeMux()
	routes := [][2]string{
		{"/healthz", "liveness: 200 once serving HTTP"},
		{"/readyz", "readiness: 503 until serving state loaded"},
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready == nil || !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "loading")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	if reg != nil {
		mux.HandleFunc("/metrics", serveMetricsText(reg))
		mux.HandleFunc("/metrics.json", serveMetricsJSON(reg))
		routes = append(routes,
			[2]string{"/metrics", "sorted metric snapshot (?format=json)"},
			[2]string{"/metrics.json", "metric snapshot, always JSON"})
	}
	if win != nil {
		mux.HandleFunc("/timeseries", serveTimeseries(win))
		routes = append(routes, [2]string{"/timeseries", "bucketed series + sparklines (?format=json)"})
	}
	if tr != nil {
		mux.HandleFunc("/traces", serveTraces(tr))
		routes = append(routes, [2]string{"/traces", "recent span trees (originator=, rcode=, format=json)"})
	}
	if cont != nil {
		h := cont.Handler()
		mux.Handle("/profiles", h)
		mux.Handle("/profiles/", h)
		routes = append(routes, [2]string{"/profiles", "continuous-profiling ring listing + downloads"})
	}
	if eng != nil {
		mux.HandleFunc("/stream", serveStream(eng))
		routes = append(routes, [2]string{"/stream", "streaming-classifier snapshot (?format=json)"})
	}
	if al != nil {
		mux.HandleFunc("/alerts", serveAlerts(al))
		routes = append(routes, [2]string{"/alerts", "alert dashboard (state=, severity=, format=json)"})
	}
	routes = append(routes, [2]string{"/debug/", "expvar and pprof"})
	mux.Handle("/debug/", http.DefaultServeMux)
	mux.HandleFunc("/", serveIndex(routes))
	return mux
}

// alertLoop re-evaluates the alert rules every tick against the live
// window, trace ring, and stream status. The engine's watermark makes
// repeated evaluation idempotent per bucket, so ticking faster than the
// bucket width only costs the snapshot copy. Wall-clock pacing lives
// here in the operational main; the alert package itself is clocked
// purely by the bucket times in the data.
func alertLoop(al *alert.Engine, win *obs.Window, tr *trace.Tracer, eng *stream.Engine, every time.Duration) {
	for {
		time.Sleep(every)
		d := alert.Data{
			Series:  win.Timeseries(),
			Through: simtime.Wall(),
		}
		if tr != nil {
			d.Exemplars = tr.Exemplars
		}
		if eng != nil {
			d.Stream = eng.Status().Values()
		}
		al.Eval(d)
	}
}

// loadAlertRules resolves the -alerts flag: the built-in rule set for
// "default", otherwise a rule file parsed from disk.
func loadAlertRules(spec string) ([]alert.Rule, error) {
	if spec == "default" {
		return alert.DefaultRules(), nil
	}
	src, err := os.ReadFile(spec)
	if err != nil {
		return nil, err
	}
	return alert.Parse(string(src))
}

// serveHTTP publishes the registry on expvar and runs the HTTP server
// until it fails or the process exits.
func serveHTTP(httpAddr string, mux *http.ServeMux, reg *obs.Registry) {
	expvar.Publish("backscatter", expvar.Func(func() any {
		var doc any
		// The snapshot is our own marshaling; re-parse so expvar nests it
		// as structured JSON rather than one giant string.
		if err := json.Unmarshal(reg.SnapshotJSON(), &doc); err != nil {
			return err.Error()
		}
		return doc
	}))
	srv := &http.Server{Addr: httpAddr, Handler: mux}
	fmt.Fprintf(os.Stderr, "bsserve: metrics on http://%s/metrics (pprof on /debug/pprof/)\n", httpAddr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "bsserve: http:", err)
	}
}

// profileLoop drives the continuous profiler: back-to-back CPU windows
// of the given width, with a heap-growth check at each window boundary.
// Wall-clock pacing lives here, in the operational main, so the prof
// package itself stays free of real-time waits (and usable from
// deterministic code).
func profileLoop(cont *prof.Continuous, window time.Duration) {
	for {
		if err := cont.StartCPU(); err != nil {
			fmt.Fprintln(os.Stderr, "bsserve: profiling stopped:", err)
			return
		}
		time.Sleep(window)
		if _, err := cont.StopCPU(); err != nil {
			fmt.Fprintln(os.Stderr, "bsserve: profiling stopped:", err)
			return
		}
		if _, _, err := cont.MaybeHeapSnapshot(); err != nil {
			fmt.Fprintln(os.Stderr, "bsserve: heap snapshot:", err)
		}
	}
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:5353", "UDP listen address")
		seed       = flag.Uint64("seed", 1404, "world seed for the zone contents")
		logPath    = flag.String("log", "", "append observed backscatter records to this TSV file")
		name       = flag.String("authority", "final", "authority name in emitted records")
		httpAddr   = flag.String("http", "", "serve /metrics, /traces, /timeseries, /healthz, /readyz, /profiles, /debug/vars, and /debug/pprof on this address")
		fspec      = flag.String("faults", "", `fault-injection profile@seed (e.g. "lossy@7"); empty disables`)
		trSamp     = flag.Uint64("trace-sample", 1, "trace 1 in N queries (0 disables tracing); served on /traces")
		trKeep     = flag.Int("trace-keep", 512, "bound the in-memory trace ring to the most recent N traces")
		window     = flag.Duration("window", time.Minute, "bucket width for the /timeseries record series")
		profDir    = flag.String("profiles", "", "continuously profile into this directory (served on /profiles); empty disables")
		profWindow = flag.Duration("profile-window", 30*time.Second, "width of each rolling CPU-profile window")
		profKeep   = flag.Int("profile-keep", 8, "bound the profile ring to N files per kind (cpu, heap)")
		heapGrowth = flag.Int64("heap-growth", 16<<20, "heap snapshot when HeapAlloc grew this many bytes since the last one (0 snapshots every window)")
		streamOn   = flag.Bool("stream", false, "feed observed records through the streaming classification engine (served on /stream)")
		streamEp   = flag.Duration("stream-epoch", time.Hour, "record-time re-scoring cadence of the streaming engine")
		streamMax  = flag.Int("stream-max", 1<<16, "bound the streaming engine's tracked originators")
		alertSpec  = flag.String("alerts", "", `evaluate this alert rule file against the live window (served on /alerts; "default" for the built-in rules); requires -http`)
		alertEvery = flag.Duration("alert-every", 15*time.Second, "re-evaluation cadence of the alert rules")
	)
	flag.Parse()

	if *alertSpec != "" && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "bsserve: -alerts requires -http (the engine evaluates the HTTP window)")
		os.Exit(2)
	}

	plan, err := backscatter.ParseFaults(*fspec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsserve:", err)
		os.Exit(2)
	}

	// A seeded profile source: the same deterministic reverse-zone
	// distribution the simulator uses, re-keyed by this server's seed.
	profile := func(a ipaddr.Addr) dnssim.OriginatorProfile {
		p := dnssim.DefaultProfile(a + ipaddr.Addr(*seed))
		if p.HasName {
			p.Name = "host-" + a.String() + ".example.net"
		}
		return p
	}

	s, err := dnsserver.Listen(*addr, *name, profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsserve:", err)
		os.Exit(1)
	}
	defer s.Close()
	// Install faults before metrics so SetMetrics registers the plan's
	// counters and they appear (at zero) in the first /metrics scrape.
	s.SetFaults(plan)
	if plan != nil {
		fmt.Fprintf(os.Stderr, "bsserve: injecting faults: %s\n", plan)
	}

	var cont *prof.Continuous
	if *profDir != "" {
		growth := *heapGrowth
		if growth < 0 {
			growth = 0
		}
		cont, err = prof.NewContinuous(prof.ContinuousConfig{
			Dir:        *profDir,
			MaxPerKind: *profKeep,
			HeapGrowth: uint64(growth),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsserve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bsserve: continuous profiling into %s (%s CPU windows, %d files/kind)\n",
			cont.Dir(), *profWindow, *profKeep)
		go profileLoop(cont, *profWindow)
	}

	// The streaming engine classifies live backscatter in bounded
	// memory, ticking on record time (no model is loaded here, so it
	// keeps sketches and heavy hitters without verdicts). Its geo view
	// and reverse names come from the same seeded synthetic zone the
	// server answers from.
	mkEngine := func(reg *obs.Registry) *stream.Engine {
		return stream.New(stream.Config{
			Geo: geo.NewRegistry(*seed),
			NameOf: func(a ipaddr.Addr) (string, bool) {
				p := profile(a)
				if !p.HasName {
					return "", p.FinalUnreachable
				}
				return p.Name, p.FinalUnreachable
			},
			Epoch:          simtime.Duration(*streamEp / time.Second),
			MaxOriginators: *streamMax,
			Seed:           *seed,
			Obs:            reg,
		})
	}

	// Windowed record counters, fed from the sink below with each
	// record's own timestamp (an operational main may window on wall
	// time; the library's determinism rules bind simulations, not
	// servers).
	var recTotal, recNX *obs.Counter
	var eng *stream.Engine
	var ready atomic.Bool
	if *httpAddr != "" {
		reg := obs.NewRegistry()
		reg.SetClock(simtime.Wall) // operational main: wall-backed spans
		s.SetMetrics(reg)
		win := obs.NewWindow(simtime.Duration(*window / time.Second))
		reg.SetWindow(win)
		recTotal = reg.Counter("served_records_total")
		recNX = reg.Counter("served_records_nxdomain_total")
		var tr *trace.Tracer
		if *trSamp > 0 {
			tr = trace.New(*seed, *trSamp)
			tr.SetMax(*trKeep)
			s.SetTracer(tr)
		}
		if *streamOn {
			eng = mkEngine(reg)
		}
		var al *alert.Engine
		if *alertSpec != "" {
			rules, err := loadAlertRules(*alertSpec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bsserve:", err)
				os.Exit(2)
			}
			al = alert.New(rules)
			fmt.Fprintf(os.Stderr, "bsserve: evaluating %d alert rules every %s on /alerts\n",
				len(rules), *alertEvery)
			go alertLoop(al, win, tr, eng, *alertEvery)
		}
		go serveHTTP(*httpAddr, newMux(reg, win, tr, cont, eng, al, &ready), reg)
	} else if *streamOn {
		eng = mkEngine(nil)
	}

	observe := func(r dnslog.Record) {
		recTotal.IncAt(simtime.Time(r.Time))
		if r.RCode == 3 {
			recNX.IncAt(simtime.Time(r.Time))
		}
		if eng != nil {
			eng.Ingest([]dnslog.Record{r})
		}
	}

	var lw *dnslog.Writer
	if *logPath != "" {
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsserve:", err)
			os.Exit(1)
		}
		defer f.Close()
		lw = dnslog.NewWriter(f)
		defer lw.Flush()
		s.SetSink(func(r dnslog.Record) {
			observe(r)
			if err := lw.Write(r); err != nil {
				fmt.Fprintln(os.Stderr, "bsserve: log:", err)
			}
		})
	} else {
		s.SetSink(func(r dnslog.Record) {
			observe(r)
			fmt.Printf("%s\tPTR %s\tfrom %s\trcode %d\n",
				simtime.Time(r.Time).String(), r.Originator, r.Querier, r.RCode)
		})
	}

	// Serving state is fully loaded — zone, faults, sink, tracer — so
	// flip readiness and let /readyz answer 200.
	ready.Store(true)

	fmt.Fprintf(os.Stderr, "bsserve: authoritative for in-addr.arpa on %s (seed %d)\n", s.Addr(), *seed)
	fmt.Fprintf(os.Stderr, "bsserve: try: go run ./cmd/bsdig -server %s 8.8.8.8\n", s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Fprintf(os.Stderr, "\nbsserve: %d queries served, %d datagrams dropped\n", s.Queries(), s.Dropped())
	if eng != nil {
		st := eng.Status()
		fmt.Fprintf(os.Stderr, "bsserve: stream tracked %d/%d originators over %d records (%d epochs)\n",
			st.Tracked, st.MaxTracked, st.Records, st.Epochs)
	}
}
