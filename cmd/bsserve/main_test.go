package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"dnsbackscatter/internal/alert"
	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/prof"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
	"dnsbackscatter/internal/stream"
	"dnsbackscatter/internal/trace"
)

// get issues one in-process request against the mux.
func get(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// TestHealthz pins liveness: 200 as soon as the mux serves, regardless
// of readiness.
func TestHealthz(t *testing.T) {
	var ready atomic.Bool
	mux := newMux(nil, nil, nil, nil, nil, nil, &ready)
	if code, body := get(t, mux, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

// TestReadyzFlips pins the readiness contract: 503 while loading, 200
// once the serving state is up, 503 again for a nil flag (a mux wired
// without one never reports ready).
func TestReadyzFlips(t *testing.T) {
	var ready atomic.Bool
	mux := newMux(nil, nil, nil, nil, nil, nil, &ready)
	if code, body := get(t, mux, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "loading") {
		t.Fatalf("before flip: /readyz = %d %q", code, body)
	}
	ready.Store(true)
	if code, body := get(t, mux, "/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("after flip: /readyz = %d %q", code, body)
	}
	nilMux := newMux(nil, nil, nil, nil, nil, nil, nil)
	if code, _ := get(t, nilMux, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("nil flag: /readyz = %d, want 503", code)
	}
}

// TestMetricsAndTimeseries pins the registry and window routes in both
// text and JSON renderings.
func TestMetricsAndTimeseries(t *testing.T) {
	reg := obs.NewRegistry()
	win := obs.NewWindow(simtime.Duration(60))
	reg.SetWindow(win)
	reg.Counter("served_records_total").IncAt(simtime.Time(5))
	mux := newMux(reg, win, nil, nil, nil, nil, nil)

	if code, body := get(t, mux, "/metrics"); code != http.StatusOK || !strings.Contains(body, "served_records_total") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get(t, mux, "/metrics.json"); code != http.StatusOK || !strings.Contains(body, "{") {
		t.Fatalf("/metrics.json = %d %q", code, body)
	}
	if code, body := get(t, mux, "/metrics?format=json"); code != http.StatusOK || !strings.Contains(body, "{") {
		t.Fatalf("/metrics?format=json = %d %q", code, body)
	}
	if code, _ := get(t, mux, "/timeseries"); code != http.StatusOK {
		t.Fatalf("/timeseries = %d", code)
	}
	if code, body := get(t, mux, "/timeseries?format=json"); code != http.StatusOK || !strings.Contains(body, "{") {
		t.Fatalf("/timeseries?format=json = %d %q", code, body)
	}
}

// TestTracesRoute pins the tracer route, including the bad-parameter
// rejections.
func TestTracesRoute(t *testing.T) {
	tr := trace.New(1, 1)
	mux := newMux(nil, nil, tr, nil, nil, nil, nil)
	if code, body := get(t, mux, "/traces"); code != http.StatusOK || !strings.Contains(body, "traces held") {
		t.Fatalf("/traces = %d %q", code, body)
	}
	if code, _ := get(t, mux, "/traces?format=json"); code != http.StatusOK {
		t.Fatalf("/traces?format=json = %d", code)
	}
	if code, _ := get(t, mux, "/traces?mindur=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad mindur = %d, want 400", code)
	}
	if code, _ := get(t, mux, "/traces?limit=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad limit = %d, want 400", code)
	}
}

// TestProfilesRoute pins the continuous-profiling ring mount: listing,
// download, and the 404 for names outside the ring.
func TestProfilesRoute(t *testing.T) {
	cont, err := prof.NewContinuous(prof.ContinuousConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	name, err := cont.HeapSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	mux := newMux(nil, nil, nil, cont, nil, nil, nil)

	code, body := get(t, mux, "/profiles")
	if code != http.StatusOK || !strings.Contains(body, name) {
		t.Fatalf("/profiles = %d %q", code, body)
	}
	if code, body := get(t, mux, "/profiles/"+name); code != http.StatusOK || len(body) == 0 {
		t.Fatalf("download = %d (%d bytes)", code, len(body))
	}
	if code, _ := get(t, mux, "/profiles/no-such.pprof"); code != http.StatusNotFound {
		t.Fatalf("unknown name = %d, want 404", code)
	}
}

// TestStreamRoute pins the streaming-engine mount: the canonical text
// snapshot, the JSON status, and the 404 when -stream is off.
func TestStreamRoute(t *testing.T) {
	eng := stream.New(stream.Config{
		Geo:    geo.NewRegistry(1),
		NameOf: func(ipaddr.Addr) (string, bool) { return "host.example.net", false },
		Epoch:  simtime.Hour,
		Seed:   1,
	})
	st := rng.New(3)
	recs := make([]dnslog.Record, 0, 64)
	for i := 0; i < 64; i++ {
		recs = append(recs, dnslog.Record{
			Time:       simtime.Time(i * 10),
			Originator: ipaddr.MustParse("10.0.0.1"),
			Querier:    ipaddr.Addr(st.Uint64()),
		})
	}
	eng.Ingest(recs)
	eng.Tick(simtime.Time(simtime.Hour))
	mux := newMux(nil, nil, nil, nil, eng, nil, nil)

	if code, body := get(t, mux, "/stream"); code != http.StatusOK || !strings.Contains(body, "originators") {
		t.Fatalf("/stream = %d %q", code, body)
	}
	if code, body := get(t, mux, "/stream?format=json"); code != http.StatusOK || !strings.Contains(body, "\"tracked\"") {
		t.Fatalf("/stream?format=json = %d %q", code, body)
	}
	bare := newMux(nil, nil, nil, nil, nil, nil, nil)
	if code, _ := get(t, bare, "/stream"); code != http.StatusNotFound {
		t.Fatalf("/stream without engine = %d, want 404", code)
	}
}

// TestProfilesUnmounted pins that a mux without a profiler 404s the
// route instead of panicking.
func TestProfilesUnmounted(t *testing.T) {
	mux := newMux(nil, nil, nil, nil, nil, nil, nil)
	if code, _ := get(t, mux, "/profiles"); code != http.StatusNotFound {
		t.Fatalf("/profiles without ring = %d, want 404", code)
	}
}

// getFull issues one in-process request and also returns the response
// Content-Type.
func getFull(t *testing.T, mux *http.ServeMux, path string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String(), rec.Header().Get("Content-Type")
}

// TestIndexPage pins the / directory: it lists exactly the mounted
// routes and 404s every unclaimed path instead of answering 200.
func TestIndexPage(t *testing.T) {
	reg := obs.NewRegistry()
	win := obs.NewWindow(simtime.Duration(60))
	reg.SetWindow(win)
	mux := newMux(reg, win, nil, nil, nil, nil, nil)

	code, body, ct := getFull(t, mux, "/")
	if code != http.StatusOK || ct != "text/plain; charset=utf-8" {
		t.Fatalf("/ = %d %q", code, ct)
	}
	for _, want := range []string{"/healthz", "/readyz", "/metrics", "/metrics.json", "/timeseries", "/debug/"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %s:\n%s", want, body)
		}
	}
	for _, absent := range []string{"/traces", "/stream", "/alerts", "/profiles"} {
		if strings.Contains(body, absent) {
			t.Errorf("index lists unmounted %s:\n%s", absent, body)
		}
	}
	if code, _, _ := getFull(t, mux, "/no-such-page"); code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", code)
	}
}

// TestMetricsContentTypes pins the /metrics and /metrics.json contract:
// text route serves sorted text (JSON only on ?format=json), the .json
// route serves the JSON document unconditionally.
func TestMetricsContentTypes(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("served_records_total").Inc()
	mux := newMux(reg, nil, nil, nil, nil, nil, nil)

	code, body, ct := getFull(t, mux, "/metrics")
	if code != http.StatusOK || ct != "text/plain; charset=utf-8" {
		t.Fatalf("/metrics = %d %q", code, ct)
	}
	if !strings.HasPrefix(body, "served_records_total") {
		t.Fatalf("/metrics body = %q, want sorted text", body)
	}

	for _, path := range []string{"/metrics.json", "/metrics.json?format=text", "/metrics?format=json"} {
		code, body, ct := getFull(t, mux, path)
		if code != http.StatusOK || ct != "application/json" {
			t.Fatalf("%s = %d %q", path, code, ct)
		}
		if !strings.HasPrefix(body, "{") || !strings.Contains(body, `"served_records_total"`) {
			t.Fatalf("%s body = %q, want the JSON document", path, body)
		}
	}
	if _, text, _ := getFull(t, mux, "/metrics"); text == "" {
		t.Fatal("text render empty")
	}
}

// TestAlertsRoute pins the /alerts mount: dashboard text, JSON status,
// state/severity filters, and the 404 when -alerts is off.
func TestAlertsRoute(t *testing.T) {
	rules, err := alert.Parse("alert hot\n  expr window(m_total)\n  op >=\n  threshold 5\n  severity high\n")
	if err != nil {
		t.Fatal(err)
	}
	al := alert.New(rules)
	al.Eval(alert.Data{Series: obs.Timeseries{Width: 60, Series: []obs.Series{
		{Metric: "m_total", Points: []obs.Point{{T: 0, V: 9}}},
	}}})
	mux := newMux(nil, nil, nil, nil, nil, al, nil)

	code, body, ct := getFull(t, mux, "/alerts")
	if code != http.StatusOK || ct != "text/plain; charset=utf-8" || !strings.Contains(body, "hot") {
		t.Fatalf("/alerts = %d %q %q", code, ct, body)
	}
	code, body, ct = getFull(t, mux, "/alerts?format=json")
	if code != http.StatusOK || ct != "application/json" || !strings.Contains(body, `"firing"`) {
		t.Fatalf("/alerts?format=json = %d %q %q", code, ct, body)
	}
	if _, body, _ := getFull(t, mux, "/alerts?state=pending"); strings.Contains(body, "state=firing") {
		t.Fatalf("state filter leaked firing rule:\n%s", body)
	}
	if _, body, _ := getFull(t, mux, "/alerts?severity=low&format=json"); strings.Contains(body, `"hot"`) {
		t.Fatalf("severity filter leaked high rule:\n%s", body)
	}
	bare := newMux(nil, nil, nil, nil, nil, nil, nil)
	if code, _, _ := getFull(t, bare, "/alerts"); code != http.StatusNotFound {
		t.Fatalf("/alerts without engine = %d, want 404", code)
	}
}
