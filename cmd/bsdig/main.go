// Command bsdig performs reverse (PTR) lookups against a DNS server —
// a minimal dig -x built on this repository's wire format, useful for
// poking a bsserve instance or any authoritative reverse zone.
//
// Usage:
//
//	bsdig -server 127.0.0.1:5353 8.8.8.8 1.1.1.1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dnsbackscatter/internal/dnsserver"
	"dnsbackscatter/internal/ipaddr"
)

func main() {
	var (
		server  = flag.String("server", "127.0.0.1:5353", "DNS server address")
		timeout = flag.Duration("timeout", 500*time.Millisecond, "per-attempt timeout")
		retries = flag.Int("retries", 2, "retransmits after the first attempt")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "bsdig: usage: bsdig [-server host:port] addr [addr...]")
		os.Exit(2)
	}

	c := &dnsserver.Client{Timeout: *timeout, Retries: *retries}
	exit := 0
	for _, arg := range flag.Args() {
		a, err := ipaddr.Parse(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsdig: %v\n", err)
			exit = 1
			continue
		}
		target, rcode, sent, err := c.LookupPTR(*server, a)
		switch {
		case err != nil:
			fmt.Printf("%s\t%s\t;; %v after %d attempts\n", a, a.ReverseName(), err, sent)
			exit = 1
		case rcode != 0:
			fmt.Printf("%s\t%s\t;; rcode %d\n", a, a.ReverseName(), rcode)
		default:
			fmt.Printf("%s\t%s\tPTR\t%s\n", a, a.ReverseName(), target)
		}
	}
	os.Exit(exit)
}
