// Command mdlint checks the repository's Markdown files: every relative
// link and bare back-ticked file reference must point at a path that
// exists, so docs cannot silently rot as files move.
//
// Usage:
//
//	mdlint            # lint *.md under the current directory
//	mdlint DIR...     # lint *.md under each DIR
//
// Checked forms:
//
//   - [text](relative/path) — inline links; absolute URLs (scheme://),
//     #fragments, and mailto: are skipped, a trailing #fragment is
//     stripped before the existence check.
//   - `path/file.ext` — back-ticked references that look like repo paths
//     (contain a slash or end in .md/.json/.go); command lines, globs,
//     and code spans with spaces are skipped.
//
// It also enforces hot-path documentation coverage: every function or
// type annotated //bslint:hotpath in the Go sources must be mentioned by
// name in PERFORMANCE.md (methods as Receiver.Name), so the allocation
// playbook cannot drift from the set of paths the hotalloc lint guards.
//
// Exit status 1 if any reference is broken.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	// linkRe captures the target of [text](target) inline links.
	linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	// tickRe captures single-back-ticked spans.
	tickRe = regexp.MustCompile("`([^`\n]+)`")
	// pathy decides whether a back-ticked span is meant as a repo path.
	pathy = regexp.MustCompile(`^[\w./-]+$`)
)

// skipLink reports whether a link target is out of scope: external URLs,
// in-page fragments, and mail links.
func skipLink(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "#") ||
		strings.HasPrefix(target, "mailto:")
}

// checkFile returns one message per broken reference in the file.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	var broken []string
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skipLink(target) {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				broken = append(broken, fmt.Sprintf("%s:%d: broken link %q", path, i+1, m[1]))
			}
		}
		for _, m := range tickRe.FindAllStringSubmatch(line, -1) {
			ref := m[1]
			if !pathy.MatchString(ref) {
				continue
			}
			// URL paths (`/metrics.json`) and bare extensions (`.md`)
			// are not repo references.
			if strings.HasPrefix(ref, "/") || strings.HasPrefix(ref, ".") {
				continue
			}
			// Only spans that unambiguously name repo files: a slash-free
			// span must be a Markdown or JSON document at the repo level.
			slashed := strings.Contains(ref, "/")
			doc := strings.HasSuffix(ref, ".md") || strings.HasSuffix(ref, ".json")
			if !doc && !slashed {
				continue
			}
			if slashed && !doc && !strings.HasSuffix(ref, ".go") {
				// Directory-ish references (internal/obs, cmd/bsgen, a/b
				// flags): require existence only when they parse as an
				// extant path layout; skip everything else to avoid
				// false positives on prose like "originator/querier".
				if _, err := os.Stat(filepath.Join(dir, ref)); err != nil {
					continue
				}
			}
			if _, err := os.Stat(filepath.Join(dir, ref)); err != nil {
				broken = append(broken, fmt.Sprintf("%s:%d: broken file reference %q", path, i+1, ref))
			}
		}
	}
	return broken, nil
}

var (
	// hotFuncRe splits a func declaration into optional receiver type
	// and name; hotTypeRe matches annotated type declarations.
	hotFuncRe = regexp.MustCompile(`^func (?:\((?:\w+ )?\*?(\w+)\) )?(\w+)`)
	hotTypeRe = regexp.MustCompile(`^type (\w+)`)
)

// hotpathName extracts the documented name of the declaration a
// //bslint:hotpath comment annotates: Receiver.Name for methods, the
// bare identifier for functions and types, "" for anything else.
func hotpathName(decl string) string {
	if m := hotFuncRe.FindStringSubmatch(decl); m != nil {
		if m[1] != "" {
			return m[1] + "." + m[2]
		}
		return m[2]
	}
	if m := hotTypeRe.FindStringSubmatch(decl); m != nil {
		return m[1]
	}
	return ""
}

// checkHotpaths walks the Go sources under roots and reports every
// //bslint:hotpath declaration whose name PERFORMANCE.md (doc) does not
// mention. Test files and testdata are out of scope.
func checkHotpaths(roots []string, doc string) ([]string, error) {
	text, err := os.ReadFile(doc)
	if err != nil {
		return nil, fmt.Errorf("%s: %w (every //bslint:hotpath function must be documented there)", doc, err)
	}
	var missing []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name == ".git" || name == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			lines := strings.Split(string(data), "\n")
			for i, line := range lines {
				if strings.TrimSpace(line) != "//bslint:hotpath" {
					continue
				}
				for j := i + 1; j < len(lines); j++ {
					t := strings.TrimSpace(lines[j])
					if t == "" || strings.HasPrefix(t, "//") {
						continue
					}
					if name := hotpathName(t); name != "" && !strings.Contains(string(text), name) {
						missing = append(missing, fmt.Sprintf("%s:%d: hotpath %s not mentioned in %s", path, j+1, name, doc))
					}
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return missing, nil
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name == ".git" || name == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdlint:", err)
			os.Exit(1)
		}
	}
	bad := 0
	for _, f := range files {
		broken, err := checkFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdlint:", err)
			os.Exit(1)
		}
		for _, msg := range broken {
			fmt.Println(msg)
			bad++
		}
	}
	missing, err := checkHotpaths(roots, "PERFORMANCE.md")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdlint:", err)
		os.Exit(1)
	}
	for _, msg := range missing {
		fmt.Println(msg)
		bad++
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "mdlint: %d broken reference(s) in %d file(s)\n", bad, len(files))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mdlint: %d file(s) clean\n", len(files))
}
