package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	backscatter "dnsbackscatter"
)

// artifacts builds one small faulted run and writes its time-series and
// trace artifacts into dir, exactly as bsrepro would.
func artifacts(t *testing.T, dir string) (tsPath, trPath string) {
	t.Helper()
	reg := backscatter.NewRegistry()
	reg.SetClock(backscatter.TickClock(1))
	reg.SetWindow(backscatter.NewWindow(450))
	spec := backscatter.JPDitl().Scaled(0.05).WithFaults("servfail-storm@1").WithTracing(4)
	spec.MinQueriers = 10
	ds := backscatter.BuildObserved(spec, reg)

	tsPath = filepath.Join(dir, "timeseries.json")
	if err := os.WriteFile(tsPath, reg.Window().SnapshotJSON(), 0o644); err != nil {
		t.Fatal(err)
	}
	trPath = filepath.Join(dir, "traces.jsonl")
	if err := os.WriteFile(trPath, ds.Tracer().JSONL(), 0o644); err != nil {
		t.Fatal(err)
	}
	return tsPath, trPath
}

// watchRules fires on the storm's hot buckets so the replay provably
// walks the state machine.
const watchRules = `
alert storm
  expr window(faults_injected_total{kind="servfail"})
  op >=
  threshold 25
  for 450
  severity high
`

// TestReplayEndToEnd pins the offline replay: artifacts in, sparkline
// dashboard and deterministic transition log out, exemplars joined from
// the trace file.
func TestReplayEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tsPath, trPath := artifacts(t, dir)
	rulesPath := filepath.Join(dir, "test.rules")
	if err := os.WriteFile(rulesPath, []byte(watchRules), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "out.jsonl")

	var stdout, stderr bytes.Buffer
	args := []string{"-timeseries", tsPath, "-traces", trPath,
		"-rules", rulesPath, "-json", jsonPath}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"storm", "value:", "state:", "transitions"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
	log1, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"pending"`, `"firing"`, `"resolved"`, `"exemplars"`} {
		if !strings.Contains(string(log1), want) {
			t.Errorf("transition log missing %s", want)
		}
	}

	// Same artifacts, same rules: byte-identical replay.
	var again bytes.Buffer
	if code := run(args, &again, &stderr); code != 0 {
		t.Fatalf("re-run = %d", code)
	}
	if again.String() != out {
		t.Error("replay output differs between identical runs")
	}
	log2, _ := os.ReadFile(jsonPath)
	if !bytes.Equal(log1, log2) {
		t.Error("transition log differs between identical runs")
	}

	// -fail-firing gates on rules still firing after the replay; the
	// storm rule resolves between bursts, so filter to one that cannot:
	// sum() is cumulative and stays firing once tripped.
	cumRules := filepath.Join(dir, "cum.rules")
	if err := os.WriteFile(cumRules, []byte("alert any-servfail\n  expr sum(faults_injected_total{kind=\"servfail\"})\n  op >\n  threshold 0\n  severity base\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var quiet bytes.Buffer
	if code := run([]string{"-timeseries", tsPath, "-rules", cumRules, "-fail-firing"}, &quiet, &stderr); code != 3 {
		t.Fatalf("-fail-firing with a firing rule = %d, want 3", code)
	}
}

// TestFilters pins -state/-severity narrowing of the rendered report.
func TestFilters(t *testing.T) {
	dir := t.TempDir()
	tsPath, _ := artifacts(t, dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-timeseries", tsPath, "-state", "firing", "-severity", "base"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, stderr.String())
	}
	// Built-in rules: only gaveup-any is base severity.
	if out := stdout.String(); strings.Contains(out, "servfail-burst [") {
		t.Errorf("severity filter leaked medium rule:\n%s", out)
	}
}

// TestBadInputs pins the usage errors: missing -timeseries, unreadable
// and unparsable files.
func TestBadInputs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 || !strings.Contains(errb.String(), "required") {
		t.Fatalf("no flags = %d %q", code, errb.String())
	}
	if code := run([]string{"-timeseries", "/no/such/file.json"}, &out, &errb); code != 2 {
		t.Fatalf("missing file = %d, want 2", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if code := run([]string{"-timeseries", bad}, &out, &errb); code != 2 {
		t.Fatalf("bad document = %d, want 2", code)
	}
	rules := filepath.Join(dir, "bad.rules")
	os.WriteFile(rules, []byte("alert x\n  op ??\n"), 0o644)
	good := filepath.Join(dir, "ok.json")
	os.WriteFile(good, []byte(`{"width":60,"series":[]}`), 0o644)
	if code := run([]string{"-timeseries", good, "-rules", rules}, &out, &errb); code != 2 || !strings.Contains(errb.String(), "line ") {
		t.Fatalf("bad rules = %d %q", code, errb.String())
	}
}
