// Command bswatch replays alert and SLO rules offline against the
// artifacts a run already wrote — the windowed time-series document and,
// optionally, the trace JSONL — and renders the resulting state machine:
// per-rule sparklines, state strips, and the transition tail. It is the
// same engine bsserve evaluates live, so a rule proven here fires
// identically in production.
//
// Usage:
//
//	bsrepro -experiment figure3 -timeseries ts.json -trace traces.jsonl
//	bswatch -timeseries ts.json -traces traces.jsonl
//	bswatch -timeseries ts.json -rules alerts.rules -state firing
//	bswatch -timeseries ts.json -json transitions.jsonl
//
// -state and -severity narrow the report; -fail-firing exits 3 when any
// rule is firing after the replay, so CI can gate on a quiet rule set.
// The replay is deterministic: the same artifacts and rules always
// produce byte-identical output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dnsbackscatter/internal/alert"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/simtime"
	"dnsbackscatter/internal/trace"
)

// run executes one replay; it is main minus os.Exit so tests can drive
// the full flag surface in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bswatch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tsPath    = fs.String("timeseries", "", "windowed time-series JSON to replay (required; see bsrepro -timeseries)")
		trPath    = fs.String("traces", "", "trace JSONL for worst-offender exemplars on firing transitions")
		rulesPath = fs.String("rules", "", "alert rule file; empty uses the built-in rules")
		jsonPath  = fs.String("json", "", "also write the transition log (sorted JSONL) to this file")
		state     = fs.String("state", "", "only report rules/transitions in this state (pending, firing, resolved, inactive)")
		severity  = fs.String("severity", "", "only report rules/transitions at this severity (base, low, medium, high)")
		failFire  = fs.Bool("fail-firing", false, "exit 3 if any rule is firing after the replay")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *tsPath == "" {
		fmt.Fprintln(stderr, "bswatch: -timeseries is required (the document bsrepro -timeseries writes)")
		return 2
	}

	rules := alert.DefaultRules()
	if *rulesPath != "" {
		src, err := os.ReadFile(*rulesPath)
		if err == nil {
			rules, err = alert.Parse(string(src))
		}
		if err != nil {
			fmt.Fprintln(stderr, "bswatch:", err)
			return 2
		}
	}

	raw, err := os.ReadFile(*tsPath)
	if err != nil {
		fmt.Fprintln(stderr, "bswatch:", err)
		return 2
	}
	doc, err := obs.ParseTimeseries(raw)
	if err != nil {
		fmt.Fprintln(stderr, "bswatch:", err)
		return 2
	}

	data := alert.Data{Series: doc}
	if *trPath != "" {
		f, err := os.Open(*trPath)
		if err != nil {
			fmt.Fprintln(stderr, "bswatch:", err)
			return 2
		}
		traces, err := trace.ParseJSONL(f)
		_ = f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "bswatch:", err)
			return 2
		}
		data.Exemplars = func(from, to simtime.Time, n int) []trace.Exemplar {
			return trace.ExemplarsOf(traces, from, to, n)
		}
	}

	eng := alert.New(rules)
	eng.Eval(data)

	f := alert.Filter{State: *state, Severity: *severity}
	_, _ = stdout.Write(eng.RenderText(f))
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, eng.JSONL(), 0o644); err != nil {
			fmt.Fprintln(stderr, "bswatch:", err)
			return 1
		}
		fmt.Fprintf(stderr, "bswatch: wrote %d transitions to %s\n", len(eng.Log()), *jsonPath)
	}
	if *failFire && eng.Firing() > 0 {
		fmt.Fprintf(stderr, "bswatch: %d rules firing\n", eng.Firing())
		return 3
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
