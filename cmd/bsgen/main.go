// Command bsgen simulates a DNS backscatter dataset and writes it to disk:
// the authority's query log, the querier reverse names the sensor would
// resolve, and the originator ground truth.
//
// Usage:
//
//	bsgen -dataset jp-ditl -scale 0.5 -out ./out
//
// produces out/log.tsv, out/queriers.tsv, and out/truth.tsv, which
// bsclassify consumes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"

	backscatter "dnsbackscatter"

	"dnsbackscatter/internal/ipaddr"
)

func specByName(name string) (backscatter.DatasetSpec, bool) {
	for _, s := range []backscatter.DatasetSpec{
		backscatter.JPDitl(), backscatter.BPostDitl(), backscatter.MDitl(),
		backscatter.MDitl2015(), backscatter.MSampled(), backscatter.BLong(),
		backscatter.BMultiYear(),
	} {
		if strings.EqualFold(s.Name, name) {
			return s, true
		}
	}
	return backscatter.DatasetSpec{}, false
}

func main() {
	var (
		dataset = flag.String("dataset", "jp-ditl", "dataset spec: jp-ditl, b-post-ditl, m-ditl, m-ditl-2015, m-sampled, b-long, b-multi-year")
		scale   = flag.Float64("scale", 1, "population scale factor")
		seed    = flag.Uint64("seed", 0, "override the spec's seed (0 keeps it)")
		out     = flag.String("out", ".", "output directory")
		wire    = flag.Bool("wire", false, "also write log.cap, a framed DNS wire-format capture")
		fspec   = flag.String("faults", "", `fault-injection profile@seed (e.g. "lossy@7"); empty disables`)
	)
	flag.Parse()

	spec, ok := specByName(*dataset)
	if !ok {
		fmt.Fprintf(os.Stderr, "bsgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if _, err := backscatter.ParseFaults(*fspec); err != nil {
		fmt.Fprintf(os.Stderr, "bsgen: %v\n", err)
		os.Exit(2)
	}
	spec = spec.Scaled(*scale).WithFaults(*fspec)

	fmt.Fprintf(os.Stderr, "bsgen: simulating %s (%s at %s, scale %.2f)...\n",
		spec.Name, spec.Authority, spec.Start, *scale)
	d := backscatter.Build(spec)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if err := writeLog(filepath.Join(*out, "log.tsv"), d); err != nil {
		fatal(err)
	}
	if err := writeQueriers(filepath.Join(*out, "queriers.tsv"), d); err != nil {
		fatal(err)
	}
	if err := writeTruth(filepath.Join(*out, "truth.tsv"), d); err != nil {
		fatal(err)
	}
	if *wire {
		if err := writeCapture(filepath.Join(*out, "log.cap"), d); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "bsgen: %d records, %d analyzable originators, %d labeled\n",
		len(d.Records), len(d.Whole().Vectors), d.Labels.Total())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bsgen:", err)
	os.Exit(1)
}

func writeCapture(path string, d *backscatter.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return backscatter.WriteCapture(f, d.Records)
}

func writeLog(path string, d *backscatter.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return backscatter.WriteLog(f, d.Records)
}

// writeQueriers dumps the reverse name (or status) of every querier that
// appears in the log: "<addr>\t<name|!nxdomain|!unreach>".
func writeQueriers(path string, d *backscatter.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	seen := make(map[ipaddr.Addr]bool)
	for _, r := range d.Records {
		if seen[r.Querier] {
			continue
		}
		seen[r.Querier] = true
		name, unreach := d.QuerierName(r.Querier)
		switch {
		case unreach:
			name = "!unreach"
		case name == "":
			name = "!nxdomain"
		}
		if _, err := fmt.Fprintf(f, "%s\t%s\n", r.Querier, name); err != nil {
			return err
		}
	}
	return nil
}

// writeTruth dumps "<addr>\t<class>\t<port>\t<team>" for every campaign,
// in address order so identical seeds produce byte-identical files (map
// iteration order would otherwise permute the rows run to run).
func writeTruth(path string, d *backscatter.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	truth := d.World.TruthMap()
	addrs := make([]ipaddr.Addr, 0, len(truth))
	for a := range truth {
		addrs = append(addrs, a)
	}
	slices.Sort(addrs)
	for _, a := range addrs {
		tr := truth[a]
		if _, err := fmt.Fprintf(f, "%s\t%s\t%s\t%d\n", a, tr.Class, tr.Port, tr.Team); err != nil {
			return err
		}
	}
	return nil
}
