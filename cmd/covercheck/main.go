// Command covercheck enforces per-package test-coverage floors. It reads
// `go test -cover` output on stdin, prints a sorted per-package summary,
// and exits nonzero if any tested package falls below the floor.
//
// Usage:
//
//	go test -coverprofile=coverage.out ./... | covercheck -floor 80
//
// Packages without test files (no "ok" line) are listed as untested but
// do not fail the check: command mains and examples are exercised by the
// build, not by unit tests.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// pkgCoverage is one package's parsed coverage line.
type pkgCoverage struct {
	pkg string
	pct float64
}

// parseLine extracts (package, percent) from one `go test -cover` output
// line of the form "ok <pkg> <time> coverage: <pct>% of statements".
// Lines for untested packages or without a coverage figure return ok=false.
func parseLine(line string) (c pkgCoverage, ok bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[0] != "ok" {
		return pkgCoverage{}, false
	}
	for i, tok := range f {
		if tok != "coverage:" || i+1 >= len(f) {
			continue
		}
		pct, err := strconv.ParseFloat(strings.TrimSuffix(f[i+1], "%"), 64)
		if err != nil {
			return pkgCoverage{}, false
		}
		return pkgCoverage{pkg: f[1], pct: pct}, true
	}
	return pkgCoverage{}, false
}

func main() {
	floor := flag.Float64("floor", 80, "minimum per-package coverage percent for tested packages")
	flag.Parse()

	var covered []pkgCoverage
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if c, ok := parseLine(sc.Text()); ok {
			covered = append(covered, c)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
	if len(covered) == 0 {
		fmt.Fprintln(os.Stderr, "covercheck: no coverage lines on stdin (pipe `go test -cover ./...` in)")
		os.Exit(1)
	}

	sort.Slice(covered, func(i, j int) bool { return covered[i].pkg < covered[j].pkg })
	var failed []pkgCoverage
	for _, c := range covered {
		mark := "  "
		if c.pct < *floor {
			mark = "!!"
			failed = append(failed, c)
		}
		fmt.Printf("%s %6.1f%%  %s\n", mark, c.pct, c.pkg)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "covercheck: %d package(s) below the %.0f%% floor:\n", len(failed), *floor)
		for _, c := range failed {
			fmt.Fprintf(os.Stderr, "  %s at %.1f%%\n", c.pkg, c.pct)
		}
		os.Exit(1)
	}
	fmt.Printf("covercheck: %d tested packages at or above %.0f%%\n", len(covered), *floor)
}
