// Command covercheck enforces per-package test-coverage floors. It reads
// `go test -cover` output on stdin, prints a sorted per-package summary,
// and exits nonzero if any tested package falls below the floor.
//
// Usage:
//
//	go test -coverprofile=coverage.out ./... | covercheck -floor 80
//	go test -cover ./... | covercheck -floor 80 -pkgfloor path/to/pkg=85
//
// -pkgfloor raises (or lowers) the floor for one package; repeat the flag
// for several. Packages without test files (no "ok" line) are listed as
// untested but do not fail the check: command mains and examples are
// exercised by the build, not by unit tests.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// pkgCoverage is one package's parsed coverage line.
type pkgCoverage struct {
	pkg string
	pct float64
}

// parseLine extracts (package, percent) from one `go test -cover` output
// line of the form "ok <pkg> <time> coverage: <pct>% of statements".
// Lines for untested packages or without a coverage figure return ok=false.
func parseLine(line string) (c pkgCoverage, ok bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[0] != "ok" {
		return pkgCoverage{}, false
	}
	for i, tok := range f {
		if tok != "coverage:" || i+1 >= len(f) {
			continue
		}
		pct, err := strconv.ParseFloat(strings.TrimSuffix(f[i+1], "%"), 64)
		if err != nil {
			return pkgCoverage{}, false
		}
		return pkgCoverage{pkg: f[1], pct: pct}, true
	}
	return pkgCoverage{}, false
}

// floorMap is the repeatable -pkgfloor pkg=pct flag: per-package floors
// overriding the global one.
type floorMap map[string]float64

func (m floorMap) String() string {
	parts := make([]string, 0, len(m))
	for pkg, pct := range m {
		parts = append(parts, fmt.Sprintf("%s=%g", pkg, pct))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (m floorMap) Set(s string) error {
	pkg, pctStr, ok := strings.Cut(s, "=")
	if !ok || pkg == "" {
		return fmt.Errorf("want pkg=pct, got %q", s)
	}
	pct, err := strconv.ParseFloat(pctStr, 64)
	if err != nil {
		return fmt.Errorf("bad percent in %q: %w", s, err)
	}
	m[pkg] = pct
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("covercheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	floor := fs.Float64("floor", 80, "minimum per-package coverage percent for tested packages")
	pkgFloors := floorMap{}
	fs.Var(pkgFloors, "pkgfloor", "per-package floor as pkg=pct, overriding -floor; repeatable")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var covered []pkgCoverage
	sc := bufio.NewScanner(stdin)
	for sc.Scan() {
		if c, ok := parseLine(sc.Text()); ok {
			covered = append(covered, c)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, "covercheck:", err)
		return 1
	}
	if len(covered) == 0 {
		fmt.Fprintln(stderr, "covercheck: no coverage lines on stdin (pipe `go test -cover ./...` in)")
		return 1
	}

	sort.Slice(covered, func(i, j int) bool { return covered[i].pkg < covered[j].pkg })
	floorFor := func(pkg string) float64 {
		if pct, ok := pkgFloors[pkg]; ok {
			return pct
		}
		return *floor
	}
	var failed []pkgCoverage
	for _, c := range covered {
		mark := "  "
		if c.pct < floorFor(c.pkg) {
			mark = "!!"
			failed = append(failed, c)
		}
		fmt.Fprintf(stdout, "%s %6.1f%%  %s\n", mark, c.pct, c.pkg)
	}
	if len(failed) > 0 {
		fmt.Fprintf(stderr, "covercheck: %d package(s) below their floor:\n", len(failed))
		for _, c := range failed {
			fmt.Fprintf(stderr, "  %s at %.1f%% (floor %.0f%%)\n", c.pkg, c.pct, floorFor(c.pkg))
		}
		return 1
	}
	fmt.Fprintf(stdout, "covercheck: %d tested packages at or above their floors (default %.0f%%)\n", len(covered), *floor)
	return 0
}
