package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	c, ok := parseLine("ok  \tdnsbackscatter/internal/lint\t2.4s\tcoverage: 89.7% of statements")
	if !ok || c.pkg != "dnsbackscatter/internal/lint" || c.pct != 89.7 {
		t.Fatalf("parsed %+v ok=%v", c, ok)
	}
	for _, line := range []string{
		"?   \tdnsbackscatter/cmd/bslint\t[no test files]",
		"ok  \tdnsbackscatter/internal/qname\t0.01s",
		"FAIL\tdnsbackscatter/internal/x\t0.1s",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as coverage", line)
		}
	}
}

func TestFloorMap(t *testing.T) {
	m := floorMap{}
	if err := m.Set("dnsbackscatter/internal/lint=85"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := m.Set("other=70.5"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if m["dnsbackscatter/internal/lint"] != 85 || m["other"] != 70.5 {
		t.Fatalf("map = %v", m)
	}
	if got, want := m.String(), "dnsbackscatter/internal/lint=85,other=70.5"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	for _, bad := range []string{"nofloor", "=80", "pkg=notanumber"} {
		if err := m.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func runCovercheck(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

const coverInput = `?   	mod/cmd/tool	[no test files]
ok  	mod/internal/a	0.1s	coverage: 90.0% of statements
ok  	mod/internal/b	0.1s	coverage: 82.0% of statements
`

// TestRunFloors drives the CLI across the pass, global-floor-fail, and
// per-package-floor-fail cases.
func TestRunFloors(t *testing.T) {
	code, stdout, _ := runCovercheck(t, coverInput, "-floor", "80")
	if code != 0 {
		t.Fatalf("exit %d with all packages above the floor; stdout=%s", code, stdout)
	}
	if !strings.Contains(stdout, "2 tested packages") {
		t.Errorf("summary missing: %s", stdout)
	}

	code, _, stderr := runCovercheck(t, coverInput, "-floor", "85")
	if code != 1 || !strings.Contains(stderr, "mod/internal/b at 82.0% (floor 85%)") {
		t.Fatalf("global floor breach not reported: exit %d stderr=%s", code, stderr)
	}

	// The per-package floor raises b's bar past its coverage while the
	// global floor alone would pass it.
	code, _, stderr = runCovercheck(t, coverInput, "-floor", "80", "-pkgfloor", "mod/internal/b=85")
	if code != 1 || !strings.Contains(stderr, "mod/internal/b at 82.0% (floor 85%)") {
		t.Fatalf("per-package floor breach not reported: exit %d stderr=%s", code, stderr)
	}
}

// TestRunEmptyInput pins the guard against piping nothing in.
func TestRunEmptyInput(t *testing.T) {
	code, _, stderr := runCovercheck(t, "")
	if code != 1 || !strings.Contains(stderr, "no coverage lines") {
		t.Fatalf("empty stdin: exit %d stderr=%s", code, stderr)
	}
}
