// Command bslint runs the project's static-analysis suite: the
// per-package checks (determinism, locksafe, errcheck, apidoc,
// concurrency, hotalloc, nolintreason) and the interprocedural module
// checks (dettaint) defined in internal/lint. It prints one finding per
// line as
//
//	file:line:col: [check] message
//
// and exits nonzero when anything fires, so it slots directly into the
// Makefile verify target next to go vet.
//
// Usage:
//
//	bslint [flags] [packages]
//
//	bslint ./...                    # whole module (the default)
//	bslint -json ./internal/...     # machine-readable findings
//	bslint -determinism=false ./... # disable one check
//	bslint -fix ./...               # apply mechanical autofixes
//	bslint -write-baseline ./...    # grandfather current findings
//	bslint -list                    # show registered checks
//
// Any package that fails to parse or type-check is fatal: bslint reports
// every broken package and exits 2 without linting, because findings in
// code it could not load would otherwise pass silently.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dnsbackscatter/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list registered checks and exit")
	dir := fs.String("C", ".", "directory inside the module to lint")
	fix := fs.Bool("fix", false, "apply suggested fixes for mechanical findings and rewrite the files")
	baselinePath := fs.String("baseline", "", "baseline file of grandfathered findings (default <module>/lint.baseline when present)")
	writeBaseline := fs.Bool("write-baseline", false, "write current findings to the baseline file and exit")
	enabled := map[string]*bool{}
	for _, c := range lint.Checks() {
		enabled[c.Name] = fs.Bool(c.Name, true, "enable the "+c.Name+" check: "+c.Doc)
	}
	for _, c := range lint.ModuleChecks() {
		enabled[c.Name] = fs.Bool(c.Name, true, "enable the "+c.Name+" module check: "+c.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-14s %s\n", c.Name, c.Doc)
		}
		for _, c := range lint.ModuleChecks() {
			fmt.Fprintf(stdout, "%-14s %s (interprocedural)\n", c.Name, c.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "bslint:", err)
		return 2
	}
	pkgs, err := mod.Packages(patterns...)
	if err != nil {
		// Load errors are fatal, and all of them are reported: linting
		// only the packages that happened to load would hide findings.
		fmt.Fprintln(stderr, "bslint: load failed:")
		fmt.Fprintln(stderr, err)
		return 2
	}

	flags := make(map[string]bool, len(enabled))
	for name, on := range enabled {
		flags[name] = *on
	}
	findings := lint.Run(pkgs, flags)

	bp := *baselinePath
	if bp == "" {
		bp = filepath.Join(mod.Dir, "lint.baseline")
	}
	if *writeBaseline {
		if err := lint.WriteBaseline(bp, findings, mod.Dir); err != nil {
			fmt.Fprintln(stderr, "bslint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "bslint: wrote %d finding(s) to %s\n", len(findings), bp)
		return 0
	}
	baseline, err := lint.LoadBaseline(bp)
	if err != nil {
		fmt.Fprintln(stderr, "bslint:", err)
		return 2
	}
	findings, baselined := lint.FilterBaseline(findings, baseline, mod.Dir)
	if len(baselined) > 0 {
		fmt.Fprintf(stderr, "bslint: %d baselined finding(s) suppressed (burn them down, then -write-baseline)\n", len(baselined))
	}

	if *fix {
		var fixable, remaining []lint.Finding
		for _, f := range findings {
			if f.Fix != nil {
				fixable = append(fixable, f)
			} else {
				remaining = append(remaining, f)
			}
		}
		files, err := lint.ApplyFixes(mod.Fset(), fixable)
		if err != nil {
			fmt.Fprintln(stderr, "bslint: fix:", err)
			return 2
		}
		for _, f := range fixable {
			fmt.Fprintf(stdout, "%s: fixed: %s\n", f.Pos, f.Fix.Message)
		}
		if len(files) > 0 {
			fmt.Fprintf(stderr, "bslint: rewrote %d file(s)\n", len(files))
		}
		findings = remaining
	}

	if *jsonOut {
		type jsonFinding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		out := make([]jsonFinding, len(findings))
		for i, f := range findings {
			out[i] = jsonFinding{f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "bslint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "bslint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
