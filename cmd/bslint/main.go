// Command bslint runs the project's static-analysis suite: the
// determinism, locksafe, errcheck, and apidoc checks defined in
// internal/lint. It prints one finding per line as
//
//	file:line:col: [check] message
//
// and exits nonzero when anything fires, so it slots directly into the
// Makefile verify target next to go vet.
//
// Usage:
//
//	bslint [flags] [packages]
//
//	bslint ./...                    # whole module (the default)
//	bslint -json ./internal/...     # machine-readable findings
//	bslint -determinism=false ./... # disable one check
//	bslint -list                    # show registered checks
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dnsbackscatter/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("bslint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list registered checks and exit")
	dir := fs.String("C", ".", "directory inside the module to lint")
	enabled := map[string]*bool{}
	for _, c := range lint.Checks() {
		enabled[c.Name] = fs.Bool(c.Name, true, "enable the "+c.Name+" check: "+c.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "bslint:", err)
		return 2
	}
	pkgs, err := mod.Packages(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "bslint:", err)
		return 2
	}

	flags := make(map[string]bool, len(enabled))
	for name, on := range enabled {
		flags[name] = *on
	}
	findings := lint.Run(pkgs, flags)

	if *jsonOut {
		type jsonFinding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		out := make([]jsonFinding, len(findings))
		for i, f := range findings {
			out[i] = jsonFinding{f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "bslint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "bslint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
