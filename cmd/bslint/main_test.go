package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a small module for the CLI to lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module clitest\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("MkdirAll: %v", err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatalf("WriteFile %s: %v", name, err)
		}
	}
	return dir
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

const cleanSrc = "package p\n\nfunc OK() int { return 1 }\n"

const dirtySrc = `package p

import "time"

func Stamp() int64 {
	return time.Now().Unix()
}
`

// TestRunCleanModule pins exit 0 and empty output on a lint-clean module.
func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{"p/p.go": cleanSrc})
	code, stdout, stderr := runCLI(t, "-C", dir, "./...")
	if code != 0 {
		t.Fatalf("exit %d on a clean module; stdout=%q stderr=%q", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean module produced output: %q", stdout)
	}
}

// TestRunFindingsExitOne pins exit 1 and the file:line:col finding shape.
func TestRunFindingsExitOne(t *testing.T) {
	dir := writeModule(t, map[string]string{"p/p.go": dirtySrc})
	code, stdout, _ := runCLI(t, "-C", dir, "./...")
	if code != 1 {
		t.Fatalf("exit %d on findings, want 1", code)
	}
	if !strings.Contains(stdout, "[determinism]") || !strings.Contains(stdout, "time.Now") {
		t.Errorf("findings output missing the determinism report: %q", stdout)
	}
}

// TestRunLoadFailureIsFatal is the regression test for the partial-load
// hole: a module with one broken package must exit 2 without linting,
// not exit 0 having linted whatever happened to load.
func TestRunLoadFailureIsFatal(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"p/p.go":           cleanSrc,
		"broken/broken.go": "package broken\n\nfunc Bad() int { return \"s\" }\n",
	})
	code, _, stderr := runCLI(t, "-C", dir, "./...")
	if code != 2 {
		t.Fatalf("exit %d on a broken package, want 2; stderr=%q", code, stderr)
	}
	if !strings.Contains(stderr, "load failed") || !strings.Contains(stderr, "broken") {
		t.Errorf("stderr does not report the broken package: %q", stderr)
	}
}

// TestRunBaselineFlow writes a baseline over existing findings and
// asserts the next run suppresses exactly those, exiting 0.
func TestRunBaselineFlow(t *testing.T) {
	dir := writeModule(t, map[string]string{"p/p.go": dirtySrc})
	bp := filepath.Join(dir, "lint.baseline")
	code, _, stderr := runCLI(t, "-C", dir, "-write-baseline", "./...")
	if code != 0 {
		t.Fatalf("exit %d writing baseline; stderr=%q", code, stderr)
	}
	code, stdout, stderr := runCLI(t, "-C", dir, "./...")
	if code != 0 {
		t.Fatalf("exit %d with baselined findings, want 0; stdout=%q", code, stdout)
	}
	if !strings.Contains(stderr, "baselined finding(s) suppressed") {
		t.Errorf("stderr does not mention the baselined findings: %q", stderr)
	}
	data, err := os.ReadFile(bp)
	if err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}
	if !strings.Contains(string(data), "determinism\t") {
		t.Errorf("baseline lacks the determinism fingerprint:\n%s", data)
	}
	// A fresh finding still fails even with the old one grandfathered.
	extra := strings.Replace(dirtySrc, "func Stamp", "func Stamp2", 1)
	if err := os.WriteFile(filepath.Join(dir, "p", "q.go"), []byte(extra), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if code, _, _ = runCLI(t, "-C", dir, "./..."); code != 1 {
		t.Fatalf("exit %d with a fresh finding beside a baselined one, want 1", code)
	}
}

// TestRunFixRewrites applies the map-order autofix through the CLI and
// asserts the module lints clean afterwards.
func TestRunFixRewrites(t *testing.T) {
	dir := writeModule(t, map[string]string{"p/p.go": `package p

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`})
	code, stdout, stderr := runCLI(t, "-C", dir, "-fix", "./...")
	if code != 0 {
		t.Fatalf("exit %d after -fix, want 0; stdout=%q stderr=%q", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "fixed:") || !strings.Contains(stderr, "rewrote 1 file(s)") {
		t.Errorf("fix run did not report the rewrite: stdout=%q stderr=%q", stdout, stderr)
	}
	if code, stdout, _ := runCLI(t, "-C", dir, "./..."); code != 0 {
		t.Fatalf("exit %d re-linting the fixed module, want 0; stdout=%q", code, stdout)
	}
}

// TestRunJSON pins the machine-readable findings shape the CI artifact
// publishes.
func TestRunJSON(t *testing.T) {
	dir := writeModule(t, map[string]string{"p/p.go": dirtySrc})
	code, stdout, _ := runCLI(t, "-C", dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit %d on findings, want 1", code)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout)
	}
	if len(findings) == 0 || findings[0].Check != "determinism" || findings[0].Line == 0 {
		t.Fatalf("JSON findings = %+v", findings)
	}
}

// TestRunBadFlag pins exit 2 on usage errors.
func TestRunBadFlag(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Fatalf("exit %d on a bad flag, want 2", code)
	}
}

// TestRunOutsideModule pins exit 2 when -C points outside any module.
func TestRunOutsideModule(t *testing.T) {
	code, _, stderr := runCLI(t, "-C", t.TempDir(), "./...")
	if code != 2 || !strings.Contains(stderr, "go.mod") {
		t.Fatalf("exit %d outside a module, want 2; stderr=%q", code, stderr)
	}
}

// TestRunList asserts -list shows both check families.
func TestRunList(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d from -list", code)
	}
	for _, want := range []string{"determinism", "concurrency", "hotalloc", "nolintreason", "dettaint", "(interprocedural)"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-list output missing %q:\n%s", want, stdout)
		}
	}
}
