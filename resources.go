package backscatter

import (
	"dnsbackscatter/internal/prof"
)

// Resource-observatory re-exports, mirroring the obs aliases in
// observe.go. Unlike the deterministic obs registry, the accountant's
// readings (alloc deltas, GC cycles, goroutine and worker peaks) depend
// on scheduling and GC timing — they travel on a separate ops channel
// (Resources / ResourceReport) and never enter snapshots, traces, or
// time series. See BuildInstrumented for attaching an accountant to a
// simulated dataset.
type (
	// Accountant accumulates per-stage resource accounting for the
	// Figure 2 pipeline; every method on a nil Accountant is a no-op,
	// so accounting costs one nil check when disabled.
	Accountant = prof.Accountant
	// ResourceReport is an accountant snapshot: one row per pipeline
	// stage, sorted by stage name.
	ResourceReport = prof.ResourceReport
	// StageStats is one stage's row in a ResourceReport.
	StageStats = prof.StageStats
)

// NewAccountant returns an empty resource accountant; attach it with
// BuildInstrumented.
func NewAccountant() *Accountant { return prof.New() }

// Resources snapshots the per-stage resource accounting recorded so far
// on this dataset's accountant. Without BuildInstrumented the report is
// empty.
func (d *Dataset) Resources() ResourceReport { return d.acct.Report() }

// Accountant returns the accountant this dataset records into, or nil
// when the dataset was built without one.
func (d *Dataset) Accountant() *Accountant { return d.acct }

// StableGoroutines reports the goroutine count after letting background
// goroutines wind down (cooperative yields only — no wall-clock waits),
// for leak checks around pipeline runs.
func StableGoroutines() int { return prof.StableGoroutines() }
