// Quickstart: simulate a two-day ccTLD backscatter dataset, train the
// paper's Random Forest classifier on curated labels, and print the most
// prolific originators with their inferred application classes.
package main

import (
	"fmt"
	"log"

	backscatter "dnsbackscatter"
)

func main() {
	// A scaled-down JP-ditl: the 50-hour ccTLD collection of Table I.
	spec := backscatter.JPDitl().Scaled(0.5)
	fmt.Printf("simulating %s (%s authority, %v)...\n", spec.Name, spec.Authority, spec.Start)
	ds := backscatter.Build(spec)

	fmt.Printf("collected %d reverse queries; %d analyzable originators (≥%d queriers); %d labeled\n",
		len(ds.Records), len(ds.Whole().Vectors), ds.Extractor.MinQueriers, ds.Labels.Total())

	// Train RF with the paper's 10-run majority vote.
	model, err := ds.TrainClassifier(10)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntop originators by footprint:")
	fmt.Println("rank  originator        queriers  class       truth")
	for i, v := range ds.Whole().Vectors {
		if i == 20 {
			break
		}
		cls := model.Classify(v)
		truth := "-"
		if t, ok := ds.Truth(v.Originator); ok {
			truth = t.String()
		}
		fmt.Printf("%-5d %-17s %-9d %-11s %s\n", i+1, v.Originator, v.Queriers, cls, truth)
	}

	// How good is it? Validate with the paper's protocol (random 60/40
	// splits, repeated).
	res, err := ds.Validate(backscatter.AlgRandomForest, 0.6, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalidation (10 × 60/40 splits): accuracy %.2f±%.2f  F1 %.2f±%.2f\n",
		res.Accuracy.Mean, res.Accuracy.Std, res.F1.Mean, res.F1.Std)
	fmt.Println("(the paper reports 0.7-0.8 accuracy for this pipeline)")
}
