// Streaming: run the sensor the way an operator would at the paper's real
// volumes (Table I: billions of queries) — parse a wire-format capture
// stream record by record through a bounded-memory extractor
// (HyperLogLog footprints + bottom-k querier samples), then classify the
// approximate vectors with a model trained on exact ones.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	backscatter "dnsbackscatter"
)

func main() {
	spec := backscatter.JPDitl().Scaled(0.5)
	fmt.Printf("simulating %s...\n", spec.Name)
	ds := backscatter.Build(spec)

	// Serialize the authority's view as a packet capture — what a sensor
	// tapping the wire actually has (§III-A).
	var capture bytes.Buffer
	if err := backscatter.WriteCapture(&capture, ds.Records); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capture stream: %d records, %.1f MB\n",
		len(ds.Records), float64(capture.Len())/(1<<20))

	// Stream it through the bounded extractor.
	stream := ds.NewStreamExtractor()
	recs, err := backscatter.ReadCapture(&capture)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range recs {
		stream.Observe(r)
	}
	approx := stream.Snapshot(spec.Start, spec.Duration)
	exact := ds.Whole().Vectors
	fmt.Printf("originators: %d exact vs %d streamed (threshold ≥%d queriers)\n",
		len(exact), len(approx), stream.MinQueriers)

	// Footprint accuracy of the HLL estimates.
	exactBy := make(map[backscatter.Addr]int)
	for _, v := range exact {
		exactBy[v.Originator] = v.Queriers
	}
	var worst, sum float64
	n := 0
	for _, v := range approx {
		e, ok := exactBy[v.Originator]
		if !ok {
			continue
		}
		rel := math.Abs(float64(v.Queriers-e)) / float64(e)
		sum += rel
		n++
		if rel > worst {
			worst = rel
		}
	}
	if n > 0 {
		fmt.Printf("footprint estimates: mean error %.1f%%, worst %.1f%% (HLL p=11 ≈ 2.3%% σ)\n",
			100*sum/float64(n), 100*worst)
	}

	// Classify the streamed vectors with a model trained on the curated
	// labels — the approximate features must stay classifier-compatible.
	model, err := ds.TrainClassifier(1)
	if err != nil {
		log.Fatal(err)
	}
	agree, scored := 0, 0
	for _, v := range approx {
		if truth, ok := ds.Truth(v.Originator); ok {
			scored++
			if model.Classify(v) == truth {
				agree++
			}
		}
	}
	if scored > 0 {
		fmt.Printf("classification of streamed vectors: %d/%d (%.0f%%) agree with ground truth\n",
			agree, scored, 100*float64(agree)/float64(scored))
	}
	fmt.Println("\nthe streaming sensor holds fixed state per originator regardless of volume:")
	fmt.Printf("  2 KB HLL + %d-querier sample + persistence bitset\n", stream.SampleK)
}
