// Training strategies: reproduce §V's comparison of how a backscatter
// classifier should be maintained over time. One expert curation is done
// mid-dataset; then three strategies carry the classifier forward and are
// scored on the re-appearing labeled examples of each interval (Figure 7):
//
//   - train-once: fit at curation, never refit — accuracy decays as
//     behavior drifts;
//   - train-daily: keep the labels, refit on each interval's fresh feature
//     vectors — the paper's recommendation;
//   - auto-grow: feed yesterday's classifications back as today's labels —
//     error compounds and training eventually fails.
package main

import (
	"fmt"
	"math"

	backscatter "dnsbackscatter"
)

func main() {
	// A year of B-Root backscatter (a scaled slice of B-multi-year).
	spec := backscatter.BMultiYear().Scaled(0.6)
	spec.Start = backscatter.Date(2013, 10, 1, 0, 0)
	spec.Duration = backscatter.Duration(370 * 86400)
	fmt.Printf("simulating %s (%d weekly intervals)...\n",
		spec.Name, int(spec.Duration/spec.Interval))
	ds := backscatter.Build(spec)

	// Curate at the paper's window (2014-04-28), ~30 weeks in.
	cur := backscatter.Date(2014, 4, 28, 0, 0)
	curIdx := int(cur.Sub(spec.Start) / spec.Interval)
	labels := ds.CurateAt(curIdx)
	fmt.Printf("expert curation at interval %d: %d labeled examples\n", curIdx, labels.Total())

	for _, strat := range []backscatter.TrainingStrategy{
		backscatter.TrainOnce, backscatter.RetrainDaily, backscatter.AutoGrow,
	} {
		pts := ds.RunStrategy(strat, labels, curIdx, 0)
		fmt.Printf("\n%s:\n", strat)
		var sum float64
		var n int
		for i, p := range pts {
			if i%4 != 0 && i != curIdx {
				continue // print monthly
			}
			bar := ""
			if p.Trained {
				bar = barOf(p.F1)
				sum += p.F1
				n++
			} else {
				bar = "(training failed)"
			}
			mark := ""
			if i == curIdx {
				mark = " <- curation"
			}
			fmt.Printf("  interval %3d  f=%.2f %s%s\n", i, p.F1, bar, mark)
		}
		if n > 0 {
			fmt.Printf("  mean f-score over printed intervals: %.2f\n", sum/float64(n))
		}
	}
	fmt.Println("\nexpected ordering away from curation: train-daily ≥ train-once ≥ auto-grow")
}

func barOf(f float64) string {
	n := int(math.Round(f * 30))
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
