// Heartbleed: reproduce the paper's headline longitudinal result (§VI-C,
// Figure 11) — a continuous background of scanning with a visible burst of
// tcp443 scanners after the Heartbleed announcement of 2014-04-07.
package main

import (
	"fmt"
	"strings"

	backscatter "dnsbackscatter"
)

func main() {
	// Nine months of 1:10-sampled M-Root backscatter with the Heartbleed
	// reaction enabled; scaled down for a quick run.
	spec := backscatter.MSampled().Scaled(0.4)
	fmt.Printf("simulating %s (%d days of root backscatter)...\n",
		spec.Name, int(spec.Duration)/86400)
	ds := backscatter.Build(spec)

	// Classify each weekly interval with a retrained model.
	weekly := ds.ClassifyIntervals()
	hb := backscatter.Date(2014, 4, 7, 0, 0)
	hbWeek := int(hb.Sub(spec.Start) / spec.Interval)

	fmt.Println("\nweekly scanner counts (* marks the Heartbleed announcement):")
	var pre, post, preN, postN float64
	for i, wk := range weekly {
		n := backscatter.ClassCounts(wk)[backscatter.Scan]
		marker := ""
		if i == hbWeek {
			marker = "  * Heartbleed announced"
		}
		fmt.Printf("week %2d  %4d %s%s\n", i, n, strings.Repeat("#", n/2), marker)
		switch {
		case i >= hbWeek-4 && i < hbWeek:
			pre += float64(n)
			preN++
		case i >= hbWeek && i < hbWeek+4:
			post += float64(n)
			postN++
		}
	}
	if preN > 0 && postN > 0 && pre > 0 {
		fmt.Printf("\nscanners/week: %.0f before vs %.0f during the burst window (%+.0f%%)\n",
			pre/preN, post/postN, 100*(post/postN-pre/preN)/(pre/preN))
		fmt.Println("(the paper measures a ~25% jump riding on a large steady background)")
	}

	// Which ports? Check the truth of scan-classified originators in the
	// burst window against the steady state.
	burstPorts := map[string]int{}
	for i := hbWeek; i < hbWeek+4 && i < len(weekly); i++ {
		for a, c := range weekly[i] {
			if c != backscatter.Scan {
				continue
			}
			if _, port, _, ok := ds.FullTruth(a); ok {
				burstPorts[port]++
			}
		}
	}
	fmt.Println("\nscan ports during the burst window:")
	for _, port := range []string{"tcp443", "tcp22", "tcp80", "icmp", "multi"} {
		fmt.Printf("  %-7s %d\n", port, burstPorts[port])
	}
}
