// Scanner teams: reproduce §VI-B's coordinated-scanning analysis. With no
// direct view of scan traffic, backscatter alone reveals /24 blocks where
// several originators run the same class of activity — candidate teams —
// which the darknet then corroborates.
package main

import (
	"fmt"
	"sort"

	backscatter "dnsbackscatter"
)

func main() {
	spec := backscatter.MSampled().Scaled(0.3)
	fmt.Printf("simulating %s with darknet monitors...\n", spec.Name)
	ds := backscatter.Build(spec)

	// Cumulative weekly classification (the paper counts originators per
	// class across the whole span).
	weekly := ds.ClassifyIntervals()
	classes := make(map[backscatter.Addr]backscatter.Class)
	for _, wk := range weekly {
		for a, c := range wk {
			classes[a] = c
		}
	}

	stats := backscatter.ScannerTeams(classes, 4)
	fmt.Printf("\nunique scan originators:        %d\n", stats.UniqueScanners)
	fmt.Printf("/24 blocks containing scanners: %d\n", stats.Blocks)
	fmt.Printf("blocks with ≥4 originators:     %d\n", stats.BlocksWithNPlus)
	fmt.Printf("  all same class (teams):       %d\n", stats.SameClassBlocks)
	fmt.Printf("  mixed classes:                %d\n", stats.MixedClassBlocks)

	// Inspect candidate team blocks and validate against the darknet and
	// the planted ground truth.
	byBlock := make(map[uint32][]backscatter.Addr)
	for a, c := range classes {
		if c == backscatter.Scan {
			b := uint32(a) >> 8
			byBlock[b] = append(byBlock[b], a)
		}
	}
	type blk struct {
		id      uint32
		members []backscatter.Addr
	}
	var blocks []blk
	for id, ms := range byBlock {
		if len(ms) >= 4 {
			blocks = append(blocks, blk{id, ms})
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return len(blocks[i].members) > len(blocks[j].members) })

	fmt.Println("\ncandidate team blocks:")
	for i, b := range blocks {
		if i == 8 {
			break
		}
		darkHits, confirmed, trueTeam := 0, 0, 0
		for _, a := range b.members {
			ev := ds.OriginatorEvidence(a)
			darkHits += ev.DarknetHits
			if ev.DarknetHits > 0 {
				confirmed++
			}
			if _, _, team, ok := ds.FullTruth(a); ok && team != 0 {
				trueTeam++
			}
		}
		base := backscatter.Addr(b.id << 8)
		fmt.Printf("  %-18s %2d scanners  darknet hits %-6d (%d members confirmed; %d truly coordinated)\n",
			base.String()+"/24", len(b.members), darkHits, confirmed, trueTeam)
	}
	fmt.Println("\n(the paper finds 167 blocks with ≥4 originators, 39 all-scan, from 5606 scanners)")
}
