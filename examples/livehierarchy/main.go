// Live hierarchy: the paper's Figure 1 over real UDP sockets on loopback.
// A root, a national registry, and a final authority each run as actual
// DNS servers; queriers resolve originators through a caching recursive
// resolver; sensors at each authority log what reaches them — showing
// live how caching attenuates backscatter up the hierarchy (§II, §IV-D).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	backscatter "dnsbackscatter"
)

func main() {
	var mu sync.Mutex
	counts := map[string]int{}
	sink := func(name string) backscatter.AuthoritySink {
		return func(r backscatter.Record) {
			mu.Lock()
			counts[name]++
			mu.Unlock()
		}
	}

	// Final authority for the originators' space: answers PTR with 1 h TTL.
	final, err := backscatter.ListenFinalAuthority("127.0.0.1:0", "final",
		func(a backscatter.Addr) backscatter.OriginatorProfile {
			return backscatter.OriginatorProfile{
				HasName: true,
				Name:    "origin-" + a.String() + ".example.net",
				TTL:     3600,
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	defer final.Close()
	final.SetSink(sink("final"))

	// National registry: delegates every /16 of /8 100 to the final.
	national, err := backscatter.ListenReferralAuthority("127.0.0.1:0", "national",
		func(a backscatter.Addr) (backscatter.Delegation, bool) {
			if a.Slash8() != 100 {
				return backscatter.Delegation{}, false
			}
			o0, o1, _, _ := a.Octets()
			zone := fmt.Sprintf("%d.%d.in-addr.arpa", o1, o0)
			return backscatter.Delegation{
				Zone: zone, NS: "ns.final.example", Addr: final.Addr(), TTL: 6 * 3600,
			}, true
		})
	if err != nil {
		log.Fatal(err)
	}
	defer national.Close()
	national.SetSink(sink("national"))

	// Root: delegates /8 100 to the national registry.
	root, err := backscatter.ListenReferralAuthority("127.0.0.1:0", "root",
		func(a backscatter.Addr) (backscatter.Delegation, bool) {
			if a.Slash8() != 100 {
				return backscatter.Delegation{}, false
			}
			return backscatter.Delegation{
				Zone: "100.in-addr.arpa", NS: "ns.registry.example",
				Addr: national.Addr(), TTL: 2 * 86400,
			}, true
		})
	if err != nil {
		log.Fatal(err)
	}
	defer root.Close()
	root.SetSink(sink("root"))

	fmt.Printf("live hierarchy: root %s → national %s → final %s\n\n",
		root.Addr(), national.Addr(), final.Addr())

	// A "scanner" touches 50 targets in one /16; each target's shared
	// resolver performs the reverse lookup of the scanner... inverted
	// here for clarity: 5 queriers (recursive resolvers) each look up 10
	// distinct originators in 100.50.0.0/16.
	now := backscatter.Time(time.Now().Unix())
	for q := 0; q < 5; q++ {
		recursor := backscatter.NewRecursor(root.Addr().String())
		for k := 0; k < 10; k++ {
			orig, _ := backscatter.ParseAddr(fmt.Sprintf("100.50.%d.%d", q, k))
			name, trace, err := recursor.ResolvePTR(orig, now)
			if err != nil {
				log.Fatal(err)
			}
			if q == 0 && k < 2 {
				fmt.Printf("querier %d resolved %s → %s (root=%v national=%v final=%v)\n",
					q, orig, name, trace.Root, trace.National, trace.Final)
			}
		}
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\nbackscatter observed per authority (50 lookups by 5 caching queriers):\n")
	fmt.Printf("  final authority: %d queries (sees everything)\n", counts["final"])
	fmt.Printf("  national:        %d queries (one per querier, delegations cached)\n", counts["national"])
	fmt.Printf("  root:            %d queries (one per querier)\n", counts["root"])
	fmt.Println("\nthis is §IV-D's attenuation, measured on live sockets: the higher the")
	fmt.Println("authority, the smaller — but still originator-attributable — the signal.")
}
