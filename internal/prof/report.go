package prof

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// StageStats is one stage's accumulated resource accounting — the ops
// view of a Figure 2 stage. All values are scheduling-dependent (see
// the package comment); never fold them into deterministic artifacts.
type StageStats struct {
	// Stage is the pipeline stage name ("dedup", "extract", ...).
	Stage string `json:"stage"`
	// Calls counts completed Start/End executions.
	Calls uint64 `json:"calls"`
	// AllocBytes is the summed TotalAlloc delta across executions.
	AllocBytes uint64 `json:"alloc_bytes"`
	// Mallocs and Frees are the summed heap-object deltas.
	Mallocs uint64 `json:"mallocs"`
	Frees   uint64 `json:"frees"`
	// GCCycles is how many collections completed inside the stage.
	GCCycles uint64 `json:"gc_cycles"`
	// HeapPeakBytes is the largest HeapAlloc sampled at a stage boundary.
	HeapPeakBytes uint64 `json:"heap_peak_bytes"`
	// GoroutinePeak is the goroutine high-water mark observed at stage
	// boundaries and inside pool workers.
	GoroutinePeak int64 `json:"goroutine_peak"`
	// Shards counts parallel work items dispatched for the stage.
	Shards uint64 `json:"shards"`
	// WorkerPeak is the peak concurrent pool workers in the stage.
	WorkerPeak int64 `json:"worker_peak"`
}

// ResourceReport is the accountant's full snapshot, stages sorted by
// name. The sort keys the *rendering*; the values inside stay
// scheduling-dependent, which is why the report travels on its own ops
// channel instead of the obs registry.
type ResourceReport struct {
	// Stages holds one row per stage that recorded anything.
	Stages []StageStats `json:"stages"`
}

// Report snapshots every stage's accounting. An empty report (nil
// accountant or no stages) has no rows.
func (a *Accountant) Report() ResourceReport {
	var r ResourceReport
	if a == nil {
		return r
	}
	a.mu.Lock()
	handles := make([]*StageAcct, 0, len(a.stages))
	for _, s := range a.stages {
		handles = append(handles, s)
	}
	a.mu.Unlock()
	for _, s := range handles {
		st := StageStats{
			Stage:         s.name,
			Calls:         s.calls.Load(),
			AllocBytes:    s.allocBytes.Load(),
			Mallocs:       s.mallocs.Load(),
			Frees:         s.frees.Load(),
			GCCycles:      s.gcCycles.Load(),
			HeapPeakBytes: s.heapPeak.Load(),
			GoroutinePeak: s.goroPeak.Load(),
			Shards:        s.shards.Load(),
			WorkerPeak:    s.workPeak.Load(),
		}
		if st.Calls == 0 && st.Shards == 0 && st.WorkerPeak == 0 {
			continue
		}
		r.Stages = append(r.Stages, st)
	}
	sort.Slice(r.Stages, func(i, j int) bool { return r.Stages[i].Stage < r.Stages[j].Stage })
	return r
}

// JSON renders the report as an indented JSON document, stages sorted
// by name.
func (r ResourceReport) JSON() []byte {
	if r.Stages == nil {
		r.Stages = []StageStats{}
	}
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// Plain structs of integers and strings cannot fail to marshal.
		return []byte("{}")
	}
	return append(out, '\n')
}

// ParseReport decodes a report previously rendered with JSON — the
// bsprof side of the round trip.
func ParseReport(data []byte) (ResourceReport, error) {
	var r ResourceReport
	if err := json.Unmarshal(data, &r); err != nil {
		return ResourceReport{}, fmt.Errorf("prof: parsing resource report: %w", err)
	}
	return r, nil
}

// String renders the report as an aligned table, one stage per row.
func (r ResourceReport) String() string {
	if len(r.Stages) == 0 {
		return "no stages accounted\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %12s %10s %6s %12s %6s %8s %7s\n",
		"stage", "calls", "alloc", "mallocs", "gc", "heap-peak", "goro", "shards", "workers")
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "%-12s %6d %12s %10d %6d %12s %6d %8d %7d\n",
			s.Stage, s.Calls, SizeString(s.AllocBytes), s.Mallocs, s.GCCycles,
			SizeString(s.HeapPeakBytes), s.GoroutinePeak, s.Shards, s.WorkerPeak)
	}
	return b.String()
}

// SizeString renders a byte count with a binary unit suffix (12.3MB),
// keeping report tables readable at B-Root scale.
func SizeString(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := uint64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%cB", float64(n)/float64(div), "KMGTPE"[exp])
}
