package prof

import (
	"bytes"
	"compress/gzip"
	"runtime"
	"runtime/pprof"
	"testing"
)

func TestMain(m *testing.M) {
	// Sample every allocation so the real-heap-profile tests see their
	// workload deterministically; set before any test allocates.
	runtime.MemProfileRate = 1
	m.Run()
}

// profSink keeps test allocations live so the heap profiler retains
// them.
var profSink [][]byte

//go:noinline
func allocateForProfile() {
	for i := 0; i < 128; i++ {
		profSink = append(profSink, make([]byte, 8192))
	}
}

// grabHeapProfile writes the current heap profile in pprof protobuf
// form.
func grabHeapProfile(t *testing.T) []byte {
	t.Helper()
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParseRealHeapProfile round-trips a profile the runtime itself
// wrote: sample types resolve, and a known allocating function ranks
// among the top sites.
func TestParseRealHeapProfile(t *testing.T) {
	allocateForProfile()
	p, err := ParseProfile(grabHeapProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	idx := p.TypeIndex("alloc_space")
	if idx < 0 {
		t.Fatalf("sample types = %v, want alloc_space", p.SampleTypes)
	}
	if full := p.TypeIndex("alloc_space/bytes"); full != idx {
		t.Errorf("TypeIndex(alloc_space/bytes) = %d, want %d", full, idx)
	}
	sites := p.TopSites(idx, 0)
	found := false
	for _, s := range sites {
		if s.Func == "dnsbackscatter/internal/prof.allocateForProfile" {
			found = true
			if s.Flat < 128*8192 {
				t.Errorf("allocateForProfile flat = %d, want >= %d", s.Flat, 128*8192)
			}
		}
	}
	if !found {
		t.Errorf("allocateForProfile not among %d sites", len(sites))
	}
	profSink = nil
}

// TestDiffSites pins the snapshot-delta view: allocations between two
// heap profiles surface as positive flat deltas at their site.
func TestDiffSites(t *testing.T) {
	before, err := ParseProfile(grabHeapProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	allocateForProfile()
	after, err := ParseProfile(grabHeapProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	idx := after.TypeIndex("alloc_space")
	diff := DiffSites(before, after, idx, 10)
	found := false
	for _, s := range diff {
		if s.Func == "dnsbackscatter/internal/prof.allocateForProfile" && s.Flat >= 128*8192 {
			found = true
		}
	}
	if !found {
		t.Errorf("allocateForProfile growth missing from diff: %+v", diff)
	}
	profSink = nil
}

// TestPathSites pins stack-substring attribution: samples through this
// package's test functions attach to a path keyed on the package name.
func TestPathSites(t *testing.T) {
	allocateForProfile()
	p, err := ParseProfile(grabHeapProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	idx := p.TypeIndex("alloc_space")
	hit := p.PathSites(idx, []string{"internal/prof.allocateForProfile"}, 3)
	if len(hit) == 0 || hit[0].Func != "dnsbackscatter/internal/prof.allocateForProfile" {
		t.Errorf("PathSites = %+v, want allocateForProfile leaf", hit)
	}
	if miss := p.PathSites(idx, []string{"no/such/package"}, 3); len(miss) != 0 {
		t.Errorf("PathSites for absent package = %+v, want none", miss)
	}
	profSink = nil
}

// pbuf hand-encodes protobuf for the synthetic-profile tests.
type pbuf struct{ bytes.Buffer }

func (b *pbuf) varint(v uint64) {
	for v >= 0x80 {
		b.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	b.WriteByte(byte(v))
}
func (b *pbuf) tag(field, typ int) { b.varint(uint64(field<<3 | typ)) }
func (b *pbuf) msg(field int, body []byte) {
	b.tag(field, 2)
	b.varint(uint64(len(body)))
	b.Write(body)
}

// syntheticProfile builds a minimal uncompressed profile with one
// sample type, two functions, and one sample using *unpacked* repeated
// fields — the wire form the runtime does not emit but the spec allows.
func syntheticProfile() []byte {
	var st, fn1, fn2, loc1, loc2, line1, line2, sample, p pbuf
	// string_table: index 0 must be ""; then names.
	strs := []string{"", "alloc_objects", "count", "pkg.leaf", "pkg.caller"}
	// sample_type ValueType{type=1("alloc_objects"), unit=2("count")}
	st.tag(1, 0)
	st.varint(1)
	st.tag(2, 0)
	st.varint(2)
	// functions: id=1 name="pkg.leaf"; id=2 name="pkg.caller"
	fn1.tag(1, 0)
	fn1.varint(1)
	fn1.tag(2, 0)
	fn1.varint(3)
	fn2.tag(1, 0)
	fn2.varint(2)
	fn2.tag(2, 0)
	fn2.varint(4)
	// locations: id=1 -> line{function_id=1}; id=2 -> line{function_id=2}
	line1.tag(1, 0)
	line1.varint(1)
	loc1.tag(1, 0)
	loc1.varint(1)
	loc1.msg(4, line1.Bytes())
	line2.tag(1, 0)
	line2.varint(2)
	loc2.tag(1, 0)
	loc2.varint(2)
	loc2.msg(4, line2.Bytes())
	// sample: unpacked location_id 1, 2 (leaf first); unpacked value 42.
	sample.tag(1, 0)
	sample.varint(1)
	sample.tag(1, 0)
	sample.varint(2)
	sample.tag(2, 0)
	sample.varint(42)

	p.msg(1, st.Bytes())
	p.msg(2, sample.Bytes())
	p.msg(4, loc1.Bytes())
	p.msg(4, loc2.Bytes())
	p.msg(5, fn1.Bytes())
	p.msg(5, fn2.Bytes())
	for _, s := range strs {
		p.msg(6, []byte(s))
	}
	return p.Bytes()
}

// TestParseSyntheticProfile exercises the unpacked wire form and gzip
// transparency.
func TestParseSyntheticProfile(t *testing.T) {
	raw := syntheticProfile()
	for _, gz := range []bool{false, true} {
		data := raw
		if gz {
			var buf bytes.Buffer
			zw := gzip.NewWriter(&buf)
			if _, err := zw.Write(raw); err != nil {
				t.Fatal(err)
			}
			if err := zw.Close(); err != nil {
				t.Fatal(err)
			}
			data = buf.Bytes()
		}
		p, err := ParseProfile(data)
		if err != nil {
			t.Fatalf("gz=%v: %v", gz, err)
		}
		if len(p.SampleTypes) != 1 || p.SampleTypes[0] != "alloc_objects/count" {
			t.Fatalf("gz=%v: sample types = %v", gz, p.SampleTypes)
		}
		if len(p.Samples) != 1 {
			t.Fatalf("gz=%v: samples = %+v", gz, p.Samples)
		}
		s := p.Samples[0]
		if len(s.Stack) != 2 || s.Stack[0] != "pkg.leaf" || s.Stack[1] != "pkg.caller" {
			t.Errorf("gz=%v: stack = %v, want [pkg.leaf pkg.caller]", gz, s.Stack)
		}
		if len(s.Values) != 1 || s.Values[0] != 42 {
			t.Errorf("gz=%v: values = %v, want [42]", gz, s.Values)
		}
		sites := p.TopSites(0, 5)
		if len(sites) != 1 || sites[0] != (Site{Func: "pkg.leaf", Flat: 42}) {
			t.Errorf("gz=%v: sites = %+v", gz, sites)
		}
	}
}

// TestParseProfileErrors pins the failure modes: truncation, garbage,
// and profiles with no sample types.
func TestParseProfileErrors(t *testing.T) {
	if _, err := ParseProfile(syntheticProfile()[:7]); err == nil {
		t.Error("truncated profile parsed")
	}
	if _, err := ParseProfile([]byte{0x1f, 0x8b, 0xff}); err == nil {
		t.Error("bad gzip parsed")
	}
	var empty pbuf
	empty.msg(6, nil)
	if _, err := ParseProfile(empty.Bytes()); err == nil {
		t.Error("profile without sample types parsed")
	}
}

// TestTypeIndexMiss pins the absent-type contract.
func TestTypeIndexMiss(t *testing.T) {
	p, err := ParseProfile(syntheticProfile())
	if err != nil {
		t.Fatal(err)
	}
	if idx := p.TypeIndex("cpu"); idx != -1 {
		t.Errorf("TypeIndex(cpu) = %d, want -1", idx)
	}
	if sites := p.TopSites(-1, 3); len(sites) != 0 {
		t.Errorf("TopSites(-1) = %+v, want none", sites)
	}
}
