package prof

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newRing(t *testing.T, max int, growth uint64) *Continuous {
	t.Helper()
	c, err := NewContinuous(ContinuousConfig{
		Dir: filepath.Join(t.TempDir(), "profiles"), MaxPerKind: max, HeapGrowth: growth,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestHeapRingBounded writes more heap snapshots than the ring holds
// and checks the oldest are pruned.
func TestHeapRingBounded(t *testing.T) {
	c := newRing(t, 3, 0)
	var names []string
	for i := 0; i < 5; i++ {
		n, err := c.HeapSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, n)
	}
	list := c.List()
	if len(list) != 3 {
		t.Fatalf("ring holds %d profiles, want 3: %+v", len(list), list)
	}
	// The survivors are the three newest, in order.
	for i, p := range list {
		if want := names[2+i]; p.Name != want {
			t.Errorf("ring[%d] = %s, want %s", i, p.Name, want)
		}
		if p.Kind != "heap" || p.SizeBytes <= 0 {
			t.Errorf("ring[%d] = %+v, want non-empty heap profile", i, p)
		}
	}
	if _, err := os.Stat(filepath.Join(c.Dir(), names[0])); !os.IsNotExist(err) {
		t.Errorf("oldest snapshot %s not pruned (err=%v)", names[0], err)
	}
}

// TestHeapThreshold pins MaybeHeapSnapshot's growth gate: a huge
// threshold suppresses back-to-back snapshots, and the first call
// always writes.
func TestHeapThreshold(t *testing.T) {
	c := newRing(t, 8, 1<<40) // 1 TB growth will not happen mid-test
	if _, wrote, err := c.MaybeHeapSnapshot(); err != nil || !wrote {
		t.Fatalf("first MaybeHeapSnapshot: wrote=%v err=%v, want first write", wrote, err)
	}
	if _, wrote, err := c.MaybeHeapSnapshot(); err != nil || wrote {
		t.Fatalf("second MaybeHeapSnapshot: wrote=%v err=%v, want suppressed", wrote, err)
	}
	c0 := newRing(t, 8, 0)
	for i := 0; i < 2; i++ {
		if _, wrote, err := c0.MaybeHeapSnapshot(); err != nil || !wrote {
			t.Fatalf("interval-mode MaybeHeapSnapshot #%d: wrote=%v err=%v", i, wrote, err)
		}
	}
}

// TestCPUWindow opens and closes a CPU window, checks the file lands in
// the ring and parses, and pins the one-window-at-a-time rule.
func TestCPUWindow(t *testing.T) {
	c := newRing(t, 2, 0)
	if err := c.StartCPU(); err != nil {
		t.Fatal(err)
	}
	if err := c.StartCPU(); err == nil {
		t.Error("second StartCPU succeeded with a window open")
	}
	// The open window is hidden from listings until it is finished.
	if got := c.List(); len(got) != 0 {
		t.Errorf("open window leaked into listing: %+v", got)
	}
	busy(2 << 20)
	name, err := c.StopCPU()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StopCPU(); err == nil {
		t.Error("StopCPU succeeded with no window open")
	}
	data, err := os.ReadFile(filepath.Join(c.Dir(), name))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseProfile(data)
	if err != nil {
		t.Fatalf("CPU window did not parse: %v", err)
	}
	if idx := p.TypeIndex("samples"); idx < 0 {
		t.Errorf("CPU profile sample types = %v, want samples", p.SampleTypes)
	}
}

// busy burns CPU so a profile window has something to sample.
func busy(n int) uint64 {
	var acc uint64
	for i := 0; i < n; i++ {
		acc = acc*0x9e3779b97f4a7c15 + uint64(i)
	}
	return acc
}

// TestProfilesHandler drives the HTTP surface: listing (text and JSON),
// download, and the traversal guard.
func TestProfilesHandler(t *testing.T) {
	c := newRing(t, 4, 0)
	name, err := c.HeapSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	h := c.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/profiles", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), name) {
		t.Errorf("listing: code=%d body=%q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/profiles?format=json", nil))
	var infos []ProfileInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatalf("JSON listing: %v (%s)", err, rec.Body.String())
	}
	if len(infos) != 1 || infos[0].Name != name || infos[0].Kind != "heap" {
		t.Errorf("JSON listing = %+v", infos)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/profiles/"+name, nil))
	if rec.Code != 200 {
		t.Fatalf("download %s: code=%d", name, rec.Code)
	}
	want, err := os.ReadFile(filepath.Join(c.Dir(), name))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rec.Body)
	if err != nil || string(got) != string(want) {
		t.Errorf("download bytes differ from ring file (err=%v, %d vs %d bytes)", err, len(got), len(want))
	}

	for _, path := range []string{"/profiles/../prof.go", "/profiles/nope.pprof", "/profiles/" + name + "x"} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 404 {
			t.Errorf("GET %s: code=%d, want 404", path, rec.Code)
		}
	}
}

// TestNewContinuousBadDir pins the error path: a ring rooted at an
// existing file cannot be created.
func TestNewContinuousBadDir(t *testing.T) {
	f := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewContinuous(ContinuousConfig{Dir: f}); err == nil {
		t.Error("NewContinuous accepted a file as its ring directory")
	}
}
