package prof

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety pins the "accounting off" contract: every operation on
// a nil accountant, stage, or zero token is a no-op.
func TestNilSafety(t *testing.T) {
	var a *Accountant
	if s := a.Stage("dedup"); s != nil {
		t.Fatalf("nil accountant returned non-nil stage %v", s)
	}
	tok := a.Start("dedup")
	tok.End() // must not panic
	var s *StageAcct
	s.AddShards(5)
	s.EnterWorker()
	s.LeaveWorker()
	s.Start().End()
	r := a.Report()
	if len(r.Stages) != 0 {
		t.Fatalf("nil accountant reported stages: %v", r.Stages)
	}
	if got := string(r.String()); !strings.Contains(got, "no stages") {
		t.Fatalf("empty report table = %q", got)
	}
}

// TestAccountingDeltas drives one stage through an allocating execution
// and checks the deltas land.
func TestAccountingDeltas(t *testing.T) {
	a := New()
	tok := a.Start("extract")
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	tok.End()
	_ = sink
	r := a.Report()
	if len(r.Stages) != 1 || r.Stages[0].Stage != "extract" {
		t.Fatalf("report = %+v, want one extract stage", r.Stages)
	}
	st := r.Stages[0]
	if st.Calls != 1 {
		t.Errorf("calls = %d, want 1", st.Calls)
	}
	if st.AllocBytes < 64*4096 {
		t.Errorf("alloc_bytes = %d, want >= %d", st.AllocBytes, 64*4096)
	}
	if st.Mallocs < 64 {
		t.Errorf("mallocs = %d, want >= 64", st.Mallocs)
	}
	if st.HeapPeakBytes == 0 {
		t.Error("heap peak not sampled")
	}
	if st.GoroutinePeak < 1 {
		t.Errorf("goroutine peak = %d, want >= 1", st.GoroutinePeak)
	}
}

// TestStageIdempotent pins that Stage returns the same handle for the
// same name, and accumulation is shared.
func TestStageIdempotent(t *testing.T) {
	a := New()
	s1 := a.Stage("train")
	s2 := a.Stage("train")
	if s1 != s2 {
		t.Fatal("Stage not idempotent")
	}
	s1.AddShards(3)
	s2.AddShards(4)
	r := a.Report()
	if len(r.Stages) != 1 || r.Stages[0].Shards != 7 {
		t.Fatalf("shards = %+v, want one stage with 7", r.Stages)
	}
}

// TestWorkerPeak pins the concurrent-worker high-water mark under real
// concurrency.
func TestWorkerPeak(t *testing.T) {
	a := New()
	s := a.Stage("classify")
	const workers = 8
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer done.Done()
			s.EnterWorker()
			start.Wait() // hold all workers live simultaneously
			s.LeaveWorker()
		}()
	}
	for s.liveWork.Load() < workers {
		// Spin until every worker has entered.
	}
	start.Done()
	done.Wait()
	r := a.Report()
	if len(r.Stages) != 1 {
		t.Fatalf("stages = %+v", r.Stages)
	}
	if got := r.Stages[0].WorkerPeak; got != workers {
		t.Errorf("worker peak = %d, want %d", got, workers)
	}
	if got := r.Stages[0].GoroutinePeak; got < workers {
		t.Errorf("goroutine peak = %d, want >= %d", got, workers)
	}
}

// TestReportJSONRoundTrip pins the report JSON round trip bsprof
// depends on, and that stages render sorted.
func TestReportJSONRoundTrip(t *testing.T) {
	a := New()
	a.Stage("filter").AddShards(16)
	a.Start("dedup").End()
	doc := a.Report().JSON()
	if !json.Valid(doc) {
		t.Fatalf("invalid JSON: %s", doc)
	}
	got, err := ParseReport(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Stages) != 2 || got.Stages[0].Stage != "dedup" || got.Stages[1].Stage != "filter" {
		t.Fatalf("round-tripped stages = %+v, want sorted [dedup filter]", got.Stages)
	}
	if _, err := ParseReport([]byte("{nope")); err == nil {
		t.Error("ParseReport accepted malformed JSON")
	}
	if !bytes.Equal(doc, got.JSON()) {
		t.Error("JSON not stable across a parse/render round trip")
	}
}

// TestReportTable pins the human rendering: one row per stage with
// humanized sizes.
func TestReportTable(t *testing.T) {
	a := New()
	tok := a.Start("extract")
	buf := make([]byte, 8<<20)
	tok.End()
	_ = buf
	table := a.Report().String()
	if !strings.Contains(table, "extract") {
		t.Errorf("table missing stage row:\n%s", table)
	}
	if !strings.Contains(table, "MB") && !strings.Contains(table, "KB") {
		t.Errorf("table missing humanized size:\n%s", table)
	}
}

// TestSizeString pins the unit boundaries.
func TestSizeString(t *testing.T) {
	for _, tc := range []struct {
		n    uint64
		want string
	}{
		{0, "0B"}, {1023, "1023B"}, {1024, "1.0KB"},
		{5 << 20, "5.0MB"}, {3 << 30, "3.0GB"},
	} {
		if got := SizeString(tc.n); got != tc.want {
			t.Errorf("SizeString(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

// TestStableGoroutines sanity-checks the drain helper: it returns a
// positive count and does not hang.
func TestStableGoroutines(t *testing.T) {
	if n := StableGoroutines(); n < 1 {
		t.Errorf("StableGoroutines() = %d", n)
	}
	if n := Goroutines(); n < 1 {
		t.Errorf("Goroutines() = %d", n)
	}
}
