// Package prof is the reproduction's resource observatory: per-stage
// accounting of memory, garbage collection, and goroutine consumption,
// a continuous profiler with a bounded on-disk ring, and a minimal
// parser for pprof profiles.
//
// The paper's pipeline only matters at scale — billions of reverse
// queries at B-Root and DITL — so the reproduction needs to know which
// Figure 2 stage owns the bytes, the allocations, and the goroutines,
// not just how long each stage took (package obs already times spans).
// prof supplies that missing axis:
//
//   - An Accountant wraps pipeline stages and captures runtime.MemStats
//     deltas (allocated bytes, mallocs/frees, GC cycles), heap and
//     goroutine high-water marks, and the parallel fan-out (shards
//     dispatched, peak concurrent workers) per stage.
//   - A Continuous profiler rotates CPU-profile windows and writes
//     threshold/interval heap snapshots into a bounded on-disk ring,
//     listed and downloadable over HTTP (see Continuous.Handler).
//   - Profile parsing (ParseProfile) reads gzipped pprof protobuf so
//     cmd/bsprof can rank and diff allocation sites with no
//     dependencies outside the standard library.
//
// Resource readings are scheduling-dependent by nature: how many bytes
// a stage allocates before the GC runs, or how many goroutines coexist,
// varies run to run and with the worker count. Accountant output is
// therefore an *ops* channel, reported through ResourceReport only —
// it must never be folded into the byte-deterministic artifacts
// (obs.Snapshot, trace JSONL, windowed series), the same split
// obs.Window draws between totals and scheduling-free buckets. A test
// at the repository root pins that building with an Accountant leaves
// every deterministic artifact byte-identical.
//
// Nil-safety follows the obs contract: every method on a nil
// *Accountant or *StageAcct is a no-op, and a Token from a nil stage
// ends for free, so instrumented hot paths pay one nil check — zero
// allocations — when accounting is off.
package prof

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Accountant accumulates per-stage resource accounting. Stage handles
// are idempotent (the same name always returns the same *StageAcct), so
// any subsystem may resolve its handles independently. A nil
// *Accountant is a valid "accounting off" value: Stage returns a nil
// handle and every operation on it is a no-op.
type Accountant struct {
	mu     sync.Mutex
	stages map[string]*StageAcct // guarded by mu
}

// New returns an empty accountant.
func New() *Accountant {
	return &Accountant{stages: make(map[string]*StageAcct)}
}

// StageAcct accumulates one stage's resource accounting on atomics, so
// concurrent stage executions and worker notes never contend on a lock.
// Obtain handles with Accountant.Stage; a nil *StageAcct discards
// everything.
type StageAcct struct {
	name       string
	calls      atomic.Uint64
	allocBytes atomic.Uint64
	mallocs    atomic.Uint64
	frees      atomic.Uint64
	gcCycles   atomic.Uint64
	heapPeak   atomic.Uint64
	goroPeak   atomic.Int64
	shards     atomic.Uint64
	liveWork   atomic.Int64
	workPeak   atomic.Int64
}

// Stage returns (creating if needed) the accounting handle for a stage
// name, or nil on a nil accountant.
func (a *Accountant) Stage(name string) *StageAcct {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.stages[name]
	if !ok {
		s = &StageAcct{name: name}
		a.stages[name] = s
	}
	return s
}

// Start begins accounting one execution of the named stage; close the
// returned token with End. On a nil accountant it returns the free
// no-op token.
func (a *Accountant) Start(stage string) Token {
	return a.Stage(stage).Start()
}

// Token is one in-flight stage execution. The zero Token (from a nil
// accountant or stage) ends for free.
type Token struct {
	sa         *StageAcct
	startAlloc uint64
	startMall  uint64
	startFrees uint64
	startGC    uint32
	startHeap  uint64
	startGoro  int
}

// Start begins accounting one stage execution: it samples
// runtime.MemStats and the goroutine count now, and End charges the
// deltas to the stage. Readings are process-global, so two overlapping
// executions each see the full process delta — per-stage numbers are an
// attribution of interest, not a partition (document overlap when
// stages nest).
func (s *StageAcct) Start() Token {
	if s == nil {
		return Token{}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Token{
		sa:         s,
		startAlloc: ms.TotalAlloc,
		startMall:  ms.Mallocs,
		startFrees: ms.Frees,
		startGC:    ms.NumGC,
		startHeap:  ms.HeapAlloc,
		startGoro:  runtime.NumGoroutine(),
	}
}

// End closes the token: one call, the MemStats deltas since Start, and
// the heap/goroutine high-water marks observed at the two sample
// points are charged to the stage.
func (t Token) End() {
	if t.sa == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.sa.calls.Add(1)
	t.sa.allocBytes.Add(ms.TotalAlloc - t.startAlloc)
	t.sa.mallocs.Add(ms.Mallocs - t.startMall)
	t.sa.frees.Add(ms.Frees - t.startFrees)
	t.sa.gcCycles.Add(uint64(ms.NumGC - t.startGC))
	heap := ms.HeapAlloc
	if t.startHeap > heap {
		heap = t.startHeap
	}
	maxUint(&t.sa.heapPeak, heap)
	goro := runtime.NumGoroutine()
	if t.startGoro > goro {
		goro = t.startGoro
	}
	maxInt(&t.sa.goroPeak, int64(goro))
}

// AddShards records n parallel work items dispatched for the stage (the
// parallel pool calls this once per batch; n is a data property,
// identical at every worker count).
func (s *StageAcct) AddShards(n uint64) {
	if s != nil {
		s.shards.Add(n)
	}
}

// EnterWorker notes one worker goroutine joining the stage, updating
// the peak-concurrency high-water mark. Pair with LeaveWorker.
func (s *StageAcct) EnterWorker() {
	if s == nil {
		return
	}
	live := s.liveWork.Add(1)
	maxInt(&s.workPeak, live)
	maxInt(&s.goroPeak, int64(runtime.NumGoroutine()))
}

// LeaveWorker notes one worker goroutine leaving the stage.
func (s *StageAcct) LeaveWorker() {
	if s != nil {
		s.liveWork.Add(-1)
	}
}

// maxUint lifts v into the atomic max register.
func maxUint(m *atomic.Uint64, v uint64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// maxInt lifts v into the atomic max register.
func maxInt(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Goroutines returns the current goroutine count — a convenience so
// callers outside runtime-aware code (chaos tests, ops handlers) reach
// it through the observatory.
func Goroutines() int { return runtime.NumGoroutine() }

// StableGoroutines returns the goroutine count after letting exiting
// goroutines drain: it yields to the scheduler repeatedly and returns
// once the count has stopped shrinking for a stretch of rounds. Use it
// to bracket leak checks — a worker pool's goroutines call wg.Done
// slightly before they exit, so a raw NumGoroutine read right after a
// run can transiently overcount.
func StableGoroutines() int {
	cur := runtime.NumGoroutine()
	stable := 0
	for i := 0; i < 2000 && stable < 20; i++ {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n < cur {
			cur, stable = n, 0
		} else {
			stable++
		}
	}
	return cur
}
