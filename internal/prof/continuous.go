package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
)

// ContinuousConfig sizes a continuous profiler.
type ContinuousConfig struct {
	// Dir is the on-disk ring directory (created if missing).
	Dir string
	// MaxPerKind bounds the files kept per profile kind (cpu, heap);
	// the oldest beyond the bound are deleted. <= 0 keeps 8.
	MaxPerKind int
	// HeapGrowth is the HeapAlloc growth in bytes since the last heap
	// snapshot that makes MaybeHeapSnapshot write a new one; 0 snapshots
	// on every call (pure interval mode).
	HeapGrowth uint64
}

// Continuous writes rolling CPU-profile windows and heap snapshots into
// a bounded on-disk ring. It owns cadence *state* only — callers (an
// operational main's ticker loop, a test) drive when windows start and
// stop, so the package stays free of wall-clock waits.
//
// File names are sequence-numbered (cpu-000003.pprof, heap-000007.pprof),
// so the ring orders lexically and needs no timestamps.
type Continuous struct {
	mu        sync.Mutex
	cfg       ContinuousConfig
	seq       uint64   // guarded by mu
	cpuFile   *os.File // guarded by mu; non-nil while a CPU window is open
	cpuName   string   // guarded by mu
	lastHeap  uint64   // guarded by mu; HeapAlloc at the last heap snapshot
	heapTaken bool     // guarded by mu
}

// NewContinuous returns a profiler writing into cfg.Dir, creating the
// directory if needed.
func NewContinuous(cfg ContinuousConfig) (*Continuous, error) {
	if cfg.MaxPerKind <= 0 {
		cfg.MaxPerKind = 8
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("prof: profile ring: %w", err)
	}
	return &Continuous{cfg: cfg}, nil
}

// Dir returns the ring directory.
func (c *Continuous) Dir() string { return c.cfg.Dir }

// StartCPU opens the next CPU-profile window. Only one window may be
// open at a time (the runtime allows one CPU profile per process); a
// second StartCPU before StopCPU is an error.
func (c *Continuous) StartCPU() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cpuFile != nil {
		return fmt.Errorf("prof: CPU window already open (%s)", c.cpuName)
	}
	c.seq++
	name := fmt.Sprintf("cpu-%06d.pprof", c.seq)
	f, err := os.Create(filepath.Join(c.cfg.Dir, name))
	if err != nil {
		return fmt.Errorf("prof: CPU window: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		_ = os.Remove(f.Name())
		return fmt.Errorf("prof: CPU window: %w", err)
	}
	c.cpuFile, c.cpuName = f, name
	return nil
}

// StopCPU closes the open CPU-profile window, prunes the ring, and
// returns the finished file name. Without an open window it is an
// error.
func (c *Continuous) StopCPU() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cpuFile == nil {
		return "", fmt.Errorf("prof: no CPU window open")
	}
	pprof.StopCPUProfile()
	err := c.cpuFile.Close()
	name := c.cpuName
	c.cpuFile, c.cpuName = nil, ""
	if err != nil {
		return "", fmt.Errorf("prof: closing CPU window: %w", err)
	}
	c.prune("cpu-")
	return name, nil
}

// HeapSnapshot writes a heap profile into the ring unconditionally and
// returns its file name.
func (c *Continuous) HeapSnapshot() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.heapLocked()
}

// MaybeHeapSnapshot writes a heap profile when HeapAlloc has grown by at
// least the configured HeapGrowth since the last snapshot (or always,
// with HeapGrowth 0). It reports whether a snapshot was written.
func (c *Continuous) MaybeHeapSnapshot() (string, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.HeapGrowth > 0 && c.heapTaken {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		grown := ms.HeapAlloc > c.lastHeap && ms.HeapAlloc-c.lastHeap >= c.cfg.HeapGrowth
		if !grown {
			return "", false, nil
		}
	}
	name, err := c.heapLocked()
	return name, err == nil, err
}

// heapLocked writes one heap snapshot; the caller holds mu.
func (c *Continuous) heapLocked() (string, error) {
	c.seq++
	name := fmt.Sprintf("heap-%06d.pprof", c.seq)
	f, err := os.Create(filepath.Join(c.cfg.Dir, name))
	if err != nil {
		return "", fmt.Errorf("prof: heap snapshot: %w", err)
	}
	// GC first so the "inuse" sample types reflect live objects, the
	// same convention net/http/pprof uses for /debug/pprof/heap.
	runtime.GC()
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		_ = f.Close()
		_ = os.Remove(f.Name())
		return "", fmt.Errorf("prof: heap snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("prof: heap snapshot: %w", err)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.lastHeap, c.heapTaken = ms.HeapAlloc, true
	c.prune("heap-")
	return name, nil
}

// prune deletes the oldest files of one kind beyond MaxPerKind; the
// caller holds mu. Removal errors are ignored — a stale file only
// costs disk, and the next prune retries.
func (c *Continuous) prune(prefix string) {
	names := c.ringNames(prefix)
	for len(names) > c.cfg.MaxPerKind {
		_ = os.Remove(filepath.Join(c.cfg.Dir, names[0]))
		names = names[1:]
	}
}

// ringNames lists the ring's files for one kind prefix, sorted oldest
// first (sequence numbers order lexically).
func (c *Continuous) ringNames(prefix string) []string {
	entries, err := os.ReadDir(c.cfg.Dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, prefix) && strings.HasSuffix(n, ".pprof") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// ProfileInfo describes one ring entry for listings.
type ProfileInfo struct {
	// Name is the ring file name (cpu-000003.pprof).
	Name string `json:"name"`
	// Kind is "cpu" or "heap".
	Kind string `json:"kind"`
	// SizeBytes is the file size.
	SizeBytes int64 `json:"size_bytes"`
}

// List returns the ring's finished profiles sorted by name (cpu before
// heap, oldest first within a kind). An open CPU window's growing file
// is excluded until StopCPU finishes it.
func (c *Continuous) List() []ProfileInfo {
	c.mu.Lock()
	open := c.cpuName
	c.mu.Unlock()
	var out []ProfileInfo
	for _, prefix := range []string{"cpu-", "heap-"} {
		for _, n := range c.ringNames(prefix) {
			if n == open {
				continue
			}
			fi, err := os.Stat(filepath.Join(c.cfg.Dir, n))
			if err != nil {
				continue
			}
			out = append(out, ProfileInfo{Name: n, Kind: strings.TrimSuffix(prefix, "-"), SizeBytes: fi.Size()})
		}
	}
	return out
}

// Handler serves the ring over HTTP: GET <prefix> lists profiles (text,
// or JSON with ?format=json) and GET <prefix>/<name> downloads one.
// Mount it at /profiles and /profiles/ on a mux. Only names the ring
// itself listed are served, so the handler cannot traverse outside the
// ring directory.
func (c *Continuous) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/profiles")
		rest = strings.TrimPrefix(rest, "/")
		if rest == "" {
			c.serveList(w, r)
			return
		}
		c.serveFile(w, r, rest)
	})
}

// serveList renders the ring listing.
func (c *Continuous) serveList(w http.ResponseWriter, r *http.Request) {
	infos := c.List()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(infos)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%d profiles in ring (download /profiles/<name>; parse with cmd/bsprof)\n", len(infos))
	for _, p := range infos {
		fmt.Fprintf(w, "%-6s %10d  %s\n", p.Kind, p.SizeBytes, p.Name)
	}
}

// serveFile downloads one ring entry by name.
func (c *Continuous) serveFile(w http.ResponseWriter, r *http.Request, name string) {
	for _, p := range c.List() {
		if p.Name != name {
			continue
		}
		f, err := os.Open(filepath.Join(c.cfg.Dir, name))
		if err != nil {
			http.Error(w, "profile vanished from ring", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="`+name+`"`)
		_, _ = io.Copy(w, f)
		// A read-only Close cannot lose data; the copy error (if any)
		// already surfaced to the client as a truncated body.
		_ = f.Close()
		return
	}
	http.Error(w, "no such profile in ring", http.StatusNotFound)
}
