package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file is a minimal reader for the pprof profile.proto format —
// just enough of the protobuf wire format and the Profile message to
// rank and diff allocation sites without any dependency outside the
// standard library. The runtime writes heap and CPU profiles in this
// format (gzipped); field numbers below follow
// github.com/google/pprof/proto/profile.proto.

// Profile is a parsed pprof profile: sample types, samples with
// resolved function stacks, and the period metadata bsprof prints.
type Profile struct {
	// SampleTypes names each value column as "type/unit"
	// (e.g. "alloc_space/bytes", "inuse_objects/count").
	SampleTypes []string
	// Samples are the profile's samples with resolved stacks.
	Samples []Sample
}

// Sample is one pprof sample: a stack of function names (leaf first)
// and one value per sample type.
type Sample struct {
	// Stack holds fully-qualified function names, leaf first.
	Stack []string
	// Values holds one value per Profile.SampleTypes entry.
	Values []int64
}

// wire is a protobuf wire-format cursor.
type wire struct {
	b []byte
	i int
}

// errTruncated reports a message ending mid-field.
var errTruncated = fmt.Errorf("prof: truncated profile")

// varint reads one base-128 varint.
func (w *wire) varint() (uint64, error) {
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		if w.i >= len(w.b) {
			return 0, errTruncated
		}
		c := w.b[w.i]
		w.i++
		v |= uint64(c&0x7f) << shift
		if c&0x80 == 0 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("prof: varint overflow")
}

// field reads the next field tag, returning its number and wire type.
func (w *wire) field() (num int, typ int, err error) {
	tag, err := w.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(tag >> 3), int(tag & 7), nil
}

// bytes reads one length-delimited payload.
func (w *wire) bytes() ([]byte, error) {
	n, err := w.varint()
	if err != nil {
		return nil, err
	}
	if uint64(len(w.b)-w.i) < n {
		return nil, errTruncated
	}
	out := w.b[w.i : w.i+int(n)]
	w.i += int(n)
	return out, nil
}

// skip discards one field payload of the given wire type.
func (w *wire) skip(typ int) error {
	switch typ {
	case 0: // varint
		_, err := w.varint()
		return err
	case 1: // fixed64
		if len(w.b)-w.i < 8 {
			return errTruncated
		}
		w.i += 8
		return nil
	case 2: // length-delimited
		_, err := w.bytes()
		return err
	case 5: // fixed32
		if len(w.b)-w.i < 4 {
			return errTruncated
		}
		w.i += 4
		return nil
	default:
		return fmt.Errorf("prof: unsupported wire type %d", typ)
	}
}

// done reports whether the cursor consumed its buffer.
func (w *wire) done() bool { return w.i >= len(w.b) }

// ints reads a repeated integer field that may arrive packed (one
// length-delimited blob) or as a single unpacked value.
func ints(w *wire, typ int, into []int64) ([]int64, error) {
	if typ == 2 {
		blob, err := w.bytes()
		if err != nil {
			return nil, err
		}
		pw := &wire{b: blob}
		for !pw.done() {
			v, err := pw.varint()
			if err != nil {
				return nil, err
			}
			into = append(into, int64(v))
		}
		return into, nil
	}
	v, err := w.varint()
	if err != nil {
		return nil, err
	}
	return append(into, int64(v)), nil
}

// ParseProfile parses a pprof profile, transparently gunzipping (the
// runtime writes profiles gzipped; debug=1 text forms are rejected).
func ParseProfile(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		data = raw
	}

	// First pass: collect raw messages and the string table.
	type rawSample struct {
		locIDs []int64
		values []int64
	}
	type line struct {
		funcID uint64
	}
	var (
		strTab      []string
		sampleTypes [][2]int64 // (type, unit) string indices
		samples     []rawSample
		locLines    = map[uint64][]line{}
		funcNames   = map[uint64]int64{}
	)

	w := &wire{b: data}
	for !w.done() {
		num, typ, err := w.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type: ValueType{type=1, unit=2}
			blob, err := w.bytes()
			if err != nil {
				return nil, err
			}
			vw := &wire{b: blob}
			var st [2]int64
			for !vw.done() {
				n, t, err := vw.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1, 2:
					v, err := vw.varint()
					if err != nil {
						return nil, err
					}
					st[n-1] = int64(v)
				default:
					if err := vw.skip(t); err != nil {
						return nil, err
					}
				}
			}
			sampleTypes = append(sampleTypes, st)
		case 2: // sample: {location_id=1, value=2}
			blob, err := w.bytes()
			if err != nil {
				return nil, err
			}
			sw := &wire{b: blob}
			var rs rawSample
			for !sw.done() {
				n, t, err := sw.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					if rs.locIDs, err = ints(sw, t, rs.locIDs); err != nil {
						return nil, err
					}
				case 2:
					if rs.values, err = ints(sw, t, rs.values); err != nil {
						return nil, err
					}
				default:
					if err := sw.skip(t); err != nil {
						return nil, err
					}
				}
			}
			samples = append(samples, rs)
		case 4: // location: {id=1, line=4{function_id=1}}
			blob, err := w.bytes()
			if err != nil {
				return nil, err
			}
			lw := &wire{b: blob}
			var id uint64
			var lines []line
			for !lw.done() {
				n, t, err := lw.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					if id, err = lw.varint(); err != nil {
						return nil, err
					}
				case 4:
					lblob, err := lw.bytes()
					if err != nil {
						return nil, err
					}
					llw := &wire{b: lblob}
					var ln line
					for !llw.done() {
						m, tt, err := llw.field()
						if err != nil {
							return nil, err
						}
						if m == 1 {
							if ln.funcID, err = llw.varint(); err != nil {
								return nil, err
							}
						} else if err := llw.skip(tt); err != nil {
							return nil, err
						}
					}
					lines = append(lines, ln)
				default:
					if err := lw.skip(t); err != nil {
						return nil, err
					}
				}
			}
			locLines[id] = lines
		case 5: // function: {id=1, name=2}
			blob, err := w.bytes()
			if err != nil {
				return nil, err
			}
			fw := &wire{b: blob}
			var id uint64
			var nameIdx int64
			for !fw.done() {
				n, t, err := fw.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					if id, err = fw.varint(); err != nil {
						return nil, err
					}
				case 2:
					v, err := fw.varint()
					if err != nil {
						return nil, err
					}
					nameIdx = int64(v)
				default:
					if err := fw.skip(t); err != nil {
						return nil, err
					}
				}
			}
			funcNames[id] = nameIdx
		case 6: // string_table
			blob, err := w.bytes()
			if err != nil {
				return nil, err
			}
			strTab = append(strTab, string(blob))
		default:
			if err := w.skip(typ); err != nil {
				return nil, err
			}
		}
	}

	str := func(i int64) string {
		if i < 0 || int(i) >= len(strTab) {
			return ""
		}
		return strTab[i]
	}

	p := &Profile{}
	for _, st := range sampleTypes {
		p.SampleTypes = append(p.SampleTypes, str(st[0])+"/"+str(st[1]))
	}
	if len(p.SampleTypes) == 0 {
		return nil, fmt.Errorf("prof: no sample types (not a pprof protobuf profile?)")
	}
	for _, rs := range samples {
		s := Sample{Values: rs.values}
		for _, locID := range rs.locIDs {
			for _, ln := range locLines[uint64(locID)] {
				if name := str(funcNames[ln.funcID]); name != "" {
					s.Stack = append(s.Stack, name)
				}
			}
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

// TypeIndex resolves a sample-type name ("alloc_space", or the full
// "alloc_space/bytes") to its value column, or -1 when absent.
func (p *Profile) TypeIndex(name string) int {
	for i, st := range p.SampleTypes {
		if st == name || strings.TrimSuffix(st, "/"+unitOf(st)) == name {
			return i
		}
	}
	return -1
}

// unitOf splits the unit from a "type/unit" sample-type name.
func unitOf(st string) string {
	if i := strings.LastIndexByte(st, '/'); i >= 0 {
		return st[i+1:]
	}
	return ""
}

// Site is one allocation (or CPU) site: a leaf function and its flat
// value in the chosen sample-type column.
type Site struct {
	// Func is the fully-qualified leaf function name.
	Func string
	// Flat is the summed value attributed to samples leafing here.
	Flat int64
}

// FlatByFunc sums the chosen value column by leaf function — the
// "flat" attribution pprof's top view uses.
func (p *Profile) FlatByFunc(typeIdx int) map[string]int64 {
	out := make(map[string]int64)
	for _, s := range p.Samples {
		if typeIdx < 0 || typeIdx >= len(s.Values) || len(s.Stack) == 0 {
			continue
		}
		out[s.Stack[0]] += s.Values[typeIdx]
	}
	return out
}

// TopSites ranks leaf functions by flat value, descending, ties broken
// by name so the output is stable; n <= 0 returns every site.
func (p *Profile) TopSites(typeIdx, n int) []Site {
	return rankSites(p.FlatByFunc(typeIdx), n)
}

// DiffSites subtracts before's flat values from after's per leaf
// function and ranks the deltas descending — the heap-growth view
// between two snapshots. Sites present on one side only contribute
// their full (or negated) value.
func DiffSites(before, after *Profile, typeIdx int, n int) []Site {
	delta := after.FlatByFunc(typeIdx)
	for fn, v := range before.FlatByFunc(typeIdx) {
		delta[fn] -= v
	}
	return rankSites(delta, n)
}

// PathSites ranks leaf sites restricted to samples whose stack passes
// through any of the given substrings — how bsprof attributes
// allocation sites to a pipeline path (e.g. every sample that crossed
// internal/features belongs to the extract path).
func (p *Profile) PathSites(typeIdx int, substrs []string, n int) []Site {
	flat := make(map[string]int64)
	for _, s := range p.Samples {
		if typeIdx < 0 || typeIdx >= len(s.Values) || len(s.Stack) == 0 {
			continue
		}
		if !stackMatches(s.Stack, substrs) {
			continue
		}
		flat[s.Stack[0]] += s.Values[typeIdx]
	}
	return rankSites(flat, n)
}

// stackMatches reports whether any frame contains any substring.
func stackMatches(stack, substrs []string) bool {
	for _, fr := range stack {
		for _, sub := range substrs {
			if strings.Contains(fr, sub) {
				return true
			}
		}
	}
	return false
}

// rankSites orders a flat map descending by value (ties by name) and
// truncates to n (n <= 0 keeps all). Zero-valued sites are dropped.
func rankSites(flat map[string]int64, n int) []Site {
	sites := make([]Site, 0, len(flat))
	for fn, v := range flat {
		if v != 0 {
			sites = append(sites, Site{Func: fn, Flat: v})
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Flat != sites[j].Flat {
			return sites[i].Flat > sites[j].Flat
		}
		return sites[i].Func < sites[j].Func
	})
	if n > 0 && len(sites) > n {
		sites = sites[:n]
	}
	return sites
}
