package ipaddr

import (
	"testing"
	"testing/quick"
)

func TestStringRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "1.2.3.4", "255.255.255.255", "192.168.0.1", "10.0.0.254"}
	for _, s := range cases {
		a, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := a.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1..2.3", "a.b.c.d", "1.2.3.4 ", ".1.2.3", "1.2.3."}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseStringProperty(t *testing.T) {
	if err := quick.Check(func(v uint32) bool {
		a := Addr(v)
		back, err := Parse(a.String())
		return err == nil && back == a
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestOctets(t *testing.T) {
	a := FromOctets(1, 2, 3, 4)
	o0, o1, o2, o3 := a.Octets()
	if o0 != 1 || o1 != 2 || o2 != 3 || o3 != 4 {
		t.Errorf("Octets() = %d.%d.%d.%d", o0, o1, o2, o3)
	}
}

func TestPrefixOps(t *testing.T) {
	a := MustParse("10.2.3.4")
	if a.Slash8() != 10 {
		t.Errorf("Slash8 = %d", a.Slash8())
	}
	if a.Slash16() != 10<<8|2 {
		t.Errorf("Slash16 = %d", a.Slash16())
	}
	if a.Slash24() != 10<<16|2<<8|3 {
		t.Errorf("Slash24 = %d", a.Slash24())
	}
}

func TestPrefixContains(t *testing.T) {
	p := NewPrefix(MustParse("10.2.0.0"), 16)
	if !p.Contains(MustParse("10.2.255.255")) {
		t.Error("prefix should contain 10.2.255.255")
	}
	if p.Contains(MustParse("10.3.0.0")) {
		t.Error("prefix should not contain 10.3.0.0")
	}
	if got := p.String(); got != "10.2.0.0/16" {
		t.Errorf("String = %q", got)
	}
}

func TestPrefixNormalizesBase(t *testing.T) {
	p := NewPrefix(MustParse("10.2.3.4"), 16)
	if p.Base != MustParse("10.2.0.0") {
		t.Errorf("base = %v, want 10.2.0.0", p.Base)
	}
}

func TestPrefixSizeAndNth(t *testing.T) {
	p := NewPrefix(MustParse("192.168.1.0"), 24)
	if p.Size() != 256 {
		t.Errorf("Size = %d", p.Size())
	}
	if got := p.Nth(255); got != MustParse("192.168.1.255") {
		t.Errorf("Nth(255) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Nth out of range did not panic")
		}
	}()
	p.Nth(256)
}

func TestPrefixZeroBits(t *testing.T) {
	p := NewPrefix(MustParse("1.2.3.4"), 0)
	if !p.Contains(MustParse("255.255.255.255")) || !p.Contains(0) {
		t.Error("0-bit prefix must contain everything")
	}
	if p.Size() != 1<<32 {
		t.Errorf("Size = %d", p.Size())
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("172.16.0.0/12")
	if err != nil {
		t.Fatal(err)
	}
	if p.Bits != 12 || p.Base != MustParse("172.16.0.0") {
		t.Errorf("got %v", p)
	}
	for _, bad := range []string{"1.2.3.4", "1.2.3.4/33", "1.2.3.4/-1", "1.2.3.4/x", "bad/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded", bad)
		}
	}
}

func TestReverseName(t *testing.T) {
	a := MustParse("1.2.3.4")
	want := "4.3.2.1.in-addr.arpa"
	if got := a.ReverseName(); got != want {
		t.Errorf("ReverseName = %q, want %q", got, want)
	}
}

func TestFromReverseName(t *testing.T) {
	a, err := FromReverseName("4.3.2.1.in-addr.arpa")
	if err != nil {
		t.Fatal(err)
	}
	if a != MustParse("1.2.3.4") {
		t.Errorf("got %v", a)
	}
	// Trailing dot accepted.
	if _, err := FromReverseName("4.3.2.1.in-addr.arpa."); err != nil {
		t.Errorf("trailing dot rejected: %v", err)
	}
	for _, bad := range []string{"4.3.2.1.ip6.arpa", "3.2.1.in-addr.arpa", "x.3.2.1.in-addr.arpa"} {
		if _, err := FromReverseName(bad); err == nil {
			t.Errorf("FromReverseName(%q) succeeded", bad)
		}
	}
}

func TestReverseNameRoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint32) bool {
		a := Addr(v)
		back, err := FromReverseName(a.ReverseName())
		return err == nil && back == a
	}, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddrString(b *testing.B) {
	a := MustParse("203.178.141.194")
	for i := 0; i < b.N; i++ {
		_ = a.String()
	}
}

func BenchmarkReverseName(b *testing.B) {
	a := MustParse("203.178.141.194")
	for i := 0; i < b.N; i++ {
		_ = a.ReverseName()
	}
}
