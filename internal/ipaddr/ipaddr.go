// Package ipaddr provides a compact IPv4 address model for the simulator.
//
// The whole reproduction works in IPv4 space (the paper's reverse-DNS
// analysis is against in-addr.arpa). A uint32 representation keeps
// originator/querier bookkeeping allocation-free and lets prefixes be
// simple masks.
package ipaddr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// FromOctets assembles an address from its four dotted-quad octets.
func FromOctets(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// Octets returns the four dotted-quad octets of a.
func (a Addr) Octets() (o0, o1, o2, o3 byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// String formats a in dotted-quad notation.
func (a Addr) String() string {
	o0, o1, o2, o3 := a.Octets()
	var b strings.Builder
	b.Grow(15)
	b.WriteString(strconv.Itoa(int(o0)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(o1)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(o2)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(o3)))
	return b.String()
}

// ErrBadAddr reports a malformed dotted-quad string.
var ErrBadAddr = errors.New("ipaddr: malformed IPv4 address")

// Parse parses a dotted-quad IPv4 address.
func Parse(s string) (Addr, error) {
	var a Addr
	part := 0
	val := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if val < 0 {
				val = 0
			}
			val = val*10 + int(c-'0')
			if val > 255 {
				return 0, fmt.Errorf("%w: octet > 255 in %q", ErrBadAddr, s)
			}
		case c == '.':
			if val < 0 || part == 3 {
				return 0, fmt.Errorf("%w: %q", ErrBadAddr, s)
			}
			a = a<<8 | Addr(val)
			val = -1
			part++
		default:
			return 0, fmt.Errorf("%w: bad byte %q in %q", ErrBadAddr, c, s)
		}
	}
	if part != 3 || val < 0 {
		return 0, fmt.Errorf("%w: %q", ErrBadAddr, s)
	}
	return a<<8 | Addr(val), nil
}

// MustParse is Parse for tests and constants; it panics on error.
func MustParse(s string) Addr {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Slash8 returns the first octet, identifying a's /8 block.
func (a Addr) Slash8() byte { return byte(a >> 24) }

// Slash16 returns a's /16 prefix as a 16-bit value (first two octets).
func (a Addr) Slash16() uint16 { return uint16(a >> 16) }

// Slash24 returns a's /24 prefix as a 24-bit value (first three octets).
func (a Addr) Slash24() uint32 { return uint32(a >> 8) }

// Prefix is a CIDR prefix.
type Prefix struct {
	Base Addr
	Bits int
}

// NewPrefix returns the prefix of the given length containing a,
// normalizing the base address. It panics for bits outside [0, 32].
func NewPrefix(a Addr, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic("ipaddr: prefix bits out of range")
	}
	return Prefix{Base: a & mask(bits), Bits: bits}
}

func mask(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - bits))
}

// Contains reports whether a is inside p.
func (p Prefix) Contains(a Addr) bool {
	return a&mask(p.Bits) == p.Base
}

// Size returns the number of addresses covered by p.
func (p Prefix) Size() uint64 {
	return 1 << (32 - p.Bits)
}

// Nth returns the i-th address within p. It panics if i is out of range.
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.Size() {
		panic("ipaddr: address index out of prefix range")
	}
	return p.Base + Addr(i)
}

// String formats p in CIDR notation.
func (p Prefix) String() string {
	return p.Base.String() + "/" + strconv.Itoa(p.Bits)
}

// ParsePrefix parses CIDR notation such as "10.2.0.0/16".
func ParsePrefix(s string) (Prefix, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("%w: missing '/' in %q", ErrBadAddr, s)
	}
	a, err := Parse(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[i+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("%w: bad prefix length in %q", ErrBadAddr, s)
	}
	return NewPrefix(a, bits), nil
}

// ReverseName returns the in-addr.arpa PTR query name for a, e.g.
// 1.2.3.4 -> "4.3.2.1.in-addr.arpa".
func (a Addr) ReverseName() string {
	o0, o1, o2, o3 := a.Octets()
	var b strings.Builder
	b.Grow(28)
	b.WriteString(strconv.Itoa(int(o3)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(o2)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(o1)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(o0)))
	b.WriteString(".in-addr.arpa")
	return b.String()
}

// FromReverseName parses an in-addr.arpa name back to the address it
// queries, accepting an optional trailing dot.
func FromReverseName(name string) (Addr, error) {
	name = strings.TrimSuffix(name, ".")
	const suffix = ".in-addr.arpa"
	if !strings.HasSuffix(name, suffix) {
		return 0, fmt.Errorf("%w: %q is not under in-addr.arpa", ErrBadAddr, name)
	}
	rev, err := Parse(name[:len(name)-len(suffix)])
	if err != nil {
		return 0, err
	}
	o0, o1, o2, o3 := rev.Octets()
	return FromOctets(o3, o2, o1, o0), nil
}
