package geo

import (
	"testing"

	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/rng"
)

func TestDeterminism(t *testing.T) {
	a := NewRegistry(42)
	b := NewRegistry(42)
	for i := 0; i < 256; i++ {
		addr := ipaddr.Addr(uint32(i) << 24)
		if a.Country(addr) != b.Country(addr) {
			t.Fatalf("/8 %d: country mismatch across identical seeds", i)
		}
	}
	for i := 0; i < 1<<16; i += 37 {
		addr := ipaddr.Addr(uint32(i) << 16)
		if a.ASN(addr) != b.ASN(addr) {
			t.Fatalf("/16 %d: ASN mismatch across identical seeds", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := NewRegistry(1)
	b := NewRegistry(2)
	diff := 0
	for i := 0; i < 256; i++ {
		addr := ipaddr.Addr(uint32(i) << 24)
		if a.Country(addr) != b.Country(addr) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical /8 allocation")
	}
}

func TestEveryBlockHasCountry(t *testing.T) {
	r := NewRegistry(7)
	valid := make(map[string]bool)
	for _, c := range Countries {
		valid[c.Code] = true
	}
	for i := 0; i < 256; i++ {
		code := r.Country(ipaddr.Addr(uint32(i) << 24))
		if !valid[code] {
			t.Fatalf("/8 %d assigned unknown country %q", i, code)
		}
	}
}

func TestASNConsistentWithinSlash16(t *testing.T) {
	r := NewRegistry(7)
	base := ipaddr.MustParse("100.50.0.0")
	want := r.ASN(base)
	for _, s := range []string{"100.50.0.1", "100.50.128.9", "100.50.255.255"} {
		if got := r.ASN(ipaddr.MustParse(s)); got != want {
			t.Errorf("ASN(%s) = %d, want %d (same /16)", s, got, want)
		}
	}
}

func TestASesStayWithinSlash8(t *testing.T) {
	r := NewRegistry(7)
	// The last /16 of one /8 and the first of the next must be different
	// ASes: AS carving restarts at each /8 boundary.
	for b8 := 0; b8 < 255; b8++ {
		last := r.ASN(ipaddr.FromOctets(byte(b8), 255, 0, 0))
		next := r.ASN(ipaddr.FromOctets(byte(b8+1), 0, 0, 0))
		if last == next {
			t.Fatalf("AS %d spans /8 boundary at %d", last, b8)
		}
	}
}

func TestCountsPositive(t *testing.T) {
	r := NewRegistry(7)
	if r.NumASes() < 256 {
		t.Errorf("NumASes = %d, want at least one per /8", r.NumASes())
	}
	if r.NumCountries() < 10 {
		t.Errorf("NumCountries = %d, want broad coverage", r.NumCountries())
	}
}

func TestSlash8sInMatchesCountry(t *testing.T) {
	r := NewRegistry(7)
	for _, c := range Countries {
		for _, b8 := range r.Slash8sIn(c.Code) {
			if got := r.Country(ipaddr.Addr(uint32(b8) << 24)); got != c.Code {
				t.Errorf("Slash8sIn(%q) contains %d owned by %q", c.Code, b8, got)
			}
		}
	}
}

func TestSlash8sInCoversAllBlocks(t *testing.T) {
	r := NewRegistry(7)
	n := 0
	for _, c := range Countries {
		n += len(r.Slash8sIn(c.Code))
	}
	if n != 256 {
		t.Errorf("country allocations cover %d /8s, want 256", n)
	}
}

func TestRandomAddrIn(t *testing.T) {
	r := NewRegistry(7)
	st := rng.New(9)
	for i := 0; i < 200; i++ {
		a, ok := r.RandomAddrIn("jp", st)
		if !ok {
			t.Skip("jp holds no space under this seed (allowed but unexpected)")
		}
		if got := r.Country(a); got != "jp" {
			t.Fatalf("RandomAddrIn(jp) returned %v in country %q", a, got)
		}
	}
	if _, ok := r.RandomAddrIn("zz", st); ok {
		t.Error("RandomAddrIn for unknown country succeeded")
	}
}

func TestMajorCountriesAllocated(t *testing.T) {
	r := NewRegistry(7)
	// High-weight countries should essentially always receive space.
	for _, code := range []string{"us", "cn", "jp"} {
		if len(r.Slash8sIn(code)) == 0 {
			t.Errorf("country %q received no /8s", code)
		}
	}
}

func TestCCTLD(t *testing.T) {
	r := NewRegistry(7)
	blocks := r.Slash8sIn("jp")
	if len(blocks) == 0 {
		t.Skip("jp empty under this seed")
	}
	a := ipaddr.Addr(uint32(blocks[0]) << 24)
	if got := r.CCTLD(a); got != "jp" {
		t.Errorf("CCTLD = %q, want jp", got)
	}
	if reg := r.Region(a); reg != "asia" {
		t.Errorf("Region = %q, want asia", reg)
	}
}

func BenchmarkLookups(b *testing.B) {
	r := NewRegistry(7)
	a := ipaddr.MustParse("133.4.5.6")
	for i := 0; i < b.N; i++ {
		_ = r.Country(a)
		_ = r.ASN(a)
	}
}
