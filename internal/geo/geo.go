// Package geo provides a deterministic IPv4 geolocation and AS registry.
//
// The paper derives dynamic features from MaxMind GeoLiteCity (country per
// querier IP) and whois (AS per querier IP). Those databases are
// proprietary, so the simulator substitutes a seeded synthetic registry
// with the same structure the features rely on:
//
//   - /8 blocks are assigned to countries geographically, so the Shannon
//     entropy of querier /8s measures global dispersion (§III-C "global
//     entropy"),
//   - contiguous runs of /16s within a /8 belong to one AS, so AS counts
//     measure organizational dispersion.
//
// The registry is immutable after construction and safe for concurrent use.
package geo

import (
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/rng"
)

// Country describes one simulated country.
type Country struct {
	Code   string // ISO-like two-letter code
	Region string // continent-scale region
	CCTLD  string // country-code TLD used by namegen, e.g. "jp"
	Weight int    // relative share of /8 allocations
}

// Countries is the fixed allocation table. Weights roughly follow real
// regional address-space concentration (North America and Asia hold most
// of IPv4).
var Countries = []Country{
	{"us", "north-america", "com", 50},
	{"ca", "north-america", "ca", 6},
	{"mx", "north-america", "mx", 2},
	{"br", "south-america", "br", 5},
	{"ar", "south-america", "ar", 2},
	{"cl", "south-america", "cl", 1},
	{"gb", "europe", "uk", 8},
	{"de", "europe", "de", 9},
	{"fr", "europe", "fr", 7},
	{"nl", "europe", "nl", 4},
	{"it", "europe", "it", 4},
	{"es", "europe", "es", 3},
	{"se", "europe", "se", 2},
	{"pl", "europe", "pl", 3},
	{"ru", "europe", "ru", 6},
	{"jp", "asia", "jp", 14},
	{"cn", "asia", "cn", 22},
	{"kr", "asia", "kr", 8},
	{"tw", "asia", "tw", 3},
	{"in", "asia", "in", 5},
	{"id", "asia", "id", 2},
	{"vn", "asia", "vn", 2},
	{"th", "asia", "th", 1},
	{"pk", "asia", "pk", 1},
	{"au", "oceania", "au", 4},
	{"nz", "oceania", "nz", 1},
	{"za", "africa", "za", 2},
	{"eg", "africa", "eg", 1},
	{"ng", "africa", "ng", 1},
	{"cr", "north-america", "cr", 1},
}

// Registry maps IPv4 addresses to countries and autonomous systems.
type Registry struct {
	countryOf [256]int16 // /8 -> index into Countries
	asOf      []int32    // /16 -> ASN
	numAS     int
	byCountry map[string][]byte // country code -> /8 list
}

// NewRegistry builds the registry for a master seed. The same seed always
// yields the same allocation.
func NewRegistry(seed uint64) *Registry {
	st := rng.NewSource(seed).Stream("geo")
	r := &Registry{
		asOf:      make([]int32, 1<<16),
		byCountry: make(map[string][]byte),
	}

	// Weighted country choice per /8. Blocks are assigned in runs of 1-4
	// adjacent /8s to one country, mimicking the contiguous regional
	// allocations that make /8 entropy a geographic signal.
	total := 0
	for _, c := range Countries {
		total += c.Weight
	}
	block := 0
	for block < 256 {
		pick := st.Intn(total)
		ci := 0
		for i, c := range Countries {
			if pick < c.Weight {
				ci = i
				break
			}
			pick -= c.Weight
		}
		run := 1 + st.Intn(4)
		for j := 0; j < run && block < 256; j++ {
			r.countryOf[block] = int16(ci)
			code := Countries[ci].Code
			r.byCountry[code] = append(r.byCountry[code], byte(block))
			block++
		}
	}

	// ASes: contiguous runs of /16s within a /8, geometric run lengths.
	asn := int32(1000)
	for b8 := 0; b8 < 256; b8++ {
		s16 := 0
		for s16 < 256 {
			run := 1
			for run < 64 && st.Bool(0.7) {
				run++
			}
			for j := 0; j < run && s16 < 256; j++ {
				r.asOf[b8<<8|s16] = asn
				s16++
			}
			asn++
		}
	}
	r.numAS = int(asn - 1000)
	return r
}

// Country returns the country code for a.
func (r *Registry) Country(a ipaddr.Addr) string {
	return Countries[r.countryOf[a.Slash8()]].Code
}

// CountryIndex returns a's country as an index into Countries — a compact
// key for hot-path maps.
func (r *Registry) CountryIndex(a ipaddr.Addr) int {
	return int(r.countryOf[a.Slash8()])
}

// CountryCode returns the code for a Countries index.
func CountryCode(i int) string { return Countries[i].Code }

// Region returns the continent-scale region for a.
func (r *Registry) Region(a ipaddr.Addr) string {
	return Countries[r.countryOf[a.Slash8()]].Region
}

// CCTLD returns the country-code TLD used for reverse names under a's
// country (e.g. "jp"); the US uses generic "com".
func (r *Registry) CCTLD(a ipaddr.Addr) string {
	return Countries[r.countryOf[a.Slash8()]].CCTLD
}

// ASN returns the autonomous system number owning a.
func (r *Registry) ASN(a ipaddr.Addr) int {
	return int(r.asOf[a.Slash16()])
}

// NumASes returns how many distinct ASes exist in the registry.
func (r *Registry) NumASes() int { return r.numAS }

// NumCountries returns how many countries received at least one /8.
func (r *Registry) NumCountries() int { return len(r.byCountry) }

// Slash8sIn returns the /8 first-octets allocated to the country code, in
// ascending order. It returns nil for unknown or unallocated countries.
func (r *Registry) Slash8sIn(code string) []byte {
	blocks := r.byCountry[code]
	out := make([]byte, len(blocks))
	copy(out, blocks)
	return out
}

// RandomAddrIn draws a uniform address inside the country's allocation
// using st. It returns false if the country holds no space.
func (r *Registry) RandomAddrIn(code string, st *rng.Stream) (ipaddr.Addr, bool) {
	blocks := r.byCountry[code]
	if len(blocks) == 0 {
		return 0, false
	}
	b8 := blocks[st.Intn(len(blocks))]
	return ipaddr.Addr(uint32(b8)<<24 | uint32(st.Uint64()&0xffffff)), true
}
