package report

import (
	"fmt"
	"math"
	"sort"
	"time"

	backscatter "dnsbackscatter"

	"dnsbackscatter/internal/qname"
	"dnsbackscatter/internal/simtime"
)

// Figure3 regenerates the static-feature case studies.
func Figure3(s *Store) string {
	d := s.Get(backscatter.JPDitl())
	cats := []qname.Category{
		qname.Home, qname.Mail, qname.NS, qname.FW, qname.Antispam,
		qname.NXDomain, qname.Unreach, qname.Other,
	}
	t := &tw{}
	head := []string{"case"}
	for _, c := range cats {
		head = append(head, c.String())
	}
	t.row(head...)
	for _, cs := range caseStudies(d) {
		v, ok := d.Whole().Vector(cs.addr)
		if !ok {
			continue
		}
		row := []string{cs.name}
		for _, c := range cats {
			row = append(row, fmt.Sprintf("%.2f", v.Static(c)))
		}
		t.row(row...)
	}
	return header("Figure 3: static features for case studies (Dataset: JP-ditl)") + t.String()
}

// Figure4 regenerates the controlled-scan attenuation experiment with its
// power-law fit.
func Figure4(s *Store) string {
	fracs := []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2}
	if s.Heavy {
		fracs = append(fracs, 1e-1)
	}
	const react = 0.002
	t := &tw{}
	t.row("scan fraction", "targets", "reacting", "final queriers", "final queries", "root queriers")
	var xs, ys []float64
	for i, f := range fracs {
		// Three trials per size, like the paper's repeats.
		trials := 3
		if f >= 1e-2 {
			trials = 1
		}
		for k := 0; k < trials; k++ {
			res := backscatter.ControlledScan(uint64(1000+10*i+k), f, react)
			t.rowf("%.4g%%\t%d\t%d\t%d\t%d\t%d",
				f*100, res.Targets, res.Reacting, res.FinalQueriers, res.FinalQueries, res.RootQueriers)
			if res.FinalQueriers > 0 {
				xs = append(xs, float64(res.Targets))
				ys = append(ys, float64(res.FinalQueriers))
			}
		}
	}
	c, alpha := backscatter.PowerLawFit(xs, ys)
	out := header("Figure 4: queriers vs controlled scan size (final authority, PTR TTL=0)") + t.String()
	out += fmt.Sprintf("\npower-law fit: queriers ≈ %.3g · targets^%.2f (paper: exponent 0.71)\n", c, alpha)
	out += "detection threshold: 20 queriers\n"
	return out
}

// decayLine summarizes a reappearance series relative to its curation
// value: counts at curation, one month before/after, six months after.
func decayLine(re []backscatter.Reappearance, curIdx int, pick func(backscatter.Reappearance) int, intervalsPerMonth int) string {
	at := func(i int) int {
		if i < 0 || i >= len(re) {
			return -1
		}
		return pick(re[i])
	}
	base := at(curIdx)
	frac := func(v int) string {
		if v < 0 || base <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%d (%.0f%%)", v, 100*float64(v)/float64(base))
	}
	return fmt.Sprintf("at curation: %d   -1mo: %s   +1mo: %s   +6mo: %s",
		base,
		frac(at(curIdx-intervalsPerMonth)),
		frac(at(curIdx+intervalsPerMonth)),
		frac(at(curIdx+6*intervalsPerMonth)))
}

// multiYearContext prepares B-multi-year with labels curated at the
// paper's curation window (2014-04-28..30).
func multiYearContext(s *Store) (*backscatter.Dataset, *backscatter.LabeledSet, int, int) {
	d := s.Get(backscatter.BMultiYear())
	spec := d.Spec
	cur := simtime.Date(2014, time.April, 28, 0, 0)
	curIdx := int(cur.Sub(spec.Start) / spec.Interval)
	if curIdx >= len(d.Snapshots) {
		curIdx = len(d.Snapshots) - 1
	}
	labels := d.CurateAt(curIdx)
	perMonth := int(30 * simtime.Day / spec.Interval)
	if perMonth < 1 {
		perMonth = 1
	}
	return d, labels, curIdx, perMonth
}

// reappearancesFor counts labeled-example activity with a specific set.
func reappearancesFor(d *backscatter.Dataset, labels *backscatter.LabeledSet) []backscatter.Reappearance {
	saved := d.Labels
	d.Labels = labels
	defer func() { d.Labels = saved }()
	return d.Reappearances()
}

// Figure5 regenerates benign labeled-example stability.
func Figure5(s *Store) string {
	d, labels, curIdx, perMonth := multiYearContext(s)
	re := reappearancesFor(d, labels)
	series := make([]int, len(re))
	for i, r := range re {
		series[i] = r.Benign
	}
	out := header("Figure 5: benign labeled-example activity over time (Dataset: B-multi-year)")
	out += fmt.Sprintf("curation at interval %d (%s)\n", curIdx, re[curIdx].Start)
	out += "benign  " + sparkline(series) + "\n"
	out += decayLine(re, curIdx, func(r backscatter.Reappearance) int { return r.Benign }, perMonth) + "\n"
	out += "expected shape: slow decay (paper: ~10%/month)\n"
	return out
}

// Figure6 regenerates malicious labeled-example churn.
func Figure6(s *Store) string {
	d, labels, curIdx, perMonth := multiYearContext(s)
	re := reappearancesFor(d, labels)
	series := make([]int, len(re))
	for i, r := range re {
		series[i] = r.Malicious
	}
	out := header("Figure 6: malicious labeled-example activity over time (Dataset: B-multi-year)")
	out += fmt.Sprintf("curation at interval %d (%s)\n", curIdx, re[curIdx].Start)
	out += "malicious  " + sparkline(series) + "\n"
	out += decayLine(re, curIdx, func(r backscatter.Reappearance) int { return r.Malicious }, perMonth) + "\n"
	out += "expected shape: sharp falloff (paper: ~50% within a month)\n"
	return out
}

// Figure7 regenerates the strategy comparison.
func Figure7(s *Store) string {
	d, labels, curIdx, perMonth := multiYearContext(s)
	out := header("Figure 7: f-score over time by training strategy (Dataset: B-multi-year)")
	out += fmt.Sprintf("curation at interval %d; one column per interval (%s each)\n",
		curIdx, fmtDur(d.Spec.Interval))
	type summary struct {
		name    string
		atCur   float64
		plus1mo float64
		plus6mo float64
		mean    float64
		trained int
	}
	var sums []summary
	for _, strat := range []backscatter.TrainingStrategy{
		backscatter.TrainOnce, backscatter.RetrainDaily, backscatter.AutoGrow,
	} {
		pts := d.RunStrategy(strat, labels, curIdx, 0)
		series := make([]int, len(pts))
		var sum float64
		trained := 0
		for i, p := range pts {
			series[i] = int(100 * p.F1)
			if p.Trained {
				sum += p.F1
				trained++
			}
		}
		at := func(i int) float64 {
			if i < 0 || i >= len(pts) || !pts[i].Trained {
				return math.NaN()
			}
			return pts[i].F1
		}
		mean := 0.0
		if trained > 0 {
			mean = sum / float64(trained)
		}
		sums = append(sums, summary{
			name: strat.String(), atCur: at(curIdx),
			plus1mo: at(curIdx + perMonth), plus6mo: at(curIdx + 6*perMonth),
			mean: mean, trained: trained,
		})
		out += fmt.Sprintf("%-12s %s\n", strat.String(), sparkline(series))
	}
	t := &tw{}
	t.row("strategy", "f@curation", "f@+1mo", "f@+6mo", "mean f (trained)", "intervals trained")
	for _, u := range sums {
		t.rowf("%s\t%.2f\t%.2f\t%.2f\t%.2f\t%d/%d",
			u.name, u.atCur, u.plus1mo, u.plus6mo, u.mean, u.trained, len(d.Snapshots))
	}
	out += t.String()
	out += "expected shape: train-daily ≥ train-once ≥ auto-grow away from curation\n"
	return out
}

// weeklyClassesFiltered classifies each interval and keeps originators
// with at least q queriers that interval.
func weeklyClassesFiltered(d *backscatter.Dataset, q int) []map[backscatter.Addr]backscatter.Class {
	weekly := d.ClassifyIntervals()
	out := make([]map[backscatter.Addr]backscatter.Class, len(weekly))
	for i, wk := range weekly {
		if wk == nil {
			continue
		}
		m := make(map[backscatter.Addr]backscatter.Class)
		for a, c := range wk {
			if v, ok := d.Snapshots[i].Vector(a); ok && v.Queriers >= q {
				m[a] = c
			}
		}
		out[i] = m
	}
	return out
}

// Figure8 regenerates the consistency CDF at several querier thresholds.
func Figure8(s *Store) string {
	d := s.Get(backscatter.MSampled())
	out := header("Figure 8: CDF of majority-class ratio r (Dataset: M-sampled, ≥4 weeks present)")
	t := &tw{}
	t.row("q", "originators", "frac r=1 (consistent)", "frac r>0.5 (majority)", "median r")
	for _, q := range []int{20, 50, 75, 100} {
		weekly := weeklyClassesFiltered(d, q)
		rs := backscatter.ConsistencyCDF(weekly, 4)
		if len(rs) == 0 {
			t.rowf("%d\t0\tn/a\tn/a\tn/a", q)
			continue
		}
		t.rowf("%d\t%d\t%.2f\t%.2f\t%.2f",
			q, len(rs),
			backscatter.FractionAtLeast(rs, 1),
			backscatter.FractionAtLeast(rs, 0.5001),
			rs[len(rs)/2])
	}
	out += t.String()
	out += "expected shape: more queriers ⇒ more consistent; 85-90% have a strict majority class\n"
	return out
}

// Figure9 regenerates the footprint-size distributions.
func Figure9(s *Store) string {
	out := header("Figure 9: distribution of originator footprint size")
	t := &tw{}
	t.row("dataset", "originators", "p50", "p90", "p99", "max", "CCDF@100", "CCDF@1000")
	for _, spec := range []backscatter.DatasetSpec{
		backscatter.JPDitl(), backscatter.BPostDitl(), backscatter.MDitl(), backscatter.MSampled(),
	} {
		d := s.Get(spec)
		snap := d.Whole()
		pts := backscatter.FootprintCCDF(snap)
		if len(pts) == 0 {
			t.rowf("%s\t0", spec.Name)
			continue
		}
		sizes := make([]float64, len(snap.Vectors))
		for i, v := range snap.Vectors {
			sizes[i] = float64(v.Queriers)
		}
		qs := backscatter.Quantiles(sizes)
		ccdfAt := func(x int) float64 {
			frac := 0.0
			for _, p := range pts {
				if p.Size >= x {
					frac = p.CCDF
					break
				}
			}
			return frac
		}
		maxSize := pts[len(pts)-1].Size
		t.rowf("%s\t%d\t%.0f\t%.0f\t%.0f\t%d\t%.3f\t%.4f",
			spec.Name, len(snap.Vectors), qs.P50, qs.P90, quantile(sizes, 0.99), maxSize,
			ccdfAt(100), ccdfAt(1000))
	}
	out += t.String()
	out += "expected shape: heavy tail — a few originators reach 10-100x the median footprint\n"
	return out
}

func quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}

// Figure10 regenerates the top-N class fractions.
func Figure10(s *Store) string {
	out := header("Figure 10: fraction of originator classes among top-N originators")
	for _, spec := range []backscatter.DatasetSpec{
		backscatter.JPDitl(), backscatter.BPostDitl(), backscatter.MDitl(),
	} {
		d := s.Get(spec)
		classes, err := classifyWhole(d)
		if err != nil {
			out += spec.Name + ": untrainable\n"
			continue
		}
		ranked := d.Whole().Ranked()
		t := &tw{}
		head := []string{spec.Name}
		for _, c := range classOrder() {
			head = append(head, c.String())
		}
		t.row(head...)
		for _, n := range []int{100, 1000, 10000} {
			if n > len(ranked) {
				n = len(ranked)
			}
			fr := backscatter.ClassFractions(classes, ranked, n)
			row := []string{fmt.Sprintf("top-%d", n)}
			for _, c := range classOrder() {
				row = append(row, fmt.Sprintf("%.2f", fr[c]))
			}
			t.row(row...)
			if n == len(ranked) {
				break
			}
		}
		out += t.String() + "\n"
	}
	out += "expected shape: biggest footprints skew malicious (spam at JP, scan at roots);\nmail/crawler rise only in the broader top-N\n"
	return out
}

// Figure11 regenerates originator counts over time with the Heartbleed
// window highlighted.
func Figure11(s *Store) string {
	d := s.Get(backscatter.MSampled())
	weekly := weeklyClassesFiltered(d, d.Extractor.MinQueriers)
	out := header("Figure 11: number of originators over time (Dataset: M-sampled)")
	totals := make([]int, len(weekly))
	scans := make([]int, len(weekly))
	spams := make([]int, len(weekly))
	mails := make([]int, len(weekly))
	for i, wk := range weekly {
		counts := backscatter.ClassCounts(wk)
		for _, c := range counts {
			totals[i] += c
		}
		scans[i] = counts[backscatter.Scan]
		spams[i] = counts[backscatter.Spam]
		mails[i] = counts[backscatter.Mail]
	}
	out += fmt.Sprintf("total %s\n", sparkline(totals))
	out += fmt.Sprintf("scan  %s\n", sparkline(scans))
	out += fmt.Sprintf("spam  %s\n", sparkline(spams))
	out += fmt.Sprintf("mail  %s\n", sparkline(mails))

	// Heartbleed: compare scan counts in the four weeks after 2014-04-07
	// against the four weeks before.
	hb := simtime.Date(2014, time.April, 7, 0, 0)
	hbIdx := int(hb.Sub(d.Spec.Start) / d.Spec.Interval)
	pre, post := 0.0, 0.0
	n := 0
	for k := 1; k <= 4; k++ {
		if hbIdx-k >= 0 && hbIdx+k < len(scans) {
			pre += float64(scans[hbIdx-k])
			post += float64(scans[hbIdx+k-1])
			n++
		}
	}
	if n > 0 && pre > 0 {
		out += fmt.Sprintf("Heartbleed (week %d): scanners %.0f/wk before → %.0f/wk after (%+.0f%%; paper: ≈+25%%)\n",
			hbIdx, pre/float64(n), post/float64(n), 100*(post-pre)/pre)
	}
	return out
}

// Figure12 regenerates the scanner-footprint box plot over time.
func Figure12(s *Store) string {
	d := s.Get(backscatter.MSampled())
	weekly := weeklyClassesFiltered(d, d.Extractor.MinQueriers)
	out := header("Figure 12: originator footprint (queriers per scanner) over time (Dataset: M-sampled)")
	t := &tw{}
	t.row("week", "n", "p10", "p25", "median", "p75", "p90")
	step := len(weekly) / 12
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(weekly); i += step {
		var sizes []float64
		for a, c := range weekly[i] {
			if c != backscatter.Scan {
				continue
			}
			if v, ok := d.Snapshots[i].Vector(a); ok {
				sizes = append(sizes, float64(v.Queriers))
			}
		}
		q := backscatter.Quantiles(sizes)
		t.rowf("%d\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f", i, q.N, q.P10, q.P25, q.P50, q.P75, q.P90)
	}
	out += t.String()
	out += "expected shape: stable median/quartiles, volatile p90 (big scanners come and go)\n"
	return out
}

// Figure13 regenerates example scanner time series.
func Figure13(s *Store) string {
	d := s.Get(backscatter.MSampled())
	weeks := int(d.Spec.Duration / simtime.Week)
	out := header("Figure 13: example originators of class scan (weekly queriers; Dataset: M-sampled + darknet)")

	// Pick up to five scanners with distinct ports, preferring large
	// footprints and darknet confirmation.
	type cand struct {
		addr backscatter.Addr
		port string
		dark int
	}
	var cands []cand
	seenPort := map[string]int{}
	for _, v := range d.Whole().Vectors {
		tr, ok := d.World.Truth(v.Originator)
		if !ok || tr.Class != backscatter.Scan {
			continue
		}
		if seenPort[tr.Port] >= 2 {
			continue
		}
		seenPort[tr.Port]++
		cands = append(cands, cand{v.Originator, tr.Port, d.OriginatorEvidence(v.Originator).DarknetHits})
		if len(cands) == 5 {
			break
		}
	}
	for _, c := range cands {
		series := backscatter.UniqueQueriersPerWeek(d.Records, c.addr, d.Spec.Start, weeks)
		active := 0
		for _, v := range series {
			if v > 0 {
				active++
			}
		}
		out += fmt.Sprintf("%-16s %-6s dark=%d active %d/%d wk  %s\n",
			c.addr, c.port, c.dark, active, weeks, sparkline(series))
	}
	out += "expected shape: persistent ssh/multi scanners plus short-lived burst scanners\n"
	return out
}

// Figure14 regenerates per-/24-block scanning activity.
func Figure14(s *Store) string {
	d := s.Get(backscatter.MSampled())
	weekly := weeklyClassesFiltered(d, d.Extractor.MinQueriers)
	out := header("Figure 14: scanning addresses per /24 block over time (Dataset: M-sampled)")

	// Count scan-class IPs per block per week; show the five busiest.
	blocks := make(map[uint32][]int)
	for i, wk := range weekly {
		for a, c := range wk {
			if c != backscatter.Scan {
				continue
			}
			b := a.Slash24()
			if _, ok := blocks[b]; !ok {
				blocks[b] = make([]int, len(weekly))
			}
			blocks[b][i]++
		}
	}
	type blk struct {
		id   uint32
		peak int
		ser  []int
	}
	var top []blk
	for id, ser := range blocks {
		peak := 0
		for _, v := range ser {
			if v > peak {
				peak = v
			}
		}
		top = append(top, blk{id, peak, ser})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].peak != top[j].peak {
			return top[i].peak > top[j].peak
		}
		return top[i].id < top[j].id
	})
	if len(top) > 5 {
		top = top[:5]
	}
	for _, b := range top {
		addr := backscatter.Addr(b.id << 8)
		out += fmt.Sprintf("%-18s peak=%-3d %s\n", addr.String()+"/24", b.peak, sparkline(b.ser))
	}
	out += "expected shape: a few blocks host many concurrent scanners (teams), others single\n"
	return out
}

// Figure15 regenerates week-by-week churn for scanners.
func Figure15(s *Store) string {
	d := s.Get(backscatter.MSampled())
	weekly := weeklyClassesFiltered(d, d.Extractor.MinQueriers)
	churn := backscatter.Churn(weekly, backscatter.Scan)
	out := header("Figure 15: week-by-week churn for originators of class scan (Dataset: M-sampled)")
	t := &tw{}
	t.row("week", "new", "continuing", "departing", "turnover")
	var turn []float64
	for _, p := range churn[1:] { // week 0 is all-new by construction
		total := p.New + p.Continuing
		if total == 0 {
			continue
		}
		tv := float64(p.Departing) / float64(total)
		turn = append(turn, tv)
		t.rowf("%d\t%d\t%d\t%d\t%.0f%%", p.Week, p.New, p.Continuing, p.Departing, 100*tv)
	}
	out += t.String()
	if len(turn) > 0 {
		var sum float64
		for _, v := range turn {
			sum += v
		}
		out += fmt.Sprintf("mean weekly turnover: %.0f%% (paper: ≈20%% with a stable core)\n", 100*sum/float64(len(turn)))
	}
	return out
}

// Figure16 regenerates the diurnal case studies.
func Figure16(s *Store) string {
	d := s.Get(backscatter.JPDitl())
	out := header("Figure 16: diurnal variation in queriers for case studies (Dataset: JP-ditl)")
	bucket := simtime.Hour
	t := &tw{}
	t.row("case", "diurnal amplitude", "hourly series")
	for _, cs := range caseStudies(d) {
		series := backscatter.TimeSeries(d.Records, cs.addr, d.Spec.Start, d.Spec.Duration, bucket)
		amp := backscatter.DiurnalAmplitude(series, bucket)
		t.rowf("%s\t%.2f\t%s", cs.name, amp, sparkline(series))
	}
	out += t.String()
	out += "expected shape: ad-tracker/cdn/mail diurnal; scan-ssh/spam flat\n"
	return out
}
