package report

import (
	"fmt"

	backscatter "dnsbackscatter"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/dnssim"
	"dnsbackscatter/internal/features"
	"dnsbackscatter/internal/simtime"
)

// forwardRatio estimates total query volume from reverse volume per
// authority, matching the all/reverse ratios of the paper's Table I
// (JP ≈ 13x, B-Root ≈ 72x, M-Root ≈ 138x).
func forwardRatio(authority string) float64 {
	switch authority {
	case "jp":
		return 13
	case "b-root":
		return 72
	default:
		return 138
	}
}

// Table1 regenerates the dataset catalog.
func Table1(s *Store) string {
	t := &tw{}
	t.row("type", "dataset", "operator", "start (UTC)", "duration", "sampling", "queries(all,est)", "(reverse)", "qps(rev)")
	for _, spec := range []backscatter.DatasetSpec{
		backscatter.JPDitl(), backscatter.BPostDitl(), backscatter.BLong(),
		backscatter.BMultiYear(), backscatter.MDitl(), backscatter.MDitl2015(),
		backscatter.MSampled(),
	} {
		d := s.Get(spec)
		rev := d.ReverseQueries()
		typ := "root"
		op := "B-Root"
		switch spec.Authority {
		case "jp":
			typ, op = "ccTLD", "JP-DNS"
		case "m-root":
			op = "M-Root"
		}
		sampling := "no"
		if spec.Sample > 1 {
			sampling = fmt.Sprintf("1:%d", spec.Sample)
		}
		secs := float64(spec.Duration)
		t.rowf("%s\t%s\t%s\t%s\t%s\t%s\t%.2e\t%.2e\t%.3f",
			typ, spec.Name, op, spec.Start.String(), fmtDur(spec.Duration), sampling,
			float64(rev)*forwardRatio(spec.Authority), float64(rev), float64(rev)/secs)
	}
	return header("Table I: DNS datasets (simulated; volumes at simulation scale)") + t.String()
}

func fmtDur(d simtime.Duration) string {
	switch {
	case d%simtime.Day == 0 && d >= 30*simtime.Day:
		return fmt.Sprintf("%.1f months", float64(d)/float64(30*simtime.Day))
	case d%simtime.Day == 0:
		return fmt.Sprintf("%d days", d/simtime.Day)
	default:
		return fmt.Sprintf("%d hours", d/simtime.Hour)
	}
}

// Table2 regenerates the dynamic-feature case studies.
func Table2(s *Store) string {
	d := s.Get(backscatter.JPDitl())
	t := &tw{}
	t.row("case", "queries/querier", "global entropy", "local entropy", "queriers/country")
	for _, cs := range caseStudies(d) {
		v, ok := d.Whole().Vector(cs.addr)
		if !ok {
			continue
		}
		t.rowf("%s\t%.1f\t%.2f\t%.2f\t%.4f", cs.name,
			v.Dynamic(features.DynQueriesPerQuerier),
			v.Dynamic(features.DynGlobalEntropy),
			v.Dynamic(features.DynLocalEntropy),
			v.Dynamic(features.DynQueriersPerCountry))
	}
	return header("Table II: dynamic features for case studies (Dataset: JP-ditl)") + t.String()
}

// Table3 regenerates the validation table: datasets × algorithms.
func Table3(s *Store) string {
	runs := 15
	if s.Heavy {
		runs = 50
	}
	t := &tw{}
	t.row("dataset", "algorithm", "accuracy", "precision", "recall", "F1-score")
	for _, spec := range []backscatter.DatasetSpec{
		backscatter.JPDitl(), backscatter.BPostDitl(), backscatter.MDitl(), backscatter.MSampled(),
	} {
		d := s.Get(spec)
		for _, alg := range []backscatter.Algorithm{backscatter.AlgCART, backscatter.AlgRandomForest, backscatter.AlgSVM} {
			res, err := d.Validate(alg, 0.6, runs)
			if err != nil {
				t.rowf("%s\t%s\t(untrainable: %v)", spec.Name, alg, err)
				continue
			}
			t.rowf("%s\t%s\t%.2f (%.2f)\t%.2f (%.2f)\t%.2f (%.2f)\t%.2f (%.2f)",
				spec.Name, alg,
				res.Accuracy.Mean, res.Accuracy.Std,
				res.Precision.Mean, res.Precision.Std,
				res.Recall.Mean, res.Recall.Std,
				res.F1.Mean, res.F1.Std)
		}
	}
	return header(fmt.Sprintf("Table III: validation against labeled ground truth (%d runs, 60/40 splits)", runs)) + t.String()
}

// Table4 regenerates the discriminative-feature ranking.
func Table4(s *Store) string {
	t := &tw{}
	t.row("rank", "JP-ditl feature", "importance", "M-ditl feature", "importance")
	jpN, jpV, err1 := s.Get(backscatter.JPDitl()).FeatureImportance(6)
	mN, mV, err2 := s.Get(backscatter.MDitl()).FeatureImportance(6)
	if err1 != nil || err2 != nil {
		return header("Table IV") + fmt.Sprintf("untrainable: %v %v\n", err1, err2)
	}
	for i := 0; i < 6; i++ {
		t.rowf("%d\t%s\t%.3f\t%s\t%.3f", i+1, jpN[i], jpV[i], mN[i], mV[i])
	}
	return header("Table IV: top discriminative features (classifier: RF, Gini importance)") + t.String()
}

// classifyWhole trains the preferred classifier and labels the whole span.
func classifyWhole(d *backscatter.Dataset) (map[backscatter.Addr]backscatter.Class, error) {
	m, err := d.TrainClassifier(1)
	if err != nil {
		return nil, err
	}
	return m.ClassifyAll(d.Whole()), nil
}

// cumulativeClasses unions weekly classifications by per-originator
// majority vote — the paper's M-sampled counting.
func cumulativeClasses(d *backscatter.Dataset) map[backscatter.Addr]backscatter.Class {
	weekly := d.ClassifyIntervals()
	votes := make(map[backscatter.Addr][activity.NumClasses]int)
	for _, wk := range weekly {
		for a, c := range wk {
			v := votes[a]
			v[c]++
			votes[a] = v
		}
	}
	out := make(map[backscatter.Addr]backscatter.Class, len(votes))
	for a, v := range votes {
		best, bestN := 0, -1
		for cls, n := range v {
			if n > bestN {
				best, bestN = cls, n
			}
		}
		out[a] = activity.Class(best)
	}
	return out
}

// Table5 regenerates per-class originator counts for all datasets.
func Table5(s *Store) string {
	t := &tw{}
	head := []string{"data"}
	for _, c := range classOrder() {
		head = append(head, c.String())
	}
	head = append(head, "total")
	t.row(head...)
	for _, spec := range []backscatter.DatasetSpec{
		backscatter.JPDitl(), backscatter.BPostDitl(), backscatter.MDitl(), backscatter.MSampled(),
	} {
		d := s.Get(spec)
		var classes map[backscatter.Addr]backscatter.Class
		if spec.Name == "M-sampled" {
			classes = cumulativeClasses(d)
		} else {
			var err error
			classes, err = classifyWhole(d)
			if err != nil {
				t.row(spec.Name, "(untrainable)")
				continue
			}
		}
		counts := backscatter.ClassCounts(classes)
		row := []string{spec.Name}
		total := 0
		for _, c := range classOrder() {
			row = append(row, fmt.Sprintf("%d", counts[c]))
			total += counts[c]
		}
		row = append(row, fmt.Sprintf("%d", total))
		t.row(row...)
	}
	return header("Table V: number of originators in each class (classifier: RF)") + t.String()
}

// Table6 regenerates the labeled ground-truth sizes.
func Table6(s *Store) string {
	t := &tw{}
	head := []string{"dataset"}
	for _, c := range classOrder() {
		head = append(head, c.String())
	}
	head = append(head, "total")
	t.row(head...)
	for _, spec := range []backscatter.DatasetSpec{
		backscatter.JPDitl(), backscatter.BPostDitl(), backscatter.MDitl(), backscatter.MSampled(),
	} {
		d := s.Get(spec)
		counts := d.Labels.Counts()
		row := []string{spec.Name}
		for _, c := range classOrder() {
			row = append(row, fmt.Sprintf("%d", counts[c]))
		}
		row = append(row, fmt.Sprintf("%d", d.Labels.Total()))
		t.row(row...)
	}
	return header("Table VI: labeled ground-truth examples per class") + t.String()
}

// topOriginators renders Table VII/VIII-style rows for a dataset.
func topOriginators(d *backscatter.Dataset, n int) string {
	classes, err := classifyWhole(d)
	if err != nil {
		return fmt.Sprintf("untrainable: %v\n", err)
	}
	t := &tw{}
	t.row("rank", "originator", "queriers", "TTL", "DarkIP", "BLS", "BLO", "class", "truth")
	vs := d.Whole().Vectors
	if n > len(vs) {
		n = len(vs)
	}
	for i := 0; i < n; i++ {
		v := vs[i]
		ev := d.OriginatorEvidence(v.Originator)
		cls := classes[v.Originator]
		truth := "-"
		if tr, ok := d.World.Truth(v.Originator); ok {
			truth = tr.Class.String()
			if tr.Port != "" {
				truth += "/" + tr.Port
			}
		}
		t.rowf("%d\t%s\t%d\t%s\t%d\t%d\t%d\t%s\t%s",
			i+1, v.Originator, v.Queriers, ttlFlavor(d.World.ProfileOf(v.Originator)),
			ev.DarknetHits, ev.SpamLists, ev.OtherLists, cls, truth)
	}
	return t.String()
}

// ttlFlavor renders the TTL column of Tables VII/VIII: a duration, a
// dagger-style negative-cache marker, or F for unreachable.
func ttlFlavor(p dnssim.OriginatorProfile) string {
	switch {
	case p.FinalUnreachable:
		return "F"
	case !p.HasName:
		return "neg:" + fmtTTL(p.NegTTL)
	default:
		return fmtTTL(p.TTL)
	}
}

func fmtTTL(d simtime.Duration) string {
	switch {
	case d >= simtime.Day:
		return fmt.Sprintf("%dd", d/simtime.Day)
	case d >= simtime.Hour:
		return fmt.Sprintf("%dh", d/simtime.Hour)
	default:
		return fmt.Sprintf("%dm", d/simtime.Minute)
	}
}

// Table7 regenerates the top JP-ditl originators.
func Table7(s *Store) string {
	return header("Table VII: most prolific originators (Dataset: JP-ditl)") +
		topOriginators(s.Get(backscatter.JPDitl()), 30)
}

// Table8 regenerates the top M-ditl originators.
func Table8(s *Store) string {
	return header("Table VIII: most prolific originators (Dataset: M-ditl)") +
		topOriginators(s.Get(backscatter.MDitl()), 30)
}

// Teams regenerates the §VI-B coordinated-scanner analysis.
func Teams(s *Store) string {
	d := s.Get(backscatter.MSampled())
	classes := cumulativeClasses(d)
	st := backscatter.ScannerTeams(classes, 4)
	t := &tw{}
	t.rowf("unique scan originators\t%d", st.UniqueScanners)
	t.rowf("distinct /24 blocks with scanners\t%d", st.Blocks)
	t.rowf("blocks with ≥4 originators\t%d", st.BlocksWithNPlus)
	t.rowf("  all same class (likely teams)\t%d", st.SameClassBlocks)
	t.rowf("  mixed classes\t%d", st.MixedClassBlocks)

	// Compare against planted ground-truth teams.
	planted := make(map[int]int)
	for _, tr := range d.World.TruthMap() {
		if tr.Team != 0 {
			planted[tr.Team]++
		}
	}
	big := 0
	for _, n := range planted {
		if n >= 4 {
			big++
		}
	}
	t.rowf("planted teams with ≥4 members (truth)\t%d", big)
	return header("Scanner teams by /24 block (§VI-B, Dataset: M-sampled)") + t.String()
}

// caseStudy identifies a named exemplar originator.
type caseStudy struct {
	name string
	addr backscatter.Addr
}

// caseStudies picks the six case-study originators of §IV-A from a
// dataset: two scanners (preferring icmp and ssh, falling back to the two
// largest scanners of any port), an ad-tracker, a cdn, a mail server, and
// a spammer — each the largest of its kind.
func caseStudies(d *backscatter.Dataset) []caseStudy {
	var out []caseStudy
	taken := map[backscatter.Addr]bool{}
	add := func(name string, cls backscatter.Class, port string) bool {
		for _, v := range d.Whole().Vectors {
			tr, ok := d.World.Truth(v.Originator)
			if !ok || tr.Class != cls || taken[v.Originator] {
				continue
			}
			if port != "" && tr.Port != port {
				continue
			}
			if name == "" {
				name = "scan-" + tr.Port
			}
			taken[v.Originator] = true
			out = append(out, caseStudy{name: name, addr: v.Originator})
			return true
		}
		return false
	}
	if !add("scan-icmp", backscatter.Scan, "icmp") {
		add("", backscatter.Scan, "")
	}
	if !add("scan-ssh", backscatter.Scan, "tcp22") {
		add("", backscatter.Scan, "")
	}
	add("ad-track", backscatter.AdTracker, "")
	add("cdn", backscatter.CDN, "")
	add("mail", backscatter.Mail, "")
	add("spam", backscatter.Spam, "")
	return out
}
