package report

import (
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 25 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Name == "" || e.Desc == "" || e.Run == nil {
			t.Errorf("malformed experiment %+v", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		got, ok := Find(e.Name)
		if !ok || got.Name != e.Name {
			t.Errorf("Find(%q) failed", e.Name)
		}
	}
	if _, ok := Find("nonsense"); ok {
		t.Error("Find accepted nonsense")
	}
}

func TestTableWriter(t *testing.T) {
	w := &tw{}
	w.row("a", "bb", "c")
	w.rowf("%d\t%s\t%d", 1, "x", 2)
	out := w.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Columns align on the widest cell plus two spaces of gutter.
	if !strings.HasPrefix(lines[0], "a  bb  c") || !strings.HasPrefix(lines[1], "1  x   2") {
		t.Errorf("alignment wrong:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if sparkline(nil) != "" {
		t.Error("empty sparkline")
	}
	if got := sparkline([]int{0, 0}); got != "__" {
		t.Errorf("zero sparkline = %q", got)
	}
	got := sparkline([]int{0, 5, 10})
	if len(got) != 3 || got[0] != '_' || got[2] != '@' {
		t.Errorf("sparkline = %q", got)
	}
}

func TestHeader(t *testing.T) {
	h := header("Title")
	if !strings.HasPrefix(h, "Title\n=====") {
		t.Errorf("header = %q", h)
	}
}

// quick experiments touch only the two-day datasets and finish in seconds.
var quickExperiments = []string{
	"figure3", "table2", "figure16", "table7", "table8", "table4",
	"figure10", "ablation-features", "ablation-classes",
}

func TestQuickExperiments(t *testing.T) {
	s := NewStore(0.3)
	for _, name := range quickExperiments {
		e, ok := Find(name)
		if !ok {
			t.Fatalf("missing experiment %q", name)
		}
		out := e.Run(s)
		if len(out) < 40 {
			t.Errorf("%s: suspiciously short output:\n%s", name, out)
		}
		if !strings.Contains(out, "\n") {
			t.Errorf("%s: no rows", name)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	s := NewStore(0.3)
	out := Figure4(s)
	if !strings.Contains(out, "power-law fit") {
		t.Fatalf("no fit line:\n%s", out)
	}
	if !strings.Contains(out, "detection threshold") {
		t.Error("missing threshold note")
	}
}

// TestAllExperiments is the full sweep at a small scale: every experiment
// must produce output without panicking, even on thin data. Skipped with
// -short; takes a few minutes.
func TestAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	s := NewStore(0.2)
	for _, e := range All() {
		out := e.Run(s)
		if len(out) == 0 {
			t.Errorf("%s: empty output", e.Name)
		}
		t.Logf("%s: %d bytes", e.Name, len(out))
	}
}
