package report

import (
	backscatter "dnsbackscatter"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/classify"
	"dnsbackscatter/internal/features"
	"dnsbackscatter/internal/ml"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

// ablationRuns is the CV repetition count for ablation studies.
func ablationRuns(s *Store) int {
	if s.Heavy {
		return 20
	}
	return 8
}

// cvAccuracy cross-validates a forest on a design matrix.
func cvAccuracy(ds *ml.Dataset, runs int, trees int, seed uint64) ml.ValidationResult {
	tr := ml.Forest{Config: ml.ForestConfig{Trees: trees}}
	return ml.CrossValidate(tr, ds, 0.6, runs, rng.New(seed))
}

// AblationDedup varies the 30 s deduplication window (§III-C) and measures
// its effect on the rate features and accuracy.
func AblationDedup(s *Store) string {
	d := s.Get(backscatter.JPDitl())
	runs := ablationRuns(s)
	out := header("Ablation: per-(originator, querier) dedup window (Dataset: JP-ditl)")
	t := &tw{}
	t.row("window", "analyzable", "mean queries/querier", "accuracy", "F1")
	for _, win := range []simtime.Duration{0, 30 * simtime.Second, 300 * simtime.Second} {
		x := features.NewExtractor(d.World.Geo, d.World.QuerierName)
		x.MinQueriers = d.Extractor.MinQueriers
		x.DedupWindow = win
		snap := classify.Snap(d.Records, x, d.Spec.Start, d.Spec.Duration)
		qpq := 0.0
		for _, v := range snap.Vectors {
			qpq += v.Dynamic(features.DynQueriesPerQuerier)
		}
		if len(snap.Vectors) > 0 {
			qpq /= float64(len(snap.Vectors))
		}
		p := classify.NewPipeline()
		ds, _, err := p.TrainingSet(snap, d.Labels)
		if err != nil {
			t.rowf("%ds\t%d\t%.2f\t(untrainable)", win, len(snap.Vectors), qpq)
			continue
		}
		res := cvAccuracy(ds, runs, 60, 11)
		t.rowf("%ds\t%d\t%.2f\t%.2f (%.2f)\t%.2f (%.2f)",
			win, len(snap.Vectors), qpq, res.Accuracy.Mean, res.Accuracy.Std, res.F1.Mean, res.F1.Std)
	}
	return out + t.String()
}

// AblationThreshold varies the ≥20-querier analyzability threshold (§III-B).
func AblationThreshold(s *Store) string {
	d := s.Get(backscatter.JPDitl())
	runs := ablationRuns(s)
	out := header("Ablation: analyzability threshold (min queriers per originator; Dataset: JP-ditl)")
	t := &tw{}
	t.row("min queriers", "analyzable", "accuracy", "F1")
	for _, min := range []int{5, 10, 20, 50} {
		x := features.NewExtractor(d.World.Geo, d.World.QuerierName)
		x.MinQueriers = min
		snap := classify.Snap(d.Records, x, d.Spec.Start, d.Spec.Duration)
		p := classify.NewPipeline()
		ds, _, err := p.TrainingSet(snap, d.Labels)
		if err != nil {
			t.rowf("%d\t%d\t(untrainable)", min, len(snap.Vectors))
			continue
		}
		res := cvAccuracy(ds, runs, 60, 13)
		t.rowf("%d\t%d\t%.2f (%.2f)\t%.2f (%.2f)",
			min, len(snap.Vectors), res.Accuracy.Mean, res.Accuracy.Std, res.F1.Mean, res.F1.Std)
	}
	out += t.String()
	out += "expected shape: lower thresholds admit more, noisier originators (§V-E)\n"
	return out
}

// maskDataset zeroes a column range, removing those features from play
// without changing the matrix shape.
func maskDataset(ds *ml.Dataset, lo, hi int) *ml.Dataset {
	x := make([][]float64, ds.Len())
	for i, row := range ds.X {
		r := append([]float64(nil), row...)
		for j := lo; j < hi && j < len(r); j++ {
			r[j] = 0
		}
		x[i] = r
	}
	out, err := ml.NewDataset(x, ds.Y, ds.NumClasses)
	if err != nil {
		panic(err) // masking preserves validity by construction
	}
	return out
}

// AblationFeatures compares static-only, dynamic-only, and combined
// feature sets.
func AblationFeatures(s *Store) string {
	d := s.Get(backscatter.JPDitl())
	runs := ablationRuns(s)
	p := classify.NewPipeline()
	ds, _, err := p.TrainingSet(d.Whole(), d.Labels)
	if err != nil {
		return header("Ablation: feature sets") + "untrainable\n"
	}
	out := header("Ablation: static vs dynamic features (Dataset: JP-ditl)")
	t := &tw{}
	t.row("feature set", "columns", "accuracy", "F1")
	cases := []struct {
		name  string
		ds    *ml.Dataset
		ncols int
	}{
		{"combined", ds, features.NumFeatures},
		{"static only", maskDataset(ds, features.NumStatic, features.NumFeatures), features.NumStatic},
		{"dynamic only", maskDataset(ds, 0, features.NumStatic), features.NumDynamic},
	}
	for _, c := range cases {
		res := cvAccuracy(c.ds, runs, 60, 17)
		t.rowf("%s\t%d\t%.2f (%.2f)\t%.2f (%.2f)",
			c.name, c.ncols, res.Accuracy.Mean, res.Accuracy.Std, res.F1.Mean, res.F1.Std)
	}
	out += t.String()
	out += "expected shape: combined wins; statics carry most signal (Table IV ranks mail/home/nxdomain first)\n"
	return out
}

// AblationForest varies Random Forest size.
func AblationForest(s *Store) string {
	d := s.Get(backscatter.JPDitl())
	runs := ablationRuns(s)
	p := classify.NewPipeline()
	ds, _, err := p.TrainingSet(d.Whole(), d.Labels)
	if err != nil {
		return header("Ablation: forest size") + "untrainable\n"
	}
	out := header("Ablation: Random Forest size (Dataset: JP-ditl)")
	t := &tw{}
	t.row("trees", "accuracy", "F1")
	for _, trees := range []int{5, 20, 60, 150} {
		res := cvAccuracy(ds, runs, trees, 19)
		t.rowf("%d\t%.2f (%.2f)\t%.2f (%.2f)",
			trees, res.Accuracy.Mean, res.Accuracy.Std, res.F1.Mean, res.F1.Std)
	}
	out += t.String()
	out += "expected shape: accuracy saturates by ~60 trees\n"
	return out
}

// classGroup maps the 12 classes onto 5 coarse groups for the
// class-merging ablation the paper alludes to ("we see higher accuracy
// with fewer application classes"). Groups follow the 12-way classifier's
// own confusion structure (§IV-C): mail/spam and scan/p2p are the natural
// confusions, so merging them is where the accuracy gain lives.
func classGroup(c activity.Class) int {
	switch c {
	case activity.Mail, activity.Spam:
		return 0 // mail-like senders
	case activity.Scan, activity.P2P:
		return 1 // probing traffic
	case activity.CDN, activity.Cloud, activity.Update:
		return 2 // content/update delivery
	case activity.AdTracker, activity.Push, activity.Crawler:
		return 3 // web-triggered services
	default: // DNSServer, NTP
		return 4 // core infrastructure
	}
}

// AblationClasses compares 12-class against merged 6-class accuracy.
func AblationClasses(s *Store) string {
	d := s.Get(backscatter.JPDitl())
	runs := ablationRuns(s)
	p := classify.NewPipeline()
	ds12, _, err := p.TrainingSet(d.Whole(), d.Labels)
	if err != nil {
		return header("Ablation: class merging") + "untrainable\n"
	}
	y6 := make([]int, ds12.Len())
	for i, y := range ds12.Y {
		y6[i] = classGroup(activity.Class(y))
	}
	ds6, err := ml.NewDataset(ds12.X, y6, 5)
	if err != nil {
		return header("Ablation: class merging") + err.Error() + "\n"
	}
	out := header("Ablation: 12 classes vs 5 merged groups (Dataset: JP-ditl)")
	t := &tw{}
	t.row("classes", "accuracy", "F1")
	for _, c := range []struct {
		name string
		ds   *ml.Dataset
	}{{"12 (paper's)", ds12}, {"5 (merged)", ds6}} {
		res := cvAccuracy(c.ds, runs, 60, 23)
		t.rowf("%s\t%.2f (%.2f)\t%.2f (%.2f)",
			c.name, res.Accuracy.Mean, res.Accuracy.Std, res.F1.Mean, res.F1.Std)
	}
	out += t.String()
	out += "expected shape: fewer classes ⇒ higher accuracy, at the cost of less useful labels (§IV-C)\n"
	return out
}
