package report

import (
	"fmt"

	backscatter "dnsbackscatter"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/classify"
	"dnsbackscatter/internal/ml"
	"dnsbackscatter/internal/rng"
)

// Confusion regenerates the §IV-C error analysis the paper narrates:
// which classes mislabel, and why — sparse classes (ntp, update,
// ad-tracker, cdn) lack training data, and misbehaving p2p looks like
// scanning. It accumulates a confusion matrix over repeated 60/40 splits
// of the JP-ditl ground truth.
func Confusion(s *Store) string {
	d := s.Get(backscatter.JPDitl())
	p := classify.NewPipeline()
	ds, _, err := p.TrainingSet(d.Whole(), d.Labels)
	if err != nil {
		return header("Per-class confusion (§IV-C)") + "untrainable\n"
	}

	runs := ablationRuns(s)
	st := rng.New(37)
	conf := ml.NewConfusion(ds.NumClasses)
	tr := ml.Forest{Config: ml.ForestConfig{Trees: 60}}
	for r := 0; r < runs; r++ {
		trainIdx, testIdx := ml.StratifiedSplit(ds, 0.6, st)
		clf := tr.Train(ds.Subset(trainIdx), st)
		for _, i := range testIdx {
			conf.Add(ds.Y[i], clf.Predict(ds.X[i]))
		}
	}

	out := header(fmt.Sprintf("Per-class accuracy and confusion (§IV-C; Dataset: JP-ditl, RF, %d splits)", runs))
	t := &tw{}
	t.row("class", "support", "precision", "recall", "F1")
	for _, m := range conf.PerClass() {
		t.rowf("%s\t%d\t%.2f\t%.2f\t%.2f",
			activity.Class(m.Class), m.Support, m.Precision, m.Recall, m.F1)
	}
	out += t.String()

	// The dominant confusions, descending.
	type pair struct {
		truth, pred int
		n           int
	}
	var offDiag []pair
	for i, row := range conf.Counts {
		for j, n := range row {
			if i != j && n > 0 {
				offDiag = append(offDiag, pair{i, j, n})
			}
		}
	}
	for a := 0; a < len(offDiag); a++ {
		for b := a + 1; b < len(offDiag); b++ {
			if offDiag[b].n > offDiag[a].n {
				offDiag[a], offDiag[b] = offDiag[b], offDiag[a]
			}
		}
	}
	out += "\ntop confusions (truth → predicted):\n"
	for i, c := range offDiag {
		if i == 6 {
			break
		}
		out += fmt.Sprintf("  %-11s → %-11s %d\n",
			activity.Class(c.truth), activity.Class(c.pred), c.n)
	}
	out += "expected shape: sparse classes (ntp, update, crawler) score lowest;\nspam↔mail and p2p↔scan are the natural confusions (§IV-C)\n"
	return out
}
