// Package report regenerates every table and figure of the paper's
// evaluation from simulated datasets. Each experiment function returns the
// paper-style rows/series as formatted text; cmd/bsrepro prints them and
// the repository's benchmark harness drives them as named benchmarks.
//
// A Store caches built datasets so one bsrepro or benchmark run builds
// each dataset once. Store.Scale shrinks populations for quick runs.
package report

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	backscatter "dnsbackscatter"

	"dnsbackscatter/internal/activity"
)

// Store lazily builds and caches datasets.
type Store struct {
	// Scale multiplies dataset populations (1 = the specs' defaults).
	Scale float64
	// Heavy enables the most expensive trial points (the 10% and 100%
	// controlled scans of Figure 4).
	Heavy bool
	// Obs, when non-nil, attaches this registry to every dataset the
	// store builds (BuildObserved), so one bsrepro run accumulates
	// world, cache, and pipeline-stage metrics across experiments. Set
	// it before the first Get.
	Obs *backscatter.Registry
	// Workers is threaded into every built spec (DatasetSpec.Workers):
	// <= 0 uses GOMAXPROCS(0), 1 runs sequentially. Results are
	// byte-identical either way. Set it before the first Get.
	Workers int
	// Faults is a "profile@seed" fault-injection spec threaded into every
	// built spec (DatasetSpec.Faults); "" disables injection. Set it
	// before the first Get.
	Faults string
	// Trace is the tracing sample divisor threaded into every built spec
	// (DatasetSpec.Trace): 0 disables tracing, 1 traces every lookup,
	// N keeps the deterministic 1/N. Set it before the first Get.
	Trace int
	// Acct, when non-nil, attaches this resource accountant to every
	// dataset the store builds (BuildInstrumented), so one bsrepro run
	// accumulates per-stage resource accounting across experiments on
	// the ops channel. Set it before the first Get.
	Acct *backscatter.Accountant

	mu sync.Mutex
	ds map[string]*backscatter.Dataset // guarded by mu
}

// NewStore returns a store at the given scale.
func NewStore(scale float64) *Store {
	if scale <= 0 {
		scale = 1
	}
	return &Store{Scale: scale, ds: make(map[string]*backscatter.Dataset)}
}

// Get builds (once) and returns the dataset for a spec.
func (s *Store) Get(spec backscatter.DatasetSpec) *backscatter.Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.ds[spec.Name]; ok {
		return d
	}
	d := backscatter.BuildInstrumented(
		spec.Scaled(s.Scale).WithParallelism(s.Workers).WithFaults(s.Faults).WithTracing(s.Trace),
		s.Obs, nil, s.Acct)
	s.ds[spec.Name] = d
	return d
}

// Datasets returns every dataset the store has built so far, sorted by
// name, so trace and time-series dumps iterate deterministically.
func (s *Store) Datasets() []*backscatter.Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.ds))
	for n := range s.ds {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*backscatter.Dataset, 0, len(names))
	for _, n := range names {
		out = append(out, s.ds[n])
	}
	return out
}

// Experiment pairs a name with its generator, for bsrepro's registry.
type Experiment struct {
	Name string
	Desc string
	Run  func(*Store) string
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Dataset catalog (Table I)", Table1},
		{"figure3", "Static features, case studies (Figure 3)", Figure3},
		{"table2", "Dynamic features, case studies (Table II)", Table2},
		{"table3", "Classification validation (Table III)", Table3},
		{"table4", "Top discriminative features (Table IV)", Table4},
		{"figure4", "Controlled-scan attenuation (Figure 4)", Figure4},
		{"figure5", "Benign label stability (Figure 5)", Figure5},
		{"figure6", "Malicious label churn (Figure 6)", Figure6},
		{"figure7", "Training strategies over time (Figure 7)", Figure7},
		{"figure8", "Classification consistency CDF (Figure 8)", Figure8},
		{"figure9", "Footprint-size distribution (Figure 9)", Figure9},
		{"figure10", "Top-N class fractions (Figure 10)", Figure10},
		{"table5", "Originators per class (Table V)", Table5},
		{"table6", "Labeled ground truth (Table VI)", Table6},
		{"figure11", "Originators over time, Heartbleed (Figure 11)", Figure11},
		{"figure12", "Scanner footprint over time (Figure 12)", Figure12},
		{"figure13", "Example scanners (Figure 13)", Figure13},
		{"figure14", "Scanning /24 blocks (Figure 14)", Figure14},
		{"figure15", "Week-by-week scanner churn (Figure 15)", Figure15},
		{"table7", "Top originators at JP (Table VII)", Table7},
		{"table8", "Top originators at M-Root (Table VIII)", Table8},
		{"confusion", "Per-class accuracy and confusion (§IV-C)", Confusion},
		{"figure16", "Diurnal activity, case studies (Figure 16)", Figure16},
		{"teams", "Scanner teams by /24 (§VI-B)", Teams},
		{"ablation-dedup", "Ablation: dedup window", AblationDedup},
		{"ablation-threshold", "Ablation: querier threshold", AblationThreshold},
		{"ablation-features", "Ablation: feature sets", AblationFeatures},
		{"ablation-forest", "Ablation: forest size", AblationForest},
		{"ablation-classes", "Ablation: class merging", AblationClasses},
		{"extension-qmin", "Extension: QNAME minimization vs the sensor (§VII)", ExtensionQMin},
		{"extension-fusion", "Extension: darknet/blacklist evidence fusion (§III-F)", ExtensionFusion},
	}
}

// Find returns the experiment with the given name.
func Find(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// tw is a minimal column formatter for paper-style tables.
type tw struct {
	b    strings.Builder
	rows [][]string
}

func (t *tw) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *tw) rowf(format string, args ...any) {
	t.rows = append(t.rows, strings.Split(fmt.Sprintf(format, args...), "\t"))
}

func (t *tw) String() string {
	widths := map[int]int{}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				t.b.WriteString("  ")
			}
			t.b.WriteString(c)
			if i < len(r)-1 {
				t.b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		t.b.WriteByte('\n')
	}
	return t.b.String()
}

// header formats an experiment banner.
func header(title string) string {
	return title + "\n" + strings.Repeat("=", len(title)) + "\n"
}

// classOrder returns all classes in the paper's column order.
func classOrder() []backscatter.Class {
	out := make([]backscatter.Class, activity.NumClasses)
	for i := range out {
		out[i] = activity.Class(i)
	}
	return out
}

// sparkline renders counts as a compact trend strip.
func sparkline(xs []int) string {
	if len(xs) == 0 {
		return ""
	}
	max := 0
	for _, v := range xs {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat("_", len(xs))
	}
	levels := []byte("_.:-=+*#%@")
	var b strings.Builder
	for _, v := range xs {
		i := v * (len(levels) - 1) / max
		b.WriteByte(levels[i])
	}
	return b.String()
}
