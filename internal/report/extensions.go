package report

import (
	"fmt"
	"math"

	backscatter "dnsbackscatter"

	"dnsbackscatter/internal/classify"
	"dnsbackscatter/internal/ml"
)

// ExtensionQMin measures how QNAME minimization (RFC 7816) erodes the
// sensor, an effect the paper's §VII anticipates: minimized lookups never
// reveal the originator to root or national authorities, so as deployment
// grows, both the visible signal and classification accuracy at upper
// sensors decay. Only the final authority keeps full visibility.
func ExtensionQMin(s *Store) string {
	runs := ablationRuns(s)
	out := header("Extension: QNAME minimization vs sensor signal (Dataset: M-ditl variant)")
	t := &tw{}
	t.row("qmin deployment", "reverse queries", "analyzable originators", "accuracy", "F1")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75} {
		spec := backscatter.MDitl().Scaled(s.Scale)
		spec.Name = fmt.Sprintf("M-ditl-qmin-%.0f", frac*100)
		spec.QMinFraction = frac
		d := backscatter.Build(spec)
		snap := d.Whole()
		p := classify.NewPipeline()
		ds, _, err := p.TrainingSet(snap, d.Labels)
		if err != nil {
			t.rowf("%.0f%%\t%d\t%d\t(untrainable)", frac*100, d.ReverseQueries(), len(snap.Vectors))
			continue
		}
		res := cvAccuracy(ds, runs, 60, 29)
		t.rowf("%.0f%%\t%d\t%d\t%.2f (%.2f)\t%.2f (%.2f)",
			frac*100, d.ReverseQueries(), len(snap.Vectors),
			res.Accuracy.Mean, res.Accuracy.Std, res.F1.Mean, res.F1.Std)
	}
	out += t.String()
	out += "expected shape: signal and analyzable population shrink as deployment grows;\nthe root sensor goes dark long before full deployment\n"
	return out
}

// ExtensionFusion tests the paper's §III-F suggestion that backscatter
// "will benefit from combining it with other sources of information (such
// as small darknets)": external evidence — darknet hit counts and
// blacklist listings — joins the feature vector as three extra columns.
func ExtensionFusion(s *Store) string {
	d := s.Get(backscatter.JPDitl())
	runs := ablationRuns(s)
	p := classify.NewPipeline()
	base, addrs, err := p.TrainingSet(d.Whole(), d.Labels)
	if err != nil {
		return header("Extension: external-evidence fusion") + "untrainable\n"
	}

	// Fused matrix: backscatter features + log-scaled darknet hits +
	// blacklist counts.
	fx := make([][]float64, base.Len())
	for i, row := range base.X {
		ev := d.OriginatorEvidence(addrs[i])
		r := make([]float64, len(row), len(row)+3)
		copy(r, row)
		r = append(r,
			math.Log1p(float64(ev.DarknetHits))/10,
			float64(ev.SpamLists)/9,
			float64(ev.OtherLists)/9,
		)
		fx[i] = r
	}
	fused, err := ml.NewDataset(fx, base.Y, base.NumClasses)
	if err != nil {
		return header("Extension: external-evidence fusion") + err.Error() + "\n"
	}

	out := header("Extension: fusing darknet + blacklist evidence into the classifier (Dataset: JP-ditl)")
	t := &tw{}
	t.row("features", "columns", "accuracy", "F1")
	for _, c := range []struct {
		name string
		ds   *ml.Dataset
	}{
		{"backscatter only (paper)", base},
		{"backscatter + external evidence", fused},
	} {
		res := cvAccuracy(c.ds, runs, 60, 31)
		t.rowf("%s\t%d\t%.2f (%.2f)\t%.2f (%.2f)",
			c.name, c.ds.NumFeatures(), res.Accuracy.Mean, res.Accuracy.Std, res.F1.Mean, res.F1.Std)
	}
	out += t.String()
	out += "expected shape: external evidence helps, chiefly by separating scan from spam\n"
	return out
}
