package intern_test

import (
	"fmt"
	"strconv"
	"testing"

	"dnsbackscatter/internal/intern"
)

func TestInternIdentity(t *testing.T) {
	tab := intern.New(42)
	a := tab.Intern("mail.example.jp")
	b := tab.Intern("mail" + ".example.jp") // distinct backing, equal value
	if a != b {
		t.Fatalf("interned values differ: %q vs %q", a, b)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
}

func TestInternBytesMatchesIntern(t *testing.T) {
	tab := intern.New(7)
	s := tab.Intern("b-root")
	if got := tab.InternBytes([]byte("b-root")); got != s {
		t.Fatalf("InternBytes returned %q, want canonical %q", got, s)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d after byte re-intern, want 1", tab.Len())
	}
	if got := tab.InternBytes([]byte("m-root")); got != "m-root" {
		t.Fatalf("InternBytes new value = %q", got)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
}

func TestNilTablePassesThrough(t *testing.T) {
	var tab *intern.Table
	if got := tab.Intern("x"); got != "x" {
		t.Fatalf("nil Intern = %q", got)
	}
	if got := tab.InternBytes([]byte("y")); got != "y" {
		t.Fatalf("nil InternBytes = %q", got)
	}
	if tab.Len() != 0 {
		t.Fatalf("nil Len = %d", tab.Len())
	}
}

func TestGrowthKeepsCanonicals(t *testing.T) {
	tab := intern.New(1)
	first := tab.Intern("host-0")
	// Force several growths past the 64-slot initial size.
	for i := 0; i < 500; i++ {
		tab.Intern("host-" + strconv.Itoa(i))
	}
	if got := tab.Intern("host-" + strconv.Itoa(0)); got != first {
		t.Fatal("growth lost the canonical copy")
	}
	if tab.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tab.Len())
	}
}

func TestSeedsAgreeOnValues(t *testing.T) {
	a, b := intern.New(1), intern.New(2)
	for i := 0; i < 100; i++ {
		s := "q" + strconv.Itoa(i%10)
		if a.Intern(s) != b.Intern(s) {
			t.Fatalf("tables with different seeds disagree on %q", s)
		}
	}
}

func BenchmarkInternHit(b *testing.B) {
	tab := intern.New(9)
	tab.Intern("ns1.resolver7.jp")
	key := []byte("ns1.resolver7.jp")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.InternBytes(key)
	}
}

// ExampleTable shows the value-transparency contract: interning never
// changes a string's contents, it only canonicalizes the backing.
func ExampleTable() {
	tab := intern.New(1)
	a := tab.Intern("b-root")
	b := tab.Intern(string([]byte{'b', '-', 'r', 'o', 'o', 't'}))
	fmt.Println(a == b, tab.Len())
	// Output: true 1
}

// ExampleTable_InternBytes interns a parsed field without allocating on
// repeat sightings — the hot path of the log reader.
func ExampleTable_InternBytes() {
	tab := intern.New(1)
	line := []byte("jp")
	fmt.Println(tab.InternBytes(line), tab.Len())
	fmt.Println(tab.InternBytes(line), tab.Len())
	// Output:
	// jp 1
	// jp 1
}
