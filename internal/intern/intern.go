// Package intern deduplicates hot-path strings behind a seeded,
// deterministic intern table. Reverse-name generation, log parsing, and
// the dedup→filter→extract pipeline see the same small vocabulary of
// domains, authorities, and country codes over and over; interning makes
// every repeat a map hit that returns one shared backing string instead
// of a fresh allocation.
//
// Interning is value-transparent: Intern(s) always returns a string equal
// to s, so pipeline output bytes are identical with or without a table.
// The table is deterministic — its behavior is a pure function of the
// seed and the sequence of interned values — which keeps instrumented
// runs reproducible. A nil *Table is valid everywhere and passes strings
// through untouched, so callers never branch.
package intern

// Table is an open-addressed string intern table. The zero value is not
// ready to use; call New. A Table is not safe for concurrent use — give
// each goroutine its own, or intern before fanning out (the simulator and
// log reader are single-threaded, which is where the repo wires tables
// in).
type Table struct {
	seed uint64
	keys []string // power-of-two sized; "" marks an empty slot
	n    int
}

// New returns an empty table. The seed perturbs the internal hash so two
// tables (or two runs with different seeds) probe in different orders —
// interned values are unaffected, only slot layout is.
func New(seed uint64) *Table {
	return &Table{seed: seed, keys: make([]string, 64)}
}

// Len returns the number of distinct strings interned.
func (t *Table) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// hash is FNV-1a over the bytes of s, offset by the table seed. The
// string and byte-slice paths must agree byte for byte.
func (t *Table) hash(s string) uint64 {
	h := t.seed ^ 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Intern returns the canonical copy of s, storing s itself on first
// sight. Hits allocate nothing. Nil tables return s unchanged.
func (t *Table) Intern(s string) string {
	if t == nil || s == "" {
		return s
	}
	mask := uint64(len(t.keys) - 1)
	for i := t.hash(s) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case s:
			return t.keys[i]
		case "":
			t.keys[i] = s
			t.n++
			t.maybeGrow()
			return s
		}
	}
}

// InternBytes returns the canonical string equal to b, copying b into a
// new string only on first sight. Hits allocate nothing: the probe
// compares b against stored keys directly.
func (t *Table) InternBytes(b []byte) string {
	if t == nil {
		return string(b)
	}
	if len(b) == 0 {
		return ""
	}
	mask := uint64(len(t.keys) - 1)
	for i := t.hashBytes(b) & mask; ; i = (i + 1) & mask {
		k := t.keys[i]
		if k == "" {
			s := string(b)
			t.keys[i] = s
			t.n++
			t.maybeGrow()
			return s
		}
		// string(b) in a comparison does not allocate (the compiler
		// elides the copy), so probe hits stay allocation-free.
		if k == string(b) {
			return k
		}
	}
}

// hashBytes mirrors hash over a byte slice, so Intern and InternBytes
// probe identically for equal contents.
func (t *Table) hashBytes(b []byte) uint64 {
	h := t.seed ^ 0xcbf29ce484222325
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 0x100000001b3
	}
	return h
}

// maybeGrow doubles the slot array past 75% load, rehashing every key.
func (t *Table) maybeGrow() {
	if t.n*4 < len(t.keys)*3 {
		return
	}
	old := t.keys
	t.keys = make([]string, len(old)*2)
	mask := uint64(len(t.keys) - 1)
	for _, k := range old {
		if k == "" {
			continue
		}
		for i := t.hash(k) & mask; ; i = (i + 1) & mask {
			if t.keys[i] == "" {
				t.keys[i] = k
				break
			}
		}
	}
}
