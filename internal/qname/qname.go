// Package qname models querier reverse-DNS names: the Internet naming
// conventions the paper's static features are built on (§III-C).
//
// It has two halves sharing one keyword vocabulary:
//
//   - Classify implements the paper's matcher: split a domain name into
//     components, scan components left to right, and within a component
//     take the first matching rule in the fixed rule order (so both
//     "mail.ns.example.com" and "mail-ns.example.com" classify as mail,
//     and "pop" resolves to home because home precedes mail).
//   - Generator produces synthetic querier names for each category,
//     substituting for the real reverse zones the paper observed.
package qname

import (
	"strconv"
	"strings"

	"dnsbackscatter/internal/intern"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/rng"
)

// Category is a static querier-name class from §III-C.
type Category int

// Categories in the paper's rule order. Matching takes the first rule that
// fires, so this order is semantically significant.
const (
	Home Category = iota
	Mail
	NS
	FW
	Antispam
	WWW
	NTP
	CDN
	AWS
	MS
	Google
	Other    // other-unclassified: a name not matching any rule
	Unreach  // querier's reverse zone authority cannot be reached
	NXDomain // no reverse name exists
	NumCategories
)

var categoryNames = [NumCategories]string{
	"home", "mail", "ns", "fw", "antispam", "www", "ntp",
	"cdn", "aws", "ms", "google", "other", "unreach", "nxdomain",
}

// String returns the short feature name for c.
func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return "invalid"
	}
	return categoryNames[c]
}

// ParseCategory maps a short feature name back to its Category.
func ParseCategory(s string) (Category, bool) {
	for i, n := range categoryNames {
		if n == s {
			return Category(i), true
		}
	}
	return 0, false
}

// keyword matches a token exactly, or by prefix when the paper's list has
// a trailing '*' (send*).
type keyword struct {
	text   string
	prefix bool
}

func kws(words ...string) []keyword {
	out := make([]keyword, len(words))
	for i, w := range words {
		if strings.HasSuffix(w, "*") {
			out[i] = keyword{text: w[:len(w)-1], prefix: true}
		} else {
			out[i] = keyword{text: w}
		}
	}
	return out
}

// tokenRules are the keyword lists from §III-C, in rule order.
var tokenRules = []struct {
	cat      Category
	keywords []keyword
}{
	{Home, kws("ap", "cable", "cpe", "customer", "dsl", "dynamic", "fiber",
		"flets", "home", "host", "ip", "net", "pool", "pop", "retail", "user")},
	{Mail, kws("mail", "mx", "smtp", "post", "correo", "poczta", "send*",
		"lists", "newsletter", "zimbra", "mta", "pop", "imap")},
	{NS, kws("cns", "dns", "ns", "cache", "resolv", "name")},
	{FW, kws("firewall", "wall", "fw")},
	{Antispam, kws("ironport", "spam")},
	{WWW, kws("www")},
	{NTP, kws("ntp")},
}

// suffixRules classify infrastructure by registered-domain suffix
// (CDN operators, AWS, Azure, Google), checked after token rules fail.
var suffixRules = []struct {
	cat      Category
	suffixes []string
}{
	{CDN, []string{".akamaitechnologies.com", ".akamai.net", ".edgecastcdn.net",
		".cdnetworks.com", ".llnwd.net"}},
	{AWS, []string{".amazonaws.com"}},
	{MS, []string{".cloudapp.azure.com", ".microsoft.com"}},
	{Google, []string{".google.com", ".1e100.net", ".googlebot.com"}},
}

// Classify maps a querier reverse name to its static category. Empty input
// is NXDomain (no reverse name). Names are lowercased before matching.
//
//bslint:hotpath
func Classify(name string) Category {
	if name == "" {
		return NXDomain
	}
	name = strings.ToLower(strings.TrimSuffix(name, "."))

	// Domain-suffix rules fire regardless of the leftmost label: a CDN
	// edge node is CDN even when its hostname is a serial number.
	for _, r := range suffixRules {
		for _, suf := range r.suffixes {
			if strings.HasSuffix(name, suf) {
				return r.cat
			}
		}
	}

	// Token rules: leftmost component wins; within a component, the first
	// rule in order wins.
	for len(name) > 0 {
		comp := name
		if i := strings.IndexByte(name, '.'); i >= 0 {
			comp, name = name[:i], name[i+1:]
		} else {
			name = ""
		}
		if cat, ok := classifyComponent(comp); ok {
			return cat
		}
	}
	return Other
}

// classifyComponent checks one dot-separated component against the token
// rules. Tokens are maximal alphabetic runs, so "home1-2-3-4" yields the
// token "home" and "ironport" stays a single token (never matching "ip").
func classifyComponent(comp string) (Category, bool) {
	for _, r := range tokenRules {
		for _, kw := range r.keywords {
			if componentHasKeyword(comp, kw) {
				return r.cat, true
			}
		}
	}
	return 0, false
}

func componentHasKeyword(comp string, kw keyword) bool {
	for i := 0; i < len(comp); {
		if !isAlpha(comp[i]) {
			i++
			continue
		}
		j := i
		for j < len(comp) && isAlpha(comp[j]) {
			j++
		}
		tok := comp[i:j]
		if kw.prefix {
			if strings.HasPrefix(tok, kw.text) {
				return true
			}
		} else if tok == kw.text {
			return true
		}
		i = j
	}
	return false
}

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// Generator produces synthetic querier names with the keyword structure of
// each category. All choices come from the supplied stream, so a seeded
// generator is fully reproducible.
type Generator struct {
	st *rng.Stream
	// Intern, when non-nil, canonicalizes the registered domains Name
	// and Domain build — a small vocabulary (≤ 97 ids × 20 words per
	// ccTLD) reconstructed for every querier otherwise. Generated names
	// are byte-identical with or without a table.
	Intern *intern.Table

	buf []byte // scratch for assembling names in one allocation
}

// NewGenerator returns a generator drawing from st.
func NewGenerator(st *rng.Stream) *Generator {
	return &Generator{st: st}
}

// domainWords avoid every token keyword so the registered domain never
// changes the classification of the leftmost label.
var domainWords = []string{
	"telecom", "example", "online", "hosting", "global", "metro", "city",
	"bluesky", "zone", "grid", "nova", "corp", "media", "digital", "plus",
	"prime", "apex", "orbit", "vista", "delta",
}

func init() {
	for _, w := range domainWords {
		if cat, ok := classifyComponent(w); ok {
			panic("qname: domain word " + w + " collides with keyword rule " + cat.String())
		}
	}
}

// Domain returns a registered domain under the given ccTLD, e.g.
// "metro3.jp". The id diversifies organizations within a country. The
// domain is assembled in the generator's scratch buffer and, with an
// intern table installed, canonicalized — repeat draws of the same
// (word, id, ccTLD) combination return one shared string.
func (g *Generator) Domain(cctld string, id int) string {
	w := domainWords[g.st.Intn(len(domainWords))]
	b := append(g.buf[:0], w...)
	b = strconv.AppendInt(b, int64(id%97), 10)
	b = append(b, '.')
	b = append(b, cctld...)
	g.buf = b
	if g.Intern != nil {
		return g.Intern.InternBytes(b)
	}
	return string(b)
}

var (
	homeKeywords   = []string{"home", "dsl", "cable", "dynamic", "cpe", "customer", "pool", "fiber", "flets", "user", "retail"}
	mailHosts      = []string{"mail", "mx", "smtp", "post", "zimbra", "mta", "imap", "sendnode", "lists", "newsletter", "correo", "poczta"}
	nsHosts        = []string{"ns", "dns", "cns", "cache", "resolv", "name"}
	fwHosts        = []string{"firewall", "fw", "wall"}
	antispamHosts  = []string{"ironport", "spam"}
	otherHosts     = []string{"srv", "node", "sys", "box", "zeus", "eagle", "alpha", "beta", "omega", "core", "vpn", "db", "app", "api", "login", "portal"}
	cdnSuffixes    = []string{"deploy.akamaitechnologies.com", "static.akamai.net", "wac.edgecastcdn.net", "px.cdnetworks.com", "fcs.llnwd.net"}
	googleSuffixes = []string{"google.com", "1e100.net", "googlebot.com"}
	msSuffixes     = []string{"cloudapp.azure.com", "microsoft.com"}
)

// Name generates a reverse name for a querier at addr in category cat under
// the given ccTLD. It returns "" for NXDomain and Unreach (no usable name);
// callers track unreachability separately.
func (g *Generator) Name(cat Category, addr ipaddr.Addr, cctld string) string {
	o0, o1, o2, o3 := addr.Octets()
	// Domain is drawn unconditionally — even for categories that ignore
	// it — so the stream advances identically for every category.
	dom := g.Domain(cctld, int(addr.Slash16()))
	pick := func(xs []string) string { return xs[g.st.Intn(len(xs))] }

	// The name is assembled into the generator's scratch buffer and
	// copied out once: the many intermediate concatenations the naive
	// form allocates (quad, host+digit, host+"."+dom) never materialize.
	b := g.buf[:0]
	quad := func(b []byte) []byte {
		b = strconv.AppendInt(b, int64(o0), 10)
		b = append(b, '-')
		b = strconv.AppendInt(b, int64(o1), 10)
		b = append(b, '-')
		b = strconv.AppendInt(b, int64(o2), 10)
		b = append(b, '-')
		return strconv.AppendInt(b, int64(o3), 10)
	}
	done := func(b []byte) string {
		g.buf = b
		return string(b)
	}

	switch cat {
	case Home:
		b = append(b, pick(homeKeywords)...)
		if !g.st.Bool(0.5) {
			b = append(b, '-')
		}
		b = quad(b)
		b = append(b, '.')
		return done(append(b, dom...))
	case Mail:
		b = append(b, pick(mailHosts)...)
		if g.st.Bool(0.3) {
			b = strconv.AppendInt(b, int64(1+g.st.Intn(9)), 10)
		}
		// A slice of compound names exercises the precedence rules.
		if g.st.Bool(0.1) {
			b = append(b, ".ns"...)
			b = strconv.AppendInt(b, int64(g.st.Intn(4)), 10)
		}
		b = append(b, '.')
		return done(append(b, dom...))
	case NS:
		b = append(b, pick(nsHosts)...)
		if g.st.Bool(0.4) {
			b = strconv.AppendInt(b, int64(1+g.st.Intn(4)), 10)
		}
		b = append(b, '.')
		return done(append(b, dom...))
	case FW:
		b = append(b, pick(fwHosts)...)
		b = strconv.AppendInt(b, int64(g.st.Intn(3)), 10)
		b = append(b, '.')
		return done(append(b, dom...))
	case Antispam:
		b = append(b, pick(antispamHosts)...)
		b = strconv.AppendInt(b, int64(1+g.st.Intn(4)), 10)
		b = append(b, '.')
		return done(append(b, dom...))
	case WWW:
		b = append(b, "www"...)
		if g.st.Bool(0.3) {
			b = strconv.AppendInt(b, int64(1+g.st.Intn(4)), 10)
		}
		b = append(b, '.')
		return done(append(b, dom...))
	case NTP:
		b = append(b, "ntp"...)
		b = strconv.AppendInt(b, int64(g.st.Intn(4)), 10)
		b = append(b, '.')
		return done(append(b, dom...))
	case CDN:
		b = append(b, 'a')
		b = quad(b)
		b = append(b, '.')
		return done(append(b, pick(cdnSuffixes)...))
	case AWS:
		b = append(b, "ec2-"...)
		b = quad(b)
		return done(append(b, ".compute-1.amazonaws.com"...))
	case MS:
		b = append(b, "waws-"...)
		b = strconv.AppendInt(b, int64(o2), 10)
		b = append(b, '-')
		b = strconv.AppendInt(b, int64(o3), 10)
		b = append(b, '.')
		return done(append(b, pick(msSuffixes)...))
	case Google:
		b = append(b, "rate-limited-proxy-"...)
		b = quad(b)
		b = append(b, '.')
		return done(append(b, pick(googleSuffixes)...))
	case Other:
		b = append(b, pick(otherHosts)...)
		b = strconv.AppendInt(b, int64(g.st.Intn(40)), 10)
		b = append(b, '.')
		return done(append(b, dom...))
	case NXDomain, Unreach:
		return ""
	default:
		panic("qname: Name for invalid category " + strconv.Itoa(int(cat)))
	}
}
