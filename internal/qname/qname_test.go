package qname

import (
	"testing"

	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/rng"
)

func TestClassifyPaperExamples(t *testing.T) {
	// Examples taken directly from §III-C.
	cases := []struct {
		name string
		want Category
	}{
		{"home1-2-3-4.example.com", Home},
		{"mail.example.com", Mail},
		{"ns.example.com", NS},
		{"firewall.example.com", FW},
		{"spam.example.com", Antispam},
		{"www.example.com", WWW},
		{"ntp.example.com", NTP},
		// "mail.google.com is both google and mail": suffix rules fire
		// on the registered domain, so it is google infrastructure.
		{"mail.google.com", Google},
		// "both mail.ns.example.com and mail-ns.example.com are mail".
		{"mail.ns.example.com", Mail},
		{"mail-ns.example.com", Mail},
		{"", NXDomain},
	}
	for _, c := range cases {
		if got := Classify(c.name); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifyRulePrecedence(t *testing.T) {
	// "pop" appears in both home and mail keyword lists; home is the
	// first rule so it wins.
	if got := Classify("pop.example.com"); got != Home {
		t.Errorf("pop classified as %v, want home (first rule wins)", got)
	}
	// Left-most component wins over later components.
	if got := Classify("zeusbox.mail.example.com"); got != Mail {
		t.Errorf("fallthrough to second component got %v, want mail", got)
	}
	if got := Classify("dsl-1-2-3-4.mail.example.com"); got != Home {
		t.Errorf("leftmost home vs later mail got %v, want home", got)
	}
}

func TestClassifyTokenBoundaries(t *testing.T) {
	cases := []struct {
		name string
		want Category
	}{
		// "ironport" must not match the "ip" home keyword: tokens are
		// maximal alphabetic runs.
		{"ironport2.example.com", Antispam},
		{"smtp3.example.com", Mail},
		// send* is a prefix rule.
		{"sendgrid7.example.com", Mail},
		{"sender.example.com", Mail},
		// Digits split tokens: "mx" inside "mx9" matches.
		{"mx9.example.com", Mail},
		// No rule matches: other-unclassified.
		{"zeus17.example.com", Other},
		// Keyword hidden inside a longer token must not match.
		{"hostile.example.com", Other},
		{"mailbag.example.com", Other},
		{"network.example.com", Other},
	}
	for _, c := range cases {
		if got := Classify(c.name); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifyCaseAndDot(t *testing.T) {
	if got := Classify("MAIL.Example.COM."); got != Mail {
		t.Errorf("case/trailing-dot handling got %v, want mail", got)
	}
}

func TestClassifySuffixRules(t *testing.T) {
	cases := []struct {
		name string
		want Category
	}{
		{"a1-2-3-4.deploy.akamaitechnologies.com", CDN},
		{"gs1.wac.edgecastcdn.net", CDN},
		{"cdn77.px.cdnetworks.com", CDN},
		{"ec2-54-1-2-3.compute-1.amazonaws.com", AWS},
		{"waws-prod-bay-01.cloudapp.azure.com", MS},
		{"rate-limited-proxy-66-249-81-1.google.com", Google},
		{"crawl-66-249-66-1.googlebot.com", Google},
		// Suffix must anchor at a label boundary.
		{"notgooglebot.com", Other},
		{"fakeamazonaws.com", Other},
	}
	for _, c := range cases {
		if got := Classify(c.name); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Home.String() != "home" || NXDomain.String() != "nxdomain" {
		t.Error("category names wrong")
	}
	if Category(-1).String() != "invalid" || NumCategories.String() != "invalid" {
		t.Error("out-of-range category must stringify as invalid")
	}
}

func TestParseCategory(t *testing.T) {
	for c := Category(0); c < NumCategories; c++ {
		got, ok := ParseCategory(c.String())
		if !ok || got != c {
			t.Errorf("ParseCategory(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ParseCategory("bogus"); ok {
		t.Error("ParseCategory accepted bogus name")
	}
}

// TestGeneratorMatchesClassifier is the central consistency property: every
// generated name must classify back to the category it was generated for.
func TestGeneratorMatchesClassifier(t *testing.T) {
	g := NewGenerator(rng.New(42))
	st := rng.New(43)
	for cat := Category(0); cat < NumCategories; cat++ {
		for i := 0; i < 500; i++ {
			addr := ipaddr.Addr(st.Uint64())
			name := g.Name(cat, addr, "jp")
			got := Classify(name)
			want := cat
			if cat == Unreach {
				want = NXDomain // no name to classify; both are nameless
			}
			if got != want {
				t.Fatalf("cat %v generated %q which classifies as %v", cat, name, got)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(rng.New(7))
	b := NewGenerator(rng.New(7))
	addr := ipaddr.MustParse("10.20.30.40")
	for i := 0; i < 100; i++ {
		if x, y := a.Name(Home, addr, "jp"), b.Name(Home, addr, "jp"); x != y {
			t.Fatalf("generator diverged: %q vs %q", x, y)
		}
	}
}

func TestGeneratorNamelessCategories(t *testing.T) {
	g := NewGenerator(rng.New(7))
	addr := ipaddr.MustParse("10.20.30.40")
	if g.Name(NXDomain, addr, "jp") != "" || g.Name(Unreach, addr, "jp") != "" {
		t.Error("nameless categories must yield empty names")
	}
}

func TestGeneratorPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid category did not panic")
		}
	}()
	NewGenerator(rng.New(1)).Name(NumCategories, 0, "jp")
}

func TestDomainUsesCCTLD(t *testing.T) {
	g := NewGenerator(rng.New(7))
	d := g.Domain("jp", 12)
	if len(d) < 4 || d[len(d)-3:] != ".jp" {
		t.Errorf("Domain = %q, want .jp suffix", d)
	}
}

func BenchmarkClassify(b *testing.B) {
	names := []string{
		"home1-2-3-4.telecom5.jp",
		"mail.example.com",
		"a10-2-3-4.deploy.akamaitechnologies.com",
		"zeus17.example.com",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Classify(names[i%len(names)])
	}
}

func BenchmarkGenerate(b *testing.B) {
	g := NewGenerator(rng.New(1))
	addr := ipaddr.MustParse("10.20.30.40")
	for i := 0; i < b.N; i++ {
		_ = g.Name(Category(i%int(Other)), addr, "jp")
	}
}
