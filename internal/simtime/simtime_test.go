package simtime

import (
	"testing"
	"time"
)

func TestDate(t *testing.T) {
	got := Date(2014, time.April, 7, 0, 0)
	want := Time(time.Date(2014, 4, 7, 0, 0, 0, 0, time.UTC).Unix())
	if got != want {
		t.Errorf("Date = %d, want %d", got, want)
	}
}

func TestArithmetic(t *testing.T) {
	t0 := Date(2014, time.April, 15, 11, 0)
	t1 := t0.Add(Hours(50))
	if t1.Sub(t0) != 50*Hour {
		t.Errorf("Sub = %d", t1.Sub(t0))
	}
	if !t0.Before(t1) || !t1.After(t0) {
		t.Error("ordering broken")
	}
}

func TestBuckets(t *testing.T) {
	t0 := Time(0)
	if t0.TenMinuteBucket() != 0 || Time(599).TenMinuteBucket() != 0 || Time(600).TenMinuteBucket() != 1 {
		t.Error("10-minute bucketing wrong at boundary")
	}
	if Time(86399).DayIndex() != 0 || Time(86400).DayIndex() != 1 {
		t.Error("day index wrong at boundary")
	}
	if (Time(7*86400)-1).WeekIndex() != 0 || Time(7*86400).WeekIndex() != 1 {
		t.Error("week index wrong at boundary")
	}
}

func TestHourOfDay(t *testing.T) {
	noon := Date(2014, time.April, 15, 12, 30)
	if h := noon.HourOfDay(); h != 12.5 {
		t.Errorf("HourOfDay = %v, want 12.5", h)
	}
	if h := Time(-3600).HourOfDay(); h != 23 {
		t.Errorf("HourOfDay(-1h) = %v, want 23", h)
	}
}

func TestString(t *testing.T) {
	got := Date(2014, time.April, 7, 13, 45).String()
	if got != "2014-04-07T13:45:00Z" {
		t.Errorf("String = %q", got)
	}
}

func TestDaysHours(t *testing.T) {
	if Days(3) != 3*Day || Hours(5) != 5*Hour {
		t.Error("Days/Hours helpers wrong")
	}
}
