// Package simtime provides the simulator's explicit clock.
//
// Nothing in the reproduction reads the wall clock: all timestamps are
// simulated seconds carried as values, so runs are reproducible and months
// of trace time cost nothing to "wait" through. Times are Unix seconds so
// the datasets can carry the paper's real calendar anchors (DITL April
// 2014, Heartbleed 2014-04-07, M-sampled 2014-02..10).
package simtime

import "time"

// Time is a simulated instant in Unix seconds (UTC).
type Time int64

// Duration is a span of simulated time in seconds.
type Duration int64

// Common durations.
const (
	Second Duration = 1
	Minute          = 60 * Second
	Hour            = 60 * Minute
	Day             = 24 * Hour
	Week            = 7 * Day
)

// Date constructs a Time from a UTC calendar date.
func Date(year int, month time.Month, day, hour, min int) Time {
	return Time(time.Date(year, month, day, hour, min, 0, 0, time.UTC).Unix())
}

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// DayIndex returns the number of whole days since the Unix epoch.
func (t Time) DayIndex() int { return int(t / Time(Day)) }

// WeekIndex returns the number of whole weeks since the Unix epoch.
func (t Time) WeekIndex() int { return int(t / Time(Week)) }

// TenMinuteBucket returns the global index of t's 10-minute period, the
// granularity of the paper's query-persistence feature (§III-C).
func (t Time) TenMinuteBucket() int { return int(t / (10 * Time(Minute))) }

// HourOfDay returns t's hour in [0, 24) UTC, used by diurnal activity.
func (t Time) HourOfDay() float64 {
	sec := int64(t) % int64(Day)
	if sec < 0 {
		sec += int64(Day)
	}
	return float64(sec) / float64(Hour)
}

// Std converts t to a standard library time.Time in UTC.
func (t Time) Std() time.Time { return time.Unix(int64(t), 0).UTC() }

// String formats t as an RFC 3339-style UTC timestamp.
func (t Time) String() string { return t.Std().Format("2006-01-02T15:04:05Z") }

// Wall returns the current wall-clock instant as a simulated Time. It is
// the single sanctioned bridge from real time into the simulator's clock
// domain: live collection (a Server timestamping real queries) defaults to
// it, while simulations inject an explicit clock instead. bslint's
// determinism check forbids time.Now everywhere outside this package, so
// every wall-clock read in the tree flows through here.
func Wall() Time { return Time(time.Now().Unix()) }

// WallDeadline returns the wall-clock instant d from now, for I/O
// deadlines on real sockets (SetReadDeadline needs absolute wall time, and
// a network timeout is inherently a wall-clock concern, not a simulated
// one). Like Wall, it exists so determinism-checked packages never touch
// time.Now directly.
func WallDeadline(d time.Duration) time.Time { return time.Now().Add(d) }

// Days returns a Duration of n days.
func Days(n int) Duration { return Duration(n) * Day }

// Hours returns a Duration of n hours.
func Hours(n int) Duration { return Duration(n) * Hour }
