package benchparse

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := ParseLine("BenchmarkExtract-8   \t 12\t 95123456 ns/op\t 35180928 B/op\t  196373 allocs/op")
	if !ok {
		t.Fatal("bench line did not parse")
	}
	if r.Name != "BenchmarkExtract" || r.Iterations != 12 || r.NsPerOp != 95123456 ||
		r.BytesPerOp != 35180928 || r.AllocsPerOp != 196373 {
		t.Fatalf("parsed %+v", r)
	}
	if r, ok := ParseLine("BenchmarkFast/w1-4 100 12.5 ns/op"); !ok || r.Name != "BenchmarkFast/w1" || r.BytesPerOp != 0 {
		t.Fatalf("memless line parsed as %+v ok=%v", r, ok)
	}
	if _, ok := ParseLine("ok  \tdnsbackscatter\t1.2s"); ok {
		t.Fatal("non-bench line parsed")
	}
}

func TestReadAndSort(t *testing.T) {
	raw := "goos: linux\nBenchmarkB-8\t10\t200 ns/op\nBenchmarkA-8\t10\t100 ns/op\nPASS\n"
	results, err := Read(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	Sort(results)
	if results[0].Name != "BenchmarkA" || results[1].Name != "BenchmarkB" {
		t.Fatalf("sorted = %+v", results)
	}
}

// TestLoadFileBothFormats pins the dual reader: trajectory JSON and raw
// bench text load identically.
func TestLoadFileBothFormats(t *testing.T) {
	dir := t.TempDir()
	raw := "BenchmarkA-8\t10\t100 ns/op\t50 B/op\t5 allocs/op\n"
	txtPath := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(txtPath, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	fromText, err := LoadFile(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Marshal(fromText)
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(jsonPath, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := LoadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromText) != 1 || len(fromJSON) != 1 || fromText[0] != fromJSON[0] {
		t.Fatalf("text=%+v json=%+v", fromText, fromJSON)
	}
	if fromJSON[0].BytesPerOp != 50 || fromJSON[0].AllocsPerOp != 5 {
		t.Fatalf("allocation columns lost: %+v", fromJSON[0])
	}
}

func TestLoadFileErrors(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("[{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Error("malformed JSON loaded")
	}
}
