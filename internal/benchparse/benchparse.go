// Package benchparse parses `go test -bench` output and the repo's
// benchmark-trajectory JSON files (BENCH_*.json), so the tools that gate
// on benchmarks — cmd/bsbench (trajectory diffs) and cmd/bsprof (alloc
// budgets) — share one reader instead of two regexes drifting apart.
package benchparse

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Result is one parsed benchmark: name (GOMAXPROCS suffix stripped),
// iterations, ns/op, and — when the run used -benchmem — B/op and
// allocs/op. JSON field names match the BENCH_*.json trajectory files.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Workers stamps the pipeline worker count the run used (-workers),
	// so trajectory files from different parallelism are distinguishable.
	Workers int `json:"workers,omitempty"`
}

// benchLine matches standard testing benchmark output, with the GOMAXPROCS
// suffix stripped from the name and the -benchmem columns optional.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// ParseLine parses one line of `go test -bench` output, reporting whether
// the line was a benchmark result.
func ParseLine(line string) (Result, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	iters, _ := strconv.ParseInt(m[2], 10, 64)
	ns, _ := strconv.ParseFloat(m[3], 64)
	r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
	if m[4] != "" {
		r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
	}
	if m[5] != "" {
		r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
	}
	return r, true
}

// Read parses every benchmark line from raw `go test -bench` output,
// in input order. Non-benchmark lines are ignored.
func Read(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if res, ok := ParseLine(sc.Text()); ok {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchparse: read: %w", err)
	}
	return results, nil
}

// LoadFile reads a benchmark file in either format: a BENCH_*.json
// trajectory (detected by a leading '[') or raw `go test -bench` text.
func LoadFile(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	for _, c := range data {
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		case '[':
			var results []Result
			if err := json.Unmarshal(data, &results); err != nil {
				return nil, fmt.Errorf("benchparse: parsing %s: %w", path, err)
			}
			return results, nil
		}
		break
	}
	results, err := Read(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("benchparse: parsing %s: %w", path, err)
	}
	return results, nil
}

// Sort orders results by name in place, the order trajectory files use
// so their bytes are stable run to run.
func Sort(results []Result) {
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
}

// Marshal renders results as the indented, newline-terminated JSON of a
// trajectory file. Callers sort first for byte-stable output.
func Marshal(results []Result) ([]byte, error) {
	doc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("benchparse: marshal: %w", err)
	}
	return append(doc, '\n'), nil
}
