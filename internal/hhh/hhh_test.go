package hhh

import (
	"bytes"
	"strings"
	"testing"

	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/rng"
)

// skewedStream draws n addresses from a heavy-tailed distribution: a few
// hot /16 blocks carry most of the mass, the rest is uniform noise —
// the originator shape the sketch exists to summarize.
func skewedStream(seed uint64, n int) []ipaddr.Addr {
	st := rng.New(seed)
	hot := make([]ipaddr.Addr, 8)
	for i := range hot {
		hot[i] = ipaddr.Addr(st.Uint64())
	}
	out := make([]ipaddr.Addr, n)
	for i := range out {
		switch {
		case st.Bool(0.5): // half the mass on 8 exact hot addresses
			out[i] = hot[st.Intn(len(hot))]
		case st.Bool(0.5): // a quarter inside the hot /16s
			out[i] = hot[st.Intn(len(hot))]&0xffff0000 | ipaddr.Addr(st.Uint64()&0xffff)
		default:
			out[i] = ipaddr.Addr(st.Uint64())
		}
	}
	return out
}

// exactCounts is the oracle: true per-prefix mass at one level.
func exactCounts(items []ipaddr.Addr, li int) map[uint32]uint64 {
	m := make(map[uint32]uint64)
	for _, a := range items {
		m[prefixAt(a, li)]++
	}
	return m
}

// TestOverEstimateInvariant checks the space-saving contract against the
// exact oracle at every level: true count ∈ [Count−Err, Count], and any
// prefix with true mass > Total/capacity holds a slot.
func TestOverEstimateInvariant(t *testing.T) {
	for _, cap := range []int{8, 64, 512} {
		for seed := uint64(1); seed <= 3; seed++ {
			items := skewedStream(seed, 20000)
			s := New(cap, seed)
			for _, a := range items {
				s.Add(a, 1)
			}
			if s.Total() != uint64(len(items)) {
				t.Fatalf("Total=%d, want %d", s.Total(), len(items))
			}
			for li, bits := range Levels {
				oracle := exactCounts(items, li)
				tracked := make(map[uint32]Entry)
				for _, e := range s.Level(bits) {
					tracked[uint32(e.Prefix)] = e
					truth := oracle[uint32(e.Prefix)]
					if truth > e.Count {
						t.Errorf("cap=%d seed=%d /%d %v: count %d under-estimates true %d",
							cap, seed, bits, e.Prefix, e.Count, truth)
					}
					if e.Count-e.Err > truth {
						t.Errorf("cap=%d seed=%d /%d %v: lower bound %d exceeds true %d",
							cap, seed, bits, e.Prefix, e.Count-e.Err, truth)
					}
				}
				guarantee := s.Total() / uint64(cap)
				for p, truth := range oracle {
					if truth > guarantee {
						if _, ok := tracked[p]; !ok {
							t.Errorf("cap=%d seed=%d /%d %v: true mass %d > %d yet untracked",
								cap, seed, bits, ipaddr.Addr(p), truth, guarantee)
						}
					}
				}
			}
		}
	}
}

// TestHeavySuperset pins that Heavy returns every prefix whose true mass
// clears phi*Total (plus bounded false positives, which it may).
func TestHeavySuperset(t *testing.T) {
	items := skewedStream(7, 30000)
	s := New(256, 7)
	for _, a := range items {
		s.Add(a, 1)
	}
	const phi = 0.05
	oracle := exactCounts(items, 2) // /16
	heavy := make(map[uint32]struct{})
	for _, e := range s.Heavy(16, phi) {
		heavy[uint32(e.Prefix)] = struct{}{}
	}
	thresh := uint64(phi * float64(len(items)))
	for p, truth := range oracle {
		if truth >= thresh {
			if _, ok := heavy[p]; !ok {
				t.Errorf("/16 %v with true mass %d ≥ %d missing from Heavy", ipaddr.Addr(p), truth, thresh)
			}
		}
	}
	if len(s.Heavy(16, 2)) != 0 {
		t.Error("phi=2 must return no candidates")
	}
}

// TestOrderInvariance feeds one multiset in three different orders; the
// canonical text must be byte-identical — the determinism contract the
// sharded engine leans on.
func TestOrderInvariance(t *testing.T) {
	items := skewedStream(11, 8000)
	build := func(in []ipaddr.Addr) []byte {
		s := New(128, 11)
		for _, a := range in {
			s.Add(a, 1)
		}
		return s.AppendText(nil)
	}
	fwd := build(items)
	if len(fwd) == 0 || !strings.Contains(string(fwd), "/32 ") {
		t.Fatalf("canonical text looks wrong: %q", fwd[:min(len(fwd), 80)])
	}
	grouped := make([]ipaddr.Addr, 0, len(items))
	seen := make(map[ipaddr.Addr]int)
	for _, a := range items {
		seen[a]++
	}
	for _, a := range items { // group duplicates together, first-seen order
		for ; seen[a] > 0; seen[a]-- {
			grouped = append(grouped, a)
		}
	}
	if !bytes.Equal(fwd, build(grouped)) {
		t.Error("snapshot depends on duplicate grouping")
	}
	// NOTE: arbitrary reorderings can shift which near-minimum slot an
	// eviction hits mid-stream, so full permutation invariance is not
	// claimed — only invariance over the dedup-grouping above and over
	// merge order (TestMergeGuarantees), which is what sharding needs.
}

// TestMergeGuarantees splits a stream in two, merges the halves, and
// checks the union oracle still satisfies the over-estimate contract and
// that merge order does not change a byte.
func TestMergeGuarantees(t *testing.T) {
	items := skewedStream(13, 16000)
	mk := func(in []ipaddr.Addr) *Sketch {
		s := New(128, 13)
		for _, a := range in {
			s.Add(a, 1)
		}
		return s
	}
	ab := mk(items[:9000])
	ab.Merge(mk(items[9000:]))
	ba := mk(items[9000:])
	ba.Merge(mk(items[:9000]))
	ba.Merge(nil) // no-op
	if !bytes.Equal(ab.AppendText(nil), ba.AppendText(nil)) {
		t.Error("merge is not commutative byte-for-byte")
	}
	if ab.Total() != uint64(len(items)) {
		t.Fatalf("merged Total=%d, want %d", ab.Total(), len(items))
	}
	for li, bits := range Levels {
		oracle := exactCounts(items, li)
		for _, e := range ab.Level(bits) {
			truth := oracle[uint32(e.Prefix)]
			if truth > e.Count {
				t.Errorf("/%d %v: merged count %d under-estimates true %d", bits, e.Prefix, e.Count, truth)
			}
			if e.Count-e.Err > truth {
				t.Errorf("/%d %v: merged lower bound %d exceeds true %d", bits, e.Prefix, e.Count-e.Err, truth)
			}
		}
	}
}

// TestMergeSeedMismatchPanics pins the incoherent-tiebreak guard.
func TestMergeSeedMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging different seeds must panic")
		}
	}()
	New(8, 1).Merge(New(8, 2))
}

// TestSmallAndReset covers capacity clamping, weighted adds, unknown
// levels, entry rendering, and Reset reuse.
func TestSmallAndReset(t *testing.T) {
	s := New(0, 5)
	if s.Capacity() != 1 {
		t.Fatalf("Capacity=%d, want clamp to 1", s.Capacity())
	}
	a := ipaddr.MustParse("10.1.2.3")
	s.Add(a, 41)
	s.Add(a, 1)
	es := s.Level(32)
	if len(es) != 1 || es[0].Count != 42 || es[0].Err != 0 {
		t.Fatalf("Level(32) = %v, want one exact count of 42", es)
	}
	if got := es[0].String(); !strings.Contains(got, "10.1.2.3/32 42") {
		t.Errorf("Entry.String() = %q", got)
	}
	if s.Level(9) != nil {
		t.Error("unknown level must return nil")
	}
	// Overflow the single slot: the newcomer inherits count+err.
	b := ipaddr.MustParse("172.16.0.1")
	s.Add(b, 1)
	es = s.Level(32)
	if len(es) != 1 || es[0].Count != 43 || es[0].Err != 42 {
		t.Fatalf("after eviction: %v, want count 43 err 42", es)
	}
	s.Reset()
	if s.Total() != 0 || len(s.Level(32)) != 0 {
		t.Error("Reset left state behind")
	}
	s.Add(a, 1)
	if s.Total() != 1 {
		t.Errorf("Total=%d after reuse, want 1", s.Total())
	}
}
