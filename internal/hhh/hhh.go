// Package hhh implements a deterministic hierarchical heavy-hitters
// sketch over IPv4 address space.
//
// The streaming engine must answer "which originator prefixes carry the
// query mass?" when the originator population exceeds what it can track
// individually — the aggregate view §IV of the paper reads off its
// sensors, and the structure RHHH-style detectors build per window. Each
// sketch keeps one space-saving summary (Metwally et al. 2005) per
// prefix level (/32, /24, /16, /8) with a fixed slot capacity, so memory
// stays constant however many distinct addresses flow past.
//
// Space-saving guarantees are one-sided: a slot's Count over-estimates
// the prefix's true mass by at most its Err (true ∈ [Count−Err, Count]),
// and any prefix whose true mass exceeds Total/capacity is guaranteed a
// slot. Eviction picks the minimum slot by (count, seeded splitmix64
// hash of the prefix, prefix) — a total order with no dependence on map
// iteration or arrival interleaving, so two sketches fed the same
// multiset of addresses are identical and snapshots are byte-stable at
// any worker count.
package hhh

import (
	"fmt"
	"strconv"

	"dnsbackscatter/internal/hll"
	"dnsbackscatter/internal/ipaddr"
)

// Levels are the prefix lengths tracked, widest aggregation last.
var Levels = [4]uint8{32, 24, 16, 8}

// Entry is one heavy-hitter candidate at a prefix level.
type Entry struct {
	Prefix ipaddr.Addr // prefix base address (host bits zero)
	Bits   uint8
	Count  uint64 // over-estimate of the prefix's mass
	Err    uint64 // max over-estimation: true count ≥ Count−Err
}

// String renders the entry as "a.b.c.d/bits count±err".
func (e Entry) String() string {
	return fmt.Sprintf("%s/%d %d±%d", e.Prefix, e.Bits, e.Count, e.Err)
}

// slot is one tracked prefix in a level summary.
type slot struct {
	prefix uint32
	count  uint64
	err    uint64
	tie    uint64 // seeded hash of the prefix, the deterministic tiebreak
}

// summary is a space-saving counter set with a position-tracked min-heap,
// so eviction of the minimum slot is O(log capacity) per update.
type summary struct {
	cap   int
	slots []slot // min-heap ordered by less
	pos   map[uint32]int
}

// less orders the eviction heap: smallest count first, seeded hash then
// prefix breaking ties so the victim never depends on arrival order.
func (su *summary) less(a, b slot) bool {
	if a.count != b.count {
		return a.count < b.count
	}
	if a.tie != b.tie {
		return a.tie < b.tie
	}
	return a.prefix < b.prefix
}

func (su *summary) swap(i, j int) {
	su.slots[i], su.slots[j] = su.slots[j], su.slots[i]
	su.pos[su.slots[i].prefix] = i
	su.pos[su.slots[j].prefix] = j
}

func (su *summary) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !su.less(su.slots[i], su.slots[p]) {
			return
		}
		su.swap(i, p)
		i = p
	}
}

func (su *summary) siftDown(i int) {
	n := len(su.slots)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && su.less(su.slots[l], su.slots[small]) {
			small = l
		}
		if r < n && su.less(su.slots[r], su.slots[small]) {
			small = r
		}
		if small == i {
			return
		}
		su.swap(i, small)
		i = small
	}
}

// add offers n observations of prefix with tiebreak hash tie.
func (su *summary) add(prefix uint32, tie, n uint64) {
	if i, ok := su.pos[prefix]; ok {
		su.slots[i].count += n
		su.siftDown(i)
		return
	}
	if len(su.slots) < su.cap {
		su.slots = append(su.slots, slot{prefix: prefix, count: n, tie: tie})
		su.pos[prefix] = len(su.slots) - 1
		su.siftUp(len(su.slots) - 1)
		return
	}
	// Evict the deterministic minimum: the newcomer inherits its count
	// as over-estimate and records it as the error bound.
	victim := su.slots[0]
	delete(su.pos, victim.prefix)
	su.slots[0] = slot{prefix: prefix, count: victim.count + n, err: victim.count, tie: tie}
	su.pos[prefix] = 0
	su.siftDown(0)
}

// min returns the smallest tracked count, or 0 while the summary has
// free slots (an absent prefix then provably has count 0).
func (su *summary) min() uint64 {
	if len(su.slots) < su.cap {
		return 0
	}
	return su.slots[0].count
}

// Sketch tracks heavy hitters at every level of Levels. The zero value
// is not usable; call New.
type Sketch struct {
	seed   uint64
	total  uint64
	levels [len(Levels)]summary
}

// New returns a sketch with the given per-level slot capacity
// (capacity < 1 is clamped to 1) and tiebreak seed. Two sketches must
// share a seed to merge.
func New(capacity int, seed uint64) *Sketch {
	if capacity < 1 {
		capacity = 1
	}
	s := &Sketch{seed: seed}
	for i := range s.levels {
		s.levels[i] = summary{cap: capacity, pos: make(map[uint32]int, capacity)}
	}
	return s
}

// Capacity returns the per-level slot capacity.
func (s *Sketch) Capacity() int { return s.levels[0].cap }

// Total returns the total mass observed (sum of Add weights).
func (s *Sketch) Total() uint64 { return s.total }

// prefixAt masks a down to its level-index prefix.
func prefixAt(a ipaddr.Addr, li int) uint32 {
	bits := Levels[li]
	if bits == 32 {
		return uint32(a)
	}
	return uint32(a) &^ (1<<(32-bits) - 1)
}

// Add observes address a with weight n at every level. Unlike RHHH's
// randomized single-level update, all levels update on every call:
// deterministic, and cheap at four levels.
func (s *Sketch) Add(a ipaddr.Addr, n uint64) {
	s.total += n
	for li := range s.levels {
		p := prefixAt(a, li)
		s.levels[li].add(p, s.tie(li, p), n)
	}
}

// tie computes the seeded eviction tiebreak for a prefix at a level.
func (s *Sketch) tie(li int, prefix uint32) uint64 {
	return hll.Hash64(s.seed ^ uint64(Levels[li])<<32 ^ uint64(prefix))
}

// Merge folds other into s using merged space-saving semantics (Cafaro
// et al.): counts and errors sum for shared prefixes; a prefix absent
// from one input inherits that input's minimum count as extra count and
// error (its true mass there is provably no larger). The merged summary
// keeps the top-capacity slots, so the over-estimate invariant and the
// Total/capacity presence guarantee carry over to the union stream.
// Panics if the seeds differ — tiebreaks would be incoherent.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil {
		return
	}
	if s.seed != other.seed {
		panic("hhh: merging sketches with different seeds")
	}
	s.total += other.total
	for li := range s.levels {
		a, b := &s.levels[li], &other.levels[li]
		minA, minB := a.min(), b.min()
		inB := make(map[uint32]slot, len(b.slots))
		for _, sl := range b.slots {
			inB[sl.prefix] = sl
		}
		merged := make(map[uint32]slot, len(a.slots)+len(b.slots))
		for _, sl := range a.slots {
			if bs, ok := inB[sl.prefix]; ok {
				sl.count += bs.count
				sl.err += bs.err
			} else {
				sl.count += minB
				sl.err += minB
			}
			merged[sl.prefix] = sl
		}
		for _, sl := range b.slots {
			if _, ok := merged[sl.prefix]; ok {
				continue
			}
			sl.count += minA
			sl.err += minA
			merged[sl.prefix] = sl
		}
		all := make([]slot, 0, len(merged))
		for _, sl := range merged {
			all = append(all, sl)
		}
		// Keep the largest cap slots; the same total order as eviction,
		// inverted, so the survivors are deterministic.
		cp := a.cap
		sortSlotsDesc(all, a)
		if len(all) > cp {
			all = all[:cp]
		}
		a.slots = a.slots[:0]
		clear(a.pos)
		for _, sl := range all {
			a.slots = append(a.slots, sl)
			a.pos[sl.prefix] = len(a.slots) - 1
			a.siftUp(len(a.slots) - 1)
		}
	}
}

// sortSlotsDesc orders slots by the inverse eviction order: biggest
// count first, ties by seeded hash then prefix ascending.
func sortSlotsDesc(sl []slot, su *summary) {
	// Insertion sort keeps this dependency-free; summaries are small.
	for i := 1; i < len(sl); i++ {
		for j := i; j > 0 && su.less(sl[j-1], sl[j]); j-- {
			sl[j], sl[j-1] = sl[j-1], sl[j]
		}
	}
}

// Level returns every tracked prefix at the given level, ordered by
// count descending then prefix ascending — the canonical report order.
// Unknown levels return nil.
func (s *Sketch) Level(bits uint8) []Entry {
	for li, b := range Levels {
		if b != bits {
			continue
		}
		su := &s.levels[li]
		out := make([]Entry, 0, len(su.slots))
		for _, sl := range su.slots {
			out = append(out, Entry{Prefix: ipaddr.Addr(sl.prefix), Bits: bits, Count: sl.count, Err: sl.err})
		}
		sortEntries(out)
		return out
	}
	return nil
}

// sortEntries orders entries count descending, prefix ascending.
func sortEntries(es []Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && entryLess(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func entryLess(a, b Entry) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Prefix < b.Prefix
}

// Heavy returns the level's candidates whose count reaches phi*Total.
// Over-estimation makes this a superset guarantee: every prefix whose
// true mass is ≥ phi*Total appears (if phi ≥ 1/capacity), possibly
// alongside false positives within Err of the threshold.
func (s *Sketch) Heavy(bits uint8, phi float64) []Entry {
	thresh := uint64(phi * float64(s.total))
	all := s.Level(bits)
	out := all[:0]
	for _, e := range all {
		if e.Count >= thresh {
			out = append(out, e)
		}
	}
	return out
}

// AppendText appends the sketch's canonical rendering to dst: one
// "prefix/bits count err" line per slot, levels widest-last, each level
// in Level order. Byte-identical across runs, worker counts, and merge
// orders for the same observed multiset.
func (s *Sketch) AppendText(dst []byte) []byte {
	for _, bits := range Levels {
		for _, e := range s.Level(bits) {
			dst = append(dst, e.Prefix.String()...)
			dst = append(dst, '/')
			dst = strconv.AppendUint(dst, uint64(e.Bits), 10)
			dst = append(dst, ' ')
			dst = strconv.AppendUint(dst, e.Count, 10)
			dst = append(dst, ' ')
			dst = strconv.AppendUint(dst, e.Err, 10)
			dst = append(dst, '\n')
		}
	}
	return dst
}

// Reset clears all levels and the total for reuse.
func (s *Sketch) Reset() {
	s.total = 0
	for i := range s.levels {
		s.levels[i].slots = s.levels[i].slots[:0]
		clear(s.levels[i].pos)
	}
}
