package activity

import (
	"math"
	"testing"

	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

func uniformPick(global bool, home string, st *rng.Stream) ipaddr.Addr {
	return ipaddr.Addr(st.Uint64())
}

func testCampaign() *Campaign {
	c := &Campaign{
		Originator:     ipaddr.MustParse("1.2.3.4"),
		Class:          Scan,
		Start:          0,
		End:            simtime.Time(simtime.Days(2)),
		TouchesPerHour: 120,
		RepeatProb:     0.3,
		GlobalBias:     1,
	}
	c.Seed(99)
	return c
}

func TestClassNames(t *testing.T) {
	if Scan.String() != "scan" || AdTracker.String() != "ad-tracker" {
		t.Error("class names wrong")
	}
	if Class(-1).String() != "invalid" || NumClasses.String() != "invalid" {
		t.Error("invalid class must stringify as invalid")
	}
	for c := Class(0); c < NumClasses; c++ {
		got, ok := ParseClass(c.String())
		if !ok || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ParseClass("nope"); ok {
		t.Error("ParseClass accepted junk")
	}
}

func TestMalicious(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		want := c == Spam || c == Scan
		if c.Malicious() != want {
			t.Errorf("%v.Malicious() = %v", c, c.Malicious())
		}
	}
}

func TestEventsDeterministic(t *testing.T) {
	a, b := testCampaign(), testCampaign()
	ea := a.EventsIn(0, simtime.Time(simtime.Hours(6)), uniformPick, nil)
	eb := b.EventsIn(0, simtime.Time(simtime.Hours(6)), uniformPick, nil)
	if len(ea) != len(eb) {
		t.Fatalf("event counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestEventRateMatchesMean(t *testing.T) {
	c := testCampaign()
	events := c.EventsIn(0, simtime.Time(simtime.Day), uniformPick, nil)
	want := 120.0 * 24
	got := float64(len(events))
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("events in a day = %v, want ≈%v", got, want)
	}
}

func TestEventsRespectInterval(t *testing.T) {
	c := testCampaign()
	t0, t1 := simtime.Time(3000), simtime.Time(9000)
	for _, e := range c.EventsIn(t0, t1, uniformPick, nil) {
		if e.Time.Before(t0) || !e.Time.Before(t1) {
			t.Fatalf("event at %v outside [%v, %v)", e.Time, t0, t1)
		}
	}
}

func TestEventsRespectCampaignSpan(t *testing.T) {
	c := testCampaign()
	c.Start, c.End = 5000, 20000
	for _, e := range c.EventsIn(0, simtime.Time(simtime.Day), uniformPick, nil) {
		if e.Time.Before(c.Start) || !e.Time.Before(c.End) {
			t.Fatalf("event at %v outside campaign [%v, %v)", e.Time, c.Start, c.End)
		}
	}
	if n := len(c.EventsIn(30000, 40000, uniformPick, nil)); n != 0 {
		t.Errorf("%d events after campaign end", n)
	}
}

// TestSplitIntervalsReproduce checks slot alignment: generating [0,T) in one
// call equals generating it day by day. Repeat-target state differs across
// split points, so compare times only — the schedule is slot-deterministic.
func TestSplitIntervalsReproduce(t *testing.T) {
	whole := testCampaign()
	all := whole.EventsIn(0, simtime.Time(simtime.Days(2)), uniformPick, nil)

	split := testCampaign()
	var parts []Event
	for d := 0; d < 2; d++ {
		parts = split.EventsIn(simtime.Time(simtime.Days(d)), simtime.Time(simtime.Days(d+1)), uniformPick, parts)
	}
	if len(all) != len(parts) {
		t.Fatalf("whole=%d split=%d events", len(all), len(parts))
	}
	for i := range all {
		if all[i].Time != parts[i].Time {
			t.Fatalf("event %d time differs: %v vs %v", i, all[i].Time, parts[i].Time)
		}
	}
}

func TestRepeatTouchesReuseTargets(t *testing.T) {
	c := testCampaign()
	c.RepeatProb = 0.9
	events := c.EventsIn(0, simtime.Time(simtime.Hours(12)), uniformPick, nil)
	uniq := make(map[ipaddr.Addr]struct{})
	for _, e := range events {
		uniq[e.Target] = struct{}{}
	}
	// With 90% repeats, unique targets must be a small fraction of events.
	if len(events) == 0 || float64(len(uniq))/float64(len(events)) > 0.3 {
		t.Errorf("uniq/events = %d/%d, want strong reuse", len(uniq), len(events))
	}

	c2 := testCampaign()
	c2.RepeatProb = 0
	events2 := c2.EventsIn(0, simtime.Time(simtime.Hours(12)), uniformPick, nil)
	uniq2 := make(map[ipaddr.Addr]struct{})
	for _, e := range events2 {
		uniq2[e.Target] = struct{}{}
	}
	if float64(len(uniq2))/float64(len(events2)) < 0.99 {
		t.Errorf("no-repeat campaign reused targets: %d/%d", len(uniq2), len(events2))
	}
}

func TestDiurnalModulation(t *testing.T) {
	c := testCampaign()
	c.Diurnal = 0.9
	c.PeakHour = 12
	peak := c.EventsIn(simtime.Time(simtime.Hours(11)), simtime.Time(simtime.Hours(13)), uniformPick, nil)
	c2 := testCampaign()
	c2.Diurnal = 0.9
	c2.PeakHour = 12
	trough := c2.EventsIn(simtime.Time(simtime.Hours(23)), simtime.Time(simtime.Hours(25)), uniformPick, nil)
	if len(peak) < 3*len(trough) {
		t.Errorf("peak=%d trough=%d, want strong diurnal contrast", len(peak), len(trough))
	}
}

func TestGlobalBiasRouting(t *testing.T) {
	var globals, locals int
	pick := func(global bool, home string, st *rng.Stream) ipaddr.Addr {
		if global {
			globals++
		} else {
			locals++
			if home != "jp" {
				t.Fatal("home country not passed through")
			}
		}
		return ipaddr.Addr(st.Uint64())
	}
	c := testCampaign()
	c.GlobalBias = 0.2
	c.RepeatProb = 0
	c.HomeCountry = "jp"
	c.EventsIn(0, simtime.Time(simtime.Day), pick, nil)
	frac := float64(globals) / float64(globals+locals)
	if math.Abs(frac-0.2) > 0.05 {
		t.Errorf("global fraction = %v, want ≈0.2", frac)
	}
}

func TestActiveAtAndOverlaps(t *testing.T) {
	c := testCampaign()
	c.Start, c.End = 100, 200
	if c.ActiveAt(99) || !c.ActiveAt(100) || !c.ActiveAt(199) || c.ActiveAt(200) {
		t.Error("ActiveAt boundaries wrong")
	}
	if !c.Overlaps(150, 300) || !c.Overlaps(0, 101) || c.Overlaps(200, 300) || c.Overlaps(0, 100) {
		t.Error("Overlaps boundaries wrong")
	}
}

func TestValidate(t *testing.T) {
	good := testCampaign()
	if err := good.Validate(); err != nil {
		t.Errorf("valid campaign rejected: %v", err)
	}
	bad := []*Campaign{
		{Class: NumClasses, Start: 0, End: 1},
		{Class: Scan, Start: 10, End: 10},
		{Class: Scan, Start: 0, End: 1, TouchesPerHour: -1},
		{Class: Scan, Start: 0, End: 1, RepeatProb: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad campaign %d accepted", i)
		}
	}
}

func TestNewCampaignFromTemplate(t *testing.T) {
	st := rng.New(5)
	for cls := Class(0); cls < NumClasses; cls++ {
		c := NewCampaign(cls, ipaddr.Addr(1000+uint32(cls)), 0, "jp", st)
		if err := c.Validate(); err != nil {
			t.Errorf("template campaign for %v invalid: %v", cls, err)
		}
		if cls == Scan && c.Port == "" {
			t.Error("scan campaign missing port label")
		}
		if cls != Scan && c.Port != "" {
			t.Errorf("%v campaign has port %q", cls, c.Port)
		}
		if c.TouchesPerHour > 5000 {
			t.Error("touch rate cap not applied")
		}
	}
}

func TestNewCampaignLifetimesByMalice(t *testing.T) {
	st := rng.New(6)
	mean := func(cls Class) float64 {
		var sum float64
		const n = 400
		for i := 0; i < n; i++ {
			c := NewCampaign(cls, ipaddr.Addr(uint32(i)), 0, "jp", st)
			sum += float64(c.End.Sub(c.Start))
		}
		return sum / n
	}
	if spam, cdn := mean(Spam), mean(CDN); spam >= cdn/3 {
		t.Errorf("spam mean lifetime %v not far below cdn %v", spam, cdn)
	}
}

func TestPoissonMoments(t *testing.T) {
	st := rng.New(8)
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(poisson(st, lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
	if poisson(st, 0) != 0 || poisson(st, -1) != 0 {
		t.Error("nonpositive lambda must yield 0")
	}
}

func BenchmarkEventsDay(b *testing.B) {
	c := testCampaign()
	var buf []Event
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.EventsIn(0, simtime.Time(simtime.Day), uniformPick, buf[:0])
	}
}
