// Package activity models network-wide activity: originator campaigns for
// the twelve application classes of §III-D, generating the touch events
// that become DNS backscatter.
//
// A Campaign is one originator carrying out one class of activity over a
// time span. Iterating a campaign over an interval yields (time, target)
// touch events drawn deterministically from the campaign's own stream:
// spam runs touch many mail servers, scans walk address space, CDNs are
// touched by geographically biased client populations, and so on. The
// event stream reproduces the behavioral contrasts the paper's features
// rely on — repeat-touch rates (queries per querier), geographic bias
// (global/local entropy), and diurnal shape (Appendix C).
package activity

import (
	"fmt"
	"math"

	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

// Class is an application class from §III-D.
type Class int

// The twelve classes, in the paper's order.
const (
	AdTracker Class = iota
	CDN
	Cloud
	Crawler
	DNSServer
	Mail
	NTP
	P2P
	Push
	Scan
	Spam
	Update
	NumClasses
)

var classNames = [NumClasses]string{
	"ad-tracker", "cdn", "cloud", "crawler", "dns", "mail",
	"ntp", "p2p", "push", "scan", "spam", "update",
}

// String returns the paper's class label.
func (c Class) String() string {
	if c < 0 || c >= NumClasses {
		return "invalid"
	}
	return classNames[c]
}

// ParseClass maps a label back to its Class.
func ParseClass(s string) (Class, bool) {
	for i, n := range classNames {
		if n == s {
			return Class(i), true
		}
	}
	return 0, false
}

// Malicious reports whether the class is adversarial (spam, scan). The
// paper's churn analysis (§V-A) splits on exactly this.
func (c Class) Malicious() bool { return c == Spam || c == Scan }

// Template is the per-class behavioral prior from which campaigns are
// instantiated. Values are tuned to reproduce the case-study contrasts of
// Figure 3 / Table II, not fitted to any proprietary data.
type Template struct {
	// TouchesPerHourMin and Alpha parameterize the Pareto draw of a
	// campaign's touch rate; heavy tails give Figure 9's footprints.
	TouchesPerHourMin float64
	TouchesAlpha      float64
	// RepeatProb is the chance a touch revisits a previous target,
	// raising queries-per-querier (spam retries, scan re-probes).
	RepeatProb float64
	// RepeatPool is how many recent targets revisits draw from; smaller
	// pools hammer fewer hosts harder (scanners re-probing responsive
	// targets). 0 defaults to 512.
	RepeatPool int
	// GlobalBias is the chance a target is drawn globally rather than
	// from the campaign's home country (CDN/mail are regional).
	GlobalBias float64
	// Diurnal is the amplitude of time-of-day modulation in [0, 1].
	Diurnal float64
	// PeakHour is the UTC hour of peak activity when Diurnal > 0.
	PeakHour float64
	// MeanLifetime is the expected campaign duration; malicious classes
	// are short-lived (§V-A: 50% gone within a month) while benign ones
	// persist for many months.
	MeanLifetime simtime.Duration
}

// Templates holds the default per-class priors.
var Templates = [NumClasses]Template{
	AdTracker: {TouchesPerHourMin: 60, TouchesAlpha: 1.1, RepeatProb: 0.35, RepeatPool: 192, GlobalBias: 0.35, Diurnal: 0.7, PeakHour: 13, MeanLifetime: 300 * simtime.Day},
	CDN:       {TouchesPerHourMin: 40, TouchesAlpha: 1.2, RepeatProb: 0.55, RepeatPool: 256, GlobalBias: 0.15, Diurnal: 0.7, PeakHour: 12, MeanLifetime: 240 * simtime.Day},
	Cloud:     {TouchesPerHourMin: 30, TouchesAlpha: 1.2, RepeatProb: 0.45, GlobalBias: 0.5, Diurnal: 0.5, PeakHour: 14, MeanLifetime: 400 * simtime.Day},
	Crawler:   {TouchesPerHourMin: 8, TouchesAlpha: 1.4, RepeatProb: 0.3, GlobalBias: 0.8, Diurnal: 0.1, PeakHour: 0, MeanLifetime: 350 * simtime.Day},
	DNSServer: {TouchesPerHourMin: 25, TouchesAlpha: 1.3, RepeatProb: 0.5, GlobalBias: 0.6, Diurnal: 0.3, PeakHour: 12, MeanLifetime: 500 * simtime.Day},
	Mail:      {TouchesPerHourMin: 20, TouchesAlpha: 1.25, RepeatProb: 0.25, GlobalBias: 0.25, Diurnal: 0.8, PeakHour: 9, MeanLifetime: 300 * simtime.Day},
	NTP:       {TouchesPerHourMin: 15, TouchesAlpha: 1.3, RepeatProb: 0.5, GlobalBias: 0.55, Diurnal: 0.2, PeakHour: 12, MeanLifetime: 450 * simtime.Day},
	P2P:       {TouchesPerHourMin: 12, TouchesAlpha: 1.2, RepeatProb: 0.3, GlobalBias: 0.6, Diurnal: 0.4, PeakHour: 20, MeanLifetime: 60 * simtime.Day},
	Push:      {TouchesPerHourMin: 25, TouchesAlpha: 1.25, RepeatProb: 0.45, GlobalBias: 0.45, Diurnal: 0.6, PeakHour: 18, MeanLifetime: 350 * simtime.Day},
	Scan:      {TouchesPerHourMin: 30, TouchesAlpha: 1.05, RepeatProb: 0.65, RepeatPool: 32, GlobalBias: 0.95, Diurnal: 0.1, PeakHour: 0, MeanLifetime: 45 * simtime.Day},
	Spam:      {TouchesPerHourMin: 35, TouchesAlpha: 1.1, RepeatProb: 0.45, RepeatPool: 96, GlobalBias: 0.55, Diurnal: 0.15, PeakHour: 0, MeanLifetime: 25 * simtime.Day},
	Update:    {TouchesPerHourMin: 20, TouchesAlpha: 1.3, RepeatProb: 0.5, GlobalBias: 0.2, Diurnal: 0.6, PeakHour: 10, MeanLifetime: 400 * simtime.Day},
}

// Campaign is one originator's activity.
type Campaign struct {
	Originator ipaddr.Addr
	Class      Class
	Start, End simtime.Time
	// TouchesPerHour is the mean reaction-producing touch rate.
	TouchesPerHour float64
	RepeatProb     float64
	GlobalBias     float64
	Diurnal        float64
	PeakHour       float64
	// RepeatPool bounds the recent-target ring (0 = 512).
	RepeatPool int
	// HomeCountry biases non-global target draws.
	HomeCountry string
	// Port labels scan campaigns ("tcp22", "tcp80", "tcp443", "multi");
	// empty for other classes.
	Port string
	// Team groups coordinated scanners sharing a /24 (§VI-B); 0 = none.
	Team int

	seed    uint64
	recent  []ipaddr.Addr // ring of recent targets for repeat touches
	recentN int
}

// Seed fixes the campaign's private randomness. Campaigns constructed by
// the world get distinct seeds; identical seeds replay identical events.
func (c *Campaign) Seed(seed uint64) { c.seed = seed }

// ActiveAt reports whether the campaign is running at t.
func (c *Campaign) ActiveAt(t simtime.Time) bool {
	return !t.Before(c.Start) && t.Before(c.End)
}

// Overlaps reports whether the campaign is active anywhere in [t0, t1).
func (c *Campaign) Overlaps(t0, t1 simtime.Time) bool {
	return c.Start.Before(t1) && t0.Before(c.End)
}

// rate returns the diurnally modulated touch rate at t, in touches/hour.
func (c *Campaign) rate(t simtime.Time) float64 {
	r := c.TouchesPerHour
	if c.Diurnal > 0 {
		phase := 2 * math.Pi * (t.HourOfDay() - c.PeakHour) / 24
		r *= 1 + c.Diurnal*math.Cos(phase)
	}
	if r < 0 {
		r = 0
	}
	return r
}

// TargetFunc draws target addresses. world wires this to the geo registry;
// tests may substitute simpler pickers.
type TargetFunc func(global bool, homeCountry string, st *rng.Stream) ipaddr.Addr

// Event is one touch of one target.
type Event struct {
	Time   simtime.Time
	Target ipaddr.Addr
}

// slot is the event-generation granularity.
const slot = 10 * simtime.Minute

// EventsIn appends the campaign's touch events within [t0, t1) to dst,
// drawing targets via pick. Event generation is slot-quantized: each
// 10-minute slot gets a Poisson count at the modulated rate, with event
// times spread uniformly inside the slot. The same campaign, seed, and
// interval always produce identical events.
func (c *Campaign) EventsIn(t0, t1 simtime.Time, pick TargetFunc, dst []Event) []Event {
	if t1.Before(c.Start) || !c.End.After(t0) {
		return dst
	}
	if t0.Before(c.Start) {
		t0 = c.Start
	}
	if c.End.Before(t1) {
		t1 = c.End
	}
	// Align to slot boundaries so interval splits reproduce identically.
	first := int64(t0) / int64(slot)
	last := (int64(t1) + int64(slot) - 1) / int64(slot)
	for si := first; si < last; si++ {
		slotStart := simtime.Time(si * int64(slot))
		st := rng.New(hashSeed(c.seed, uint64(si)))
		lambda := c.rate(slotStart) / 6 // touches per 10 minutes
		n := poisson(st, lambda)
		for e := 0; e < n; e++ {
			t := slotStart.Add(simtime.Duration(st.Intn(int(slot))))
			if t.Before(t0) || !t.Before(t1) {
				continue
			}
			dst = append(dst, Event{Time: t, Target: c.nextTarget(st, pick)})
		}
	}
	return dst
}

// nextTarget draws a fresh target or revisits a recent one.
func (c *Campaign) nextTarget(st *rng.Stream, pick TargetFunc) ipaddr.Addr {
	if len(c.recent) > 0 && st.Bool(c.RepeatProb) {
		return c.recent[st.Intn(len(c.recent))]
	}
	t := pick(st.Bool(c.GlobalBias), c.HomeCountry, st)
	ring := c.RepeatPool
	if ring <= 0 {
		ring = 512
	}
	if len(c.recent) < ring {
		c.recent = append(c.recent, t)
	} else {
		c.recent[c.recentN%ring] = t
		c.recentN++
	}
	return t
}

func hashSeed(a, b uint64) uint64 {
	z := a ^ (b+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// poisson draws a Poisson(lambda) variate. Knuth's method below λ=30, a
// rounded normal approximation above (simulation-grade accuracy).
func poisson(st *rng.Stream, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*st.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= st.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Validate checks a campaign for internal consistency.
func (c *Campaign) Validate() error {
	if c.Class < 0 || c.Class >= NumClasses {
		return fmt.Errorf("activity: invalid class %d", int(c.Class))
	}
	if !c.Start.Before(c.End) {
		return fmt.Errorf("activity: campaign %v ends (%v) before it starts (%v)", c.Originator, c.End, c.Start)
	}
	if c.TouchesPerHour < 0 {
		return fmt.Errorf("activity: negative touch rate %f", c.TouchesPerHour)
	}
	if c.RepeatProb < 0 || c.RepeatProb > 1 || c.GlobalBias < 0 || c.GlobalBias > 1 || c.Diurnal < 0 || c.Diurnal > 1 {
		return fmt.Errorf("activity: probability parameter out of [0,1]")
	}
	return nil
}

// NewCampaign instantiates a campaign from the class template, drawing the
// rate and lifetime from the template's distributions via st.
func NewCampaign(cls Class, orig ipaddr.Addr, start simtime.Time, home string, st *rng.Stream) *Campaign {
	tpl := Templates[cls]
	life := simtime.Duration(float64(tpl.MeanLifetime) * st.ExpFloat64())
	if life < simtime.Day {
		life = simtime.Day
	}
	// Per-campaign jitter keeps classes from being trivially separable:
	// real mailing lists, scanners, and CDNs vary widely inside a class.
	jitter := func(base, spread float64) float64 {
		v := base + spread*st.NormFloat64()
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	c := &Campaign{
		Originator: orig,
		Class:      cls,
		Start:      start,
		End:        start.Add(life),
		// The Pareto draw gives the heavy upper tail; the log-uniform
		// damping spreads campaigns across an order of magnitude below
		// it, populating the small-footprint mass of Figure 9.
		TouchesPerHour: st.Pareto(tpl.TouchesPerHourMin, tpl.TouchesAlpha) * math.Pow(10, -st.Float64()),
		RepeatProb:     jitter(tpl.RepeatProb, 0.15),
		RepeatPool:     tpl.RepeatPool,
		GlobalBias:     jitter(tpl.GlobalBias, 0.15),
		Diurnal:        jitter(tpl.Diurnal, 0.15),
		PeakHour:       tpl.PeakHour + 2*st.NormFloat64(),
		HomeCountry:    home,
		seed:           st.Uint64(),
	}
	// Cap pathological Pareto draws: a single campaign should not
	// dominate a whole dataset's event budget.
	if c.TouchesPerHour > 5000 {
		c.TouchesPerHour = 5000
	}
	if cls == Scan {
		ports := []string{"tcp22", "tcp80", "tcp443", "tcp23", "udp53", "icmp", "multi"}
		c.Port = ports[st.Intn(len(ports))]
	}
	return c
}
