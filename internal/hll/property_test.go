package hll

import (
	"math"
	"slices"
	"sort"
	"testing"

	"dnsbackscatter/internal/rng"
)

// distinctStream draws n distinct uint64 items from a seeded stream.
func distinctStream(seed uint64, n int) []uint64 {
	st := rng.New(seed)
	seen := make(map[uint64]struct{}, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		v := st.Uint64()
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// TestHLLEstimateWithinBound checks the 1.04/sqrt(m) relative-error
// bound at 3 sigma against an exact oracle, across cardinalities,
// precisions, and seeds — the property the analyzability threshold
// leans on.
func TestHLLEstimateWithinBound(t *testing.T) {
	cases := []struct {
		p uint8
		n int
	}{
		{10, 100}, {10, 1000}, {10, 20000},
		{11, 50}, {11, 500}, {11, 5000}, {11, 50000},
		{14, 1000}, {14, 100000},
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 5; seed++ {
			s := MustNew(tc.p)
			for _, v := range distinctStream(seed<<8|uint64(tc.p), tc.n) {
				h := Hash64(v)
				s.Add(h)
				s.Add(h) // duplicates must not move the estimate
			}
			est := float64(s.Estimate())
			m := math.Exp2(float64(tc.p))
			sigma := 1.04 / math.Sqrt(m)
			rel := math.Abs(est-float64(tc.n)) / float64(tc.n)
			// Small cardinalities use linear counting, which is far
			// tighter than the asymptotic bound; 3 sigma covers both
			// regimes with a tiny absolute floor for integer rounding.
			bound := 3*sigma + 2/float64(tc.n)
			if rel > bound {
				t.Errorf("p=%d n=%d seed=%d: estimate %.0f off by %.3f > %.3f",
					tc.p, tc.n, seed, est, rel, bound)
			}
		}
	}
}

// TestHLLMergeIsUnion pins register-exact merge semantics: merging
// sketches of two streams yields exactly the sketch of the concatenated
// stream, whatever the split point or order.
func TestHLLMergeIsUnion(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		items := distinctStream(seed, 4000)
		for _, cut := range []int{0, 1, 1337, 3999, 4000} {
			a, b := MustNew(11), MustNew(11)
			for _, v := range items[:cut] {
				a.Add(Hash64(v))
			}
			for _, v := range items[cut:] {
				b.Add(Hash64(v))
			}
			union := MustNew(11)
			for _, v := range items {
				union.Add(Hash64(v))
			}
			if err := a.Merge(b); err != nil {
				t.Fatalf("merge: %v", err)
			}
			if !a.Equal(union) {
				t.Fatalf("seed=%d cut=%d: merged registers differ from union sketch", seed, cut)
			}
			if got, want := a.AppendBinary(nil), union.AppendBinary(nil); !slices.Equal(got, want) {
				t.Fatalf("seed=%d cut=%d: canonical serialization differs", seed, cut)
			}
		}
	}
}

// TestHLLMergeErrors pins the precision-mismatch error and Clone
// independence.
func TestHLLMergeErrors(t *testing.T) {
	a, b := MustNew(10), MustNew(11)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched precisions must fail")
	}
	a.Add(Hash64(7))
	c := a.Clone()
	if !c.Equal(a) {
		t.Fatal("clone differs from original")
	}
	c.Add(Hash64(9))
	if c.Equal(a) && c.Estimate() != a.Estimate() {
		t.Fatal("clone shares register storage with original")
	}
	a.Reset()
	if a.Estimate() != 0 {
		t.Fatalf("estimate %d after Reset, want 0", a.Estimate())
	}
	if a.Equal(nil) {
		t.Fatal("Equal(nil) must be false")
	}
}

// oracleBottomK computes the exact bottom-k of the distinct hash set.
func oracleBottomK(items []uint64, k int) []uint64 {
	hs := make([]uint64, 0, len(items))
	seen := make(map[uint64]struct{}, len(items))
	for _, v := range items {
		h := Hash64(v)
		if _, dup := seen[h]; dup {
			continue
		}
		seen[h] = struct{}{}
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	if len(hs) > k {
		hs = hs[:k]
	}
	return hs
}

// TestBottomKIsExactBottomK proves the sample is exactly the k distinct
// items with the smallest hashes — the property that makes it a uniform
// sample of the distinct set — across sizes, capacities, and seeds,
// with heavy duplication in the stream.
func TestBottomKIsExactBottomK(t *testing.T) {
	for _, k := range []int{1, 16, 256} {
		for _, n := range []int{1, 10, 1000, 5000} {
			for seed := uint64(1); seed <= 3; seed++ {
				items := distinctStream(seed*31+uint64(n), n)
				b := NewBottomK[uint64](k)
				for i, v := range items {
					b.Add(Hash64(v), v)
					// Replay every third item: duplicates must not
					// displace or double-count sample slots.
					if i%3 == 0 {
						b.Add(Hash64(v), v)
					}
				}
				want := oracleBottomK(items, k)
				if got := b.Hashes(); !slices.Equal(got, want) {
					t.Fatalf("k=%d n=%d seed=%d: sample is not the exact bottom-k (%d vs %d hashes)",
						k, n, seed, len(got), len(want))
				}
				if b.Len() != len(want) || b.K() != k {
					t.Fatalf("k=%d n=%d: Len=%d K=%d want %d/%d", k, n, b.Len(), b.K(), len(want), k)
				}
				// Values must come back in ascending hash order.
				vals := b.Values()
				for i, h := range b.Hashes() {
					if Hash64(vals[i]) != h {
						t.Fatalf("Values order diverges from Hashes order at %d", i)
					}
				}
			}
		}
	}
}

// TestBottomKMergeIsUnion pins that merging sharded samples equals the
// sample of the concatenated stream, for every split point.
func TestBottomKMergeIsUnion(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		items := distinctStream(seed+99, 3000)
		for _, cut := range []int{0, 7, 1500, 3000} {
			a, b := NewBottomK[uint64](128), NewBottomK[uint64](128)
			for _, v := range items[:cut] {
				a.Add(Hash64(v), v)
			}
			for _, v := range items[cut:] {
				b.Add(Hash64(v), v)
			}
			a.Merge(b)
			a.Merge(nil) // nil merge is a no-op
			if got, want := a.Hashes(), oracleBottomK(items, 128); !slices.Equal(got, want) {
				t.Fatalf("seed=%d cut=%d: merged sample is not the union bottom-k", seed, cut)
			}
		}
	}
}

// TestBottomKOrderInvariance feeds the same distinct set in three
// orders; the retained sample must be identical.
func TestBottomKOrderInvariance(t *testing.T) {
	items := distinctStream(5, 2000)
	build := func(in []uint64) []uint64 {
		b := NewBottomK[uint64](64)
		for _, v := range in {
			b.Add(Hash64(v), v)
		}
		return b.Hashes()
	}
	fwd := build(items)
	rev := slices.Clone(items)
	slices.Reverse(rev)
	shuf := slices.Clone(items)
	rng.New(77).Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
	if !slices.Equal(fwd, build(rev)) || !slices.Equal(fwd, build(shuf)) {
		t.Fatal("sample depends on insertion order")
	}
}

// TestBottomKClampAndReset covers the k<1 clamp and Reset reuse.
func TestBottomKClampAndReset(t *testing.T) {
	b := NewBottomK[uint64](0)
	if b.K() != 1 {
		t.Fatalf("K=%d, want clamp to 1", b.K())
	}
	b.Add(Hash64(1), 1)
	b.Add(Hash64(2), 2)
	if b.Len() != 1 {
		t.Fatalf("Len=%d, want 1", b.Len())
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len=%d after Reset, want 0", b.Len())
	}
	b.Add(Hash64(3), 3)
	if b.Len() != 1 {
		t.Fatalf("Len=%d after reuse, want 1", b.Len())
	}
}
