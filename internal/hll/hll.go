// Package hll implements HyperLogLog cardinality estimation (Flajolet et
// al. 2007, with the small-range correction of HyperLogLog++).
//
// The paper's sensors process billions of queries (Table I); counting
// unique queriers per originator exactly needs a set per originator, which
// dominates sensor memory. A 2^p-register HLL answers the only question
// the pipeline asks of those sets — "how many unique queriers?" — in
// fixed space with ~1.04/sqrt(2^p) relative error, comfortably inside the
// ≥20-querier analyzability threshold's tolerance. The streaming extractor
// uses it; the exact extractor remains the default for small datasets.
//
// The package also provides BottomK, the KMV (k minimum values) distinct
// sample that pairs with the HLL in every streaming aggregate: the HLL
// answers "how many distinct queriers", the bottom-k answers "which ones,
// uniformly" in the same bounded space. Both sketches merge losslessly
// (register max / bottom-k of the union), which is what lets sharded
// streaming state recombine into byte-deterministic snapshots.
package hll

import (
	"fmt"
	"math"
	"math/bits"
)

// Sketch is a HyperLogLog counter. The zero value is not usable; call New.
type Sketch struct {
	p         uint8
	registers []uint8
}

// New returns a sketch with 2^p registers. p must be in [4, 18]; p=11
// (2048 registers, ~2.3% error) suits per-originator querier counting.
func New(p uint8) (*Sketch, error) {
	if p < 4 || p > 18 {
		return nil, fmt.Errorf("hll: precision %d outside [4, 18]", p)
	}
	return &Sketch{p: p, registers: make([]uint8, 1<<p)}, nil
}

// MustNew is New for static configuration; it panics on error.
func MustNew(p uint8) *Sketch {
	s, err := New(p)
	if err != nil {
		panic(err)
	}
	return s
}

// Add observes a 64-bit hashed item. Callers hash their values (the
// sensor uses the splitmix finalizer over querier addresses).
func (s *Sketch) Add(hash uint64) {
	idx := hash >> (64 - s.p)
	rest := hash<<s.p | 1<<(s.p-1) // guard bit keeps clz defined
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > s.registers[idx] {
		s.registers[idx] = rank
	}
}

// alpha is the bias-correction constant for m registers.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Estimate returns the cardinality estimate.
func (s *Sketch) Estimate() uint64 {
	m := float64(len(s.registers))
	var sum float64
	zeros := 0
	for _, r := range s.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := alpha(len(s.registers)) * m * m / sum
	// Small-range correction: linear counting while registers are sparse.
	if e <= 2.5*m && zeros > 0 {
		e = m * math.Log(m/float64(zeros))
	}
	return uint64(e + 0.5)
}

// Merge folds other into s; both must share the precision.
func (s *Sketch) Merge(other *Sketch) error {
	if s.p != other.p {
		return fmt.Errorf("hll: merging precision %d into %d", other.p, s.p)
	}
	for i, r := range other.registers {
		if r > s.registers[i] {
			s.registers[i] = r
		}
	}
	return nil
}

// Clone returns an independent copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{p: s.p, registers: make([]uint8, len(s.registers))}
	copy(c.registers, s.registers)
	return c
}

// Equal reports whether two sketches have identical precision and
// register state — the byte-level identity that merge and snapshot
// determinism tests pin.
func (s *Sketch) Equal(other *Sketch) bool {
	if other == nil || s.p != other.p {
		return false
	}
	for i, r := range s.registers {
		if r != other.registers[i] {
			return false
		}
	}
	return true
}

// AppendBinary appends the sketch's canonical serialization (precision
// byte followed by the raw registers) to dst. Two sketches serialize
// identically iff Equal reports true, so snapshot artifacts built from
// sketches are byte-deterministic.
func (s *Sketch) AppendBinary(dst []byte) []byte {
	dst = append(dst, s.p)
	return append(dst, s.registers...)
}

// Reset clears the sketch for reuse.
func (s *Sketch) Reset() {
	for i := range s.registers {
		s.registers[i] = 0
	}
}

// SizeBytes reports the sketch's register memory.
func (s *Sketch) SizeBytes() int { return len(s.registers) }

// Hash64 is the mixing function the sensor applies to addresses before
// Add: the splitmix64 finalizer, a strong 64-bit avalanche.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
