package hll

import (
	"cmp"
	"slices"
)

// BottomK is a KMV (k minimum values) distinct sample: it retains the k
// items whose 64-bit hashes are smallest, which — under a uniform hash —
// is a uniform random sample of the *distinct* items seen, however
// skewed the raw stream is. The streaming pipeline uses it to estimate
// static name fractions, entropies, and AS/country dispersion from a
// bounded per-originator sample. Internally a max-heap on hash keeps the
// largest retained hash evictable in O(log k).
//
// The sample is a pure function of the distinct (hash, value) set fed
// in: insertion order never changes the retained set, so merged or
// replayed streams produce byte-identical samples.
type BottomK[V cmp.Ordered] struct {
	k      int
	hashes []uint64 // max-heap on hash
	vals   map[uint64]V
}

// NewBottomK returns a bottom-k sample retaining the k smallest-hash
// distinct items (k < 1 is clamped to 1).
func NewBottomK[V cmp.Ordered](k int) *BottomK[V] {
	if k < 1 {
		k = 1
	}
	return &BottomK[V]{k: k, vals: make(map[uint64]V, k)}
}

// K returns the sample capacity.
func (b *BottomK[V]) K() int { return b.k }

// Len returns the current number of sampled items.
func (b *BottomK[V]) Len() int { return len(b.hashes) }

// Add offers one (hash, value) observation. Items hash their identity
// exactly once (the sensor uses Hash64); duplicates of a retained hash
// are no-ops, so hot items occupy at most one slot.
func (b *BottomK[V]) Add(h uint64, v V) {
	if _, dup := b.vals[h]; dup {
		return
	}
	if len(b.hashes) < b.k {
		b.vals[h] = v
		b.hashes = append(b.hashes, h)
		b.siftUp(len(b.hashes) - 1)
		return
	}
	if h >= b.hashes[0] {
		return // larger than the current k-th smallest
	}
	delete(b.vals, b.hashes[0])
	b.hashes[0] = h
	b.vals[h] = v
	b.siftDown(0)
}

// siftUp restores the max-heap above index i.
func (b *BottomK[V]) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if b.hashes[p] >= b.hashes[i] {
			return
		}
		b.hashes[p], b.hashes[i] = b.hashes[i], b.hashes[p]
		i = p
	}
}

// siftDown restores the max-heap below index i.
func (b *BottomK[V]) siftDown(i int) {
	n := len(b.hashes)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && b.hashes[l] > b.hashes[big] {
			big = l
		}
		if r < n && b.hashes[r] > b.hashes[big] {
			big = r
		}
		if big == i {
			return
		}
		b.hashes[i], b.hashes[big] = b.hashes[big], b.hashes[i]
		i = big
	}
}

// Merge folds other's sample into b: the result is exactly the bottom-k
// of the union of both distinct sets, so sharded samples recombine into
// the sample a single stream would have produced.
func (b *BottomK[V]) Merge(other *BottomK[V]) {
	if other == nil {
		return
	}
	for _, h := range other.hashes {
		b.Add(h, other.vals[h])
	}
}

// Values returns the sampled values in ascending hash order — a
// canonical, deterministic iteration order for downstream feature
// computation and snapshots.
func (b *BottomK[V]) Values() []V {
	hs := slices.Clone(b.hashes)
	slices.Sort(hs)
	out := make([]V, len(hs))
	for i, h := range hs {
		out[i] = b.vals[h]
	}
	return out
}

// Hashes returns the retained hashes in ascending order.
func (b *BottomK[V]) Hashes() []uint64 {
	hs := slices.Clone(b.hashes)
	slices.Sort(hs)
	return hs
}

// Reset clears the sample for reuse, keeping capacity.
func (b *BottomK[V]) Reset() {
	b.hashes = b.hashes[:0]
	clear(b.vals)
}
