package hll

import (
	"math"
	"testing"

	"dnsbackscatter/internal/rng"
)

func TestPrecisionBounds(t *testing.T) {
	for _, p := range []uint8{0, 3, 19, 64} {
		if _, err := New(p); err == nil {
			t.Errorf("precision %d accepted", p)
		}
	}
	for _, p := range []uint8{4, 11, 18} {
		if _, err := New(p); err != nil {
			t.Errorf("precision %d rejected: %v", p, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestAccuracyAcrossScales(t *testing.T) {
	st := rng.New(42)
	for _, n := range []int{10, 100, 1000, 10000, 200000} {
		s := MustNew(11)
		for i := 0; i < n; i++ {
			s.Add(Hash64(st.Uint64()))
		}
		got := float64(s.Estimate())
		relErr := math.Abs(got-float64(n)) / float64(n)
		// 2048 registers: ~2.3% standard error; allow 4 sigma.
		if relErr > 0.10 {
			t.Errorf("n=%d: estimate %v, rel err %.3f", n, got, relErr)
		}
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	s := MustNew(11)
	for i := 0; i < 100; i++ {
		for k := 0; k < 50; k++ {
			s.Add(Hash64(uint64(i)))
		}
	}
	got := s.Estimate()
	if got < 90 || got > 110 {
		t.Errorf("100 uniques with duplicates estimated as %d", got)
	}
}

func TestSmallCountsExact(t *testing.T) {
	// Linear counting should make tiny cardinalities near-exact — this is
	// what the ≥20-querier threshold depends on.
	for _, n := range []int{1, 5, 20, 25} {
		s := MustNew(11)
		for i := 0; i < n; i++ {
			s.Add(Hash64(uint64(i) * 2654435761))
		}
		got := int(s.Estimate())
		if got < n-1 || got > n+1 {
			t.Errorf("n=%d estimated as %d", n, got)
		}
	}
}

func TestMerge(t *testing.T) {
	a, b := MustNew(11), MustNew(11)
	st := rng.New(7)
	truth := make(map[uint64]struct{})
	for i := 0; i < 5000; i++ {
		v := st.Uint64()
		truth[v] = struct{}{}
		a.Add(Hash64(v))
	}
	for i := 0; i < 5000; i++ {
		v := st.Uint64()
		truth[v] = struct{}{}
		b.Add(Hash64(v))
	}
	// Shared elements.
	for i := 0; i < 2000; i++ {
		v := uint64(i) * 11400714819323198485
		truth[v] = struct{}{}
		a.Add(Hash64(v))
		b.Add(Hash64(v))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := float64(a.Estimate())
	want := float64(len(truth))
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("merged estimate %v, want ≈%v", got, want)
	}
	if err := a.Merge(MustNew(12)); err == nil {
		t.Error("mismatched precision merge accepted")
	}
}

func TestReset(t *testing.T) {
	s := MustNew(8)
	for i := 0; i < 1000; i++ {
		s.Add(Hash64(uint64(i)))
	}
	s.Reset()
	if got := s.Estimate(); got != 0 {
		t.Errorf("estimate after reset = %d", got)
	}
}

func TestSizeBytes(t *testing.T) {
	if MustNew(11).SizeBytes() != 2048 {
		t.Error("wrong register size")
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~half the output bits.
	base := Hash64(12345)
	totalFlips := 0
	for b := 0; b < 64; b++ {
		diff := base ^ Hash64(12345^(1<<b))
		flips := 0
		for ; diff != 0; diff &= diff - 1 {
			flips++
		}
		totalFlips += flips
	}
	mean := float64(totalFlips) / 64
	if mean < 24 || mean > 40 {
		t.Errorf("mean output bit flips = %v, want ≈32", mean)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := MustNew(11)
	for i := 0; i < b.N; i++ {
		s.Add(Hash64(uint64(i)))
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := MustNew(11)
	for i := 0; i < 100000; i++ {
		s.Add(Hash64(uint64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Estimate()
	}
}
