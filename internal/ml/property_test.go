package ml

import (
	"testing"
	"testing/quick"

	"dnsbackscatter/internal/rng"
)

// randomDataset builds a well-formed dataset from fuzz input.
func randomDataset(seed uint64) *Dataset {
	st := rng.New(seed)
	k := 2 + st.Intn(5)
	dims := 1 + st.Intn(8)
	n := k * (3 + st.Intn(20))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, dims)
		for d := range row {
			row[d] = st.NormFloat64()
		}
		x[i] = row
		y[i] = i % k
	}
	d, err := NewDataset(x, y, k)
	if err != nil {
		panic(err)
	}
	return d
}

// TestPredictionsAlwaysInRange: every trainer must return labels within
// [0, NumClasses) for arbitrary data, including pure-noise datasets.
func TestPredictionsAlwaysInRange(t *testing.T) {
	trainers := []Trainer{
		CART{Config: CARTConfig{MaxDepth: 6}},
		Forest{Config: ForestConfig{Trees: 10}},
		SVM{Config: SVMConfig{MaxIters: 20}},
	}
	if err := quick.Check(func(seed uint64) bool {
		d := randomDataset(seed)
		st := rng.New(seed + 1)
		for _, tr := range trainers {
			clf := tr.Train(d, st)
			for i := 0; i < d.Len(); i++ {
				if p := clf.Predict(d.X[i]); p < 0 || p >= d.NumClasses {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestMetricsBounds: confusion metrics always land in [0, 1].
func TestMetricsBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		st := rng.New(seed)
		k := 2 + st.Intn(6)
		c := NewConfusion(k)
		n := st.Intn(200)
		for i := 0; i < n; i++ {
			c.Add(st.Intn(k), st.Intn(k))
		}
		m := c.Score()
		for _, v := range []float64{m.Accuracy, m.Precision, m.Recall, m.F1} {
			if v < 0 || v > 1 {
				return false
			}
		}
		// F1 is bounded by the max of precision and recall... not in
		// general per-class, but macro-F1 cannot exceed 1 and cannot be
		// positive when both precision and recall are zero.
		if m.Precision == 0 && m.Recall == 0 && m.F1 != 0 {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStratifiedSplitPartition: train and test always partition the rows,
// for any fraction.
func TestStratifiedSplitPartition(t *testing.T) {
	if err := quick.Check(func(seed uint64, fracRaw uint8) bool {
		d := randomDataset(seed)
		frac := 0.1 + 0.8*float64(fracRaw)/255
		train, test := StratifiedSplit(d, frac, rng.New(seed))
		if len(train)+len(test) != d.Len() {
			return false
		}
		seen := make(map[int]bool, d.Len())
		for _, i := range append(append([]int{}, train...), test...) {
			if i < 0 || i >= d.Len() || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestForestImportanceDistribution: importances are non-negative and sum
// to at most 1 (exactly 1 when any split happened).
func TestForestImportanceDistribution(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		d := randomDataset(seed)
		m := Forest{Config: ForestConfig{Trees: 8}}.TrainForest(d, rng.New(seed))
		sum := 0.0
		for _, v := range m.Importance() {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum <= 1+1e-9
	}, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestDegenerateDatasets: trainers must cope with constant features and
// single-class data without panicking.
func TestDegenerateDatasets(t *testing.T) {
	constant := func() *Dataset {
		x := make([][]float64, 20)
		y := make([]int, 20)
		for i := range x {
			x[i] = []float64{1, 2, 3}
			y[i] = i % 2
		}
		d, _ := NewDataset(x, y, 2)
		return d
	}()
	st := rng.New(5)
	for _, tr := range []Trainer{CART{}, Forest{Config: ForestConfig{Trees: 5}}, SVM{Config: SVMConfig{MaxIters: 10}}} {
		clf := tr.Train(constant, st)
		if p := clf.Predict([]float64{1, 2, 3}); p < 0 || p > 1 {
			t.Errorf("%s on constant features predicted %d", tr.Name(), p)
		}
	}
}
