package ml

import (
	"testing"

	"dnsbackscatter/internal/parallel"
	"dnsbackscatter/internal/rng"
)

// forestFingerprint captures everything observable about a trained
// forest: per-row votes and exact importances.
func forestFingerprint(t *testing.T, m *ForestModel, d *Dataset) ([]int, []float64) {
	t.Helper()
	preds := make([]int, d.Len())
	for i, row := range d.X {
		preds[i] = m.Predict(row)
	}
	return preds, m.Importance()
}

// TestForestWorkerCountInvariant is the train-stage determinism bar:
// per-tree seeded streams make the forest byte-identical no matter how
// many workers trained it.
func TestForestWorkerCountInvariant(t *testing.T) {
	d := blobs(4, 30, 6, 1.5, 0.4, 7)
	base := Forest{Config: ForestConfig{Trees: 40, Workers: 1}}.
		TrainForest(d, rng.New(99))
	wantPreds, wantImp := forestFingerprint(t, base, d)
	for _, w := range []int{2, 4, 8} {
		m := Forest{Config: ForestConfig{Trees: 40, Workers: w}}.
			TrainForest(d, rng.New(99))
		preds, imp := forestFingerprint(t, m, d)
		for i := range preds {
			if preds[i] != wantPreds[i] {
				t.Fatalf("workers=%d: prediction[%d] = %d, want %d", w, i, preds[i], wantPreds[i])
			}
		}
		for i := range imp {
			if imp[i] != wantImp[i] {
				t.Fatalf("workers=%d: importance[%d] = %v, want exactly %v", w, i, imp[i], wantImp[i])
			}
		}
	}
}

// TestMajorityWorkerCountInvariant checks the voting ensemble: per-member
// seeds decouple member training from scheduling.
func TestMajorityWorkerCountInvariant(t *testing.T) {
	d := blobs(3, 25, 5, 1.5, 0.5, 13)
	tr := Forest{Config: ForestConfig{Trees: 10}}
	want := TrainMajority(tr, d, 5, rng.New(21))
	for _, w := range []int{2, 8} {
		got := TrainMajorityWorkers(tr, d, 5, w, rng.New(21))
		for i, row := range d.X {
			if got.Predict(row) != want.Predict(row) {
				t.Fatalf("workers=%d: majority vote differs on row %d", w, i)
			}
		}
	}
}

// TestValidatorWorkerCountInvariant checks parallel cross-validation:
// per-fold seeds fixed before fan-out give identical mean±std for every
// worker count, and CrossValidate is exactly the one-worker case.
func TestValidatorWorkerCountInvariant(t *testing.T) {
	d := blobs(3, 40, 6, 2, 0.3, 17)
	tr := Forest{Config: ForestConfig{Trees: 15}}
	want := CrossValidate(tr, d, 0.6, 6, rng.New(5))
	for _, w := range []int{2, 4} {
		got := Validator{Trainer: tr, TrainFrac: 0.6, Runs: 6, Workers: w}.Run(d, rng.New(5))
		if got != want {
			t.Fatalf("workers=%d: validation result %+v, want %+v", w, got, want)
		}
	}
}

// TestPredictBatchMatchesSequential checks batch prediction is an
// index-ordered fan-out of Predict.
func TestPredictBatchMatchesSequential(t *testing.T) {
	d := blobs(3, 30, 5, 1.5, 0.4, 31)
	m := Forest{Config: ForestConfig{Trees: 20}}.TrainForest(d, rng.New(3))
	got := PredictBatch(m, d.X, parallel.Pool{Workers: 4})
	if len(got) != d.Len() {
		t.Fatalf("PredictBatch returned %d labels for %d rows", len(got), d.Len())
	}
	for i, row := range d.X {
		if want := m.Predict(row); got[i] != want {
			t.Errorf("row %d: batch %d, sequential %d", i, got[i], want)
		}
	}
}
