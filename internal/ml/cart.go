package ml

import (
	"sort"

	"dnsbackscatter/internal/rng"
)

// CARTConfig controls decision-tree growth.
type CARTConfig struct {
	MaxDepth    int // 0 = unlimited
	MinLeaf     int // minimum samples per leaf (default 1)
	MinSplit    int // minimum samples to attempt a split (default 2)
	MaxFeatures int // features examined per split; 0 = all (forests subsample)
}

// CART trains a single classification tree with Gini-impurity splits
// (Breiman et al. 1984), the first of the paper's three algorithms.
type CART struct {
	Config CARTConfig
}

// Name implements Trainer.
func (CART) Name() string { return "CART" }

// node is one tree node; leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	label     int
}

// Tree is a trained decision tree.
type Tree struct {
	root *node
	// importance accumulates weighted Gini decrease per feature; forests
	// aggregate it into Table IV's discriminative-feature ranking.
	importance []float64
}

// Predict implements Classifier.
func (t *Tree) Predict(x []float64) int {
	n := t.root
	for n.feature >= 0 {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// Importance returns the tree's per-feature impurity decrease, normalized
// to sum to 1 (zero vector if no splits).
func (t *Tree) Importance() []float64 {
	out := make([]float64, len(t.importance))
	var sum float64
	for _, v := range t.importance {
		sum += v
	}
	if sum == 0 {
		return out
	}
	for i, v := range t.importance {
		out[i] = v / sum
	}
	return out
}

// Train implements Trainer.
func (c CART) Train(d *Dataset, st *rng.Stream) Classifier {
	return c.TrainTree(d, st)
}

// TrainTree grows the tree and returns the concrete type (forests need the
// importances).
func (c CART) TrainTree(d *Dataset, st *rng.Stream) *Tree {
	cfg := c.Config
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	if cfg.MinSplit < 2 {
		cfg.MinSplit = 2
	}
	t := &Tree{importance: make([]float64, d.NumFeatures())}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	b := &treeBuilder{d: d, cfg: cfg, st: st, tree: t, total: d.Len()}
	t.root = b.grow(idx, 0)
	return t
}

type treeBuilder struct {
	d     *Dataset
	cfg   CARTConfig
	st    *rng.Stream
	tree  *Tree
	total int
}

// gini computes Gini impurity from class counts over n samples.
func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

func majorityLabel(counts []int) int {
	best, bestN := 0, -1
	for label, n := range counts {
		if n > bestN {
			best, bestN = label, n
		}
	}
	return best
}

func (b *treeBuilder) grow(idx []int, depth int) *node {
	counts := make([]int, b.d.NumClasses)
	for _, i := range idx {
		counts[b.d.Y[i]]++
	}
	leaf := &node{feature: -1, label: majorityLabel(counts)}
	if len(idx) < b.cfg.MinSplit || (b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) {
		return leaf
	}
	parentGini := gini(counts, len(idx))
	if parentGini == 0 {
		return leaf
	}

	feat, thr, gain := b.bestSplit(idx, counts, parentGini)
	if feat < 0 {
		return leaf
	}

	var left, right []int
	for _, i := range idx {
		if b.d.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		return leaf
	}
	b.tree.importance[feat] += gain * float64(len(idx)) / float64(b.total)
	return &node{
		feature:   feat,
		threshold: thr,
		label:     leaf.label,
		left:      b.grow(left, depth+1),
		right:     b.grow(right, depth+1),
	}
}

// bestSplit scans (a possibly random subset of) features for the split
// maximizing Gini gain. Thresholds are midpoints between consecutive
// distinct sorted values.
func (b *treeBuilder) bestSplit(idx []int, parentCounts []int, parentGini float64) (feat int, thr, gain float64) {
	nf := b.d.NumFeatures()
	feats := make([]int, nf)
	for i := range feats {
		feats[i] = i
	}
	if b.cfg.MaxFeatures > 0 && b.cfg.MaxFeatures < nf {
		b.st.Shuffle(nf, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:b.cfg.MaxFeatures]
	}

	feat = -1
	n := len(idx)
	type fv struct {
		v float64
		y int
	}
	vals := make([]fv, n)
	leftCounts := make([]int, b.d.NumClasses)

	for _, f := range feats {
		for i, row := range idx {
			vals[i] = fv{v: b.d.X[row][f], y: b.d.Y[row]}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].v < vals[j].v })
		if vals[0].v == vals[n-1].v {
			continue
		}
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		nLeft := 0
		for i := 0; i < n-1; i++ {
			leftCounts[vals[i].y]++
			nLeft++
			if vals[i].v == vals[i+1].v {
				continue
			}
			nRight := n - nLeft
			gl := giniLeft(leftCounts, nLeft)
			gr := giniRight(parentCounts, leftCounts, nRight)
			g := parentGini - (float64(nLeft)*gl+float64(nRight)*gr)/float64(n)
			if g > gain {
				gain = g
				feat = f
				thr = (vals[i].v + vals[i+1].v) / 2
			}
		}
	}
	return feat, thr, gain
}

func giniLeft(left []int, n int) float64 { return gini(left, n) }

// giniRight derives the right-side impurity from parent minus left counts
// without allocating.
func giniRight(parent, left []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for i := range parent {
		p := float64(parent[i]-left[i]) / float64(n)
		g -= p * p
	}
	return g
}
