package ml

import (
	"slices"
	"sync"

	"dnsbackscatter/internal/rng"
)

// CARTConfig controls decision-tree growth.
type CARTConfig struct {
	MaxDepth    int // 0 = unlimited
	MinLeaf     int // minimum samples per leaf (default 1)
	MinSplit    int // minimum samples to attempt a split (default 2)
	MaxFeatures int // features examined per split; 0 = all (forests subsample)
}

// CART trains a single classification tree with Gini-impurity splits
// (Breiman et al. 1984), the first of the paper's three algorithms.
type CART struct {
	Config CARTConfig
}

// Name implements Trainer.
func (CART) Name() string { return "CART" }

// node is one tree node; leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	label     int
}

// Tree is a trained decision tree.
type Tree struct {
	root *node
	// importance accumulates weighted Gini decrease per feature; forests
	// aggregate it into Table IV's discriminative-feature ranking.
	importance []float64
}

// Predict implements Classifier.
func (t *Tree) Predict(x []float64) int {
	n := t.root
	for n.feature >= 0 {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// Importance returns the tree's per-feature impurity decrease, normalized
// to sum to 1 (zero vector if no splits).
func (t *Tree) Importance() []float64 {
	out := make([]float64, len(t.importance))
	var sum float64
	for _, v := range t.importance {
		sum += v
	}
	if sum == 0 {
		return out
	}
	for i, v := range t.importance {
		out[i] = v / sum
	}
	return out
}

// Train implements Trainer.
func (c CART) Train(d *Dataset, st *rng.Stream) Classifier {
	return c.TrainTree(d, st)
}

// TrainTree grows the tree and returns the concrete type (forests need the
// importances).
func (c CART) TrainTree(d *Dataset, st *rng.Stream) *Tree {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return c.trainTree(d, idx, st)
}

// trainTree grows a tree over the given sample rows (which may repeat —
// forests pass bootstrap draws directly, avoiding a per-tree Dataset
// copy). idx is consumed as working storage: the builder partitions it in
// place, so callers must not reuse it afterwards.
func (c CART) trainTree(d *Dataset, idx []int, st *rng.Stream) *Tree {
	cfg := c.Config
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	if cfg.MinSplit < 2 {
		cfg.MinSplit = 2
	}
	t := &Tree{importance: make([]float64, d.NumFeatures())}
	b := builderPool.Get().(*treeBuilder)
	b.d, b.cfg, b.st, b.tree, b.total = d, cfg, st, t, len(idx)
	b.counts = sized(b.counts, d.NumClasses)
	b.leftCounts = sized(b.leftCounts, d.NumClasses)
	b.vals = sizedFV(b.vals, len(idx))
	b.feats = sized(b.feats, d.NumFeatures())
	b.spill = sized(b.spill, len(idx))[:0]
	b.arena = nil // nodes belong to the returned tree; never recycled
	t.root = b.grow(idx, 0)
	b.d, b.st, b.tree, b.arena = nil, nil, nil, nil
	builderPool.Put(b)
	return t
}

// builderPool recycles treeBuilder scratch across trees. Node arenas are
// excluded — they are reachable from returned Trees. Pooling is ops-only:
// scratch contents are fully overwritten before use, so results are
// byte-identical with or without reuse.
var builderPool = sync.Pool{New: func() any { return new(treeBuilder) }}

// sized returns s resized to n, reallocating only when capacity is short.
func sized(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func sizedFV(s []fv, n int) []fv {
	if cap(s) < n {
		return make([]fv, n)
	}
	return s[:n]
}

// fv pairs one sample's feature value with its label for the split scan.
type fv struct {
	v float64
	y int
}

// treeBuilder carries per-tree state plus the scratch buffers the grow
// loop reuses for every node. Nodes come from a chunked arena, so a tree
// costs a handful of allocations rather than several per node.
//
//bslint:hotpath
type treeBuilder struct {
	d     *Dataset
	cfg   CARTConfig
	st    *rng.Stream
	tree  *Tree
	total int

	counts     []int  // per-node class histogram (reused down the recursion)
	leftCounts []int  // split-scan left-side histogram
	vals       []fv   // split-scan value/label pairs
	feats      []int  // feature scan order (reshuffled per split)
	spill      []int  // stable-partition spill buffer
	arena      []node // current node arena chunk
}

// Node-arena chunk sizing: start small so shallow trees waste little
// tail, double per chunk so deep trees take O(log n) chunk allocations.
const (
	arenaChunkMin = 32
	arenaChunkMax = 1024
)

// newNode hands out the next arena slot. Chunks are never reallocated
// (only replaced when full), so returned pointers stay valid for the
// tree's lifetime.
func (b *treeBuilder) newNode() *node {
	if len(b.arena) == cap(b.arena) {
		next := cap(b.arena) * 2
		if next < arenaChunkMin {
			next = arenaChunkMin
		}
		if next > arenaChunkMax {
			next = arenaChunkMax
		}
		//nolint:hotalloc — one chunk per 32-1024 nodes, not per node
		b.arena = make([]node, 0, next)
	}
	b.arena = b.arena[:len(b.arena)+1]
	return &b.arena[len(b.arena)-1]
}

// gini computes Gini impurity from class counts over n samples.
func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

func majorityLabel(counts []int) int {
	best, bestN := 0, -1
	for label, n := range counts {
		if n > bestN {
			best, bestN = label, n
		}
	}
	return best
}

// grow builds the subtree over idx, partitioning idx in place (stable, so
// recursion sees samples in the same relative order the append-based
// builder produced).
//
//bslint:hotpath
func (b *treeBuilder) grow(idx []int, depth int) *node {
	counts := b.counts
	for i := range counts {
		counts[i] = 0
	}
	for _, i := range idx {
		counts[b.d.Y[i]]++
	}
	label := majorityLabel(counts)
	leaf := func() *node {
		n := b.newNode()
		*n = node{feature: -1, label: label}
		return n
	}
	if len(idx) < b.cfg.MinSplit || (b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) {
		return leaf()
	}
	parentGini := gini(counts, len(idx))
	if parentGini == 0 {
		return leaf()
	}

	feat, thr, gain := b.bestSplit(idx, counts, parentGini)
	if feat < 0 {
		return leaf()
	}

	// Stable in-place partition: left-side rows compact to the front,
	// right-side rows pass through the spill buffer, both keeping their
	// relative order.
	spill := b.spill[:0]
	nl := 0
	for _, i := range idx {
		if b.d.X[i][feat] <= thr {
			idx[nl] = i
			nl++
		} else {
			spill = append(spill, i)
		}
	}
	copy(idx[nl:], spill)
	if nl < b.cfg.MinLeaf || len(idx)-nl < b.cfg.MinLeaf {
		return leaf()
	}
	b.tree.importance[feat] += gain * float64(len(idx)) / float64(b.total)
	n := b.newNode()
	*n = node{feature: feat, threshold: thr, label: label}
	n.left = b.grow(idx[:nl], depth+1)
	n.right = b.grow(idx[nl:], depth+1)
	return n
}

// bestSplit scans (a possibly random subset of) features for the split
// maximizing Gini gain. Thresholds are midpoints between consecutive
// distinct sorted values. All working storage is builder scratch; the
// sort is reflection-free. Tie order within equal feature values never
// reaches the result: gains are evaluated only at distinct-value
// boundaries, from integer class counts.
//
//bslint:hotpath
func (b *treeBuilder) bestSplit(idx []int, parentCounts []int, parentGini float64) (feat int, thr, gain float64) {
	nf := b.d.NumFeatures()
	feats := b.feats
	for i := range feats {
		feats[i] = i
	}
	if b.cfg.MaxFeatures > 0 && b.cfg.MaxFeatures < nf {
		b.st.Shuffle(nf, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:b.cfg.MaxFeatures]
	}

	feat = -1
	n := len(idx)
	vals := b.vals[:n]
	leftCounts := b.leftCounts

	for _, f := range feats {
		for i, row := range idx {
			vals[i] = fv{v: b.d.X[row][f], y: b.d.Y[row]}
		}
		slices.SortFunc(vals, func(a, c fv) int {
			switch {
			case a.v < c.v:
				return -1
			case a.v > c.v:
				return 1
			default:
				return 0
			}
		})
		if vals[0].v == vals[n-1].v {
			continue
		}
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		nLeft := 0
		for i := 0; i < n-1; i++ {
			leftCounts[vals[i].y]++
			nLeft++
			if vals[i].v == vals[i+1].v {
				continue
			}
			nRight := n - nLeft
			gl := giniLeft(leftCounts, nLeft)
			gr := giniRight(parentCounts, leftCounts, nRight)
			g := parentGini - (float64(nLeft)*gl+float64(nRight)*gr)/float64(n)
			if g > gain {
				gain = g
				feat = f
				thr = (vals[i].v + vals[i+1].v) / 2
			}
		}
	}
	return feat, thr, gain
}

func giniLeft(left []int, n int) float64 { return gini(left, n) }

// giniRight derives the right-side impurity from parent minus left counts
// without allocating.
func giniRight(parent, left []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for i := range parent {
		p := float64(parent[i]-left[i]) / float64(n)
		g -= p * p
	}
	return g
}
