// Package ml implements the machine-learning algorithms the paper
// classifies originators with (§III-D): a CART decision tree, a Random
// Forest, and a kernel SVM, plus the evaluation machinery of §IV-C
// (stratified splits, repeated cross-validation, accuracy / precision /
// recall / F1, confusion matrices, and Gini feature importance).
//
// Everything is written from scratch on the standard library; randomized
// algorithms draw from explicit rng streams so training is reproducible.
package ml

import (
	"fmt"
	"math"
	"sort"

	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/parallel"
	"dnsbackscatter/internal/prof"
	"dnsbackscatter/internal/rng"
)

// Dataset is a labeled design matrix. Labels are small ints in
// [0, NumClasses).
type Dataset struct {
	X          [][]float64
	Y          []int
	NumClasses int
}

// NewDataset validates and wraps the inputs.
func NewDataset(x [][]float64, y []int, numClasses int) (*Dataset, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("ml: %d rows but %d labels", len(x), len(y))
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("ml: empty dataset")
	}
	w := len(x[0])
	for i, row := range x {
		if len(row) != w {
			return nil, fmt.Errorf("ml: row %d has width %d, want %d", i, len(row), w)
		}
	}
	for i, label := range y {
		if label < 0 || label >= numClasses {
			return nil, fmt.Errorf("ml: label %d out of range at row %d", label, i)
		}
	}
	return &Dataset{X: x, Y: y, NumClasses: numClasses}, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// NumFeatures returns the design-matrix width.
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Subset returns the dataset restricted to the given row indices. Rows are
// shared, not copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	x := make([][]float64, len(idx))
	y := make([]int, len(idx))
	for i, j := range idx {
		x[i], y[i] = d.X[j], d.Y[j]
	}
	return &Dataset{X: x, Y: y, NumClasses: d.NumClasses}
}

// ClassCounts returns the per-class sample counts.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Classifier predicts a class label for a feature vector.
type Classifier interface {
	Predict(x []float64) int
}

// Trainer builds a classifier from a dataset using the supplied stream for
// any internal randomization.
type Trainer interface {
	Train(d *Dataset, st *rng.Stream) Classifier
	Name() string
}

// StratifiedSplit partitions row indices into train/test with the given
// train fraction, preserving class proportions (the paper's random 60/40
// splits are stratified by construction of their labeled sets).
func StratifiedSplit(d *Dataset, trainFrac float64, st *rng.Stream) (train, test []int) {
	byClass := make([][]int, d.NumClasses)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	for _, rows := range byClass {
		st.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		k := int(math.Round(trainFrac * float64(len(rows))))
		if k == 0 && len(rows) > 0 {
			k = 1 // every class keeps at least one training example
		}
		if k == len(rows) && len(rows) > 1 {
			k--
		}
		train = append(train, rows[:k]...)
		test = append(test, rows[k:]...)
	}
	sort.Ints(train)
	sort.Ints(test)
	return train, test
}

// Confusion is a confusion matrix: Counts[truth][predicted].
type Confusion struct {
	Counts [][]int
}

// NewConfusion returns an empty k-class confusion matrix.
func NewConfusion(k int) *Confusion {
	c := &Confusion{Counts: make([][]int, k)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, k)
	}
	return c
}

// Add records one prediction.
func (c *Confusion) Add(truth, pred int) { c.Counts[truth][pred]++ }

// Total returns the number of recorded predictions.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Metrics are the paper's evaluation numbers (§IV-C): accuracy plus
// macro-averaged precision, recall, and F1 over classes present in truth.
type Metrics struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
}

// Score computes Metrics from a confusion matrix. Per-class precision with
// no predicted positives, or recall with no true members, contributes zero
// (the conservative convention).
func (c *Confusion) Score() Metrics {
	k := len(c.Counts)
	var correct, total int
	var precSum, recSum, f1Sum float64
	classes := 0
	for cls := 0; cls < k; cls++ {
		tp := c.Counts[cls][cls]
		var fn, fp int
		for j := 0; j < k; j++ {
			if j != cls {
				fn += c.Counts[cls][j]
				fp += c.Counts[j][cls]
			}
		}
		correct += tp
		total += tp + fn
		if tp+fn == 0 {
			continue // class absent from truth: skip in macro average
		}
		classes++
		var prec, rec float64
		if tp+fp > 0 {
			prec = float64(tp) / float64(tp+fp)
		}
		rec = float64(tp) / float64(tp+fn)
		precSum += prec
		recSum += rec
		if prec+rec > 0 {
			f1Sum += 2 * prec * rec / (prec + rec)
		}
	}
	m := Metrics{}
	if total > 0 {
		m.Accuracy = float64(correct) / float64(total)
	}
	if classes > 0 {
		m.Precision = precSum / float64(classes)
		m.Recall = recSum / float64(classes)
		m.F1 = f1Sum / float64(classes)
	}
	return m
}

// ClassMetrics are per-class precision/recall/F1 with supports.
type ClassMetrics struct {
	Class     int
	Support   int // true members in the evaluation
	Predicted int // predicted members
	Precision float64
	Recall    float64
	F1        float64
}

// PerClass returns metrics for every class with either truth or predicted
// members — the per-class view behind §IV-C's sparse-class discussion.
func (c *Confusion) PerClass() []ClassMetrics {
	k := len(c.Counts)
	var out []ClassMetrics
	for cls := 0; cls < k; cls++ {
		tp := c.Counts[cls][cls]
		var fn, fp int
		for j := 0; j < k; j++ {
			if j != cls {
				fn += c.Counts[cls][j]
				fp += c.Counts[j][cls]
			}
		}
		if tp+fn == 0 && tp+fp == 0 {
			continue
		}
		m := ClassMetrics{Class: cls, Support: tp + fn, Predicted: tp + fp}
		if tp+fp > 0 {
			m.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			m.Recall = float64(tp) / float64(tp+fn)
		}
		if m.Precision+m.Recall > 0 {
			m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		}
		out = append(out, m)
	}
	return out
}

// EvaluateConfusion runs clf over the test rows of d and returns the raw
// confusion matrix.
func EvaluateConfusion(clf Classifier, d *Dataset, rows []int) *Confusion {
	conf := NewConfusion(d.NumClasses)
	for _, i := range rows {
		conf.Add(d.Y[i], clf.Predict(d.X[i]))
	}
	return conf
}

// Evaluate runs clf over the test rows of d and scores it.
func Evaluate(clf Classifier, d *Dataset, rows []int) Metrics {
	conf := NewConfusion(d.NumClasses)
	for _, i := range rows {
		conf.Add(d.Y[i], clf.Predict(d.X[i]))
	}
	return conf.Score()
}

// PredictBatch classifies every row of xs under the pool, returning
// labels in row order. Rows are independent, so predictions are
// identical for every worker count; clf.Predict must be safe for
// concurrent calls (all of this package's models are: prediction only
// reads trained state).
func PredictBatch(clf Classifier, xs [][]float64, pool parallel.Pool) []int {
	return parallel.Map(pool, len(xs), func(i int) int { return clf.Predict(xs[i]) })
}

// MeanStd summarizes repeated runs.
type MeanStd struct {
	Mean, Std float64
}

func meanStd(xs []float64) MeanStd {
	if len(xs) == 0 {
		return MeanStd{}
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, v := range xs {
		ss += (v - mean) * (v - mean)
	}
	return MeanStd{Mean: mean, Std: math.Sqrt(ss / float64(len(xs)))}
}

// ValidationResult aggregates repeated random-split validation.
type ValidationResult struct {
	Trainer   string
	Runs      int
	Accuracy  MeanStd
	Precision MeanStd
	Recall    MeanStd
	F1        MeanStd
}

// CrossValidate repeats (split, train, test) runs times — the paper's 50
// iterations of random 60/40 splits — and reports mean and std of each
// metric. It is Validator.Run with sequential execution; results are
// identical at any Validator worker count.
func CrossValidate(tr Trainer, d *Dataset, trainFrac float64, runs int, st *rng.Stream) ValidationResult {
	return Validator{Trainer: tr, TrainFrac: trainFrac, Runs: runs, Workers: 1}.Run(d, st)
}

// Validator runs repeated random-split validation (§IV-C) with the folds
// fanned across workers. Each fold derives its own rng stream from the
// caller's stream, seeded in fold order before fan-out, so the result is
// byte-identical for every worker count.
type Validator struct {
	// Trainer is the algorithm under validation.
	Trainer Trainer
	// TrainFrac is the training share of each split (the paper uses 0.6).
	TrainFrac float64
	// Runs is the number of random splits (the paper uses 50).
	Runs int
	// Workers bounds concurrent folds; <= 0 uses GOMAXPROCS(0).
	Workers int
	// Obs, when non-nil, records the fold fan-out under the parallel_*
	// metrics with stage="validate".
	Obs *obs.Registry
	// Acct, when non-nil, accumulates the validate stage's resource
	// accounting on the ops channel.
	Acct *prof.Accountant
}

// Run executes the folds and aggregates mean±std of each metric in fold
// order.
func (v Validator) Run(d *Dataset, st *rng.Stream) ValidationResult {
	seeds := make([]uint64, v.Runs)
	for r := range seeds {
		seeds[r] = st.Uint64()
	}
	tok := v.Acct.Start("validate")
	pool := parallel.Pool{Workers: v.Workers, Obs: v.Obs, Stage: "validate", Acct: v.Acct}
	ms := parallel.Map(pool, v.Runs, func(r int) Metrics {
		rs := rng.New(seeds[r])
		trainIdx, testIdx := StratifiedSplit(d, v.TrainFrac, rs)
		clf := v.Trainer.Train(d.Subset(trainIdx), rs)
		return Evaluate(clf, d, testIdx)
	})
	acc := make([]float64, 0, v.Runs)
	prec := make([]float64, 0, v.Runs)
	rec := make([]float64, 0, v.Runs)
	f1 := make([]float64, 0, v.Runs)
	for _, m := range ms {
		acc = append(acc, m.Accuracy)
		prec = append(prec, m.Precision)
		rec = append(rec, m.Recall)
		f1 = append(f1, m.F1)
	}
	res := ValidationResult{
		Trainer:   v.Trainer.Name(),
		Runs:      v.Runs,
		Accuracy:  meanStd(acc),
		Precision: meanStd(prec),
		Recall:    meanStd(rec),
		F1:        meanStd(f1),
	}
	tok.End()
	return res
}

// Majority wraps n independently trained classifiers and predicts by vote,
// implementing the paper's "run each 10 times and take the majority" rule
// for nondeterministic algorithms. Ties break toward the lowest label.
type Majority struct {
	Members []Classifier
}

// TrainMajority trains n instances of tr on d sequentially. It is
// TrainMajorityWorkers with one worker; the ensemble is identical.
func TrainMajority(tr Trainer, d *Dataset, n int, st *rng.Stream) *Majority {
	return TrainMajorityWorkers(tr, d, n, 1, st)
}

// TrainMajorityWorkers trains the n ensemble members across workers.
// Each member derives its own rng stream from st, seeded in member order
// before fan-out, so the ensemble is byte-identical for every worker
// count.
func TrainMajorityWorkers(tr Trainer, d *Dataset, n, workers int, st *rng.Stream) *Majority {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = st.Uint64()
	}
	pool := parallel.Pool{Workers: workers}
	return &Majority{Members: parallel.Map(pool, n, func(i int) Classifier {
		return tr.Train(d, rng.New(seeds[i]))
	})}
}

// Predict returns the majority vote.
func (m *Majority) Predict(x []float64) int {
	votes := make(map[int]int)
	for _, c := range m.Members {
		votes[c.Predict(x)]++
	}
	best, bestN := 0, -1
	for label, n := range votes {
		if n > bestN || (n == bestN && label < best) {
			best, bestN = label, n
		}
	}
	return best
}
