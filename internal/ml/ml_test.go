package ml

import (
	"math"
	"testing"

	"dnsbackscatter/internal/rng"
)

// blobs builds a k-class Gaussian-blob dataset with the given per-class
// center separation; noise controls overlap.
func blobs(k, perClass, dims int, sep, noise float64, seed uint64) *Dataset {
	st := rng.New(seed)
	var x [][]float64
	var y []int
	for cls := 0; cls < k; cls++ {
		for i := 0; i < perClass; i++ {
			row := make([]float64, dims)
			for d := range row {
				center := 0.0
				if d%k == cls {
					center = sep
				}
				row[d] = center + noise*st.NormFloat64()
			}
			x = append(x, row)
			y = append(y, cls)
		}
	}
	d, err := NewDataset(x, y, k)
	if err != nil {
		panic(err)
	}
	return d
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset([][]float64{{1}}, []int{0, 1}, 2); err == nil {
		t.Error("mismatched rows/labels accepted")
	}
	if _, err := NewDataset(nil, nil, 2); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewDataset([][]float64{{1}, {1, 2}}, []int{0, 0}, 2); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := NewDataset([][]float64{{1}}, []int{5}, 2); err == nil {
		t.Error("out-of-range label accepted")
	}
	d, err := NewDataset([][]float64{{1, 2}, {3, 4}}, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.NumFeatures() != 2 {
		t.Error("dims wrong")
	}
}

func TestSubsetAndClassCounts(t *testing.T) {
	d := blobs(3, 10, 4, 1, 0.1, 1)
	counts := d.ClassCounts()
	for cls, c := range counts {
		if c != 10 {
			t.Errorf("class %d count = %d", cls, c)
		}
	}
	sub := d.Subset([]int{0, 10, 20})
	if sub.Len() != 3 {
		t.Fatal("subset length wrong")
	}
	if sub.Y[0] != 0 || sub.Y[1] != 1 || sub.Y[2] != 2 {
		t.Error("subset labels wrong")
	}
}

func TestStratifiedSplit(t *testing.T) {
	d := blobs(4, 20, 3, 1, 0.1, 2)
	st := rng.New(3)
	train, test := StratifiedSplit(d, 0.6, st)
	if len(train)+len(test) != d.Len() {
		t.Fatalf("split sizes %d+%d != %d", len(train), len(test), d.Len())
	}
	trainCounts := d.Subset(train).ClassCounts()
	for cls, c := range trainCounts {
		if c != 12 {
			t.Errorf("class %d train count = %d, want 12", cls, c)
		}
	}
	// No overlap.
	seen := make(map[int]bool)
	for _, i := range train {
		seen[i] = true
	}
	for _, i := range test {
		if seen[i] {
			t.Fatal("train/test overlap")
		}
	}
}

func TestStratifiedSplitTinyClasses(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []int{0, 0, 0, 1} // class 1 has a single sample
	d, _ := NewDataset(x, y, 2)
	train, test := StratifiedSplit(d, 0.6, rng.New(1))
	if len(train) == 0 || len(test) == 0 {
		t.Fatal("degenerate split")
	}
	// The lone class-1 sample must land in train (every class trains).
	found := false
	for _, i := range train {
		if d.Y[i] == 1 {
			found = true
		}
	}
	if !found {
		t.Error("singleton class missing from training split")
	}
}

func TestConfusionMetricsPerfect(t *testing.T) {
	c := NewConfusion(3)
	for cls := 0; cls < 3; cls++ {
		for i := 0; i < 5; i++ {
			c.Add(cls, cls)
		}
	}
	m := c.Score()
	if m.Accuracy != 1 || m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Errorf("perfect metrics = %+v", m)
	}
	if c.Total() != 15 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestConfusionMetricsKnown(t *testing.T) {
	// 2 classes: class 0 has 8 right, 2 wrong; class 1 has 6 right, 4 wrong.
	c := NewConfusion(2)
	for i := 0; i < 8; i++ {
		c.Add(0, 0)
	}
	for i := 0; i < 2; i++ {
		c.Add(0, 1)
	}
	for i := 0; i < 6; i++ {
		c.Add(1, 1)
	}
	for i := 0; i < 4; i++ {
		c.Add(1, 0)
	}
	m := c.Score()
	if math.Abs(m.Accuracy-0.7) > 1e-9 {
		t.Errorf("accuracy = %v, want 0.7", m.Accuracy)
	}
	// precision0 = 8/12, precision1 = 6/8 -> macro 0.708333
	if math.Abs(m.Precision-(8.0/12+6.0/8)/2) > 1e-9 {
		t.Errorf("precision = %v", m.Precision)
	}
	// recall0 = 0.8, recall1 = 0.6 -> macro 0.7
	if math.Abs(m.Recall-0.7) > 1e-9 {
		t.Errorf("recall = %v", m.Recall)
	}
}

func TestConfusionSkipsAbsentClasses(t *testing.T) {
	c := NewConfusion(5)
	c.Add(0, 0)
	c.Add(0, 0)
	m := c.Score()
	if m.Accuracy != 1 || m.Precision != 1 {
		t.Errorf("absent classes dragged metrics: %+v", m)
	}
}

func TestCARTSeparatesBlobs(t *testing.T) {
	d := blobs(3, 40, 6, 2, 0.3, 10)
	res := CrossValidate(CART{Config: CARTConfig{MaxDepth: 8}}, d, 0.6, 5, rng.New(11))
	if res.Accuracy.Mean < 0.9 {
		t.Errorf("CART accuracy on separable blobs = %v", res.Accuracy.Mean)
	}
}

func TestForestSeparatesBlobs(t *testing.T) {
	d := blobs(3, 40, 6, 2, 0.3, 10)
	res := CrossValidate(Forest{Config: ForestConfig{Trees: 30}}, d, 0.6, 3, rng.New(11))
	if res.Accuracy.Mean < 0.95 {
		t.Errorf("RF accuracy on separable blobs = %v", res.Accuracy.Mean)
	}
}

func TestSVMSeparatesBlobs(t *testing.T) {
	d := blobs(3, 40, 6, 2, 0.3, 10)
	res := CrossValidate(SVM{}, d, 0.6, 3, rng.New(11))
	if res.Accuracy.Mean < 0.9 {
		t.Errorf("SVM accuracy on separable blobs = %v", res.Accuracy.Mean)
	}
}

func TestForestBeatsCARTOnNoisyData(t *testing.T) {
	// With overlap and more classes, the ensemble should win on average —
	// the ordering the paper reports in Table III.
	d := blobs(6, 30, 10, 1.2, 0.8, 20)
	st := rng.New(21)
	cart := CrossValidate(CART{Config: CARTConfig{MaxDepth: 10}}, d, 0.6, 10, st)
	rf := CrossValidate(Forest{Config: ForestConfig{Trees: 60}}, d, 0.6, 10, st)
	if rf.Accuracy.Mean <= cart.Accuracy.Mean {
		t.Errorf("RF (%.3f) did not beat CART (%.3f)", rf.Accuracy.Mean, cart.Accuracy.Mean)
	}
}

func TestForestImportanceFindsSignal(t *testing.T) {
	// Only feature 0 carries signal; everything else is noise.
	st := rng.New(30)
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		cls := i % 2
		row := make([]float64, 8)
		row[0] = float64(cls)*3 + 0.3*st.NormFloat64()
		for d := 1; d < 8; d++ {
			row[d] = st.NormFloat64()
		}
		x = append(x, row)
		y = append(y, cls)
	}
	d, _ := NewDataset(x, y, 2)
	m := Forest{Config: ForestConfig{Trees: 40}}.TrainForest(d, rng.New(31))
	top := m.TopFeatures(3)
	if top[0].Feature != 0 {
		t.Errorf("top feature = %d, want 0 (importances %v)", top[0].Feature, m.Importance())
	}
	if top[0].Importance < 0.5 {
		t.Errorf("signal feature importance = %v, want dominant", top[0].Importance)
	}
}

func TestTreeImportanceNormalized(t *testing.T) {
	d := blobs(3, 30, 5, 2, 0.3, 40)
	tree := CART{Config: CARTConfig{MaxDepth: 6}}.TrainTree(d, rng.New(41))
	imp := tree.Importance()
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatal("negative importance")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance sums to %v", sum)
	}
}

func TestCARTDepthLimit(t *testing.T) {
	d := blobs(2, 50, 4, 2, 0.3, 50)
	tree := CART{Config: CARTConfig{MaxDepth: 1}}.TrainTree(d, rng.New(51))
	depth := treeDepth(tree.root)
	if depth > 1 {
		t.Errorf("depth = %d with MaxDepth 1", depth)
	}
}

func treeDepth(n *node) int {
	if n == nil || n.feature < 0 {
		return 0
	}
	l, r := treeDepth(n.left), treeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

func TestCARTPureLeafShortCircuit(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	d, _ := NewDataset(x, y, 2)
	tree := CART{}.TrainTree(d, rng.New(1))
	if tree.root.feature != -1 || tree.root.label != 1 {
		t.Error("pure dataset should yield a single leaf")
	}
}

func TestDeterministicTraining(t *testing.T) {
	d := blobs(3, 30, 5, 1.5, 0.5, 60)
	m1 := Forest{Config: ForestConfig{Trees: 20}}.TrainForest(d, rng.New(61))
	m2 := Forest{Config: ForestConfig{Trees: 20}}.TrainForest(d, rng.New(61))
	for i := 0; i < d.Len(); i++ {
		if m1.Predict(d.X[i]) != m2.Predict(d.X[i]) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestMajorityVote(t *testing.T) {
	d := blobs(3, 30, 5, 1.5, 0.5, 70)
	st := rng.New(71)
	m := TrainMajority(Forest{Config: ForestConfig{Trees: 10}}, d, 5, st)
	if len(m.Members) != 5 {
		t.Fatal("wrong member count")
	}
	metrics := Evaluate(m, d, seqInts(d.Len()))
	if metrics.Accuracy < 0.8 {
		t.Errorf("majority ensemble accuracy = %v", metrics.Accuracy)
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestSVMHandlesMissingClass(t *testing.T) {
	// Dataset declares 4 classes but only 2 appear; pairwise training
	// must skip empty pairs instead of crashing.
	x := [][]float64{{0}, {0.1}, {3}, {3.1}}
	y := []int{0, 0, 2, 2}
	d, _ := NewDataset(x, y, 4)
	m := SVM{}.TrainSVM(d, rng.New(80))
	if got := m.Predict([]float64{0}); got != 0 {
		t.Errorf("predict near class 0 = %d", got)
	}
	if got := m.Predict([]float64{3}); got != 2 {
		t.Errorf("predict near class 2 = %d", got)
	}
}

func TestCrossValidateStability(t *testing.T) {
	d := blobs(3, 40, 6, 2, 0.3, 90)
	res := CrossValidate(Forest{Config: ForestConfig{Trees: 20}}, d, 0.6, 5, rng.New(91))
	if res.Runs != 5 || res.Trainer != "RF" {
		t.Errorf("result meta wrong: %+v", res)
	}
	if res.Accuracy.Std > 0.2 {
		t.Errorf("accuracy std = %v, suspiciously unstable", res.Accuracy.Std)
	}
	if res.F1.Mean <= 0 || res.Precision.Mean <= 0 || res.Recall.Mean <= 0 {
		t.Error("metrics empty")
	}
}

func TestMeanStd(t *testing.T) {
	ms := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(ms.Mean-5) > 1e-9 || math.Abs(ms.Std-2) > 1e-9 {
		t.Errorf("meanStd = %+v, want 5 / 2", ms)
	}
	if z := meanStd(nil); z.Mean != 0 || z.Std != 0 {
		t.Error("empty meanStd not zero")
	}
}

func BenchmarkForestTrain(b *testing.B) {
	d := blobs(6, 30, 22, 1.5, 0.5, 100)
	st := rng.New(101)
	for i := 0; i < b.N; i++ {
		Forest{Config: ForestConfig{Trees: 50}}.TrainForest(d, st)
	}
}

func BenchmarkForestPredict(b *testing.B) {
	d := blobs(6, 30, 22, 1.5, 0.5, 100)
	m := Forest{Config: ForestConfig{Trees: 50}}.TrainForest(d, rng.New(101))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Predict(d.X[i%d.Len()])
	}
}

func BenchmarkSVMTrain(b *testing.B) {
	d := blobs(4, 30, 22, 1.5, 0.5, 100)
	st := rng.New(101)
	for i := 0; i < b.N; i++ {
		SVM{}.TrainSVM(d, st)
	}
}
