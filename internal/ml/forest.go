package ml

import (
	"math"
	"slices"
	"sync"

	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/parallel"
	"dnsbackscatter/internal/prof"
	"dnsbackscatter/internal/rng"
)

// ForestConfig controls Random Forest training.
type ForestConfig struct {
	Trees       int // number of trees (default 100)
	MaxDepth    int // per-tree depth cap (0 = unlimited)
	MinLeaf     int // per-tree leaf minimum (default 1)
	MaxFeatures int // features per split; 0 = round(sqrt(F))

	// Workers bounds tree-training goroutines; <= 0 uses GOMAXPROCS(0)
	// and 1 trains sequentially. Every tree draws from its own seeded
	// rng stream (derived from the caller's stream before fan-out), so
	// the trained forest is byte-identical for every worker count.
	Workers int
	// Obs, when non-nil, records the training fan-out under the
	// parallel_* metrics with stage="train".
	Obs *obs.Registry
	// Acct, when non-nil, accumulates the train stage's resource
	// accounting (alloc deltas, worker peaks) on the ops channel.
	Acct *prof.Accountant
}

// Forest trains a Random Forest (Breiman 2001): bagged CART trees with
// per-split feature subsampling and majority voting. The paper finds RF
// the strongest of its three algorithms (Table III) and uses its Gini
// importances for Table IV.
type Forest struct {
	Config ForestConfig
}

// Name implements Trainer.
func (Forest) Name() string { return "RF" }

// bootPool recycles bootstrap index slices across trees (ops-only; each
// slice is fully overwritten before use).
var bootPool = sync.Pool{New: func() any { return new([]int) }}

// ForestModel is a trained forest.
type ForestModel struct {
	trees      []*Tree
	numClasses int
	importance []float64
}

// Train implements Trainer.
func (f Forest) Train(d *Dataset, st *rng.Stream) Classifier {
	return f.TrainForest(d, st)
}

// TrainForest trains and returns the concrete model. Each tree gets its
// own rng stream, seeded from st in tree order before any tree trains:
// tree t's bootstrap and split subsampling are a pure function of
// (st, t), so the forest — trees, votes, and importances — is
// byte-identical whether trained by one worker or many.
func (f Forest) TrainForest(d *Dataset, st *rng.Stream) *ForestModel {
	cfg := f.Config
	if cfg.Trees <= 0 {
		cfg.Trees = 100
	}
	mf := cfg.MaxFeatures
	if mf <= 0 {
		mf = int(math.Round(math.Sqrt(float64(d.NumFeatures()))))
		if mf < 1 {
			mf = 1
		}
	}
	cart := CART{Config: CARTConfig{
		MaxDepth:    cfg.MaxDepth,
		MinLeaf:     cfg.MinLeaf,
		MaxFeatures: mf,
	}}

	m := &ForestModel{
		numClasses: d.NumClasses,
		importance: make([]float64, d.NumFeatures()),
	}
	seeds := make([]uint64, cfg.Trees)
	for t := range seeds {
		seeds[t] = st.Uint64()
	}
	n := d.Len()
	tok := cfg.Acct.Start("train")
	pool := parallel.Pool{Workers: cfg.Workers, Obs: cfg.Obs, Stage: "train", Acct: cfg.Acct}
	m.trees = parallel.Map(pool, cfg.Trees, func(t int) *Tree {
		ts := rng.New(seeds[t])
		// Bootstrap rows feed trainTree directly — no per-tree Dataset
		// copy. Row order matches what Subset would materialize, so the
		// trained tree is byte-identical to the copying path. The index
		// slice is pure working storage (trainTree never retains it), so
		// it cycles through a pool across trees.
		bp := bootPool.Get().(*[]int)
		boot := *bp
		if cap(boot) < n {
			boot = make([]int, n)
		}
		boot = boot[:n]
		for i := range boot {
			boot[i] = ts.Intn(n)
		}
		tree := cart.trainTree(d, boot, ts)
		*bp = boot
		bootPool.Put(bp)
		return tree
	})
	// Importances merge sequentially in tree order: float summation
	// order is fixed, so the totals match bit for bit across runs.
	for _, tree := range m.trees {
		for i, v := range tree.Importance() {
			m.importance[i] += v
		}
	}
	for i := range m.importance {
		m.importance[i] /= float64(cfg.Trees)
	}
	tok.End()
	return m
}

// Predict implements Classifier by majority vote over trees.
func (m *ForestModel) Predict(x []float64) int {
	votes := make([]int, m.numClasses)
	for _, t := range m.trees {
		votes[t.Predict(x)]++
	}
	return majorityLabel(votes)
}

// Importance returns mean per-feature Gini importance across trees,
// summing to ~1.
func (m *ForestModel) Importance() []float64 {
	out := make([]float64, len(m.importance))
	copy(out, m.importance)
	return out
}

// FeatureRank pairs a feature index with its importance.
type FeatureRank struct {
	Feature    int
	Importance float64
}

// TopFeatures returns the k most discriminative features, descending —
// the content of Table IV.
func (m *ForestModel) TopFeatures(k int) []FeatureRank {
	ranks := make([]FeatureRank, len(m.importance))
	for i, v := range m.importance {
		ranks[i] = FeatureRank{Feature: i, Importance: v}
	}
	slices.SortFunc(ranks, func(a, b FeatureRank) int {
		switch {
		case a.Importance > b.Importance:
			return -1
		case a.Importance < b.Importance:
			return 1
		default:
			return a.Feature - b.Feature
		}
	})
	if k < len(ranks) {
		ranks = ranks[:k]
	}
	return ranks
}
