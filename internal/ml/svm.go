package ml

import (
	"math"

	"dnsbackscatter/internal/rng"
)

// SVMConfig controls kernel-SVM training.
type SVMConfig struct {
	C        float64 // soft-margin penalty (default 10)
	Gamma    float64 // RBF width; 0 = 1/numFeatures
	Tol      float64 // KKT tolerance (default 1e-3)
	MaxPass  int     // passes without alpha changes before stopping (default 5)
	MaxIters int     // hard iteration cap (default 200 sweeps)
}

// SVM trains a one-vs-one multiclass support-vector machine with an RBF
// kernel, optimized by simplified SMO (Platt 1998 as reduced in the
// Stanford CS229 notes) — the paper's third algorithm.
type SVM struct {
	Config SVMConfig
}

// Name implements Trainer.
func (SVM) Name() string { return "SVM" }

// binarySVM is one trained pairwise machine.
type binarySVM struct {
	x     [][]float64 // support vectors (all training rows kept; zero-alpha rows skipped)
	y     []float64   // ±1 labels
	alpha []float64
	b     float64
	gamma float64
}

func rbf(a, b []float64, gamma float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-gamma * s)
}

func (m *binarySVM) decision(x []float64) float64 {
	s := -m.b
	for i := range m.alpha {
		if m.alpha[i] == 0 {
			continue
		}
		s += m.alpha[i] * m.y[i] * rbf(m.x[i], x, m.gamma)
	}
	return s
}

// SVMModel is a trained one-vs-one multiclass SVM. Features are z-score
// standardized at training time (RBF distances are scale-sensitive and the
// raw feature columns span orders of magnitude); the stored mean/scale are
// applied to every prediction input.
type SVMModel struct {
	numClasses int
	pairs      []svmPair
	mean       []float64
	invStd     []float64
	scratch    []float64
}

// standardize z-scores a row into dst.
func (m *SVMModel) standardize(x []float64, dst []float64) []float64 {
	dst = dst[:0]
	for i, v := range x {
		dst = append(dst, (v-m.mean[i])*m.invStd[i])
	}
	return dst
}

type svmPair struct {
	a, b int // class labels; decision > 0 votes a, else b
	m    *binarySVM
}

// Train implements Trainer.
func (s SVM) Train(d *Dataset, st *rng.Stream) Classifier {
	return s.TrainSVM(d, st)
}

// TrainSVM trains and returns the concrete model.
func (s SVM) TrainSVM(d *Dataset, st *rng.Stream) *SVMModel {
	cfg := s.Config
	if cfg.C <= 0 {
		cfg.C = 10
	}
	if cfg.Gamma <= 0 {
		cfg.Gamma = 1 / float64(max(1, d.NumFeatures()))
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-3
	}
	if cfg.MaxPass <= 0 {
		cfg.MaxPass = 5
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 200
	}

	// Standardize the design matrix: per-column z-scores.
	nf := d.NumFeatures()
	model := &SVMModel{
		numClasses: d.NumClasses,
		mean:       make([]float64, nf),
		invStd:     make([]float64, nf),
	}
	for j := 0; j < nf; j++ {
		var sum float64
		for _, row := range d.X {
			sum += row[j]
		}
		mu := sum / float64(d.Len())
		var ss float64
		for _, row := range d.X {
			ss += (row[j] - mu) * (row[j] - mu)
		}
		sd := math.Sqrt(ss / float64(d.Len()))
		model.mean[j] = mu
		if sd > 1e-12 {
			model.invStd[j] = 1 / sd
		} // constant columns stay 0: they carry no information
	}
	z := make([][]float64, d.Len())
	for i, row := range d.X {
		zr := make([]float64, nf)
		for j, v := range row {
			zr[j] = (v - model.mean[j]) * model.invStd[j]
		}
		z[i] = zr
	}
	zd := &Dataset{X: z, Y: d.Y, NumClasses: d.NumClasses}

	byClass := make([][]int, d.NumClasses)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	for a := 0; a < d.NumClasses; a++ {
		for b := a + 1; b < d.NumClasses; b++ {
			if len(byClass[a]) == 0 || len(byClass[b]) == 0 {
				continue
			}
			m := trainBinary(zd, byClass[a], byClass[b], cfg, st)
			model.pairs = append(model.pairs, svmPair{a: a, b: b, m: m})
		}
	}
	return model
}

// Predict implements Classifier by pairwise voting; ties break to the
// lowest label. Not safe for concurrent use (it reuses an internal
// standardization buffer).
func (m *SVMModel) Predict(x []float64) int {
	m.scratch = m.standardize(x, m.scratch)
	votes := make([]int, m.numClasses)
	for _, p := range m.pairs {
		if p.m.decision(m.scratch) > 0 {
			votes[p.a]++
		} else {
			votes[p.b]++
		}
	}
	return majorityLabel(votes)
}

// trainBinary runs simplified SMO on the rows of classes a (label +1) and
// b (label -1).
func trainBinary(d *Dataset, aRows, bRows []int, cfg SVMConfig, st *rng.Stream) *binarySVM {
	n := len(aRows) + len(bRows)
	m := &binarySVM{
		x:     make([][]float64, 0, n),
		y:     make([]float64, 0, n),
		alpha: make([]float64, n),
		gamma: cfg.Gamma,
	}
	for _, i := range aRows {
		m.x = append(m.x, d.X[i])
		m.y = append(m.y, 1)
	}
	for _, i := range bRows {
		m.x = append(m.x, d.X[i])
		m.y = append(m.y, -1)
	}

	// Precompute the kernel matrix; pairwise training sets are small.
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := rbf(m.x[i], m.x[j], m.gamma)
			k[i][j] = v
			k[j][i] = v
		}
	}
	f := func(i int) float64 {
		s := -m.b
		for j := 0; j < n; j++ {
			if m.alpha[j] != 0 {
				s += m.alpha[j] * m.y[j] * k[i][j]
			}
		}
		return s
	}

	passes, iters := 0, 0
	for passes < cfg.MaxPass && iters < cfg.MaxIters {
		iters++
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - m.y[i]
			if !((m.y[i]*ei < -cfg.Tol && m.alpha[i] < cfg.C) || (m.y[i]*ei > cfg.Tol && m.alpha[i] > 0)) {
				continue
			}
			j := st.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - m.y[j]
			ai, aj := m.alpha[i], m.alpha[j]
			var lo, hi float64
			if m.y[i] != m.y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(cfg.C, cfg.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-cfg.C)
				hi = math.Min(cfg.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*k[i][j] - k[i][i] - k[j][j]
			if eta >= 0 {
				continue
			}
			ajNew := aj - m.y[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-5 {
				continue
			}
			aiNew := ai + m.y[i]*m.y[j]*(aj-ajNew)
			m.alpha[i], m.alpha[j] = aiNew, ajNew

			b1 := m.b + ei + m.y[i]*(aiNew-ai)*k[i][i] + m.y[j]*(ajNew-aj)*k[i][j]
			b2 := m.b + ej + m.y[i]*(aiNew-ai)*k[i][j] + m.y[j]*(ajNew-aj)*k[j][j]
			switch {
			case aiNew > 0 && aiNew < cfg.C:
				m.b = b1
			case ajNew > 0 && ajNew < cfg.C:
				m.b = b2
			default:
				m.b = (b1 + b2) / 2
			}
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	// Drop non-support vectors to speed prediction.
	var xs [][]float64
	var ys, alphas []float64
	for i := 0; i < n; i++ {
		if m.alpha[i] > 0 {
			xs = append(xs, m.x[i])
			ys = append(ys, m.y[i])
			alphas = append(alphas, m.alpha[i])
		}
	}
	m.x, m.y, m.alpha = xs, ys, alphas
	return m
}
