// Package dnslog models the query logs a backscatter sensor collects at a
// DNS authority (§III-A).
//
// Each reverse query observed at the authority yields one Record — the
// (originator, querier, authority) tuple plus timestamp and response code.
// The package provides a line-oriented text codec (one record per line, in
// the spirit of dnstap/TSV logging), streaming reader/writer, the paper's
// 30-second per-(originator, querier) deduplication window, and the
// 10-minute persistence bucketing used by dynamic features.
package dnslog

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dnsbackscatter/internal/intern"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/simtime"
)

// Record is one reverse DNS query observed at an authority.
type Record struct {
	Time       simtime.Time
	Originator ipaddr.Addr // address whose reverse name was queried
	Querier    ipaddr.Addr // source of the DNS query (recursive resolver)
	Authority  string      // sensor name, e.g. "jp", "b-root", "m-root"
	RCode      uint8       // response code returned by the authority
}

// Key identifies the (originator, querier) pair of r.
func (r Record) Key() PairKey {
	return PairKey{Originator: r.Originator, Querier: r.Querier}
}

// PairKey is a hashable (originator, querier) pair.
type PairKey struct {
	Originator ipaddr.Addr
	Querier    ipaddr.Addr
}

// AppendText appends r's line form (without newline) to dst.
func (r Record) AppendText(dst []byte) []byte {
	dst = strconv.AppendInt(dst, int64(r.Time), 10)
	dst = append(dst, '\t')
	dst = append(dst, r.Originator.String()...)
	dst = append(dst, '\t')
	dst = append(dst, r.Querier.String()...)
	dst = append(dst, '\t')
	dst = append(dst, r.Authority...)
	dst = append(dst, '\t')
	dst = strconv.AppendUint(dst, uint64(r.RCode), 10)
	return dst
}

// ErrBadRecord reports a malformed log line.
var ErrBadRecord = errors.New("dnslog: malformed record")

// ParseRecord parses one log line produced by AppendText.
func ParseRecord(line string) (Record, error) {
	var r Record
	fields := strings.Split(line, "\t")
	if len(fields) != 5 {
		return r, fmt.Errorf("%w: %d fields", ErrBadRecord, len(fields))
	}
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return r, fmt.Errorf("%w: bad timestamp %q", ErrBadRecord, fields[0])
	}
	r.Time = simtime.Time(ts)
	if r.Originator, err = ipaddr.Parse(fields[1]); err != nil {
		return r, fmt.Errorf("%w: bad originator: %v", ErrBadRecord, err)
	}
	if r.Querier, err = ipaddr.Parse(fields[2]); err != nil {
		return r, fmt.Errorf("%w: bad querier: %v", ErrBadRecord, err)
	}
	r.Authority = fields[3]
	rc, err := strconv.ParseUint(fields[4], 10, 8)
	if err != nil {
		return r, fmt.Errorf("%w: bad rcode %q", ErrBadRecord, fields[4])
	}
	r.RCode = uint8(rc)
	return r, nil
}

// Writer streams records to an io.Writer, one line each.
type Writer struct {
	bw  *bufio.Writer
	buf []byte
	n   int
}

// NewWriter returns a buffered log writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 64)}
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	w.buf = r.AppendText(w.buf[:0])
	w.buf = append(w.buf, '\n')
	if _, err := w.bw.Write(w.buf); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns how many records have been written.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams records from an io.Reader. Authority strings are
// interned through a per-reader table: every record from the same sensor
// shares one backing string instead of each keeping a substring that pins
// its whole source line in memory.
type Reader struct {
	sc    *bufio.Scanner
	line  int
	names *intern.Table
}

// NewReader returns a log reader over r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Reader{sc: sc, names: intern.New(0)}
}

// Read returns the next record, or io.EOF when the stream is exhausted.
func (r *Reader) Read() (Record, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := ParseRecord(line)
		if err != nil {
			return Record{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		rec.Authority = r.names.Intern(rec.Authority)
		return rec, nil
	}
	if err := r.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAll drains the reader into a slice.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Deduper suppresses repeat queries from the same querier for the same
// originator within a time window. The paper uses 30 s to avoid skew from
// queriers that ignore DNS timeout rules (§III-C).
type Deduper struct {
	Window simtime.Duration
	last   map[PairKey]simtime.Time
}

// NewDeduper returns a deduper with the given suppression window. A window
// of 0 passes everything through.
func NewDeduper(window simtime.Duration) *Deduper {
	return &Deduper{Window: window, last: make(map[PairKey]simtime.Time)}
}

// Keep reports whether r survives deduplication, updating state. Records
// must be fed in non-decreasing time order for exact window semantics.
//
//bslint:hotpath
func (d *Deduper) Keep(r Record) bool {
	if d.Window <= 0 {
		return true
	}
	k := r.Key()
	if t, ok := d.last[k]; ok && r.Time.Sub(t) < d.Window {
		return false
	}
	d.last[k] = r.Time
	return true
}

// Reset clears the deduper's memory (e.g. at an interval boundary).
func (d *Deduper) Reset() {
	clear(d.last)
}

// Dedup filters records (assumed time-ordered) through a fresh deduper.
func Dedup(recs []Record, window simtime.Duration) []Record {
	d := NewDeduper(window)
	out := recs[:0:0]
	for _, r := range recs {
		if d.Keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// PersistenceBuckets returns how many distinct 10-minute periods contain at
// least one of the given record times — the paper's query-persistence
// dynamic feature.
func PersistenceBuckets(times []simtime.Time) int {
	seen := make(map[int]struct{}, len(times))
	for _, t := range times {
		seen[t.TenMinuteBucket()] = struct{}{}
	}
	return len(seen)
}
