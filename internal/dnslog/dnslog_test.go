package dnslog

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/simtime"
)

func rec(t int64, o, q string) Record {
	return Record{
		Time:       simtime.Time(t),
		Originator: ipaddr.MustParse(o),
		Querier:    ipaddr.MustParse(q),
		Authority:  "jp",
	}
}

func TestRecordTextRoundTrip(t *testing.T) {
	r := Record{
		Time:       simtime.Date(2014, 4, 15, 11, 0),
		Originator: ipaddr.MustParse("1.2.3.4"),
		Querier:    ipaddr.MustParse("192.168.0.3"),
		Authority:  "b-root",
		RCode:      3,
	}
	line := string(r.AppendText(nil))
	got, err := ParseRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("round trip: %+v != %+v", got, r)
	}
}

func TestRecordTextProperty(t *testing.T) {
	if err := quick.Check(func(ts int64, o, q uint32, rc uint8) bool {
		r := Record{
			Time:       simtime.Time(ts),
			Originator: ipaddr.Addr(o),
			Querier:    ipaddr.Addr(q),
			Authority:  "m-root",
			RCode:      rc,
		}
		got, err := ParseRecord(string(r.AppendText(nil)))
		return err == nil && got == r
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestParseRecordErrors(t *testing.T) {
	bad := []string{
		"",
		"1\t2\t3",
		"x\t1.2.3.4\t5.6.7.8\tjp\t0",
		"1\tbadip\t5.6.7.8\tjp\t0",
		"1\t1.2.3.4\tbadip\tjp\t0",
		"1\t1.2.3.4\t5.6.7.8\tjp\t999",
		"1\t1.2.3.4\t5.6.7.8\tjp\t0\textra",
	}
	for _, line := range bad {
		if _, err := ParseRecord(line); err == nil {
			t.Errorf("ParseRecord(%q) succeeded", line)
		}
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []Record{
		rec(100, "1.2.3.4", "10.0.0.1"),
		rec(101, "1.2.3.4", "10.0.0.2"),
		rec(150, "5.6.7.8", "10.0.0.1"),
	}
	for _, r := range want {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != len(want) {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestReaderSkipsCommentsAndBlank(t *testing.T) {
	in := "# header comment\n\n100\t1.2.3.4\t10.0.0.1\tjp\t0\n\n# done\n"
	got, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d records, want 1", len(got))
	}
}

func TestReaderReportsLineNumber(t *testing.T) {
	in := "100\t1.2.3.4\t10.0.0.1\tjp\t0\ngarbage line\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Read()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error = %v, want line 2 mention", err)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestDeduperWindow(t *testing.T) {
	d := NewDeduper(30)
	a := rec(100, "1.2.3.4", "10.0.0.1")
	if !d.Keep(a) {
		t.Error("first record dropped")
	}
	if d.Keep(rec(120, "1.2.3.4", "10.0.0.1")) {
		t.Error("repeat within window kept")
	}
	if !d.Keep(rec(130, "1.2.3.4", "10.0.0.1")) {
		t.Error("record at window edge dropped (130-100 >= 30)")
	}
	// Different querier or originator is independent.
	if !d.Keep(rec(131, "1.2.3.4", "10.0.0.9")) {
		t.Error("different querier suppressed")
	}
	if !d.Keep(rec(132, "9.9.9.9", "10.0.0.1")) {
		t.Error("different originator suppressed")
	}
}

func TestDeduperSlidesWithKeptRecords(t *testing.T) {
	// The window anchors on the last *kept* record: 100 keeps, 129 drops,
	// and 131 must still drop because 131-100 >= 30 is false... it is 31,
	// so it keeps. Check the anchor did not slide to 129.
	d := NewDeduper(30)
	d.Keep(rec(100, "1.2.3.4", "10.0.0.1"))
	if d.Keep(rec(129, "1.2.3.4", "10.0.0.1")) {
		t.Fatal("129 kept")
	}
	if !d.Keep(rec(131, "1.2.3.4", "10.0.0.1")) {
		t.Error("131 dropped; suppression anchor slid to a dropped record")
	}
}

func TestDeduperZeroWindow(t *testing.T) {
	d := NewDeduper(0)
	r := rec(1, "1.2.3.4", "10.0.0.1")
	if !d.Keep(r) || !d.Keep(r) {
		t.Error("zero window must keep everything")
	}
}

func TestDeduperReset(t *testing.T) {
	d := NewDeduper(30)
	r := rec(100, "1.2.3.4", "10.0.0.1")
	d.Keep(r)
	d.Reset()
	if !d.Keep(rec(101, "1.2.3.4", "10.0.0.1")) {
		t.Error("record suppressed after Reset")
	}
}

func TestDedupSlice(t *testing.T) {
	in := []Record{
		rec(100, "1.2.3.4", "10.0.0.1"),
		rec(110, "1.2.3.4", "10.0.0.1"),
		rec(140, "1.2.3.4", "10.0.0.1"),
		rec(141, "5.6.7.8", "10.0.0.1"),
	}
	out := Dedup(in, 30)
	if len(out) != 3 {
		t.Fatalf("got %d records, want 3", len(out))
	}
	if out[1].Time != 140 || out[2].Originator != ipaddr.MustParse("5.6.7.8") {
		t.Errorf("unexpected survivors: %+v", out)
	}
}

func TestPersistenceBuckets(t *testing.T) {
	times := []simtime.Time{
		0, 1, 599, // one bucket
		600,        // second bucket
		1200, 1201, // third
	}
	if got := PersistenceBuckets(times); got != 3 {
		t.Errorf("PersistenceBuckets = %d, want 3", got)
	}
	if got := PersistenceBuckets(nil); got != 0 {
		t.Errorf("empty input: %d, want 0", got)
	}
}

func BenchmarkAppendText(b *testing.B) {
	r := rec(1397559600, "203.178.141.194", "10.0.0.1")
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.AppendText(buf[:0])
	}
}

func BenchmarkParseRecord(b *testing.B) {
	line := string(rec(1397559600, "203.178.141.194", "10.0.0.1").AppendText(nil))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRecord(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeduper(b *testing.B) {
	d := NewDeduper(30)
	r := rec(0, "1.2.3.4", "10.0.0.1")
	for i := 0; i < b.N; i++ {
		r.Time = simtime.Time(i)
		r.Querier = ipaddr.Addr(i % 1000)
		d.Keep(r)
	}
}
