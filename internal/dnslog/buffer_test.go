package dnslog

import (
	"testing"

	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/simtime"
)

// fillBuffer appends n records whose Time encodes their append index.
func fillBuffer(b *Buffer, n int) {
	for i := 0; i < n; i++ {
		b.Append(Record{
			Time:       simtime.Time(i),
			Originator: ipaddr.Addr(uint32(i)),
			Querier:    ipaddr.Addr(uint32(i * 7)),
		})
	}
}

// TestBufferAppendFlatten crosses several chunk boundaries and checks
// Flatten preserves append order with an exact-size result.
func TestBufferAppendFlatten(t *testing.T) {
	var b Buffer
	n := 2*bufChunk + 37
	fillBuffer(&b, n)
	if b.Len() != n {
		t.Fatalf("Len = %d, want %d", b.Len(), n)
	}
	out := b.Flatten()
	if len(out) != n || cap(out) != n {
		t.Fatalf("Flatten len=%d cap=%d, want both %d", len(out), cap(out), n)
	}
	for i, r := range out {
		if r.Time != simtime.Time(i) {
			t.Fatalf("record %d out of order: time %d", i, r.Time)
		}
	}
	if b.Len() != n {
		t.Fatal("Flatten must leave the buffer unchanged")
	}
}

// TestBufferRange pins the from-offset math at chunk boundaries.
func TestBufferRange(t *testing.T) {
	var b Buffer
	n := bufChunk + 10
	fillBuffer(&b, n)
	for _, from := range []int{-3, 0, 1, bufChunk - 1, bufChunk, bufChunk + 1, n, n + 5} {
		want := n - from
		if from < 0 {
			want = n
		}
		if want < 0 {
			want = 0
		}
		got := 0
		next := from
		if next < 0 {
			next = 0
		}
		b.Range(from, func(r Record) {
			if r.Time != simtime.Time(next) {
				t.Fatalf("Range(%d): saw time %d, want %d", from, r.Time, next)
			}
			next++
			got++
		})
		if got != want {
			t.Fatalf("Range(%d) visited %d records, want %d", from, got, want)
		}
	}
}

// TestBufferReset pins the reuse contract: Reset drops records but keeps
// chunk storage, and the buffer refills correctly afterwards.
func TestBufferReset(t *testing.T) {
	var b Buffer
	fillBuffer(&b, bufChunk+5)
	chunks := len(b.chunks)
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len = %d after Reset, want 0", b.Len())
	}
	if got := b.Flatten(); len(got) != 0 {
		t.Fatalf("Flatten after Reset returned %d records", len(got))
	}
	b.Range(0, func(Record) { t.Fatal("Range after Reset visited a record") })
	if len(b.chunks) != chunks {
		t.Fatalf("Reset dropped chunks: %d -> %d", chunks, len(b.chunks))
	}
	fillBuffer(&b, 3)
	if b.Len() != 3 || len(b.chunks) != chunks {
		t.Fatalf("refill: len=%d chunks=%d, want 3 records in %d reused chunks",
			b.Len(), len(b.chunks), chunks)
	}
	if out := b.Flatten(); out[0].Time != 0 || out[2].Time != 2 {
		t.Fatalf("refilled records wrong: %v", out)
	}
}
