package dnslog

// bufChunk is the Buffer chunk size: 4096 records ≈ 256 KB per chunk,
// large enough to amortize chunk overhead, small enough that the final
// partial chunk wastes little.
const bufChunk = 4096

// Buffer is an append-only record collector that grows in fixed-size
// chunks instead of reallocating one contiguous slice. A contiguous
// append loop allocates a geometric series of dead backing arrays —
// roughly 5× the final size in total — where the chunked buffer
// allocates each record's storage exactly once. Sensors in dnssim
// collect into a Buffer; consumers either walk it in place with Range
// or pay one exact-size allocation with Flatten.
//
// The zero value is ready to use. A Buffer is not safe for concurrent
// use.
type Buffer struct {
	chunks [][]Record
	cur    int // index of the chunk currently being filled
	n      int
}

// Append adds one record.
func (b *Buffer) Append(r Record) {
	if b.cur >= len(b.chunks) {
		b.chunks = append(b.chunks, make([]Record, 0, bufChunk))
	}
	c := append(b.chunks[b.cur], r)
	b.chunks[b.cur] = c
	if len(c) == bufChunk {
		b.cur++
	}
	b.n++
}

// Len returns the number of records appended since the last Reset.
func (b *Buffer) Len() int { return b.n }

// Range calls fn for each record with index >= from, in append order.
// Every full chunk holds exactly bufChunk records, so from maps straight
// to a chunk and offset.
func (b *Buffer) Range(from int, fn func(Record)) {
	if from < 0 {
		from = 0
	}
	for ci := from / bufChunk; ci <= b.cur && ci < len(b.chunks); ci++ {
		c := b.chunks[ci]
		lo := 0
		if ci == from/bufChunk {
			lo = from % bufChunk
		}
		if lo > len(c) {
			continue
		}
		for _, r := range c[lo:] {
			fn(r)
		}
	}
}

// Flatten copies the records into one new contiguous slice — a single
// exact-size allocation. The buffer is unchanged.
func (b *Buffer) Flatten() []Record {
	out := make([]Record, 0, b.n)
	for ci := 0; ci <= b.cur && ci < len(b.chunks); ci++ {
		out = append(out, b.chunks[ci]...)
	}
	return out
}

// Reset drops the records but keeps every allocated chunk for reuse, so
// interval-by-interval collection stops allocating once the busiest
// interval has been seen.
func (b *Buffer) Reset() {
	for i := range b.chunks {
		b.chunks[i] = b.chunks[i][:0]
	}
	b.cur = 0
	b.n = 0
}
