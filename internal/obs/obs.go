// Package obs is the reproduction's observability layer: a registry of
// labeled counters, gauges, and log-linear histograms, plus simulated-time
// stage spans for the Figure 2 pipeline.
//
// The paper's sensor is an operational system (§III-A collects at busy
// authoritative servers; §VII worries about sensor erosion), so the
// reproduction needs the same visibility a deployment would have: query
// and drop rates at the server, cache hit ratios, per-level attenuation
// through the reverse hierarchy, and per-stage pipeline costs. obs
// provides that without breaking the repository's determinism rules:
//
//   - Metrics are lock-cheap: registration takes the registry mutex once,
//     increments are plain atomics, safe under -race.
//   - Spans are timed by an injectable simtime-compatible Clock, never the
//     wall clock. Simulations and tests install TickClock for exactly
//     reproducible "durations"; operational mains (cmd/) may install
//     simtime.Wall or a finer wall-backed clock.
//   - Snapshots are byte-deterministic: metrics render sorted by fully
//     labeled identity, so two registries fed identically produce
//     identical text and JSON output.
//
// Nil-safety is part of the contract: every method on a nil *Registry,
// *Counter, *Gauge, or *Histogram is a no-op (or zero), so instrumented
// packages hold an optional registry without guarding call sites.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dnsbackscatter/internal/simtime"
)

// Label is one name=value metric dimension.
type Label struct {
	// Key is the dimension name, e.g. "level".
	Key string
	// Value is the dimension value, e.g. "root".
	Value string
}

// L constructs a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil Counter discards increments.
type Counter struct {
	id  string
	v   atomic.Uint64
	win atomic.Pointer[Window]
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// IncAt adds one, attributing the increment to simulated time now so an
// attached Window buckets it. Without a window it is exactly Inc.
func (c *Counter) IncAt(now simtime.Time) { c.AddAt(1, now) }

// AddAt adds n, attributing the increment to simulated time now so an
// attached Window buckets it. Without a window it is exactly Add.
func (c *Counter) AddAt(n uint64, now simtime.Time) {
	if c == nil {
		return
	}
	c.v.Add(n)
	if w := c.win.Load(); w != nil {
		w.add(c.id, int64(n), now)
	}
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil Gauge discards writes.
type Gauge struct {
	id  string
	v   atomic.Int64
	win atomic.Pointer[Window]
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetAt stores v, attributing the reading to simulated time now so an
// attached Window buckets it (last write in a bucket wins). Without a
// window it is exactly Set.
func (g *Gauge) SetAt(v int64, now simtime.Time) {
	if g == nil {
		return
	}
	g.v.Store(v)
	if w := g.win.Load(); w != nil {
		w.set(g.id, v, now)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current reading (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds a process's metrics. Metric constructors are idempotent:
// the same name and label set always returns the same metric, so any
// subsystem may resolve its handles independently. A nil *Registry is a
// valid "observability off" value: constructors return nil metrics and
// spans become no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
	clock    Clock                 // guarded by mu
	window   *Window               // guarded by mu
}

// SetWindow attaches a windowed time-series aggregator: every existing
// and future counter/gauge in the registry routes its IncAt/AddAt/SetAt
// writes into w's buckets. A nil w detaches. Safe to call on a nil
// registry (no-op).
func (r *Registry) SetWindow(w *Window) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.window = w
	for _, c := range r.counters {
		c.win.Store(w)
	}
	for _, g := range r.gauges {
		g.win.Store(w)
	}
}

// Window returns the attached windowed aggregator, or nil.
func (r *Registry) Window() *Window {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.window
}

// NewRegistry returns an empty registry with no clock (span durations read
// as zero until SetClock installs one).
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// metricID renders the canonical identity of a metric: name plus labels
// sorted by key, e.g. `queries_total{authority="jp",level="root"}`. Equal
// identity means the same metric object; snapshots sort by it.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel backslash-escapes quotes and backslashes in a label value so
// rendered identities stay parseable.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `"\`) {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '"' || v[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

// Counter returns (creating if needed) the counter for name and labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[id]
	if !ok {
		c = &Counter{id: id}
		c.win.Store(r.window)
		r.counters[id] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for name and labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[id]
	if !ok {
		g = &Gauge{id: id}
		g.win.Store(r.window)
		r.gauges[id] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram for name and
// labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[id]
	if !ok {
		h = &Histogram{id: id}
		r.hists[id] = h
	}
	return h
}
