package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"dnsbackscatter/internal/simtime"
)

// Clock supplies the instant used to time spans. It is simtime-compatible
// so instrumented packages never read the wall clock themselves:
// simulations and tests install TickClock (exactly reproducible),
// operational mains may install simtime.Wall or a finer wall-backed
// closure (cmd/ is exempt from the determinism check). The unit of span
// durations is whatever the installed clock counts — ticks, seconds, or
// microseconds.
type Clock func() simtime.Time

// TickClock returns a deterministic Clock that advances by step on every
// reading. Span durations then count clock readings between start and
// end, which is a pure function of control flow — two identical runs
// report identical "durations". The returned clock is safe for concurrent
// use.
func TickClock(step simtime.Duration) Clock {
	if step <= 0 {
		step = 1
	}
	var n atomic.Int64
	return func() simtime.Time { return simtime.Time(n.Add(1) * int64(step)) }
}

// SetClock installs the span-timing clock. Nil reverts to the no-clock
// default (spans record zero durations but still count calls).
func (r *Registry) SetClock(c Clock) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = c
}

// now reads the registry clock (0 with no clock installed).
func (r *Registry) now() simtime.Time {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.clock
	r.mu.Unlock()
	if c == nil {
		return 0
	}
	return c()
}

// stageHist is the histogram family every span records into; StageReport
// scans for it.
const stageHist = "stage_ticks"

// Span is one timed pipeline stage execution. Obtain with StartSpan, close
// with End. The zero Span (from a nil registry) is a no-op.
type Span struct {
	reg   *Registry
	stage string
	start simtime.Time
}

// StartSpan begins timing one execution of a named pipeline stage.
func (r *Registry) StartSpan(stage string) Span {
	if r == nil {
		return Span{}
	}
	return Span{reg: r, stage: stage, start: r.now()}
}

// End records the span's duration (in clock units) into the
// stage_ticks{stage=...} histogram.
func (s Span) End() {
	if s.reg == nil {
		return
	}
	d := s.reg.now().Sub(s.start)
	s.reg.Histogram(stageHist, L("stage", s.stage)).Observe(int64(d))
}

// stageRow is one line of the stage report.
type stageRow struct {
	stage string
	h     *Histogram
}

// StageReport renders every recorded pipeline stage as a sorted table:
// calls, total/mean/p50/max duration in clock units, followed by the
// parallel fan-out per stage (shards dispatched and the worker gauge)
// when the parallel pool recorded any. It is deterministic for
// deterministic clocks and empty ("no stages recorded") when nothing
// ran.
func (r *Registry) StageReport() string {
	if r == nil {
		return "no stages recorded\n"
	}
	prefix := stageHist + `{stage="`
	shardPrefix := `parallel_shards_total{stage="`
	workerPrefix := `parallel_workers{stage="`
	r.mu.Lock()
	var rows []stageRow
	for id, h := range r.hists {
		if !strings.HasPrefix(id, prefix) {
			continue
		}
		stage := strings.TrimSuffix(strings.TrimPrefix(id, prefix), `"}`)
		rows = append(rows, stageRow{stage: stage, h: h})
	}
	shards := map[string]uint64{}
	for id, c := range r.counters {
		if strings.HasPrefix(id, shardPrefix) {
			stage := strings.TrimSuffix(strings.TrimPrefix(id, shardPrefix), `"}`)
			shards[stage] = c.Value()
		}
	}
	workers := map[string]int64{}
	for id, g := range r.gauges {
		if strings.HasPrefix(id, workerPrefix) {
			stage := strings.TrimSuffix(strings.TrimPrefix(id, workerPrefix), `"}`)
			workers[stage] = g.Value()
		}
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].stage < rows[j].stage })
	if len(rows) == 0 {
		return "no stages recorded\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %12s %12s %12s\n",
		"stage", "calls", "total", "mean", "p50", "max")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s %8d %12d %12.1f %12d %12d\n",
			row.stage, row.h.Count(), row.h.Sum(), row.h.Mean(),
			row.h.Quantile(0.5), row.h.Max())
	}
	if len(shards) > 0 {
		var stages []string
		for s := range shards {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		fmt.Fprintf(&b, "\n%-12s %8s %8s\n", "parallel", "shards", "workers")
		for _, s := range stages {
			fmt.Fprintf(&b, "%-12s %8d %8d\n", s, shards[s], workers[s])
		}
	}
	return b.String()
}
