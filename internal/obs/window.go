package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dnsbackscatter/internal/simtime"
)

// Window buckets metric writes by simulated-time interval, turning
// run-total counters into time series: attach one to a Registry with
// SetWindow and every IncAt/AddAt/SetAt lands in the bucket of its
// timestamp. Counters accumulate per-bucket deltas; gauges keep the last
// value written in each bucket. Like the rest of obs, renders are sorted
// by (metric identity, bucket) and therefore byte-deterministic, and a
// nil *Window discards writes.
//
// Only call sites that carry a simulated timestamp feed the window (the
// *At variants); plain Inc/Add/Set writes stay totals-only. That split is
// deliberate: metrics whose values depend on scheduling (worker pools)
// have no meaningful simulated time and must not leak wall-clock order
// into a deterministic artifact.
type Window struct {
	mu       sync.Mutex
	width    simtime.Duration
	counters map[string]map[simtime.Time]int64 // metric → bucket → delta sum, guarded by mu
	gauges   map[string]map[simtime.Time]int64 // metric → bucket → last value, guarded by mu
}

// NewWindow returns a window bucketing by the given interval width in
// simulated seconds (width < 1 is clamped to 1).
func NewWindow(width simtime.Duration) *Window {
	if width < 1 {
		width = 1
	}
	return &Window{
		width:    width,
		counters: make(map[string]map[simtime.Time]int64),
		gauges:   make(map[string]map[simtime.Time]int64),
	}
}

// Width returns the bucket width (0 for a nil window).
func (w *Window) Width() simtime.Duration {
	if w == nil {
		return 0
	}
	return w.width
}

// bucket floors t to its containing interval start.
func (w *Window) bucket(t simtime.Time) simtime.Time {
	return t - t%simtime.Time(w.width)
}

// add accumulates a counter delta into t's bucket.
func (w *Window) add(id string, n int64, t simtime.Time) {
	if w == nil {
		return
	}
	w.mu.Lock()
	m, ok := w.counters[id]
	if !ok {
		m = make(map[simtime.Time]int64)
		w.counters[id] = m
	}
	m[w.bucket(t)] += n
	w.mu.Unlock()
}

// set records a gauge value into t's bucket (last write wins).
func (w *Window) set(id string, v int64, t simtime.Time) {
	if w == nil {
		return
	}
	w.mu.Lock()
	m, ok := w.gauges[id]
	if !ok {
		m = make(map[simtime.Time]int64)
		w.gauges[id] = m
	}
	m[w.bucket(t)] = v
	w.mu.Unlock()
}

// Point is one (bucket start, value) sample of a windowed series.
type Point struct {
	// T is the bucket's start time in simulated Unix seconds.
	T simtime.Time `json:"t"`
	// V is the counter delta (or last gauge value) in the bucket.
	V int64 `json:"v"`
}

// Series is one metric's windowed time series.
type Series struct {
	// Metric is the fully labeled metric identity.
	Metric string `json:"metric"`
	// Points are the non-empty buckets in time order.
	Points []Point `json:"points"`
}

// Timeseries is the windowed snapshot document: what SnapshotJSON writes
// and ParseTimeseries reads. cmd/bstrend and bsserve's /timeseries both
// speak exactly this document, so they cannot disagree.
type Timeseries struct {
	// Width is the bucket width in simulated seconds.
	Width simtime.Duration `json:"width"`
	// Series are all windowed metrics sorted by identity.
	Series []Series `json:"series"`
}

// series assembles the sorted document under the window lock.
func (w *Window) series() Timeseries {
	doc := Timeseries{Series: []Series{}}
	if w == nil {
		return doc
	}
	w.mu.Lock()
	doc.Width = w.width
	collect := func(src map[string]map[simtime.Time]int64) {
		for id, buckets := range src {
			s := Series{Metric: id, Points: make([]Point, 0, len(buckets))}
			for t, v := range buckets {
				s.Points = append(s.Points, Point{T: t, V: v})
			}
			sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].T < s.Points[j].T })
			doc.Series = append(doc.Series, s)
		}
	}
	collect(w.counters)
	collect(w.gauges)
	w.mu.Unlock()
	sort.Slice(doc.Series, func(i, j int) bool { return doc.Series[i].Metric < doc.Series[j].Metric })
	return doc
}

// Timeseries assembles the window's sorted snapshot document — the
// parsed form of SnapshotJSON, for in-process consumers (the alert
// engine) that query series without a marshal round-trip. Nil windows
// return an empty document.
func (w *Window) Timeseries() Timeseries { return w.series() }

// Query returns one metric's windowed series with points in bucket
// order, and whether the metric has recorded any bucket.
func (w *Window) Query(metric string) (Series, bool) {
	if w == nil {
		return Series{}, false
	}
	w.mu.Lock()
	src, ok := w.counters[metric]
	if !ok {
		src, ok = w.gauges[metric]
	}
	s := Series{Metric: metric, Points: make([]Point, 0, len(src))}
	for t, v := range src {
		s.Points = append(s.Points, Point{T: t, V: v})
	}
	w.mu.Unlock()
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].T < s.Points[j].T })
	return s, ok
}

// Metrics returns the sorted identities of every windowed metric.
func (w *Window) Metrics() []string {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	out := make([]string, 0, len(w.counters)+len(w.gauges))
	for id := range w.counters {
		out = append(out, id)
	}
	for id := range w.gauges {
		out = append(out, id)
	}
	w.mu.Unlock()
	sort.Strings(out)
	return out
}

// Query returns the named series from a parsed document (series are
// sorted by identity, so the lookup is a binary search).
func (ts Timeseries) Query(metric string) (Series, bool) {
	i := sort.Search(len(ts.Series), func(i int) bool { return ts.Series[i].Metric >= metric })
	if i < len(ts.Series) && ts.Series[i].Metric == metric {
		return ts.Series[i], true
	}
	return Series{}, false
}

// Range returns the earliest and latest bucket starts across every
// series in the document; ok is false for an empty document.
func (ts Timeseries) Range() (lo, hi simtime.Time, ok bool) {
	for _, s := range ts.Series {
		if len(s.Points) == 0 {
			continue
		}
		first, last := s.Points[0].T, s.Points[len(s.Points)-1].T
		if !ok {
			lo, hi, ok = first, last, true
			continue
		}
		lo, hi = min(lo, first), max(hi, last)
	}
	return lo, hi, ok
}

// Snapshot renders the window as sorted text, one bucket per line:
//
//	dnssim_queries_total{level="root"}[2014-04-07T00:00:00Z] 42
//
// Lines sort by (metric identity, bucket), so identically fed windows
// render byte-identical output.
func (w *Window) Snapshot() []byte {
	var b strings.Builder
	for _, s := range w.series().Series {
		for _, p := range s.Points {
			b.WriteString(s.Metric)
			b.WriteByte('[')
			b.WriteString(p.T.String())
			b.WriteString("] ")
			b.WriteString(strconv.FormatInt(p.V, 10))
			b.WriteByte('\n')
		}
	}
	return []byte(b.String())
}

// SnapshotJSON renders the window as the Timeseries JSON document with
// the same sorted-identity determinism guarantee as Snapshot.
func (w *Window) SnapshotJSON() []byte {
	out, err := json.MarshalIndent(w.series(), "", "  ")
	if err != nil {
		// The document is built from plain structs; Marshal cannot fail.
		return []byte("{}")
	}
	return append(out, '\n')
}

// ParseTimeseries parses a SnapshotJSON document. Consumers (cmd/bstrend)
// read the rendered document rather than re-aggregating, so every view of
// a run's time series comes from one artifact.
func ParseTimeseries(data []byte) (Timeseries, error) {
	var doc Timeseries
	if err := json.Unmarshal(data, &doc); err != nil {
		return Timeseries{}, fmt.Errorf("obs: parse timeseries: %w", err)
	}
	return doc, nil
}

// sparkLevels are the plain-text sparkline rungs, lowest to highest.
const sparkLevels = `_.:-=+*#%@`

// SparkSeries renders one series as a plain-text sparkline over its
// bucket range (missing buckets read as zero), annotated with the value
// range, e.g. `_.:=@#:.  min=0 max=812`.
func SparkSeries(s Series, width simtime.Duration) string {
	if len(s.Points) == 0 || width < 1 {
		return ""
	}
	lo, hi := s.Points[0].T, s.Points[len(s.Points)-1].T
	n := int((hi-lo)/simtime.Time(width)) + 1
	const maxCols = 120
	if n > maxCols {
		n = maxCols
	}
	vals := make([]int64, n)
	var vmax int64
	for _, p := range s.Points {
		i := int((p.T - lo) / simtime.Time(width))
		if i >= n {
			i = n - 1
		}
		vals[i] += p.V
		if vals[i] > vmax {
			vmax = vals[i]
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if vmax > 0 {
			idx = int(v * int64(len(sparkLevels)-1) / vmax)
		}
		b.WriteByte(sparkLevels[idx])
	}
	return fmt.Sprintf("%s  max=%d", b.String(), vmax)
}

// Sparklines renders every windowed series as a sorted block of
// `metric  sparkline  max=N` lines — the /timeseries plain-text view.
func (w *Window) Sparklines() []byte {
	doc := w.series()
	var b strings.Builder
	for _, s := range doc.Series {
		fmt.Fprintf(&b, "%-60s %s\n", s.Metric, SparkSeries(s, doc.Width))
	}
	return []byte(b.String())
}
