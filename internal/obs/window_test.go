package obs

import (
	"bytes"
	"strings"
	"testing"

	"dnsbackscatter/internal/simtime"
)

func TestWindowBucketsCounterDeltas(t *testing.T) {
	reg := NewRegistry()
	win := NewWindow(10)
	reg.SetWindow(win)
	if reg.Window() != win {
		t.Fatal("Window accessor does not return the installed window")
	}
	c := reg.Counter("events_total", L("class", "scan"))
	c.IncAt(3)
	c.IncAt(9)
	c.AddAt(5, 10)
	c.Inc() // plain writes are totals-only: no bucket
	if c.Value() != 8 {
		t.Fatalf("counter total = %d, want 8", c.Value())
	}
	got := string(win.Snapshot())
	want := `events_total{class="scan"}[1970-01-01T00:00:00Z] 2
events_total{class="scan"}[1970-01-01T00:00:10Z] 5
`
	if got != want {
		t.Fatalf("snapshot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWindowGaugeLastWriteWins(t *testing.T) {
	reg := NewRegistry()
	reg.SetWindow(NewWindow(60))
	g := reg.Gauge("campaigns")
	g.SetAt(5, 10)
	g.SetAt(9, 55) // same bucket: overwrites
	g.SetAt(2, 61) // next bucket
	g.Set(42)      // plain write: totals-only
	doc, err := ParseTimeseries(reg.Window().SnapshotJSON())
	if err != nil {
		t.Fatal(err)
	}
	if doc.Width != 60 || len(doc.Series) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	pts := doc.Series[0].Points
	if len(pts) != 2 || pts[0].V != 9 || pts[1].V != 2 {
		t.Fatalf("points = %+v, want [{0 9} {60 2}]", pts)
	}
}

func TestSetWindowRetrofitsExistingMetrics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("early_total") // created before the window
	g := reg.Gauge("early_gauge")
	reg.SetWindow(NewWindow(1))
	c.IncAt(7)
	g.SetAt(3, 7)
	if got := string(reg.Window().Snapshot()); !strings.Contains(got, "early_total[") ||
		!strings.Contains(got, "early_gauge[") {
		t.Fatalf("pre-window metrics missing from buckets:\n%s", got)
	}
}

func TestWindowNilSafety(t *testing.T) {
	var w *Window
	if w.Width() != 0 {
		t.Error("nil Width != 0")
	}
	w.add("x", 1, 0)
	w.set("x", 1, 0)
	if len(w.Snapshot()) != 0 {
		t.Error("nil Snapshot not empty")
	}
	if doc := w.series(); len(doc.Series) != 0 {
		t.Error("nil series not empty")
	}
	if len(w.Sparklines()) != 0 {
		t.Error("nil Sparklines not empty")
	}

	// A registry without a window: *At writes stay totals-only.
	reg := NewRegistry()
	c := reg.Counter("no_window_total")
	c.IncAt(5)
	if c.Value() != 1 {
		t.Error("IncAt without a window lost the total")
	}
	if reg.Window() != nil {
		t.Error("registry window not nil by default")
	}
}

func TestWindowWidthClamp(t *testing.T) {
	if w := NewWindow(0); w.Width() != 1 {
		t.Fatalf("Width = %d, want clamp to 1", w.Width())
	}
	// The clamp also guards the bucketing math: a clamped window still
	// floors timestamps without dividing by zero.
	w := NewWindow(-5)
	if w.Width() != 1 {
		t.Fatalf("Width = %d, want clamp to 1", w.Width())
	}
	w.add("m_total", 1, 42)
	if s, ok := w.Query("m_total"); !ok || len(s.Points) != 1 || s.Points[0].T != 42 {
		t.Fatalf("clamped-width write landed at %+v", s.Points)
	}
}

// TestWindowEmptySnapshot pins the empty-window renders the alert
// engine and /timeseries rely on: a well-formed document with zero
// series, an empty text snapshot, and an empty Range.
func TestWindowEmptySnapshot(t *testing.T) {
	w := NewWindow(60)
	if got := string(w.Snapshot()); got != "" {
		t.Errorf("empty Snapshot = %q", got)
	}
	doc, err := ParseTimeseries(w.SnapshotJSON())
	if err != nil {
		t.Fatalf("empty SnapshotJSON does not parse: %v", err)
	}
	if doc.Width != 60 || len(doc.Series) != 0 {
		t.Errorf("empty doc = %+v", doc)
	}
	if _, _, ok := w.Timeseries().Range(); ok {
		t.Error("empty Range reported ok")
	}
	if got := w.Metrics(); len(got) != 0 {
		t.Errorf("empty Metrics = %v", got)
	}
}

// TestWindowOutOfOrderWrites pins that *At writes landing out of bucket
// order (parallel workers commit in scheduling order) still render in
// time order, byte-identically to the in-order run.
func TestWindowOutOfOrderWrites(t *testing.T) {
	build := func(times []int) *Window {
		w := NewWindow(10)
		for _, at := range times {
			w.add("m_total", 1, simtime.Time(at))
		}
		return w
	}
	ordered := build([]int{3, 12, 25, 27, 48})
	scrambled := build([]int{48, 25, 3, 27, 12})
	if !bytes.Equal(ordered.SnapshotJSON(), scrambled.SnapshotJSON()) {
		t.Fatal("bucket order depends on write order")
	}
	s, ok := scrambled.Query("m_total")
	if !ok {
		t.Fatal("metric missing")
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i-1].T >= s.Points[i].T {
			t.Fatalf("points unsorted: %+v", s.Points)
		}
	}
	if lo, hi, ok := scrambled.Timeseries().Range(); !ok || lo != 0 || hi != 40 {
		t.Fatalf("Range = (%d, %d, %v), want (0, 40, true)", lo, hi, ok)
	}
}

// TestWindowQueryAPI pins the series-query surface: hit, miss, gauge
// fallback, sorted Metrics, and the document-side binary search.
func TestWindowQueryAPI(t *testing.T) {
	w := NewWindow(10)
	w.add("b_total", 2, 5)
	w.add("b_total", 3, 15)
	w.set("a_gauge", 7, 25)
	if s, ok := w.Query("b_total"); !ok || len(s.Points) != 2 || s.Points[1].V != 3 {
		t.Fatalf("counter query = %+v, %v", s, ok)
	}
	if s, ok := w.Query("a_gauge"); !ok || len(s.Points) != 1 || s.Points[0].V != 7 {
		t.Fatalf("gauge query = %+v, %v", s, ok)
	}
	if _, ok := w.Query("missing"); ok {
		t.Error("missing metric reported ok")
	}
	if got := w.Metrics(); len(got) != 2 || got[0] != "a_gauge" || got[1] != "b_total" {
		t.Fatalf("Metrics = %v", got)
	}
	doc := w.Timeseries()
	if s, ok := doc.Query("b_total"); !ok || len(s.Points) != 2 {
		t.Fatalf("doc query = %+v, %v", s, ok)
	}
	if _, ok := doc.Query("zzz"); ok {
		t.Error("doc query invented a series")
	}
	// Nil-window query surface.
	var nilW *Window
	if _, ok := nilW.Query("x"); ok || nilW.Metrics() != nil {
		t.Error("nil window query surface not empty")
	}
}

func TestWindowSnapshotDeterminism(t *testing.T) {
	build := func(order []int) []byte {
		reg := NewRegistry()
		reg.SetWindow(NewWindow(5))
		a := reg.Counter("a_total")
		b := reg.Counter("b_total", L("x", "1"))
		for _, i := range order {
			a.IncAt(simtime.Time(i))
			b.AddAt(uint64(i%3), simtime.Time(i*2))
		}
		return reg.Window().SnapshotJSON()
	}
	fwd := build([]int{1, 2, 3, 7, 11, 13})
	rev := build([]int{13, 11, 7, 3, 2, 1})
	if !bytes.Equal(fwd, rev) {
		t.Fatalf("window JSON depends on write order:\n%s\nvs\n%s", fwd, rev)
	}
}

func TestParseTimeseriesError(t *testing.T) {
	if _, err := ParseTimeseries([]byte("{nope")); err == nil {
		t.Error("malformed document accepted")
	}
}

func TestSparkSeries(t *testing.T) {
	s := Series{Metric: "m", Points: []Point{{T: 0, V: 0}, {T: 10, V: 5}, {T: 20, V: 10}}}
	got := SparkSeries(s, 10)
	if !strings.HasSuffix(got, "max=10") {
		t.Fatalf("SparkSeries = %q", got)
	}
	strip := strings.Fields(got)[0]
	if len(strip) != 3 || strip[0] != '_' || strip[2] != '@' {
		t.Fatalf("sparkline strip = %q, want low-to-high ramp", strip)
	}
	if SparkSeries(Series{}, 10) != "" {
		t.Error("empty series rendered non-empty")
	}

	// Ranges wider than 120 columns compress into the last column.
	wide := Series{Metric: "w", Points: []Point{{T: 0, V: 1}, {T: 10 * 1000, V: 3}}}
	if out := SparkSeries(wide, 10); len(strings.Fields(out)[0]) != 120 {
		t.Errorf("wide series strip = %d cols, want 120", len(strings.Fields(out)[0]))
	}
}

func TestSparklinesBlock(t *testing.T) {
	reg := NewRegistry()
	reg.SetWindow(NewWindow(2))
	reg.Counter("zz_total").IncAt(0)
	reg.Counter("aa_total").IncAt(2)
	out := string(reg.Window().Sparklines())
	ai, zi := strings.Index(out, "aa_total"), strings.Index(out, "zz_total")
	if ai < 0 || zi < 0 || ai > zi {
		t.Fatalf("sparklines unsorted or missing:\n%s", out)
	}
}
