package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"dnsbackscatter/internal/simtime"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("q_total", L("a", "x"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("q_total", L("a", "x")) != c {
		t.Error("same name+labels did not return the same counter")
	}
	if r.Counter("q_total", L("a", "y")) == c {
		t.Error("different labels returned the same counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	r.SetClock(TickClock(1))
	sp := r.StartSpan("s")
	sp.End()
	if len(r.Snapshot()) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	if got := r.StageReport(); got != "no stages recorded\n" {
		t.Errorf("nil registry stage report = %q", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", L("k1", "v1"), L("k2", "v2"))
	b := r.Counter("m", L("k2", "v2"), L("k1", "v1"))
	if a != b {
		t.Error("label order changed metric identity")
	}
}

// TestHistogramBuckets pins the log-linear layout: unit buckets below 8,
// then 8 sub-buckets per power of two.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v   uint64
		idx int
	}{
		{0, 0}, {1, 1}, {7, 7}, // exact unit buckets
		{8, 8}, {15, 15}, // first log decade, width 1
		{16, 16}, {17, 16}, {31, 23}, // width 2
		{32, 24}, {63, 31}, // width 4
		{64, 32}, {1 << 20, 8 * 18},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.idx {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.idx)
		}
	}
	// Every bucket's lower bound maps back to that bucket, and the value
	// just below it maps to the previous one.
	for i := 1; i < 100; i++ {
		lo := bucketLower(i)
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(bucketLower(%d)=%d) = %d", i, lo, got)
		}
		if got := bucketIndex(lo - 1); got != i-1 {
			t.Fatalf("bucketIndex(%d) = %d, want %d", lo-1, got, i-1)
		}
		if w := bucketWidth(i); bucketLower(i+1)-lo != w {
			t.Fatalf("bucketWidth(%d) = %d, want %d", i, w, bucketLower(i+1)-lo)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewRegistry().Histogram("lat")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Sum() != 500500 || h.Max() != 1000 {
		t.Fatalf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	// Log-linear buckets guarantee ≤12.5% relative error.
	checks := []struct {
		q    float64
		want float64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}, {0, 1}, {1, 1000}}
	for _, c := range checks {
		got := float64(h.Quantile(c.q))
		if got < c.want*0.875 || got > c.want*1.125 {
			t.Errorf("Quantile(%g) = %g, want within 12.5%% of %g", c.q, got, c.want)
		}
	}
	if h.Mean() != 500.5 {
		t.Errorf("Mean = %g, want 500.5", h.Mean())
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewRegistry().Histogram("d")
	h.Observe(-5)
	if h.Count() != 1 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("negative observation not clamped: count=%d sum=%d", h.Count(), h.Sum())
	}
}

// feed drives one registry through a fixed mixed workload.
func feed(r *Registry) {
	r.SetClock(TickClock(2))
	for i := 0; i < 50; i++ {
		r.Counter("queries_total", L("authority", "jp")).Inc()
		if i%3 == 0 {
			r.Counter("queries_total", L("authority", "b-root")).Add(2)
		}
		r.Histogram("batch_size").Observe(int64(i * i))
	}
	r.Gauge("campaigns", L("class", "scan")).Set(42)
	for i := 0; i < 4; i++ {
		sp := r.StartSpan("dedup")
		r.now() // nested clock reading, like instrumented work would make
		sp.End()
	}
}

// TestSnapshotDeterminism is the layer's core guarantee: two registries
// fed identically produce byte-identical text and JSON snapshots.
func TestSnapshotDeterminism(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	feed(a)
	feed(b)
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Errorf("text snapshots differ:\n%s\n----\n%s", a.Snapshot(), b.Snapshot())
	}
	if !bytes.Equal(a.SnapshotJSON(), b.SnapshotJSON()) {
		t.Errorf("JSON snapshots differ:\n%s\n----\n%s", a.SnapshotJSON(), b.SnapshotJSON())
	}
	text := string(a.Snapshot())
	for _, want := range []string{
		`queries_total{authority="jp"} 50`,
		`queries_total{authority="b-root"} 34`,
		`campaigns{class="scan"} 42`,
		`batch_size_count 50`,
		`stage_ticks_count{stage="dedup"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot missing %q:\n%s", want, text)
		}
	}
	var doc map[string]any
	if err := json.Unmarshal(a.SnapshotJSON(), &doc); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v", err)
	}
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Errorf("snapshot lines not strictly sorted: %q >= %q", lines[i-1], lines[i])
		}
	}
}

// TestSpanTicks checks the deterministic span arithmetic: with a tick
// clock, a span's duration counts the clock readings between start and
// end.
func TestSpanTicks(t *testing.T) {
	r := NewRegistry()
	r.SetClock(TickClock(1))
	sp := r.StartSpan("extract") // reading 1
	sp.End()                     // reading 2: duration 1
	sp = r.StartSpan("extract")  // reading 3
	r.now()                      // reading 4
	r.now()                      // reading 5
	sp.End()                     // reading 6: duration 3
	h := r.Histogram(stageHist, L("stage", "extract"))
	if h.Count() != 2 || h.Sum() != 4 || h.Max() != 3 {
		t.Errorf("span histogram count=%d sum=%d max=%d, want 2/4/3", h.Count(), h.Sum(), h.Max())
	}
	rep := r.StageReport()
	if !strings.Contains(rep, "extract") {
		t.Errorf("stage report missing stage:\n%s", rep)
	}
}

func TestStageReportSorted(t *testing.T) {
	r := NewRegistry()
	r.SetClock(TickClock(1))
	for _, s := range []string{"filter", "dedup", "extract", "classify"} {
		sp := r.StartSpan(s)
		sp.End()
	}
	rep := r.StageReport()
	order := []string{"classify", "dedup", "extract", "filter"}
	last := -1
	for _, s := range order {
		i := strings.Index(rep, s)
		if i < 0 {
			t.Fatalf("stage %q missing from report:\n%s", s, rep)
		}
		if i < last {
			t.Errorf("stage %q out of order in report:\n%s", s, rep)
		}
		last = i
	}
}

// TestConcurrentIncrements exercises the atomic paths under the race
// detector (internal/obs is in the Makefile's RACE_PKGS) and checks that
// no increment is lost.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	r.SetClock(TickClock(1))
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared_total")
			h := r.Histogram("shared_hist")
			g := r.Gauge("shared_gauge")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i % 100))
				g.Add(1)
				if i%1000 == 0 {
					sp := r.StartSpan("worker")
					sp.End()
					_ = r.Snapshot() // concurrent reads must be safe too
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared_hist").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("shared_gauge").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
}

func TestEscapedLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", L("k", `a"b\c`)).Inc()
	text := string(r.Snapshot())
	if !strings.Contains(text, `m{k="a\"b\\c"} 1`) {
		t.Errorf("label escaping wrong:\n%s", text)
	}
}

func TestClockUnits(t *testing.T) {
	// A clock in simulated seconds: spans measure simulated durations.
	r := NewRegistry()
	now := simtime.Date(2014, 4, 15, 11, 0)
	r.SetClock(func() simtime.Time { return now })
	sp := r.StartSpan("interval")
	now = now.Add(simtime.Hour)
	sp.End()
	h := r.Histogram(stageHist, L("stage", "interval"))
	if h.Sum() != uint64(simtime.Hour) {
		t.Errorf("span duration = %d, want %d", h.Sum(), simtime.Hour)
	}
}
