package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: log-linear, HDR-style. Values below subCount
// get exact unit buckets; above that, each power-of-two range is split
// into subCount linear sub-buckets, so relative error is bounded by
// 1/subCount (12.5%) at any magnitude. 512 buckets cover the full uint64
// range.
const (
	histSubBits  = 3
	histSubCount = 1 << histSubBits
	histBuckets  = 512
)

// Histogram records a distribution of non-negative integer observations
// (span durations in clock units, batch sizes, ...). Observations are
// atomic; a nil Histogram discards them.
type Histogram struct {
	id      string
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// bucketIndex maps a value to its log-linear bucket.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(v) - histSubBits - 1
	idx := exp<<histSubBits + int(v>>uint(exp))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketLower returns the smallest value mapping to bucket i.
func bucketLower(i int) uint64 {
	if i < histSubCount {
		return uint64(i)
	}
	exp := i>>histSubBits - 1
	sub := uint64(i - exp<<histSubBits)
	return sub << uint(exp)
}

// bucketWidth returns the value span of bucket i.
func bucketWidth(i int) uint64 {
	if i < histSubCount {
		return 1
	}
	return uint64(1) << uint(i>>histSubBits-1)
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	u := uint64(0)
	if v > 0 {
		u = uint64(v)
	}
	h.count.Add(1)
	h.sum.Add(u)
	h.buckets[bucketIndex(u)].Add(1)
	for {
		cur := h.max.Load()
		if u <= cur || h.max.CompareAndSwap(cur, u) {
			return
		}
	}
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observation seen.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket counts:
// the midpoint of the bucket holding the rank-⌈q·n⌉ observation. The
// estimate is exact for values below 8 and within 12.5% above, and is a
// pure function of the observation multiset — identical feeds give
// identical estimates.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total-1))
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum > rank {
			return bucketLower(i) + bucketWidth(i)/2
		}
	}
	return bucketLower(histBuckets-1) + bucketWidth(histBuckets-1)/2
}

// Mean returns the arithmetic mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}
