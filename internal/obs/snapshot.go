package obs

import (
	"encoding/json"
	"sort"
	"strconv"
	"strings"
)

// Snapshot renders every metric as sorted text, one metric per line:
//
//	dnsserver_queries_total{authority="final"} 42
//	stage_ticks_count{stage="dedup"} 4
//
// Counters and gauges emit one line; histograms emit _count, _sum, _p50,
// _p90, _p99, and _max lines. Lines are sorted lexically by metric
// identity, so two registries fed identically produce byte-identical
// output — tests assert on the exact bytes, and /metrics diffs are
// meaningful.
func (r *Registry) Snapshot() []byte {
	if r == nil {
		return []byte{}
	}
	var lines []string
	r.mu.Lock()
	for id, c := range r.counters {
		lines = append(lines, id+" "+strconv.FormatUint(c.Value(), 10))
	}
	for id, g := range r.gauges {
		lines = append(lines, id+" "+strconv.FormatInt(g.Value(), 10))
	}
	for id, h := range r.hists {
		name, labels := splitID(id)
		suffix := func(s string, v uint64) string {
			return name + "_" + s + labels + " " + strconv.FormatUint(v, 10)
		}
		lines = append(lines,
			suffix("count", h.Count()),
			suffix("sum", h.Sum()),
			suffix("p50", h.Quantile(0.5)),
			suffix("p90", h.Quantile(0.9)),
			suffix("p99", h.Quantile(0.99)),
			suffix("max", h.Max()))
	}
	r.mu.Unlock()
	sort.Strings(lines)
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// splitID separates a metric identity into base name and label block
// (`x{a="b"}` → `x`, `{a="b"}`).
func splitID(id string) (name, labels string) {
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[:i], id[i:]
	}
	return id, ""
}

// counterJSON is one counter or gauge in the JSON snapshot.
type counterJSON struct {
	Metric string `json:"metric"`
	Value  int64  `json:"value"`
}

// histJSON is one histogram in the JSON snapshot.
type histJSON struct {
	Metric string  `json:"metric"`
	Count  uint64  `json:"count"`
	Sum    uint64  `json:"sum"`
	Mean   float64 `json:"mean"`
	P50    uint64  `json:"p50"`
	P90    uint64  `json:"p90"`
	P99    uint64  `json:"p99"`
	Max    uint64  `json:"max"`
}

// snapshotJSON is the full JSON snapshot document.
type snapshotJSON struct {
	Counters   []counterJSON `json:"counters"`
	Gauges     []counterJSON `json:"gauges"`
	Histograms []histJSON    `json:"histograms"`
}

// SnapshotJSON renders every metric as a JSON document with the same
// determinism guarantee as Snapshot: entries sorted by metric identity.
func (r *Registry) SnapshotJSON() []byte {
	doc := snapshotJSON{
		Counters:   []counterJSON{},
		Gauges:     []counterJSON{},
		Histograms: []histJSON{},
	}
	if r != nil {
		r.mu.Lock()
		for id, c := range r.counters {
			doc.Counters = append(doc.Counters, counterJSON{Metric: id, Value: int64(c.Value())})
		}
		for id, g := range r.gauges {
			doc.Gauges = append(doc.Gauges, counterJSON{Metric: id, Value: g.Value()})
		}
		for id, h := range r.hists {
			doc.Histograms = append(doc.Histograms, histJSON{
				Metric: id, Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
				P50: h.Quantile(0.5), P90: h.Quantile(0.9), P99: h.Quantile(0.99),
				Max: h.Max(),
			})
		}
		r.mu.Unlock()
	}
	sort.Slice(doc.Counters, func(i, j int) bool { return doc.Counters[i].Metric < doc.Counters[j].Metric })
	sort.Slice(doc.Gauges, func(i, j int) bool { return doc.Gauges[i].Metric < doc.Gauges[j].Metric })
	sort.Slice(doc.Histograms, func(i, j int) bool { return doc.Histograms[i].Metric < doc.Histograms[j].Metric })
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// The document is built from plain structs; Marshal cannot fail.
		return []byte("{}")
	}
	return append(out, '\n')
}
