// Package classify implements the sensor pipeline of Figure 2: interval
// logs → deduplication → analyzable originators → feature vectors →
// trained classifier → application classes, plus the training-over-time
// strategies of §III-E / §V (train once, retrain daily on fresh features,
// automatically grow the labeled set, and recurring expert curation).
package classify

import (
	"errors"
	"fmt"
	"sort"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/features"
	"dnsbackscatter/internal/groundtruth"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/ml"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/parallel"
	"dnsbackscatter/internal/prof"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

// Snapshot is one observation interval's extracted view: the feature
// vector of every analyzable originator.
type Snapshot struct {
	Start   simtime.Time
	Dur     simtime.Duration
	Vectors []*features.Vector

	byOrig map[ipaddr.Addr]*features.Vector
}

// Snap extracts a snapshot from interval records.
func Snap(recs []dnslog.Record, x *features.Extractor, start simtime.Time, dur simtime.Duration) *Snapshot {
	s := &Snapshot{Start: start, Dur: dur, Vectors: x.Extract(recs, start, dur)}
	s.index()
	return s
}

func (s *Snapshot) index() {
	s.byOrig = make(map[ipaddr.Addr]*features.Vector, len(s.Vectors))
	for _, v := range s.Vectors {
		s.byOrig[v.Originator] = v
	}
}

// Vector returns the snapshot's vector for an originator, if analyzable.
func (s *Snapshot) Vector(a ipaddr.Addr) (*features.Vector, bool) {
	v, ok := s.byOrig[a]
	return v, ok
}

// Ranked returns originator addresses by descending footprint.
func (s *Snapshot) Ranked() []ipaddr.Addr {
	out := make([]ipaddr.Addr, len(s.Vectors))
	for i, v := range s.Vectors {
		out[i] = v.Originator
	}
	return out
}

// SnapIntervals splits a time-ordered record stream into consecutive
// intervals of length dur starting at start and snapshots each. Intervals
// with no analyzable originator still appear (empty), so time series stay
// aligned.
func SnapIntervals(recs []dnslog.Record, x *features.Extractor, start simtime.Time, total, dur simtime.Duration) []*Snapshot {
	n := int((total + dur - 1) / dur)
	// Two passes — count, prefix-sum, fill — partition the records into
	// one exact-size backing array instead of n growing appends. Fill
	// order follows the stream, so each bucket keeps the per-pair time
	// order dedup depends on.
	counts := make([]int, n+1)
	bucketOf := func(r *dnslog.Record) int {
		i := int(r.Time.Sub(start) / dur)
		if i < 0 || i >= n {
			return -1
		}
		return i
	}
	total2 := 0
	for i := range recs {
		if b := bucketOf(&recs[i]); b >= 0 {
			counts[b]++
			total2++
		}
	}
	offs := make([]int, n+1)
	for i := 0; i < n; i++ {
		offs[i+1] = offs[i] + counts[i]
	}
	buf := make([]dnslog.Record, total2)
	pos := make([]int, n)
	copy(pos, offs[:n])
	for i := range recs {
		if b := bucketOf(&recs[i]); b >= 0 {
			buf[pos[b]] = recs[i]
			pos[b]++
		}
	}
	out := make([]*Snapshot, n)
	for i := 0; i < n; i++ {
		out[i] = Snap(buf[offs[i]:offs[i+1]], x, start.Add(simtime.Duration(i)*dur), dur)
	}
	return out
}

// Pipeline holds the classification configuration.
type Pipeline struct {
	Trainer ml.Trainer
	// Votes > 1 trains that many instances and majority-votes them —
	// the paper's 10-run rule for nondeterministic algorithms.
	Votes int
	// MinPerClass is the minimum labeled examples a class needs to enter
	// training; classes below it are dropped (the paper requires ~20 but
	// trains with less for sparse classes).
	MinPerClass int
	// MinClasses is the minimum distinct trainable classes; below it
	// training fails (§V-C observes such failures).
	MinClasses int
	// Obs, when non-nil, times the train and classify stages of the
	// Figure 2 pipeline (trained models inherit it) and counts
	// classifications (pipeline_classified_total).
	Obs *obs.Registry
	// Workers bounds training and classification goroutines; <= 0 uses
	// GOMAXPROCS(0) and 1 runs sequentially. Trained models and their
	// classifications are byte-identical for every worker count.
	Workers int
	// Acct, when non-nil, accumulates train/classify resource accounting
	// on the ops channel (trained models inherit it); see internal/prof.
	Acct *prof.Accountant
}

// NewPipeline returns a pipeline with the paper's defaults: Random Forest
// with majority voting over 10 runs.
func NewPipeline() *Pipeline {
	return &Pipeline{
		Trainer:     ml.Forest{Config: ml.ForestConfig{Trees: 60}},
		Votes:       1,
		MinPerClass: 3,
		MinClasses:  2,
	}
}

// ErrTooFewExamples reports an untrainable labeled snapshot.
var ErrTooFewExamples = errors.New("classify: too few labeled examples to train")

// Model is a trained originator classifier.
type Model struct {
	clf     ml.Classifier
	obs     *obs.Registry    // inherited from the training pipeline; may be nil
	acct    *prof.Accountant // inherited from the training pipeline; may be nil
	workers int              // inherited from the training pipeline
}

// TrainingSet assembles the ml design matrix from labels that re-appear in
// the snapshot (only originators with current feature vectors can train).
// It returns the matrix and the addresses in row order.
func (p *Pipeline) TrainingSet(s *Snapshot, labels *groundtruth.LabeledSet) (*ml.Dataset, []ipaddr.Addr, error) {
	minPer := p.MinPerClass
	if minPer < 1 {
		minPer = 1
	}
	// Count labeled examples present in this snapshot.
	var present [activity.NumClasses][]ipaddr.Addr
	for a, cls := range labels.Labels {
		if _, ok := s.Vector(a); ok {
			present[cls] = append(present[cls], a)
		}
	}
	var rows [][]float64
	var ys []int
	var addrs []ipaddr.Addr
	classes := 0
	for cls := range present {
		if len(present[cls]) < minPer {
			continue
		}
		classes++
		sort.Slice(present[cls], func(i, j int) bool { return present[cls][i] < present[cls][j] })
		for _, a := range present[cls] {
			v, _ := s.Vector(a)
			rows = append(rows, v.X[:])
			ys = append(ys, cls)
			addrs = append(addrs, a)
		}
	}
	if classes < max(2, p.MinClasses) {
		return nil, nil, fmt.Errorf("%w: %d trainable classes, %d rows", ErrTooFewExamples, classes, len(rows))
	}
	ds, err := ml.NewDataset(rows, ys, int(activity.NumClasses))
	if err != nil {
		return nil, nil, err
	}
	return ds, addrs, nil
}

// trainer returns p.Trainer with the pipeline's parallelism and
// instrumentation threaded into trainers that support them (Random
// Forest); explicit per-trainer settings win.
func (p *Pipeline) trainer() ml.Trainer {
	if f, ok := p.Trainer.(ml.Forest); ok {
		if f.Config.Workers == 0 {
			f.Config.Workers = p.Workers
		}
		if f.Config.Obs == nil {
			f.Config.Obs = p.Obs
		}
		if f.Config.Acct == nil {
			f.Config.Acct = p.Acct
		}
		return f
	}
	return p.Trainer
}

// Train fits a model on the labels as observed in snapshot s.
func (p *Pipeline) Train(s *Snapshot, labels *groundtruth.LabeledSet, st *rng.Stream) (*Model, error) {
	sp := p.Obs.StartSpan("train")
	defer sp.End()
	ds, _, err := p.TrainingSet(s, labels)
	if err != nil {
		return nil, err
	}
	tr := p.trainer()
	if p.Votes > 1 {
		clf := ml.TrainMajorityWorkers(tr, ds, p.Votes, p.Workers, st)
		return &Model{clf: clf, obs: p.Obs, acct: p.Acct, workers: p.Workers}, nil
	}
	return &Model{clf: tr.Train(ds, st), obs: p.Obs, acct: p.Acct, workers: p.Workers}, nil
}

// Classify labels one feature vector.
func (m *Model) Classify(v *features.Vector) activity.Class {
	return activity.Class(m.clf.Predict(v.X[:]))
}

// ClassifyAll labels every analyzable originator in the snapshot — the
// final stage of the Figure 2 pipeline, timed under the "classify" span
// when the training pipeline was instrumented. Originators are predicted
// in parallel across the pipeline's workers (batch prediction only reads
// trained state); the label map is identical for every worker count.
func (m *Model) ClassifyAll(s *Snapshot) map[ipaddr.Addr]activity.Class {
	sp := m.obs.StartSpan("classify")
	tok := m.acct.Start("classify")
	rows := make([][]float64, len(s.Vectors))
	for i, v := range s.Vectors {
		rows[i] = v.X[:]
	}
	pool := parallel.Pool{Workers: m.workers, Obs: m.obs, Stage: "classify", Acct: m.acct}
	preds := ml.PredictBatch(m.clf, rows, pool)
	out := make(map[ipaddr.Addr]activity.Class, len(s.Vectors))
	for i, v := range s.Vectors {
		out[v.Originator] = activity.Class(preds[i])
	}
	tok.End()
	sp.End()
	m.obs.Counter("pipeline_classified_total").Add(uint64(len(out)))
	return out
}

// EvaluateOn scores the model against labeled examples that re-appear in
// the snapshot — the paper's long-term validation method (§V-B): labels
// are fixed, features are recomputed from the day under test.
func (m *Model) EvaluateOn(s *Snapshot, labels *groundtruth.LabeledSet) (ml.Metrics, int) {
	conf := ml.NewConfusion(int(activity.NumClasses))
	n := 0
	for a, cls := range labels.Labels {
		v, ok := s.Vector(a)
		if !ok {
			continue
		}
		conf.Add(int(cls), int(m.Classify(v)))
		n++
	}
	return conf.Score(), n
}
