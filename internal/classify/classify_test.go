package classify

import (
	"testing"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/features"
	"dnsbackscatter/internal/groundtruth"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/ml"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
	"dnsbackscatter/internal/world"
)

// fixture builds a two-day world once and derives everything tests need.
type fixture struct {
	w      *world.World
	x      *features.Extractor
	snap   *Snapshot // jp-sensor snapshot over the whole span
	oracle *groundtruth.Oracle
	labels *groundtruth.LabeledSet
}

var shared *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if shared != nil {
		return shared
	}
	cfg := world.DefaultConfig()
	cfg.Duration = simtime.Days(2)
	cfg.RateScale = 0.5
	cfg.JPShare = 0.5 // concentrate originators where the jp sensor looks
	cfg.DarknetSlash8 = 150
	w := world.New(cfg)
	w.Run()

	x := features.NewExtractor(w.Geo, w.QuerierName)
	x.MinQueriers = 10 // downscaled world, downscaled threshold
	snap := Snap(w.National["jp"].Records(), x, cfg.Start, cfg.Duration)
	if len(snap.Vectors) < 30 {
		t.Fatalf("fixture too small: %d analyzable originators", len(snap.Vectors))
	}

	truth := make(map[ipaddr.Addr]activity.Class)
	for a, tr := range w.TruthMap() {
		truth[a] = tr.Class
	}
	oracle := groundtruth.NewOracle(truth, w.Dark, cfg.Seed)
	cur := groundtruth.DefaultCuration()
	cur.LabelNoise = 0
	labels := groundtruth.Curate(snap.Ranked(), oracle, cur, rng.New(99))
	shared = &fixture{w: w, x: x, snap: snap, oracle: oracle, labels: labels}
	return shared
}

func TestSnapshotIndex(t *testing.T) {
	f := getFixture(t)
	for _, v := range f.snap.Vectors {
		got, ok := f.snap.Vector(v.Originator)
		if !ok || got != v {
			t.Fatal("snapshot index broken")
		}
	}
	if _, ok := f.snap.Vector(ipaddr.MustParse("203.0.113.250")); ok {
		t.Error("index returned vector for unseen originator")
	}
	ranked := f.snap.Ranked()
	if len(ranked) != len(f.snap.Vectors) || ranked[0] != f.snap.Vectors[0].Originator {
		t.Error("Ranked inconsistent with Vectors")
	}
}

func TestTrainingSetRespectsMinPerClass(t *testing.T) {
	f := getFixture(t)
	p := NewPipeline()
	p.MinPerClass = 3
	ds, addrs, err := p.TrainingSet(f.snap, f.labels)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != len(addrs) {
		t.Fatal("rows/addrs mismatch")
	}
	counts := ds.ClassCounts()
	for cls, c := range counts {
		if c > 0 && c < 3 {
			t.Errorf("class %d trained with %d < MinPerClass rows", cls, c)
		}
	}
	// Every training row's label matches the labeled set.
	for i, a := range addrs {
		if int(f.labels.Labels[a]) != ds.Y[i] {
			t.Fatalf("row %d label mismatch", i)
		}
	}
}

func TestTrainingFailsWithoutExamples(t *testing.T) {
	f := getFixture(t)
	empty := &groundtruth.LabeledSet{Labels: map[ipaddr.Addr]activity.Class{}}
	if _, err := NewPipeline().Train(f.snap, empty, rng.New(1)); err == nil {
		t.Error("training succeeded on empty labels")
	}
	one := &groundtruth.LabeledSet{Labels: map[ipaddr.Addr]activity.Class{
		f.snap.Vectors[0].Originator: activity.Spam,
	}}
	p := NewPipeline()
	p.MinPerClass = 1
	if _, err := p.Train(f.snap, one, rng.New(1)); err == nil {
		t.Error("training succeeded with one class")
	}
}

func TestEndToEndClassification(t *testing.T) {
	f := getFixture(t)
	p := NewPipeline()
	m, err := p.Train(f.snap, f.labels, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	metrics, n := m.EvaluateOn(f.snap, f.labels)
	if n < 20 {
		t.Fatalf("only %d validation examples", n)
	}
	// Training-set evaluation: should be strong for RF.
	if metrics.Accuracy < 0.6 {
		t.Errorf("in-sample accuracy = %.2f, want > 0.6", metrics.Accuracy)
	}
	// Held-out check via the ml layer.
	ds, _, err := p.TrainingSet(f.snap, f.labels)
	if err != nil {
		t.Fatal(err)
	}
	res := ml.CrossValidate(p.Trainer, ds, 0.6, 5, rng.New(8))
	if res.Accuracy.Mean < 0.4 {
		t.Errorf("cross-validated accuracy = %.2f, want well above chance (~0.08)", res.Accuracy.Mean)
	}
	t.Logf("held-out accuracy %.2f ± %.2f, F1 %.2f", res.Accuracy.Mean, res.Accuracy.Std, res.F1.Mean)
}

func TestClassifyAllCoversSnapshot(t *testing.T) {
	f := getFixture(t)
	m, err := NewPipeline().Train(f.snap, f.labels, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	all := m.ClassifyAll(f.snap)
	if len(all) != len(f.snap.Vectors) {
		t.Errorf("classified %d of %d", len(all), len(f.snap.Vectors))
	}
	for _, cls := range all {
		if cls < 0 || cls >= activity.NumClasses {
			t.Fatalf("invalid class %d", cls)
		}
	}
}

func TestMajorityVotesPipeline(t *testing.T) {
	f := getFixture(t)
	p := NewPipeline()
	p.Votes = 3
	m, err := p.Train(f.snap, f.labels, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, n := m.EvaluateOn(f.snap, f.labels); n == 0 {
		t.Error("no evaluations")
	}
}

func TestSnapIntervals(t *testing.T) {
	f := getFixture(t)
	cfg := f.w.Cfg
	snaps := SnapIntervals(f.w.National["jp"].Records(), f.x, cfg.Start, cfg.Duration, simtime.Day)
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots, want 2", len(snaps))
	}
	for i, s := range snaps {
		if s.Start != cfg.Start.Add(simtime.Duration(i)*simtime.Day) {
			t.Errorf("snapshot %d start %v", i, s.Start)
		}
	}
	// Interval vectors exist in both days (continuous activity).
	if len(snaps[0].Vectors) == 0 || len(snaps[1].Vectors) == 0 {
		t.Error("daily snapshots empty")
	}
}

func TestStrategyNames(t *testing.T) {
	if TrainOnce.String() != "train-once" || RetrainDaily.String() != "train-daily" ||
		AutoGrow.String() != "auto-grow" || ManualRecuration.String() != "manual-recuration" {
		t.Error("strategy names wrong")
	}
	if Strategy(99).String() != "unknown" {
		t.Error("unknown strategy name")
	}
}

func TestStrategiesProducePoints(t *testing.T) {
	f := getFixture(t)
	cfg := f.w.Cfg
	snaps := SnapIntervals(f.w.National["jp"].Records(), f.x, cfg.Start, cfg.Duration, simtime.Day)
	for _, strat := range []Strategy{TrainOnce, RetrainDaily, AutoGrow} {
		run := &StrategyRun{Pipeline: NewPipeline(), Strategy: strat, CurationIndex: 0}
		pts := run.Run(snaps, f.labels, f.labels, rng.New(3))
		if len(pts) != len(snaps) {
			t.Fatalf("%v: %d points", strat, len(pts))
		}
		trained := 0
		for _, p := range pts {
			if p.Trained {
				trained++
				if p.F1 <= 0 || p.Evaluated == 0 {
					t.Errorf("%v: trained point with empty metrics: %+v", strat, p)
				}
			}
		}
		if trained == 0 {
			t.Errorf("%v: never trained", strat)
		}
	}
}

func TestManualRecurationStrategy(t *testing.T) {
	f := getFixture(t)
	cfg := f.w.Cfg
	snaps := SnapIntervals(f.w.National["jp"].Records(), f.x, cfg.Start, cfg.Duration, simtime.Day)
	cur := groundtruth.DefaultCuration()
	cur.LabelNoise = 0
	run := &StrategyRun{
		Pipeline:      NewPipeline(),
		Strategy:      ManualRecuration,
		CurationIndex: 0,
		RecurateEvery: 1,
		Oracle:        f.oracle,
		Curation:      cur,
	}
	pts := run.Run(snaps, f.labels, f.labels, rng.New(3))
	for i, p := range pts {
		if !p.Trained {
			t.Errorf("interval %d untrained under recuration", i)
		}
	}
}

func TestCountReappearances(t *testing.T) {
	f := getFixture(t)
	cfg := f.w.Cfg
	snaps := SnapIntervals(f.w.National["jp"].Records(), f.x, cfg.Start, cfg.Duration, simtime.Day)
	counts := CountReappearances(snaps, f.labels)
	if len(counts) != len(snaps) {
		t.Fatal("length mismatch")
	}
	for i, c := range counts {
		if c.Benign+c.Malicious == 0 {
			t.Errorf("interval %d: no reappearing examples", i)
		}
		if c.Start != snaps[i].Start {
			t.Errorf("interval %d start mismatch", i)
		}
	}
}
