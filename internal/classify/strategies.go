package classify

import (
	"dnsbackscatter/internal/groundtruth"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

// Strategy selects a training-over-time regime from §III-E.
type Strategy int

const (
	// TrainOnce trains on the curation snapshot and never retrains;
	// accuracy decays as feature behavior drifts (§V-B).
	TrainOnce Strategy = iota
	// RetrainDaily keeps the labeled set fixed but refits the
	// classification boundary on each interval's fresh feature vectors
	// (§V-C) — the paper's recommended default.
	RetrainDaily
	// AutoGrow feeds each interval's classification output back as the
	// next interval's labels; classification error compounds (§V-D).
	AutoGrow
	// ManualRecuration re-runs expert curation at scheduled intervals and
	// retrains daily in between — the M-sampled gold standard (§V-E).
	ManualRecuration
)

var strategyNames = map[Strategy]string{
	TrainOnce:        "train-once",
	RetrainDaily:     "train-daily",
	AutoGrow:         "auto-grow",
	ManualRecuration: "manual-recuration",
}

// String names the strategy as Figure 7 does.
func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return "unknown"
}

// StrategyPoint is one interval's outcome in a strategy run.
type StrategyPoint struct {
	Start     simtime.Time
	F1        float64
	Accuracy  float64
	Evaluated int  // labeled examples re-appearing for validation
	Trained   bool // false when training failed this interval
}

// StrategyRun drives one strategy across interval snapshots.
type StrategyRun struct {
	Pipeline *Pipeline
	Strategy Strategy
	// CurationIndex is the snapshot index at which the initial labeled
	// set was curated (the gray bar of Figures 5-7).
	CurationIndex int
	// RecurateEvery re-curates at this interval spacing (only for
	// ManualRecuration); 0 disables.
	RecurateEvery int
	// Oracle supplies labels for (re-)curation; required for
	// ManualRecuration, ignored otherwise.
	Oracle *groundtruth.Oracle
	// Curation parameters for recuration.
	Curation groundtruth.CurationConfig
}

// Run evaluates the strategy. snaps are consecutive interval snapshots;
// initial is the expert-curated labeled set (taken at CurationIndex);
// validation is the fixed set of labeled examples used to score every
// interval (the paper validates on re-appearing labeled examples).
func (r *StrategyRun) Run(snaps []*Snapshot, initial, validation *groundtruth.LabeledSet, st *rng.Stream) []StrategyPoint {
	labels := initial.Clone()
	var model *Model
	var out []StrategyPoint

	// Train-once fits exactly once, on the curation snapshot.
	if r.Strategy == TrainOnce {
		if m, err := r.Pipeline.Train(snaps[r.CurationIndex], labels, st); err == nil {
			model = m
		}
	}

	for i, s := range snaps {
		switch r.Strategy {
		case TrainOnce:
			// model fixed
		case RetrainDaily:
			if m, err := r.Pipeline.Train(s, labels, st); err == nil {
				model = m
			} else {
				model = nil
			}
		case AutoGrow:
			if m, err := r.Pipeline.Train(s, labels, st); err == nil {
				model = m
				// Tomorrow's labels are today's classifications of
				// whatever was analyzable today.
				next := &groundtruth.LabeledSet{Labels: model.ClassifyAll(s)}
				labels = next
			} else {
				model = nil
			}
		case ManualRecuration:
			if r.RecurateEvery > 0 && r.Oracle != nil && i > r.CurationIndex &&
				(i-r.CurationIndex)%r.RecurateEvery == 0 {
				fresh := groundtruth.Curate(s.Ranked(), r.Oracle, r.Curation, st)
				labels.Merge(fresh)
				labels.Prune(func(a ipaddr.Addr) bool {
					_, ok := s.Vector(a)
					if ok {
						return true
					}
					_, keep := initial.Labels[a]
					return keep
				})
			}
			if m, err := r.Pipeline.Train(s, labels, st); err == nil {
				model = m
			} else {
				model = nil
			}
		}

		p := StrategyPoint{Start: s.Start, Trained: model != nil}
		if model != nil {
			metrics, n := model.EvaluateOn(s, validation)
			p.F1 = metrics.F1
			p.Accuracy = metrics.Accuracy
			p.Evaluated = n
		}
		out = append(out, p)
	}
	return out
}

// Reappearance counts how many labeled examples are analyzable in each
// snapshot, split by maliciousness — the data behind Figures 5 and 6.
type Reappearance struct {
	Start     simtime.Time
	Benign    int
	Malicious int
}

// CountReappearances tallies labeled-example activity per interval.
func CountReappearances(snaps []*Snapshot, labels *groundtruth.LabeledSet) []Reappearance {
	out := make([]Reappearance, len(snaps))
	for i, s := range snaps {
		out[i].Start = s.Start
		for a, cls := range labels.Labels {
			if _, ok := s.Vector(a); !ok {
				continue
			}
			if cls.Malicious() {
				out[i].Malicious++
			} else {
				out[i].Benign++
			}
		}
	}
	return out
}
