// Package parallel runs batches of independent work items across a
// bounded worker pool with a deterministic, index-ordered merge.
//
// The Figure 2 pipeline is embarrassingly parallel along three axes —
// per originator (feature extraction), per tree (forest training), and
// per fold (validation) — but the repository's determinism contract
// (see ARCHITECTURE.md) requires that the worker count never change any
// output byte. This package supplies the safe building block: work is
// identified by index, results land at their index, and callers derive
// any per-item randomness from seeded rng streams *before* fan-out, so
// scheduling order cannot leak into results.
//
// A Pool with Workers <= 0 uses runtime.GOMAXPROCS(0); Workers == 1 runs
// the plain sequential loop (no goroutines). Panics inside workers are
// captured and re-raised on the calling goroutine, and Run supports
// context cancellation for long batches.
//
// When a Pool carries an obs registry and stage name, every batch
// records parallel_shards_total{stage=...} (the number of work items —
// a data property, identical for every worker count) and tracks live
// workers in the parallel_workers{stage=...} gauge, which returns to
// zero when the batch completes so snapshots stay byte-identical across
// worker counts.
//
// A Pool may also carry a prof.Accountant. Unlike the obs registry,
// the accountant records scheduling-dependent readings (worker
// high-water marks, shard counts per batch) on the ops channel; it
// never touches deterministic artifacts. A nil Acct costs nothing.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/prof"
)

// Workers resolves a requested worker count: n if positive, otherwise
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Pool describes how to run a batch of independent work items. The zero
// value is valid: GOMAXPROCS workers, no instrumentation.
type Pool struct {
	// Workers bounds concurrent goroutines; <= 0 means GOMAXPROCS(0)
	// and 1 runs inline on the calling goroutine.
	Workers int
	// Obs, when non-nil together with Stage, receives the batch metrics
	// (parallel_shards_total counter, parallel_workers gauge).
	Obs *obs.Registry
	// Stage labels the metrics, e.g. "extract" or "train".
	Stage string
	// Acct, when non-nil together with Stage, accumulates per-stage
	// resource accounting (shard counts, concurrent-worker peaks) on the
	// ops channel — see internal/prof.
	Acct *prof.Accountant
}

// Each runs fn(i) for every i in [0, n), using at most p.Workers
// goroutines. It returns when all items completed. A panic in any item
// is re-raised on the calling goroutine after the remaining workers
// drain. fn must not depend on execution order.
func (p Pool) Each(n int, fn func(i int)) {
	err := p.run(nil, n, func(i int) error {
		fn(i)
		return nil
	})
	if err != nil {
		// Unreachable: fn never errors and no context is installed.
		panic("parallel: unexpected error from infallible batch: " + err.Error())
	}
}

// Map runs fn over [0, n) under the pool and returns the results in
// index order — the deterministic merge: results[i] is fn(i) no matter
// which worker computed it or when.
func Map[T any](p Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.Each(n, func(i int) { out[i] = fn(i) })
	return out
}

// Run is Each with error and cancellation support: it stops claiming new
// items once fn returns an error or ctx is cancelled, waits for in-flight
// items, and returns the error of the lowest-indexed failed item (or
// ctx.Err()). Items after a failure may be skipped. A nil ctx never
// cancels.
func (p Pool) Run(ctx context.Context, n int, fn func(i int) error) error {
	return p.run(ctx, n, fn)
}

// batchErr records the lowest-indexed error of a batch.
type batchErr struct {
	mu  sync.Mutex
	idx int
	err error
}

// record keeps err if it is the lowest-indexed failure so far.
func (b *batchErr) record(idx int, err error) {
	b.mu.Lock()
	if b.err == nil || idx < b.idx {
		b.idx, b.err = idx, err
	}
	b.mu.Unlock()
}

func (p Pool) run(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var gauge *obs.Gauge
	var sacct *prof.StageAcct
	if p.Stage != "" {
		p.Obs.Counter("parallel_shards_total", obs.L("stage", p.Stage)).Add(uint64(n))
		gauge = p.Obs.Gauge("parallel_workers", obs.L("stage", p.Stage))
		sacct = p.Acct.Stage(p.Stage)
		sacct.AddShards(uint64(n))
	}

	w := Workers(p.Workers)
	if w > n {
		w = n
	}
	if w == 1 {
		// Sequential path: today's plain loop, no goroutines.
		gauge.Add(1)
		defer gauge.Add(-1)
		sacct.EnterWorker()
		defer sacct.LeaveWorker()
		for i := 0; i < n; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	// Workers claim chunks of consecutive indices from an atomic cursor;
	// results are keyed by index, so the claim order never shows in any
	// output. Chunks amortize the cursor for cheap items while keeping
	// the tail balanced.
	chunk := n / (w * 4)
	if chunk < 1 {
		chunk = 1
	}
	var (
		cursor atomic.Int64
		stop   atomic.Bool
		errs   batchErr
		wg     sync.WaitGroup
		pOnce  sync.Once
		pVal   any
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gauge.Add(1)
			defer gauge.Add(-1)
			sacct.EnterWorker()
			defer sacct.LeaveWorker()
			defer func() {
				if r := recover(); r != nil {
					pOnce.Do(func() { pVal = r })
					stop.Store(true)
				}
			}()
			for !stop.Load() {
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						errs.record(n, err)
						stop.Store(true)
						return
					}
				}
				hi := int(cursor.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if err := fn(i); err != nil {
						errs.record(i, err)
						stop.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if pVal != nil {
		panic(pVal)
	}
	return errs.err
}
