package parallel

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"dnsbackscatter/internal/obs"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

// TestMapOrderedMerge checks results land at their index for every worker
// count, including counts far above the item count.
func TestMapOrderedMerge(t *testing.T) {
	const n = 137
	for _, w := range []int{1, 2, 3, 8, 64, 1000} {
		got := Map(Pool{Workers: w}, n, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

// TestMapWorkerCountInvariant is the package's core contract: the same
// inputs produce identical outputs under any parallelism.
func TestMapWorkerCountInvariant(t *testing.T) {
	const n = 301
	fn := func(i int) string { return fmt.Sprintf("item-%03d", i*7%n) }
	seq := Map(Pool{Workers: 1}, n, fn)
	for _, w := range []int{2, 4, 8} {
		par := Map(Pool{Workers: w}, n, fn)
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: result[%d] = %q, want %q", w, i, par[i], seq[i])
			}
		}
	}
}

func TestEachRunsEveryItemOnce(t *testing.T) {
	for _, w := range []int{1, 4} {
		const n = 500
		var counts [n]atomic.Int32
		Pool{Workers: w}.Each(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", w, i, c)
			}
		}
	}
}

func TestEachZeroItems(t *testing.T) {
	Pool{Workers: 4}.Each(0, func(int) { t.Error("fn called for empty batch") })
}

func TestPanicPropagation(t *testing.T) {
	for _, w := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", w)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: recovered %v, want \"boom\"", w, r)
				}
			}()
			Pool{Workers: w}.Each(100, func(i int) {
				if i == 37 {
					panic("boom")
				}
			})
		}()
	}
}

func TestRunErrorLowestIndexWins(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// With one worker the scan is in order, so the lowest-indexed error
	// is returned exactly; with many workers it is still the lowest
	// among the items that ran.
	err := Pool{Workers: 1}.Run(nil, 100, func(i int) error {
		switch i {
		case 10:
			return errA
		case 50:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("sequential Run error = %v, want %v", err, errA)
	}
	err = Pool{Workers: 8}.Run(nil, 100, func(i int) error {
		if i >= 10 {
			return fmt.Errorf("item %d: %w", i, errA)
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("parallel Run error = %v, want wrapped %v", err, errA)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := Pool{Workers: 2}.Run(ctx, 10000, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Run after cancel = %v, want context.Canceled", err)
	}
	if ran.Load() == 10000 {
		t.Error("cancellation did not stop the batch early")
	}
}

// TestObsInstrumentation checks the batch metrics: the shard counter
// counts work items (a data property), and the worker gauge returns to
// zero, so registry snapshots stay byte-identical across worker counts.
func TestObsInstrumentation(t *testing.T) {
	snap := func(w int) []byte {
		reg := obs.NewRegistry()
		Pool{Workers: w, Obs: reg, Stage: "extract"}.Each(42, func(int) {})
		if c := reg.Counter("parallel_shards_total", obs.L("stage", "extract")).Value(); c != 42 {
			t.Errorf("workers=%d: parallel_shards_total = %d, want 42", w, c)
		}
		if g := reg.Gauge("parallel_workers", obs.L("stage", "extract")).Value(); g != 0 {
			t.Errorf("workers=%d: parallel_workers after batch = %d, want 0", w, g)
		}
		return reg.SnapshotJSON()
	}
	a, b := snap(1), snap(8)
	if !bytes.Equal(a, b) {
		t.Errorf("registry snapshots differ between worker counts:\n%s\n----\n%s", a, b)
	}
}

// TestNoInstrumentationWithoutStage ensures unnamed batches record
// nothing even with a registry attached.
func TestNoInstrumentationWithoutStage(t *testing.T) {
	reg := obs.NewRegistry()
	Pool{Workers: 2, Obs: reg}.Each(10, func(int) {})
	if got := reg.Snapshot(); len(got) != 0 {
		t.Errorf("unnamed batch recorded metrics:\n%s", got)
	}
}
