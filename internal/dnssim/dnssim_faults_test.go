package dnssim

import (
	"testing"

	"dnsbackscatter/internal/dnswire"
	"dnsbackscatter/internal/faults"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

// mustPlan parses a fault spec or fails the test.
func mustPlan(t *testing.T, spec string) *faults.Plan {
	t.Helper()
	p, err := faults.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return p
}

// TestDeadFinalTimeoutCounted pins the satellite fix: a FinalUnreachable
// originator used to vanish from metrics entirely ("nothing to record");
// now the timeout shows up as dnssim_final_timeouts_total and the
// resolver's giveup as resolver_gaveup_total — with no fault plan
// installed at all.
func TestDeadFinalTimeoutCounted(t *testing.T) {
	h, _, _, _, final, orig := testHierarchy(
		func(ipaddr.Addr) OriginatorProfile {
			return OriginatorProfile{FinalUnreachable: true}
		})
	reg := obs.NewRegistry()
	h.SetMetrics(reg)
	r := newResolver(0, 0)
	if n := h.Resolve(r, orig, 0); n != 3 {
		t.Fatalf("sent %d queries, want 3", n)
	}
	if final.Seen() != 0 {
		t.Fatal("dead final authority recorded a query")
	}
	if got := reg.Counter("dnssim_final_timeouts_total").Value(); got != 1 {
		t.Errorf("dnssim_final_timeouts_total = %d, want 1", got)
	}
	if got := reg.Counter("resolver_gaveup_total").Value(); got != 1 {
		t.Errorf("resolver_gaveup_total = %d, want 1", got)
	}
	// Within ServFailTTL the negative-cache suppresses the retry, so the
	// timeout is counted once, not per attempt.
	if n := h.Resolve(r, orig, 60); n != 0 {
		t.Fatalf("retry within ServFailTTL sent %d queries", n)
	}
	if got := reg.Counter("dnssim_final_timeouts_total").Value(); got != 1 {
		t.Errorf("after suppressed retry: timeouts = %d, want still 1", got)
	}
}

// faultedRun performs a burst of cold lookups under one fault spec and
// returns the registry and total queries sent.
func faultedRun(t *testing.T, spec string, seedBase uint64, n int) (*obs.Registry, *Sensor, int) {
	t.Helper()
	h, _, _, _, final, _ := testHierarchy(cachedProfile)
	h.SetFaults(mustPlan(t, spec))
	reg := obs.NewRegistry()
	h.SetMetrics(reg)
	queries := 0
	// Distinct resolvers + distinct originators in the instrumented /16
	// keep every lookup cold at the final level.
	for i := 0; i < n; i++ {
		r := NewResolver(ipaddr.FromOctets(10, 0, byte(i>>8), byte(i)), 0, 0, 64, rng.New(seedBase+uint64(i)))
		orig := ipaddr.FromOctets(100, 50, byte(i>>8), byte(i))
		queries += h.Resolve(r, orig, simtime.Time(i)*7)
	}
	return reg, final, queries
}

// TestLossyRetriesAndBackoff checks the 20%-loss profile drives the
// retry machinery: retries fire and are counted, some lookups give up,
// injected losses land in faults_injected_total{kind="loss"}, and the
// run completes without error.
func TestLossyRetriesAndBackoff(t *testing.T) {
	reg, _, queries := faultedRun(t, "lossy@1", 100, 400)
	retries := reg.Counter("resolver_retries_total").Value()
	if retries == 0 {
		t.Error("no retries at 20% loss")
	}
	loss := reg.Counter("faults_injected_total", obs.L("kind", "loss")).Value()
	if loss == 0 {
		t.Error("no losses injected")
	}
	// Every retry is an extra query beyond the 3-per-lookup baseline.
	if uint64(queries) < 3*400 {
		t.Errorf("queries = %d, want ≥ 1200", queries)
	}
	if reg.Counter("resolver_gaveup_total").Value() == 0 {
		t.Error("no giveups at 20% loss × 3 attempts (0.8% expected rate over 1200 exchanges)")
	}
}

// TestServFailStormObserved checks SERVFAIL answers reach the sensor
// with the right rcode during a burst window (the run starts at t=0,
// inside the first burst).
func TestServFailStormObserved(t *testing.T) {
	reg, final, _ := faultedRun(t, "servfail-storm@2", 500, 400)
	if reg.Counter("faults_injected_total", obs.L("kind", "servfail")).Value() == 0 {
		t.Fatal("no SERVFAILs injected in burst window")
	}
	sawServFail := false
	for _, rec := range final.Records() {
		if rec.RCode == dnswire.RCodeServFail {
			sawServFail = true
			break
		}
	}
	if !sawServFail {
		t.Error("no SERVFAIL record reached the final sensor")
	}
}

// TestTruncationForcesTCPFallback checks the middlebox profile's TC
// answers produce a second (TCP) query, counted in
// resolver_tcp_fallbacks_total and visible as an extra sensor record.
func TestTruncationForcesTCPFallback(t *testing.T) {
	reg, final, _ := faultedRun(t, "middlebox@3", 900, 400)
	fallbacks := reg.Counter("resolver_tcp_fallbacks_total").Value()
	if fallbacks == 0 {
		t.Fatal("no TCP fallbacks at Truncate=0.25")
	}
	if reg.Counter("faults_injected_total", obs.L("kind", "truncate")).Value() != fallbacks {
		t.Error("every injected truncation should force exactly one TCP fallback")
	}
	// The TCP re-ask is an extra final-authority observation, so the
	// sensor sees more arrivals than lookups.
	if final.Seen() <= 400 {
		t.Errorf("final saw %d arrivals, want > 400 with TC re-asks", final.Seen())
	}
}

// TestFaultedResolveDeterministic pins the determinism contract for
// fault schedules: two hierarchies under the same (profile, seed)
// produce identical query counts and byte-identical sensor records; a
// different fault seed diverges.
func TestFaultedResolveDeterministic(t *testing.T) {
	run := func(spec string) ([]int, *Sensor) {
		h, _, _, _, final, _ := testHierarchy(cachedProfile)
		h.SetFaults(mustPlan(t, spec))
		counts := make([]int, 0, 300)
		for i := 0; i < 300; i++ {
			r := NewResolver(ipaddr.FromOctets(10, 1, byte(i>>8), byte(i)), 0, 0, 64, rng.New(uint64(i)))
			orig := ipaddr.FromOctets(100, 50, byte(i>>8), byte(i))
			counts = append(counts, h.Resolve(r, orig, simtime.Time(i)*11))
		}
		return counts, final
	}
	c1, f1 := run("chaos@7")
	c2, f2 := run("chaos@7")
	c3, _ := run("chaos@8")
	if len(f1.Records()) != len(f2.Records()) {
		t.Fatalf("same seed: %d vs %d records", len(f1.Records()), len(f2.Records()))
	}
	for i := range f1.Records() {
		if f1.Records()[i] != f2.Records()[i] {
			t.Fatalf("same seed diverged at record %d: %+v vs %+v", i, f1.Records()[i], f2.Records()[i])
		}
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("same seed diverged at lookup %d: %d vs %d queries", i, c1[i], c2[i])
		}
	}
	diverged := false
	for i := range c1 {
		if c1[i] != c3[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("chaos@7 and chaos@8 produced identical query-count schedules")
	}
}

// TestFaultExhaustionNegativeCaches pins the ServFailTTL semantics for
// fault-induced failure: a lookup that gives up is negative-cached just
// like a dead final, so the resolver does not hammer a broken path.
func TestFaultExhaustionNegativeCaches(t *testing.T) {
	h, _, _, _, _, orig := testHierarchy(cachedProfile)
	// A plan that drops everything: every exchange exhausts its retries.
	h.SetFaults(faults.New(faults.Profile{Name: "blackhole", Loss: 1.0}, 1))
	reg := obs.NewRegistry()
	h.SetMetrics(reg)
	r := newResolver(0, 0)
	n := h.Resolve(r, orig, 0)
	if n != 3 {
		t.Fatalf("blackhole lookup sent %d queries, want 3 (root level exhausts all attempts)", n)
	}
	if got := reg.Counter("resolver_gaveup_total").Value(); got != 1 {
		t.Errorf("resolver_gaveup_total = %d, want 1", got)
	}
	if got := h.Resolve(r, orig, 60); got != 0 {
		t.Errorf("retry within ServFailTTL sent %d queries, want 0 (negative-cached)", got)
	}
	if got := h.Resolve(r, orig, simtime.Time(6*simtime.Minute)); got == 0 {
		t.Error("resolver never retried after ServFailTTL")
	}
}
