package dnssim

import (
	"testing"

	"dnsbackscatter/internal/dnswire"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

func testHierarchy(profile ProfileFunc) (*Hierarchy, *Sensor, *Sensor, map[string]*Sensor, *Sensor, ipaddr.Addr) {
	g := geo.NewRegistry(42)
	h := NewHierarchy(g, DefaultConfig(), profile)
	b := NewSensor("b-root", 1)
	m := NewSensor("m-root", 1)
	h.AttachRoots(b, m)
	nats := make(map[string]*Sensor)
	for _, c := range geo.Countries {
		s := NewSensor(c.Code, 1)
		nats[c.Code] = s
		h.AttachNational(c.Code, s)
	}
	orig := ipaddr.MustParse("100.50.3.4")
	final := NewSensor("final", 1)
	h.AttachFinal(orig.Slash16(), final)
	return h, b, m, nats, final, orig
}

func newResolver(busy, preferM float64) *Resolver {
	return NewResolver(ipaddr.MustParse("10.0.0.53"), busy, preferM, 1024, rng.New(7))
}

func cachedProfile(a ipaddr.Addr) OriginatorProfile {
	return OriginatorProfile{HasName: true, Name: "x.example.net", TTL: simtime.Hour, NegTTL: simtime.Hour}
}

func TestColdResolverHitsAllLevels(t *testing.T) {
	h, b, m, nats, final, orig := testHierarchy(cachedProfile)
	r := newResolver(0, 0) // never prefers M, no background warmth
	n := h.Resolve(r, orig, 1000)
	if n != 3 {
		t.Errorf("cold resolve sent %d queries, want 3 (root, national, final)", n)
	}
	if b.Seen() != 1 || m.Seen() != 0 {
		t.Errorf("root hits: b=%d m=%d, want 1/0", b.Seen(), m.Seen())
	}
	country := h.Geo.Country(orig)
	if nats[country].Seen() != 1 {
		t.Errorf("national sensor saw %d", nats[country].Seen())
	}
	if final.Seen() != 1 {
		t.Errorf("final sensor saw %d", final.Seen())
	}
	rec := final.Records()[0]
	if rec.Originator != orig || rec.Querier != r.Addr || rec.RCode != dnswire.RCodeNoError {
		t.Errorf("record = %+v", rec)
	}
}

func TestPTRCachingSuppressesRepeat(t *testing.T) {
	h, _, _, _, final, orig := testHierarchy(cachedProfile)
	r := newResolver(0, 0)
	h.Resolve(r, orig, 1000)
	if n := h.Resolve(r, orig, 1010); n != 0 {
		t.Errorf("repeat within PTR TTL sent %d queries, want 0", n)
	}
	// After the PTR TTL (1 h) the final authority is queried again, but
	// the delegations are still warm so root/national stay quiet.
	if n := h.Resolve(r, orig, 1000+simtime.Time(simtime.Hour)); n != 1 {
		t.Errorf("post-TTL resolve sent %d queries, want 1 (final only)", n)
	}
	if final.Seen() != 2 {
		t.Errorf("final saw %d queries, want 2", final.Seen())
	}
}

func TestDelegationExpiryClimbsTree(t *testing.T) {
	h, b, _, nats, _, orig := testHierarchy(
		func(ipaddr.Addr) OriginatorProfile {
			// Zero TTL: the PTR is never cached, isolating delegation caching.
			return OriginatorProfile{HasName: true, Name: "x", TTL: 0, NegTTL: 0}
		})
	r := newResolver(0, 0)
	country := h.Geo.Country(orig)

	h.Resolve(r, orig, 0)
	// Within FinalNSTTL: only the final authority is queried.
	h.Resolve(r, orig, simtime.Time(simtime.Hour))
	if nats[country].Seen() != 1 {
		t.Errorf("national saw %d, want 1 (delegation cached)", nats[country].Seen())
	}
	// After FinalNSTTL but within NationalNSTTL: national queried, root not.
	h.Resolve(r, orig, simtime.Time(7*simtime.Hour))
	if nats[country].Seen() != 2 || b.Seen() != 1 {
		t.Errorf("nat=%d root=%d, want 2/1", nats[country].Seen(), b.Seen())
	}
	// After NationalNSTTL: back to the root.
	h.Resolve(r, orig, simtime.Time(3*simtime.Day))
	if b.Seen() != 2 {
		t.Errorf("root saw %d, want 2", b.Seen())
	}
}

func TestNXDomainNegativeCaching(t *testing.T) {
	h, _, _, _, final, orig := testHierarchy(
		func(ipaddr.Addr) OriginatorProfile {
			return OriginatorProfile{HasName: false, NegTTL: 10 * simtime.Minute}
		})
	r := newResolver(0, 0)
	h.Resolve(r, orig, 0)
	if final.Records()[0].RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %d, want NXDomain", final.Records()[0].RCode)
	}
	if n := h.Resolve(r, orig, 60); n != 0 {
		t.Error("negative cache did not suppress repeat")
	}
	if n := h.Resolve(r, orig, simtime.Time(11*simtime.Minute)); n != 1 {
		t.Errorf("post-negative-TTL resolve sent %d, want 1", n)
	}
}

func TestUnreachableFinal(t *testing.T) {
	h, b, _, nats, final, orig := testHierarchy(
		func(ipaddr.Addr) OriginatorProfile {
			return OriginatorProfile{FinalUnreachable: true}
		})
	r := newResolver(0, 0)
	h.Resolve(r, orig, 0)
	if final.Seen() != 0 {
		t.Error("dead final authority recorded a query")
	}
	country := h.Geo.Country(orig)
	if b.Seen() != 1 || nats[country].Seen() != 1 {
		t.Error("upper levels should still see the lookup")
	}
	// Servfail is remembered briefly.
	if n := h.Resolve(r, orig, 60); n != 0 {
		t.Errorf("retry within ServFailTTL sent %d queries", n)
	}
	if n := h.Resolve(r, orig, simtime.Time(6*simtime.Minute)); n == 0 {
		t.Error("resolver never retried after ServFailTTL")
	}
}

func TestRootPreference(t *testing.T) {
	h, b, m, _, _, _ := testHierarchy(cachedProfile)
	r := NewResolver(ipaddr.MustParse("10.0.0.53"), 0, 0.9, 1024, rng.New(7))
	// Distinct originators in distinct /8s keep the /8 delegation cold.
	for i := 0; i < 200; i++ {
		orig := ipaddr.FromOctets(byte(i), 1, 2, 3)
		h.Resolve(r, orig, simtime.Time(i)*simtime.Time(simtime.Day))
	}
	total := b.Seen() + m.Seen()
	if total == 0 {
		t.Fatal("no root queries at all")
	}
	frac := float64(m.Seen()) / float64(total)
	if frac < 0.75 {
		t.Errorf("M-Root fraction = %.2f, want ≈0.9", frac)
	}
}

func TestBusynessWarmsUpperTree(t *testing.T) {
	profile := func(ipaddr.Addr) OriginatorProfile {
		return OriginatorProfile{HasName: true, Name: "x", TTL: 0}
	}
	countRootQueries := func(busy float64) uint64 {
		h, b, m, _, _, _ := testHierarchy(profile)
		st := rng.New(11)
		// Many distinct resolvers each do one cold lookup of one
		// originator; busy resolvers should skip the root.
		for i := 0; i < 2000; i++ {
			r := NewResolver(ipaddr.Addr(st.Uint64()), busy, 0.5, 64, rng.New(uint64(i)))
			orig := ipaddr.Addr(st.Uint64())
			h.Resolve(r, orig, simtime.Time(i))
			_ = m
		}
		return b.Seen() + m.Seen()
	}
	quiet := countRootQueries(0)
	busy := countRootQueries(0.9)
	if quiet != 2000 {
		t.Errorf("quiet resolvers: root saw %d, want 2000", quiet)
	}
	if busy > quiet/2 {
		t.Errorf("busy resolvers: root saw %d, want heavy suppression vs %d", busy, quiet)
	}
}

func TestSensorSampling(t *testing.T) {
	s := NewSensor("m-sampled", 10)
	for i := 0; i < 1000; i++ {
		s.Observe(simtime.Time(i), 1, 2, 0)
	}
	if s.Seen() != 1000 {
		t.Errorf("Seen = %d", s.Seen())
	}
	if len(s.Records()) != 100 {
		t.Errorf("sampled records = %d, want 100", len(s.Records()))
	}
}

func TestSensorSamplingDeterministic(t *testing.T) {
	a := NewSensor("x", 7)
	b := NewSensor("x", 7)
	for i := 0; i < 100; i++ {
		a.Observe(simtime.Time(i), ipaddr.Addr(i), 2, 0)
		b.Observe(simtime.Time(i), ipaddr.Addr(i), 2, 0)
	}
	if len(a.Records()) != len(b.Records()) {
		t.Fatal("sampling diverged")
	}
	for i := range a.Records() {
		if a.Records()[i] != b.Records()[i] {
			t.Fatal("sampled different records")
		}
	}
}

func TestSensorReset(t *testing.T) {
	s := NewSensor("x", 1)
	s.Observe(0, 1, 2, 0)
	s.Reset()
	if len(s.Records()) != 0 || s.Seen() != 1 {
		t.Error("Reset must clear records but keep counters")
	}
}

func TestDefaultProfileDeterministic(t *testing.T) {
	a := ipaddr.MustParse("198.51.100.7")
	p1, p2 := DefaultProfile(a), DefaultProfile(a)
	if p1 != p2 {
		t.Error("DefaultProfile not deterministic")
	}
}

func TestDefaultProfileMix(t *testing.T) {
	var named, nameless, unreach int
	for i := 0; i < 10000; i++ {
		p := DefaultProfile(ipaddr.Addr(uint32(i) * 2654435761))
		switch {
		case p.FinalUnreachable:
			unreach++
		case p.HasName:
			named++
		default:
			nameless++
		}
	}
	if named < 7000 || named > 8500 {
		t.Errorf("named = %d, want ≈78%%", named)
	}
	if nameless < 1000 || nameless > 2500 {
		t.Errorf("nameless = %d, want ≈16%%", nameless)
	}
	if unreach < 300 || unreach > 1200 {
		t.Errorf("unreachable = %d, want ≈6%%", unreach)
	}
}

func BenchmarkResolveCold(b *testing.B) {
	g := geo.NewRegistry(42)
	h := NewHierarchy(g, DefaultConfig(), cachedProfile)
	h.AttachRoots(NewSensor("b-root", 1), NewSensor("m-root", 1))
	r := newResolver(0, 0.5)
	st := rng.New(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Resolve(r, ipaddr.Addr(st.Uint64()), simtime.Time(i))
	}
}

func BenchmarkResolveCached(b *testing.B) {
	g := geo.NewRegistry(42)
	h := NewHierarchy(g, DefaultConfig(), cachedProfile)
	r := newResolver(0, 0.5)
	orig := ipaddr.MustParse("100.50.3.4")
	h.Resolve(r, orig, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Resolve(r, orig, 1)
	}
}

// TestHierarchyMetricsAttenuation checks that the per-level query counters
// express §IV-D attenuation directly: repeat resolutions inside the
// delegation TTLs reach the final authority only, so
// dnssim_queries_total{level=final} outgrows root and national.
func TestHierarchyMetricsAttenuation(t *testing.T) {
	h, _, _, _, _, orig := testHierarchy(
		func(ipaddr.Addr) OriginatorProfile {
			// Zero PTR TTL isolates delegation caching.
			return OriginatorProfile{HasName: true, Name: "x", TTL: 0, NegTTL: 0}
		})
	reg := obs.NewRegistry()
	h.SetMetrics(reg)
	r := newResolver(0, 0)
	r.SetCacheMetrics(reg)

	for i := 0; i < 10; i++ {
		h.Resolve(r, orig, simtime.Time(i)*60)
	}
	lv := func(level string) uint64 {
		t.Helper()
		return reg.Counter("dnssim_queries_total", obs.L("level", level)).Value()
	}
	if got := lv("root"); got != 1 {
		t.Errorf("root queries = %d, want 1", got)
	}
	if got := lv("national"); got != 1 {
		t.Errorf("national queries = %d, want 1", got)
	}
	if got := lv("final"); got != 10 {
		t.Errorf("final queries = %d, want 10", got)
	}
	if got := reg.Counter("dnssim_resolves_total").Value(); got != 10 {
		t.Errorf("resolves = %d, want 10", got)
	}
	if got := reg.Counter("dnssim_cached_total").Value(); got != 0 {
		t.Errorf("cached resolves = %d, want 0 with zero PTR TTL", got)
	}
	// The resolver cache counted its delegation hits under the shared name.
	hits := reg.Counter("cache_hits_total", obs.L("cache", "resolver"), obs.L("tier", "z16")).Value()
	if hits != 9 {
		t.Errorf("z16 delegation hits = %d, want 9", hits)
	}
}

// TestHierarchyMetricsCachedAndQMin covers the cached-resolve counter and
// the QNAME-minimization visibility counter.
func TestHierarchyMetricsCachedAndQMin(t *testing.T) {
	h, _, _, _, _, orig := testHierarchy(cachedProfile)
	reg := obs.NewRegistry()
	h.SetMetrics(reg)
	r := newResolver(0, 0)
	r.QNameMin = true
	h.Resolve(r, orig, 1000)
	h.Resolve(r, orig, 1010) // inside the PTR TTL: fully cached
	if got := reg.Counter("dnssim_cached_total").Value(); got != 1 {
		t.Errorf("cached resolves = %d, want 1", got)
	}
	// A minimizing resolver hides the originator at root and national:
	// two upper-level queries, both hidden.
	if got := reg.Counter("dnssim_qmin_hidden_total").Value(); got != 2 {
		t.Errorf("qmin-hidden queries = %d, want 2", got)
	}
}
