// Package dnssim simulates the reverse-DNS resolution hierarchy that turns
// network-wide activity into DNS backscatter (Figure 1 of the paper).
//
// When a querier performs a reverse lookup for an originator, its resolver
// walks the in-addr.arpa delegation chain, asking only the authorities it
// lacks cached delegations for. Sensors attached to authorities therefore
// observe backscatter with level-dependent attenuation:
//
//   - the final authority (the originator's own /16 reverse zone) sees every
//     lookup whose PTR answer is not cached at the resolver,
//   - national registries (the /8 zone, e.g. JPNIC space) see lookups whose
//     /16 delegation is cold,
//   - the roots (which the paper treats together with the in-addr.arpa
//     apex) see only lookups whose /8 delegation is cold — heavy
//     attenuation, exactly the effect measured in §IV-D.
//
// Busy shared resolvers additionally keep the upper tree warm through
// background reverse traffic the simulation does not enumerate; that
// warming is modeled as a deterministic per-(resolver, zone, TTL-epoch)
// draw weighted by the resolver's busyness.
package dnssim

import (
	"dnsbackscatter/internal/cache"
	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/dnswire"
	"dnsbackscatter/internal/faults"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
	"dnsbackscatter/internal/trace"
)

// Config sets the hierarchy's caching behavior.
type Config struct {
	// NationalNSTTL is how long resolvers cache a /8 zone delegation.
	// It governs attenuation at the roots.
	NationalNSTTL simtime.Duration
	// FinalNSTTL is how long resolvers cache a /16 zone delegation.
	// It governs attenuation at national authorities.
	FinalNSTTL simtime.Duration
	// ServFailTTL is how long a resolver remembers that a final
	// authority is unreachable before retrying.
	ServFailTTL simtime.Duration
	// ResolverCacheMax bounds each resolver's cache entries.
	ResolverCacheMax int
	// Retry is the per-level query retry policy, consulted only when a
	// fault plan is installed (a fault-free network answers the first
	// try, as all earlier PRs assumed).
	Retry RetryPolicy
}

// RetryPolicy is a capped exponential backoff for authority queries:
// attempt n (0-based) waits Base<<(n-1) seconds after attempt n-1,
// never more than Cap. The zero value means the DefaultRetry policy.
type RetryPolicy struct {
	// Attempts is the total number of tries, first included.
	Attempts int
	// Base is the delay before the first retry.
	Base simtime.Duration
	// Cap bounds the exponentially growing delay.
	Cap simtime.Duration
}

// DefaultRetry mirrors common stub behavior: three tries, 2 s initial
// backoff, capped at 8 s.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{Attempts: 3, Base: 2 * simtime.Second, Cap: 8 * simtime.Second}
}

// normalized fills zero fields with the DefaultRetry values.
func (p RetryPolicy) normalized() RetryPolicy {
	d := DefaultRetry()
	if p.Attempts <= 0 {
		p.Attempts = d.Attempts
	}
	if p.Base <= 0 {
		p.Base = d.Base
	}
	if p.Cap <= 0 {
		p.Cap = d.Cap
	}
	return p
}

// Backoff returns the delay between attempt n-1 and attempt n (1-based
// retries): Base<<(n-1), capped at Cap.
func (p RetryPolicy) Backoff(n int) simtime.Duration {
	if n <= 0 {
		return 0
	}
	d := p.Base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= p.Cap {
			return p.Cap
		}
	}
	if d > p.Cap {
		return p.Cap
	}
	return d
}

// DefaultConfig mirrors common operational TTLs: /8 delegations about two
// days, /16 delegations six hours, servfail retry after five minutes.
func DefaultConfig() Config {
	return Config{
		NationalNSTTL:    2 * simtime.Day,
		FinalNSTTL:       6 * simtime.Hour,
		ServFailTTL:      5 * simtime.Minute,
		ResolverCacheMax: 4096,
		Retry:            DefaultRetry(),
	}
}

// OriginatorProfile describes the reverse-DNS posture of one originator,
// fixed by whoever runs its final authority.
type OriginatorProfile struct {
	HasName bool             // a PTR record exists
	Name    string           // the PTR target when HasName
	TTL     simtime.Duration // PTR TTL; 0 disables caching (controlled scans)
	NegTTL  simtime.Duration // negative-cache TTL when !HasName
	// FinalUnreachable marks originators whose final authority never
	// answers (the "F" rows of Tables VII/VIII).
	FinalUnreachable bool
}

// ProfileFunc supplies the profile for an originator address.
type ProfileFunc func(ipaddr.Addr) OriginatorProfile

// DefaultProfile derives a deterministic, plausible profile from the
// address alone: ~80% of originators have reverse names, TTLs drawn from
// common operational values, and a few percent sit behind dead servers.
func DefaultProfile(a ipaddr.Addr) OriginatorProfile {
	h := hash64(uint64(a), 0x9d5f)
	var p OriginatorProfile
	switch {
	case h%100 < 78:
		p.HasName = true
		p.Name = "host-" + a.String() + ".example.net"
	case h%100 < 94:
		p.HasName = false
	default:
		p.FinalUnreachable = true
	}
	ttls := []simtime.Duration{10 * simtime.Minute, simtime.Hour, 8 * simtime.Hour, simtime.Day}
	p.TTL = ttls[(h>>8)%4]
	p.NegTTL = ttls[(h>>16)%4] / 2
	return p
}

// Sensor collects records at one authority, optionally sampling. A sample
// rate of n keeps one of every n queries deterministically (M-sampled is
// 1:10, §III-G).
type Sensor struct {
	Name   string
	Sample int
	// End, when nonzero, is the collection horizon: queries at or after
	// it are not recorded (the capture stopped).
	End simtime.Time

	n   uint64
	buf dnslog.Buffer
}

// NewSensor returns an in-memory sensor. sample < 1 is treated as 1.
func NewSensor(name string, sample int) *Sensor {
	if sample < 1 {
		sample = 1
	}
	return &Sensor{Name: name, Sample: sample}
}

// Observe records one query, subject to sampling and the collection
// horizon. It reports whether a record was actually kept — tracing uses
// this to emit sensor events only for records the pipeline will see.
func (s *Sensor) Observe(now simtime.Time, orig, querier ipaddr.Addr, rcode uint8) bool {
	if s == nil {
		return false
	}
	if s.End != 0 && !now.Before(s.End) {
		return false
	}
	s.n++
	if s.Sample > 1 && s.n%uint64(s.Sample) != 0 {
		return false
	}
	s.buf.Append(dnslog.Record{
		Time:       now,
		Originator: orig,
		Querier:    querier,
		Authority:  s.Name,
		RCode:      rcode,
	})
	return true
}

// Seen returns the total number of queries arriving at the sensor before
// sampling.
func (s *Sensor) Seen() uint64 { return s.n }

// Len returns the number of records kept so far.
func (s *Sensor) Len() int { return s.buf.Len() }

// Records returns the kept records as one contiguous slice — a single
// exact-size copy out of the sensor's chunked buffer. Call it once per
// drain, not per record.
func (s *Sensor) Records() []dnslog.Record { return s.buf.Flatten() }

// Range calls fn for each kept record with index >= from, in arrival
// order, without copying. Incremental consumers (scan verification)
// remember Len() as their base and range from it.
func (s *Sensor) Range(from int, fn func(dnslog.Record)) { s.buf.Range(from, fn) }

// Reset drops collected records but keeps counters and chunk storage, so
// long simulations can drain sensors interval by interval without
// reallocating.
func (s *Sensor) Reset() { s.buf.Reset() }

// Resolver is one querier's recursive resolution state.
type Resolver struct {
	Addr ipaddr.Addr
	// Busyness in [0, 1] is the chance per TTL epoch that background
	// traffic already warmed an upper-tree delegation.
	Busyness float64
	// PreferM is the probability a root-level query lands on M-Root
	// rather than B-Root (anycast proximity; M is Asia-heavy).
	PreferM float64
	// MaxPTRTTL, when positive, caps how long this resolver honors any
	// cached answer — PTR records and delegations alike — modeling the
	// cache-poor middleboxes that "do not follow DNS timeout rules"
	// (§III-C), whose re-queries the 30 s dedup window exists for and
	// which push per-querier query counts well above 1 at every level of
	// the hierarchy.
	MaxPTRTTL simtime.Duration
	// RetransmitProb is the chance a lookup's queries are sent twice a
	// few seconds apart (timeout retransmits) — the sub-30 s duplicates
	// the paper's dedup window removes.
	RetransmitProb float64
	// QNameMin marks resolvers performing QNAME minimization (RFC 7816,
	// flagged by the paper's §VII as a constraint on backscatter): upper
	// levels of the hierarchy receive only the zone labels they are
	// authoritative for, so root and national sensors cannot attribute
	// the lookup to an originator. Only the final authority still sees
	// the full reverse name.
	QNameMin bool

	cache *cache.Cache
	st    *rng.Stream
}

// NewResolver returns a resolver with its own cache and random stream.
func NewResolver(addr ipaddr.Addr, busyness, preferM float64, cacheMax int, st *rng.Stream) *Resolver {
	return &Resolver{Addr: addr, Busyness: busyness, PreferM: preferM,
		cache: cache.New(cacheMax), st: st}
}

// SetCacheMetrics instruments this resolver's cache under the shared
// "resolver" cache name — every simulated resolver aggregates into the
// same per-tier counters, which is the population view §IV-D cares about.
func (r *Resolver) SetCacheMetrics(reg *obs.Registry) {
	r.cache.SetMetrics(reg, "resolver")
}

// Hierarchy is the simulated reverse-DNS tree with attached sensors.
type Hierarchy struct {
	Geo     *geo.Registry
	Cfg     Config
	Profile ProfileFunc

	rootB    *Sensor
	rootM    *Sensor
	national map[string]*Sensor // country code -> sensor
	finals   map[uint16]*Sensor // /16 -> sensor (instrumented final zones)

	// profCache memoizes Profile per originator. A profile is "fixed by
	// whoever runs its final authority" — a pure function of the address
	// for the simulation's lifetime — so caching only removes the repeat
	// string construction inside ProfileFuncs, never changes an answer.
	profCache map[ipaddr.Addr]OriginatorProfile

	faults *faults.Plan
	m      *hierMetrics
	tracer *trace.Tracer
}

// profile returns the originator's cached profile, consulting the
// ProfileFunc once per distinct address.
func (h *Hierarchy) profile(orig ipaddr.Addr) OriginatorProfile {
	if p, ok := h.profCache[orig]; ok {
		return p
	}
	p := h.Profile(orig)
	h.profCache[orig] = p
	return p
}

// SetTracer installs (or, with nil, removes) the end-to-end lookup
// tracer. Resolve begins a trace per uncached lookup; callers that want
// to annotate the trace with upstream context (world activity) begin it
// themselves via Tracer().Begin and call ResolveTraced.
func (h *Hierarchy) SetTracer(t *trace.Tracer) { h.tracer = t }

// Tracer returns the installed tracer (nil when tracing is off).
func (h *Hierarchy) Tracer() *trace.Tracer { return h.tracer }

// hierMetrics holds the hierarchy's pre-resolved counters. Nil receiver =
// uninstrumented; every method is then a no-op.
type hierMetrics struct {
	resolves      *obs.Counter
	cached        *obs.Counter
	hidden        *obs.Counter
	retries       *obs.Counter
	gaveup        *obs.Counter
	tcpFallbacks  *obs.Counter
	finalTimeouts *obs.Counter
	level         [3]*obs.Counter // root, national, final
}

// hierLevels orders the per-level query counters top-down, matching the
// attenuation ordering of Figure 1: root sees least, final sees all.
var hierLevels = [3]string{"root", "national", "final"}

// SetMetrics instruments the hierarchy: lookups started, lookups answered
// wholly from the resolver cache, authority queries per hierarchy level
// (dnssim_queries_total{level=root|national|final} — the §IV-D
// attenuation is the ratio of these), and upper-tree queries hidden by
// QNAME minimization. A nil registry uninstruments.
func (h *Hierarchy) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		h.m = nil
		h.faults.SetMetrics(nil)
		return
	}
	m := &hierMetrics{
		resolves:      reg.Counter("dnssim_resolves_total"),
		cached:        reg.Counter("dnssim_cached_total"),
		hidden:        reg.Counter("dnssim_qmin_hidden_total"),
		retries:       reg.Counter("resolver_retries_total"),
		gaveup:        reg.Counter("resolver_gaveup_total"),
		tcpFallbacks:  reg.Counter("resolver_tcp_fallbacks_total"),
		finalTimeouts: reg.Counter("dnssim_final_timeouts_total"),
	}
	for i, lv := range hierLevels {
		m.level[i] = reg.Counter("dnssim_queries_total", obs.L("level", lv))
	}
	h.m = m
	h.faults.SetMetrics(reg)
}

// SetFaults installs a deterministic fault plan on every authority
// exchange (nil removes it). Faults activate the Config.Retry backoff
// policy: dropped or dead exchanges retry up to Retry.Attempts times,
// each retry counted in resolver_retries_total, exhaustion in
// resolver_gaveup_total, truncation-forced TCP re-asks in
// resolver_tcp_fallbacks_total. Install before SetMetrics (or call
// SetMetrics again after) so the plan's injection counters register.
func (h *Hierarchy) SetFaults(p *faults.Plan) {
	h.faults = p
}

// The metric methods carry the simulated instant of the event they count
// so a Window attached to the registry buckets them into time series
// (totals are unchanged without one).

func (m *hierMetrics) resolve(cached bool, now simtime.Time) {
	if m == nil {
		return
	}
	m.resolves.IncAt(now)
	if cached {
		m.cached.IncAt(now)
	}
}

// query counts one authority query at level li (index into hierLevels);
// hidden marks upper-tree queries whose reverse name QNAME minimization
// stripped of the originator.
func (m *hierMetrics) query(li int, hidden bool, now simtime.Time) {
	if m == nil {
		return
	}
	m.level[li].IncAt(now)
	if hidden {
		m.hidden.IncAt(now)
	}
}

func (m *hierMetrics) retry(now simtime.Time) {
	if m != nil {
		m.retries.IncAt(now)
	}
}

func (m *hierMetrics) giveup(now simtime.Time) {
	if m != nil {
		m.gaveup.IncAt(now)
	}
}

func (m *hierMetrics) tcpFallback(now simtime.Time) {
	if m != nil {
		m.tcpFallbacks.IncAt(now)
	}
}

func (m *hierMetrics) finalTimeout(now simtime.Time) {
	if m != nil {
		m.finalTimeouts.IncAt(now)
	}
}

// NewHierarchy builds a hierarchy over the geo registry. profile may be nil
// to use DefaultProfile.
func NewHierarchy(g *geo.Registry, cfg Config, profile ProfileFunc) *Hierarchy {
	if profile == nil {
		profile = DefaultProfile
	}
	return &Hierarchy{
		Geo:       g,
		Cfg:       cfg,
		Profile:   profile,
		national:  make(map[string]*Sensor),
		finals:    make(map[uint16]*Sensor),
		profCache: make(map[ipaddr.Addr]OriginatorProfile),
	}
}

// AttachRoots installs the two root sensors. Either may be nil.
func (h *Hierarchy) AttachRoots(b, m *Sensor) {
	h.rootB, h.rootM = b, m
}

// AttachNational installs a sensor for one country's /8 registry zones.
func (h *Hierarchy) AttachNational(country string, s *Sensor) {
	h.national[country] = s
}

// AttachFinal instruments the final authority for one /16 reverse zone.
func (h *Hierarchy) AttachFinal(slash16 uint16, s *Sensor) {
	h.finals[slash16] = s
}

// Zone cache-key helpers: tag in the high bits, zone identity below. Keys
// live in each resolver's private cache.
func ptrKey(o ipaddr.Addr) uint64 { return 1<<40 | uint64(o) }
func z8Key(o ipaddr.Addr) uint64  { return 2<<40 | uint64(o.Slash8()) }
func z16Key(o ipaddr.Addr) uint64 { return 3<<40 | uint64(o.Slash16()) }

// hash64 mixes two values splitmix-style for deterministic side draws.
func hash64(a, b uint64) uint64 {
	z := a*0x9e3779b97f4a7c15 + b
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// bgWarm reports whether background traffic has this zone's delegation warm
// at the resolver for the TTL epoch containing now. The draw is a pure
// function of (resolver, zone, epoch), so replaying a simulation gives
// identical attenuation.
func bgWarm(r *Resolver, zoneKey uint64, ttl simtime.Duration, now simtime.Time) bool {
	if r.Busyness <= 0 || ttl <= 0 {
		return false
	}
	epoch := uint64(now) / uint64(ttl)
	draw := hash64(uint64(r.Addr)^hash64(zoneKey, 0x517c), epoch)
	return float64(draw>>11)/(1<<53) < r.Busyness
}

// exchange runs the query/retry loop against one authority level. It
// sends up to Retry.Attempts queries (exactly one when no fault plan is
// installed — the polite network of earlier PRs is byte-identical),
// backing off with the capped exponential policy between tries. obsv is
// called for each answer that actually arrives, with the instant it
// arrives and its rcode; dead authorities and dropped packets produce no
// observation, SERVFAIL answers observe with RCodeServFail, and
// truncated answers are re-asked over TCP (one extra query, one extra
// observation a second later). Every attempt, injected fault, and answer
// is annotated on tc (a nil tc traces nothing). It returns whether a
// clean answer arrived, when it arrived, and how many queries were sent.
func (h *Hierarchy) exchange(r *Resolver, orig ipaddr.Addr, li int, zone uint64,
	hidden bool, rcode uint8, unreachable bool,
	obsv func(simtime.Time, uint8), now simtime.Time, tc *trace.Ctx) (ok bool, done simtime.Time, sent int) {
	lv := hierLevels[li]
	if h.faults == nil {
		h.m.query(li, hidden, now)
		tc.Query(lv, 1, now)
		if unreachable {
			h.m.giveup(now)
			tc.Fault(lv, 1, "unreachable", now)
			tc.GiveUp(lv, now)
			return false, now, 1
		}
		obsv(now, rcode)
		tc.Answer(lv, rcode, 0, now)
		return true, now, 1
	}

	pol := h.Cfg.Retry.normalized()
	res, sub := uint64(r.Addr), uint64(orig)
	t := now
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			h.m.retry(t)
			t = t.Add(pol.Backoff(attempt))
		}
		h.m.query(li, hidden, t)
		tc.Query(lv, attempt+1, t)
		sent++
		if unreachable || h.faults.IsDead(li, zone, t) {
			// Authority dark: the query times out silently.
			fk := "dead"
			if unreachable {
				fk = "unreachable"
			}
			tc.Fault(lv, attempt+1, fk, t)
			continue
		}
		if h.faults.Drop(li, res, sub, t, attempt) {
			tc.Fault(lv, attempt+1, "loss", t)
			continue // datagram lost in flight: timeout, then retry
		}
		lat := h.faults.LatencyFor(li, res, sub, t, attempt)
		if lat > 0 {
			tc.Fault(lv, attempt+1, "latency", t)
		}
		at := t.Add(lat)
		if h.faults.ServFails(li, zone, t, attempt) {
			tc.Fault(lv, attempt+1, "servfail", at)
			obsv(at, dnswire.RCodeServFail)
			tc.Answer(lv, dnswire.RCodeServFail, lat, at)
			t = at
			continue
		}
		obsv(at, rcode)
		tc.Answer(lv, rcode, lat, at)
		if h.faults.TruncateAnswer(li, res, sub, at) {
			// TC answer: re-ask the same authority over TCP. The TCP
			// exchange succeeds and the authority logs a second query.
			h.m.tcpFallback(at)
			tc.Fault(lv, attempt+1, "truncate", at)
			tc.TCP(lv, attempt+1, at)
			h.m.query(li, hidden, at)
			sent++
			at = at.Add(1)
			obsv(at, rcode)
			tc.Answer(lv, rcode, 0, at)
		}
		return true, at, sent
	}
	h.m.giveup(t)
	tc.GiveUp(lv, t)
	return false, t, sent
}

// Resolve performs one reverse lookup of orig by r at time now, emitting a
// record at each authority the query reaches. It returns the number of
// authority queries sent (0 when the answer was fully cached). When a
// fault plan is installed, any level that exhausts its retries aborts the
// lookup: the resolver negative-caches the name for ServFailTTL — the
// same rate limit the dead-final path always used — and the giveup is
// counted in resolver_gaveup_total. With a tracer installed, Resolve
// begins a trace for the lookup (subject to head sampling).
func (h *Hierarchy) Resolve(r *Resolver, orig ipaddr.Addr, now simtime.Time) int {
	return h.ResolveTraced(r, orig, now, h.tracer.Begin(r.Addr, orig, now))
}

// ResolveTraced is Resolve with a caller-supplied trace context, for
// callers (world activity) that begin the trace themselves to annotate
// it with upstream context. A nil tc traces nothing; the resolution path
// is identical either way.
func (h *Hierarchy) ResolveTraced(r *Resolver, orig ipaddr.Addr, now simtime.Time, tc *trace.Ctx) int {
	if _, ok := r.cache.Get(ptrKey(orig), now); ok {
		h.m.resolve(true, now)
		tc.CacheHit(now)
		tc.Finish(now, 0)
		return 0
	}
	h.m.resolve(false, now)

	// A retransmitting stub re-sends this lookup's queries ~3 s later,
	// before any answer has been cached.
	dup := r.RetransmitProb > 0 && r.st.Bool(r.RetransmitProb)
	observe := func(s *Sensor, t simtime.Time, rcode uint8) {
		if s == nil {
			return
		}
		if s.Observe(t, orig, r.Addr, rcode) {
			tc.Sensor(s.Name, orig, r.Addr, rcode, t)
		}
		if dup {
			if s.Observe(t.Add(3), orig, r.Addr, rcode) {
				tc.Sensor(s.Name, orig, r.Addr, rcode, t.Add(3))
			}
		}
	}

	queries := 0
	cur := now
	// Find the most specific cached (or background-warmed) delegation.
	_, have16 := r.cache.Get(z16Key(orig), now)
	_, have8 := r.cache.Get(z8Key(orig), now)
	if !have8 && bgWarm(r, z8Key(orig), h.Cfg.NationalNSTTL, now) {
		have8 = true
	}

	country := h.Geo.Country(orig)
	if !have8 && !have16 {
		// Root-level query: the resolver learns the /8 delegation. A
		// minimizing resolver asks only for "1.in-addr.arpa", which the
		// sensor cannot attribute to any originator.
		root := h.rootB
		if r.st.Bool(r.PreferM) {
			root = h.rootM
		}
		if r.QNameMin {
			root = nil
		}
		ok, done, sent := h.exchange(r, orig, 0, z8Key(orig), r.QNameMin,
			dnswire.RCodeNoError,
			false, func(t simtime.Time, rc uint8) { observe(root, t, rc) }, cur, tc)
		queries += sent
		if !ok {
			r.cache.PutNegative(ptrKey(orig), h.Cfg.ServFailTTL, cur)
			tc.Finish(cur, queries)
			return queries
		}
		cur = done
		r.cache.Put(z8Key(orig), country, r.capTTL(h.Cfg.NationalNSTTL), now)
		have8 = true
	}
	if !have16 {
		// National registry query: learn the /16 delegation. Minimizing
		// resolvers reveal only the /16 here — not attributable.
		nat := h.national[country]
		if r.QNameMin {
			nat = nil
		}
		ok, done, sent := h.exchange(r, orig, 1, z8Key(orig), r.QNameMin,
			dnswire.RCodeNoError,
			false, func(t simtime.Time, rc uint8) { observe(nat, t, rc) }, cur, tc)
		queries += sent
		if !ok {
			r.cache.PutNegative(ptrKey(orig), h.Cfg.ServFailTTL, cur)
			tc.Finish(cur, queries)
			return queries
		}
		cur = done
		r.cache.Put(z16Key(orig), "final", r.capTTL(h.Cfg.FinalNSTTL), now)
	}

	// Final authority query for the PTR record itself.
	p := h.profile(orig)
	rcode := dnswire.RCodeNoError
	if !p.HasName {
		rcode = dnswire.RCodeNXDomain
	}
	fin := h.finals[orig.Slash16()]
	ok, done, sent := h.exchange(r, orig, 2, z16Key(orig), false, rcode,
		p.FinalUnreachable,
		func(t simtime.Time, rc uint8) { observe(fin, t, rc) }, cur, tc)
	queries += sent
	if !ok {
		// Timeout at the dead (or fault-exhausted) final: nothing arrives
		// to record, but the failure itself is now visible as
		// dnssim_final_timeouts_total; remember it briefly so retries are
		// rate-limited.
		h.m.finalTimeout(cur)
		r.cache.PutNegative(ptrKey(orig), h.Cfg.ServFailTTL, cur)
		tc.Finish(cur, queries)
		return queries
	}
	if p.HasName {
		r.cache.Put(ptrKey(orig), p.Name, r.capTTL(p.TTL), done)
	} else {
		r.cache.PutNegative(ptrKey(orig), r.capTTL(p.NegTTL), done)
	}
	tc.Finish(done, queries)
	return queries
}

func (r *Resolver) capTTL(ttl simtime.Duration) simtime.Duration {
	if r.MaxPTRTTL > 0 && ttl > r.MaxPTRTTL {
		return r.MaxPTRTTL
	}
	return ttl
}
