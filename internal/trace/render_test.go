package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/simtime"
)

// populate commits n synthetic traces plus pipeline extras, in an order
// scrambled by ord to prove commit order cannot reach the output bytes.
func populate(tr *Tracer, n int, ord *rand.Rand) {
	idx := ord.Perm(n)
	for _, i := range idx {
		q, o := ipaddr.Addr(i*3+1), ipaddr.Addr(i*11+7)
		now := simtime.Time(1000 + i*5)
		c := sampleTrace(tr, q, o, now)
		if id, t0, ok := tr.RecordID(o, q, now.Add(2)); ok {
			tr.Pipeline(id, t0, "dedup", "kept", "", now.Add(2))
			tr.Pipeline(id, t0, "filter", "kept", "queriers=21", now.Add(9))
		}
		_ = c
	}
}

func TestJSONLCanonicalAcrossCommitOrders(t *testing.T) {
	a, b := New(11, 1), New(11, 1)
	populate(a, 20, rand.New(rand.NewSource(1)))
	populate(b, 20, rand.New(rand.NewSource(99)))
	ja, jb := a.JSONL(), b.JSONL()
	if len(ja) == 0 {
		t.Fatal("empty JSONL")
	}
	if !bytes.Equal(ja, jb) {
		t.Fatal("JSONL bytes depend on commit order")
	}
	// Lines must be sorted by (t0, trace, seq): re-rendering is stable.
	if !bytes.Equal(ja, a.JSONL()) {
		t.Fatal("JSONL not stable across renders")
	}
}

func TestParseJSONLRoundTrip(t *testing.T) {
	tr := New(11, 1)
	populate(tr, 8, rand.New(rand.NewSource(2)))
	parsed, err := ParseJSONL(bytes.NewReader(tr.JSONL()))
	if err != nil {
		t.Fatal(err)
	}
	live := tr.Traces(Filter{})
	if len(parsed) != len(live) {
		t.Fatalf("parsed %d traces, live %d", len(parsed), len(live))
	}
	for i := range parsed {
		if parsed[i].ID != live[i].ID || parsed[i].T0 != live[i].T0 {
			t.Fatalf("trace %d: parsed (%s, %d) vs live (%s, %d)",
				i, parsed[i].ID, parsed[i].T0, live[i].ID, live[i].T0)
		}
		if len(parsed[i].Events) != len(live[i].Events) {
			t.Fatalf("trace %d: %d events parsed, %d live", i, len(parsed[i].Events), len(live[i].Events))
		}
	}
}

func TestParseJSONLErrors(t *testing.T) {
	if _, err := ParseJSONL(strings.NewReader("{broken\n")); err == nil {
		t.Error("malformed line accepted")
	}
	ts, err := ParseJSONL(strings.NewReader("\n\n"))
	if err != nil || len(ts) != 0 {
		t.Errorf("blank input = (%v, %v), want empty", ts, err)
	}
}

func TestRenderTreeShowsFullPath(t *testing.T) {
	tr := New(13, 1)
	q, o := addr("10.9.9.9"), addr("198.51.100.4")
	c := sampleTrace(tr, q, o, 500)
	id, t0, _ := tr.RecordID(o, q, 502)
	tr.Pipeline(id, t0, "dedup", "kept", "", 502)
	got := RenderTree(tr.Traces(Filter{})[0])
	for _, want := range []string{
		c.ID().String(),
		"querier=10.9.9.9 orig=198.51.100.4",
		"activity  class=scan port=tcp22",
		"[root] +0s query attempt=1",
		"! fault=loss attempt=1",
		"answer rcode=noerror",
		"[final]   tcp retry attempt=1",
		"answer rcode=nxdomain lat=1s",
		"sensor[b-root] +2s recorded rcode=nxdomain",
		"done  +5s queries=4",
		"pipeline[dedup] kept",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("tree missing %q:\n%s", want, got)
		}
	}
}

func TestRenderTreeCacheHitAndGiveUp(t *testing.T) {
	tr := New(13, 1)
	c := tr.Begin(1, 2, 7)
	c.CacheHit(7)
	c.Finish(7, 0)
	g := tr.Begin(3, 4, 8)
	g.Query("root", 1, 8)
	g.GiveUp("root", 13)
	g.Serve("jp", "silent", 13)
	g.Finish(13, 1)
	ts := tr.Traces(Filter{})
	out := RenderTree(ts[0]) + RenderTree(ts[1])
	for _, want := range []string{"cache hit", "gave up", "serve[jp]", "rcode=silent"} {
		if !strings.Contains(out, want) {
			t.Errorf("trees missing %q:\n%s", want, out)
		}
	}
}

func TestSummarize(t *testing.T) {
	tr := New(17, 1)
	populate(tr, 12, rand.New(rand.NewSource(3)))
	g := tr.Begin(ipaddr.Addr(9000), ipaddr.Addr(9001), 2000)
	g.Query("national", 1, 2000)
	g.GiveUp("national", 2012)
	g.Finish(2012, 3)
	got := Summarize(tr.Traces(Filter{}), 5)
	for _, want := range []string{
		"traces: 13",
		"slowest chains (top 5):",
		"12s   3 queries",
		"give-up paths:",
		"national 1",
		"per-level injected latency",
		"final",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	if empty := Summarize(nil, 0); !strings.Contains(empty, "traces: 0") || !strings.Contains(empty, "(none)") {
		t.Errorf("empty summary:\n%s", empty)
	}
}

func TestFilterApplyOnParsed(t *testing.T) {
	tr := New(19, 1)
	populate(tr, 6, rand.New(rand.NewSource(4)))
	parsed, err := ParseJSONL(bytes.NewReader(tr.JSONL()))
	if err != nil {
		t.Fatal(err)
	}
	all := Filter{}.Apply(parsed)
	if len(all) != 6 {
		t.Fatalf("Apply kept %d, want 6", len(all))
	}
	two := Filter{Limit: 2}.Apply(parsed)
	if len(two) != 2 || two[1].ID != all[5].ID {
		t.Fatalf("Limit=2 kept the wrong tail")
	}
	nx := Filter{RCode: "nxdomain"}.Apply(parsed)
	if len(nx) != 6 {
		t.Fatalf("rcode filter kept %d, want all 6 sample traces", len(nx))
	}
}

func TestLatBucket(t *testing.T) {
	for d, want := range map[simtime.Duration]simtime.Duration{0: 0, 1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16} {
		if got := latBucket(d); got != want {
			t.Errorf("latBucket(%d) = %d, want %d", d, got, want)
		}
	}
}
