package trace

import (
	"strings"
	"testing"

	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/simtime"
)

func addr(s string) ipaddr.Addr {
	a, err := ipaddr.Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// sampleTrace drives one synthetic lookup through every span method and
// commits it.
func sampleTrace(t *Tracer, querier, orig ipaddr.Addr, now simtime.Time) *Ctx {
	c := t.Begin(querier, orig, now)
	c.Activity("scan", "tcp22")
	c.Query("root", 1, now)
	c.Fault("root", 1, "loss", now)
	c.Query("root", 2, now.Add(2))
	c.Answer("root", 0, 0, now.Add(2))
	c.Query("final", 1, now.Add(3))
	c.Fault("final", 1, "truncate", now.Add(3))
	c.TCP("final", 1, now.Add(4))
	c.Answer("final", 3, 1, now.Add(4))
	c.Sensor("b-root", orig, querier, 3, now.Add(2))
	c.Finish(now.Add(5), 4)
	return c
}

func TestIDOfPure(t *testing.T) {
	a := IDOf(7, 1, 2, 3)
	if b := IDOf(7, 1, 2, 3); a != b {
		t.Fatalf("IDOf not pure: %s vs %s", a, b)
	}
	for _, other := range []ID{IDOf(8, 1, 2, 3), IDOf(7, 2, 2, 3), IDOf(7, 1, 3, 3), IDOf(7, 1, 2, 4)} {
		if other == a {
			t.Errorf("IDOf collision on changed input: %s", a)
		}
	}
}

func TestNilTracerAndCtxAreNoOps(t *testing.T) {
	var tr *Tracer
	if c := tr.Begin(1, 2, 0); c != nil {
		t.Fatal("nil tracer Begin returned a context")
	}
	tr.SetMax(5)
	tr.Pipeline(1, 0, "dedup", "kept", "", 0)
	if tr.Sample() != 0 || tr.Dropped() != 0 || tr.Len() != 0 {
		t.Error("nil tracer accessors not zero")
	}
	if _, _, ok := tr.RecordID(1, 2, 3); ok {
		t.Error("nil tracer RecordID reported a join")
	}
	if got := tr.JSONL(); len(got) != 0 {
		t.Errorf("nil tracer JSONL = %q", got)
	}
	if ts := tr.Traces(Filter{}); ts != nil {
		t.Errorf("nil tracer Traces = %v", ts)
	}

	var c *Ctx // tracing off or sampled out: every span method no-ops
	if c.ID() != 0 {
		t.Error("nil ctx ID != 0")
	}
	c.Activity("scan", "tcp22")
	c.CacheHit(1)
	c.Query("root", 1, 1)
	c.Fault("root", 1, "loss", 1)
	c.Answer("root", 0, 0, 1)
	c.TCP("root", 1, 1)
	c.GiveUp("root", 1)
	c.Serve("jp", "noerror", 1)
	c.Sensor("jp", 1, 2, 0, 1)
	c.Finish(2, 1)
}

func TestNilBeginAllocatesNothing(t *testing.T) {
	var tr *Tracer
	n := testing.AllocsPerRun(1000, func() {
		c := tr.Begin(1, 2, 42)
		c.Query("root", 1, 42)
		c.Finish(43, 1)
	})
	if n != 0 {
		t.Fatalf("disabled tracing path allocates %.1f objects/op, want 0", n)
	}
}

func TestSamplingIsDeterministicSubset(t *testing.T) {
	full := New(9, 1)
	sampled := New(9, 4)
	kept := 0
	for i := 0; i < 512; i++ {
		q, o := ipaddr.Addr(i*7+1), ipaddr.Addr(i*13+5)
		if full.Begin(q, o, simtime.Time(i)) == nil {
			t.Fatalf("full tracer dropped lookup %d", i)
		}
		c := sampled.Begin(q, o, simtime.Time(i))
		again := sampled.Begin(q, o, simtime.Time(i))
		if (c == nil) != (again == nil) {
			t.Fatalf("sampling decision for lookup %d not deterministic", i)
		}
		if c != nil {
			if uint64(c.ID())%4 != 0 {
				t.Fatalf("kept trace %s violates id%%4==0", c.ID())
			}
			kept++
		}
	}
	if kept == 0 || kept == 512 {
		t.Fatalf("1-in-4 sampler kept %d of 512", kept)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(1, 1)
	tr.SetMax(3)
	tr.SetMax(-1) // negative clears the bound...
	tr.SetMax(3)  // ...and re-bounding before commits is allowed
	var first ID
	for i := 0; i < 5; i++ {
		c := tr.Begin(ipaddr.Addr(i+1), ipaddr.Addr(i+100), simtime.Time(i*10))
		if i == 0 {
			first = c.ID()
		}
		c.Finish(simtime.Time(i*10+1), 1)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want ring max 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	ts := tr.Traces(Filter{})
	if len(ts) != 3 {
		t.Fatalf("Traces returned %d, want 3", len(ts))
	}
	for _, x := range ts {
		if x.ID == first {
			t.Error("oldest trace survived eviction")
		}
	}
	// Oldest-first: T0 must be sorted ascending.
	for i := 1; i < len(ts); i++ {
		if ts[i].T0 < ts[i-1].T0 {
			t.Errorf("traces out of order: %d before %d", ts[i].T0, ts[i-1].T0)
		}
	}
}

func TestSensorJoinAndPipeline(t *testing.T) {
	tr := New(3, 1)
	q, o := addr("10.0.0.2"), addr("192.0.2.7")
	c := sampleTrace(tr, q, o, 100)

	id, t0, ok := tr.RecordID(o, q, 102)
	if !ok {
		t.Fatal("RecordID missed the sensor join")
	}
	if id != c.ID() || t0 != 100 {
		t.Fatalf("RecordID = (%s, %d), want (%s, 100)", id, t0, c.ID())
	}
	if _, _, ok := tr.RecordID(o, q, 999); ok {
		t.Error("RecordID joined an unknown record time")
	}

	tr.Pipeline(id, t0, "dedup", "kept", "", 102)
	tr.Pipeline(id, t0, "filter", "dropped", "queriers=1", 110)
	tr.Pipeline(id, t0, "extract", "vector", "queriers=9", 110)
	tr.Pipeline(id, t0, "classify", "spam", "", 110)
	tr.Pipeline(id, t0, "mystery", "x", "", 110)

	ts := tr.Traces(Filter{})
	if len(ts) != 1 {
		t.Fatalf("Traces = %d, want 1", len(ts))
	}
	var stages []string
	for _, ev := range ts[0].Events {
		if ev.Kind == KindPipeline {
			stages = append(stages, ev.Stage)
		}
	}
	want := []string{"dedup", "filter", "extract", "classify", "mystery"}
	if len(stages) != len(want) {
		t.Fatalf("pipeline stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("pipeline stages sorted as %v, want fixed-seq order %v", stages, want)
		}
	}
}

func TestSensorIndexFirstWriteWins(t *testing.T) {
	tr := New(3, 1)
	a := tr.Begin(1, 2, 10)
	a.Sensor("jp", 2, 1, 0, 11)
	b := tr.Begin(3, 2, 10)
	b.Sensor("jp", 2, 1, 0, 11) // same record key from another trace
	id, _, ok := tr.RecordID(2, 1, 11)
	if !ok || id != a.ID() {
		t.Fatalf("RecordID = (%s, %v), want first writer %s", id, ok, a.ID())
	}
}

func TestFilterMatching(t *testing.T) {
	tr := New(5, 1)
	q1, o1 := addr("10.0.0.1"), addr("203.0.113.9")
	sampleTrace(tr, q1, o1, 50) // nxdomain, dur 5
	c := tr.Begin(addr("10.0.0.2"), addr("203.0.113.10"), 60)
	c.CacheHit(60)
	c.Finish(60, 0) // dur 0, no rcode events

	cases := []struct {
		name string
		f    Filter
		want int
	}{
		{"all", Filter{}, 2},
		{"originator", Filter{Originator: o1.String()}, 1},
		{"originator-miss", Filter{Originator: "8.8.8.8"}, 0},
		{"querier", Filter{Querier: "10.0.0.2"}, 1},
		{"rcode", Filter{RCode: "nxdomain"}, 1},
		{"mindur", Filter{MinDur: 3}, 1},
		{"limit", Filter{Limit: 1}, 1},
	}
	for _, tc := range cases {
		if got := len(tr.Traces(tc.f)); got != tc.want {
			t.Errorf("%s: matched %d traces, want %d", tc.name, got, tc.want)
		}
	}
}

func TestIDTextForms(t *testing.T) {
	id := ID(0xdeadbeef)
	if id.String() != "00000000deadbeef" {
		t.Fatalf("String = %q", id.String())
	}
	back, err := ParseID(id.String())
	if err != nil || back != id {
		t.Fatalf("ParseID round-trip = (%v, %v)", back, err)
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Error("ParseID accepted garbage")
	}
	j, err := id.MarshalJSON()
	if err != nil || string(j) != `"00000000deadbeef"` {
		t.Fatalf("MarshalJSON = (%s, %v)", j, err)
	}
	var u ID
	if err := u.UnmarshalJSON(j); err != nil || u != id {
		t.Fatalf("UnmarshalJSON = (%v, %v)", u, err)
	}
	if err := u.UnmarshalJSON([]byte(`42`)); err == nil {
		t.Error("UnmarshalJSON accepted a bare number")
	}
}

func TestRCodeName(t *testing.T) {
	for rc, want := range map[uint8]string{0: "noerror", 2: "servfail", 3: "nxdomain", 5: "5"} {
		if got := RCodeName(rc); got != want {
			t.Errorf("RCodeName(%d) = %q, want %q", rc, got, want)
		}
	}
}

func TestGiveUpAndServeEvents(t *testing.T) {
	tr := New(2, 1)
	c := tr.Begin(1, 2, 7)
	c.Query("final", 1, 7)
	c.GiveUp("final", 12)
	c.Serve("jp", "silent", 12)
	c.Finish(12, 1)
	out := tr.JSONL()
	for _, want := range []string{`"kind":"giveup"`, `"kind":"serve"`, `"rcode":"silent"`} {
		if !strings.Contains(string(out), want) {
			t.Errorf("JSONL missing %s:\n%s", want, out)
		}
	}
}
