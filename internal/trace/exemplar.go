package trace

import (
	"sort"

	"dnsbackscatter/internal/simtime"
)

// Exemplar references one worst-offending lookup for alert annotation:
// the trace's identity and start plus the two "how bad" axes — total
// simulated duration and whether the resolver abandoned it.
type Exemplar struct {
	// ID is the trace's hash-derived identity.
	ID ID `json:"trace"`
	// T0 is when the lookup began.
	T0 simtime.Time `json:"t0"`
	// Dur is the lookup's total simulated duration (the done event's).
	Dur simtime.Duration `json:"dur"`
	// GiveUp reports whether any resolver tier abandoned the lookup.
	GiveUp bool `json:"giveup,omitempty"`
}

// exemplarLess is the total order worst-first selection uses: abandoned
// lookups first, then longest duration, ties broken by ID. Because the
// order is total over (GiveUp, Dur, ID), a selection over the same
// trace multiset is deterministic regardless of commit order.
func exemplarLess(a, b Exemplar) bool {
	if a.GiveUp != b.GiveUp {
		return a.GiveUp
	}
	if a.Dur != b.Dur {
		return a.Dur > b.Dur
	}
	return a.ID < b.ID
}

// ExemplarsOf selects the n worst traces among ts whose lookups started
// in [from, to) — the offline form, for replaying a parsed traces.jsonl
// artifact against alert rules.
func ExemplarsOf(ts []Trace, from, to simtime.Time, n int) []Exemplar {
	if n <= 0 {
		return nil
	}
	var out []Exemplar
	for _, t := range ts {
		if t.T0 < from || t.T0 >= to {
			continue
		}
		ex := Exemplar{ID: t.ID, T0: t.T0}
		for _, ev := range t.Events {
			switch ev.Kind {
			case KindGiveUp:
				ex.GiveUp = true
			case KindDone:
				ex.Dur = ev.Dur
			}
		}
		out = append(out, ex)
	}
	sort.Slice(out, func(i, j int) bool { return exemplarLess(out[i], out[j]) })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Exemplars selects the n worst committed traces starting in [from, to)
// — the alert engine's live trace join. A nil tracer returns nil, so
// the method value is a safe Data.Exemplars hook even with tracing off.
func (t *Tracer) Exemplars(from, to simtime.Time, n int) []Exemplar {
	if t == nil {
		return nil
	}
	traces, _ := t.committed()
	return ExemplarsOf(traces, from, to, n)
}

// MergeExemplars merges pre-selected per-tracer lists into the n worst
// overall, under the same total order ExemplarsOf uses — for callers
// joining several datasets' tracers into one alert evaluation.
func MergeExemplars(n int, lists ...[]Exemplar) []Exemplar {
	if n <= 0 {
		return nil
	}
	var all []Exemplar
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return exemplarLess(all[i], all[j]) })
	if len(all) > n {
		all = all[:n]
	}
	return all
}
