package trace

import (
	"testing"

	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/simtime"
)

// finishLookup commits one synthetic trace: started at t0, done after
// dur, optionally abandoned.
func finishLookup(t *Tracer, querier, orig ipaddr.Addr, t0 simtime.Time, dur simtime.Duration, giveup bool) ID {
	c := t.Begin(querier, orig, t0)
	c.Query("final", 1, t0)
	if giveup {
		c.GiveUp("final", t0.Add(dur))
	}
	c.Finish(t0.Add(dur), 1)
	return c.ID()
}

// TestExemplarsWorstFirst pins the selection order: give-ups before
// slow lookups before fast ones, duration descending, ties by ID — and
// the [from, to) time fence.
func TestExemplarsWorstFirst(t *testing.T) {
	tr := New(7, 1)
	fast := finishLookup(tr, 1, 101, 100, 1, false)
	slow := finishLookup(tr, 2, 102, 110, 30, false)
	gone := finishLookup(tr, 3, 103, 120, 10, true)
	finishLookup(tr, 4, 104, 500, 99, true) // outside [100, 200)

	got := tr.Exemplars(100, 200, 10)
	if len(got) != 3 {
		t.Fatalf("got %d exemplars: %+v", len(got), got)
	}
	if got[0].ID != gone || !got[0].GiveUp {
		t.Errorf("worst = %+v, want give-up %s", got[0], gone)
	}
	if got[1].ID != slow || got[1].Dur != 30 {
		t.Errorf("second = %+v, want slow %s", got[1], slow)
	}
	if got[2].ID != fast {
		t.Errorf("third = %+v, want fast %s", got[2], fast)
	}

	if top := tr.Exemplars(100, 200, 1); len(top) != 1 || top[0].ID != gone {
		t.Errorf("n=1 = %+v, want just the give-up", top)
	}
	if none := tr.Exemplars(100, 200, 0); none != nil {
		t.Errorf("n=0 = %+v, want nil", none)
	}
}

// TestExemplarsNilTracer pins that a nil tracer's method value is a
// safe no-op hook.
func TestExemplarsNilTracer(t *testing.T) {
	var tr *Tracer
	hook := tr.Exemplars
	if got := hook(0, 1000, 5); got != nil {
		t.Fatalf("nil tracer exemplars = %+v", got)
	}
}

// TestMergeExemplars pins the cross-tracer merge: one total order over
// the concatenation, truncated to n.
func TestMergeExemplars(t *testing.T) {
	a := []Exemplar{{ID: 1, Dur: 5}, {ID: 2, Dur: 50}}
	b := []Exemplar{{ID: 3, Dur: 20, GiveUp: true}}
	got := MergeExemplars(2, a, b)
	if len(got) != 2 || got[0].ID != 3 || got[1].ID != 2 {
		t.Fatalf("merge = %+v", got)
	}
	if MergeExemplars(0, a) != nil {
		t.Fatal("n=0 merge not nil")
	}
}
