// Package trace is the reproduction's end-to-end query tracing layer:
// dnstap-style structured events following one reverse lookup from the
// originating activity through the stub and recursive resolver tiers, any
// injected faults, the sensor tap, and finally the Figure 2 pipeline's
// verdict on the records it produced.
//
// Tracing obeys the repository's determinism rules:
//
//   - Trace IDs are pure splitmix64 hashes of (seed, querier, qname,
//     time) — no stateful RNG, so the same lookup gets the same ID in
//     every run and at any worker count.
//   - Sampling is head-based and hash-derived (keep the trace iff
//     id mod N == 0), so a sampled run emits a strict, deterministic
//     subset of a full run.
//   - JSONL output is rendered sorted by (t0, trace, seq, time, bytes),
//     making the rendered log a canonical form of the event multiset:
//     byte-identical regardless of the order events were committed in,
//     which is what lets parallel pipeline stages annotate provenance.
//
// Nil-safety mirrors internal/obs: every method on a nil *Tracer or nil
// *Ctx is a no-op, so instrumented packages hold an optional tracer
// without guarding call sites, and the tracing-disabled hot path does not
// allocate.
package trace

import (
	"sync"

	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/simtime"
)

// mix64 is the splitmix64 finalizer, the same pure hash the fault planner
// and dnssim use for side draws. Every trace ID is derived from it.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ID identifies one end-to-end lookup trace. It renders as a 16-digit
// zero-padded hex string in JSON and text.
type ID uint64

// IDOf derives the trace ID for a lookup as a pure hash of the tracer
// seed, the querier address, the qname (represented by the originator
// address whose reverse name is being resolved), and the lookup start
// time. No state is consumed: the same four inputs always give the same
// ID.
func IDOf(seed uint64, querier, qname uint64, now int64) ID {
	h := mix64(seed)
	h = mix64(h ^ querier)
	h = mix64(h ^ qname)
	h = mix64(h ^ uint64(now))
	return ID(h)
}

// Trace is one committed lookup: its ID, start time, and events in
// sequence order.
type Trace struct {
	// ID is the lookup's hash-derived identity.
	ID ID
	// T0 is the simulated time the lookup began.
	T0 simtime.Time
	// Events are the lookup's events in Seq order.
	Events []Event
}

// recKey joins a sensor-side record back to its trace: the pipeline sees
// (originator, querier, record time) but not the lookup start time, so the
// tracer indexes sensor events under this key.
type recKey struct {
	orig    ipaddr.Addr
	querier ipaddr.Addr
	at      simtime.Time
}

// recRef is the index value: which trace, started when.
type recRef struct {
	id ID
	t0 simtime.Time
}

// Tracer collects lookup traces. A nil *Tracer is the sanctioned
// "tracing off" value: Begin returns a nil *Ctx and every method is a
// no-op. Construct with New.
type Tracer struct {
	seed   uint64
	sample uint64

	mu      sync.Mutex
	traces  []Trace           // committed ring storage, guarded by mu
	next    int               // ring write cursor, guarded by mu
	full    bool              // ring has wrapped, guarded by mu
	max     int               // ring capacity; 0 = unbounded, guarded by mu
	extra   []Event           // pipeline provenance events, guarded by mu
	index   map[recKey]recRef // sensor record → trace join, guarded by mu
	dropped uint64            // traces evicted by the ring, guarded by mu
}

// New returns a tracer that keeps one in sample traces (sample <= 1 keeps
// every trace) and stores them without bound. The seed salts every trace
// ID; use the dataset seed so IDs are stable per experiment.
func New(seed, sample uint64) *Tracer {
	if sample < 1 {
		sample = 1
	}
	return &Tracer{seed: seed, sample: sample, index: make(map[recKey]recRef)}
}

// SetMax bounds the in-memory trace ring to at most n committed traces,
// evicting the oldest (live serving uses this; simulations leave the
// tracer unbounded). n <= 0 removes the bound. Must be called before
// traces are committed.
func (t *Tracer) SetMax(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 {
		n = 0
	}
	t.max = n
}

// Sample returns the tracer's 1-in-N sampling divisor (1 means every
// trace is kept; 0 for a nil tracer).
func (t *Tracer) Sample() uint64 {
	if t == nil {
		return 0
	}
	return t.sample
}

// Dropped returns how many committed traces the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of committed traces currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return t.max
	}
	return t.next
}

// Ctx is the trace context for one in-flight lookup, created by Begin and
// threaded down the resolution path. A nil *Ctx (tracing off, or this
// lookup sampled out) makes every method a no-op, so the disabled hot
// path costs one nil check and zero allocations.
type Ctx struct {
	tr     *Tracer
	id     ID
	t0     simtime.Time
	seq    int
	events []Event
}

// Begin starts the trace for one lookup: querier resolving the reverse
// name of orig at simulated time now. It returns nil when the tracer is
// nil or the hash-derived head sampler drops this lookup.
func (t *Tracer) Begin(querier, orig ipaddr.Addr, now simtime.Time) *Ctx {
	if t == nil {
		return nil
	}
	id := IDOf(t.seed, uint64(querier), uint64(orig), int64(now))
	if t.sample > 1 && uint64(id)%t.sample != 0 {
		return nil
	}
	c := &Ctx{tr: t, id: id, t0: now}
	c.add(Event{Time: now, Kind: KindLookup, Querier: querier.String(), Orig: orig.String()})
	return c
}

// ID returns the trace's identity (0 for a nil context).
func (c *Ctx) ID() ID {
	if c == nil {
		return 0
	}
	return c.id
}

// add stamps the event with the trace identity and the next sequence
// number and buffers it.
func (c *Ctx) add(ev Event) {
	ev.T0 = c.t0
	ev.Trace = c.id
	ev.Seq = c.seq
	c.seq++
	c.events = append(c.events, ev)
}

// Activity annotates the trace with the originating campaign activity
// (class name and contact-port label) that provoked the reverse lookup.
func (c *Ctx) Activity(class, port string) {
	if c == nil {
		return
	}
	c.add(Event{Time: c.t0, Kind: KindActivity, Class: class, Port: port})
}

// CacheHit records that the querier's resolver answered from cache and no
// upstream query was sent.
func (c *Ctx) CacheHit(now simtime.Time) {
	if c == nil {
		return
	}
	c.add(Event{Time: now, Kind: KindCacheHit})
}

// Query records one upstream query attempt at a hierarchy level
// (attempt counts from 1).
func (c *Ctx) Query(level string, attempt int, now simtime.Time) {
	if c == nil {
		return
	}
	c.add(Event{Time: now, Kind: KindQuery, Level: level, Attempt: attempt})
}

// Fault annotates the current attempt at a level with an injected fault
// (loss, latency, truncate, servfail, dead, unreachable).
func (c *Ctx) Fault(level string, attempt int, fault string, now simtime.Time) {
	if c == nil {
		return
	}
	c.add(Event{Time: now, Kind: KindFault, Level: level, Attempt: attempt, Fault: fault})
}

// Answer records a response at a level: its rcode and how much injected
// latency the answer suffered.
func (c *Ctx) Answer(level string, rcode uint8, lat simtime.Duration, now simtime.Time) {
	if c == nil {
		return
	}
	c.add(Event{Time: now, Kind: KindAnswer, Level: level, RCode: RCodeName(rcode), Dur: lat})
}

// TCP records a truncation-driven retry over TCP at a level.
func (c *Ctx) TCP(level string, attempt int, now simtime.Time) {
	if c == nil {
		return
	}
	c.add(Event{Time: now, Kind: KindTCP, Level: level, Attempt: attempt})
}

// GiveUp records that the resolver exhausted its retry budget at a level
// and abandoned the lookup.
func (c *Ctx) GiveUp(level string, now simtime.Time) {
	if c == nil {
		return
	}
	c.add(Event{Time: now, Kind: KindGiveUp, Level: level})
}

// Serve records the server-side handling of one query at an authority:
// the symbolic response code sent, or "silent" when the simulated
// authority stayed unreachable.
func (c *Ctx) Serve(authority, rcode string, now simtime.Time) {
	if c == nil {
		return
	}
	c.add(Event{Time: now, Kind: KindServe, Authority: authority, RCode: rcode})
}

// Sensor records that a sensor at the named authority kept a record of
// this lookup (after sampling and horizon), and indexes the record's
// (originator, querier, time) so the pipeline can join its provenance
// back to this trace.
func (c *Ctx) Sensor(authority string, orig, querier ipaddr.Addr, rcode uint8, now simtime.Time) {
	if c == nil {
		return
	}
	c.add(Event{Time: now, Kind: KindSensor, Authority: authority, RCode: RCodeName(rcode)})
	c.tr.mu.Lock()
	k := recKey{orig: orig, querier: querier, at: now}
	if _, dup := c.tr.index[k]; !dup {
		c.tr.index[k] = recRef{id: c.id, t0: c.t0}
	}
	c.tr.mu.Unlock()
}

// Finish commits the trace: appends the terminal "done" event carrying
// the total simulated duration and the number of upstream queries sent,
// then hands the events to the tracer (evicting the oldest committed
// trace when the ring is bounded and full).
func (c *Ctx) Finish(now simtime.Time, queries int) {
	if c == nil {
		return
	}
	c.add(Event{Time: now, Kind: KindDone, Dur: now.Sub(c.t0), Queries: queries})
	tr := Trace{ID: c.id, T0: c.t0, Events: c.events}
	t := c.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.max > 0 {
		if len(t.traces) < t.max {
			t.traces = append(t.traces, tr)
			t.next = len(t.traces) % t.max
			t.full = len(t.traces) == t.max && t.next == 0
			return
		}
		t.traces[t.next] = tr
		t.next = (t.next + 1) % t.max
		t.full = true
		t.dropped++
		return
	}
	t.traces = append(t.traces, tr)
	t.next = len(t.traces)
}

// RecordID reports which trace produced the sensor record identified by
// (originator, querier, record time), along with the trace's start time.
// ok is false when the record's lookup was not traced (sampled out, or
// tracing off).
func (t *Tracer) RecordID(orig, querier ipaddr.Addr, at simtime.Time) (id ID, t0 simtime.Time, ok bool) {
	if t == nil {
		return 0, 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ref, ok := t.index[recKey{orig: orig, querier: querier, at: at}]
	return ref.id, ref.t0, ok
}

// Pipeline appends a pipeline-provenance event to an existing trace:
// which Figure 2 stage saw a record of this trace and what it decided.
// It is safe to call from parallel pipeline workers; rendering sorts the
// event multiset into canonical order, so output bytes do not depend on
// commit order. Events for the pipeline use fixed high sequence numbers
// (per stage) so they sort after the lookup's own events.
func (t *Tracer) Pipeline(id ID, t0 simtime.Time, stage, outcome, detail string, now simtime.Time) {
	if t == nil {
		return
	}
	ev := Event{
		T0: t0, Trace: id, Seq: pipelineSeq(stage), Time: now,
		Kind: KindPipeline, Stage: stage, Outcome: outcome, Detail: detail,
	}
	t.mu.Lock()
	t.extra = append(t.extra, ev)
	t.mu.Unlock()
}

// pipelineSeq maps a pipeline stage to its fixed sequence number. Lookups
// never reach these values, so pipeline events always sort after the DNS
// path; ties within a stage fall through to the byte-order tiebreak.
func pipelineSeq(stage string) int {
	switch stage {
	case "dedup":
		return 1000
	case "filter":
		return 1001
	case "extract":
		return 1002
	case "classify":
		return 1003
	default:
		return 1009
	}
}

// committed returns the ring's committed traces oldest-first plus the
// pipeline extras, under the tracer lock.
func (t *Tracer) committed() ([]Trace, []Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Trace
	if t.max > 0 && t.full {
		out = append(out, t.traces[t.next:]...)
		out = append(out, t.traces[:t.next]...)
	} else {
		out = append(out, t.traces...)
	}
	extra := make([]Event, len(t.extra))
	copy(extra, t.extra)
	return out, extra
}
