package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dnsbackscatter/internal/simtime"
)

// JSONL renders every committed event — lookup paths and pipeline
// provenance — as one JSON object per line, sorted by (t0, trace, seq,
// time, line bytes). The sort makes the output a canonical form of the
// event multiset: byte-identical at any worker count and across repeated
// same-seed runs, regardless of commit order. A nil tracer renders empty.
func (t *Tracer) JSONL() []byte {
	if t == nil {
		return []byte{}
	}
	traces, extra := t.committed()
	var evs []Event
	for _, tr := range traces {
		evs = append(evs, tr.Events...)
	}
	evs = append(evs, extra...)
	type keyed struct {
		t0, tm int64
		id     uint64
		seq    int
		line   []byte
	}
	ks := make([]keyed, 0, len(evs))
	for _, ev := range evs {
		line, err := json.Marshal(ev)
		if err != nil {
			// Event is a plain struct of scalars; Marshal cannot fail.
			continue
		}
		ks = append(ks, keyed{t0: int64(ev.T0), tm: int64(ev.Time), id: uint64(ev.Trace), seq: ev.Seq, line: line})
	}
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.t0 != b.t0 {
			return a.t0 < b.t0
		}
		if a.id != b.id {
			return a.id < b.id
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		if a.tm != b.tm {
			return a.tm < b.tm
		}
		return bytes.Compare(a.line, b.line) < 0
	})
	var buf bytes.Buffer
	for _, k := range ks {
		buf.Write(k.line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// ParseJSONL reads a JSONL trace log (as written by JSONL) and groups the
// events back into traces sorted by (t0, id), events in seq order. Lines
// that are blank are skipped; a malformed line is an error.
func ParseJSONL(r io.Reader) ([]Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	byID := make(map[ID]*Trace)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		tr, ok := byID[ev.Trace]
		if !ok {
			tr = &Trace{ID: ev.Trace, T0: ev.T0}
			byID[ev.Trace] = tr
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	ids := make([]ID, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]Trace, 0, len(ids))
	for _, id := range ids {
		tr := byID[id]
		sort.SliceStable(tr.Events, func(i, j int) bool {
			a, b := tr.Events[i], tr.Events[j]
			if a.Seq != b.Seq {
				return a.Seq < b.Seq
			}
			return a.Time < b.Time
		})
		out = append(out, *tr)
	}
	sortTraces(out)
	return out, nil
}

// sortTraces orders traces chronologically, ties broken by ID.
func sortTraces(ts []Trace) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].T0 != ts[j].T0 {
			return ts[i].T0 < ts[j].T0
		}
		return ts[i].ID < ts[j].ID
	})
}

// Filter selects traces for Traces and the /traces endpoint. Zero fields
// match everything.
type Filter struct {
	// Originator keeps traces whose lookup originator equals this
	// dotted-quad address.
	Originator string
	// Querier keeps traces whose lookup querier equals this address.
	Querier string
	// RCode keeps traces containing an answer or sensor event with this
	// symbolic rcode (noerror, nxdomain, servfail).
	RCode string
	// MinDur keeps traces whose total duration is at least this many
	// simulated seconds.
	MinDur simtime.Duration
	// Limit caps the result at the most recent N traces (0 = no cap).
	Limit int
}

// match reports whether one trace passes the filter.
func (f Filter) match(tr Trace) bool {
	var orig, querier string
	var dur simtime.Duration
	rcodeHit := f.RCode == ""
	for _, ev := range tr.Events {
		switch ev.Kind {
		case KindLookup:
			orig, querier = ev.Orig, ev.Querier
		case KindDone:
			dur = ev.Dur
		}
		if !rcodeHit && ev.RCode == f.RCode {
			rcodeHit = true
		}
	}
	if f.Originator != "" && orig != f.Originator {
		return false
	}
	if f.Querier != "" && querier != f.Querier {
		return false
	}
	if dur < f.MinDur {
		return false
	}
	return rcodeHit
}

// Traces returns the committed traces passing the filter, chronological
// (oldest first); with a Limit it keeps the most recent matches. Pipeline
// provenance events are merged into their traces.
func (t *Tracer) Traces(f Filter) []Trace {
	if t == nil {
		return nil
	}
	committed, extra := t.committed()
	byID := make(map[ID]int, len(committed))
	out := make([]Trace, 0, len(committed))
	for _, tr := range committed {
		evs := make([]Event, len(tr.Events))
		copy(evs, tr.Events)
		tr.Events = evs
		byID[tr.ID] = len(out)
		out = append(out, tr)
	}
	sort.SliceStable(extra, func(i, j int) bool {
		if extra[i].Seq != extra[j].Seq {
			return extra[i].Seq < extra[j].Seq
		}
		if extra[i].Time != extra[j].Time {
			return extra[i].Time < extra[j].Time
		}
		return extra[i].Detail < extra[j].Detail
	})
	for _, ev := range extra {
		if i, ok := byID[ev.Trace]; ok {
			out[i].Events = append(out[i].Events, ev)
		}
	}
	sortTraces(out)
	return f.Apply(out)
}

// Apply filters an already-sorted trace set (e.g. one read back with
// ParseJSONL), keeping the most recent Limit matches. Traces uses it on a
// live tracer's committed set.
func (f Filter) Apply(ts []Trace) []Trace {
	kept := make([]Trace, 0, len(ts))
	for _, tr := range ts {
		if f.match(tr) {
			kept = append(kept, tr)
		}
	}
	if f.Limit > 0 && len(kept) > f.Limit {
		kept = kept[len(kept)-f.Limit:]
	}
	return kept
}

// RenderTree renders one trace as an indented span tree: the lookup
// header, then each event on the path with per-level indentation, so a
// root→national→final walk (with its retries and injected faults) reads
// top to bottom.
func RenderTree(tr Trace) string {
	var b strings.Builder
	var orig, querier string
	var dur simtime.Duration
	queries := 0
	for _, ev := range tr.Events {
		switch ev.Kind {
		case KindLookup:
			orig, querier = ev.Orig, ev.Querier
		case KindDone:
			dur, queries = ev.Dur, ev.Queries
		}
	}
	fmt.Fprintf(&b, "trace %s  querier=%s orig=%s  t0=%s  dur=%ds queries=%d\n",
		tr.ID, querier, orig, tr.T0, dur, queries)
	for _, ev := range tr.Events {
		switch ev.Kind {
		case KindLookup:
			// Rendered in the header.
		case KindActivity:
			fmt.Fprintf(&b, "  activity  class=%s port=%s\n", ev.Class, ev.Port)
		case KindCacheHit:
			fmt.Fprintf(&b, "  cache hit  (answered locally, no upstream queries)\n")
		case KindQuery:
			fmt.Fprintf(&b, "  [%s] +%ds query attempt=%d\n", ev.Level, ev.Time.Sub(tr.T0), ev.Attempt)
		case KindFault:
			fmt.Fprintf(&b, "  [%s]   ! fault=%s attempt=%d\n", ev.Level, ev.Fault, ev.Attempt)
		case KindAnswer:
			lat := ""
			if ev.Dur > 0 {
				lat = fmt.Sprintf(" lat=%ds", ev.Dur)
			}
			fmt.Fprintf(&b, "  [%s]   answer rcode=%s%s\n", ev.Level, ev.RCode, lat)
		case KindTCP:
			fmt.Fprintf(&b, "  [%s]   tcp retry attempt=%d\n", ev.Level, ev.Attempt)
		case KindGiveUp:
			fmt.Fprintf(&b, "  [%s]   gave up (retry budget exhausted)\n", ev.Level)
		case KindSensor:
			fmt.Fprintf(&b, "  sensor[%s] +%ds recorded rcode=%s\n", ev.Authority, ev.Time.Sub(tr.T0), ev.RCode)
		case KindServe:
			fmt.Fprintf(&b, "  serve[%s] querier=%s rcode=%s\n", ev.Authority, ev.Querier, ev.RCode)
		case KindDone:
			fmt.Fprintf(&b, "  done  +%ds queries=%d\n", ev.Dur, ev.Queries)
		case KindPipeline:
			d := ""
			if ev.Detail != "" {
				d = " " + ev.Detail
			}
			fmt.Fprintf(&b, "  pipeline[%s] %s%s\n", ev.Stage, ev.Outcome, d)
		default:
			fmt.Fprintf(&b, "  %s\n", ev.Kind)
		}
	}
	return b.String()
}

// Summarize aggregates a trace set into the operator's three questions:
// the top-N slowest lookup chains, where lookups gave up, and the
// per-level injected-latency distribution.
func Summarize(ts []Trace, topN int) string {
	if topN <= 0 {
		topN = 10
	}
	type chain struct {
		tr      Trace
		dur     simtime.Duration
		queries int
	}
	var chains []chain
	giveups := map[string]int{}
	lat := map[string][]simtime.Duration{}
	var levels []string
	for _, tr := range ts {
		c := chain{tr: tr}
		for _, ev := range tr.Events {
			switch ev.Kind {
			case KindDone:
				c.dur, c.queries = ev.Dur, ev.Queries
			case KindGiveUp:
				giveups[ev.Level]++
			case KindAnswer:
				if _, ok := lat[ev.Level]; !ok {
					levels = append(levels, ev.Level)
				}
				lat[ev.Level] = append(lat[ev.Level], ev.Dur)
			}
		}
		chains = append(chains, c)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "traces: %d\n\n", len(ts))

	sort.SliceStable(chains, func(i, j int) bool {
		if chains[i].dur != chains[j].dur {
			return chains[i].dur > chains[j].dur
		}
		return chains[i].tr.ID < chains[j].tr.ID
	})
	if len(chains) > topN {
		chains = chains[:topN]
	}
	fmt.Fprintf(&b, "slowest chains (top %d):\n", len(chains))
	for _, c := range chains {
		var orig string
		for _, ev := range c.tr.Events {
			if ev.Kind == KindLookup {
				orig = ev.Orig
				break
			}
		}
		fmt.Fprintf(&b, "  %4ds  %2d queries  %s  orig=%s\n", c.dur, c.queries, c.tr.ID, orig)
	}

	fmt.Fprintf(&b, "\ngive-up paths:\n")
	var glv []string
	for lv := range giveups {
		glv = append(glv, lv)
	}
	sort.Strings(glv)
	if len(glv) == 0 {
		fmt.Fprintf(&b, "  (none)\n")
	}
	for _, lv := range glv {
		fmt.Fprintf(&b, "  %-8s %d\n", lv, giveups[lv])
	}

	fmt.Fprintf(&b, "\nper-level injected latency (seconds):\n")
	sort.Strings(levels)
	for _, lv := range levels {
		ds := lat[lv]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var sum simtime.Duration
		buckets := map[simtime.Duration]int{}
		for _, d := range ds {
			sum += d
			buckets[latBucket(d)]++
		}
		fmt.Fprintf(&b, "  %-8s n=%d mean=%.2f p50=%d max=%d  |", lv, len(ds),
			float64(sum)/float64(len(ds)), ds[len(ds)/2], ds[len(ds)-1])
		var bks []simtime.Duration
		for bk := range buckets {
			bks = append(bks, bk)
		}
		sort.Slice(bks, func(i, j int) bool { return bks[i] < bks[j] })
		for _, bk := range bks {
			fmt.Fprintf(&b, " <=%d:%d", bk, buckets[bk])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// latBucket rounds a latency up to its power-of-two histogram bucket.
func latBucket(d simtime.Duration) simtime.Duration {
	b := simtime.Duration(1)
	for b < d {
		b *= 2
	}
	if d == 0 {
		return 0
	}
	return b
}
