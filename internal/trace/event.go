package trace

import (
	"fmt"
	"strconv"
	"strings"

	"dnsbackscatter/internal/simtime"
)

// Event kinds, in the order they appear along a lookup's path.
const (
	// KindLookup is a trace's first event: querier and qname originator.
	KindLookup = "lookup"
	// KindActivity annotates the campaign activity behind the lookup.
	KindActivity = "activity"
	// KindCacheHit marks a resolver cache answer (no upstream queries).
	KindCacheHit = "cache_hit"
	// KindQuery is one upstream query attempt at a hierarchy level.
	KindQuery = "query"
	// KindFault marks an injected fault suffered by the current attempt.
	KindFault = "fault"
	// KindAnswer is a response from a hierarchy level.
	KindAnswer = "answer"
	// KindTCP marks a truncation-driven TCP retry.
	KindTCP = "tcp"
	// KindGiveUp marks retry-budget exhaustion at a level.
	KindGiveUp = "giveup"
	// KindSensor marks a sensor keeping a record of the lookup.
	KindSensor = "sensor"
	// KindDone is a trace's terminal event (total duration, query count).
	KindDone = "done"
	// KindServe is a server-side serve event (live dnsserver path).
	KindServe = "serve"
	// KindPipeline is a Figure 2 pipeline provenance event.
	KindPipeline = "pipeline"
)

// Event is one structured trace event. Field order is the JSON field
// order; the zero value of every optional field is omitted, so rendered
// lines carry only what the event kind uses.
type Event struct {
	// T0 is the owning trace's start time (the JSONL primary sort key).
	T0 simtime.Time `json:"t0"`
	// Trace is the owning trace's ID.
	Trace ID `json:"trace"`
	// Seq orders events within a trace; pipeline events use fixed high
	// values so they always sort after the DNS path.
	Seq int `json:"seq"`
	// Time is the simulated time of the event itself.
	Time simtime.Time `json:"t"`
	// Kind is one of the Kind constants.
	Kind string `json:"kind"`
	// Level is the hierarchy level (root, national, final) for
	// query/fault/answer/tcp/giveup events.
	Level string `json:"level,omitempty"`
	// Authority is the sensor authority for sensor/serve events.
	Authority string `json:"authority,omitempty"`
	// Querier is the resolver address (lookup and serve events).
	Querier string `json:"querier,omitempty"`
	// Orig is the originator whose reverse name is queried.
	Orig string `json:"orig,omitempty"`
	// Class is the campaign activity class (activity events).
	Class string `json:"class,omitempty"`
	// Port is the activity contact-port label, e.g. "tcp443" (activity
	// events).
	Port string `json:"port,omitempty"`
	// RCode is the symbolic response code (answer/sensor events).
	RCode string `json:"rcode,omitempty"`
	// Attempt is the 1-based attempt number (query/fault/tcp events).
	Attempt int `json:"attempt,omitempty"`
	// Fault is the injected fault kind (fault events).
	Fault string `json:"fault,omitempty"`
	// Dur is injected latency (answer) or total duration (done) seconds.
	Dur simtime.Duration `json:"dur,omitempty"`
	// Queries is the total upstream queries sent (done events).
	Queries int `json:"queries,omitempty"`
	// Stage is the pipeline stage name (pipeline events).
	Stage string `json:"stage,omitempty"`
	// Outcome is the stage's decision, e.g. kept/dropped (pipeline
	// events).
	Outcome string `json:"outcome,omitempty"`
	// Detail carries stage-specific context (pipeline events).
	Detail string `json:"detail,omitempty"`
}

// String renders the ID as 16 zero-padded hex digits.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the ID as a 16-digit hex JSON string.
func (id ID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON parses the hex-string form produced by MarshalJSON.
func (id *ID) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return fmt.Errorf("trace: id must be a hex string, got %s", s)
	}
	v, err := ParseID(strings.Trim(s, `"`))
	if err != nil {
		return err
	}
	*id = v
	return nil
}

// ParseID parses a 16-digit hex trace ID as rendered by ID.String.
func ParseID(s string) (ID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad id %q: %w", s, err)
	}
	return ID(v), nil
}

// RCodeName returns the symbolic name for a DNS response code: the three
// the simulation produces get their RFC names, anything else renders as
// its number.
func RCodeName(rcode uint8) string {
	switch rcode {
	case 0:
		return "noerror"
	case 2:
		return "servfail"
	case 3:
		return "nxdomain"
	default:
		return strconv.Itoa(int(rcode))
	}
}
