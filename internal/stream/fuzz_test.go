package stream

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/simtime"
)

// fuzzRecordSize is the encoded record width the fuzzer decodes:
// int32 time, uint32 originator, uint32 querier, little-endian.
const fuzzRecordSize = 12

// decodeFuzz turns arbitrary bytes into an engine config and record
// sequence: byte 0 picks the ingest batch size, byte 1 the originator
// cap, and the rest parses as fixed-width records (timestamps signed,
// so out-of-order and negative times are in-domain).
func decodeFuzz(data []byte) (batch, maxOrig int, recs []dnslog.Record) {
	batch, maxOrig = 7, 64
	if len(data) > 0 {
		batch = 1 + int(data[0])%64
	}
	if len(data) > 1 {
		maxOrig = 16 + int(data[1])*4
	}
	// Bound the decoded stream so giant mutated inputs keep each fuzz
	// exec fast (every record can force an epoch re-score in the worst
	// case); 512 records still cross epochs and force eviction.
	const maxFuzzRecords = 512
	for i := 2; i+fuzzRecordSize <= len(data) && len(recs) < maxFuzzRecords; i += fuzzRecordSize {
		recs = append(recs, dnslog.Record{
			Time:       simtime.Time(int32(binary.LittleEndian.Uint32(data[i:]))),
			Originator: ipaddr.Addr(binary.LittleEndian.Uint32(data[i+4:])),
			Querier:    ipaddr.Addr(binary.LittleEndian.Uint32(data[i+8:])),
		})
	}
	return batch, maxOrig, recs
}

// hostileNames fabricates reverse names straight from the querier's
// bytes — embedded NULs, non-UTF-8, absurd label shapes — so the static
// feature path sees genuinely malformed input.
func hostileNames(a ipaddr.Addr) (string, bool) {
	o0, o1, o2, o3 := a.Octets()
	raw := []byte{o0, '.', o1, 0x00, o2, 0xff, '-', o3, '.', 'j', 'p'}
	return string(raw[:2+int(o3)%9]), o2%7 == 0
}

// FuzzStreamIngest feeds arbitrary record interleavings through the
// engine and checks the safety contract: no panics on any byte soup,
// the tracked-originator count never exceeds the hard bound, and
// snapshots stay canonical — repeated rendering and a fresh replay of
// the same batches are byte-identical.
func FuzzStreamIngest(f *testing.F) {
	// Seeds: empty, an ordered burst, duplicate+reversed timestamps, and
	// a boundary-hopping pair (also checked in as files under testdata).
	f.Add([]byte{})
	burst := []byte{3, 8}
	for i := 0; i < 8; i++ {
		rec := make([]byte, fuzzRecordSize)
		binary.LittleEndian.PutUint32(rec[0:], uint32(i*40))
		binary.LittleEndian.PutUint32(rec[4:], uint32(0x0a000001+i%2))
		binary.LittleEndian.PutUint32(rec[8:], uint32(0xc0a80000+i))
		burst = append(burst, rec...)
	}
	f.Add(burst)
	rev := []byte{1, 0}
	for i := 8; i > 0; i-- {
		rec := make([]byte, fuzzRecordSize)
		binary.LittleEndian.PutUint32(rec[0:], uint32(i*7)) // re-used times
		binary.LittleEndian.PutUint32(rec[4:], 0x7f000001)
		binary.LittleEndian.PutUint32(rec[8:], uint32(i%3))
		rev = append(rev, rec...)
	}
	f.Add(rev)

	f.Fuzz(func(t *testing.T, data []byte) {
		batch, maxOrig, recs := decodeFuzz(data)
		mk := func() *Engine {
			return New(Config{
				Geo:            geo.NewRegistry(9),
				NameOf:         hostileNames,
				Scorer:         parityScorer{},
				MinQueriers:    2,
				MaxOriginators: maxOrig,
				SampleK:        8,
				HHHCapacity:    16,
				DedupSlots:     1 << 10,
				Epoch:          10 * simtime.Minute,
				Seed:           1,
				Workers:        1, // worker invariance is pinned by TestWorkerDeterminism
			})
		}
		run := func(e *Engine) {
			for i := 0; i < len(recs); i += batch {
				j := i + batch
				if j > len(recs) {
					j = len(recs)
				}
				e.Ingest(recs[i:j])
				if got, max := e.Tracked(), e.MaxTracked(); got > max {
					t.Fatalf("tracked %d exceeds bound %d after batch %d", got, max, i/batch)
				}
			}
			e.Tick(e.Status().Watermark + 1)
		}
		e1 := mk()
		run(e1)
		snap := e1.Snapshot()
		if again := e1.Snapshot(); !bytes.Equal(snap, again) {
			t.Fatal("snapshot is not idempotent")
		}
		e2 := mk()
		run(e2)
		if replay := e2.Snapshot(); !bytes.Equal(snap, replay) {
			t.Fatal("replaying identical batches changed snapshot bytes")
		}
	})
}
