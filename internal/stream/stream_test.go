package stream

import (
	"bytes"
	"strings"
	"testing"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/features"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/prof"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

// testNames steers static features from the querier's last octet.
func testNames(a ipaddr.Addr) (string, bool) {
	_, _, _, o3 := a.Octets()
	switch o3 % 3 {
	case 0:
		return "mail.example.jp", false
	case 1:
		return "home1-2-3-4.example.jp", false
	default:
		return "ns1.example.jp", false
	}
}

// parityScorer is a deterministic stand-in for a trained model.
type parityScorer struct{}

func (parityScorer) Classify(v *features.Vector) activity.Class {
	if v.Queriers%2 == 0 {
		return activity.Scan
	}
	return activity.Mail
}

// genRecords builds a seeded stream: nOrig originators with footprints
// spread over [1, 2*perOrig), timestamps advancing ~3 s per record so a
// few thousand records span multiple 10-minute buckets.
func genRecords(seed uint64, nOrig, perOrig int) []dnslog.Record {
	st := rng.New(seed)
	var recs []dnslog.Record
	t := simtime.Time(1000)
	for o := 0; o < nOrig; o++ {
		orig := ipaddr.FromOctets(192, byte(o>>8), byte(o), 1)
		nq := 1 + st.Intn(2*perOrig)
		for q := 0; q < nq; q++ {
			recs = append(recs, dnslog.Record{
				Time:       t,
				Originator: orig,
				Querier:    ipaddr.Addr(st.Uint64()),
			})
			t = t.Add(3)
		}
	}
	// Interleave across originators so shards fill concurrently.
	st.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	return recs
}

func testConfig(workers int) Config {
	return Config{
		Geo:            geo.NewRegistry(42),
		NameOf:         testNames,
		Scorer:         parityScorer{},
		MinQueriers:    10,
		Epoch:          simtime.Hour,
		MaxOriginators: 1 << 10,
		SampleK:        64,
		HHHCapacity:    64,
		Seed:           7,
		Workers:        workers,
	}
}

func feedIn(e *Engine, recs []dnslog.Record, batch int) {
	for i := 0; i < len(recs); i += batch {
		j := i + batch
		if j > len(recs) {
			j = len(recs)
		}
		e.Ingest(recs[i:j])
	}
}

// TestWorkerDeterminism pins the package contract: identical record
// sequences produce byte-identical snapshots and status at workers
// {1, 8}, whatever the batch size.
func TestWorkerDeterminism(t *testing.T) {
	recs := genRecords(1, 300, 30)
	var snaps [][]byte
	var status [][]byte
	for _, w := range []int{1, 8} {
		for _, batch := range []int{97, 4096} {
			e := New(testConfig(w))
			feedIn(e, recs, batch)
			e.Tick(recs[len(recs)-1].Time + 1)
			snaps = append(snaps, e.Snapshot())
			status = append(status, e.StatusJSON())
		}
	}
	for i := 1; i < len(snaps); i++ {
		if !bytes.Equal(snaps[0], snaps[i]) {
			t.Fatalf("snapshot %d differs from snapshot 0 (workers/batch variation changed bytes)", i)
		}
		if !bytes.Equal(status[0], status[i]) {
			t.Fatalf("status %d differs from status 0", i)
		}
	}
	if !strings.Contains(string(snaps[0]), "verdict ") {
		t.Fatal("snapshot carries no verdicts")
	}
	if !strings.Contains(string(snaps[0]), "hhh originators") ||
		!strings.Contains(string(snaps[0]), "hhh queriers") {
		t.Fatal("snapshot missing heavy-hitter sections")
	}
}

// TestOriginatorBound floods the engine with 10× its capacity: tracked
// state must respect the hard bound, evictions must fire, and the
// heavy-hitter view must keep the evicted mass (total == kept records).
func TestOriginatorBound(t *testing.T) {
	cfg := testConfig(4)
	cfg.MaxOriginators = 256
	cfg.DedupWindow = 0
	e := New(cfg)
	st := rng.New(3)
	var recs []dnslog.Record
	for i := 0; i < 10*256; i++ {
		recs = append(recs, dnslog.Record{
			Time:       simtime.Time(1000 + i),
			Originator: ipaddr.Addr(st.Uint64()),
			Querier:    ipaddr.Addr(st.Uint64()),
		})
	}
	feedIn(e, recs, 512)
	if got, max := e.Tracked(), e.MaxTracked(); got > max {
		t.Fatalf("tracked %d exceeds hard bound %d", got, max)
	}
	status := e.Status()
	if status.Evictions == 0 {
		t.Fatal("10x overload produced no evictions")
	}
	if status.Kept != uint64(len(recs)) {
		t.Fatalf("kept %d records, want %d (dedup off)", status.Kept, len(recs))
	}
	snap := string(e.Snapshot())
	if !strings.Contains(snap, "hhh originators total=2560") {
		t.Errorf("heavy hitters lost evicted mass:\n%.200s", snap)
	}
}

// TestEpochRescoring drives three epochs and checks verdicts, churn
// accounting, and the windowed epoch series.
func TestEpochRescoring(t *testing.T) {
	cfg := testConfig(2)
	reg := obs.NewRegistry()
	win := obs.NewWindow(simtime.Hour)
	reg.SetWindow(win)
	cfg.Obs = reg
	cfg.Acct = prof.New()

	e := New(cfg)
	st := rng.New(5)
	orig := ipaddr.MustParse("10.0.0.1")
	var recs []dnslog.Record
	for ep := 0; ep < 3; ep++ {
		base := simtime.Time(ep) * simtime.Time(simtime.Hour)
		for q := 0; q < 100; q++ {
			recs = append(recs, dnslog.Record{
				Time:       base + simtime.Time(q*35),
				Originator: orig,
				Querier:    ipaddr.Addr(st.Uint64()),
			})
		}
	}
	e.Ingest(recs)
	e.Tick(3 * simtime.Time(simtime.Hour))
	status := e.Status()
	if status.Epochs != 3 {
		t.Fatalf("epochs = %d, want 3 (two boundary crossings + final tick)", status.Epochs)
	}
	if status.Analyzable != 1 {
		t.Fatalf("analyzable = %d, want 1", status.Analyzable)
	}
	if len(e.Vectors()) != 1 || e.Vectors()[0].Originator != orig {
		t.Fatal("vectors missing the tracked originator")
	}
	if c, ok := e.Verdicts()[orig]; !ok || (c != activity.Scan && c != activity.Mail) {
		t.Fatalf("verdict missing or unexpected: %v %v", c, ok)
	}
	wsnap := string(win.Snapshot())
	if !strings.Contains(wsnap, "stream_epochs_total") {
		t.Error("window missing stream_epochs_total series")
	}
	if !strings.Contains(wsnap, "stream_verdicts_total") {
		t.Error("window missing stream_verdicts_total series")
	}
	if reg.Counter("stream_records_total").Value() != uint64(len(recs)) {
		t.Error("stream_records_total does not match ingested count")
	}
}

// TestOutOfOrderAndDuplicates replays a shuffled, duplicated stream:
// no panics, the watermark is the max time, and scoring still works.
func TestOutOfOrderAndDuplicates(t *testing.T) {
	recs := genRecords(9, 50, 20)
	recs = append(recs, recs[:200]...) // exact duplicates
	st := rng.New(1)
	st.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	var max simtime.Time
	for _, r := range recs {
		if r.Time > max {
			max = r.Time
		}
	}
	e := New(testConfig(3))
	feedIn(e, recs, 333)
	e.Tick(max + 1)
	if got := e.Status().Watermark; got != max {
		t.Fatalf("watermark %v, want %v", got, max)
	}
	if e.Status().Epochs == 0 {
		t.Fatal("no rescore ran")
	}
}

// TestEpochJump checks that one far-future record advances the epoch
// clock directly instead of replaying every intermediate tick.
func TestEpochJump(t *testing.T) {
	e := New(testConfig(1))
	q := rng.New(2)
	mk := func(at simtime.Time) dnslog.Record {
		return dnslog.Record{Time: at, Originator: ipaddr.MustParse("10.9.9.9"),
			Querier: ipaddr.Addr(q.Uint64())}
	}
	e.Ingest([]dnslog.Record{mk(0), mk(40), mk(1000 * simtime.Time(simtime.Hour)), mk(80)})
	if got := e.Status().Epochs; got != 1 {
		t.Fatalf("epochs = %d after jump, want exactly 1 boundary score", got)
	}
	if got := e.Status().Records; got != 4 {
		t.Fatalf("records = %d, want 4 (stragglers still ingested)", got)
	}
}

// TestDefaultsAndEmpty covers config defaulting, empty ingest, ticks
// before start, and the unscored snapshot path (nil Scorer).
func TestDefaultsAndEmpty(t *testing.T) {
	e := New(Config{Geo: geo.NewRegistry(1), NameOf: testNames})
	if e.MaxTracked() < 1<<16 {
		t.Fatalf("default MaxTracked %d < 2^16", e.MaxTracked())
	}
	e.Ingest(nil)
	e.Tick(50) // not started: no-op
	if e.Status().Epochs != 0 {
		t.Fatal("tick before first record must not score")
	}
	st := rng.New(4)
	var recs []dnslog.Record
	for q := 0; q < 120; q++ {
		recs = append(recs, dnslog.Record{Time: simtime.Time(q * 31),
			Originator: ipaddr.MustParse("10.1.1.1"), Querier: ipaddr.Addr(st.Uint64())})
	}
	e.Ingest(recs)
	e.Tick(simtime.Time(simtime.Hour))
	e.Tick(simtime.Time(simtime.Hour)) // repeat tick at same instant: no-op
	if got := e.Status().Epochs; got != 1 {
		t.Fatalf("epochs = %d, want 1", got)
	}
	snap := string(e.Snapshot())
	if !strings.Contains(snap, "unscored") {
		t.Errorf("nil-Scorer snapshot should mark vectors unscored:\n%.200s", snap)
	}
	if len(e.Verdicts()) != 0 {
		t.Error("nil Scorer produced verdicts")
	}
}

// TestDedupWindow pins the sliding-window suppression: repeats inside
// the window are dropped, repeats outside are kept.
func TestDedupWindow(t *testing.T) {
	e := New(testConfig(1))
	o, q := ipaddr.MustParse("10.2.2.2"), ipaddr.MustParse("172.16.0.1")
	e.Ingest([]dnslog.Record{
		{Time: 100, Originator: o, Querier: q},
		{Time: 101, Originator: o, Querier: q}, // inside 30 s window
		{Time: 200, Originator: o, Querier: q}, // outside
	})
	if got := e.Status().Kept; got != 2 {
		t.Fatalf("kept = %d, want 2", got)
	}
}

func BenchmarkEngineIngest(b *testing.B) {
	cfg := testConfig(0)
	e := New(cfg)
	recs := genRecords(1, 256, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Ingest(recs)
	}
}

// TestStatusValues pins the scalar flattening the alert engine's
// stream() expressions read: every key present, values matching the
// struct fields.
func TestStatusValues(t *testing.T) {
	s := Status{Epochs: 3, ScoredAt: 7200, Watermark: 7300, Records: 10,
		Kept: 8, Tracked: 5, MaxTracked: 64, Evictions: 2, Analyzable: 4, Churn: 6}
	v := s.Values()
	want := map[string]float64{
		"epochs": 3, "scored_at": 7200, "watermark": 7300, "records": 10,
		"kept": 8, "tracked": 5, "max_tracked": 64, "evictions": 2,
		"analyzable": 4, "churn": 6,
	}
	if len(v) != len(want) {
		t.Fatalf("Values has %d keys, want %d: %v", len(v), len(want), v)
	}
	for k, w := range want {
		if v[k] != w {
			t.Errorf("Values[%q] = %v, want %v", k, v[k], w)
		}
	}
}
