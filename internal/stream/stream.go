// Package stream is the always-on classification engine: it consumes
// sensor tuples continuously and keeps every originator's evidence in
// bounded sketch memory, re-scoring the population at epoch ticks.
//
// The batch pipeline (features.Extractor → classify) holds exact
// per-originator state for one interval and exits; the paper's sensors
// see ~10^9 queries (Table I) from an originator population that can
// exceed any per-originator budget by orders of magnitude. The engine
// bounds all of it:
//
//   - a fixed-size sliding dedup table per shard (last-seen pair slots
//     that expire by window, never grow),
//   - per-originator HLL + bottom-k sketches (internal/hll), capped at
//     MaxOriginators across 16 originator shards with deterministic
//     smallest-footprint eviction,
//   - hierarchical heavy-hitters sketches (internal/hhh) over both the
//     originator and querier address spaces, so mass evicted from the
//     per-originator table stays visible as prefix aggregates.
//
// Determinism contract: for a given record sequence (same batching and
// order), snapshots and verdicts are byte-identical at any Workers
// value. Shard assignment is a fixed hash, per-shard ingest is
// sequential in stream order, cross-shard reads merge in fixed shard
// index order, and every emission is sorted. Worker count only changes
// how fast the 16 shards drain.
package stream

import (
	"cmp"
	"encoding/json"
	"slices"
	"strconv"
	"sync"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/features"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/hhh"
	"dnsbackscatter/internal/hll"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/parallel"
	"dnsbackscatter/internal/prof"
	"dnsbackscatter/internal/simtime"
)

// Scorer classifies one feature vector; *classify.Model satisfies it.
// Implementations must be safe for concurrent read-only use.
type Scorer interface {
	Classify(v *features.Vector) activity.Class
}

// Config parameterizes an Engine. Zero values take the documented
// defaults; Geo and NameOf are required.
type Config struct {
	// Geo resolves querier addresses to AS and country.
	Geo *geo.Registry
	// NameOf resolves querier reverse names for static features.
	NameOf features.NameFunc
	// Scorer, when non-nil, classifies analyzable originators at every
	// epoch tick. Nil keeps sketches without verdicts.
	Scorer Scorer
	// MinQueriers is the analyzability threshold on the HLL estimate
	// (default 20, the paper's §III-B threshold).
	MinQueriers int
	// DedupWindow suppresses repeat (originator, querier) pairs
	// (default 30 s).
	DedupWindow simtime.Duration
	// SampleK is the bottom-k sample size per originator (default 256).
	SampleK int
	// MaxOriginators bounds tracked originators across all shards
	// (default 1 << 16). The hard bound is ceil(MaxOriginators/16)*16.
	MaxOriginators int
	// Epoch is the re-scoring cadence in simulated time (default 1 h).
	Epoch simtime.Duration
	// HHHCapacity is the per-level slot budget of the heavy-hitters
	// sketches (default 1024).
	HHHCapacity int
	// DedupSlots is the total sliding dedup table size, rounded down to
	// a power of two per shard (default 1 << 20 slots across shards).
	DedupSlots int
	// Seed drives every seeded hash in the engine (HHH tiebreaks).
	Seed uint64
	// Workers bounds re-scoring and ingest fan-out; output bytes are
	// identical for every value (see the package determinism contract).
	Workers int
	// Obs, when non-nil, receives engine counters; epoch-tick metrics
	// land in its Window as simtime series. Nil costs nothing.
	Obs *obs.Registry
	// Acct, when non-nil, accounts ingest/rescore resource usage on the
	// ops channel. Nil costs nothing.
	Acct *prof.Accountant
}

// engineShards is the fixed originator-shard count, independent of
// Workers so all intermediate state is worker-count invariant.
const engineShards = 16

// shardOf deterministically assigns an originator to a shard.
func shardOf(a ipaddr.Addr) int {
	z := uint64(a) * 0x9e3779b97f4a7c15
	z ^= z >> 29
	return int(z % engineShards)
}

// dedupSlot is one sliding-window last-seen entry.
type dedupSlot struct {
	key  uint64
	last simtime.Time
}

// agg is one originator's bounded evidence. Persistence uses a monotone
// bucket counter instead of a bucket set so state stays O(1) over
// unbounded streams; buckets arriving out of order behind the high-water
// bucket are not re-counted (a vanishing undercount on sensor feeds,
// which are near-ordered).
type agg struct {
	queriers   *hll.Sketch
	sample     *hll.BottomK[ipaddr.Addr]
	queries    int
	lastBucket int
	nbuckets   int
}

// shard is one originator partition: its slice of the dedup table, its
// tracked originators, and its heavy-hitters views. Each shard is
// touched by exactly one worker per engine call.
type shard struct {
	dedup     []dedupSlot
	mask      uint64
	aggs      map[ipaddr.Addr]*agg
	cap       int
	hhhOrig   *hhh.Sketch
	hhhQry    *hhh.Sketch
	kept      uint64
	evictions uint64
}

// Engine is the streaming classifier. Create with New; all methods are
// safe for concurrent use (one coarse mutex — ingest batches and epoch
// ticks are the units of work, not single records).
type Engine struct {
	cfg Config

	mu     sync.Mutex
	shards [engineShards]*shard
	// epochStart is the current epoch's start (floored to Epoch);
	// watermark the maximum record time seen. Guarded by mu.
	epochStart simtime.Time
	watermark  simtime.Time
	started    bool
	startTime  simtime.Time
	epochs     int
	records    uint64
	// verdicts and vectors hold the last rescore's outputs, vectors in
	// canonical order. Guarded by mu.
	verdicts  map[ipaddr.Addr]activity.Class
	vectors   []*features.Vector
	lastScore simtime.Time
	churn     uint64
}

// New returns an engine for the given config, applying defaults.
//
//bslint:detroot
func New(cfg Config) *Engine {
	if cfg.MinQueriers == 0 {
		cfg.MinQueriers = 20
	}
	if cfg.DedupWindow == 0 {
		cfg.DedupWindow = 30 * simtime.Second
	}
	if cfg.SampleK <= 0 {
		cfg.SampleK = 256
	}
	if cfg.MaxOriginators <= 0 {
		cfg.MaxOriginators = 1 << 16
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = simtime.Hour
	}
	if cfg.HHHCapacity <= 0 {
		cfg.HHHCapacity = 1024
	}
	if cfg.DedupSlots <= 0 {
		cfg.DedupSlots = 1 << 20
	}
	e := &Engine{cfg: cfg, verdicts: make(map[ipaddr.Addr]activity.Class)}
	perShardSlots := nextPow2(cfg.DedupSlots / engineShards)
	perShardCap := (cfg.MaxOriginators + engineShards - 1) / engineShards
	for s := range e.shards {
		e.shards[s] = &shard{
			dedup:   make([]dedupSlot, perShardSlots),
			mask:    uint64(perShardSlots - 1),
			aggs:    make(map[ipaddr.Addr]*agg),
			cap:     perShardCap,
			hhhOrig: hhh.New(cfg.HHHCapacity, cfg.Seed),
			hhhQry:  hhh.New(cfg.HHHCapacity, cfg.Seed),
		}
	}
	return e
}

// nextPow2 rounds n up to a power of two, minimum 1.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// MaxTracked is the engine's hard originator bound: the per-shard cap
// times the shard count (≥ Config.MaxOriginators).
func (e *Engine) MaxTracked() int { return e.shards[0].cap * engineShards }

// Ingest feeds a batch of records through dedup into the sketches,
// firing an epoch re-score whenever a record's timestamp crosses the
// current epoch boundary. Records need not be globally ordered; the
// epoch clock only moves forward (a far-future record advances it, and
// stragglers behind it still land in the sketches).
//
//bslint:detroot
func (e *Engine) Ingest(recs []dnslog.Record) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(recs) == 0 {
		return
	}
	if !e.started {
		e.started = true
		t := recs[0].Time
		e.epochStart = t - t%simtime.Time(e.cfg.Epoch)
		e.startTime = e.epochStart
		e.watermark = t
	}
	i := 0
	for i < len(recs) {
		end := e.epochStart + simtime.Time(e.cfg.Epoch)
		j := i
		for j < len(recs) && recs[j].Time < end {
			j++
		}
		e.ingestLocked(recs[i:j])
		if j == len(recs) {
			break
		}
		// recs[j] crossed the boundary: score the closing epoch, then
		// jump the clock to the record's epoch (a single far-future
		// record must not replay every intermediate tick).
		e.rescoreLocked(end)
		t := recs[j].Time
		next := t - t%simtime.Time(e.cfg.Epoch)
		if next < end {
			next = end
		}
		e.epochStart = next
		i = j
	}
}

// ingestLocked distributes one intra-epoch batch across the shards.
// Callers hold e.mu.
func (e *Engine) ingestLocked(recs []dnslog.Record) {
	if len(recs) == 0 {
		return
	}
	e.records += uint64(len(recs))
	for i := range recs {
		if recs[i].Time > e.watermark {
			e.watermark = recs[i].Time
		}
	}
	tok := e.cfg.Acct.Start("stream-ingest")
	var parts [engineShards][]dnslog.Record
	if len(recs) < 256 {
		// Small batches: a per-shard filtered pass beats partitioning.
		for s := range parts {
			parts[s] = recs
		}
	} else {
		var counts, offs [engineShards]int
		for i := range recs {
			counts[shardOf(recs[i].Originator)]++
		}
		for s := 1; s < engineShards; s++ {
			offs[s] = offs[s-1] + counts[s-1]
		}
		buf := make([]dnslog.Record, len(recs))
		pos := offs
		for _, r := range recs {
			s := shardOf(r.Originator)
			buf[pos[s]] = r
			pos[s]++
		}
		for s := range parts {
			parts[s] = buf[offs[s] : offs[s]+counts[s]]
		}
	}
	pool := parallel.Pool{Workers: e.cfg.Workers, Obs: e.cfg.Obs, Stage: "stream-ingest", Acct: e.cfg.Acct}
	pool.Each(engineShards, func(s int) {
		sh := e.shards[s]
		for _, r := range parts[s] {
			if shardOf(r.Originator) != s {
				continue // only in the small-batch unpartitioned path
			}
			sh.observe(r, &e.cfg)
		}
	})
	tok.End()
	e.cfg.Obs.Counter("stream_records_total").Add(uint64(len(recs)))
}

// observe feeds one record into a shard: sliding dedup, then sketches.
func (sh *shard) observe(r dnslog.Record, cfg *Config) {
	if cfg.DedupWindow > 0 {
		key := hll.Hash64(uint64(r.Originator)<<32 ^ uint64(r.Querier))
		slot := &sh.dedup[key&sh.mask]
		if slot.key == key && r.Time >= slot.last && r.Time.Sub(slot.last) < cfg.DedupWindow {
			return
		}
		slot.key = key
		slot.last = r.Time
	}
	sh.kept++
	a := sh.aggs[r.Originator]
	if a == nil {
		if len(sh.aggs) >= sh.cap {
			sh.evict()
		}
		a = &agg{
			queriers: hll.MustNew(11),
			sample:   hll.NewBottomK[ipaddr.Addr](cfg.SampleK),
			// lastBucket below any real bucket so the first record counts.
			lastBucket: -1 << 62,
		}
		sh.aggs[r.Originator] = a
	}
	a.queries++
	h := hll.Hash64(uint64(r.Querier))
	a.queriers.Add(h)
	a.sample.Add(h, r.Querier)
	if b := r.Time.TenMinuteBucket(); b > a.lastBucket {
		a.lastBucket = b
		a.nbuckets++
	}
	// Heavy-hitter views take every deduplicated record, so mass from
	// originators later evicted from the agg table stays aggregated.
	sh.hhhOrig.Add(r.Originator, 1)
	sh.hhhQry.Add(r.Querier, 1)
}

// evict drops the quarter of the shard's originators with the smallest
// footprints (estimate ascending, address ascending — a total order, so
// eviction is independent of map iteration).
func (sh *shard) evict() {
	type entry struct {
		a ipaddr.Addr
		n uint64
	}
	all := make([]entry, 0, len(sh.aggs))
	for a, ag := range sh.aggs {
		all = append(all, entry{a, ag.queriers.Estimate()})
	}
	slices.SortFunc(all, func(x, y entry) int {
		if x.n != y.n {
			return cmp.Compare(x.n, y.n)
		}
		return cmp.Compare(x.a, y.a)
	})
	drop := len(all) / 4
	if drop < 1 {
		drop = 1
	}
	for _, en := range all[:drop] {
		delete(sh.aggs, en.a)
	}
	sh.evictions += uint64(drop)
}

// Tick forces an epoch re-score at the given simulated time (replay
// drivers call it after the last batch; live mode calls it on its feed
// clock). Times at or before the last score are ignored.
func (e *Engine) Tick(at simtime.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.started || at <= e.lastScore {
		return
	}
	e.rescoreLocked(at)
	if next := at - at%simtime.Time(e.cfg.Epoch); next > e.epochStart {
		e.epochStart = next
	}
}

// rescoreLocked classifies the tracked population from current sketch
// state and updates verdict/churn series. Callers hold e.mu.
func (e *Engine) rescoreLocked(at simtime.Time) {
	tok := e.cfg.Acct.Start("stream-rescore")
	e.epochs++
	e.lastScore = at

	// Gather stats shard by shard in fixed order, then sort: the input
	// to norm and vector computation is canonical whatever the map
	// iteration produced.
	var stats []features.SketchStats
	tracked := 0
	for _, sh := range e.shards {
		tracked += len(sh.aggs)
		for orig, a := range sh.aggs {
			stats = append(stats, features.SketchStats{
				Originator: orig,
				Estimate:   int(a.queriers.Estimate()),
				Queries:    a.queries,
				Buckets:    a.nbuckets,
				Sample:     a.sample.Values(),
			})
		}
	}
	slices.SortFunc(stats, func(a, b features.SketchStats) int {
		return cmp.Compare(a.Originator, b.Originator)
	})
	dur := at.Sub(e.startTime)
	if dur < e.cfg.Epoch {
		dur = e.cfg.Epoch
	}
	norms := features.NormsFromStats(e.cfg.Geo, stats, dur)

	analyzable := stats[:0]
	for _, st := range stats {
		if st.Estimate >= e.cfg.MinQueriers {
			analyzable = append(analyzable, st)
		}
	}
	pool := parallel.Pool{Workers: e.cfg.Workers, Obs: e.cfg.Obs, Stage: "stream-rescore", Acct: e.cfg.Acct}
	vecs := parallel.Map(pool, len(analyzable), func(i int) *features.Vector {
		return features.SketchVector(e.cfg.Geo, e.cfg.NameOf, analyzable[i], norms)
	})
	out := vecs[:0]
	for _, v := range vecs {
		if v != nil {
			out = append(out, v)
		}
	}
	features.SortVectors(out)
	e.vectors = out

	if e.cfg.Scorer != nil {
		verdicts := make(map[ipaddr.Addr]activity.Class, len(out))
		var perClass [activity.NumClasses]uint64
		churned := 0
		for _, v := range out {
			c := e.cfg.Scorer.Classify(v)
			verdicts[v.Originator] = c
			perClass[c]++
			if prev, ok := e.verdicts[v.Originator]; ok && prev != c {
				churned++
			}
		}
		e.verdicts = verdicts
		e.churn += uint64(churned)
		for c := activity.Class(0); c < activity.NumClasses; c++ {
			if perClass[c] > 0 {
				e.cfg.Obs.Counter("stream_verdicts_total", obs.L("class", c.String())).AddAt(perClass[c], at)
			}
		}
		e.cfg.Obs.Counter("stream_verdict_churn_total").AddAt(uint64(churned), at)
	}
	e.cfg.Obs.Counter("stream_epochs_total").IncAt(at)
	e.cfg.Obs.Gauge("stream_tracked_originators").SetAt(int64(tracked), at)
	tok.End()
}

// Tracked reports how many originators currently hold sketch state.
func (e *Engine) Tracked() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, sh := range e.shards {
		n += len(sh.aggs)
	}
	return n
}

// Vectors returns the last re-score's feature vectors in canonical
// order. The slice is shared; callers must not mutate it.
func (e *Engine) Vectors() []*features.Vector {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.vectors
}

// Verdicts returns a copy of the last re-score's verdict map.
func (e *Engine) Verdicts() map[ipaddr.Addr]activity.Class {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[ipaddr.Addr]activity.Class, len(e.verdicts))
	for k, v := range e.verdicts {
		out[k] = v
	}
	return out
}

// hhhTop is how many prefixes per level Snapshot renders.
const hhhTop = 20

// Snapshot renders the engine's state as canonical text: an epoch
// header, the verdict table in vector order, and the top heavy-hitter
// prefixes per level for both address spaces. Byte-identical for a
// given record sequence at any worker count.
func (e *Engine) Snapshot() []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	var b []byte
	b = append(b, "stream epoch="...)
	b = strconv.AppendInt(b, int64(e.epochs), 10)
	b = append(b, " scored="...)
	b = append(b, e.lastScore.String()...)
	b = append(b, " tracked="...)
	n := 0
	for _, sh := range e.shards {
		n += len(sh.aggs)
	}
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, " analyzable="...)
	b = strconv.AppendInt(b, int64(len(e.vectors)), 10)
	b = append(b, '\n')
	for _, v := range e.vectors {
		b = append(b, "verdict "...)
		b = append(b, v.Originator.String()...)
		b = append(b, ' ')
		if c, ok := e.verdicts[v.Originator]; ok {
			b = append(b, c.String()...)
		} else {
			b = append(b, "unscored"...)
		}
		b = append(b, " queriers="...)
		b = strconv.AppendInt(b, int64(v.Queriers), 10)
		b = append(b, " queries="...)
		b = strconv.AppendInt(b, int64(v.Queries), 10)
		b = append(b, '\n')
	}
	b = e.appendHHH(b, "originators", func(sh *shard) *hhh.Sketch { return sh.hhhOrig })
	b = e.appendHHH(b, "queriers", func(sh *shard) *hhh.Sketch { return sh.hhhQry })
	return b
}

// appendHHH merges the per-shard sketches for one address space in
// fixed shard order and renders the top prefixes per level.
func (e *Engine) appendHHH(b []byte, title string, pick func(*shard) *hhh.Sketch) []byte {
	merged := hhh.New(e.cfg.HHHCapacity, e.cfg.Seed)
	for _, sh := range e.shards {
		merged.Merge(pick(sh))
	}
	b = append(b, "hhh "...)
	b = append(b, title...)
	b = append(b, " total="...)
	b = strconv.AppendUint(b, merged.Total(), 10)
	b = append(b, '\n')
	for _, bits := range hhh.Levels {
		es := merged.Level(bits)
		if len(es) > hhhTop {
			es = es[:hhhTop]
		}
		for _, en := range es {
			b = append(b, "  "...)
			b = append(b, en.String()...)
			b = append(b, '\n')
		}
	}
	return b
}

// Status is the /stream JSON document: engine progress and the verdict
// class histogram.
type Status struct {
	// Epochs is how many re-scores have run.
	Epochs int `json:"epochs"`
	// ScoredAt is the simulated time of the last re-score.
	ScoredAt simtime.Time `json:"scored_at"`
	// Watermark is the maximum record time ingested.
	Watermark simtime.Time `json:"watermark"`
	// Records is the total record count ingested (pre-dedup).
	Records uint64 `json:"records"`
	// Kept is the post-dedup record count.
	Kept uint64 `json:"kept"`
	// Tracked is the current originator count holding sketch state.
	Tracked int `json:"tracked"`
	// MaxTracked is the hard originator bound.
	MaxTracked int `json:"max_tracked"`
	// Evictions counts originators dropped by the memory bound.
	Evictions uint64 `json:"evictions"`
	// Analyzable is the vector count of the last re-score.
	Analyzable int `json:"analyzable"`
	// Churn counts verdict changes across all re-scores.
	Churn uint64 `json:"churn"`
	// Verdicts histograms the last re-score by class label.
	Verdicts map[string]int `json:"verdicts"`
}

// Values flattens the status into named scalars keyed by the StatusJSON
// field names — the source behind the alert engine's stream()
// expressions. Values are read by key, never ranged, so the map leaks
// no iteration order.
func (s Status) Values() map[string]float64 {
	return map[string]float64{
		"epochs":      float64(s.Epochs),
		"scored_at":   float64(s.ScoredAt),
		"watermark":   float64(s.Watermark),
		"records":     float64(s.Records),
		"kept":        float64(s.Kept),
		"tracked":     float64(s.Tracked),
		"max_tracked": float64(s.MaxTracked),
		"evictions":   float64(s.Evictions),
		"analyzable":  float64(s.Analyzable),
		"churn":       float64(s.Churn),
	}
}

// Status assembles the engine's current Status.
func (e *Engine) Status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Status{
		Epochs:     e.epochs,
		ScoredAt:   e.lastScore,
		Watermark:  e.watermark,
		Records:    e.records,
		MaxTracked: e.shards[0].cap * engineShards,
		Analyzable: len(e.vectors),
		Churn:      e.churn,
		Verdicts:   make(map[string]int),
	}
	for _, sh := range e.shards {
		st.Tracked += len(sh.aggs)
		st.Kept += sh.kept
		st.Evictions += sh.evictions
	}
	for _, c := range e.verdicts {
		st.Verdicts[c.String()]++
	}
	return st
}

// StatusJSON renders Status as deterministic JSON (map keys marshal
// sorted).
func (e *Engine) StatusJSON() []byte {
	out, err := json.MarshalIndent(e.Status(), "", "  ")
	if err != nil {
		// Status is plain data; Marshal cannot fail.
		return []byte("{}")
	}
	return append(out, '\n')
}
