package stream

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/prof"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

// soakEpochs and soakCap shape the scenario: the engine's originator
// budget is soakCap, and the stream pushes soakEpochs×soakCap distinct
// originators through it — ≥10× the capacity, the regime the batch
// pipeline cannot enter.
const (
	soakEpochs = 12
	soakCap    = 2048
)

// TestStreamSoak is the long-haul harness behind `make soak` (gated on
// BS_SOAK=1 — it pushes ~700k records and has timing-dependent heap
// assertions that don't belong in the default test sweep). It drives a
// multi-epoch scenario at >10× the engine's originator capacity and
// asserts the resource contract:
//
//   - tracked state never exceeds the hard bound,
//   - heap peaks plateau: the maximum over the last third of epochs
//     must not exceed twice the early-epoch peak (bounded RSS — sketch
//     state cannot creep with stream length),
//   - the stable goroutine count returns to its pre-run level,
//   - verdicts keep flowing at every epoch tick.
//
// With SOAK_DIR set, it writes the per-epoch resource report and the
// final stream snapshot there for the CI artifact upload.
func TestStreamSoak(t *testing.T) {
	if os.Getenv("BS_SOAK") != "1" {
		t.Skip("soak harness runs via `make soak` (BS_SOAK=1)")
	}
	acct := prof.New()
	reg := obs.NewRegistry()
	win := obs.NewWindow(simtime.Hour)
	reg.SetWindow(win)

	before := prof.StableGoroutines()
	e := New(Config{
		Geo:            geo.NewRegistry(42),
		NameOf:         soakNames,
		Scorer:         parityScorer{},
		MaxOriginators: soakCap,
		SampleK:        128,
		HHHCapacity:    512,
		Epoch:          simtime.Hour,
		Seed:           7,
		Obs:            reg,
		Acct:           acct,
	})

	st := rng.New(11)
	distinct := 0
	peaks := make([]uint64, 0, soakEpochs)
	for ep := 0; ep < soakEpochs; ep++ {
		stage := acct.Stage(fmt.Sprintf("soak-epoch-%02d", ep))
		tok := stage.Start()
		base := simtime.Time(ep) * simtime.Time(simtime.Hour)
		recs := soakEpochRecords(st, ep, base)
		distinct += soakCap // each epoch introduces soakCap fresh originators
		const batch = 8192
		for i := 0; i < len(recs); i += batch {
			j := i + batch
			if j > len(recs) {
				j = len(recs)
			}
			e.Ingest(recs[i:j])
		}
		tok.End()
		if got, max := e.Tracked(), e.MaxTracked(); got > max {
			t.Fatalf("epoch %d: tracked %d exceeds bound %d", ep, got, max)
		}
	}
	e.Tick(simtime.Time(soakEpochs) * simtime.Time(simtime.Hour))

	status := e.Status()
	if distinct < 10*soakCap {
		t.Fatalf("scenario too small: %d distinct originators < 10x capacity", distinct)
	}
	if status.Epochs < soakEpochs {
		t.Errorf("epochs = %d, want >= %d ticks", status.Epochs, soakEpochs)
	}
	if status.Evictions == 0 {
		t.Error("10x overload never evicted — the bound is not being exercised")
	}
	if status.Analyzable == 0 || len(status.Verdicts) == 0 {
		t.Errorf("no verdicts at final tick: analyzable=%d verdicts=%v",
			status.Analyzable, status.Verdicts)
	}

	// Bounded RSS: collect per-epoch heap peaks from the accounting
	// report and require the late plateau to stay within 2x of the
	// early peak. The factor absorbs GC scheduling noise; unbounded
	// growth (state linear in stream length) would blow far past it.
	report := acct.Report()
	for ep := 0; ep < soakEpochs; ep++ {
		name := fmt.Sprintf("soak-epoch-%02d", ep)
		for _, sstat := range report.Stages {
			if sstat.Stage == name {
				peaks = append(peaks, sstat.HeapPeakBytes)
			}
		}
	}
	if len(peaks) != soakEpochs {
		t.Fatalf("resource report has %d epoch stages, want %d", len(peaks), soakEpochs)
	}
	early := peaks[1] // epoch 0 includes warm-up allocation
	var late uint64
	for _, p := range peaks[2*soakEpochs/3:] {
		if p > late {
			late = p
		}
	}
	if late > 2*early {
		t.Errorf("heap peak grew %s (epoch 1) -> %s (late max): stream state is not bounded",
			prof.SizeString(early), prof.SizeString(late))
	}

	if after := prof.StableGoroutines(); after > before+2 {
		t.Errorf("stable goroutines grew %d -> %d across the soak", before, after)
	}

	if !strings.Contains(string(win.Snapshot()), "stream_verdicts_total") {
		t.Error("window has no verdict series after soak")
	}

	if dir := os.Getenv("SOAK_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("SOAK_DIR: %v", err)
		}
		writeArtifact(t, filepath.Join(dir, "soak-resources.json"), report.JSON())
		writeArtifact(t, filepath.Join(dir, "soak-snapshot.txt"), e.Snapshot())
		writeArtifact(t, filepath.Join(dir, "soak-timeseries.json"), win.SnapshotJSON())
	}
	t.Logf("soak: %d records, %d distinct originators, tracked %d/%d, %d evictions, heap early=%s late=%s",
		status.Records, distinct, status.Tracked, status.MaxTracked, status.Evictions,
		prof.SizeString(early), prof.SizeString(late))
}

// soakEpochRecords builds one epoch's stream: soakCap fresh originators
// (epoch-tagged addresses) plus returning heavy hitters, ~28 records
// per fresh originator spread across the hour.
func soakEpochRecords(st *rng.Stream, ep int, base simtime.Time) []dnslog.Record {
	recs := make([]dnslog.Record, 0, soakCap*28)
	for o := 0; o < soakCap; o++ {
		orig := ipaddr.FromOctets(byte(10+ep), byte(o>>8), byte(o), 7)
		nq := 4 + st.Intn(48)
		for q := 0; q < nq; q++ {
			recs = append(recs, dnslog.Record{
				Time:       base + simtime.Time(st.Intn(int(simtime.Hour))),
				Originator: orig,
				Querier:    ipaddr.Addr(st.Uint64()),
			})
		}
	}
	// A persistent scanner that spans every epoch keeps one originator
	// hot across the whole soak (verdict continuity).
	scanner := ipaddr.MustParse("203.0.113.99")
	for q := 0; q < 600; q++ {
		recs = append(recs, dnslog.Record{
			Time:       base + simtime.Time(st.Intn(int(simtime.Hour))),
			Originator: scanner,
			Querier:    ipaddr.Addr(st.Uint64()),
		})
	}
	st.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	return recs
}

// soakNames gives the soak population a static-feature mix.
func soakNames(a ipaddr.Addr) (string, bool) {
	_, _, _, o3 := a.Octets()
	switch o3 % 5 {
	case 0:
		return "mail.example.jp", false
	case 1:
		return "home1-2-3-4.example.jp", false
	case 2:
		return "crawl-1-2.example.com", false
	case 3:
		return "", false
	default:
		return "ns1.example.jp", o3%31 == 0
	}
}

// writeArtifact writes one soak artifact, failing the test on error.
func writeArtifact(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}
