// Package rng provides deterministic, splittable random number streams.
//
// Every stochastic subsystem in the simulator (world generation, activity
// scheduling, DNS cache jitter, machine-learning randomization) draws from
// its own named stream derived from a single master seed. Two runs with the
// same master seed therefore produce byte-identical results regardless of
// the order in which subsystems consume randomness.
//
// The generator is splitmix64 (Steele, Lea, Flood 2014): tiny state, full
// 64-bit period per stream, and good statistical quality for simulation
// workloads. It is not cryptographically secure and must never be used for
// key material.
package rng

import "math"

// Stream is a deterministic pseudo-random stream. The zero value is a valid
// stream seeded with 0; prefer New or Source.Stream for anything real.
type Stream struct {
	state uint64
}

// New returns a stream seeded directly with seed.
func New(seed uint64) *Stream {
	return &Stream{state: seed}
}

// golden gamma for splitmix64 state advance.
const gamma = 0x9e3779b97f4a7c15

// Uint64 returns the next 64 random bits.
func (s *Stream) Uint64() uint64 {
	s.state += gamma
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method avoids modulo bias.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	m := t & mask
	c = t >> 32
	t = aLo*bHi + m
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// Int63 returns a non-negative 63-bit random integer.
func (s *Stream) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box–Muller transform.
func (s *Stream) NormFloat64() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		v := s.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (s *Stream) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Pareto returns a Pareto(alpha)-distributed value with minimum xm. Heavy
// tails in footprint sizes and campaign durations come from here.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		return xm / math.Pow(u, 1/alpha)
	}
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Source derives independent named streams from one master seed.
type Source struct {
	seed uint64
}

// NewSource returns a stream factory for the given master seed.
func NewSource(seed uint64) *Source {
	return &Source{seed: seed}
}

// Stream returns the stream for name. The same (seed, name) pair always
// yields an identical stream, and distinct names yield decorrelated
// streams (FNV-1a mixing of the name into the seed).
func (src *Source) Stream(name string) *Stream {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	// One splitmix step decorrelates adjacent hashes.
	st := Stream{state: src.seed ^ h}
	return &Stream{state: st.Uint64()}
}
