package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewSource(42).Stream("activity")
	b := NewSource(42).Stream("activity")
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	src := NewSource(42)
	a := src.Stream("a")
	b := src.Stream("b")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("distinct streams produced %d identical draws out of 1000", same)
	}
}

func TestSeedSeparation(t *testing.T) {
	a := NewSource(1).Stream("x")
	b := NewSource(2).Stream("x")
	if a.Uint64() == b.Uint64() {
		t.Error("different seeds produced identical first draw")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for n := 1; n <= 100; n++ {
		for i := 0; i < 50; i++ {
			if v := s.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		if v := s.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestParetoMinimum(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(3, 1.5); v < 3 {
			t.Fatalf("Pareto(3, 1.5) = %v below minimum", v)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	s := New(19)
	const n = 100000
	over10 := 0
	for i := 0; i < n; i++ {
		if s.Pareto(1, 1.2) > 10 {
			over10++
		}
	}
	// P(X > 10) = 10^-1.2 ≈ 0.063 for Pareto(1, 1.2).
	frac := float64(over10) / n
	if frac < 0.04 || frac > 0.09 {
		t.Errorf("tail fraction = %v, want ~0.063", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	if err := quick.Check(func(raw uint8) bool {
		n := int(raw%64) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(29)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(12)
	}
}
