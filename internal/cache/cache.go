// Package cache implements the TTL cache used by simulated recursive
// resolvers.
//
// DNS caching is the dominant attenuator of backscatter (§II, §IV-D):
// whether an authority sees a reverse query at all depends on what the
// querier's resolver still holds — the final PTR record, or any NS
// delegation along the in-addr.arpa chain. The cache supports positive and
// negative entries (NXDomain results are cached too, per RFC 2308), uses
// the simulator's explicit clock, and bounds memory with random eviction
// of expired-first entries.
package cache

import (
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/simtime"
)

// Entry is a cached DNS result.
type Entry struct {
	Value    string // e.g. a PTR target or NS hostname; empty for negative
	Negative bool   // NXDomain / NODATA result
	Expires  simtime.Time
}

// Cache is a TTL cache with bounded size, keyed by compact uint64 zone/
// record identifiers (resolvers issue millions of lookups, so keys avoid
// string construction). It is not safe for concurrent use; the simulator
// drives each resolver from one goroutine.
type Cache struct {
	max     int
	entries map[uint64]Entry

	hits, misses, expired uint64

	m *cacheMetrics
}

// Key tiers: callers tag keys in bits 40+ (1 = PTR record, 2 = /8 zone
// delegation, 3 = /16 zone delegation — the scheme both dnssim resolvers
// and the live recursor use), which is what makes per-zone cache metrics
// possible without string keys.
var tierNames = [4]string{"other", "ptr", "z8", "z16"}

// tierOf maps a cache key to its metric tier index.
func tierOf(key uint64) int {
	if t := key >> 40; t >= 1 && t <= 3 {
		return int(t)
	}
	return 0
}

// cacheMetrics holds the pre-resolved counters of one instrumented cache.
// All methods are no-ops on a nil receiver, so the uninstrumented hot
// path pays one pointer test.
type cacheMetrics struct {
	hits    [4]*obs.Counter
	negHits [4]*obs.Counter
	misses  [4]*obs.Counter
	// evictions is per cache, not per tier: the eviction victim comes from
	// Go's random map iteration, so a tier split would vary run to run and
	// break snapshot determinism. The count itself is deterministic (one
	// per over-capacity insert).
	evictions *obs.Counter
}

// SetMetrics instruments the cache: hits, negative hits, and misses are
// counted per key tier under cache_*_total{cache=name,
// tier=ptr|z8|z16|other}; evictions per cache under
// cache_evictions_total{cache=name}. Caches sharing a name (every
// simulated resolver, say) share counters — the registry dedups by
// identity. A nil registry leaves the cache uninstrumented.
func (c *Cache) SetMetrics(reg *obs.Registry, name string) {
	if reg == nil {
		c.m = nil
		return
	}
	m := &cacheMetrics{evictions: reg.Counter("cache_evictions_total", obs.L("cache", name))}
	for ti, tier := range tierNames {
		ls := []obs.Label{obs.L("cache", name), obs.L("tier", tier)}
		m.hits[ti] = reg.Counter("cache_hits_total", ls...)
		m.negHits[ti] = reg.Counter("cache_negative_hits_total", ls...)
		m.misses[ti] = reg.Counter("cache_misses_total", ls...)
	}
	c.m = m
}

func (m *cacheMetrics) hit(key uint64, negative bool) {
	if m == nil {
		return
	}
	t := tierOf(key)
	m.hits[t].Inc()
	if negative {
		m.negHits[t].Inc()
	}
}

func (m *cacheMetrics) miss(key uint64) {
	if m == nil {
		return
	}
	m.misses[tierOf(key)].Inc()
}

func (m *cacheMetrics) evict() {
	if m == nil {
		return
	}
	m.evictions.Inc()
}

// New returns a cache holding at most max entries. max <= 0 means
// unbounded.
func New(max int) *Cache {
	return &Cache{max: max, entries: make(map[uint64]Entry)}
}

// Get returns the live entry for key at time now. Expired entries are
// removed and reported as misses.
func (c *Cache) Get(key uint64, now simtime.Time) (Entry, bool) {
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		c.m.miss(key)
		return Entry{}, false
	}
	if !now.Before(e.Expires) {
		delete(c.entries, key)
		c.expired++
		c.misses++
		c.m.miss(key)
		return Entry{}, false
	}
	c.hits++
	c.m.hit(key, e.Negative)
	return e, true
}

// Put stores a positive entry with the given TTL. A TTL <= 0 stores
// nothing (the zero-TTL PTR records of the paper's controlled experiment
// disable caching entirely).
func (c *Cache) Put(key uint64, value string, ttl simtime.Duration, now simtime.Time) {
	if ttl <= 0 {
		delete(c.entries, key)
		return
	}
	c.insert(key, Entry{Value: value, Expires: now.Add(ttl)}, now)
}

// PutNegative stores an NXDomain result for the negative-cache TTL.
func (c *Cache) PutNegative(key uint64, ttl simtime.Duration, now simtime.Time) {
	if ttl <= 0 {
		delete(c.entries, key)
		return
	}
	c.insert(key, Entry{Negative: true, Expires: now.Add(ttl)}, now)
}

func (c *Cache) insert(key uint64, e Entry, now simtime.Time) {
	if c.max > 0 && len(c.entries) >= c.max {
		if _, exists := c.entries[key]; !exists {
			c.evict(now)
		}
	}
	c.entries[key] = e
}

// evict removes one entry, preferring an expired one. Go's random map
// iteration order provides the victim sampling; determinism of the overall
// simulation does not depend on which victim is chosen, only on what the
// cache answers, and expired-vs-live preference keeps answers stable.
func (c *Cache) evict(now simtime.Time) {
	var victim uint64
	found := false
	scanned := 0
	for k, e := range c.entries {
		if !now.Before(e.Expires) {
			delete(c.entries, k)
			c.expired++
			c.m.evict()
			return
		}
		if !found {
			victim, found = k, true
		}
		if scanned++; scanned >= 8 {
			break
		}
	}
	if found {
		delete(c.entries, victim)
		c.m.evict()
	}
}

// Len returns the number of stored entries, counting expired-but-unswept.
func (c *Cache) Len() int { return len(c.entries) }

// Stats returns cumulative hit/miss/expiry counters.
func (c *Cache) Stats() (hits, misses, expired uint64) {
	return c.hits, c.misses, c.expired
}

// Flush drops every entry.
func (c *Cache) Flush() {
	clear(c.entries)
}
