package cache

import (
	"testing"

	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/simtime"
)

func TestPutGet(t *testing.T) {
	c := New(0)
	c.Put(1001, "spam.bad.jp", 3600, 100)
	e, ok := c.Get(1001, 200)
	if !ok || e.Value != "spam.bad.jp" || e.Negative {
		t.Errorf("got %+v, %v", e, ok)
	}
}

func TestExpiry(t *testing.T) {
	c := New(0)
	c.Put(7, "v", 60, 100)
	if _, ok := c.Get(7, 159); !ok {
		t.Error("entry expired early")
	}
	if _, ok := c.Get(7, 160); ok {
		t.Error("entry alive at exact expiry instant")
	}
	// The expired entry must have been swept.
	if c.Len() != 0 {
		t.Errorf("Len = %d after expiry sweep", c.Len())
	}
}

func TestNegativeCaching(t *testing.T) {
	c := New(0)
	c.PutNegative(42, 300, 0)
	e, ok := c.Get(42, 299)
	if !ok || !e.Negative {
		t.Errorf("negative entry: %+v, %v", e, ok)
	}
	if _, ok := c.Get(42, 300); ok {
		t.Error("negative entry outlived TTL")
	}
}

func TestZeroTTLDisablesCaching(t *testing.T) {
	c := New(0)
	c.Put(7, "v", 0, 100)
	if _, ok := c.Get(7, 100); ok {
		t.Error("zero TTL entry stored")
	}
	// Zero-TTL put also clears a previous entry (fresh answer supersedes).
	c.Put(7, "v", 100, 100)
	c.Put(7, "v2", 0, 110)
	if _, ok := c.Get(7, 111); ok {
		t.Error("zero TTL put did not clear prior entry")
	}
	c.PutNegative(8, 0, 100)
	if _, ok := c.Get(8, 100); ok {
		t.Error("zero TTL negative entry stored")
	}
}

func TestOverwrite(t *testing.T) {
	c := New(0)
	c.Put(7, "old", 100, 0)
	c.Put(7, "new", 100, 50)
	e, _ := c.Get(7, 100)
	if e.Value != "new" {
		t.Errorf("value = %q", e.Value)
	}
	if !c.entries[7].Expires.After(140) {
		t.Error("overwrite did not refresh expiry")
	}
}

func TestCapacityBound(t *testing.T) {
	c := New(10)
	for i := 0; i < 100; i++ {
		c.Put(uint64(i), "v", 1000, 0)
	}
	if c.Len() > 10 {
		t.Errorf("Len = %d exceeds capacity 10", c.Len())
	}
}

func TestEvictionPrefersExpired(t *testing.T) {
	c := New(4)
	c.Put(101, "v", 1000, 0)
	c.Put(102, "v", 1000, 0)
	c.Put(201, "v", 10, 0)
	c.Put(202, "v", 10, 0)
	// At time 500 the dead entries are expired; inserting two new keys
	// should evict them, keeping both live entries.
	c.Put(301, "v", 1000, 500)
	c.Put(302, "v", 1000, 500)
	for _, k := range []uint64{101, 102, 301, 302} {
		if _, ok := c.Get(k, 500); !ok {
			t.Errorf("live entry %d evicted while expired entries existed", k)
		}
	}
}

func TestOverwriteAtCapacityKeepsKey(t *testing.T) {
	c := New(2)
	c.Put(1, "1", 1000, 0)
	c.Put(2, "2", 1000, 0)
	c.Put(1, "3", 1000, 0) // overwrite must not force an eviction
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	ea, okA := c.Get(1, 1)
	_, okB := c.Get(2, 1)
	if !okA || ea.Value != "3" || !okB {
		t.Error("overwrite at capacity lost an entry")
	}
}

func TestStats(t *testing.T) {
	c := New(0)
	c.Put(7, "v", 100, 0)
	c.Get(7, 10)  // hit
	c.Get(99, 10) // miss
	c.Get(7, 200) // expired miss
	hits, misses, expired := c.Stats()
	if hits != 1 || misses != 2 || expired != 1 {
		t.Errorf("stats = %d/%d/%d, want 1/2/1", hits, misses, expired)
	}
}

func TestFlush(t *testing.T) {
	c := New(0)
	c.Put(7, "v", 100, 0)
	c.Flush()
	if c.Len() != 0 {
		t.Error("Flush left entries")
	}
}

func BenchmarkGetHit(b *testing.B) {
	c := New(0)
	c.Put(1001, "x.example.jp", simtime.Duration(1<<40), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Get(1001, 1)
	}
}

func BenchmarkPut(b *testing.B) {
	c := New(1 << 16)
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = uint64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Put(keys[i%len(keys)], "v", 1000, simtime.Time(i))
	}
}

// TestTierMetrics pins the per-tier cache counters: keys tagged with the
// shared tier scheme (1=ptr, 2=z8, 3=z16 in bits 40+) count under their
// tier label; untagged keys fall into "other".
func TestTierMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(2)
	c.SetMetrics(reg, "test")

	ptr := uint64(1)<<40 | 7
	z8 := uint64(2)<<40 | 100
	c.Put(ptr, "a", 60, 0)       // fills slot 1
	c.Get(ptr, 10)               // ptr hit
	c.Get(z8, 10)                // z8 miss
	c.PutNegative(z8, 60, 0)     // fills slot 2
	c.Get(z8, 10)                // z8 negative hit
	c.Put(uint64(9), "b", 60, 0) // over capacity: evicts one entry
	c.Get(ptr, 100)              // expired: ptr miss (if still resident)

	get := func(name, tier string) uint64 {
		t.Helper()
		return reg.Counter(name, obs.L("cache", "test"), obs.L("tier", tier)).Value()
	}
	if got := get("cache_hits_total", "ptr"); got != 1 {
		t.Errorf("ptr hits = %d, want 1", got)
	}
	if got := get("cache_hits_total", "z8"); got != 1 {
		t.Errorf("z8 hits = %d, want 1", got)
	}
	if got := get("cache_negative_hits_total", "z8"); got != 1 {
		t.Errorf("z8 negative hits = %d, want 1", got)
	}
	if got := get("cache_misses_total", "z8"); got != 1 {
		t.Errorf("z8 misses = %d, want 1", got)
	}
	evictions := reg.Counter("cache_evictions_total", obs.L("cache", "test")).Value()
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	// Uninstrumenting stops counting without touching entries.
	c.SetMetrics(nil, "")
	c.Get(ptr, 10)
	if got := get("cache_hits_total", "ptr") + get("cache_misses_total", "ptr"); got > 3 {
		t.Errorf("uninstrumented cache still counting: %d", got)
	}
}
