package features

import (
	"cmp"
	"slices"

	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/qname"
	"dnsbackscatter/internal/simtime"
)

// SketchStats is the sketch-derived summary of one originator over an
// observation interval: the HLL footprint estimate, the exact
// deduplicated query count, the distinct 10-minute persistence buckets,
// and the bottom-k uniform sample of distinct queriers. It is the
// hand-off type between sketch holders (the in-package StreamExtractor,
// the sharded stream engine) and the shared vector computation below —
// graduating the stream extractor's snapshot math into code both paths
// share.
type SketchStats struct {
	Originator ipaddr.Addr
	Estimate   int // HLL unique-querier estimate
	Queries    int // deduplicated query count
	Buckets    int // distinct 10-minute buckets observed
	Sample     []ipaddr.Addr
}

// SketchNorms holds the interval-level normalizers the dynamic features
// divide by, estimated from the union of per-originator samples with the
// querier total rescaled by HLL mass (samples undercount global
// uniques).
type SketchNorms struct {
	TotalAS       int
	TotalCountry  int
	TotalQueriers int
	TotalBuckets  int
}

// NormsFromStats computes interval normalizers from every originator's
// sketch stats (analyzable or not — the paper's normalizers count all
// observed queriers). Set sizes and integer-valued sums are
// order-insensitive, so the result is identical however stats is
// ordered.
func NormsFromStats(g *geo.Registry, stats []SketchStats, dur simtime.Duration) SketchNorms {
	norms := SketchNorms{TotalBuckets: int(dur / (10 * simtime.Minute))}
	if norms.TotalBuckets < 1 {
		norms.TotalBuckets = 1
	}
	allAS := make(map[int]struct{})
	allCountry := make(map[string]struct{})
	allQueriers := make(map[ipaddr.Addr]struct{})
	var hllMass, sampleMass float64
	for _, st := range stats {
		hllMass += float64(st.Estimate)
		sampleMass += float64(len(st.Sample))
		for _, q := range st.Sample {
			if _, seen := allQueriers[q]; seen {
				continue
			}
			allQueriers[q] = struct{}{}
			allAS[g.ASN(q)] = struct{}{}
			allCountry[g.Country(q)] = struct{}{}
		}
	}
	norms.TotalAS = len(allAS)
	norms.TotalCountry = len(allCountry)
	norms.TotalQueriers = len(allQueriers)
	if sampleMass > 0 {
		norms.TotalQueriers = int(float64(norms.TotalQueriers) * hllMass / sampleMass)
	}
	return norms
}

// SketchVector computes one originator's feature vector from its sketch
// stats: static fractions, entropies, and dispersion come from the
// bottom-k sample (scaled to the footprint estimate where the feature
// is a count), Queriers carries the HLL estimate. Returns nil when the
// sample is empty. The computation is a pure function of (stats, norms):
// every accumulation is integer or order-normalized (normEntropy sorts),
// so byte-identical inputs give byte-identical vectors.
func SketchVector(g *geo.Registry, nameOf NameFunc, st SketchStats, norms SketchNorms) *Vector {
	n := len(st.Sample)
	if n == 0 {
		return nil
	}
	est := st.Estimate
	v := &Vector{Originator: st.Originator, Queriers: est, Queries: st.Queries}

	counts24 := make(map[uint32]int)
	counts8 := make(map[byte]int)
	ases := make(map[int]struct{})
	countries := make(map[string]struct{})
	for _, q := range st.Sample {
		name, unreach := nameOf(q)
		cat := qname.Classify(name)
		if unreach {
			cat = qname.Unreach
		}
		v.X[int(cat)]++
		counts24[q.Slash24()]++
		counts8[q.Slash8()]++
		ases[g.ASN(q)] = struct{}{}
		countries[g.Country(q)] = struct{}{}
	}
	for i := 0; i < NumStatic; i++ {
		v.X[i] /= float64(n)
	}
	d := v.X[NumStatic:]
	d[DynQueriesPerQuerier] = float64(st.Queries) / float64(est)
	d[DynPersistence] = float64(st.Buckets) / float64(norms.TotalBuckets)
	d[DynLocalEntropy] = normEntropy24(counts24, n)
	d[DynGlobalEntropy] = normEntropy8(counts8, n)
	// Dispersion scales from the sample to the full footprint.
	scale := float64(est) / float64(n)
	d[DynUniqueASes] = ratio(int(float64(len(ases))*scale+0.5), norms.TotalAS)
	if d[DynUniqueASes] > 1 {
		d[DynUniqueASes] = 1
	}
	d[DynUniqueCountries] = ratio(len(countries), norms.TotalCountry)
	if len(countries) > 0 && norms.TotalQueriers > 0 {
		d[DynQueriersPerCountry] = float64(est) / float64(len(countries)) / float64(norms.TotalQueriers)
	}
	if len(ases) > 0 && norms.TotalQueriers > 0 {
		estAS := float64(len(ases)) * scale
		d[DynQueriersPerAS] = float64(est) / estAS / float64(norms.TotalQueriers)
	}
	return v
}

// SortVectors orders vectors in the pipeline's canonical emission order:
// footprint descending, originator address ascending — the order every
// extractor and snapshot emits, so downstream artifacts are
// byte-deterministic.
func SortVectors(vs []*Vector) {
	slices.SortFunc(vs, func(a, b *Vector) int {
		if a.Queriers != b.Queriers {
			return b.Queriers - a.Queriers
		}
		return cmp.Compare(a.Originator, b.Originator)
	})
}
