package features

import (
	"math"
	"testing"

	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

func newTestStream() *StreamExtractor {
	x := NewStreamExtractor(geo.NewRegistry(42), testNames)
	x.MinQueriers = 10
	return x
}

func feed(x *StreamExtractor, recs []dnslog.Record) {
	for _, r := range recs {
		x.Observe(r)
	}
}

func TestStreamMatchesBatchFootprints(t *testing.T) {
	recs := append(mkRecs("1.2.3.4", 500, 2), mkRecs("5.6.7.8", 80, 3)...)
	batch := NewExtractor(geo.NewRegistry(42), testNames)
	batch.MinQueriers = 10
	bv := batch.Extract(recs, 0, simtime.Day)

	x := newTestStream()
	feed(x, recs)
	sv := x.Snapshot(0, simtime.Day)

	if len(bv) != len(sv) {
		t.Fatalf("batch %d vs stream %d vectors", len(bv), len(sv))
	}
	for i := range bv {
		if bv[i].Originator != sv[i].Originator {
			t.Fatalf("vector %d: originator order differs", i)
		}
		rel := math.Abs(float64(sv[i].Queriers-bv[i].Queriers)) / float64(bv[i].Queriers)
		if rel > 0.10 {
			t.Errorf("originator %v: footprint %d vs exact %d (%.1f%% off)",
				bv[i].Originator, sv[i].Queriers, bv[i].Queriers, 100*rel)
		}
		if sv[i].Queries != bv[i].Queries {
			t.Errorf("query counts differ: %d vs %d", sv[i].Queries, bv[i].Queries)
		}
	}
}

func TestStreamStaticFractionsApproximate(t *testing.T) {
	recs := mkRecs("1.2.3.4", 400, 1)
	batch := NewExtractor(geo.NewRegistry(42), testNames)
	batch.MinQueriers = 10
	bv := batch.Extract(recs, 0, simtime.Day)[0]

	x := newTestStream()
	feed(x, recs)
	sv := x.Snapshot(0, simtime.Day)[0]

	for i := 0; i < NumStatic; i++ {
		if math.Abs(sv.X[i]-bv.X[i]) > 0.12 {
			t.Errorf("static %d: stream %.2f vs batch %.2f", i, sv.X[i], bv.X[i])
		}
	}
	// Entropies from the sample should track the exact values.
	if math.Abs(sv.Dynamic(DynGlobalEntropy)-bv.Dynamic(DynGlobalEntropy)) > 0.15 {
		t.Errorf("global entropy: stream %.2f vs batch %.2f",
			sv.Dynamic(DynGlobalEntropy), bv.Dynamic(DynGlobalEntropy))
	}
}

func TestStreamDedup(t *testing.T) {
	x := newTestStream()
	o := ipaddr.MustParse("1.2.3.4")
	q := ipaddr.MustParse("10.0.0.1")
	for k := 0; k < 5; k++ {
		x.Observe(dnslog.Record{Time: simtime.Time(k), Originator: o, Querier: q})
	}
	x.Observe(dnslog.Record{Time: 100, Originator: o, Querier: q})
	agg := x.aggs[o]
	if agg.queries != 2 {
		t.Errorf("queries = %d after dedup, want 2", agg.queries)
	}
}

func TestStreamThreshold(t *testing.T) {
	x := newTestStream()
	feed(x, mkRecs("1.2.3.4", 5, 1)) // below MinQueriers=10
	if got := x.Snapshot(0, simtime.Day); len(got) != 0 {
		t.Errorf("sub-threshold originator surfaced: %v", got)
	}
}

func TestStreamEviction(t *testing.T) {
	x := newTestStream()
	x.MaxOriginators = 64
	st := rng.New(3)
	// One big originator that must survive eviction.
	big := ipaddr.MustParse("9.9.9.9")
	for q := 0; q < 300; q++ {
		x.Observe(dnslog.Record{Time: simtime.Time(q * 40), Originator: big,
			Querier: ipaddr.Addr(st.Uint64())})
	}
	// A flood of one-querier originators.
	for o := 0; o < 500; o++ {
		x.Observe(dnslog.Record{Time: simtime.Time(o), Originator: ipaddr.Addr(st.Uint64()),
			Querier: ipaddr.Addr(st.Uint64())})
	}
	if x.Tracked() > 64 {
		t.Errorf("tracked %d originators, cap 64", x.Tracked())
	}
	vs := x.Snapshot(0, simtime.Day)
	found := false
	for _, v := range vs {
		if v.Originator == big {
			found = true
		}
	}
	if !found {
		t.Error("large originator evicted in favor of the one-querier tail")
	}
}

func TestStreamMemoryBounded(t *testing.T) {
	x := newTestStream()
	x.SampleK = 64
	st := rng.New(5)
	o := ipaddr.MustParse("1.2.3.4")
	for q := 0; q < 50000; q++ {
		x.Observe(dnslog.Record{Time: simtime.Time(q), Originator: o,
			Querier: ipaddr.Addr(st.Uint64())})
	}
	agg := x.aggs[o]
	if agg.sample.Len() > 64 {
		t.Errorf("sample grew to %d > k", agg.sample.Len())
	}
	est := int(agg.queriers.Estimate())
	if est < 45000 || est > 55000 {
		t.Errorf("estimate %d for ~50000 uniques", est)
	}
}

func TestKMVIsUniformOverDistinct(t *testing.T) {
	// The bottom-k sample must not over-represent hot queriers: feed one
	// querier a thousand times among a thousand singletons; it should
	// occupy at most one sample slot.
	x := newTestStream()
	x.DedupWindow = 0
	o := ipaddr.MustParse("1.2.3.4")
	hot := ipaddr.MustParse("10.0.0.1")
	for k := 0; k < 1000; k++ {
		x.Observe(dnslog.Record{Time: simtime.Time(k * 60), Originator: o, Querier: hot})
	}
	st := rng.New(9)
	for q := 0; q < 1000; q++ {
		x.Observe(dnslog.Record{Time: simtime.Time(q), Originator: o,
			Querier: ipaddr.Addr(st.Uint64())})
	}
	hotCount := 0
	for _, a := range x.aggs[o].sample.Values() {
		if a == hot {
			hotCount++
		}
	}
	if hotCount > 1 {
		t.Errorf("hot querier occupies %d sample slots", hotCount)
	}
}

func BenchmarkStreamObserve(b *testing.B) {
	x := newTestStream()
	st := rng.New(1)
	recs := make([]dnslog.Record, 4096)
	for i := range recs {
		recs[i] = dnslog.Record{
			Time:       simtime.Time(i),
			Originator: ipaddr.Addr(st.Uint64() & 0xff), // 256 originators
			Querier:    ipaddr.Addr(st.Uint64()),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Observe(recs[i%len(recs)])
	}
}
