// Package features turns per-originator backscatter into the feature
// vectors of §III-C.
//
// Static features are the fractions of an originator's queriers whose
// reverse names fall into each naming category (home, mail, ns, ...,
// nxdomain, unreach): fractions rather than counts, so the features are
// independent of query rate. Dynamic features capture temporal and spatial
// structure: queries per querier, persistence across 10-minute periods,
// Shannon entropy of querier /24 and /8 prefixes, and AS/country
// dispersion normalized by what the whole interval saw.
package features

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"
	"strconv"
	"sync"

	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/parallel"
	"dnsbackscatter/internal/prof"
	"dnsbackscatter/internal/qname"
	"dnsbackscatter/internal/simtime"
	"dnsbackscatter/internal/trace"
)

// NumStatic is the count of static (name-category) features.
const NumStatic = int(qname.NumCategories)

// Dynamic feature indices within the dynamic block.
const (
	DynQueriesPerQuerier = iota
	DynPersistence
	DynLocalEntropy
	DynGlobalEntropy
	DynUniqueASes
	DynUniqueCountries
	DynQueriersPerCountry
	DynQueriersPerAS
	NumDynamic
)

// NumFeatures is the full vector width.
const NumFeatures = NumStatic + NumDynamic

var dynamicNames = [NumDynamic]string{
	"queries-per-querier", "persistence", "local-entropy", "global-entropy",
	"unique-ases", "unique-countries", "queriers-per-country", "queriers-per-as",
}

// Names returns the feature names in vector order. Static features carry
// their category name; dynamic features their §III-C label.
func Names() []string {
	out := make([]string, 0, NumFeatures)
	for c := qname.Category(0); c < qname.NumCategories; c++ {
		out = append(out, c.String())
	}
	out = append(out, dynamicNames[:]...)
	return out
}

// IsStatic reports whether feature index i is a static (name) feature.
func IsStatic(i int) bool { return i < NumStatic }

// Vector is one originator's features over one observation interval.
type Vector struct {
	Originator ipaddr.Addr
	Queriers   int // unique queriers (the footprint estimate)
	Queries    int // deduplicated query count
	X          [NumFeatures]float64
}

// Static returns the fraction for a name category.
func (v *Vector) Static(c qname.Category) float64 { return v.X[int(c)] }

// Dynamic returns a dynamic feature by its Dyn index.
func (v *Vector) Dynamic(i int) float64 { return v.X[NumStatic+i] }

// String formats the vector compactly for reports.
func (v *Vector) String() string {
	return fmt.Sprintf("%s queriers=%d queries=%d mail=%.2f home=%.2f ns=%.2f gent=%.2f",
		v.Originator, v.Queriers, v.Queries,
		v.Static(qname.Mail), v.Static(qname.Home), v.Static(qname.NS),
		v.Dynamic(DynGlobalEntropy))
}

// NameFunc resolves a querier address to its reverse name and whether its
// reverse zone authority is unreachable.
type NameFunc func(ipaddr.Addr) (name string, unreach bool)

// Extractor computes feature vectors from interval logs.
type Extractor struct {
	Geo    *geo.Registry
	NameOf NameFunc
	// MinQueriers is the analyzability threshold (§III-B; the paper uses
	// 20 unique queriers). Originators below it are dropped.
	MinQueriers int
	// DedupWindow suppresses repeat queries per (originator, querier)
	// pair before rate features; the paper uses 30 s.
	DedupWindow simtime.Duration
	// Obs, when non-nil, times the dedup/filter/extract stages of the
	// Figure 2 pipeline and counts records and originators through them
	// (pipeline_records_total, pipeline_records_kept_total,
	// pipeline_originators_total, pipeline_analyzable_total).
	Obs *obs.Registry
	// Acct, when non-nil, accumulates per-stage resource accounting
	// (alloc deltas, GC cycles, goroutine and worker peaks) for
	// dedup/filter/extract on the ops channel — scheduling-dependent
	// readings that never enter the deterministic obs snapshot. Nil
	// costs nothing.
	Acct *prof.Accountant
	// Workers bounds the goroutines Extract fans originators across;
	// <= 0 uses runtime.GOMAXPROCS(0) and 1 runs sequentially. Output
	// is byte-identical for every worker count (the determinism
	// contract of ARCHITECTURE.md); with Workers != 1, Geo and NameOf
	// must be safe for concurrent read-only use.
	Workers int
	// Tracer, when non-nil, joins records back to their lookup traces
	// (via the tracer's sensor-record index) and annotates each trace
	// with the pipeline's per-stage decisions: dedup kept/dropped,
	// filter kept/dropped at the analyzability threshold, extract
	// vector emission. Safe with any Workers value — pipeline events
	// are committed under the tracer lock and rendered as a sorted
	// multiset, so output bytes never depend on worker interleaving.
	Tracer *trace.Tracer
	// NoReuse disables the columnar scratch buffers that Extract
	// otherwise reuses across calls (per-shard aggregates, the record
	// partition buffer, per-worker vector scratch). Output bytes are
	// identical either way — reuse is an ops-only optimization — and the
	// invariance tests set NoReuse to prove it. Leave false in
	// production.
	NoReuse bool

	// scratch is the cross-call columnar state. An Extractor must not
	// run Extract concurrently with itself (distinct Extractors are
	// fine); the per-shard entries are touched by at most one worker per
	// call because shards fan out by index.
	scratch struct {
		recs   []dnslog.Record
		shards [extractShards]*shardScratch
		work   []*originatorAgg
		uq     []ipaddr.Addr
		uas    []int
		ucc    []string
	}
}

// NewExtractor returns an extractor with the paper's defaults.
func NewExtractor(g *geo.Registry, nameOf NameFunc) *Extractor {
	return &Extractor{Geo: g, NameOf: nameOf, MinQueriers: 20, DedupWindow: 30 * simtime.Second}
}

// originatorAgg accumulates one originator's interval state. Queriers
// and buckets collect raw (possibly repeated) observations columnar-style
// during dedup; the filter stage sorts and compacts them in place, after
// which queriers holds the sorted unique set and nq/nbuckets the unique
// counts. The slices live in shard scratch and keep their capacity across
// Extract calls.
type originatorAgg struct {
	orig     ipaddr.Addr
	queries  int
	nq       int // unique queriers (valid after filter)
	nbuckets int // unique 10-minute buckets (valid after filter)
	kept     bool
	queriers []ipaddr.Addr
	buckets  []int
	// refs are the traces whose records fed this aggregate (only
	// populated when the extractor has a Tracer).
	refs map[trace.ID]simtime.Time
}

// extractShards is the fixed originator-shard count for the dedup and
// filter stages. It is constant — not derived from Workers — so the
// shard metrics and every intermediate result are identical whatever
// the worker count; workers merely drain the shards faster.
const extractShards = 16

// shardOf deterministically assigns an originator to a shard. The 30 s
// dedup window is per (originator, querier), so splitting the record
// stream by originator preserves every keep/drop decision.
func shardOf(a ipaddr.Addr) int {
	z := uint64(a) * 0x9e3779b97f4a7c15
	z ^= z >> 29
	return int(z % extractShards)
}

// shardScratch is one shard's dedup/filter state: an index from
// originator to its slot in a flat aggregate column, the shard's deduper,
// and the shard-level unique querier/AS/country views (sorted slices —
// only their lengths feed the interval normalizers). Everything is
// reused across Extract calls unless the extractor sets NoReuse.
type shardScratch struct {
	kept  int
	idx   map[ipaddr.Addr]int32
	aggs  []originatorAgg
	dedup *dnslog.Deduper
	addrs []ipaddr.Addr // shard-unique queriers (sorted)
	asns  []int         // shard-unique ASNs (sorted)
	ccs   []string      // shard-unique countries (sorted)
}

// reset readies the scratch for a new interval, keeping every map bucket
// and slice capacity the previous interval grew.
func (sh *shardScratch) reset(w simtime.Duration) {
	sh.kept = 0
	clear(sh.idx)
	sh.aggs = sh.aggs[:0]
	sh.dedup.Window = w
	sh.dedup.Reset()
	sh.addrs = sh.addrs[:0]
	sh.asns = sh.asns[:0]
	sh.ccs = sh.ccs[:0]
}

// agg returns the aggregate slot for orig, creating (or recycling) one on
// first sight. Returned pointers are valid until the next agg call.
func (sh *shardScratch) agg(orig ipaddr.Addr) *originatorAgg {
	if i, ok := sh.idx[orig]; ok {
		return &sh.aggs[i]
	}
	if len(sh.aggs) < cap(sh.aggs) {
		sh.aggs = sh.aggs[:len(sh.aggs)+1] // recycle a slot, keeping its slice capacities
	} else {
		sh.aggs = append(sh.aggs, originatorAgg{})
	}
	a := &sh.aggs[len(sh.aggs)-1]
	a.orig = orig
	a.queries, a.nq, a.nbuckets = 0, 0, 0
	a.kept = false
	a.queriers = a.queriers[:0]
	a.buckets = a.buckets[:0]
	a.refs = nil
	sh.idx[orig] = int32(len(sh.aggs) - 1)
	return a
}

// shardFor hands out shard s's scratch, fresh when NoReuse is set or on
// first use, reset otherwise.
func (x *Extractor) shardFor(s int) *shardScratch {
	if sh := x.scratch.shards[s]; sh != nil && !x.NoReuse {
		sh.reset(x.DedupWindow)
		return sh
	}
	sh := &shardScratch{
		idx:   make(map[ipaddr.Addr]int32),
		dedup: dnslog.NewDeduper(x.DedupWindow),
	}
	if !x.NoReuse {
		x.scratch.shards[s] = sh
	}
	return sh
}

// recordBuf returns the shared partition backing array with room for n
// records, growing (or, under NoReuse, allocating fresh) as needed.
func (x *Extractor) recordBuf(n int) []dnslog.Record {
	if x.NoReuse || cap(x.scratch.recs) < n {
		buf := make([]dnslog.Record, n)
		if !x.NoReuse {
			x.scratch.recs = buf
		}
		return buf
	}
	return x.scratch.recs[:n]
}

// sortUniq sorts s and compacts adjacent duplicates in place, returning
// the unique prefix. The deterministic total order doubles as the
// iteration order downstream consumers see.
func sortUniq[T cmp.Ordered](s []T) []T {
	slices.Sort(s)
	return slices.Compact(s)
}

// Extract computes vectors for every analyzable originator in recs, which
// must be time-ordered per (originator, querier) pair (sensor output is).
// The interval spans [start, start+dur) for persistence normalization.
//
// The three local stages of the Figure 2 pipeline run in order — dedup
// (30 s window), filter (analyzability threshold), extract (vector
// computation) — each under an Obs span when instrumented; classification
// is the fourth stage, owned by package classify. Dedup and filter shard
// by originator and extract fans out per originator, all across Workers
// goroutines with index-ordered merges, so the returned vectors are
// byte-identical for every worker count.
//
//bslint:hotpath
func (x *Extractor) Extract(recs []dnslog.Record, start simtime.Time, dur simtime.Duration) []*Vector {
	pool := parallel.Pool{Workers: x.Workers, Obs: x.Obs, Acct: x.Acct}

	// Dedup stage: partition the stream by originator into one shared
	// backing array (count, prefix-sum, fill — stable, so each shard
	// stays time-ordered per pair), then dedup and aggregate each shard
	// independently into its reusable columnar scratch.
	sp := x.Obs.StartSpan("dedup")
	tok := x.Acct.Start("dedup")
	var counts, offs [extractShards]int
	for i := range recs {
		counts[shardOf(recs[i].Originator)]++
	}
	for s := 1; s < extractShards; s++ {
		offs[s] = offs[s-1] + counts[s-1]
	}
	buf := x.recordBuf(len(recs))
	var parts [extractShards][]dnslog.Record
	{
		pos := offs
		for _, r := range recs {
			s := shardOf(r.Originator)
			buf[pos[s]] = r
			pos[s]++
		}
		for s := 0; s < extractShards; s++ {
			parts[s] = buf[offs[s] : offs[s]+counts[s]]
		}
	}
	shards := make([]*shardScratch, extractShards)
	for s := range shards {
		shards[s] = x.shardFor(s)
	}
	pool.Stage = "dedup"
	pool.Each(extractShards, func(s int) {
		sh := shards[s]
		for _, r := range parts[s] {
			var id trace.ID
			var t0 simtime.Time
			traced := false
			if x.Tracer != nil {
				id, t0, traced = x.Tracer.RecordID(r.Originator, r.Querier, r.Time)
			}
			if !sh.dedup.Keep(r) {
				if traced {
					x.Tracer.Pipeline(id, t0, "dedup", "dropped", "window", r.Time)
				}
				continue
			}
			if traced {
				x.Tracer.Pipeline(id, t0, "dedup", "kept", "", r.Time)
			}
			sh.kept++
			a := sh.agg(r.Originator)
			if traced {
				if a.refs == nil {
					a.refs = make(map[trace.ID]simtime.Time)
				}
				a.refs[id] = t0
			}
			a.queries++
			a.queriers = append(a.queriers, r.Querier)
			if b := r.Time.TenMinuteBucket(); len(a.buckets) == 0 || a.buckets[len(a.buckets)-1] != b {
				a.buckets = append(a.buckets, b)
			}
		}
	})
	kept, originators := 0, 0
	for _, sh := range shards {
		kept += sh.kept
		originators += len(sh.aggs)
	}
	tok.End()
	sp.End()
	x.Obs.Counter("pipeline_records_total").Add(uint64(len(recs)))
	x.Obs.Counter("pipeline_records_kept_total").Add(uint64(kept))
	x.Obs.Counter("pipeline_originators_total").Add(uint64(originators))

	// Filter stage: interval-level normalizers (every AS and country
	// observed across all queriers this interval), then the §III-B
	// analyzability threshold. Each shard dedups its own querier view;
	// the union across shards is order-independent.
	sp = x.Obs.StartSpan("filter")
	tok = x.Acct.Start("filter")
	pool.Stage = "filter"
	pool.Each(extractShards, func(s int) {
		sh := shards[s]
		// Sort-compact each aggregate's raw querier/bucket columns into
		// their unique sets, then build the shard-level views from every
		// originator (dropped ones included — the paper's interval
		// normalizers count all observed queriers).
		for i := range sh.aggs {
			a := &sh.aggs[i]
			a.queriers = sortUniq(a.queriers)
			a.nq = len(a.queriers)
			a.buckets = sortUniq(a.buckets)
			a.nbuckets = len(a.buckets)
		}
		for i := range sh.aggs {
			sh.addrs = append(sh.addrs, sh.aggs[i].queriers...)
		}
		sh.addrs = sortUniq(sh.addrs)
		for _, q := range sh.addrs {
			sh.asns = append(sh.asns, x.Geo.ASN(q))
			sh.ccs = append(sh.ccs, x.Geo.Country(q))
		}
		sh.asns = sortUniq(sh.asns)
		sh.ccs = sortUniq(sh.ccs)
		for i := range sh.aggs {
			a := &sh.aggs[i]
			if a.nq < x.MinQueriers {
				x.emitRefs(a, "filter", "dropped", a.nq, start)
			} else {
				a.kept = true
				x.emitRefs(a, "filter", "kept", a.nq, start)
			}
		}
	})
	// Union across shards: concatenate the per-shard sorted unique views
	// and compact once — only the lengths feed the normalizers.
	uq, uas, ucc := x.scratch.uq[:0], x.scratch.uas[:0], x.scratch.ucc[:0]
	analyzable := 0
	for _, sh := range shards {
		uq = append(uq, sh.addrs...)
		uas = append(uas, sh.asns...)
		ucc = append(ucc, sh.ccs...)
		for i := range sh.aggs {
			if sh.aggs[i].kept {
				analyzable++
			}
		}
	}
	uq, uas, ucc = sortUniq(uq), sortUniq(uas), sortUniq(ucc)
	if !x.NoReuse {
		x.scratch.uq, x.scratch.uas, x.scratch.ucc = uq, uas, ucc
	}
	totalBuckets := int(dur / (10 * simtime.Minute))
	if totalBuckets < 1 {
		totalBuckets = 1
	}
	tok.End()
	sp.End()
	x.Obs.Counter("pipeline_analyzable_total").Add(uint64(analyzable))

	// Extract stage: one work item per analyzable originator, gathered
	// in sorted address order so the fan-out input — and therefore the
	// index-ordered merge — is deterministic.
	sp = x.Obs.StartSpan("extract")
	tok = x.Acct.Start("extract")
	work := x.scratch.work[:0]
	for _, sh := range shards {
		for i := range sh.aggs {
			if sh.aggs[i].kept {
				work = append(work, &sh.aggs[i])
			}
		}
	}
	slices.SortFunc(work, func(a, b *originatorAgg) int {
		return cmp.Compare(a.orig, b.orig)
	})
	if !x.NoReuse {
		x.scratch.work = work
	}
	pool.Stage = "extract"
	out := parallel.Map(pool, len(work), func(i int) *Vector {
		a := work[i]
		v := x.vector(a, len(uas), len(ucc), len(uq), totalBuckets)
		x.emitRefs(a, "extract", "vector", v.Queriers, start)
		return v
	})
	// Deterministic order: by footprint descending, address ascending.
	slices.SortFunc(out, func(a, b *Vector) int {
		switch {
		case a.Queriers != b.Queriers:
			return b.Queriers - a.Queriers
		default:
			return cmp.Compare(a.Originator, b.Originator)
		}
	})
	tok.End()
	sp.End()
	return out
}

// emitRefs annotates every trace that fed one originator's aggregate
// with a pipeline stage decision. The querier count is formatted here,
// after the Tracer nil check, so untraced runs never pay for building
// the detail string. Iteration order over refs is irrelevant: the
// tracer renders pipeline events as a sorted multiset.
func (x *Extractor) emitRefs(a *originatorAgg, stage, outcome string, queriers int, at simtime.Time) {
	if x.Tracer == nil {
		return
	}
	detail := "queriers=" + strconv.Itoa(queriers)
	for id, t0 := range a.refs {
		x.Tracer.Pipeline(id, t0, stage, outcome, detail, at)
	}
}

// vecScratch is per-worker extract-stage scratch: /24 and /8 run-length
// counts plus AS/country gather buffers. Pooled because the extract
// fan-out has no per-worker identity; pooling is ops-only and invisible
// to output bytes.
type vecScratch struct {
	cs24 []int
	cs8  []int
	asns []int
	ccs  []string
}

var vecScratchPool = sync.Pool{New: func() any { return new(vecScratch) }}

// vector computes one originator's feature vector. a.queriers must be the
// sorted unique querier set (filter stage output): sorting groups equal
// /24 and /8 prefixes contiguously, so the entropy inputs are run lengths
// — no per-originator count maps. Every accumulation is either integer
// or order-normalized (normEntropy sorts its counts), so the result is
// byte-identical to the map-based computation.
func (x *Extractor) vector(a *originatorAgg, totalAS, totalCountry, totalQueriers, totalBuckets int) *Vector {
	v := &Vector{Originator: a.orig, Queriers: a.nq, Queries: a.queries}

	var s *vecScratch
	if x.NoReuse {
		s = new(vecScratch)
	} else {
		s = vecScratchPool.Get().(*vecScratch)
	}
	cs24, cs8 := s.cs24[:0], s.cs8[:0]
	asns, ccs := s.asns[:0], s.ccs[:0]
	var prev24 uint32
	var prev8 byte
	for i, q := range a.queriers {
		name, unreach := x.NameOf(q)
		cat := qname.Classify(name)
		if unreach {
			cat = qname.Unreach
		}
		v.X[int(cat)]++
		if p := q.Slash24(); i == 0 || p != prev24 {
			cs24 = append(cs24, 1)
			prev24 = p
		} else {
			cs24[len(cs24)-1]++
		}
		if p := q.Slash8(); i == 0 || p != prev8 {
			cs8 = append(cs8, 1)
			prev8 = p
		} else {
			cs8[len(cs8)-1]++
		}
		asns = append(asns, x.Geo.ASN(q))
		ccs = append(ccs, x.Geo.Country(q))
	}
	asns = sortUniq(asns)
	ccs = sortUniq(ccs)
	n := float64(a.nq)
	for i := 0; i < NumStatic; i++ {
		v.X[i] /= n
	}

	d := v.X[NumStatic:]
	d[DynQueriesPerQuerier] = float64(a.queries) / n
	d[DynPersistence] = float64(a.nbuckets) / float64(totalBuckets)
	d[DynLocalEntropy] = normEntropy(cs24, a.nq, 1<<24)
	d[DynGlobalEntropy] = normEntropy(cs8, a.nq, 256)
	d[DynUniqueASes] = ratio(len(asns), totalAS)
	d[DynUniqueCountries] = ratio(len(ccs), totalCountry)
	if len(ccs) > 0 && totalQueriers > 0 {
		d[DynQueriersPerCountry] = n / float64(len(ccs)) / float64(totalQueriers)
	}
	if len(asns) > 0 && totalQueriers > 0 {
		d[DynQueriersPerAS] = n / float64(len(asns)) / float64(totalQueriers)
	}
	s.cs24, s.cs8, s.asns, s.ccs = cs24, cs8, asns, ccs
	if !x.NoReuse {
		vecScratchPool.Put(s)
	}
	return v
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// normEntropy24 is the Shannon entropy of querier /24 prefixes, normalized
// to [0, 1] by the maximum achievable for n queriers.
func normEntropy24(counts map[uint32]int, n int) float64 {
	cs := make([]int, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	return normEntropy(cs, n, 1<<24)
}

func normEntropy8(counts map[byte]int, n int) float64 {
	cs := make([]int, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	return normEntropy(cs, n, 256)
}

// normEntropy computes Shannon entropy over counts (which sum to n) and
// normalizes by log2(min(n, space)) — the entropy of n queriers spread as
// evenly as the prefix space allows. Counts arrive in map-iteration
// order, so they are sorted first: float summation order then never
// depends on map layout, keeping vectors byte-identical run to run.
func normEntropy(counts []int, n, space int) float64 {
	if n <= 1 {
		return 0
	}
	sort.Ints(counts)
	h := 0.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		h -= p * math.Log2(p)
	}
	denom := math.Log2(math.Min(float64(n), float64(space)))
	if denom <= 0 {
		return 0
	}
	if v := h / denom; v < 1 {
		return v
	}
	return 1
}

// TopN keeps the n originators with the most unique queriers (vectors are
// already footprint-sorted).
func TopN(vs []*Vector, n int) []*Vector {
	if n >= len(vs) {
		return vs
	}
	return vs[:n]
}
