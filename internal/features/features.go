// Package features turns per-originator backscatter into the feature
// vectors of §III-C.
//
// Static features are the fractions of an originator's queriers whose
// reverse names fall into each naming category (home, mail, ns, ...,
// nxdomain, unreach): fractions rather than counts, so the features are
// independent of query rate. Dynamic features capture temporal and spatial
// structure: queries per querier, persistence across 10-minute periods,
// Shannon entropy of querier /24 and /8 prefixes, and AS/country
// dispersion normalized by what the whole interval saw.
package features

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/parallel"
	"dnsbackscatter/internal/prof"
	"dnsbackscatter/internal/qname"
	"dnsbackscatter/internal/simtime"
	"dnsbackscatter/internal/trace"
)

// NumStatic is the count of static (name-category) features.
const NumStatic = int(qname.NumCategories)

// Dynamic feature indices within the dynamic block.
const (
	DynQueriesPerQuerier = iota
	DynPersistence
	DynLocalEntropy
	DynGlobalEntropy
	DynUniqueASes
	DynUniqueCountries
	DynQueriersPerCountry
	DynQueriersPerAS
	NumDynamic
)

// NumFeatures is the full vector width.
const NumFeatures = NumStatic + NumDynamic

var dynamicNames = [NumDynamic]string{
	"queries-per-querier", "persistence", "local-entropy", "global-entropy",
	"unique-ases", "unique-countries", "queriers-per-country", "queriers-per-as",
}

// Names returns the feature names in vector order. Static features carry
// their category name; dynamic features their §III-C label.
func Names() []string {
	out := make([]string, 0, NumFeatures)
	for c := qname.Category(0); c < qname.NumCategories; c++ {
		out = append(out, c.String())
	}
	out = append(out, dynamicNames[:]...)
	return out
}

// IsStatic reports whether feature index i is a static (name) feature.
func IsStatic(i int) bool { return i < NumStatic }

// Vector is one originator's features over one observation interval.
type Vector struct {
	Originator ipaddr.Addr
	Queriers   int // unique queriers (the footprint estimate)
	Queries    int // deduplicated query count
	X          [NumFeatures]float64
}

// Static returns the fraction for a name category.
func (v *Vector) Static(c qname.Category) float64 { return v.X[int(c)] }

// Dynamic returns a dynamic feature by its Dyn index.
func (v *Vector) Dynamic(i int) float64 { return v.X[NumStatic+i] }

// String formats the vector compactly for reports.
func (v *Vector) String() string {
	return fmt.Sprintf("%s queriers=%d queries=%d mail=%.2f home=%.2f ns=%.2f gent=%.2f",
		v.Originator, v.Queriers, v.Queries,
		v.Static(qname.Mail), v.Static(qname.Home), v.Static(qname.NS),
		v.Dynamic(DynGlobalEntropy))
}

// NameFunc resolves a querier address to its reverse name and whether its
// reverse zone authority is unreachable.
type NameFunc func(ipaddr.Addr) (name string, unreach bool)

// Extractor computes feature vectors from interval logs.
type Extractor struct {
	Geo    *geo.Registry
	NameOf NameFunc
	// MinQueriers is the analyzability threshold (§III-B; the paper uses
	// 20 unique queriers). Originators below it are dropped.
	MinQueriers int
	// DedupWindow suppresses repeat queries per (originator, querier)
	// pair before rate features; the paper uses 30 s.
	DedupWindow simtime.Duration
	// Obs, when non-nil, times the dedup/filter/extract stages of the
	// Figure 2 pipeline and counts records and originators through them
	// (pipeline_records_total, pipeline_records_kept_total,
	// pipeline_originators_total, pipeline_analyzable_total).
	Obs *obs.Registry
	// Acct, when non-nil, accumulates per-stage resource accounting
	// (alloc deltas, GC cycles, goroutine and worker peaks) for
	// dedup/filter/extract on the ops channel — scheduling-dependent
	// readings that never enter the deterministic obs snapshot. Nil
	// costs nothing.
	Acct *prof.Accountant
	// Workers bounds the goroutines Extract fans originators across;
	// <= 0 uses runtime.GOMAXPROCS(0) and 1 runs sequentially. Output
	// is byte-identical for every worker count (the determinism
	// contract of ARCHITECTURE.md); with Workers != 1, Geo and NameOf
	// must be safe for concurrent read-only use.
	Workers int
	// Tracer, when non-nil, joins records back to their lookup traces
	// (via the tracer's sensor-record index) and annotates each trace
	// with the pipeline's per-stage decisions: dedup kept/dropped,
	// filter kept/dropped at the analyzability threshold, extract
	// vector emission. Safe with any Workers value — pipeline events
	// are committed under the tracer lock and rendered as a sorted
	// multiset, so output bytes never depend on worker interleaving.
	Tracer *trace.Tracer
}

// NewExtractor returns an extractor with the paper's defaults.
func NewExtractor(g *geo.Registry, nameOf NameFunc) *Extractor {
	return &Extractor{Geo: g, NameOf: nameOf, MinQueriers: 20, DedupWindow: 30 * simtime.Second}
}

// originatorAgg accumulates one originator's interval state.
type originatorAgg struct {
	queries  int
	queriers map[ipaddr.Addr]struct{}
	buckets  map[int]struct{}
	// refs are the traces whose records fed this aggregate (only
	// populated when the extractor has a Tracer).
	refs map[trace.ID]simtime.Time
}

// extractShards is the fixed originator-shard count for the dedup and
// filter stages. It is constant — not derived from Workers — so the
// shard metrics and every intermediate result are identical whatever
// the worker count; workers merely drain the shards faster.
const extractShards = 16

// shardOf deterministically assigns an originator to a shard. The 30 s
// dedup window is per (originator, querier), so splitting the record
// stream by originator preserves every keep/drop decision.
func shardOf(a ipaddr.Addr) int {
	z := uint64(a) * 0x9e3779b97f4a7c15
	z ^= z >> 29
	return int(z % extractShards)
}

// shardAgg is one shard's dedup output: per-originator state plus the
// shard's interval-level querier view.
type shardAgg struct {
	kept      int
	aggs      map[ipaddr.Addr]*originatorAgg
	queriers  map[ipaddr.Addr]struct{}
	ases      map[int]struct{}
	countries map[string]struct{}
}

// Extract computes vectors for every analyzable originator in recs, which
// must be time-ordered per (originator, querier) pair (sensor output is).
// The interval spans [start, start+dur) for persistence normalization.
//
// The three local stages of the Figure 2 pipeline run in order — dedup
// (30 s window), filter (analyzability threshold), extract (vector
// computation) — each under an Obs span when instrumented; classification
// is the fourth stage, owned by package classify. Dedup and filter shard
// by originator and extract fans out per originator, all across Workers
// goroutines with index-ordered merges, so the returned vectors are
// byte-identical for every worker count.
//
//bslint:hotpath
func (x *Extractor) Extract(recs []dnslog.Record, start simtime.Time, dur simtime.Duration) []*Vector {
	pool := parallel.Pool{Workers: x.Workers, Obs: x.Obs, Acct: x.Acct}

	// Dedup stage: partition the stream by originator (stable, so each
	// shard stays time-ordered per pair), then dedup and aggregate each
	// shard independently.
	sp := x.Obs.StartSpan("dedup")
	tok := x.Acct.Start("dedup")
	parts := make([][]dnslog.Record, extractShards)
	for _, r := range recs {
		s := shardOf(r.Originator)
		parts[s] = append(parts[s], r)
	}
	pool.Stage = "dedup"
	shards := parallel.Map(pool, extractShards, func(s int) *shardAgg {
		//nolint:hotalloc — one allocation per shard (16 per interval), not per record
		sh := &shardAgg{aggs: make(map[ipaddr.Addr]*originatorAgg)}
		dedup := dnslog.NewDeduper(x.DedupWindow)
		for _, r := range parts[s] {
			var id trace.ID
			var t0 simtime.Time
			traced := false
			if x.Tracer != nil {
				id, t0, traced = x.Tracer.RecordID(r.Originator, r.Querier, r.Time)
			}
			if !dedup.Keep(r) {
				if traced {
					x.Tracer.Pipeline(id, t0, "dedup", "dropped", "window", r.Time)
				}
				continue
			}
			if traced {
				x.Tracer.Pipeline(id, t0, "dedup", "kept", "", r.Time)
			}
			sh.kept++
			a := sh.aggs[r.Originator]
			if a == nil {
				//nolint:hotalloc — one allocation per distinct originator, amortized over its records
				a = &originatorAgg{
					queriers: make(map[ipaddr.Addr]struct{}),
					buckets:  make(map[int]struct{}),
				}
				sh.aggs[r.Originator] = a
			}
			if traced {
				if a.refs == nil {
					a.refs = make(map[trace.ID]simtime.Time)
				}
				a.refs[id] = t0
			}
			a.queries++
			a.queriers[r.Querier] = struct{}{}
			a.buckets[r.Time.TenMinuteBucket()] = struct{}{}
		}
		return sh
	})
	kept, originators := 0, 0
	for _, sh := range shards {
		kept += sh.kept
		originators += len(sh.aggs)
	}
	tok.End()
	sp.End()
	x.Obs.Counter("pipeline_records_total").Add(uint64(len(recs)))
	x.Obs.Counter("pipeline_records_kept_total").Add(uint64(kept))
	x.Obs.Counter("pipeline_originators_total").Add(uint64(originators))

	// Filter stage: interval-level normalizers (every AS and country
	// observed across all queriers this interval), then the §III-B
	// analyzability threshold. Each shard dedups its own querier view;
	// the union across shards is order-independent.
	sp = x.Obs.StartSpan("filter")
	tok = x.Acct.Start("filter")
	pool.Stage = "filter"
	pool.Each(extractShards, func(s int) {
		sh := shards[s]
		sh.queriers = make(map[ipaddr.Addr]struct{})
		sh.ases = make(map[int]struct{})
		sh.countries = make(map[string]struct{})
		for _, a := range sh.aggs {
			for q := range a.queriers {
				if _, seen := sh.queriers[q]; seen {
					continue
				}
				sh.queriers[q] = struct{}{}
				sh.ases[x.Geo.ASN(q)] = struct{}{}
				sh.countries[x.Geo.Country(q)] = struct{}{}
			}
		}
		for orig, a := range sh.aggs {
			if len(a.queriers) < x.MinQueriers {
				x.emitRefs(a, "filter", "dropped", len(a.queriers), start)
				delete(sh.aggs, orig)
			} else {
				x.emitRefs(a, "filter", "kept", len(a.queriers), start)
			}
		}
	})
	allQueriers := make(map[ipaddr.Addr]struct{})
	allAS := make(map[int]struct{})
	allCountry := make(map[string]struct{})
	analyzable := 0
	for _, sh := range shards {
		for q := range sh.queriers {
			allQueriers[q] = struct{}{}
		}
		for as := range sh.ases {
			allAS[as] = struct{}{}
		}
		for c := range sh.countries {
			allCountry[c] = struct{}{}
		}
		analyzable += len(sh.aggs)
	}
	totalBuckets := int(dur / (10 * simtime.Minute))
	if totalBuckets < 1 {
		totalBuckets = 1
	}
	tok.End()
	sp.End()
	x.Obs.Counter("pipeline_analyzable_total").Add(uint64(analyzable))

	// Extract stage: one work item per analyzable originator, gathered
	// in sorted address order so the fan-out input — and therefore the
	// index-ordered merge — is deterministic.
	sp = x.Obs.StartSpan("extract")
	tok = x.Acct.Start("extract")
	type workItem struct {
		orig ipaddr.Addr
		agg  *originatorAgg
	}
	work := make([]workItem, 0, analyzable)
	for _, sh := range shards {
		for orig, a := range sh.aggs {
			work = append(work, workItem{orig, a})
		}
	}
	sort.Slice(work, func(i, j int) bool { return work[i].orig < work[j].orig })
	pool.Stage = "extract"
	out := parallel.Map(pool, len(work), func(i int) *Vector {
		w := work[i]
		v := x.vector(w.orig, w.agg, len(allAS), len(allCountry), len(allQueriers), totalBuckets)
		x.emitRefs(w.agg, "extract", "vector", v.Queriers, start)
		return v
	})
	// Deterministic order: by footprint descending, address ascending.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Queriers != out[j].Queriers {
			return out[i].Queriers > out[j].Queriers
		}
		return out[i].Originator < out[j].Originator
	})
	tok.End()
	sp.End()
	return out
}

// emitRefs annotates every trace that fed one originator's aggregate
// with a pipeline stage decision. The querier count is formatted here,
// after the Tracer nil check, so untraced runs never pay for building
// the detail string. Iteration order over refs is irrelevant: the
// tracer renders pipeline events as a sorted multiset.
func (x *Extractor) emitRefs(a *originatorAgg, stage, outcome string, queriers int, at simtime.Time) {
	if x.Tracer == nil {
		return
	}
	detail := "queriers=" + strconv.Itoa(queriers)
	for id, t0 := range a.refs {
		x.Tracer.Pipeline(id, t0, stage, outcome, detail, at)
	}
}

func (x *Extractor) vector(orig ipaddr.Addr, a *originatorAgg, totalAS, totalCountry, totalQueriers, totalBuckets int) *Vector {
	v := &Vector{Originator: orig, Queriers: len(a.queriers), Queries: a.queries}

	counts24 := make(map[uint32]int)
	counts8 := make(map[byte]int)
	ases := make(map[int]struct{})
	countries := make(map[string]struct{})
	for q := range a.queriers {
		name, unreach := x.NameOf(q)
		cat := qname.Classify(name)
		if unreach {
			cat = qname.Unreach
		}
		v.X[int(cat)]++
		counts24[q.Slash24()]++
		counts8[q.Slash8()]++
		ases[x.Geo.ASN(q)] = struct{}{}
		countries[x.Geo.Country(q)] = struct{}{}
	}
	n := float64(len(a.queriers))
	for i := 0; i < NumStatic; i++ {
		v.X[i] /= n
	}

	d := v.X[NumStatic:]
	d[DynQueriesPerQuerier] = float64(a.queries) / n
	d[DynPersistence] = float64(len(a.buckets)) / float64(totalBuckets)
	d[DynLocalEntropy] = normEntropy24(counts24, len(a.queriers))
	d[DynGlobalEntropy] = normEntropy8(counts8, len(a.queriers))
	d[DynUniqueASes] = ratio(len(ases), totalAS)
	d[DynUniqueCountries] = ratio(len(countries), totalCountry)
	if len(countries) > 0 && totalQueriers > 0 {
		d[DynQueriersPerCountry] = n / float64(len(countries)) / float64(totalQueriers)
	}
	if len(ases) > 0 && totalQueriers > 0 {
		d[DynQueriersPerAS] = n / float64(len(ases)) / float64(totalQueriers)
	}
	return v
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// normEntropy24 is the Shannon entropy of querier /24 prefixes, normalized
// to [0, 1] by the maximum achievable for n queriers.
func normEntropy24(counts map[uint32]int, n int) float64 {
	cs := make([]int, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	return normEntropy(cs, n, 1<<24)
}

func normEntropy8(counts map[byte]int, n int) float64 {
	cs := make([]int, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	return normEntropy(cs, n, 256)
}

// normEntropy computes Shannon entropy over counts (which sum to n) and
// normalizes by log2(min(n, space)) — the entropy of n queriers spread as
// evenly as the prefix space allows. Counts arrive in map-iteration
// order, so they are sorted first: float summation order then never
// depends on map layout, keeping vectors byte-identical run to run.
func normEntropy(counts []int, n, space int) float64 {
	if n <= 1 {
		return 0
	}
	sort.Ints(counts)
	h := 0.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		h -= p * math.Log2(p)
	}
	denom := math.Log2(math.Min(float64(n), float64(space)))
	if denom <= 0 {
		return 0
	}
	if v := h / denom; v < 1 {
		return v
	}
	return 1
}

// TopN keeps the n originators with the most unique queriers (vectors are
// already footprint-sorted).
func TopN(vs []*Vector, n int) []*Vector {
	if n >= len(vs) {
		return vs
	}
	return vs[:n]
}
