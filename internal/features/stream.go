package features

import (
	"cmp"
	"slices"
	"sort"

	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/hll"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/simtime"
)

// StreamExtractor computes approximate feature vectors in bounded memory,
// one record at a time — the shape a sensor needs at the paper's real
// volumes (Table I: 10^9 queries), where a set per originator is not
// affordable. Per originator it keeps:
//
//   - a HyperLogLog sketch of querier addresses (the footprint estimate),
//   - a bottom-k sketch (hll.BottomK): the k queriers with the smallest
//     hashes, a uniform sample of the *distinct* queriers, from which
//     static name fractions, entropies, and AS/country dispersion are
//     estimated,
//   - an exact query counter and a 10-minute persistence bitset.
//
// Deduplication uses a fixed-size last-seen table keyed by pair hash;
// collisions can suppress a stray extra query, a vanishing bias at sensor
// scales. When the originator table exceeds MaxOriginators, originators
// with the smallest footprints are evicted — they are the unanalyzable
// tail the batch pipeline drops anyway.
//
// The snapshot math is shared with the sharded streaming engine
// (internal/stream) through SketchStats / NormsFromStats / SketchVector.
type StreamExtractor struct {
	Geo    *geo.Registry
	NameOf NameFunc
	// MinQueriers is the analyzability threshold on the HLL estimate.
	MinQueriers int
	// DedupWindow matches the batch extractor's 30 s default.
	DedupWindow simtime.Duration
	// SampleK is the bottom-k size (default 256).
	SampleK int
	// MaxOriginators bounds tracked originators (default 1 << 16).
	MaxOriginators int

	aggs  map[ipaddr.Addr]*streamAgg
	dedup []dedupSlot
}

type dedupSlot struct {
	key  uint64
	last simtime.Time
}

// dedupSlots is the fixed dedup table size (1M slots, 16 MiB).
const dedupSlots = 1 << 20

// NewStreamExtractor returns a streaming extractor with the paper's
// thresholds.
func NewStreamExtractor(g *geo.Registry, nameOf NameFunc) *StreamExtractor {
	return &StreamExtractor{
		Geo:            g,
		NameOf:         nameOf,
		MinQueriers:    20,
		DedupWindow:    30 * simtime.Second,
		SampleK:        256,
		MaxOriginators: 1 << 16,
		aggs:           make(map[ipaddr.Addr]*streamAgg),
		dedup:          make([]dedupSlot, dedupSlots),
	}
}

// streamAgg is one originator's bounded state.
type streamAgg struct {
	queriers *hll.Sketch
	sample   *hll.BottomK[ipaddr.Addr]
	queries  int
	buckets  map[int]struct{}
}

// Observe feeds one record through dedup into the sketches.
func (x *StreamExtractor) Observe(r dnslog.Record) {
	if x.DedupWindow > 0 {
		key := hll.Hash64(uint64(r.Originator)<<32 ^ uint64(r.Querier))
		slot := &x.dedup[key&(dedupSlots-1)]
		if slot.key == key && r.Time.Sub(slot.last) < x.DedupWindow {
			return
		}
		slot.key = key
		slot.last = r.Time
	}

	a := x.aggs[r.Originator]
	if a == nil {
		if len(x.aggs) >= x.max() {
			x.evict()
		}
		a = &streamAgg{
			queriers: hll.MustNew(11),
			sample:   hll.NewBottomK[ipaddr.Addr](x.sampleK()),
			buckets:  make(map[int]struct{}),
		}
		x.aggs[r.Originator] = a
	}
	a.queries++
	h := hll.Hash64(uint64(r.Querier))
	a.queriers.Add(h)
	a.sample.Add(h, r.Querier)
	a.buckets[r.Time.TenMinuteBucket()] = struct{}{}
}

func (x *StreamExtractor) max() int {
	if x.MaxOriginators > 0 {
		return x.MaxOriginators
	}
	return 1 << 16
}

func (x *StreamExtractor) sampleK() int {
	if x.SampleK > 0 {
		return x.SampleK
	}
	return 256
}

// evict drops the smallest-footprint half of tracked originators.
func (x *StreamExtractor) evict() {
	type entry struct {
		a ipaddr.Addr
		n uint64
	}
	all := make([]entry, 0, len(x.aggs))
	for a, agg := range x.aggs {
		all = append(all, entry{a, agg.queriers.Estimate()})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n < all[j].n
		}
		return all[i].a < all[j].a
	})
	for _, e := range all[:len(all)/2] {
		delete(x.aggs, e.a)
	}
}

// Tracked reports how many originators currently hold state.
func (x *StreamExtractor) Tracked() int { return len(x.aggs) }

// Stats returns every tracked originator's sketch summary in ascending
// originator order — the input NormsFromStats and SketchVector consume.
func (x *StreamExtractor) Stats() []SketchStats {
	stats := make([]SketchStats, 0, len(x.aggs))
	for orig, a := range x.aggs {
		stats = append(stats, SketchStats{
			Originator: orig,
			Estimate:   int(a.queriers.Estimate()),
			Queries:    a.queries,
			Buckets:    len(a.buckets),
			Sample:     a.sample.Values(),
		})
	}
	slices.SortFunc(stats, func(a, b SketchStats) int {
		return cmp.Compare(a.Originator, b.Originator)
	})
	return stats
}

// Snapshot produces vectors for every originator whose estimated footprint
// clears the threshold. Statics and spatial features come from the
// bottom-k sample; Queriers carries the HLL estimate.
func (x *StreamExtractor) Snapshot(start simtime.Time, dur simtime.Duration) []*Vector {
	stats := x.Stats()
	norms := NormsFromStats(x.Geo, stats, dur)
	out := make([]*Vector, 0, len(stats))
	for _, st := range stats {
		if st.Estimate < x.MinQueriers {
			continue
		}
		if v := SketchVector(x.Geo, x.NameOf, st, norms); v != nil {
			out = append(out, v)
		}
	}
	SortVectors(out)
	return out
}
