package features

import (
	"container/heap"
	"sort"

	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/hll"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/qname"
	"dnsbackscatter/internal/simtime"
)

// StreamExtractor computes approximate feature vectors in bounded memory,
// one record at a time — the shape a sensor needs at the paper's real
// volumes (Table I: 10^9 queries), where a set per originator is not
// affordable. Per originator it keeps:
//
//   - a HyperLogLog sketch of querier addresses (the footprint estimate),
//   - a bottom-k sketch (KMV): the k queriers with the smallest hashes, a
//     uniform sample of the *distinct* queriers, from which static name
//     fractions, entropies, and AS/country dispersion are estimated,
//   - an exact query counter and a 10-minute persistence bitset.
//
// Deduplication uses a fixed-size last-seen table keyed by pair hash;
// collisions can suppress a stray extra query, a vanishing bias at sensor
// scales. When the originator table exceeds MaxOriginators, originators
// with the smallest footprints are evicted — they are the unanalyzable
// tail the batch pipeline drops anyway.
type StreamExtractor struct {
	Geo    *geo.Registry
	NameOf NameFunc
	// MinQueriers is the analyzability threshold on the HLL estimate.
	MinQueriers int
	// DedupWindow matches the batch extractor's 30 s default.
	DedupWindow simtime.Duration
	// SampleK is the bottom-k size (default 256).
	SampleK int
	// MaxOriginators bounds tracked originators (default 1 << 16).
	MaxOriginators int

	aggs  map[ipaddr.Addr]*streamAgg
	dedup []dedupSlot
}

type dedupSlot struct {
	key  uint64
	last simtime.Time
}

// dedupSlots is the fixed dedup table size (1M slots, 16 MiB).
const dedupSlots = 1 << 20

// NewStreamExtractor returns a streaming extractor with the paper's
// thresholds.
func NewStreamExtractor(g *geo.Registry, nameOf NameFunc) *StreamExtractor {
	return &StreamExtractor{
		Geo:            g,
		NameOf:         nameOf,
		MinQueriers:    20,
		DedupWindow:    30 * simtime.Second,
		SampleK:        256,
		MaxOriginators: 1 << 16,
		aggs:           make(map[ipaddr.Addr]*streamAgg),
		dedup:          make([]dedupSlot, dedupSlots),
	}
}

// streamAgg is one originator's bounded state.
type streamAgg struct {
	queriers *hll.Sketch
	sample   kmv
	queries  int
	buckets  map[int]struct{}
}

// kmv keeps the k distinct queriers with the smallest hashes (a max-heap
// on hash so the largest is evictable in O(log k)).
type kmv struct {
	k      int
	hashes []uint64
	addrs  map[uint64]ipaddr.Addr
}

// Len implements heap.Interface.
func (s *kmv) Len() int { return len(s.hashes) }

// Less implements heap.Interface; > hash makes this a max-heap.
func (s *kmv) Less(i, j int) bool { return s.hashes[i] > s.hashes[j] }

// Swap implements heap.Interface.
func (s *kmv) Swap(i, j int) { s.hashes[i], s.hashes[j] = s.hashes[j], s.hashes[i] }

// Push implements heap.Interface.
func (s *kmv) Push(x any) { s.hashes = append(s.hashes, x.(uint64)) }

// Pop implements heap.Interface.
func (s *kmv) Pop() any {
	old := s.hashes
	n := len(old)
	v := old[n-1]
	s.hashes = old[:n-1]
	return v
}

func (s *kmv) add(h uint64, a ipaddr.Addr) {
	if _, dup := s.addrs[h]; dup {
		return
	}
	if len(s.hashes) < s.k {
		s.addrs[h] = a
		heap.Push(s, h)
		return
	}
	if h >= s.hashes[0] {
		return // larger than the current k-th smallest
	}
	delete(s.addrs, s.hashes[0])
	s.hashes[0] = h
	s.addrs[h] = a
	heap.Fix(s, 0)
}

// Observe feeds one record through dedup into the sketches.
func (x *StreamExtractor) Observe(r dnslog.Record) {
	if x.DedupWindow > 0 {
		key := hll.Hash64(uint64(r.Originator)<<32 ^ uint64(r.Querier))
		slot := &x.dedup[key&(dedupSlots-1)]
		if slot.key == key && r.Time.Sub(slot.last) < x.DedupWindow {
			return
		}
		slot.key = key
		slot.last = r.Time
	}

	a := x.aggs[r.Originator]
	if a == nil {
		if len(x.aggs) >= x.max() {
			x.evict()
		}
		a = &streamAgg{
			queriers: hll.MustNew(11),
			sample:   kmv{k: x.sampleK(), addrs: make(map[uint64]ipaddr.Addr)},
			buckets:  make(map[int]struct{}),
		}
		x.aggs[r.Originator] = a
	}
	a.queries++
	h := hll.Hash64(uint64(r.Querier))
	a.queriers.Add(h)
	a.sample.add(h, r.Querier)
	a.buckets[r.Time.TenMinuteBucket()] = struct{}{}
}

func (x *StreamExtractor) max() int {
	if x.MaxOriginators > 0 {
		return x.MaxOriginators
	}
	return 1 << 16
}

func (x *StreamExtractor) sampleK() int {
	if x.SampleK > 0 {
		return x.SampleK
	}
	return 256
}

// evict drops the smallest-footprint half of tracked originators.
func (x *StreamExtractor) evict() {
	type entry struct {
		a ipaddr.Addr
		n uint64
	}
	all := make([]entry, 0, len(x.aggs))
	for a, agg := range x.aggs {
		all = append(all, entry{a, agg.queriers.Estimate()})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n < all[j].n })
	for _, e := range all[:len(all)/2] {
		delete(x.aggs, e.a)
	}
}

// Tracked reports how many originators currently hold state.
func (x *StreamExtractor) Tracked() int { return len(x.aggs) }

// Snapshot produces vectors for every originator whose estimated footprint
// clears the threshold. Statics and spatial features come from the
// bottom-k sample; Queriers carries the HLL estimate.
func (x *StreamExtractor) Snapshot(start simtime.Time, dur simtime.Duration) []*Vector {
	totalBuckets := int(dur / (10 * simtime.Minute))
	if totalBuckets < 1 {
		totalBuckets = 1
	}

	// Interval-level normalizers from the union of samples.
	allAS := make(map[int]struct{})
	allCountry := make(map[string]struct{})
	allQueriers := make(map[ipaddr.Addr]struct{})
	for _, a := range x.aggs {
		for _, q := range a.sample.addrs {
			if _, seen := allQueriers[q]; seen {
				continue
			}
			allQueriers[q] = struct{}{}
			allAS[x.Geo.ASN(q)] = struct{}{}
			allCountry[x.Geo.Country(q)] = struct{}{}
		}
	}
	// The samples undercount global uniques; scale the querier-total
	// normalizer by the ratio of HLL mass to sampled mass.
	var hllMass, sampleMass float64
	for _, a := range x.aggs {
		hllMass += float64(a.queriers.Estimate())
		sampleMass += float64(len(a.sample.addrs))
	}
	totalQueriers := len(allQueriers)
	if sampleMass > 0 {
		totalQueriers = int(float64(totalQueriers) * hllMass / sampleMass)
	}

	var out []*Vector
	for orig, a := range x.aggs {
		est := int(a.queriers.Estimate())
		if est < x.MinQueriers {
			continue
		}
		v := &Vector{Originator: orig, Queriers: est, Queries: a.queries}

		counts24 := make(map[uint32]int)
		counts8 := make(map[byte]int)
		ases := make(map[int]struct{})
		countries := make(map[string]struct{})
		n := 0
		for _, q := range a.sample.addrs {
			n++
			name, unreach := x.NameOf(q)
			cat := qname.Classify(name)
			if unreach {
				cat = qname.Unreach
			}
			v.X[int(cat)]++
			counts24[q.Slash24()]++
			counts8[q.Slash8()]++
			ases[x.Geo.ASN(q)] = struct{}{}
			countries[x.Geo.Country(q)] = struct{}{}
		}
		if n == 0 {
			continue
		}
		for i := 0; i < NumStatic; i++ {
			v.X[i] /= float64(n)
		}
		d := v.X[NumStatic:]
		d[DynQueriesPerQuerier] = float64(a.queries) / float64(est)
		d[DynPersistence] = float64(len(a.buckets)) / float64(totalBuckets)
		d[DynLocalEntropy] = normEntropy24(counts24, n)
		d[DynGlobalEntropy] = normEntropy8(counts8, n)
		// Dispersion scales from the sample to the full footprint.
		scale := float64(est) / float64(n)
		d[DynUniqueASes] = ratio(int(float64(len(ases))*scale+0.5), len(allAS))
		if d[DynUniqueASes] > 1 {
			d[DynUniqueASes] = 1
		}
		d[DynUniqueCountries] = ratio(len(countries), len(allCountry))
		if len(countries) > 0 && totalQueriers > 0 {
			d[DynQueriersPerCountry] = float64(est) / float64(len(countries)) / float64(totalQueriers)
		}
		if len(ases) > 0 && totalQueriers > 0 {
			est24 := float64(len(ases)) * scale
			d[DynQueriersPerAS] = float64(est) / est24 / float64(totalQueriers)
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Queriers != out[j].Queriers {
			return out[i].Queriers > out[j].Queriers
		}
		return out[i].Originator < out[j].Originator
	})
	return out
}
