package features

import (
	"math"
	"testing"
	"testing/quick"

	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

// randomRecords builds a random but well-formed interval log.
func randomRecords(seed uint64, nOrig, maxQueriers int) []dnslog.Record {
	st := rng.New(seed)
	var recs []dnslog.Record
	for o := 0; o < nOrig; o++ {
		orig := ipaddr.Addr(st.Uint64())
		nq := 1 + st.Intn(maxQueriers)
		for q := 0; q < nq; q++ {
			qa := ipaddr.Addr(st.Uint64())
			n := 1 + st.Intn(3)
			t := simtime.Time(st.Intn(86400))
			for k := 0; k < n; k++ {
				recs = append(recs, dnslog.Record{Time: t, Originator: orig, Querier: qa})
				t = t.Add(simtime.Duration(st.Intn(7200)))
			}
		}
	}
	return recs
}

// names half the queriers, leaves the rest nameless, marks a few unreach.
func fuzzNames(a ipaddr.Addr) (string, bool) {
	switch a % 5 {
	case 0:
		return "", false
	case 1:
		return "", true
	case 2:
		return "mail.fuzz.example.jp", false
	case 3:
		return "weird..name..", false // malformed names must not break anything
	default:
		return "home1-2-3-4.fuzz.example.jp", false
	}
}

// TestVectorInvariants checks every extracted vector satisfies the §III-C
// contract on arbitrary inputs: static fractions form a distribution,
// every feature is finite, bounded features stay in [0, 1].
func TestVectorInvariants(t *testing.T) {
	g := geo.NewRegistry(1)
	if err := quick.Check(func(seed uint64) bool {
		recs := randomRecords(seed, 5, 60)
		x := NewExtractor(g, fuzzNames)
		x.MinQueriers = 1
		for _, v := range x.Extract(recs, 0, simtime.Day) {
			sum := 0.0
			for i := 0; i < NumStatic; i++ {
				if v.X[i] < 0 || v.X[i] > 1 {
					return false
				}
				sum += v.X[i]
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
			for i := 0; i < NumFeatures; i++ {
				if math.IsNaN(v.X[i]) || math.IsInf(v.X[i], 0) || v.X[i] < 0 {
					return false
				}
			}
			for _, di := range []int{DynPersistence, DynLocalEntropy, DynGlobalEntropy,
				DynUniqueASes, DynUniqueCountries} {
				if d := v.Dynamic(di); d > 1+1e-9 {
					return false
				}
			}
			if v.Dynamic(DynQueriesPerQuerier) < 1 {
				return false // at least one query per counted querier
			}
			if v.Queriers <= 0 || v.Queries < v.Queriers {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestExtractIsOrderInsensitive: shuffling record order (while preserving
// per-pair time order via distinct pairs) must not change any vector.
func TestExtractIsOrderInsensitive(t *testing.T) {
	g := geo.NewRegistry(1)
	orig := ipaddr.MustParse("1.2.3.4")
	var recs []dnslog.Record
	for q := 0; q < 40; q++ {
		recs = append(recs, dnslog.Record{
			Time:       simtime.Time(q * 100),
			Originator: orig,
			Querier:    ipaddr.FromOctets(10, 1, byte(q), 1),
		})
	}
	x := NewExtractor(g, fuzzNames)
	x.MinQueriers = 1
	before := x.Extract(recs, 0, simtime.Day)

	st := rng.New(9)
	st.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	after := x.Extract(recs, 0, simtime.Day)

	if len(before) != 1 || len(after) != 1 || before[0].X != after[0].X {
		t.Error("vector depends on record order for distinct pairs")
	}
}

// TestEntropyMonotonicity: spreading queriers over more /8s must not lower
// global entropy.
func TestEntropyMonotonicity(t *testing.T) {
	g := geo.NewRegistry(1)
	x := NewExtractor(g, fuzzNames)
	x.MinQueriers = 1
	build := func(slash8s int) float64 {
		var recs []dnslog.Record
		for q := 0; q < 64; q++ {
			recs = append(recs, dnslog.Record{
				Time:       simtime.Time(q * 40),
				Originator: ipaddr.MustParse("1.2.3.4"),
				Querier:    ipaddr.FromOctets(byte(q%slash8s), 9, byte(q), 7),
			})
		}
		vs := x.Extract(recs, 0, simtime.Day)
		return vs[0].Dynamic(DynGlobalEntropy)
	}
	prev := -1.0
	for _, n := range []int{1, 2, 4, 16, 64} {
		e := build(n)
		if e < prev-1e-9 {
			t.Fatalf("entropy decreased when spreading to %d /8s: %v < %v", n, e, prev)
		}
		prev = e
	}
}
