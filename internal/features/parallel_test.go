package features

import (
	"bytes"
	"fmt"
	"testing"

	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/simtime"
)

// multiOrigRecs interleaves records from many originators so every
// extract shard gets work and dedup decisions cross shard boundaries
// only via their own (originator, querier) pairs.
func multiOrigRecs(nOrigs, nQueriers, queriesEach int) []dnslog.Record {
	var recs []dnslog.Record
	t := simtime.Time(0)
	for k := 0; k < queriesEach; k++ {
		for o := 0; o < nOrigs; o++ {
			orig := ipaddr.FromOctets(192, 0, byte(2+o/256), byte(o%256))
			for q := 0; q < nQueriers; q++ {
				qa := ipaddr.FromOctets(10, byte(o), byte(q/256), byte(q%256))
				recs = append(recs, dnslog.Record{
					Time: t, Originator: orig, Querier: qa, Authority: "jp",
				})
				t = t.Add(1) // inside the window: dedup must suppress repeats
			}
		}
		t = t.Add(3600)
	}
	return recs
}

// renderVectors serializes extraction output byte-for-byte for
// cross-worker-count comparison.
func renderVectors(vs []*Vector) []byte {
	var b bytes.Buffer
	for _, v := range vs {
		fmt.Fprintf(&b, "%s %d %d %x\n", v.Originator, v.Queriers, v.Queries, v.X)
	}
	return b.Bytes()
}

// TestExtractWorkerCountInvariant is the extract-stage determinism bar:
// identical vectors — to the last float bit — at any worker count, and
// identical obs registries too (the parallel metrics count data
// properties, never worker counts).
func TestExtractWorkerCountInvariant(t *testing.T) {
	recs := multiOrigRecs(40, 25, 3)
	run := func(workers int) ([]byte, []byte) {
		x := newTestExtractor()
		x.Workers = workers
		reg := obs.NewRegistry()
		x.Obs = reg
		vs := x.Extract(recs, 0, simtime.Day)
		if len(vs) != 40 {
			t.Fatalf("workers=%d: %d analyzable originators, want 40", workers, len(vs))
		}
		return renderVectors(vs), reg.SnapshotJSON()
	}
	wantVecs, wantReg := run(1)
	for _, w := range []int{2, 4, 8} {
		gotVecs, gotReg := run(w)
		if !bytes.Equal(gotVecs, wantVecs) {
			t.Errorf("workers=%d: vectors differ from sequential run", w)
		}
		if !bytes.Equal(gotReg, wantReg) {
			t.Errorf("workers=%d: obs snapshots differ from sequential run:\n%s\n----\n%s",
				w, gotReg, wantReg)
		}
	}
}

// TestExtractShardingPreservesDedup pins that originator sharding does
// not change any keep/drop decision: per-pair repeats inside the window
// are suppressed exactly as in a single global deduper.
func TestExtractShardingPreservesDedup(t *testing.T) {
	recs := multiOrigRecs(10, 30, 4)
	x := newTestExtractor()
	x.Workers = 4
	reg := obs.NewRegistry()
	x.Obs = reg
	x.Extract(recs, 0, simtime.Day)

	kept := reg.Counter("pipeline_records_kept_total").Value()
	// Global reference dedup over the unsharded stream.
	var want uint64
	d := dnslog.NewDeduper(x.DedupWindow)
	for _, r := range recs {
		if d.Keep(r) {
			want++
		}
	}
	if kept != want {
		t.Errorf("sharded dedup kept %d records, global dedup keeps %d", kept, want)
	}
	if got := reg.Counter("parallel_shards_total", obs.L("stage", "dedup")).Value(); got != extractShards {
		t.Errorf("dedup parallel_shards_total = %d, want %d", got, extractShards)
	}
}
