package features

import (
	"math"
	"testing"

	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/qname"
	"dnsbackscatter/internal/simtime"
)

// testNames maps a querier's last octet to a synthetic name so tests can
// steer static features precisely.
func testNames(a ipaddr.Addr) (string, bool) {
	_, _, _, o3 := a.Octets()
	switch o3 % 4 {
	case 0:
		return "mail.example.jp", false
	case 1:
		return "home1-2-3-4.example.jp", false
	case 2:
		return "", false // nxdomain
	default:
		return "ns1.example.jp", false
	}
}

func mkRecs(orig string, nQueriers, queriesEach int) []dnslog.Record {
	o := ipaddr.MustParse(orig)
	var recs []dnslog.Record
	t := simtime.Time(0)
	for q := 0; q < nQueriers; q++ {
		qa := ipaddr.FromOctets(10, byte(q/256), byte(q%256), byte(q%251))
		for k := 0; k < queriesEach; k++ {
			recs = append(recs, dnslog.Record{
				Time: t, Originator: o, Querier: qa, Authority: "jp",
			})
			t = t.Add(40) // outside the 30 s dedup window
		}
	}
	return recs
}

func newTestExtractor() *Extractor {
	return NewExtractor(geo.NewRegistry(42), testNames)
}

func TestNamesShape(t *testing.T) {
	names := Names()
	if len(names) != NumFeatures {
		t.Fatalf("Names has %d entries, want %d", len(names), NumFeatures)
	}
	if names[int(qname.Mail)] != "mail" {
		t.Errorf("static name order wrong: %v", names[:NumStatic])
	}
	if names[NumStatic+DynGlobalEntropy] != "global-entropy" {
		t.Errorf("dynamic name order wrong")
	}
	if !IsStatic(0) || IsStatic(NumStatic) {
		t.Error("IsStatic boundaries wrong")
	}
}

func TestAnalyzabilityThreshold(t *testing.T) {
	x := newTestExtractor()
	recs := mkRecs("1.2.3.4", 19, 1)
	if got := x.Extract(recs, 0, simtime.Day); len(got) != 0 {
		t.Errorf("19 queriers passed the 20-querier threshold")
	}
	recs = mkRecs("1.2.3.4", 20, 1)
	if got := x.Extract(recs, 0, simtime.Day); len(got) != 1 {
		t.Errorf("20 queriers rejected")
	}
}

func TestStaticFractionsSumToOne(t *testing.T) {
	x := newTestExtractor()
	vs := x.Extract(mkRecs("1.2.3.4", 40, 2), 0, simtime.Day)
	if len(vs) != 1 {
		t.Fatal("no vector")
	}
	sum := 0.0
	for i := 0; i < NumStatic; i++ {
		sum += vs[0].X[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("static fractions sum to %v", sum)
	}
	// The o3%4 split gives roughly a quarter per bucket.
	for _, c := range []qname.Category{qname.Mail, qname.Home, qname.NXDomain, qname.NS} {
		if f := vs[0].Static(c); f < 0.1 || f > 0.45 {
			t.Errorf("%v fraction = %v, want ≈0.25", c, f)
		}
	}
}

func TestQueriesPerQuerier(t *testing.T) {
	x := newTestExtractor()
	vs := x.Extract(mkRecs("1.2.3.4", 30, 3), 0, simtime.Day)
	if got := vs[0].Dynamic(DynQueriesPerQuerier); math.Abs(got-3) > 1e-9 {
		t.Errorf("queries/querier = %v, want 3", got)
	}
	if vs[0].Queries != 90 {
		t.Errorf("Queries = %d, want 90", vs[0].Queries)
	}
}

func TestDedupAffectsRates(t *testing.T) {
	o := ipaddr.MustParse("1.2.3.4")
	var recs []dnslog.Record
	for q := 0; q < 25; q++ {
		qa := ipaddr.FromOctets(10, 0, byte(q), 1)
		// Three queries within one 30 s window: only one survives.
		for k := 0; k < 3; k++ {
			recs = append(recs, dnslog.Record{Time: simtime.Time(k), Originator: o, Querier: qa})
		}
	}
	x := newTestExtractor()
	vs := x.Extract(recs, 0, simtime.Day)
	if got := vs[0].Dynamic(DynQueriesPerQuerier); math.Abs(got-1) > 1e-9 {
		t.Errorf("queries/querier = %v after dedup, want 1", got)
	}
}

func TestPersistence(t *testing.T) {
	o := ipaddr.MustParse("1.2.3.4")
	var recs []dnslog.Record
	// 25 queriers all inside one 10-minute bucket.
	for q := 0; q < 25; q++ {
		recs = append(recs, dnslog.Record{
			Time:       simtime.Time(q), // within bucket 0
			Originator: o,
			Querier:    ipaddr.FromOctets(10, 0, byte(q), 1),
		})
	}
	x := newTestExtractor()
	vs := x.Extract(recs, 0, simtime.Hours(1)) // 6 buckets
	want := 1.0 / 6
	if got := vs[0].Dynamic(DynPersistence); math.Abs(got-want) > 1e-9 {
		t.Errorf("persistence = %v, want %v", got, want)
	}
}

func TestEntropyContrast(t *testing.T) {
	x := newTestExtractor()
	o := ipaddr.MustParse("1.2.3.4")
	// Concentrated: all queriers in one /24 and one /8.
	var conc []dnslog.Record
	for q := 0; q < 30; q++ {
		conc = append(conc, dnslog.Record{Time: simtime.Time(q * 40), Originator: o,
			Querier: ipaddr.FromOctets(10, 0, 0, byte(q))})
	}
	// Dispersed: all queriers in distinct /8s.
	var disp []dnslog.Record
	for q := 0; q < 30; q++ {
		disp = append(disp, dnslog.Record{Time: simtime.Time(q * 40), Originator: o,
			Querier: ipaddr.FromOctets(byte(q*7), 1, 2, 3)})
	}
	vc := x.Extract(conc, 0, simtime.Day)[0]
	vd := x.Extract(disp, 0, simtime.Day)[0]
	if vc.Dynamic(DynGlobalEntropy) != 0 {
		t.Errorf("single-/8 global entropy = %v, want 0", vc.Dynamic(DynGlobalEntropy))
	}
	if vd.Dynamic(DynGlobalEntropy) < 0.95 {
		t.Errorf("distinct-/8 global entropy = %v, want ≈1", vd.Dynamic(DynGlobalEntropy))
	}
	if vc.Dynamic(DynLocalEntropy) != 0 {
		t.Errorf("single-/24 local entropy = %v, want 0", vc.Dynamic(DynLocalEntropy))
	}
}

func TestUnreachFlagOverridesName(t *testing.T) {
	nameOf := func(a ipaddr.Addr) (string, bool) { return "", true }
	x := NewExtractor(geo.NewRegistry(42), nameOf)
	vs := x.Extract(mkRecs("1.2.3.4", 25, 1), 0, simtime.Day)
	if got := vs[0].Static(qname.Unreach); got != 1 {
		t.Errorf("unreach fraction = %v, want 1", got)
	}
}

func TestNormalizedDispersion(t *testing.T) {
	// Two originators: one touched by all interval queriers, one by a
	// geographically narrow subset. Dispersion features must differ.
	o1 := ipaddr.MustParse("1.1.1.1")
	o2 := ipaddr.MustParse("2.2.2.2")
	var recs []dnslog.Record
	for q := 0; q < 40; q++ {
		recs = append(recs, dnslog.Record{Time: simtime.Time(q * 40), Originator: o1,
			Querier: ipaddr.FromOctets(byte(q*5), 1, 2, 3)})
	}
	for q := 0; q < 25; q++ {
		recs = append(recs, dnslog.Record{Time: simtime.Time(q*40 + 7), Originator: o2,
			Querier: ipaddr.FromOctets(100, 1, byte(q), 3)})
	}
	x := newTestExtractor()
	vs := x.Extract(recs, 0, simtime.Day)
	if len(vs) != 2 {
		t.Fatalf("%d vectors", len(vs))
	}
	byOrig := map[ipaddr.Addr]*Vector{vs[0].Originator: vs[0], vs[1].Originator: vs[1]}
	if byOrig[o1].Dynamic(DynUniqueCountries) <= byOrig[o2].Dynamic(DynUniqueCountries) {
		t.Error("globally dispersed originator has no higher country dispersion")
	}
	if byOrig[o1].Dynamic(DynUniqueASes) <= byOrig[o2].Dynamic(DynUniqueASes) {
		t.Error("globally dispersed originator has no higher AS dispersion")
	}
}

func TestSortingAndTopN(t *testing.T) {
	var recs []dnslog.Record
	recs = append(recs, mkRecs("1.1.1.1", 50, 1)...)
	recs = append(recs, mkRecs("2.2.2.2", 30, 1)...)
	recs = append(recs, mkRecs("3.3.3.3", 40, 1)...)
	x := newTestExtractor()
	vs := x.Extract(recs, 0, simtime.Day)
	if len(vs) != 3 {
		t.Fatalf("%d vectors", len(vs))
	}
	if vs[0].Queriers < vs[1].Queriers || vs[1].Queriers < vs[2].Queriers {
		t.Error("vectors not footprint-sorted")
	}
	top := TopN(vs, 2)
	if len(top) != 2 || top[0].Originator != ipaddr.MustParse("1.1.1.1") {
		t.Errorf("TopN wrong: %v", top)
	}
	if got := TopN(vs, 10); len(got) != 3 {
		t.Error("TopN beyond length must return all")
	}
}

func TestExtractDeterministic(t *testing.T) {
	recs := append(mkRecs("1.1.1.1", 30, 2), mkRecs("2.2.2.2", 30, 2)...)
	x := newTestExtractor()
	a := x.Extract(recs, 0, simtime.Day)
	b := x.Extract(recs, 0, simtime.Day)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Originator != b[i].Originator || a[i].X != b[i].X {
			t.Fatalf("vector %d differs across runs", i)
		}
	}
}

func TestVectorAccessors(t *testing.T) {
	v := &Vector{}
	v.X[int(qname.Mail)] = 0.5
	v.X[NumStatic+DynGlobalEntropy] = 0.9
	if v.Static(qname.Mail) != 0.5 || v.Dynamic(DynGlobalEntropy) != 0.9 {
		t.Error("accessors wrong")
	}
	if v.String() == "" {
		t.Error("String empty")
	}
}

func BenchmarkExtract(b *testing.B) {
	recs := append(mkRecs("1.1.1.1", 200, 3), mkRecs("2.2.2.2", 100, 2)...)
	x := newTestExtractor()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Extract(recs, 0, simtime.Day)
	}
}
