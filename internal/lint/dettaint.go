package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

func init() {
	RegisterModule(ModuleCheck{
		Name: "dettaint",
		Doc:  "taint reachability: no function reachable from a Build* pipeline root may hit wall-clock, global randomness, or unsorted map-order emission; simtime/rng are the only cut points",
		Run:  runDetTaint,
	})
}

// taintCutPoints are the sanctioned determinism bridges: traversal stops
// at their boundary, so a pipeline function may call simtime or rng
// freely — those packages own the only legitimate clock and randomness.
var taintCutPoints = []string{
	"/internal/simtime",
	"/internal/rng",
}

func taintCut(path string) bool {
	for _, frag := range taintCutPoints {
		if strings.Contains(path+"/", frag) {
			return true
		}
	}
	return false
}

// detSink is one nondeterminism source found directly in a function body.
type detSink struct {
	pos  token.Pos
	desc string
}

// runDetTaint walks the call graph from the pipeline roots — exported
// Build* functions and anything annotated //bslint:detroot — and reports
// every nondeterminism sink transitively reachable from them, with the
// full call chain in the diagnostic. This is the interprocedural backstop
// behind the per-function determinism check: a wall-clock read hidden two
// helpers deep (or one waved through with a nolint) still cannot reach
// the reproducible pipeline unnoticed.
func runDetTaint(g *Graph, pkgs []*Package) []Finding {
	var roots []*FuncNode
	for _, node := range g.sortedNodes() {
		if taintCut(node.Pkg.Path) || determinismExempt(node.Pkg.Path) {
			continue
		}
		if strings.HasPrefix(node.Fn.Name(), "Build") && node.Fn.Exported() ||
			hasDirective(node.Decl, "detroot") {
			roots = append(roots, node)
		}
	}
	if len(roots) == 0 {
		return nil
	}

	var out []Finding
	flagged := map[token.Pos]bool{} // a sink is reported once, from its first root
	for _, root := range roots {
		// BFS with parent links so diagnostics carry the shortest chain.
		parent := map[*FuncNode]*FuncNode{}
		queue := []*FuncNode{root}
		visited := map[*FuncNode]bool{root: true}
		for len(queue) > 0 {
			node := queue[0]
			queue = queue[1:]
			for _, sink := range nodeSinks(node) {
				if flagged[sink.pos] {
					continue
				}
				flagged[sink.pos] = true
				out = append(out, Finding{
					Pos: node.Pkg.Fset.Position(sink.pos),
					Message: sink.desc + " is reachable from pipeline root " +
						funcDisplayName(root.Fn) + " (" + chainString(parent, root, node) +
						"); route through simtime/rng or lift it out of the pipeline",
				})
			}
			for _, cs := range node.Calls {
				callee, ok := g.Nodes[cs.Callee]
				if !ok || visited[callee] || taintCut(callee.Pkg.Path) {
					continue
				}
				visited[callee] = true
				parent[callee] = node
				queue = append(queue, callee)
			}
		}
	}
	return out
}

// chainString renders the root → ... → node call chain recorded in the
// BFS parent links.
func chainString(parent map[*FuncNode]*FuncNode, root, node *FuncNode) string {
	var names []string
	for n := node; n != nil; n = parent[n] {
		names = append(names, funcDisplayName(n.Fn))
		if n == root {
			break
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return "chain: " + strings.Join(names, " → ")
}

// nodeSinks scans one function body for direct nondeterminism sources:
// wall-clock reads and waits, global math/rand draws, and unsorted
// map-range emission into returned slices.
func nodeSinks(node *FuncNode) []detSink {
	pkg := node.Pkg
	var sinks []detSink
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, obj := qualifiedUse(pkg, sel)
		switch {
		case pkgPath == "time" && timeForbidden[obj]:
			sinks = append(sinks, detSink{sel.Pos(), "wall-clock read time." + obj})
		case pkgPath == "time" && timeWaits[obj]:
			sinks = append(sinks, detSink{sel.Pos(), "wall-clock wait time." + obj})
		case isRandPkg(pkgPath) && randGlobal[obj]:
			sinks = append(sinks, detSink{sel.Pos(), "global math/rand." + obj})
		case isRandPkg(pkgPath) && obj == "New":
			if call, ok := callOf(pkg, sel); ok && len(call.Args) == 0 {
				sinks = append(sinks, detSink{sel.Pos(), "argless rand.New"})
			}
		}
		return true
	})
	for _, site := range mapOrderSites(pkg, node.Decl) {
		sinks = append(sinks, detSink{site.rng.Pos(), "unsorted map-range emission into " + site.obj.Name()})
	}
	return sinks
}
