package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/printer"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// TextEdit replaces the source range [Pos, End) with NewText. A zero-width
// range (Pos == End) is an insertion.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// Fix is a mechanical rewrite attached to a finding. Fixes are reserved
// for the classes where the correct edit is unambiguous — preallocation
// hints, sorting a map-range emission, nolint normalization — never for
// anything requiring judgment.
type Fix struct {
	// Message describes the rewrite, shown by bslint -fix.
	Message string
	// Edits are the byte-range replacements; they must not overlap.
	Edits []TextEdit
}

// ApplyFixes applies every suggested fix in findings to the files on
// disk, reformatting each rewritten file with go/format. Identical edits
// (two findings prescribing the same insertion) are deduplicated, and an
// edit overlapping an already-applied one is skipped rather than
// corrupting the file. It returns the rewritten file paths, sorted.
func ApplyFixes(fset *token.FileSet, findings []Finding) ([]string, error) {
	type edit struct {
		start, end int // byte offsets
		text       string
	}
	byFile := map[string][]edit{}
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		for _, e := range f.Fix.Edits {
			start := fset.Position(e.Pos)
			end := start
			if e.End.IsValid() {
				end = fset.Position(e.End)
			}
			if end.Filename != start.Filename {
				return nil, fmt.Errorf("lint: fix for %s spans files", f.Check)
			}
			byFile[start.Filename] = append(byFile[start.Filename], edit{start.Offset, end.Offset, e.NewText})
		}
	}

	var files []string
	for name, edits := range byFile {
		src, err := os.ReadFile(name)
		if err != nil {
			return files, err
		}
		// Deduplicate, then apply back to front so earlier offsets stay
		// valid.
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].start != edits[j].start {
				return edits[i].start > edits[j].start
			}
			return edits[i].end > edits[j].end
		})
		applied := edits[:0]
		lastStart := len(src) + 1
		for _, e := range edits {
			if len(applied) > 0 {
				prev := applied[len(applied)-1]
				if prev.start == e.start && prev.end == e.end && prev.text == e.text {
					continue // duplicate
				}
				if e.end > lastStart {
					continue // overlap with an already-applied edit
				}
			}
			applied = append(applied, e)
			lastStart = e.start
		}
		out := src
		for _, e := range applied {
			if e.start < 0 || e.end > len(out) || e.start > e.end {
				return files, fmt.Errorf("lint: fix offset out of range in %s", name)
			}
			out = append(out[:e.start], append([]byte(e.text), out[e.end:]...)...)
		}
		formatted, err := format.Source(out)
		if err != nil {
			return files, fmt.Errorf("lint: fixed %s does not format: %w", name, err)
		}
		if err := os.WriteFile(name, formatted, 0o644); err != nil {
			return files, err
		}
		files = append(files, name)
	}
	sort.Strings(files)
	return files, nil
}

// nodeText renders an AST node back to source, for fixes that need to
// restate part of the original (e.g. a slice's element type).
func nodeText(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return ""
	}
	return buf.String()
}

// fileOf returns the parsed file containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// importEdit returns an edit adding an import of path to the file
// containing pos, or a zero Fix-less nil slice when the file already
// imports it.
func importEdit(pkg *Package, pos token.Pos, path string) []TextEdit {
	file := fileOf(pkg, pos)
	if file == nil {
		return nil
	}
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return nil
		}
	}
	// Prefer extending an existing import block; otherwise add a new
	// import statement after the package clause.
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			return []TextEdit{{Pos: gd.Lparen + 1, End: gd.Lparen + 1, NewText: "\n\t\"" + path + "\""}}
		}
		return []TextEdit{{Pos: gd.End(), End: gd.End(), NewText: "\nimport \"" + path + "\""}}
	}
	return []TextEdit{{Pos: file.Name.End(), End: file.Name.End(), NewText: "\n\nimport \"" + path + "\""}}
}

// mapOrderFix builds the rewrite for an unsorted map-range emission when
// the element type has a canonical sort call: insert sort.Strings /
// sort.Ints after the loop (plus the sort import if missing). Other
// element types need a comparator, which is judgment, not mechanics.
func mapOrderFix(pkg *Package, fd *ast.FuncDecl, site mapOrderSite) *Fix {
	t := site.obj.Type()
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	var call string
	switch b, ok := slice.Elem().Underlying().(*types.Basic); {
	case ok && b.Kind() == types.String:
		call = "sort.Strings"
	case ok && b.Kind() == types.Int:
		call = "sort.Ints"
	default:
		return nil
	}
	edits := []TextEdit{{
		Pos:     site.rng.End(),
		End:     site.rng.End(),
		NewText: "\n" + call + "(" + site.obj.Name() + ")",
	}}
	edits = append(edits, importEdit(pkg, site.rng.Pos(), "sort")...)
	return &Fix{
		Message: "insert " + call + "(" + site.obj.Name() + ") after the map range",
		Edits:   edits,
	}
}
