// Package lint implements bslint, the project's static-analysis suite.
//
// The reproduction's validity rests on machine-checkable invariants —
// determinism (no wall clock or global randomness outside sanctioned
// bridges), lock discipline on shared state, and errors never silently
// discarded — that ordinary review misses and go vet does not cover. Each
// invariant is a Check registered here; cmd/bslint runs them over every
// package in the module and fails the build on findings.
//
// The framework is stdlib-only: packages load through go/parser and
// type-check through go/types, so checks see resolved types, not just
// syntax. Findings may be suppressed with a trailing `//nolint:<check>`
// comment on the offending line (or the line directly above it).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
	// Fix, when non-nil, is a mechanical rewrite that resolves the
	// finding; cmd/bslint -fix applies it.
	Fix *Fix
}

// String formats a finding as "file:line:col: [check] message", the
// grep-able shape editors and CI both understand.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Check is one analyzer: a named rule plus the function that applies it to
// a loaded, type-checked package.
type Check struct {
	// Name identifies the check in output, flags, and nolint comments.
	Name string
	// Doc is a one-line description shown by bslint -list.
	Doc string
	// Run reports every violation in pkg.
	Run func(pkg *Package) []Finding
}

// ModuleCheck is one interprocedural analyzer. Unlike Check it sees every
// loaded package at once plus the call graph built over them, so it can
// reason about reachability and cross-function contracts.
type ModuleCheck struct {
	// Name identifies the check in output, flags, and nolint comments.
	Name string
	// Doc is a one-line description shown by bslint -list.
	Doc string
	// Run reports every violation across the loaded packages.
	Run func(g *Graph, pkgs []*Package) []Finding
}

// registry holds the built-in per-package checks in registration order;
// moduleRegistry holds the interprocedural ones.
var (
	registry       []Check
	moduleRegistry []ModuleCheck
)

// Register adds a check to the suite. Built-in checks register from their
// init functions; tests may register extra ones.
func Register(c Check) {
	registry = append(registry, c)
}

// RegisterModule adds an interprocedural check to the suite.
func RegisterModule(c ModuleCheck) {
	moduleRegistry = append(moduleRegistry, c)
}

// Checks returns the registered per-package checks in registration order.
func Checks() []Check {
	out := make([]Check, len(registry))
	copy(out, registry)
	return out
}

// ModuleChecks returns the registered interprocedural checks in
// registration order.
func ModuleChecks() []ModuleCheck {
	out := make([]ModuleCheck, len(moduleRegistry))
	copy(out, moduleRegistry)
	return out
}

// CheckNames returns every registered check name — per-package and
// module-level — in registration order, for flag and baseline plumbing.
func CheckNames() []string {
	var names []string
	for _, c := range registry {
		names = append(names, c.Name)
	}
	for _, c := range moduleRegistry {
		names = append(names, c.Name)
	}
	return names
}

// Run applies the enabled checks — per-package analyzers first, then the
// interprocedural suite over a call graph of all packages — and returns
// the surviving findings sorted by position. enabled maps check name ->
// on/off; a name absent from the map defaults to on. nolint suppressions
// are applied before returning.
func Run(pkgs []*Package, enabled map[string]bool) []Finding {
	on := func(name string) bool {
		v, ok := enabled[name]
		return !ok || v
	}
	sup := suppressionSet{}
	for _, pkg := range pkgs {
		sup.merge(suppressions(pkg))
	}
	var all []Finding
	for _, pkg := range pkgs {
		for _, c := range registry {
			if !on(c.Name) {
				continue
			}
			for _, f := range c.Run(pkg) {
				f.Check = c.Name
				if !sup.suppressed(f) {
					all = append(all, f)
				}
			}
		}
	}
	anyModule := false
	for _, c := range moduleRegistry {
		if on(c.Name) {
			anyModule = true
		}
	}
	if anyModule {
		g := BuildGraph(pkgs)
		for _, c := range moduleRegistry {
			if !on(c.Name) {
				continue
			}
			for _, f := range c.Run(g, pkgs) {
				f.Check = c.Name
				if !sup.suppressed(f) {
					all = append(all, f)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return all[i].Check < all[j].Check
	})
	return all
}

// nolintRe matches `//nolint` and `//nolint:det,locksafe` comment forms.
// The \b keeps prose that merely mentions nolint (or identifiers like
// nolintRe) from registering as a suppression.
var nolintRe = regexp.MustCompile(`^//\s*nolint\b(?::\s*([\w,\- ]+))?`)

// suppressionSet records, per file and line, which checks are muted.
type suppressionSet map[string]map[int]map[string]bool

// suppressions collects every nolint comment in the package. A comment
// suppresses findings on its own line and on the line directly below, so
// both trailing and standalone-preceding placements work.
func suppressions(pkg *Package) suppressionSet {
	set := suppressionSet{}
	add := func(file string, line int, checks map[string]bool) {
		byLine := set[file]
		if byLine == nil {
			byLine = map[int]map[string]bool{}
			set[file] = byLine
		}
		for _, l := range []int{line, line + 1} {
			if byLine[l] == nil {
				byLine[l] = map[string]bool{}
			}
			for k := range checks {
				byLine[l][k] = true
			}
		}
	}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !nolintRe.MatchString(c.Text) {
					continue
				}
				// parseNolint splits off the '— reason' / '-- reason'
				// suffix, so a reasoned comment suppresses exactly the
				// checks it names.
				n := parseNolint(c)
				checks := map[string]bool{}
				if len(n.checks) == 0 {
					checks["*"] = true
				} else {
					for _, name := range n.checks {
						checks[name] = true
					}
				}
				pos := pkg.Fset.Position(c.Pos())
				add(pos.Filename, pos.Line, checks)
			}
		}
	}
	return set
}

func (s suppressionSet) suppressed(f Finding) bool {
	checks := s[f.Pos.Filename][f.Pos.Line]
	if f.Check == "nolintreason" {
		// The suppression audit is only explicitly suppressible: a bare
		// or blanket nolint comment must not absolve itself.
		return checks["nolintreason"]
	}
	return checks["*"] || checks[f.Check]
}

// merge folds other's suppressions into s; filenames are absolute and
// unique across packages, so a plain union is safe.
func (s suppressionSet) merge(other suppressionSet) {
	for file, byLine := range other {
		if s[file] == nil {
			s[file] = byLine
			continue
		}
		for line, checks := range byLine {
			if s[file][line] == nil {
				s[file][line] = checks
				continue
			}
			for k := range checks {
				s[file][line][k] = true
			}
		}
	}
}

// exprString renders a (small) expression for use in messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(fset, e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(fset, e.Fun) + "(...)"
	case *ast.ArrayType:
		return "[]" + exprString(fset, e.Elt)
	case *ast.StarExpr:
		return "*" + exprString(fset, e.X)
	case *ast.ParenExpr:
		return exprString(fset, e.X)
	default:
		return "expression"
	}
}
