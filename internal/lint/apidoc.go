package lint

import (
	"go/ast"
	"strings"
)

func init() {
	Register(Check{
		Name: "apidoc",
		Doc:  "exported identifiers in internal/ packages must carry doc comments",
		Run:  runAPIDoc,
	})
}

// runAPIDoc enforces doc comments on the exported surface of internal/
// packages — the API other subsystems build on. cmd/ and examples/ mains
// export nothing that matters, and the root package is documented by its
// user-facing files, so only internal/ is checked.
func runAPIDoc(pkg *Package) []Finding {
	if !strings.Contains(pkg.Path+"/", "/internal/") {
		return nil
	}
	var out []Finding
	flag := func(n ast.Node, kind, name string) {
		out = append(out, Finding{
			Pos:     pkg.Fset.Position(n.Pos()),
			Message: "exported " + kind + " " + name + " has no doc comment",
		})
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					flag(d, kind, d.Name.Name)
				}
			case *ast.GenDecl:
				out = append(out, genDeclFindings(pkg, d)...)
			}
		}
	}
	return out
}

// exportedRecv reports whether fd is a plain function or a method on an
// exported type; methods on unexported types are not API surface.
func exportedRecv(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// genDeclFindings checks type/const/var declarations. A doc comment on the
// grouped declaration covers every spec inside it, matching how godoc
// renders factored blocks.
func genDeclFindings(pkg *Package, d *ast.GenDecl) []Finding {
	var out []Finding
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
				out = append(out, Finding{
					Pos:     pkg.Fset.Position(s.Pos()),
					Message: "exported type " + s.Name.Name + " has no doc comment",
				})
			}
		case *ast.ValueSpec:
			if s.Doc != nil || d.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					out = append(out, Finding{
						Pos:     pkg.Fset.Position(name.Pos()),
						Message: "exported " + d.Tok.String() + " " + name.Name + " has no doc comment",
					})
					break
				}
			}
		}
	}
	return out
}
