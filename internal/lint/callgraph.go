package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Graph is the interprocedural call graph over a set of loaded packages.
// Nodes are the functions and methods declared in those packages; edges
// are the statically-resolvable call sites in their bodies (calls through
// function values and interface methods are not resolved). Calls made
// inside function literals are attributed to the enclosing declaration,
// which is the conservative choice for reachability: a helper that spawns
// a goroutine calling time.Now still taints its caller.
type Graph struct {
	// Nodes maps every declared function to its node, keyed by the
	// go/types object so methods and same-named functions in different
	// packages stay distinct.
	Nodes map[*types.Func]*FuncNode
}

// FuncNode is one declared function in the call graph.
type FuncNode struct {
	// Fn is the type-checker's object for the declaration.
	Fn *types.Func
	// Decl is the syntax, with body and doc comment.
	Decl *ast.FuncDecl
	// Pkg is the package the declaration lives in.
	Pkg *Package
	// Calls are the resolved static call sites in the body, in source
	// order.
	Calls []CallSite
}

// CallSite is one resolved call edge out of a function body.
type CallSite struct {
	// Callee is the called function; it may be declared outside the
	// analyzed packages (stdlib), in which case Graph.Nodes has no entry
	// for it.
	Callee *types.Func
	// Pos locates the call expression.
	Pos token.Pos
}

// BuildGraph constructs the call graph for pkgs. Construction is one AST
// pass per package, so module-wide analysis stays well under the bslint
// time budget even with every interprocedural check enabled.
func BuildGraph(pkgs []*Package) *Graph {
	g := &Graph{Nodes: map[*types.Func]*FuncNode{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := calleeFunc(pkg, call); callee != nil {
						node.Calls = append(node.Calls, CallSite{Callee: callee, Pos: call.Pos()})
					}
					return true
				})
				g.Nodes[fn] = node
			}
		}
	}
	return g
}

// calleeFunc resolves a call expression to the called *types.Func, or nil
// for calls through builtins, conversions, and function values.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// Callers returns the nodes that call fn, sorted by position for
// deterministic diagnostics.
func (g *Graph) Callers(fn *types.Func) []*FuncNode {
	var out []*FuncNode
	seen := map[*types.Func]bool{}
	for _, node := range g.Nodes {
		for _, cs := range node.Calls {
			if cs.Callee == fn && !seen[node.Fn] {
				seen[node.Fn] = true
				out = append(out, node)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// sortedNodes returns the graph's nodes in source order, the iteration
// order every module check uses so findings come out deterministically.
func (g *Graph) sortedNodes() []*FuncNode {
	nodes := make([]*FuncNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		pi, pj := nodes[i].Pkg.Fset.Position(nodes[i].Decl.Pos()), nodes[j].Pkg.Fset.Position(nodes[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	return nodes
}

// directivePrefix introduces bslint magic comments: `//bslint:hotpath`,
// `//bslint:detroot`.
const directivePrefix = "//bslint:"

// hasDirective reports whether the declaration's doc comment carries the
// named bslint directive.
func hasDirective(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if rest, ok := strings.CutPrefix(text, directivePrefix); ok {
			if field := strings.Fields(rest); len(field) > 0 && field[0] == name {
				return true
			}
		}
	}
	return false
}

// funcDisplayName renders a node's name for call-chain diagnostics:
// "pkg.Func" for functions, "pkg.(*T).Method" style collapsed to
// "pkg.T.Method" for methods.
func funcDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if tn := qualifiedTypeName(sig.Recv().Type()); tn != "" {
			// qualifiedTypeName yields "path/to/pkg.T"; keep "pkg.T.Method".
			if i := strings.LastIndex(tn, "/"); i >= 0 {
				tn = tn[i+1:]
			}
			return tn + "." + name
		}
	}
	if fn.Pkg() != nil {
		p := fn.Pkg().Path()
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p + "." + name
	}
	return name
}
