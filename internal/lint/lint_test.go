package lint

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads one testdata fixture package through the real module
// loader, exactly as cmd/bslint would.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	abs, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("Abs: %v", err)
	}
	rel, err := filepath.Rel(mod.Dir, abs)
	if err != nil {
		t.Fatalf("Rel: %v", err)
	}
	pkgs, err := mod.Packages("./" + filepath.ToSlash(rel))
	if err != nil {
		t.Fatalf("Packages(%s): %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for fixture %s, want 1", len(pkgs), name)
	}
	return pkgs[0]
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// wantsIn extracts line -> expected-message-substring from the fixture's
// `// want "..."` comments.
func wantsIn(t *testing.T, pkg *Package) map[int]string {
	t.Helper()
	wants := map[int]string{}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				if _, dup := wants[line]; dup {
					t.Fatalf("duplicate want on line %d", line)
				}
				wants[line] = m[1]
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", pkg.Path)
	}
	return wants
}

// only enables a single check by name, disabling every other registered
// check — per-package and module-level alike.
func only(name string) map[string]bool {
	enabled := map[string]bool{}
	for _, n := range CheckNames() {
		enabled[n] = n == name
	}
	return enabled
}

// TestAnalyzers runs each analyzer — per-package and interprocedural —
// over its fixture package and asserts the findings match the want
// comments exactly: no misses, no extras — which also exercises nolint
// suppression (suppressed lines carry no want).
func TestAnalyzers(t *testing.T) {
	for _, name := range CheckNames() {
		check := name
		t.Run(check, func(t *testing.T) {
			if check == "nolintreason" {
				t.Skip("its findings sit on comment positions; see TestNolintReason")
			}
			pkg := loadFixture(t, check)
			wants := wantsIn(t, pkg)
			findings := Run([]*Package{pkg}, only(check))

			seen := map[int]bool{}
			for _, f := range findings {
				if f.Check != check {
					t.Errorf("finding from unexpected check %s: %s", f.Check, f)
					continue
				}
				want, ok := wants[f.Pos.Line]
				if !ok {
					t.Errorf("unexpected finding: %s", f)
					continue
				}
				if !strings.Contains(f.Message, want) {
					t.Errorf("line %d: message %q does not contain %q", f.Pos.Line, f.Message, want)
				}
				seen[f.Pos.Line] = true
			}
			for line, want := range wants {
				if !seen[line] {
					t.Errorf("line %d: expected finding containing %q, got none", line, want)
				}
			}
		})
	}
}

// TestCheckDisable verifies the per-check enable map actually gates
// execution: a disabled check reports nothing even over its own fixture.
func TestCheckDisable(t *testing.T) {
	pkg := loadFixture(t, "determinism")
	enabled := map[string]bool{}
	for _, n := range CheckNames() {
		enabled[n] = false
	}
	if findings := Run([]*Package{pkg}, enabled); len(findings) != 0 {
		t.Fatalf("all checks disabled but got %d findings, first: %s", len(findings), findings[0])
	}
}

// TestNolintReason asserts the suppression audit's findings directly:
// its findings land on the nolint comments themselves, where a trailing
// `// want` annotation would change the comment being audited.
func TestNolintReason(t *testing.T) {
	pkg := loadFixture(t, "nolintreason")
	findings := Run([]*Package{pkg}, only("nolintreason"))
	want := []string{
		"blanket //nolint suppresses every check",
		"bare //nolint:errcheck has no reason",
		"non-canonical nolint comment; normalize to `//nolint:errcheck — legacy spelling`",
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(want), findings)
	}
	for i, w := range want {
		if !strings.Contains(findings[i].Message, w) {
			t.Errorf("finding %d: message %q does not contain %q", i, findings[i].Message, w)
		}
	}
	if findings[2].Fix == nil {
		t.Errorf("non-canonical finding carries no normalization fix")
	}
}

// TestFindingString pins the file:line:col output contract other tooling
// greps for.
func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:     token.Position{Filename: "x.go", Line: 7, Column: 3},
		Check:   "determinism",
		Message: "boom",
	}
	if got, want := f.String(), "x.go:7:3: [determinism] boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestRegistry asserts the shipped analyzers are registered under their
// documented names: seven per-package checks plus the interprocedural
// dettaint module check.
func TestRegistry(t *testing.T) {
	want := map[string]bool{
		"determinism": true, "locksafe": true, "errcheck": true, "apidoc": true,
		"concurrency": true, "hotalloc": true, "nolintreason": true,
	}
	for _, c := range Checks() {
		delete(want, c.Name)
		if c.Doc == "" {
			t.Errorf("check %s has no doc line", c.Name)
		}
	}
	for name := range want {
		t.Errorf("check %s not registered", name)
	}
	wantModule := map[string]bool{"dettaint": true}
	for _, c := range ModuleChecks() {
		delete(wantModule, c.Name)
		if c.Doc == "" {
			t.Errorf("module check %s has no doc line", c.Name)
		}
	}
	for name := range wantModule {
		t.Errorf("module check %s not registered", name)
	}
}

// TestModuleClean is the self-test CI leans on: the repository's own
// packages must produce zero findings, so a leak reintroduced anywhere
// fails this test even if nobody runs bslint by hand.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	pkgs, err := mod.Packages("./...")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing the module tree", len(pkgs))
	}
	// The interprocedural pass must not be vacuous: the module's own
	// Build* pipeline roots have to show up in the call graph, or
	// dettaint silently checks nothing.
	g := BuildGraph(pkgs)
	roots := 0
	for fn := range g.Nodes {
		if strings.HasPrefix(fn.Name(), "Build") && fn.Exported() {
			roots++
		}
	}
	if roots == 0 {
		t.Fatalf("no exported Build* roots in the call graph; dettaint has nothing to walk")
	}
	for _, f := range Run(pkgs, nil) {
		t.Errorf("module not lint-clean: %s", f)
	}
}
