package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineFinding(file string, line int, check, msg string) Finding {
	return Finding{
		Pos:     token.Position{Filename: file, Line: line, Column: 1},
		Check:   check,
		Message: msg,
	}
}

// TestFingerprint pins the fingerprint shape: check, module-relative
// slash path, and message — line numbers deliberately excluded so edits
// above a grandfathered finding don't invalidate the baseline.
func TestFingerprint(t *testing.T) {
	root := filepath.FromSlash("/repo")
	f := baselineFinding(filepath.Join(root, "internal", "x", "x.go"), 42, "determinism", "boom")
	if got, want := Fingerprint(f, root), "determinism\tinternal/x/x.go\tboom"; got != want {
		t.Errorf("Fingerprint = %q, want %q", got, want)
	}
	// A file outside the module root keeps its absolute path.
	out := baselineFinding(filepath.FromSlash("/elsewhere/y.go"), 1, "c", "m")
	if got := Fingerprint(out, root); !strings.Contains(got, "/elsewhere/y.go") {
		t.Errorf("out-of-root fingerprint %q lost the absolute path", got)
	}
	// Line changes do not change the fingerprint.
	g := f
	g.Pos.Line = 99
	if Fingerprint(f, root) != Fingerprint(g, root) {
		t.Errorf("fingerprint depends on line number")
	}
}

// TestBaselineRoundTrip writes findings to a baseline, reloads it, and
// asserts FilterBaseline splits exactly along the grandfathered set.
func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "lint.baseline")
	old := baselineFinding(filepath.Join(root, "a.go"), 3, "hotalloc", "old finding")
	if err := WriteBaseline(path, []Finding{old, old}, root); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got := strings.Count(string(data), "old finding"); got != 1 {
		t.Errorf("duplicate fingerprints written %d times, want 1:\n%s", got, data)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	fresh := baselineFinding(filepath.Join(root, "a.go"), 9, "hotalloc", "new finding")
	kept, baselined := FilterBaseline([]Finding{old, fresh}, b, root)
	if len(baselined) != 1 || baselined[0].Message != "old finding" {
		t.Errorf("baselined = %v, want the old finding", baselined)
	}
	if len(kept) != 1 || kept[0].Message != "new finding" {
		t.Errorf("kept = %v, want the new finding", kept)
	}
}

// TestLoadBaselineMissing asserts a repo without a baseline file is held
// to zero findings rather than erroring.
func TestLoadBaselineMissing(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatalf("LoadBaseline on missing file: %v", err)
	}
	if len(b) != 0 {
		t.Fatalf("missing baseline not empty: %v", b)
	}
}
