package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is the set of grandfathered finding fingerprints. New code is
// held to zero findings while pre-existing ones burn down incrementally:
// bslint skips findings whose fingerprint is in the baseline, and
// -write-baseline regenerates the file after each burn-down slice.
type Baseline map[string]bool

// Fingerprint identifies a finding stably across unrelated edits: check
// name, module-relative path, and message — but not line numbers, which
// shift every time the file above the finding changes.
func Fingerprint(f Finding, root string) string {
	file := f.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return f.Check + "\t" + file + "\t" + f.Message
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, so a repo without one is simply held to zero findings.
func LoadBaseline(path string) (Baseline, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close() //nolint:errcheck — read-only descriptor, close cannot lose data
	b := Baseline{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// FilterBaseline splits findings into the ones to report and the ones the
// baseline grandfathers.
func FilterBaseline(findings []Finding, b Baseline, root string) (kept, baselined []Finding) {
	for _, f := range findings {
		if b[Fingerprint(f, root)] {
			baselined = append(baselined, f)
		} else {
			kept = append(kept, f)
		}
	}
	return kept, baselined
}

// WriteBaseline writes the findings' fingerprints to path, sorted, with a
// header documenting the burn-down workflow.
func WriteBaseline(path string, findings []Finding, root string) error {
	lines := make([]string, 0, len(findings))
	seen := map[string]bool{}
	for _, f := range findings {
		fp := Fingerprint(f, root)
		if !seen[fp] {
			seen[fp] = true
			lines = append(lines, fp)
		}
	}
	sort.Strings(lines)
	var sb strings.Builder
	sb.WriteString("# bslint baseline: grandfathered findings, one fingerprint per line\n")
	sb.WriteString("# (check<TAB>file<TAB>message). Regenerate with `bslint -write-baseline`\n")
	sb.WriteString("# after burning a slice down; new code is held to zero findings.\n")
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		return fmt.Errorf("lint: writing baseline: %w", err)
	}
	return nil
}
