package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func init() {
	Register(Check{
		Name: "determinism",
		Doc:  "forbid wall-clock reads, global math/rand, and unsorted map-order output outside the sanctioned packages",
		Run:  runDeterminism,
	})
}

// determinismAllowed lists the import-path fragments where wall-clock and
// global-randomness calls are sanctioned: the simtime/rng bridges
// themselves, and the operational mains and examples that genuinely run in
// real time.
var determinismAllowed = []string{
	"/internal/simtime",
	"/internal/rng",
	"/cmd/",
	"/examples/",
}

// timeForbidden names the time package functions that read the wall clock.
var timeForbidden = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// timeWaits names the time package functions that block on (or schedule
// against) the wall clock. Simulated components advance simtime instead;
// a real-time wait in library code stalls the deterministic pipeline and
// couples test timing to the host scheduler.
var timeWaits = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// randGlobal names the math/rand package-level functions that draw from
// the unseeded process-global source. Constructors (New, NewSource,
// NewZipf) are excluded: explicitly seeded generators are deterministic.
var randGlobal = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "IntN": true, "Int32": true,
	"Int32N": true, "Int64": true, "Int64N": true, "N": true,
	"Uint32": true, "Uint64": true, "UintN": true, "Uint64N": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

func determinismExempt(path string) bool {
	for _, frag := range determinismAllowed {
		if strings.Contains(path+"/", frag) {
			return true
		}
	}
	return false
}

func runDeterminism(pkg *Package) []Finding {
	if determinismExempt(pkg.Path) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
					out = append(out, mapOrderFindings(pkg, fd)...)
				}
				return true
			}
			pkgPath, obj := qualifiedUse(pkg, sel)
			switch {
			case pkgPath == "time" && timeForbidden[obj]:
				out = append(out, Finding{
					Pos:     pkg.Fset.Position(sel.Pos()),
					Message: "wall-clock read time." + obj + " outside simtime; thread a simtime clock instead",
				})
			case pkgPath == "time" && timeWaits[obj]:
				out = append(out, Finding{
					Pos:     pkg.Fset.Position(sel.Pos()),
					Message: "wall-clock wait time." + obj + " outside simtime; advance simulated time instead",
				})
			case isRandPkg(pkgPath) && randGlobal[obj]:
				out = append(out, Finding{
					Pos:     pkg.Fset.Position(sel.Pos()),
					Message: "global math/rand." + obj + " is seeded per-process; use an internal/rng stream",
				})
			case isRandPkg(pkgPath) && obj == "New":
				// rand.New with an explicit source is fine; argless
				// rand.New (rand/v2 style helpers) is not.
				if call, ok := callOf(pkg, sel); ok && len(call.Args) == 0 {
					out = append(out, Finding{
						Pos:     pkg.Fset.Position(sel.Pos()),
						Message: "argless rand.New draws an unseeded source; use an internal/rng stream",
					})
				}
			}
			return true
		})
	}
	return out
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// qualifiedUse resolves sel to (importPath, name) when sel is a qualified
// reference to a package-level object, e.g. time.Now -> ("time", "Now").
func qualifiedUse(pkg *Package, sel *ast.SelectorExpr) (string, string) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// callOf reports whether sel is the callee of an enclosing call found in
// the type info, returning that call.
func callOf(pkg *Package, sel *ast.SelectorExpr) (*ast.CallExpr, bool) {
	// The parser gives no parent links; the type info records the call's
	// type keyed by the CallExpr, so search the selection's file span.
	for expr := range pkg.Info.Types {
		if call, ok := expr.(*ast.CallExpr); ok && call.Fun == sel {
			return call, true
		}
	}
	return nil, false
}

// mapOrderSite is one unsorted map-range-into-returned-slice occurrence.
type mapOrderSite struct {
	rng *ast.RangeStmt
	obj types.Object
}

// mapOrderFindings flags the map-order nondeterminism pattern: a range
// over a map whose body appends to a slice that the function later
// returns, with no sort call on that slice between the loop and the
// return. Go randomizes map iteration order, so such a function emits a
// different permutation every run.
func mapOrderFindings(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	for _, site := range mapOrderSites(pkg, fd) {
		out = append(out, Finding{
			Pos: pkg.Fset.Position(site.rng.Pos()),
			Message: "range over map appends to returned slice " + site.obj.Name() +
				" without a sort; map order makes output nondeterministic",
			Fix: mapOrderFix(pkg, fd, site),
		})
	}
	return out
}

// mapOrderSites locates every unsorted map-range emission in fd.
func mapOrderSites(pkg *Package, fd *ast.FuncDecl) []mapOrderSite {
	type appendLoop struct {
		rng *ast.RangeStmt
		obj types.Object
	}
	var loops []appendLoop

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pkg.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, obj := range appendTargets(pkg, rng.Body) {
			loops = append(loops, appendLoop{rng, obj})
		}
		return true
	})
	if len(loops) == 0 {
		return nil
	}

	returned := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := res.(*ast.Ident); ok {
				if obj := pkg.Info.Uses[id]; obj != nil {
					returned[obj] = true
				}
			}
		}
		return true
	})
	// A function with named results returns them on a bare `return` too.
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					returned[obj] = true
				}
			}
		}
	}

	var out []mapOrderSite
	for _, l := range loops {
		if !returned[l.obj] || sortedAfter(pkg, fd, l.obj, l.rng.End()) {
			continue
		}
		out = append(out, mapOrderSite{l.rng, l.obj})
	}
	return out
}

// appendTargets returns the objects of identifiers assigned from an append
// call inside body: `s = append(s, ...)`.
func appendTargets(pkg *Package, body *ast.BlockStmt) []types.Object {
	var objs []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				continue
			}
			if _, isBuiltin := pkg.Info.Uses[fn].(*types.Builtin); !isBuiltin {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pkg.Info.ObjectOf(id); obj != nil {
					objs = append(objs, obj)
				}
			}
		}
		return true
	})
	return objs
}

// sortedAfter reports whether a sort/slices ordering call mentioning obj
// appears in fd after pos.
func sortedAfter(pkg *Package, fd *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, _ := qualifiedUse(pkg, sel)
		if path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
