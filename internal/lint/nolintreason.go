package lint

import (
	"go/ast"
	"strings"
)

func init() {
	Register(Check{
		Name: "nolintreason",
		Doc:  "every //nolint suppression must name its check(s) and carry a '— reason' suffix so escapes stay auditable",
		Run:  runNolintReason,
	})
}

// nolintComment is one parsed //nolint comment.
type nolintComment struct {
	c      *ast.Comment
	checks []string // named checks, empty for a blanket //nolint
	reason string   // text after the — / -- separator
	// canonical reports whether the comment already reads exactly
	// "//nolint:a,b — reason".
	canonical bool
}

// parseNolint dissects a comment known to match nolintRe.
func parseNolint(c *ast.Comment) nolintComment {
	out := nolintComment{c: c}
	body := strings.TrimPrefix(c.Text, "//")
	trimmed := strings.TrimSpace(body)
	rest := strings.TrimPrefix(trimmed, "nolint")

	// Split off the reason: an em-dash or double-hyphen separator. A
	// single hyphen is ambiguous with check names like "map-order", so it
	// does not introduce a reason.
	var checksPart string
	for _, sep := range []string{"—", "--"} {
		if i := strings.Index(rest, sep); i >= 0 {
			checksPart, out.reason = rest[:i], strings.TrimSpace(rest[i+len(sep):])
			break
		}
	}
	if out.reason == "" {
		checksPart = rest
	}
	checksPart = strings.TrimPrefix(strings.TrimSpace(checksPart), ":")
	for _, name := range strings.Split(checksPart, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out.checks = append(out.checks, name)
		}
	}
	out.canonical = c.Text == out.canonicalText()
	return out
}

// canonicalText renders the comment's normalized spelling.
func (n nolintComment) canonicalText() string {
	s := "//nolint"
	if len(n.checks) > 0 {
		s += ":" + strings.Join(n.checks, ",")
	}
	if n.reason != "" {
		s += " — " + n.reason
	}
	return s
}

// runNolintReason audits every nolint comment in the package: blanket
// suppressions and missing reasons are findings; a well-reasoned comment
// in non-canonical spelling gets a normalization autofix.
func runNolintReason(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if nolintRe.FindStringSubmatch(c.Text) == nil {
					continue
				}
				n := parseNolint(c)
				pos := pkg.Fset.Position(c.Pos())
				switch {
				case len(n.checks) == 0:
					out = append(out, Finding{
						Pos:     pos,
						Message: "blanket //nolint suppresses every check; name the check(s) being silenced",
					})
				case n.reason == "":
					out = append(out, Finding{
						Pos:     pos,
						Message: "bare //nolint:" + strings.Join(n.checks, ",") + " has no reason; append '— why this escape is sound'",
					})
				case !n.canonical:
					out = append(out, Finding{
						Pos:     pos,
						Message: "non-canonical nolint comment; normalize to `" + n.canonicalText() + "`",
						Fix: &Fix{
							Message: "normalize nolint comment",
							Edits:   []TextEdit{{Pos: c.Pos(), End: c.End(), NewText: n.canonicalText()}},
						},
					})
				}
			}
		}
	}
	return out
}
