package lint

import (
	"strings"
	"testing"
)

// TestPackagesLoadErrorsAreCollected asserts the loader reports every
// broken package — parse errors and type errors both — instead of
// stopping at the first, and still returns the packages that did load.
// cmd/bslint treats any load error as fatal; this is the contract that
// makes its report complete.
func TestPackagesLoadErrorsAreCollected(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"good/good.go":     "package good\n\nfunc OK() int { return 1 }\n",
		"broken/broken.go": "package broken\n\nfunc Bad() int { return \"not an int\" }\n",
		"mangled/bad.go":   "package mangled\n\nfunc {\n",
	})
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	pkgs, err := mod.Packages("./...")
	if err == nil {
		t.Fatalf("Packages over a broken module returned no error")
	}
	for _, frag := range []string{"broken", "bad.go"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("load error %q does not mention %q", err, frag)
		}
	}
	found := false
	for _, p := range pkgs {
		if strings.HasSuffix(p.Path, "/good") {
			found = true
		}
	}
	if !found {
		t.Errorf("loadable package missing from results: %v", pkgs)
	}
}

// TestPackagesNoMatch asserts a pattern matching nothing is an error,
// not an empty success.
func TestPackagesNoMatch(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"good/good.go": "package good\n\nfunc OK() int { return 1 }\n",
	})
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if _, err := mod.Packages("./absent"); err == nil {
		t.Fatalf("Packages over a missing directory returned no error")
	}
}
