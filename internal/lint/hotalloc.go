package lint

import (
	"go/ast"
	"go/types"
)

func init() {
	Register(Check{
		Name: "hotalloc",
		Doc:  "allocation discipline in //bslint:hotpath functions: no heap-escaping composite literals, no append-in-loop without preallocation, no fmt or string-copy conversions",
		Run:  runHotalloc,
	})
}

// runHotalloc enforces allocation discipline inside functions annotated
// //bslint:hotpath — the dedup/filter/extract and wire-encode paths whose
// per-record allocations dominate the BENCH trajectory. The rules are
// deliberately narrow: they flag the three patterns profiling showed
// dominating (escaping literals, growing appends, fmt/string churn), not
// allocation in general.
func runHotalloc(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd, "hotpath") {
				continue
			}
			out = append(out, escapingLiteralFindings(pkg, fd)...)
			out = append(out, appendGrowthFindings(pkg, fd)...)
			out = append(out, fmtAndStringFindings(pkg, fd)...)
		}
	}
	return out
}

// escapingLiteralFindings flags &T{...} composite literals: taking the
// address forces a heap allocation per call on the hot path. Pooled or
// caller-provided objects keep the allocation out of the loop.
func escapingLiteralFindings(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op.String() != "&" {
			return true
		}
		cl, isLit := ast.Unparen(ue.X).(*ast.CompositeLit)
		if !isLit {
			return true
		}
		lit := "composite literal"
		if cl.Type != nil {
			lit = "&" + exprString(pkg.Fset, cl.Type) + "{...}"
		}
		out = append(out, Finding{
			Pos:     pkg.Fset.Position(ue.Pos()),
			Message: "heap-escaping " + lit + " in hotpath; reuse a pooled or caller-provided object",
		})
		return true
	})
	return out
}

// appendGrowthFindings flags appends inside loops to slices declared in
// this function without capacity: each growth step reallocates and
// copies. When the loop ranges over a measurable operand the finding
// carries an autofix rewriting the declaration to make(T, 0, len(x)).
func appendGrowthFindings(pkg *Package, fd *ast.FuncDecl) []Finding {
	// Slice declarations with no capacity hint: `var s []T`,
	// `s := []T{}`, and `s := make([]T, 0)`.
	type sliceDecl struct {
		node     ast.Node // statement or spec to rewrite
		typeExpr ast.Expr // the []T syntax
	}
	decls := map[types.Object]sliceDecl{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 || vs.Type == nil {
					continue
				}
				at, ok := vs.Type.(*ast.ArrayType)
				if !ok || at.Len != nil {
					continue
				}
				for _, name := range vs.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						decls[obj] = sliceDecl{n, vs.Type}
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := pkg.Info.Defs[id]
			if obj == nil {
				return true
			}
			switch rhs := n.Rhs[0].(type) {
			case *ast.CompositeLit:
				if at, ok := rhs.Type.(*ast.ArrayType); ok && at.Len == nil && len(rhs.Elts) == 0 {
					decls[obj] = sliceDecl{n, rhs.Type}
				}
			case *ast.CallExpr:
				fn, ok := rhs.Fun.(*ast.Ident)
				if !ok || fn.Name != "make" || len(rhs.Args) != 2 {
					return true
				}
				if at, ok := rhs.Args[0].(*ast.ArrayType); ok && at.Len == nil {
					decls[obj] = sliceDecl{n, rhs.Args[0]}
				}
			}
		}
		return true
	})
	if len(decls) == 0 {
		return nil
	}

	var out []Finding
	flagged := map[types.Object]bool{}
	// depth counts enclosing loops; rng is the innermost loop when it is
	// a range statement (the case the autofix can measure).
	var inLoop func(n ast.Node, depth int, rng *ast.RangeStmt)
	inLoop = func(n ast.Node, depth int, rng *ast.RangeStmt) {
		switch n := n.(type) {
		case *ast.RangeStmt:
			walkChildren(n.Body, func(c ast.Node) { inLoop(c, depth+1, n) })
			return
		case *ast.ForStmt:
			walkChildren(n.Body, func(c ast.Node) { inLoop(c, depth+1, nil) })
			return
		case *ast.AssignStmt:
			if depth == 0 {
				break // append outside any loop grows at most once; fine
			}
			for _, obj := range appendTargets(pkg, &ast.BlockStmt{List: []ast.Stmt{n}}) {
				decl, tracked := decls[obj]
				if !tracked || flagged[obj] {
					continue
				}
				flagged[obj] = true
				out = append(out, Finding{
					Pos:     pkg.Fset.Position(n.Pos()),
					Message: "append to " + obj.Name() + " in a loop without preallocation; declare it with make(" + nodeText(pkg.Fset, decl.typeExpr) + ", 0, cap) in hotpath",
					Fix:     preallocFix(pkg, obj, decl.node, decl.typeExpr, rng),
				})
			}
		}
		walkChildren(n, func(c ast.Node) { inLoop(c, depth, rng) })
	}
	for _, stmt := range fd.Body.List {
		inLoop(stmt, 0, nil)
	}
	return out
}

// preallocFix rewrites the slice declaration to preallocate len(x)
// capacity when the enclosing loop ranges over a slice or map x that is a
// plain identifier or selector; anything fancier gets no autofix.
func preallocFix(pkg *Package, obj types.Object, declNode ast.Node, typeExpr ast.Expr, loop *ast.RangeStmt) *Fix {
	if loop == nil {
		return nil
	}
	switch ast.Unparen(loop.X).(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return nil
	}
	switch pkg.Info.TypeOf(loop.X).Underlying().(type) {
	case *types.Slice, *types.Map, *types.Array:
	default:
		return nil
	}
	newText := obj.Name() + " := make(" + nodeText(pkg.Fset, typeExpr) + ", 0, len(" + nodeText(pkg.Fset, loop.X) + "))"
	return &Fix{
		Message: "preallocate " + obj.Name() + " with len(" + nodeText(pkg.Fset, loop.X) + ") capacity",
		Edits:   []TextEdit{{Pos: declNode.Pos(), End: declNode.End(), NewText: newText}},
	}
}

// fmtAndStringFindings flags fmt package calls and string<->[]byte/[]rune
// conversions: both allocate and copy per record. Hot paths use strconv,
// preallocated scratch buffers, or interned names instead.
func fmtAndStringFindings(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			// fmt.Errorf is exempt: error construction only runs on the
			// cold failure path, and wrapping with %w has no cheap
			// substitute.
			if path, name := qualifiedUse(pkg, sel); path == "fmt" && name != "Errorf" {
				out = append(out, Finding{
					Pos:     pkg.Fset.Position(call.Pos()),
					Message: "fmt." + name + " allocates on the hotpath; use strconv or a preallocated buffer",
				})
				return true
			}
		}
		// Type conversions: the callee is a type, not a function.
		tv, ok := pkg.Info.Types[call.Fun]
		if !ok || !tv.IsType() || len(call.Args) != 1 {
			return true
		}
		dst := tv.Type.Underlying()
		src := pkg.Info.TypeOf(call.Args[0])
		if src == nil {
			return true
		}
		if conversionCopies(dst, src.Underlying()) {
			out = append(out, Finding{
				Pos:     pkg.Fset.Position(call.Pos()),
				Message: "conversion " + exprString(pkg.Fset, call.Fun) + "(...) copies its operand on the hotpath; reuse a scratch buffer or intern the value",
			})
		}
		return true
	})
	return out
}

// conversionCopies reports whether converting src to dst allocates and
// copies: string <-> []byte and string <-> []rune in either direction.
func conversionCopies(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteRuneSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteRuneSlice(src)) || (isByteRuneSlice(dst) && isStr(src))
}
