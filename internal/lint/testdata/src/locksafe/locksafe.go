// Package locksafe is a bslint fixture for the lock-discipline check.
package locksafe

import "sync"

type counter struct {
	mu sync.Mutex

	// guarded by mu
	n int

	hits int // guarded by mu

	free int // unannotated: never flagged
}

func (c *counter) incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++ // locked: allowed
}

func (c *counter) unsafeRead() int {
	return c.n // want "field n is guarded by mu but method unsafeRead never locks it"
}

func (c *counter) unsafeTrailing() int {
	return c.hits // want "field hits is guarded by mu but method unsafeTrailing never locks it"
}

func (c *counter) freeRead() int {
	return c.free // unguarded field: allowed
}

func (c *counter) callerHolds() int {
	return c.n //nolint:locksafe — documented: caller holds mu
}

type rwBox struct {
	mu sync.RWMutex

	// guarded by mu
	val string
}

func (b *rwBox) get() string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.val // RLock counts: allowed
}

func (b *rwBox) leak() string {
	return b.val // want "field val is guarded by mu but method leak never locks it"
}
