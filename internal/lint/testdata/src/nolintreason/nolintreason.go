// Package nolintreason is a bslint fixture for the suppression audit.
// TestNolintReason asserts the expected findings directly (the findings
// sit on comment positions, so the `// want` convention cannot annotate
// them): blanket and bare nolint comments are findings, a non-canonical
// spelling gets a normalization autofix, and reasoned canonical comments
// — or ones naming nolintreason itself — pass.
package nolintreason

import "errors"

var errSentinel = errors.New("fixture")

func blanket() error {
	return errSentinel //nolint
}

func bare() error {
	return errSentinel //nolint:errcheck
}

func nonCanonical() error {
	return errSentinel // nolint:errcheck--legacy spelling
}

func reasoned() error {
	return errSentinel //nolint:errcheck — fixture: the sentinel is deliberately unchecked
}

func audited() error {
	return errSentinel //nolint:errcheck,nolintreason -- fixture: naming the audit is the one way to silence it
}
