// Package determinism is a bslint fixture: every construct the
// determinism check must flag, plus the patterns it must leave alone.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want "wall-clock read time.Now"
	return t.Unix()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read time.Since"
}

func sleepy() {
	time.Sleep(time.Second) // want "wall-clock wait time.Sleep"
}

func timerWaits() {
	<-time.After(time.Second) // want "wall-clock wait time.After"
	<-time.Tick(time.Second)  // want "wall-clock wait time.Tick"
	_ = time.NewTimer(1)      // want "wall-clock wait time.NewTimer"
	_ = time.NewTicker(1)     // want "wall-clock wait time.NewTicker"
}

func durationMathOK(d time.Duration) time.Duration {
	return d * 2 // time.Duration values themselves are fine
}

func globalRand() int {
	return rand.Intn(10) // want "global math/rand.Intn"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle"
}

func seededRandOK() int {
	r := rand.New(rand.NewSource(42)) // explicitly seeded: allowed
	return r.Intn(10)
}

func suppressed() int64 {
	return time.Now().Unix() //nolint:determinism
}

func mapOrderLeak(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map order makes output nondeterministic"
		keys = append(keys, k)
	}
	return keys
}

func mapOrderSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys) // sorted before return: allowed
	return keys
}

func mapOrderNotReturned(m map[string]int) int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return len(keys) // only the length escapes: order is irrelevant
}

func mapOrderNamedResult(m map[string]int) (keys []string) {
	for k := range m { // want "map order makes output nondeterministic"
		keys = append(keys, k)
	}
	return
}
