// Package hotalloc is a bslint fixture: allocation patterns the hotalloc
// check must flag inside //bslint:hotpath functions, plus the
// preallocated, cold-path, and unannotated shapes it must leave alone.
package hotalloc

import "fmt"

type point struct{ x, y int }

//bslint:hotpath
func escaping() *point {
	return &point{1, 2} // want "heap-escaping &point{...} in hotpath"
}

//bslint:hotpath
func growing(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2) // want "append to out in a loop without preallocation"
	}
	return out
}

//bslint:hotpath
func preallocated(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

//bslint:hotpath
func formatting(n int) string {
	return fmt.Sprintf("n=%d", n) // want "fmt.Sprintf allocates on the hotpath"
}

//bslint:hotpath
func coldError(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n) // Errorf is cold-path error construction: allowed
	}
	return nil
}

//bslint:hotpath
func roundTrip(b []byte) []byte {
	s := string(b)   // want "copies its operand on the hotpath"
	return []byte(s) // want "copies its operand on the hotpath"
}

//bslint:hotpath
func waved() *point {
	return &point{5, 6} //nolint:hotalloc — fixture: the caller pools these
}

// unannotated does everything the hotpath rules forbid, legally: only
// //bslint:hotpath functions opt in to the allocation discipline.
func unannotated(xs []int) string {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	p := &point{3, 4}
	return fmt.Sprint(p, out)
}
