// Package errcheck is a bslint fixture for the discarded-error check.
package errcheck

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"strings"
)

func discardedClose(f *os.File) {
	f.Close() // want "error from f.Close is discarded"
}

func deferredCloseOK(f *os.File) {
	defer f.Close() // defer is a visible, deliberate choice: allowed
}

func blankCloseOK(f *os.File) {
	_ = f.Close() // explicit discard: allowed
}

func handledCloseOK(f *os.File) error {
	return f.Close()
}

func discardedFlush(w *bufio.Writer) {
	w.Flush() // want "error from w.Flush is discarded"
}

func discardedWrite(f *os.File, p []byte) {
	f.Write(p) // want "error from f.Write is discarded"
}

func bufferWriteOK(b *bytes.Buffer, sb *strings.Builder, p []byte) {
	b.Write(p)            // bytes.Buffer never fails: allowed
	sb.WriteString("cap") // strings.Builder never fails: allowed
}

func discardedEncode(w *os.File, v any) {
	json.NewEncoder(w).Encode(v) // want "error from json.NewEncoder(...).Encode is discarded"
}

func suppressedClose(f *os.File) {
	f.Close() //nolint:errcheck
}
