// Package dettaint is a bslint fixture for the interprocedural
// determinism-taint check: nondeterminism sinks transitively reachable
// from Build* pipeline roots (or //bslint:detroot functions) are flagged
// with their call chain; the sanctioned simtime/rng bridges cut the walk.
package dettaint

import (
	"time"

	"dnsbackscatter/internal/simtime"
)

// BuildDataset is a pipeline root by naming convention; the clock read
// two helpers down is its problem.
func BuildDataset() int64 {
	return helper()
}

func helper() int64 {
	return deep()
}

func deep() int64 {
	return time.Now().Unix() // want "wall-clock read time.Now is reachable from pipeline root dettaint.BuildDataset"
}

// BuildClean reaches the clock only through the sanctioned simtime
// bridge, which is a taint cut point: no finding.
func BuildClean() simtime.Time {
	return simtime.Wall()
}

// runAll opts in as a root by directive despite its name.
//
//bslint:detroot
func runAll() {
	sleepy()
}

func sleepy() {
	time.Sleep(time.Second) // want "wall-clock wait time.Sleep is reachable from pipeline root dettaint.runAll"
}

// BuildKeys leaks map iteration order into its output via a helper.
func BuildKeys(m map[string]int) []string {
	return mapKeys(m)
}

func mapKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "unsorted map-range emission into keys is reachable from pipeline root dettaint.BuildKeys"
		keys = append(keys, k)
	}
	return keys
}

// unrooted hits the clock but no root reaches it; the per-function
// determinism check owns that case, not the taint walk.
func unrooted() int64 {
	return time.Now().Unix()
}

// BuildWaved shows module-check findings honor line suppressions.
func BuildWaved() int64 {
	return time.Now().Unix() //nolint:dettaint — fixture: demonstrates suppression of a module check
}
