// Package apidoc is a bslint fixture for the doc-comment check.
package apidoc

// Documented has a doc comment, so it is allowed.
type Documented struct{}

type Naked struct{} // want "exported type Naked has no doc comment"

// DocumentedFunc is allowed.
func DocumentedFunc() {}

func NakedFunc() {} // want "exported function NakedFunc has no doc comment"

// NakedMethod's receiver type is exported and the method lacks docs.
type Holder struct{}

func (Holder) NakedMethod() {} // want "exported method NakedMethod has no doc comment"

type hidden struct{}

func (hidden) Exported() {} // method on unexported type: allowed

// MaxThings is allowed.
const MaxThings = 4

const NakedConst = 5 // want "exported const NakedConst has no doc comment"

// Grouped constants share the group's doc comment.
const (
	GroupedA = 1
	GroupedB = 2
)

var NakedVar int // want "exported var NakedVar has no doc comment"

func unexported() {} // unexported: allowed

//nolint:apidoc
func SuppressedFunc() {}
