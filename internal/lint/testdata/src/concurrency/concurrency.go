// Package concurrency is a bslint fixture: every goroutine-hygiene
// hazard the concurrency check must flag, plus the shapes it must leave
// alone.
package concurrency

import "sync"

func work() {}

func spawnInLoop(jobs []int) {
	for range jobs {
		go work() // want "unbounded goroutine spawn"
	}
}

func spawnInRange(jobs []int) {
	for _, j := range jobs {
		_ = j
		go work() // want "unbounded goroutine spawn"
	}
}

func spawnOnce() {
	go work() // a single spawn is fine
}

func spawnFromClosureInLoop(jobs []int) {
	for range jobs {
		fn := func() {
			go work() // closure resets loop context: one spawn per call
		}
		fn()
	}
}

func wavedSpawn(jobs []int) {
	for range jobs {
		go work() //nolint:concurrency — fixture: demonstrates suppression of a spawn finding
	}
}

func addInsideGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "races with Wait"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func addBeforeGo() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

type store struct {
	mu sync.Mutex
	m  map[string]int
}

func (s *store) bumpAll(keys []string) {
	for _, k := range keys {
		s.mu.Lock()
		defer s.mu.Unlock() // want "runs at function exit, not iteration end"
		s.m[k]++
	}
}

func (s *store) bumpOnce(k string) {
	s.mu.Lock()
	defer s.mu.Unlock() // defer at function scope is the intended shape
	s.m[k]++
}

func lockByValue(mu sync.Mutex) { // want "parameter copies sync.Mutex by value"
	mu.Lock()
	defer mu.Unlock()
}

type counter struct {
	mu sync.Mutex
	n  int
}

func (c counter) get() int { // want "receiver copies sync.Mutex by value"
	return c.n
}

func (c *counter) inc() { // pointer receiver: no copy
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func deadSend() {
	ch := make(chan int, 1)
	ch <- 1 // want "nothing can drain it"
}

func sendThenReceive() int {
	ch := make(chan int, 1)
	ch <- 1
	return <-ch
}

func handedOff() chan int {
	ch := make(chan int, 1)
	ch <- 1
	return ch // escapes: the caller drains it
}

func selectDrained(done chan struct{}) {
	ch := make(chan int, 1)
	ch <- 1
	select {
	case v := <-ch:
		_ = v
	case <-done:
	}
}
