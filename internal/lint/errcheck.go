package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

func init() {
	Register(Check{
		Name: "errcheck",
		Doc:  "flag discarded errors from Close/Flush/Write and encoding/* encode calls (assign to _ to discard deliberately)",
		Run:  runErrcheck,
	})
}

// errcheckMethods are the method names whose returned error must not be
// dropped on the floor: silently losing a Close/Flush/Write error is how
// truncated datasets and reports happen.
var errcheckMethods = map[string]bool{
	"Close":       true,
	"Flush":       true,
	"Write":       true,
	"WriteString": true,
	"Encode":      true,
}

// neverFails lists receiver types whose Write-family errors are
// documented to always be nil, so discarding them is noise, not risk.
var neverFails = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
	"hash.Hash":       true,
}

func runErrcheck(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			// Only bare expression statements discard results; `_ = f.Close()`
			// and `defer f.Close()` are visible, deliberate choices.
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, recv, returnsErr := calleeInfo(pkg, call)
			if !returnsErr {
				return true
			}
			flagged := errcheckMethods[name] && !neverFails[recv]
			if !flagged {
				// Any error-returning call into an encoding/* package
				// (json.NewEncoder(...).Encode, gob, csv, ...) counts.
				flagged = strings.HasPrefix(recv, "encoding/")
			}
			if flagged {
				out = append(out, Finding{
					Pos: pkg.Fset.Position(call.Pos()),
					Message: "error from " + exprString(pkg.Fset, call.Fun) +
						" is discarded; handle it or assign to _",
				})
			}
			return true
		})
	}
	return out
}

// calleeInfo resolves a call to (method/function name, receiver or package
// qualifier, does it return an error). The qualifier is the receiver's
// fully-qualified type for methods ("bytes.Buffer") and the import path
// for package-level functions ("encoding/json").
func calleeInfo(pkg *Package, call *ast.CallExpr) (name, qualifier string, returnsErr bool) {
	var fnObj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fnObj = pkg.Info.Uses[fun.Sel]
	case *ast.Ident:
		fnObj = pkg.Info.Uses[fun]
	default:
		return "", "", false
	}
	fn, ok := fnObj.(*types.Func)
	if !ok {
		return "", "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", "", false
	}
	if recv := sig.Recv(); recv != nil {
		qualifier = qualifiedTypeName(recv.Type())
	} else if fn.Pkg() != nil {
		qualifier = fn.Pkg().Path()
	}
	return fn.Name(), qualifier, lastResultIsError(sig)
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// qualifiedTypeName renders a receiver type as "pkgpath.Name", stripping
// pointers, or "" for unnamed receivers.
func qualifiedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
