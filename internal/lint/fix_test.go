package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTempModule materializes a throwaway module on disk — fixes rewrite
// real files, so fixture packages under testdata (which must stay stable
// for the analyzer tests) cannot be the target.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fixme\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("MkdirAll: %v", err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatalf("WriteFile %s: %v", name, err)
		}
	}
	return dir
}

// lintTemp loads the temp module fresh (no memoized state) and runs the
// named checks.
func lintTemp(t *testing.T, dir string, enabled map[string]bool) (*Module, []Finding) {
	t.Helper()
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	pkgs, err := mod.Packages("./...")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	return mod, Run(pkgs, enabled)
}

// TestApplyFixes drives the full autofix loop over the three mechanical
// fix classes — map-range sort insertion, hotpath preallocation, and
// nolint normalization — and asserts a re-lint of the rewritten sources
// comes back clean.
func TestApplyFixes(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"maporder.go": `package fixme

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
		"prealloc.go": `package fixme

//bslint:hotpath
func double(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}
`,
		"normalize.go": `package fixme

import "errors"

func boom() {
	_ = errors.New("x") // nolint:errcheck--kept for the fixture
}
`,
	})
	enabled := only("determinism")
	enabled["hotalloc"] = true
	enabled["nolintreason"] = true

	mod, findings := lintTemp(t, dir, enabled)
	if len(findings) != 3 {
		t.Fatalf("got %d findings before fixing, want 3:\n%v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Fix == nil {
			t.Fatalf("finding has no fix: %s", f)
		}
	}
	files, err := ApplyFixes(mod.Fset(), findings)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(files) != 3 {
		t.Fatalf("rewrote %d files, want 3: %v", len(files), files)
	}

	fixed, err := os.ReadFile(filepath.Join(dir, "maporder.go"))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	for _, want := range []string{`"sort"`, "sort.Strings(out)"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed maporder.go lacks %q:\n%s", want, fixed)
		}
	}
	fixed, err = os.ReadFile(filepath.Join(dir, "prealloc.go"))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !strings.Contains(string(fixed), "out := make([]int, 0, len(xs))") {
		t.Errorf("fixed prealloc.go lacks the make rewrite:\n%s", fixed)
	}
	fixed, err = os.ReadFile(filepath.Join(dir, "normalize.go"))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !strings.Contains(string(fixed), "//nolint:errcheck — kept for the fixture") {
		t.Errorf("fixed normalize.go lacks the canonical comment:\n%s", fixed)
	}

	// The rewritten module must re-lint clean: fixes resolve their own
	// findings instead of shuffling them around.
	if _, after := lintTemp(t, dir, enabled); len(after) != 0 {
		t.Fatalf("findings survive their own fixes:\n%v", after)
	}
}

// TestApplyFixesDedup asserts two findings prescribing the identical edit
// produce it once instead of corrupting the file.
func TestApplyFixesDedup(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"dup.go": "package fixme\n\nvar x = 1\n",
	})
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	pkgs, err := mod.Packages("./...")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	file := pkgs[0].Files[0]
	edit := TextEdit{Pos: file.End(), End: file.End(), NewText: "\nvar y = 2\n"}
	f := Finding{
		Pos: pkgs[0].Fset.Position(file.End()),
		Fix: &Fix{Message: "append y", Edits: []TextEdit{edit}},
	}
	if _, err := ApplyFixes(mod.Fset(), []Finding{f, f}); err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	out, err := os.ReadFile(filepath.Join(dir, "dup.go"))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got := strings.Count(string(out), "var y = 2"); got != 1 {
		t.Fatalf("duplicate edit applied %d times, want 1:\n%s", got, out)
	}
}
