package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

func init() {
	Register(Check{
		Name: "locksafe",
		Doc:  "methods touching `// guarded by <mu>` fields must lock that mutex or be reachable only from callers that do (interprocedural; suppress with //nolint:locksafe — reason)",
		Run:  runLocksafe,
	})
}

// guardedRe extracts the mutex name from a field comment like
// "// guarded by mu".
var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// lockedStruct records one struct's lock discipline: which mutex fields it
// has and which sibling fields each guards.
type lockedStruct struct {
	name    string          // type name
	mutexes map[string]bool // mutex-typed field names
	guarded map[string]string
}

// lockFnInfo is the per-function summary the interprocedural pass works
// from: what the function locks, what it instantiates, and whom it calls.
type lockFnInfo struct {
	fd *ast.FuncDecl
	fn *types.Func
	// ls/recvObj are set when the function is a method on a guarded
	// struct.
	ls      *lockedStruct
	recvObj types.Object
	// locks maps struct name -> mutex names the body acquires on any
	// value of that struct type (whole-body heuristic, deliberately not
	// path-sensitive).
	locks map[string]map[string]bool
	// creates marks struct names the body instantiates with a composite
	// literal: a freshly-built value is not yet shared, so its fields may
	// be touched lock-free.
	creates map[string]bool
	// callees are the statically-resolved functions the body calls.
	callees []*types.Func
}

// runLocksafe enforces the `// guarded by <mu>` contract interprocedurally:
// a method may touch a guarded field if it locks the mutex itself, or if
// it is unexported and every caller chain within the package provably
// holds the lock (or owns a freshly-constructed instance). Exported
// methods must lock in-body — callers outside the package are invisible.
func runLocksafe(pkg *Package) []Finding {
	structs := guardedStructs(pkg)
	if len(structs) == 0 {
		return nil
	}

	byFunc := map[*types.Func]*lockFnInfo{}
	var infos []*lockFnInfo
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := summarizeFn(pkg, fd, fn, structs)
			byFunc[fn] = info
			infos = append(infos, info)
		}
	}
	callersOf := map[*types.Func][]*lockFnInfo{}
	for _, info := range infos {
		for _, callee := range info.callees {
			callersOf[callee] = append(callersOf[callee], info)
		}
	}

	checker := &lockHeldChecker{byFunc: byFunc, callersOf: callersOf, memo: map[heldKey]bool{}}

	var out []Finding
	for _, info := range infos {
		if info.ls == nil {
			continue
		}
		for _, a := range guardedAccesses(pkg, info) {
			if info.locks[info.ls.name][a.mu] {
				continue
			}
			if !info.fn.Exported() && checker.held(info.fn, info.ls.name, a.mu, map[*types.Func]bool{}) {
				continue // every caller chain holds the lock
			}
			why := "no caller is known to hold it"
			if info.fn.Exported() {
				why = "exported methods must lock in-body"
			} else if len(callersOf[info.fn]) > 0 {
				why = "not every caller chain holds it"
			}
			out = append(out, Finding{
				Pos: pkg.Fset.Position(a.sel.Pos()),
				Message: "field " + a.sel.Sel.Name + " is guarded by " + a.mu +
					" but method " + info.fd.Name.Name + " never locks it and " + why,
			})
		}
	}
	return out
}

// heldKey memoizes lock-held queries per (function, struct, mutex).
type heldKey struct {
	fn *types.Func
	st string
	mu string
}

// lockHeldChecker answers "is mu on struct st always held when fn is
// entered", walking caller chains with optimistic cycle handling (a
// recursive chain is judged by its non-recursive entries).
type lockHeldChecker struct {
	byFunc    map[*types.Func]*lockFnInfo
	callersOf map[*types.Func][]*lockFnInfo
	memo      map[heldKey]bool
}

func (c *lockHeldChecker) held(fn *types.Func, st, mu string, visiting map[*types.Func]bool) bool {
	key := heldKey{fn, st, mu}
	if v, ok := c.memo[key]; ok {
		return v
	}
	if visiting[fn] {
		return true // cycle: defer to the other entry points
	}
	if fn.Exported() {
		return false // callers outside the package are invisible
	}
	callers := c.callersOf[fn]
	if len(callers) == 0 {
		return false // nothing vouches for the contract
	}
	visiting[fn] = true
	ok := true
	for _, caller := range callers {
		if caller.locks[st][mu] || caller.creates[st] {
			continue
		}
		if !c.held(caller.fn, st, mu, visiting) {
			ok = false
			break
		}
	}
	delete(visiting, fn)
	c.memo[key] = ok
	return ok
}

// summarizeFn builds one function's lock summary.
func summarizeFn(pkg *Package, fd *ast.FuncDecl, fn *types.Func, structs map[string]*lockedStruct) *lockFnInfo {
	info := &lockFnInfo{
		fd:      fd,
		fn:      fn,
		locks:   map[string]map[string]bool{},
		creates: map[string]bool{},
	}
	if fd.Recv != nil {
		if recvName, ls := receiverOf(pkg, fd, structs); ls != nil && recvName != "" {
			info.ls = ls
			info.recvObj = pkg.Info.Defs[fd.Recv.List[0].Names[0]]
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// x.mu.Lock() on any value of a guarded struct type.
			if lockMethods[n.Sel.Name] {
				if inner, ok := n.X.(*ast.SelectorExpr); ok {
					if st := guardedStructName(pkg, inner.X, structs); st != "" && structs[st].mutexes[inner.Sel.Name] {
						if info.locks[st] == nil {
							info.locks[st] = map[string]bool{}
						}
						info.locks[st][inner.Sel.Name] = true
					}
				}
			}
		case *ast.CompositeLit:
			if st := guardedLitName(pkg, n, structs); st != "" {
				info.creates[st] = true
			}
		case *ast.CallExpr:
			if callee := calleeFunc(pkg, n); callee != nil {
				info.callees = append(info.callees, callee)
			}
		}
		return true
	})
	return info
}

// guardedStructName resolves e's type to a tracked guarded struct name,
// or "".
func guardedStructName(pkg *Package, e ast.Expr, structs map[string]*lockedStruct) string {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != pkg.Path {
		return ""
	}
	if _, tracked := structs[named.Obj().Name()]; !tracked {
		return ""
	}
	return named.Obj().Name()
}

// guardedLitName resolves a composite literal to a tracked struct name,
// or "".
func guardedLitName(pkg *Package, lit *ast.CompositeLit, structs map[string]*lockedStruct) string {
	return guardedStructName(pkg, lit, structs)
}

// guardedAccess is one guarded-field access through the receiver.
type guardedAccess struct {
	sel *ast.SelectorExpr
	mu  string
}

// guardedAccesses collects the receiver's guarded-field accesses in a
// method body.
func guardedAccesses(pkg *Package, info *lockFnInfo) []guardedAccess {
	var out []guardedAccess
	ast.Inspect(info.fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !isReceiver(pkg, sel.X, info.recvObj) {
			return true
		}
		if mu, ok := info.ls.guarded[sel.Sel.Name]; ok {
			out = append(out, guardedAccess{sel, mu})
		}
		return true
	})
	return out
}

// guardedStructs finds every struct in pkg that has a sync.Mutex/RWMutex
// field and at least one "// guarded by <mu>" sibling annotation.
func guardedStructs(pkg *Package) map[string]*lockedStruct {
	structs := map[string]*lockedStruct{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			ls := &lockedStruct{name: ts.Name.Name, mutexes: map[string]bool{}, guarded: map[string]string{}}
			for _, field := range st.Fields.List {
				if isMutexType(pkg.Info.TypeOf(field.Type)) {
					for _, name := range field.Names {
						ls.mutexes[name.Name] = true
					}
					continue
				}
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					ls.guarded[name.Name] = mu
				}
			}
			if len(ls.mutexes) > 0 && len(ls.guarded) > 0 {
				structs[ls.name] = ls
			}
			return true
		})
	}
	return structs
}

func isMutexType(t types.Type) bool {
	name := syncTypeName(t)
	return name == "Mutex" || name == "RWMutex"
}

// guardAnnotation returns the mutex name from a field's doc or trailing
// comment, or "" when the field is unannotated.
func guardAnnotation(field *ast.Field) string {
	for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if group == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(group.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// receiverOf resolves fd's receiver to a tracked struct, returning the
// receiver variable name.
func receiverOf(pkg *Package, fd *ast.FuncDecl, structs map[string]*lockedStruct) (string, *lockedStruct) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return "", nil
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", nil
	}
	ls, ok := structs[id.Name]
	if !ok {
		return "", nil
	}
	return fd.Recv.List[0].Names[0].Name, ls
}

// lockMethods are the sync calls that count as acquiring the guard.
var lockMethods = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}

func isReceiver(pkg *Package, e ast.Expr, recvObj types.Object) bool {
	id, ok := e.(*ast.Ident)
	if !ok || recvObj == nil {
		return false
	}
	return pkg.Info.Uses[id] == recvObj
}
