package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

func init() {
	Register(Check{
		Name: "locksafe",
		Doc:  "methods touching `// guarded by <mu>` fields must lock that mutex (heuristic; suppress with //nolint:locksafe)",
		Run:  runLocksafe,
	})
}

// guardedRe extracts the mutex name from a field comment like
// "// guarded by mu".
var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// lockedStruct records one struct's lock discipline: which mutex fields it
// has and which sibling fields each guards.
type lockedStruct struct {
	name    string          // type name
	mutexes map[string]bool // mutex-typed field names
	guarded map[string]string
}

func runLocksafe(pkg *Package) []Finding {
	structs := guardedStructs(pkg)
	if len(structs) == 0 {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recvName, ls := receiverOf(pkg, fd, structs)
			if ls == nil || recvName == "" {
				continue
			}
			out = append(out, checkMethod(pkg, fd, recvName, ls)...)
		}
	}
	return out
}

// guardedStructs finds every struct in pkg that has a sync.Mutex/RWMutex
// field and at least one "// guarded by <mu>" sibling annotation.
func guardedStructs(pkg *Package) map[string]*lockedStruct {
	structs := map[string]*lockedStruct{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			ls := &lockedStruct{name: ts.Name.Name, mutexes: map[string]bool{}, guarded: map[string]string{}}
			for _, field := range st.Fields.List {
				if isMutexType(pkg.Info.TypeOf(field.Type)) {
					for _, name := range field.Names {
						ls.mutexes[name.Name] = true
					}
					continue
				}
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					ls.guarded[name.Name] = mu
				}
			}
			if len(ls.mutexes) > 0 && len(ls.guarded) > 0 {
				structs[ls.name] = ls
			}
			return true
		})
	}
	return structs
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// guardAnnotation returns the mutex name from a field's doc or trailing
// comment, or "" when the field is unannotated.
func guardAnnotation(field *ast.Field) string {
	for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if group == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(group.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// receiverOf resolves fd's receiver to a tracked struct, returning the
// receiver variable name.
func receiverOf(pkg *Package, fd *ast.FuncDecl, structs map[string]*lockedStruct) (string, *lockedStruct) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return "", nil
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", nil
	}
	ls, ok := structs[id.Name]
	if !ok {
		return "", nil
	}
	return fd.Recv.List[0].Names[0].Name, ls
}

// lockMethods are the sync calls that count as acquiring the guard.
var lockMethods = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}

// checkMethod flags guarded-field accesses in a method whose body never
// acquires the guarding mutex. This is deliberately a whole-body
// heuristic, not a path-sensitive analysis: a method that locks anywhere
// is trusted, and helpers documented as "caller holds mu" carry a
// //nolint:locksafe.
func checkMethod(pkg *Package, fd *ast.FuncDecl, recvName string, ls *lockedStruct) []Finding {
	recvObj := pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	locked := map[string]bool{}
	type access struct {
		sel *ast.SelectorExpr
		mu  string
	}
	var accesses []access

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// recv.mu.Lock() — the inner selector is recv.mu.
		if lockMethods[sel.Sel.Name] {
			if inner, ok := sel.X.(*ast.SelectorExpr); ok && isReceiver(pkg, inner.X, recvObj) && ls.mutexes[inner.Sel.Name] {
				locked[inner.Sel.Name] = true
				return true
			}
		}
		if !isReceiver(pkg, sel.X, recvObj) {
			return true
		}
		if mu, ok := ls.guarded[sel.Sel.Name]; ok {
			accesses = append(accesses, access{sel, mu})
		}
		return true
	})

	var out []Finding
	for _, a := range accesses {
		if locked[a.mu] {
			continue
		}
		out = append(out, Finding{
			Pos: pkg.Fset.Position(a.sel.Pos()),
			Message: "field " + a.sel.Sel.Name + " is guarded by " + a.mu +
				" but method " + fd.Name.Name + " never locks it",
		})
	}
	return out
}

func isReceiver(pkg *Package, e ast.Expr, recvObj types.Object) bool {
	id, ok := e.(*ast.Ident)
	if !ok || recvObj == nil {
		return false
	}
	return pkg.Info.Uses[id] == recvObj
}
