package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

func init() {
	Register(Check{
		Name: "concurrency",
		Doc:  "goroutine hygiene: no unbounded go-in-loop outside internal/parallel, no WaitGroup.Add inside the spawned goroutine, no lock copies, no defer-unlock in loops, no channel sends that can never drain",
		Run:  runConcurrency,
	})
}

// concurrencyExempt lists the packages allowed to spawn goroutines in
// loops: internal/parallel owns bounded fan-out for everyone else, and
// servers/mains drive real listeners where a goroutine per accepted
// connection is the intended shape.
var concurrencyExempt = []string{
	"/internal/parallel",
	"/cmd/",
	"/examples/",
}

func concurrencySpawnExempt(path string) bool {
	for _, frag := range concurrencyExempt {
		if strings.Contains(path+"/", frag) {
			return true
		}
	}
	return false
}

func runConcurrency(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !concurrencySpawnExempt(pkg.Path) {
				out = append(out, goInLoopFindings(pkg, fd)...)
			}
			out = append(out, wgAddInGoroutineFindings(pkg, fd)...)
			out = append(out, deferUnlockInLoopFindings(pkg, fd)...)
			out = append(out, lockCopyFindings(pkg, fd)...)
			out = append(out, deadSendFindings(pkg, fd)...)
		}
	}
	return out
}

// goInLoopFindings flags `go` statements lexically inside a for/range
// body: each iteration spawns another goroutine with nothing bounding the
// fleet. Bounded fan-out belongs in internal/parallel.
func goInLoopFindings(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case *ast.ForStmt:
			walkChildren(n.Body, func(c ast.Node) { walk(c, true) })
			return
		case *ast.RangeStmt:
			walkChildren(n.Body, func(c ast.Node) { walk(c, true) })
			return
		case *ast.GoStmt:
			if inLoop {
				out = append(out, Finding{
					Pos:     pkg.Fset.Position(n.Pos()),
					Message: "unbounded goroutine spawn: go statement inside a loop; fan out through internal/parallel instead",
				})
			}
		case *ast.FuncLit:
			// A nested function literal resets loop context: spawning once
			// from a closure that happens to be defined in a loop is the
			// closure's business.
			walkChildren(n.Body, func(c ast.Node) { walk(c, false) })
			return
		}
		walkChildren(n, func(c ast.Node) { walk(c, inLoop) })
	}
	walk(fd.Body, false)
	return out
}

// walkChildren invokes fn on each direct child node of n.
func walkChildren(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}

// wgAddInGoroutineFindings flags sync.WaitGroup.Add calls made inside the
// goroutine being counted: the spawned body races with the parent's Wait,
// which can return before Add runs. Add must happen before `go`.
func wgAddInGoroutineFindings(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if _, isLit := m.(*ast.FuncLit); isLit && m != lit {
				return false // a nested spawn is its own GoStmt, visited separately
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Add" {
				return true
			}
			if syncTypeName(pkg.Info.TypeOf(sel.X)) == "WaitGroup" {
				out = append(out, Finding{
					Pos:     pkg.Fset.Position(call.Pos()),
					Message: "sync.WaitGroup.Add inside the spawned goroutine races with Wait; call Add before the go statement",
				})
			}
			return true
		})
		return true
	})
	return out
}

// deferUnlockInLoopFindings flags `defer mu.Unlock()` inside a loop body:
// the defer runs at function exit, not iteration end, so the second
// iteration self-deadlocks (and RUnlocks pile up).
func deferUnlockInLoopFindings(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	var loops []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, n.Body)
		case *ast.RangeStmt:
			loops = append(loops, n.Body)
		case *ast.FuncLit:
			return false // its defers scope to the literal, checked via its own spawn
		}
		return true
	})
	for _, body := range loops {
		ast.Inspect(body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			df, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			sel, ok := df.Call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name := sel.Sel.Name; name != "Unlock" && name != "RUnlock" {
				return true
			}
			if t := syncTypeName(pkg.Info.TypeOf(sel.X)); t == "Mutex" || t == "RWMutex" {
				out = append(out, Finding{
					Pos:     pkg.Fset.Position(df.Pos()),
					Message: "defer " + exprString(pkg.Fset, sel) + " inside a loop runs at function exit, not iteration end; unlock explicitly or hoist the body into a function",
				})
			}
			return true
		})
	}
	return out
}

// lockCopyFindings flags functions that copy a lock by value: parameters,
// results, or receivers typed as (or containing) sync.Mutex, RWMutex,
// WaitGroup, Once, or Cond without a pointer.
func lockCopyFindings(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	check := func(fields *ast.FieldList, kind string) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			t := pkg.Info.TypeOf(field.Type)
			if lock := containsLock(t, 0); lock != "" {
				out = append(out, Finding{
					Pos:     pkg.Fset.Position(field.Pos()),
					Message: kind + " copies sync." + lock + " by value; pass a pointer",
				})
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
	return out
}

// syncTypeName returns the bare name of a sync package type ("Mutex",
// "RWMutex", "WaitGroup", "Once", "Cond"), or "" for anything else.
// Pointers are dereferenced: a *sync.Mutex is not a copy hazard but its
// methods still identify the lock for the other lints.
func syncTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
		return obj.Name()
	}
	return ""
}

// containsLock reports the sync lock type a value of type t would copy,
// looking one struct level deep (the common "struct with an embedded
// mutex passed by value" mistake); "" when t is copy-safe.
func containsLock(t types.Type, depth int) string {
	if t == nil || depth > 2 {
		return ""
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return ""
	}
	if name := syncTypeName(t); name != "" {
		return name
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if name := containsLock(st.Field(i).Type(), depth+1); name != "" {
			return name
		}
	}
	return ""
}

// deadSendFindings flags sends on a channel made locally in fd that is
// never received from, ranged over, closed, or passed anywhere else in
// the function: nothing can ever drain it, so the send blocks forever
// (or, buffered, strands the values).
func deadSendFindings(pkg *Package, fd *ast.FuncDecl) []Finding {
	type chanUse struct {
		sends           []ast.Node
		drains, escapes int
	}
	local := map[types.Object]*chanUse{}

	// Pass 1: channels created by make(chan ...) and bound to a local.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "make" || len(call.Args) == 0 {
				continue
			}
			if _, isChan := pkg.Info.TypeOf(call.Args[0]).(*types.Chan); !isChan {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pkg.Info.ObjectOf(id); obj != nil {
					local[obj] = &chanUse{}
				}
			}
		}
		return true
	})
	if len(local) == 0 {
		return nil
	}

	use := func(e ast.Expr) *chanUse {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		return local[pkg.Info.Uses[id]]
	}

	// Pass 2: classify every use. Anything that hands the channel to
	// other code (argument, return, store, non-local assignment) counts
	// as an escape and absolves the function of draining it.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if u := use(n.Chan); u != nil {
				u.sends = append(u.sends, n)
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if u := use(n.X); u != nil {
					u.drains++
				}
			}
		case *ast.RangeStmt:
			if u := use(n.X); u != nil {
				u.drains++
			}
		case *ast.CallExpr:
			if fn, ok := n.Fun.(*ast.Ident); ok && fn.Name == "close" {
				if len(n.Args) == 1 {
					if u := use(n.Args[0]); u != nil {
						u.drains++
						return true
					}
				}
			}
			for _, arg := range n.Args {
				if u := use(arg); u != nil {
					u.escapes++
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if u := use(res); u != nil {
					u.escapes++
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if u := use(rhs); u != nil {
					u.escapes++
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if u := use(elt); u != nil {
					u.escapes++
				}
			}
		case *ast.SelectStmt:
			// A select with a default or multiple comms makes liveness
			// judgment unreliable; treat any channel mentioned in a select
			// as drained.
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if u := local[pkg.Info.Uses[id]]; u != nil {
						u.drains++
					}
				}
				return true
			})
			return false
		}
		return true
	})

	var flagged []ast.Node
	for _, u := range local {
		if len(u.sends) == 0 || u.drains > 0 || u.escapes > 0 {
			continue
		}
		flagged = append(flagged, u.sends[0])
	}
	sort.Slice(flagged, func(i, j int) bool { return flagged[i].Pos() < flagged[j].Pos() })
	var out []Finding
	for _, send := range flagged {
		out = append(out, Finding{
			Pos:     pkg.Fset.Position(send.Pos()),
			Message: "send on a locally-made channel with no receive, close, or escape in this function; nothing can drain it",
		})
	}
	return out
}
