package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis. Test
// files (_test.go) are excluded: the invariants bslint enforces are about
// shipped behavior, and tests legitimately use wall clocks and discard
// errors while driving real sockets.
type Package struct {
	// Path is the import path, e.g. "dnsbackscatter/internal/cache".
	Path string
	// Dir is the absolute directory holding the package's sources.
	Dir string
	// Fset maps AST positions back to file:line.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the expression-level type information checks consult.
	Info *types.Info
}

// Module locates a Go module on disk and loads its packages for analysis.
type Module struct {
	// Path is the module path declared in go.mod.
	Path string
	// Dir is the absolute module root.
	Dir string

	fset   *token.FileSet
	std    types.Importer      // stdlib / out-of-module importer
	source types.Importer      // fallback when export data is unavailable
	loaded map[string]*Package // memoized by import path
	failed map[string]error    // memoized load failures by import path
	active map[string]bool     // import-cycle guard
}

// Fset returns the module's file set, which maps every loaded package's
// positions; ApplyFixes needs it to turn fix positions into byte offsets.
func (m *Module) Fset() *token.FileSet { return m.fset }

// LoadModule finds the module containing dir by walking up to the nearest
// go.mod and returns a loader for it.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Module{
		Path:   modPath,
		Dir:    root,
		fset:   fset,
		std:    importer.ForCompiler(fset, "gc", nil),
		source: importer.ForCompiler(fset, "source", nil),
		loaded: map[string]*Package{},
		failed: map[string]error{},
		active: map[string]bool{},
	}, nil
}

// Packages loads every package matched by the patterns. Patterns follow
// the go tool's shape: "./..." loads the whole module, "./x/..." a
// subtree, and "./x" one directory. Directories named testdata, vendored
// trees, and hidden directories are skipped, as the go tool does.
func (m *Module) Packages(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		sub, recursive := strings.CutSuffix(pat, "/...")
		if sub == "." || sub == "" {
			sub = ""
		} else {
			sub = strings.TrimPrefix(sub, "./")
		}
		rootDir := filepath.Join(m.Dir, filepath.FromSlash(sub))
		if !recursive {
			if !hasGoFiles(rootDir) {
				return nil, fmt.Errorf("lint: no Go package matches %s", pat)
			}
			dirs[rootDir] = true
			continue
		}
		err := filepath.WalkDir(rootDir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != rootDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	// Load every matched package, collecting failures instead of
	// stopping at the first: a partially-broken module reports every
	// broken package, and the caller decides that any load error is
	// fatal (cmd/bslint always does — linting a subset silently would
	// let findings in the unloadable packages go unseen).
	var pkgs []*Package
	var loadErrs []error
	for _, dir := range sorted {
		if !hasGoFiles(dir) {
			continue
		}
		pkg, err := m.loadDir(dir)
		if err != nil {
			loadErrs = append(loadErrs, err)
			continue
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(pkgs) == 0 && len(loadErrs) == 0 {
		return nil, fmt.Errorf("lint: no Go packages matched %s", strings.Join(patterns, " "))
	}
	return pkgs, errors.Join(loadErrs...)
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory inside the module to its import path.
func (m *Module) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(m.Dir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return m.Path, nil
	}
	return m.Path + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir, memoized by import
// path so shared dependencies check once.
func (m *Module) loadDir(dir string) (*Package, error) {
	path, err := m.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := m.loaded[path]; ok {
		return pkg, nil
	}
	if err, ok := m.failed[path]; ok {
		return nil, err
	}
	if m.active[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	m.active[path] = true
	defer delete(m.active, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			err = fmt.Errorf("lint: %w", err)
			m.failed[path] = err
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*moduleImporter)(m)}
	tpkg, err := conf.Check(path, m.fset, files, info)
	if err != nil {
		err = fmt.Errorf("lint: type-checking %s: %w", path, err)
		m.failed[path] = err
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Fset: m.fset, Files: files, Types: tpkg, Info: info}
	m.loaded[path] = pkg
	return pkg, nil
}

// moduleImporter resolves imports during type-checking: packages inside
// the module are loaded from source recursively, everything else (the
// stdlib — the module has no external dependencies) comes from compiled
// export data, falling back to source type-checking if export data is
// missing.
type moduleImporter Module

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	m := (*Module)(im)
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, m.Path), "/")
		pkg, err := m.loadDir(filepath.Join(m.Dir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	tpkg, err := m.std.Import(path)
	if err == nil {
		return tpkg, nil
	}
	return m.source.Import(path)
}
