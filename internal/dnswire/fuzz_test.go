package dnswire

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the wire decoder with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode to a decodable message
// with the same header and question section.
func FuzzDecode(f *testing.F) {
	seed := func(m *Message) {
		wire, err := m.Encode(nil)
		if err == nil {
			f.Add(wire)
		}
	}
	seed(NewPTRQuery(1, "4.3.2.1.in-addr.arpa"))
	r := NewResponse(NewPTRQuery(2, "1.0.113.0.203.in-addr.arpa"), RCodeNoError)
	r.AddAnswer(RR{Name: "1.0.113.0.203.in-addr.arpa", Type: TypePTR, Class: ClassIN, TTL: 300, Target: "mail.example.jp"})
	seed(r)
	seed(NewResponse(NewPTRQuery(3, "9.9.9.9.in-addr.arpa"), RCodeNXDomain))
	f.Add([]byte{})
	f.Add([]byte{0xc0, 0x0c})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := DecodeInto(data, &m); err != nil {
			return
		}
		// Accepted input: the decoded form must survive a round trip.
		wire, err := m.Encode(nil)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		var m2 Message
		if err := DecodeInto(wire, &m2); err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if m.Header != m2.Header && !countsOnlyDiffer(m.Header, m2.Header) {
			t.Fatalf("header changed: %+v vs %+v", m.Header, m2.Header)
		}
		if len(m.Questions) != len(m2.Questions) {
			t.Fatalf("question count changed")
		}
		for i := range m.Questions {
			if m.Questions[i] != m2.Questions[i] {
				t.Fatalf("question %d changed: %+v vs %+v", i, m.Questions[i], m2.Questions[i])
			}
		}
	})
}

// FuzzRoundTrip drives the encoder with arbitrary structured messages:
// anything Encode accepts must decode, and the decoded form must
// re-encode to the identical bytes — one encode canonicalizes (trailing
// dots stripped, counts recomputed, compression pointers fixed), after
// which encode∘decode is the identity on the wire.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint16(0x8180), "4.3.2.1.in-addr.arpa", "mail.example.jp", "ns.example.jp", uint32(300), []byte{127, 0, 0, 1})
	f.Add(uint16(0xffff), uint16(0x0100), "1.0.113.0.203.in-addr.arpa.", "", "a.b", uint32(0), []byte{})
	f.Add(uint16(7), uint16(0xffff), ".", "x", "x", uint32(1<<31), []byte{0, 0, 0, 35})

	f.Fuzz(func(t *testing.T, id, flags uint16, qname, ptrTarget, nsTarget string, ttl uint32, rdata []byte) {
		m := &Message{}
		m.Header.ID = id
		m.Header.setFlags(flags)
		m.Questions = append(m.Questions, Question{Name: qname, Type: TypePTR, Class: ClassIN})
		m.Answers = append(m.Answers, RR{Name: qname, Type: TypePTR, Class: ClassIN, TTL: ttl, Target: ptrTarget})
		m.Authority = append(m.Authority, RR{Name: nsTarget, Type: TypeNS, Class: ClassIN, TTL: ttl, Target: nsTarget})
		m.Additional = append(m.Additional, RR{Name: ptrTarget, Type: TypeA, Class: ClassIN, TTL: ttl, RData: rdata})

		wire, err := m.Encode(nil)
		if err != nil {
			return // rejected input (bad name): fine, as long as it didn't panic
		}
		var d Message
		if err := DecodeInto(wire, &d); err != nil {
			t.Fatalf("encoded message failed to decode: %v\nwire: %x", err, wire)
		}
		again, err := d.Encode(nil)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if !bytes.Equal(wire, again) {
			t.Fatalf("re-encode changed the wire form:\n first: %x\nsecond: %x", wire, again)
		}
	})
}

// countsOnlyDiffer allows header count fields to change: Encode recomputes
// them from section lengths, which is the defined behavior.
func countsOnlyDiffer(a, b Header) bool {
	a.QDCount, b.QDCount = 0, 0
	a.ANCount, b.ANCount = 0, 0
	a.NSCount, b.NSCount = 0, 0
	a.ARCount, b.ARCount = 0, 0
	return a == b
}
