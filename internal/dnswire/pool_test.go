package dnswire_test

import (
	"bytes"
	"fmt"
	"testing"

	"dnsbackscatter/internal/dnswire"
)

// compressible builds a response whose answer shares a suffix with the
// question, so the compression table actually gets hits.
func compressible(id uint16) *dnswire.Message {
	q := dnswire.NewPTRQuery(id, "4.3.2.1.in-addr.arpa")
	r := dnswire.NewResponse(q, dnswire.RCodeNoError)
	r.AddAnswer(dnswire.RR{
		Name:   "4.3.2.1.in-addr.arpa",
		Type:   dnswire.TypePTR,
		Class:  dnswire.ClassIN,
		TTL:    3600,
		Target: "mail.example.jp",
	})
	return r
}

// TestEncoderReuseByteIdentical drives one Encoder through a sequence of
// different messages and checks each output against a fresh-encoder
// encode of the same message: a dirty compression table must never leak
// into the next message's bytes.
func TestEncoderReuseByteIdentical(t *testing.T) {
	msgs := []*dnswire.Message{
		dnswire.NewPTRQuery(1, "4.3.2.1.in-addr.arpa"),
		compressible(2),
		dnswire.NewPTRQuery(3, "8.7.6.5.in-addr.arpa"),
		compressible(4),
		dnswire.NewResponse(dnswire.NewPTRQuery(5, "9.9.9.9.in-addr.arpa"), dnswire.RCodeNXDomain),
	}
	reused := dnswire.NewEncoder()
	for i, m := range msgs {
		fresh, err := dnswire.NewEncoder().Encode(m, nil)
		if err != nil {
			t.Fatalf("msg %d fresh encode: %v", i, err)
		}
		pooled, err := reused.Encode(m, nil)
		if err != nil {
			t.Fatalf("msg %d reused encode: %v", i, err)
		}
		if !bytes.Equal(fresh, pooled) {
			t.Fatalf("msg %d: reused encoder bytes differ from fresh encoder", i)
		}
		viaMethod, err := m.Encode(nil)
		if err != nil {
			t.Fatalf("msg %d Message.Encode: %v", i, err)
		}
		if !bytes.Equal(fresh, viaMethod) {
			t.Fatalf("msg %d: Message.Encode bytes differ from fresh encoder", i)
		}
	}
}

// TestAcquireReleaseEncoderRoundTrip checks that a recycled encoder is
// indistinguishable from a new one.
func TestAcquireReleaseEncoderRoundTrip(t *testing.T) {
	m := compressible(7)
	want, err := dnswire.NewEncoder().Encode(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		enc := dnswire.AcquireEncoder()
		got, err := enc.Encode(m, nil)
		dnswire.ReleaseEncoder(enc)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("round %d: pooled encoder bytes differ", i)
		}
	}
}

// TestSetPTRQueryMatchesNew checks the in-place builder against the
// allocating constructor, including after the message held other state.
func TestSetPTRQueryMatchesNew(t *testing.T) {
	want, err := dnswire.NewPTRQuery(9, "4.3.2.1.in-addr.arpa").Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	m := dnswire.AcquireMessage()
	defer dnswire.ReleaseMessage(m)
	// Dirty the message first; SetPTRQuery must fully overwrite it.
	*m = *compressible(3)
	m.SetPTRQuery(9, "4.3.2.1.in-addr.arpa")
	got, err := m.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("SetPTRQuery bytes differ from NewPTRQuery")
	}
}

// TestReleaseMessageResets checks that released messages come back empty.
func TestReleaseMessageResets(t *testing.T) {
	m := dnswire.AcquireMessage()
	m.SetPTRQuery(1, "4.3.2.1.in-addr.arpa")
	dnswire.ReleaseMessage(m)
	m2 := dnswire.AcquireMessage()
	defer dnswire.ReleaseMessage(m2)
	if len(m2.Questions) != 0 || m2.Header != (dnswire.Header{}) {
		t.Fatal("AcquireMessage returned a non-reset message")
	}
}

func BenchmarkEncoderReused(b *testing.B) {
	m := compressible(1)
	enc := dnswire.NewEncoder()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = enc.Encode(m, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ExampleAcquireEncoder shows the serve-loop idiom: one encoder held
// across many responses, with the output buffer reused as well.
func ExampleAcquireEncoder() {
	enc := dnswire.AcquireEncoder()
	defer dnswire.ReleaseEncoder(enc)
	var out []byte
	for id := uint16(1); id <= 3; id++ {
		q := dnswire.NewPTRQuery(id, "4.3.2.1.in-addr.arpa")
		var err error
		out, err = enc.Encode(q, out[:0])
		if err != nil {
			panic(err)
		}
		fmt.Println(len(out))
	}
	// Output:
	// 38
	// 38
	// 38
}

// ExampleAcquireMessage builds and encodes a query without allocating a
// fresh Message per lookup.
func ExampleAcquireMessage() {
	m := dnswire.AcquireMessage()
	defer dnswire.ReleaseMessage(m)
	m.SetPTRQuery(42, "4.3.2.1.in-addr.arpa")
	wire, err := m.Encode(nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Header.ID, len(wire))
	// Output: 42 38
}
