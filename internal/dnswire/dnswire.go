// Package dnswire implements the DNS message wire format (RFC 1035) needed
// by the backscatter sensor: headers, questions, and resource records with
// name compression, plus PTR/in-addr.arpa conveniences.
//
// The sensor's collection path parses every query arriving at an authority
// (§III-A), so decoding is designed in the gopacket DecodingLayer style:
// DecodeInto parses into a caller-owned Message, reusing its slices, and
// name decoding never aliases the input buffer, so the buffer may be
// recycled immediately (the safe variant of zero-copy).
package dnswire

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

// Record types and classes used by the sensor.
const (
	TypeA   uint16 = 1
	TypeNS  uint16 = 2
	TypeSOA uint16 = 6
	TypePTR uint16 = 12
	TypeSRV uint16 = 33

	ClassIN uint16 = 1
)

// Response codes.
const (
	RCodeNoError  uint8 = 0
	RCodeFormErr  uint8 = 1
	RCodeServFail uint8 = 2
	RCodeNXDomain uint8 = 3
)

// Opcodes.
const (
	OpcodeQuery uint8 = 0
)

// Header flag bits within the 16-bit flags word.
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
)

// Errors returned by the decoder.
var (
	ErrTruncated     = errors.New("dnswire: message truncated")
	ErrBadPointer    = errors.New("dnswire: bad compression pointer")
	ErrNameTooLong   = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong  = errors.New("dnswire: label exceeds 63 octets")
	ErrTooManyRRs    = errors.New("dnswire: section count exceeds message size")
	ErrTrailingBytes = errors.New("dnswire: trailing bytes after message")
	ErrDotInLabel    = errors.New("dnswire: label contains '.'")
)

// Header is the fixed 12-octet DNS header.
type Header struct {
	ID      uint16
	QR      bool // response flag
	Opcode  uint8
	AA      bool // authoritative answer
	TC      bool // truncated
	RD      bool // recursion desired
	RA      bool // recursion available
	RCode   uint8
	QDCount uint16
	ANCount uint16
	NSCount uint16
	ARCount uint16
}

// Question is one entry of the question section.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// RR is a resource record. RData holds the raw bytes except for PTR/NS
// records, whose decompressed target name is in Target.
type RR struct {
	Name   string
	Type   uint16
	Class  uint16
	TTL    uint32
	Target string // decoded name for PTR/NS
	RData  []byte // raw rdata for other types
}

// Message is a whole DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// Reset clears m for reuse, keeping the section slices' capacity.
func (m *Message) Reset() {
	m.Header = Header{}
	m.Questions = m.Questions[:0]
	m.Answers = m.Answers[:0]
	m.Authority = m.Authority[:0]
	m.Additional = m.Additional[:0]
}

// NewPTRQuery builds the reverse query a querier sends for name (already in
// 4.3.2.1.in-addr.arpa form) with the given transaction ID.
func NewPTRQuery(id uint16, name string) *Message {
	m := new(Message)
	m.SetPTRQuery(id, name)
	return m
}

// SetPTRQuery resets m in place to the reverse query NewPTRQuery would
// build, reusing m's section slices. Callers on encode hot paths pair it
// with AcquireMessage/ReleaseMessage to build queries without allocating.
func (m *Message) SetPTRQuery(id uint16, name string) {
	m.Reset()
	m.Header = Header{ID: id, RD: true, QDCount: 1}
	m.Questions = append(m.Questions, Question{Name: name, Type: TypePTR, Class: ClassIN})
}

// NewResponse builds a response to q with the given rcode. Answers may be
// appended by the caller; counts are fixed up at Append/Encode time.
func NewResponse(q *Message, rcode uint8) *Message {
	r := &Message{Header: q.Header}
	r.Header.QR = true
	r.Header.RCode = rcode
	r.Questions = append(r.Questions, q.Questions...)
	r.Header.QDCount = uint16(len(r.Questions))
	r.Header.ANCount = 0
	r.Header.NSCount = 0
	r.Header.ARCount = 0
	return r
}

// AddAnswer appends a PTR answer record.
func (m *Message) AddAnswer(rr RR) {
	m.Answers = append(m.Answers, rr)
	m.Header.ANCount = uint16(len(m.Answers))
}

// flags packs the header flag word.
func (h *Header) flags() uint16 {
	var f uint16
	if h.QR {
		f |= flagQR
	}
	f |= uint16(h.Opcode&0xf) << 11
	if h.AA {
		f |= flagAA
	}
	if h.TC {
		f |= flagTC
	}
	if h.RD {
		f |= flagRD
	}
	if h.RA {
		f |= flagRA
	}
	f |= uint16(h.RCode & 0xf)
	return f
}

func (h *Header) setFlags(f uint16) {
	h.QR = f&flagQR != 0
	h.Opcode = uint8(f>>11) & 0xf
	h.AA = f&flagAA != 0
	h.TC = f&flagTC != 0
	h.RD = f&flagRD != 0
	h.RA = f&flagRA != 0
	h.RCode = uint8(f & 0xf)
}

// encoder carries the output buffer and the name-compression table.
type encoder struct {
	buf     []byte
	offsets map[string]int
}

// Encode appends the wire form of m to dst and returns the extended slice.
// Section counts in the header are taken from the slice lengths, not the
// Header fields, so callers cannot desynchronize them.
//
// Encode borrows a pooled Encoder for the call; loops that encode many
// messages can hold one Encoder (AcquireEncoder) and call its Encode
// method directly to skip even the pool round-trip. Output bytes are
// identical either way.
//
//bslint:hotpath
func (m *Message) Encode(dst []byte) ([]byte, error) {
	enc := AcquireEncoder()
	out, err := enc.Encode(m, dst)
	ReleaseEncoder(enc)
	return out, err
}

// Encode appends the wire form of m to dst and returns the extended
// slice, exactly as Message.Encode does. The encoder's compression table
// is cleared and rebuilt per call, so output bytes never depend on what
// the Encoder encoded before.
//
//bslint:hotpath
func (enc *Encoder) Encode(m *Message, dst []byte) ([]byte, error) {
	clear(enc.offsets)
	e := encoder{buf: dst, offsets: enc.offsets}
	h := m.Header
	h.QDCount = uint16(len(m.Questions))
	h.ANCount = uint16(len(m.Answers))
	h.NSCount = uint16(len(m.Authority))
	h.ARCount = uint16(len(m.Additional))

	e.u16(h.ID)
	e.u16(h.flags())
	e.u16(h.QDCount)
	e.u16(h.ANCount)
	e.u16(h.NSCount)
	e.u16(h.ARCount)

	for i := range m.Questions {
		q := &m.Questions[i]
		if err := e.name(q.Name); err != nil {
			return nil, err
		}
		e.u16(q.Type)
		e.u16(q.Class)
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for i := range sec {
			if err := e.rr(&sec[i]); err != nil {
				return nil, err
			}
		}
	}
	return e.buf, nil
}

func (e *encoder) u16(v uint16) {
	e.buf = append(e.buf, byte(v>>8), byte(v))
}

func (e *encoder) u32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// name encodes a domain name with compression against earlier occurrences.
//
//bslint:hotpath
func (e *encoder) name(name string) error {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		e.buf = append(e.buf, 0)
		return nil
	}
	if strings.HasSuffix(name, ".") {
		// "a.." would otherwise silently drop its empty label and dodge
		// the compression table (keyed on the un-trimmed remainder).
		return fmt.Errorf("dnswire: empty label in %q", name)
	}
	if len(name) > 254 {
		return ErrNameTooLong
	}
	rest := name
	for rest != "" {
		// Compression pointers address 14 bits; skip table hits beyond.
		if off, ok := e.offsets[rest]; ok && off < 0x4000 {
			e.u16(uint16(0xc000 | off))
			return nil
		}
		if len(e.buf) < 0x4000 {
			e.offsets[rest] = len(e.buf)
		}
		label := rest
		if i := strings.IndexByte(rest, '.'); i >= 0 {
			label, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if len(label) == 0 {
			return fmt.Errorf("dnswire: empty label in %q", name)
		}
		if len(label) > 63 {
			return ErrLabelTooLong
		}
		e.buf = append(e.buf, byte(len(label)))
		e.buf = append(e.buf, label...)
	}
	e.buf = append(e.buf, 0)
	return nil
}

//bslint:hotpath
func (e *encoder) rr(rr *RR) error {
	if err := e.name(rr.Name); err != nil {
		return err
	}
	e.u16(rr.Type)
	e.u16(rr.Class)
	e.u32(rr.TTL)
	switch rr.Type {
	case TypePTR, TypeNS:
		// Reserve the length, encode the (possibly compressed) name,
		// then patch the actual rdata length.
		lenAt := len(e.buf)
		e.u16(0)
		start := len(e.buf)
		if err := e.name(rr.Target); err != nil {
			return err
		}
		rdlen := len(e.buf) - start
		e.buf[lenAt] = byte(rdlen >> 8)
		e.buf[lenAt+1] = byte(rdlen)
	default:
		e.u16(uint16(len(rr.RData)))
		e.buf = append(e.buf, rr.RData...)
	}
	return nil
}

// Decode parses a wire-format message, allocating a fresh Message.
func Decode(data []byte) (*Message, error) {
	var m Message
	if err := DecodeInto(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// DecodeInto parses data into m, reusing m's section slices. It rejects
// trailing garbage so log replay catches corrupt records.
func DecodeInto(data []byte, m *Message) error {
	m.Reset()
	d := decoder{data: data}
	if len(data) < 12 {
		return ErrTruncated
	}
	m.Header.ID = d.u16()
	m.Header.setFlags(d.u16())
	m.Header.QDCount = d.u16()
	m.Header.ANCount = d.u16()
	m.Header.NSCount = d.u16()
	m.Header.ARCount = d.u16()

	// A question needs ≥5 octets and an RR ≥11; cheap sanity check before
	// looping on attacker-controlled counts.
	totalRRs := int(m.Header.ANCount) + int(m.Header.NSCount) + int(m.Header.ARCount)
	if int(m.Header.QDCount)*5+totalRRs*11 > len(data)-12 {
		return ErrTooManyRRs
	}

	for i := 0; i < int(m.Header.QDCount); i++ {
		var q Question
		var err error
		if q.Name, err = d.name(); err != nil {
			return err
		}
		if q.Type, err = d.u16e(); err != nil {
			return err
		}
		if q.Class, err = d.u16e(); err != nil {
			return err
		}
		m.Questions = append(m.Questions, q)
	}
	var err error
	if m.Answers, err = d.rrs(m.Answers, int(m.Header.ANCount)); err != nil {
		return err
	}
	if m.Authority, err = d.rrs(m.Authority, int(m.Header.NSCount)); err != nil {
		return err
	}
	if m.Additional, err = d.rrs(m.Additional, int(m.Header.ARCount)); err != nil {
		return err
	}
	if d.pos != len(data) {
		return ErrTrailingBytes
	}
	return nil
}

type decoder struct {
	data []byte
	pos  int
}

// u16 reads without bounds checking; only valid inside the pre-checked
// 12-byte header.
func (d *decoder) u16() uint16 {
	v := uint16(d.data[d.pos])<<8 | uint16(d.data[d.pos+1])
	d.pos += 2
	return v
}

func (d *decoder) u16e() (uint16, error) {
	if d.pos+2 > len(d.data) {
		return 0, ErrTruncated
	}
	return d.u16(), nil
}

func (d *decoder) u32e() (uint32, error) {
	if d.pos+4 > len(d.data) {
		return 0, ErrTruncated
	}
	v := uint32(d.data[d.pos])<<24 | uint32(d.data[d.pos+1])<<16 |
		uint32(d.data[d.pos+2])<<8 | uint32(d.data[d.pos+3])
	d.pos += 4
	return v, nil
}

// name decodes a possibly compressed name starting at d.pos, leaving d.pos
// after the name's in-place representation.
func (d *decoder) name() (string, error) {
	s, next, err := decodeName(d.data, d.pos)
	if err != nil {
		return "", err
	}
	d.pos = next
	return s, nil
}

// decodeName reads a name at off, returning the dotted string and the
// offset just past the name's first (non-pointer-target) encoding.
func decodeName(data []byte, off int) (string, int, error) {
	var b strings.Builder
	next := -1             // position after the first pointer, if any
	ptrBudget := len(data) // any valid chain is shorter than the message
	total := 0
	for {
		if off >= len(data) {
			return "", 0, ErrTruncated
		}
		c := data[off]
		switch {
		case c == 0:
			if next < 0 {
				next = off + 1
			}
			return b.String(), next, nil
		case c&0xc0 == 0xc0:
			if off+1 >= len(data) {
				return "", 0, ErrTruncated
			}
			target := int(c&0x3f)<<8 | int(data[off+1])
			if target >= off {
				return "", 0, ErrBadPointer // pointers must go backwards
			}
			if next < 0 {
				next = off + 2
			}
			if ptrBudget--; ptrBudget <= 0 {
				return "", 0, ErrBadPointer
			}
			off = target
		case c&0xc0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type 0x%02x", c&0xc0)
		default:
			l := int(c)
			if off+1+l > len(data) {
				return "", 0, ErrTruncated
			}
			total += l + 1
			if total > 255 {
				return "", 0, ErrNameTooLong
			}
			// The dotted-string form cannot represent a '.' inside a
			// label: "a.b" as one label is indistinguishable from two.
			// Reject it so decode∘encode stays faithful.
			if bytes.IndexByte(data[off+1:off+1+l], '.') >= 0 {
				return "", 0, ErrDotInLabel
			}
			if b.Len() > 0 {
				b.WriteByte('.')
			}
			b.Write(data[off+1 : off+1+l])
			off += 1 + l
		}
	}
}

func (d *decoder) rrs(dst []RR, n int) ([]RR, error) {
	for i := 0; i < n; i++ {
		var rr RR
		var err error
		if rr.Name, err = d.name(); err != nil {
			return nil, err
		}
		if rr.Type, err = d.u16e(); err != nil {
			return nil, err
		}
		if rr.Class, err = d.u16e(); err != nil {
			return nil, err
		}
		if rr.TTL, err = d.u32e(); err != nil {
			return nil, err
		}
		rdlen, err := d.u16e()
		if err != nil {
			return nil, err
		}
		if d.pos+int(rdlen) > len(d.data) {
			return nil, ErrTruncated
		}
		switch rr.Type {
		case TypePTR, TypeNS:
			s, next, err := decodeName(d.data, d.pos)
			if err != nil {
				return nil, err
			}
			if next != d.pos+int(rdlen) {
				return nil, fmt.Errorf("dnswire: rdata length %d does not match encoded name", rdlen)
			}
			rr.Target = s
			d.pos = next
		default:
			// Copy rather than alias so the input buffer can be reused.
			rr.RData = append([]byte(nil), d.data[d.pos:d.pos+int(rdlen)]...)
			d.pos += int(rdlen)
		}
		dst = append(dst, rr)
	}
	return dst, nil
}

// IsReversePTRQuery reports whether m is a PTR question against
// in-addr.arpa — the only traffic the backscatter sensor retains (§III-A).
func IsReversePTRQuery(m *Message) bool {
	if m.Header.QR || len(m.Questions) != 1 {
		return false
	}
	q := &m.Questions[0]
	return q.Type == TypePTR && q.Class == ClassIN &&
		strings.HasSuffix(strings.ToLower(strings.TrimSuffix(q.Name, ".")), ".in-addr.arpa")
}
