package dnswire

import "sync"

// Encoder encodes messages while reusing its name-compression table
// across calls. A fresh map per Encode is the dominant allocation on the
// authority answer path; one Encoder per serve loop removes it.
//
// Encoding is value-transparent: an Encoder produces byte-for-byte the
// same wire form as Message.Encode, regardless of what it encoded
// before (the table is cleared per message). An Encoder is not safe for
// concurrent use; give each goroutine its own via AcquireEncoder.
type Encoder struct {
	offsets map[string]int
}

// NewEncoder returns a ready-to-use Encoder. Most callers should prefer
// AcquireEncoder, which recycles encoders across call sites.
func NewEncoder() *Encoder {
	return &Encoder{offsets: make(map[string]int, 8)}
}

var encoderPool = sync.Pool{New: func() any { return NewEncoder() }}

// AcquireEncoder returns an Encoder from the package pool. Release it
// with ReleaseEncoder when the encode loop is done; holding it across
// many Encode calls is the intended use.
func AcquireEncoder() *Encoder {
	return encoderPool.Get().(*Encoder)
}

// ReleaseEncoder returns enc to the pool. The caller must not use enc
// after releasing it.
func ReleaseEncoder(enc *Encoder) {
	encoderPool.Put(enc)
}

var messagePool = sync.Pool{New: func() any { return new(Message) }}

// AcquireMessage returns an empty Message from the package pool, ready
// for SetPTRQuery or DecodeInto. Release it with ReleaseMessage once the
// wire bytes have been produced or the decoded fields copied out.
func AcquireMessage() *Message {
	return messagePool.Get().(*Message)
}

// ReleaseMessage resets m and returns it to the pool. The caller must
// not retain m or any of its section slices after releasing.
func ReleaseMessage(m *Message) {
	m.Reset()
	messagePool.Put(m)
}
