package dnswire

import (
	"strings"
	"testing"
	"testing/quick"

	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/rng"
)

func TestPTRQueryRoundTrip(t *testing.T) {
	q := NewPTRQuery(0x1234, "4.3.2.1.in-addr.arpa")
	wire, err := q.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.ID != 0x1234 || got.Header.QR || !got.Header.RD {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d", len(got.Questions))
	}
	qq := got.Questions[0]
	if qq.Name != "4.3.2.1.in-addr.arpa" || qq.Type != TypePTR || qq.Class != ClassIN {
		t.Errorf("question = %+v", qq)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := NewPTRQuery(7, "4.3.2.1.in-addr.arpa")
	r := NewResponse(q, RCodeNoError)
	r.Header.AA = true
	r.AddAnswer(RR{
		Name:   "4.3.2.1.in-addr.arpa",
		Type:   TypePTR,
		Class:  ClassIN,
		TTL:    3600,
		Target: "spam.bad.jp",
	})
	wire, err := r.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Header.QR || !got.Header.AA || got.Header.RCode != RCodeNoError {
		t.Errorf("header = %+v", got.Header)
	}
	if len(got.Answers) != 1 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	a := got.Answers[0]
	if a.Target != "spam.bad.jp" || a.TTL != 3600 || a.Name != "4.3.2.1.in-addr.arpa" {
		t.Errorf("answer = %+v", a)
	}
}

func TestNXDomainResponse(t *testing.T) {
	q := NewPTRQuery(9, "1.0.0.127.in-addr.arpa")
	r := NewResponse(q, RCodeNXDomain)
	wire, err := r.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.RCode != RCodeNXDomain || len(got.Answers) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestCompressionSavesSpace(t *testing.T) {
	// The answer name repeats the question name, so compression should
	// replace the second occurrence with a 2-byte pointer.
	q := NewPTRQuery(1, "4.3.2.1.in-addr.arpa")
	r := NewResponse(q, RCodeNoError)
	r.AddAnswer(RR{Name: "4.3.2.1.in-addr.arpa", Type: TypePTR, Class: ClassIN, TTL: 60, Target: "x.example.jp"})
	wire, err := r.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Uncompressed: 12 header + (22 qname + 4) + (22 + 10 + 14 rdata).
	if len(wire) >= 12+26+22+10+14 {
		t.Errorf("no compression: %d bytes", len(wire))
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Name != "4.3.2.1.in-addr.arpa" {
		t.Errorf("decompressed name = %q", got.Answers[0].Name)
	}
}

func TestCompressionSharedSuffix(t *testing.T) {
	// Two answers under the same zone share the suffix via pointers.
	m := &Message{Header: Header{ID: 3, QR: true}}
	m.Questions = []Question{{Name: "example.jp", Type: TypeNS, Class: ClassIN}}
	m.AddAnswer(RR{Name: "example.jp", Type: TypeNS, Class: ClassIN, TTL: 60, Target: "ns1.example.jp"})
	m.AddAnswer(RR{Name: "example.jp", Type: TypeNS, Class: ClassIN, TTL: 60, Target: "ns2.example.jp"})
	wire, err := m.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Target != "ns1.example.jp" || got.Answers[1].Target != "ns2.example.jp" {
		t.Errorf("targets = %q, %q", got.Answers[0].Target, got.Answers[1].Target)
	}
}

func TestDecodeIntoReuse(t *testing.T) {
	var m Message
	for i := 0; i < 10; i++ {
		name := ipaddr.Addr(uint32(i) * 1000003).ReverseName()
		wire, err := NewPTRQuery(uint16(i), name).Encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeInto(wire, &m); err != nil {
			t.Fatal(err)
		}
		if m.Questions[0].Name != name || m.Header.ID != uint16(i) {
			t.Fatalf("iteration %d: decoded %+v", i, m.Questions[0])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	valid, err := NewPTRQuery(1, "4.3.2.1.in-addr.arpa").Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", valid[:8]},
		{"truncated question", valid[:14]},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xff)},
	}
	for _, c := range cases {
		if _, err := Decode(c.data); err == nil {
			t.Errorf("%s: decode succeeded", c.name)
		}
	}
}

func TestDecodeRejectsForwardPointer(t *testing.T) {
	// Header claiming one question whose name is a self/forward pointer.
	data := make([]byte, 12, 18)
	data[5] = 1 // QDCount = 1
	data = append(data, 0xc0, 12, 0, 12, 0, 1)
	if _, err := Decode(data); err == nil {
		t.Error("forward/self pointer accepted")
	}
}

func TestDecodeRejectsReservedLabelType(t *testing.T) {
	data := make([]byte, 12, 18)
	data[5] = 1
	data = append(data, 0x80, 0, 0, 12, 0, 1)
	if _, err := Decode(data); err == nil {
		t.Error("reserved label type 0x80 accepted")
	}
}

func TestDecodeRejectsAbsurdCounts(t *testing.T) {
	data := make([]byte, 12)
	data[4], data[5] = 0xff, 0xff // QDCount = 65535 in a 12-byte message
	if _, err := Decode(data); err == nil {
		t.Error("absurd QDCount accepted")
	}
}

func TestEncodeRejectsOversizedLabel(t *testing.T) {
	long := strings.Repeat("a", 64) + ".example.jp"
	if _, err := NewPTRQuery(1, long).Encode(nil); err == nil {
		t.Error("64-octet label accepted")
	}
}

func TestEncodeRejectsOversizedName(t *testing.T) {
	parts := make([]string, 0, 10)
	for i := 0; i < 10; i++ {
		parts = append(parts, strings.Repeat("a", 40))
	}
	if _, err := NewPTRQuery(1, strings.Join(parts, ".")).Encode(nil); err == nil {
		t.Error("name > 255 octets accepted")
	}
}

func TestEncodeRejectsEmptyLabel(t *testing.T) {
	if _, err := NewPTRQuery(1, "a..b").Encode(nil); err == nil {
		t.Error("empty interior label accepted")
	}
}

func TestRootName(t *testing.T) {
	m := &Message{Header: Header{ID: 2}}
	m.Questions = []Question{{Name: ".", Type: TypeNS, Class: ClassIN}}
	wire, err := m.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "" {
		t.Errorf("root decodes to %q, want empty", got.Questions[0].Name)
	}
}

func TestOpaqueRDataRoundTrip(t *testing.T) {
	m := &Message{Header: Header{ID: 5, QR: true}}
	m.AddAnswer(RR{Name: "x.example.jp", Type: TypeA, Class: ClassIN, TTL: 30, RData: []byte{1, 2, 3, 4}})
	wire, err := m.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	rd := got.Answers[0].RData
	if len(rd) != 4 || rd[0] != 1 || rd[3] != 4 {
		t.Errorf("rdata = %v", rd)
	}
}

func TestIsReversePTRQuery(t *testing.T) {
	yes := NewPTRQuery(1, "4.3.2.1.in-addr.arpa")
	if !IsReversePTRQuery(yes) {
		t.Error("reverse PTR query not recognized")
	}
	forward := NewPTRQuery(1, "www.example.jp")
	if IsReversePTRQuery(forward) {
		t.Error("forward-name PTR accepted as reverse")
	}
	aQuery := &Message{Header: Header{QDCount: 1},
		Questions: []Question{{Name: "4.3.2.1.in-addr.arpa", Type: TypeA, Class: ClassIN}}}
	if IsReversePTRQuery(aQuery) {
		t.Error("A query accepted as reverse PTR")
	}
	resp := NewResponse(yes, RCodeNoError)
	if IsReversePTRQuery(resp) {
		t.Error("response accepted as query")
	}
}

// TestRoundTripProperty fuzzes random reverse names through encode/decode.
func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(v uint32, id uint16) bool {
		name := ipaddr.Addr(v).ReverseName()
		wire, err := NewPTRQuery(id, name).Encode(nil)
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		return err == nil && got.Questions[0].Name == name && got.Header.ID == id
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanics feeds random bytes to the decoder; malformed input
// must produce errors, not panics or hangs.
func TestDecodeNeverPanics(t *testing.T) {
	st := rng.New(99)
	var m Message
	for i := 0; i < 20000; i++ {
		n := st.Intn(64)
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(st.Uint64())
		}
		_ = DecodeInto(data, &m) // must not panic
	}
}

// TestMutatedMessagesNeverPanic flips bytes in valid messages.
func TestMutatedMessagesNeverPanic(t *testing.T) {
	st := rng.New(100)
	q := NewPTRQuery(1, "4.3.2.1.in-addr.arpa")
	r := NewResponse(q, RCodeNoError)
	r.AddAnswer(RR{Name: "4.3.2.1.in-addr.arpa", Type: TypePTR, Class: ClassIN, TTL: 60, Target: "mail.example.jp"})
	wire, err := r.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	for i := 0; i < 20000; i++ {
		mut := append([]byte(nil), wire...)
		for k := 0; k < 1+st.Intn(4); k++ {
			mut[st.Intn(len(mut))] = byte(st.Uint64())
		}
		_ = DecodeInto(mut, &m) // must not panic
	}
}

func BenchmarkEncodePTRQuery(b *testing.B) {
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = NewPTRQuery(uint16(i), "4.3.2.1.in-addr.arpa").Encode(buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	wire, err := NewPTRQuery(1, "4.3.2.1.in-addr.arpa").Encode(nil)
	if err != nil {
		b.Fatal(err)
	}
	var m Message
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(wire, &m); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeRejectsTrailingEmptyLabel pins a fuzzer find: "a.." used to
// silently drop its empty label and encode like "a", but with different
// compression-table keys, so re-encoding a decoded message could change
// the wire bytes. Empty labels must be rejected wherever they appear.
func TestEncodeRejectsTrailingEmptyLabel(t *testing.T) {
	for _, name := range []string{"a..", "a..b", ".."} {
		if _, err := NewPTRQuery(1, name).Encode(nil); err == nil {
			t.Errorf("Encode(%q) succeeded, want empty-label error", name)
		}
	}
	// The absolute form with a single trailing dot stays valid.
	if _, err := NewPTRQuery(1, "a.b.").Encode(nil); err != nil {
		t.Errorf("Encode(%q): %v", "a.b.", err)
	}
}

// TestDecodeRejectsDotInLabel pins a fuzzer find: a wire label containing
// a literal '.' octet is unrepresentable in the dotted-string form (one
// label "a.b" reads identically to two labels), so the decoder must
// reject it rather than hand the encoder an ambiguous name.
func TestDecodeRejectsDotInLabel(t *testing.T) {
	wire := []byte("\x00\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00" + "\x03a.b\x00" + "\x00\x0c\x00\x01")
	var m Message
	if err := DecodeInto(wire, &m); err != ErrDotInLabel {
		t.Errorf("DecodeInto = %v, want ErrDotInLabel", err)
	}
}
