// Package analysis implements the paper's §VI measurement analytics over
// classified backscatter: footprint distributions (Fig 9), top-N class
// mixes (Fig 10, Table V), longitudinal trends and churn (Figs 11-15),
// scanner-team detection (§VI-B), classification-consistency ratios
// (Fig 8), and the power-law attenuation fit of Fig 4.
package analysis

import (
	"math"
	"sort"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/features"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/simtime"
)

// FootprintPoint is one point of the footprint-size distribution.
type FootprintPoint struct {
	Size int     // unique queriers per originator
	CCDF float64 // fraction of originators with footprint >= Size
}

// FootprintCCDF computes the complementary CDF of footprint sizes —
// Figure 9's log-log curve.
func FootprintCCDF(vs []*features.Vector) []FootprintPoint {
	if len(vs) == 0 {
		return nil
	}
	sizes := make([]int, len(vs))
	for i, v := range vs {
		sizes[i] = v.Queriers
	}
	sort.Ints(sizes)
	n := float64(len(sizes))
	var out []FootprintPoint
	for i := 0; i < len(sizes); {
		j := i
		for j < len(sizes) && sizes[j] == sizes[i] {
			j++
		}
		out = append(out, FootprintPoint{Size: sizes[i], CCDF: float64(len(sizes)-i) / n})
		i = j
	}
	return out
}

// ClassCounts tallies originators per class (Table V rows).
func ClassCounts(classes map[ipaddr.Addr]activity.Class) [activity.NumClasses]int {
	var out [activity.NumClasses]int
	for _, c := range classes {
		out[c]++
	}
	return out
}

// ClassFractions returns the per-class share among the top-n ranked
// originators (Figure 10). ranked is footprint-descending; originators
// missing from classes are skipped.
func ClassFractions(classes map[ipaddr.Addr]activity.Class, ranked []ipaddr.Addr, n int) [activity.NumClasses]float64 {
	var counts [activity.NumClasses]int
	total := 0
	if n > len(ranked) {
		n = len(ranked)
	}
	for _, a := range ranked[:n] {
		c, ok := classes[a]
		if !ok {
			continue
		}
		counts[c]++
		total++
	}
	var out [activity.NumClasses]float64
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// ChurnPoint is one week of Figure 15: scanners new this week, continuing
// from last week, and departed since last week.
type ChurnPoint struct {
	Week       int
	New        int
	Continuing int
	Departing  int
}

// Churn computes week-by-week membership churn for one class given each
// week's classifications.
func Churn(perWeek []map[ipaddr.Addr]activity.Class, cls activity.Class) []ChurnPoint {
	members := func(m map[ipaddr.Addr]activity.Class) map[ipaddr.Addr]struct{} {
		out := make(map[ipaddr.Addr]struct{})
		for a, c := range m {
			if c == cls {
				out[a] = struct{}{}
			}
		}
		return out
	}
	var out []ChurnPoint
	var prev map[ipaddr.Addr]struct{}
	for w, week := range perWeek {
		cur := members(week)
		p := ChurnPoint{Week: w}
		for a := range cur {
			if _, ok := prev[a]; ok {
				p.Continuing++
			} else {
				p.New++
			}
		}
		for a := range prev {
			if _, ok := cur[a]; !ok {
				p.Departing++
			}
		}
		out = append(out, p)
		prev = cur
	}
	return out
}

// TeamStats summarizes coordinated scanning by /24 blocks (§VI-B).
type TeamStats struct {
	UniqueScanners   int // originators classified scan
	Blocks           int // distinct /24 blocks containing a scanner
	BlocksWithNPlus  int // blocks with >= N originators of any class
	SameClassBlocks  int // of those, blocks whose originators are all scan
	MixedClassBlocks int // blocks with N+ originators spanning classes
}

// ScannerTeams analyzes /24 co-location: blocks with minMembers or more
// originators suggest teams; same-class blocks are the strong candidates.
func ScannerTeams(classes map[ipaddr.Addr]activity.Class, minMembers int) TeamStats {
	byBlock := make(map[uint32][]activity.Class)
	var st TeamStats
	for a, c := range classes {
		byBlock[a.Slash24()] = append(byBlock[a.Slash24()], c)
		if c == activity.Scan {
			st.UniqueScanners++
		}
	}
	for _, members := range byBlock {
		hasScan := false
		allScan := true
		for _, c := range members {
			if c == activity.Scan {
				hasScan = true
			} else {
				allScan = false
			}
		}
		if hasScan {
			st.Blocks++
		}
		if len(members) >= minMembers && hasScan {
			st.BlocksWithNPlus++
			if allScan {
				st.SameClassBlocks++
			} else {
				st.MixedClassBlocks++
			}
		}
	}
	return st
}

// MajorityRatio computes r for one originator: the fraction of appearing
// weeks in which its most common class was assigned (Fig 8). It returns
// (r, weeksPresent).
func MajorityRatio(perWeek []map[ipaddr.Addr]activity.Class, a ipaddr.Addr) (float64, int) {
	var counts [activity.NumClasses]int
	present := 0
	for _, week := range perWeek {
		if c, ok := week[a]; ok {
			counts[c]++
			present++
		}
	}
	if present == 0 {
		return 0, 0
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	return float64(best) / float64(present), present
}

// ConsistencyCDF returns the sorted r values of all originators appearing
// in at least minWeeks weeks — the CDF input of Figure 8.
func ConsistencyCDF(perWeek []map[ipaddr.Addr]activity.Class, minWeeks int) []float64 {
	seen := make(map[ipaddr.Addr]struct{})
	for _, week := range perWeek {
		for a := range week {
			seen[a] = struct{}{}
		}
	}
	var rs []float64
	for a := range seen {
		r, present := MajorityRatio(perWeek, a)
		if present >= minWeeks {
			rs = append(rs, r)
		}
	}
	sort.Float64s(rs)
	return rs
}

// FractionAtLeast returns the share of sorted values >= x.
func FractionAtLeast(sorted []float64, x float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(sorted, x)
	return float64(len(sorted)-i) / float64(len(sorted))
}

// PowerLawFit fits y = c * x^alpha by least squares in log-log space,
// ignoring non-positive points. It returns (c, alpha).
func PowerLawFit(xs, ys []float64) (c, alpha float64) {
	var sx, sy, sxx, sxy float64
	n := 0.0
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return 0, 0
	}
	alpha = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	c = math.Exp((sy - alpha*sx) / n)
	return c, alpha
}

// BoxStats are the quantiles of Figure 12's box plot.
type BoxStats struct {
	P10, P25, P50, P75, P90 float64
	N                       int
}

// Quantiles computes box-plot statistics with linear interpolation.
func Quantiles(xs []float64) BoxStats {
	if len(xs) == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		pos := p * float64(len(s)-1)
		lo := int(pos)
		if lo >= len(s)-1 {
			return s[len(s)-1]
		}
		frac := pos - float64(lo)
		return s[lo]*(1-frac) + s[lo+1]*frac
	}
	return BoxStats{P10: q(0.10), P25: q(0.25), P50: q(0.50), P75: q(0.75), P90: q(0.90), N: len(s)}
}

// TimeSeries counts records per bucket for one originator, for the diurnal
// plots of Figure 16 (and per-scanner series of Figure 13). It returns
// counts for ceil(total/bucket) buckets from start.
func TimeSeries(recs []dnslog.Record, orig ipaddr.Addr, start simtime.Time, total, bucket simtime.Duration) []int {
	n := int((total + bucket - 1) / bucket)
	out := make([]int, n)
	for _, r := range recs {
		if r.Originator != orig || r.Time.Before(start) {
			continue
		}
		i := int(r.Time.Sub(start) / bucket)
		if i < n {
			out[i]++
		}
	}
	return out
}

// UniqueQueriersPerWeek returns an originator's weekly footprint series
// (Figure 13's y-axis).
func UniqueQueriersPerWeek(recs []dnslog.Record, orig ipaddr.Addr, start simtime.Time, weeks int) []int {
	sets := make([]map[ipaddr.Addr]struct{}, weeks)
	for i := range sets {
		sets[i] = make(map[ipaddr.Addr]struct{})
	}
	for _, r := range recs {
		if r.Originator != orig || r.Time.Before(start) {
			continue
		}
		i := int(r.Time.Sub(start) / simtime.Week)
		if i < weeks {
			sets[i][r.Querier] = struct{}{}
		}
	}
	out := make([]int, weeks)
	for i, s := range sets {
		out[i] = len(s)
	}
	return out
}

// DiurnalAmplitude measures how diurnal a bucketed series is: the relative
// amplitude of the best-fit 24 h sinusoid, 0 (flat) to ~1 (fully diurnal).
// Buckets must evenly divide 24 h for the fit to be meaningful.
func DiurnalAmplitude(series []int, bucket simtime.Duration) float64 {
	if len(series) == 0 {
		return 0
	}
	perDay := float64(24*simtime.Hour) / float64(bucket)
	var mean float64
	for _, v := range series {
		mean += float64(v)
	}
	mean /= float64(len(series))
	if mean == 0 {
		return 0
	}
	var a, b float64
	for i, v := range series {
		phase := 2 * math.Pi * float64(i) / perDay
		a += (float64(v) - mean) * math.Cos(phase)
		b += (float64(v) - mean) * math.Sin(phase)
	}
	a /= float64(len(series)) / 2
	b /= float64(len(series)) / 2
	return math.Hypot(a, b) / mean
}
