package analysis

import (
	"math"
	"testing"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/features"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

func vecs(sizes ...int) []*features.Vector {
	out := make([]*features.Vector, len(sizes))
	for i, s := range sizes {
		out[i] = &features.Vector{Originator: ipaddr.Addr(i + 1), Queriers: s}
	}
	return out
}

func TestFootprintCCDF(t *testing.T) {
	pts := FootprintCCDF(vecs(10, 10, 20, 40))
	if len(pts) != 3 {
		t.Fatalf("%d points, want 3", len(pts))
	}
	if pts[0].Size != 10 || math.Abs(pts[0].CCDF-1.0) > 1e-9 {
		t.Errorf("first point %+v", pts[0])
	}
	if pts[1].Size != 20 || math.Abs(pts[1].CCDF-0.5) > 1e-9 {
		t.Errorf("second point %+v", pts[1])
	}
	if pts[2].Size != 40 || math.Abs(pts[2].CCDF-0.25) > 1e-9 {
		t.Errorf("third point %+v", pts[2])
	}
	if FootprintCCDF(nil) != nil {
		t.Error("empty input must give nil")
	}
}

func TestClassCountsAndFractions(t *testing.T) {
	classes := map[ipaddr.Addr]activity.Class{
		1: activity.Spam, 2: activity.Spam, 3: activity.Scan, 4: activity.Mail,
	}
	counts := ClassCounts(classes)
	if counts[activity.Spam] != 2 || counts[activity.Scan] != 1 {
		t.Errorf("counts = %v", counts)
	}
	ranked := []ipaddr.Addr{1, 3, 2, 4}
	fr := ClassFractions(classes, ranked, 2)
	if math.Abs(fr[activity.Spam]-0.5) > 1e-9 || math.Abs(fr[activity.Scan]-0.5) > 1e-9 {
		t.Errorf("top-2 fractions = %v", fr)
	}
	// Unclassified addresses are skipped.
	fr = ClassFractions(classes, []ipaddr.Addr{1, 99}, 2)
	if math.Abs(fr[activity.Spam]-1.0) > 1e-9 {
		t.Errorf("skip-unclassified fractions = %v", fr)
	}
	if fr := ClassFractions(classes, nil, 5); fr[activity.Spam] != 0 {
		t.Error("empty ranked must give zeros")
	}
}

func TestChurn(t *testing.T) {
	s := activity.Scan
	weeks := []map[ipaddr.Addr]activity.Class{
		{1: s, 2: s, 9: activity.Mail},
		{2: s, 3: s},
		{3: s},
	}
	pts := Churn(weeks, s)
	if len(pts) != 3 {
		t.Fatal("wrong length")
	}
	if pts[0].New != 2 || pts[0].Continuing != 0 || pts[0].Departing != 0 {
		t.Errorf("week 0: %+v", pts[0])
	}
	if pts[1].New != 1 || pts[1].Continuing != 1 || pts[1].Departing != 1 {
		t.Errorf("week 1: %+v", pts[1])
	}
	if pts[2].New != 0 || pts[2].Continuing != 1 || pts[2].Departing != 1 {
		t.Errorf("week 2: %+v", pts[2])
	}
}

func TestScannerTeams(t *testing.T) {
	mk := func(block byte, host byte) ipaddr.Addr { return ipaddr.FromOctets(10, 0, block, host) }
	classes := map[ipaddr.Addr]activity.Class{
		// Block 1: four scanners (a same-class team).
		mk(1, 1): activity.Scan, mk(1, 2): activity.Scan, mk(1, 3): activity.Scan, mk(1, 4): activity.Scan,
		// Block 2: four originators, mixed classes.
		mk(2, 1): activity.Scan, mk(2, 2): activity.Scan, mk(2, 3): activity.Spam, mk(2, 4): activity.Mail,
		// Block 3: lone scanner.
		mk(3, 1): activity.Scan,
	}
	st := ScannerTeams(classes, 4)
	if st.UniqueScanners != 7 {
		t.Errorf("UniqueScanners = %d", st.UniqueScanners)
	}
	if st.Blocks != 3 {
		t.Errorf("Blocks = %d", st.Blocks)
	}
	if st.BlocksWithNPlus != 2 || st.SameClassBlocks != 1 || st.MixedClassBlocks != 1 {
		t.Errorf("teams = %+v", st)
	}
}

func TestMajorityRatioAndCDF(t *testing.T) {
	weeks := []map[ipaddr.Addr]activity.Class{
		{1: activity.Scan, 2: activity.Scan},
		{1: activity.Scan, 2: activity.Spam},
		{1: activity.Scan, 2: activity.Scan},
		{1: activity.Scan, 2: activity.Mail},
	}
	r, present := MajorityRatio(weeks, 1)
	if r != 1 || present != 4 {
		t.Errorf("consistent originator: r=%v present=%d", r, present)
	}
	r, present = MajorityRatio(weeks, 2)
	if math.Abs(r-0.5) > 1e-9 || present != 4 {
		t.Errorf("flapping originator: r=%v present=%d", r, present)
	}
	if _, present := MajorityRatio(weeks, 99); present != 0 {
		t.Error("absent originator present != 0")
	}
	rs := ConsistencyCDF(weeks, 4)
	if len(rs) != 2 || rs[0] != 0.5 || rs[1] != 1 {
		t.Errorf("CDF values = %v", rs)
	}
	if got := FractionAtLeast(rs, 0.6); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("FractionAtLeast(0.6) = %v", got)
	}
	if got := FractionAtLeast(nil, 0.5); got != 0 {
		t.Error("empty FractionAtLeast != 0")
	}
	// minWeeks filter.
	if got := ConsistencyCDF(weeks, 5); len(got) != 0 {
		t.Error("minWeeks filter failed")
	}
}

func TestPowerLawFit(t *testing.T) {
	// y = 3 x^0.71 exactly.
	var xs, ys []float64
	for _, x := range []float64{10, 100, 1e3, 1e4, 1e5} {
		xs = append(xs, x)
		ys = append(ys, 3*math.Pow(x, 0.71))
	}
	c, alpha := PowerLawFit(xs, ys)
	if math.Abs(alpha-0.71) > 1e-9 || math.Abs(c-3) > 1e-9 {
		t.Errorf("fit = (%v, %v), want (3, 0.71)", c, alpha)
	}
	// Noisy fit stays close.
	st := rng.New(5)
	for i := range ys {
		ys[i] *= 1 + 0.1*st.NormFloat64()
	}
	_, alpha = PowerLawFit(xs, ys)
	if math.Abs(alpha-0.71) > 0.1 {
		t.Errorf("noisy fit alpha = %v", alpha)
	}
	// Degenerate input.
	if c, a := PowerLawFit([]float64{1}, []float64{1}); c != 0 || a != 0 {
		t.Error("single point fit should be zero")
	}
	// Non-positive points ignored.
	c, alpha = PowerLawFit([]float64{0, 10, 100}, []float64{5, 3 * math.Pow(10, 0.71), 3 * math.Pow(100, 0.71)})
	if math.Abs(alpha-0.71) > 1e-9 {
		t.Errorf("fit with zero x = %v", alpha)
	}
}

func TestQuantiles(t *testing.T) {
	var xs []float64
	for i := 1; i <= 100; i++ {
		xs = append(xs, float64(i))
	}
	q := Quantiles(xs)
	if q.N != 100 {
		t.Errorf("N = %d", q.N)
	}
	if math.Abs(q.P50-50.5) > 1e-9 {
		t.Errorf("median = %v", q.P50)
	}
	if q.P10 >= q.P25 || q.P25 >= q.P50 || q.P50 >= q.P75 || q.P75 >= q.P90 {
		t.Errorf("quantiles not monotone: %+v", q)
	}
	if z := Quantiles(nil); z.N != 0 {
		t.Error("empty quantiles")
	}
	one := Quantiles([]float64{7})
	if one.P10 != 7 || one.P90 != 7 {
		t.Errorf("singleton quantiles = %+v", one)
	}
}

func TestTimeSeries(t *testing.T) {
	o := ipaddr.MustParse("1.2.3.4")
	recs := []dnslog.Record{
		{Time: 0, Originator: o},
		{Time: 100, Originator: o},
		{Time: 3700, Originator: o},
		{Time: 100, Originator: ipaddr.MustParse("9.9.9.9")},
		{Time: -5, Originator: o},     // before window
		{Time: 999999, Originator: o}, // after window
	}
	series := TimeSeries(recs, o, 0, 2*simtime.Hour, simtime.Hour)
	if len(series) != 2 || series[0] != 2 || series[1] != 1 {
		t.Errorf("series = %v", series)
	}
}

func TestUniqueQueriersPerWeek(t *testing.T) {
	o := ipaddr.MustParse("1.2.3.4")
	wk := simtime.Time(simtime.Week)
	recs := []dnslog.Record{
		{Time: 0, Originator: o, Querier: 1},
		{Time: 1, Originator: o, Querier: 1}, // duplicate querier
		{Time: 2, Originator: o, Querier: 2},
		{Time: wk + 1, Originator: o, Querier: 1},
	}
	got := UniqueQueriersPerWeek(recs, o, 0, 2)
	if got[0] != 2 || got[1] != 1 {
		t.Errorf("weekly queriers = %v", got)
	}
}

func TestDiurnalAmplitude(t *testing.T) {
	bucket := simtime.Hour
	flat := make([]int, 48)
	diurnal := make([]int, 48)
	for i := range flat {
		flat[i] = 100
		diurnal[i] = 100 + int(90*math.Cos(2*math.Pi*float64(i)/24))
	}
	if a := DiurnalAmplitude(flat, bucket); a > 0.05 {
		t.Errorf("flat amplitude = %v", a)
	}
	if a := DiurnalAmplitude(diurnal, bucket); a < 0.7 {
		t.Errorf("diurnal amplitude = %v", a)
	}
	if DiurnalAmplitude(nil, bucket) != 0 || DiurnalAmplitude([]int{0, 0}, bucket) != 0 {
		t.Error("degenerate amplitude not zero")
	}
}
