// Package world composes the substrates — geo registry, querier naming,
// activity campaigns, and the DNS hierarchy — into a seeded synthetic
// Internet that produces DNS backscatter.
//
// This package is the substitution for the paper's closed operational
// traces (§III-G): instead of replaying JP-DNS/B-Root/M-Root captures, a
// World simulates the generative process those captures recorded. Running
// a world fills the attached sensors with (originator, querier, authority)
// records; the world also retains ground truth (which originator ran which
// class) that downstream packages use the way the paper used blacklists,
// darknets, and manual curation.
package world

import (
	"fmt"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/darknet"
	"dnsbackscatter/internal/dnssim"
	"dnsbackscatter/internal/faults"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
	"dnsbackscatter/internal/trace"
)

// Burst injects extra campaigns over a window — Heartbleed-style reactions
// to security events (§VI-C: scanning jumps ~25% after 2014-04-07).
type Burst struct {
	Class    activity.Class
	Port     string // for scan bursts, e.g. "tcp443"
	Start    simtime.Time
	Duration simtime.Duration
	Extra    int // additional concurrent campaigns at the burst peak
}

// Config parameterizes a world.
type Config struct {
	Seed     uint64
	Start    simtime.Time
	Duration simtime.Duration

	// ClassPopulation is the steady-state number of concurrently active
	// campaigns per class. Classes with 0 never appear.
	ClassPopulation [activity.NumClasses]int

	// RateScale multiplies every campaign's touch rate; long datasets
	// use < 1 to keep event counts laptop-sized. Default 1.
	RateScale float64

	// JPShare is the probability a campaign's home country is jp,
	// overriding the global weights (the paper's JP-ditl needs a strong
	// population of jp-space originators). 0 uses geography alone.
	JPShare float64

	// QuerierRanks is the pool depth per (category, country). Default 4096.
	QuerierRanks int
	// ZipfS is the querier popularity exponent; unique queriers grow as
	// draws^(1/ZipfS), giving Figure 4's sublinear footprint. Default 1.4.
	ZipfS float64

	// MSample is the M-Root sensor's sampling divisor (M-sampled is 10).
	// 1 or 0 records everything.
	MSample int

	// Teams is the probability a new scan campaign spawns as a
	// coordinated /24 team (§VI-B).
	Teams float64

	Bursts []Burst

	// Hierarchy overrides dnssim caching parameters when non-zero.
	Hierarchy dnssim.Config

	// Faults, when non-nil, degrades the DNS path with the plan's seeded
	// schedule of losses, latency, truncation, SERVFAILs, and dead
	// authorities. The schedule is a pure function of (profile, seed), so
	// a faulted world replays byte-identically at any worker count.
	Faults *faults.Plan

	// DarknetSlash8 places the paper's /17+/18 darknets in that /8 and
	// enables darknet observation of scan/p2p raw probes. 0 disables.
	DarknetSlash8 byte
	// RawProbesPerTouch converts one reaction-producing touch into the
	// raw probe volume behind it for darknet thinning. Default 2000 for
	// scans, 100 for p2p.
	RawProbesPerTouch float64

	// QMinFraction is the share of resolvers performing QNAME
	// minimization (RFC 7816); minimized lookups are invisible to root
	// and national sensors. The paper's §VII flags this as a future
	// constraint on backscatter; 0 matches the 2014-era measurements.
	QMinFraction float64
}

// DefaultConfig returns a small world good for tests and examples: two
// simulated days, a few dozen campaigns per major class.
func DefaultConfig() Config {
	var pop [activity.NumClasses]int
	pop[activity.Spam] = 30
	pop[activity.Scan] = 25
	pop[activity.Mail] = 20
	pop[activity.CDN] = 12
	pop[activity.AdTracker] = 8
	pop[activity.Cloud] = 8
	pop[activity.Crawler] = 6
	pop[activity.DNSServer] = 6
	pop[activity.NTP] = 4
	pop[activity.P2P] = 10
	pop[activity.Push] = 5
	pop[activity.Update] = 3
	return Config{
		Seed:            1,
		Start:           simtime.Date(2014, 4, 15, 11, 0),
		Duration:        simtime.Hours(50),
		ClassPopulation: pop,
		RateScale:       1,
		JPShare:         0.25,
		QuerierRanks:    4096,
		ZipfS:           1.4,
		MSample:         1,
		Teams:           0.08,
		Hierarchy:       dnssim.DefaultConfig(),
	}
}

// Originator ground truth retained by the world.
type Truth struct {
	Class activity.Class
	Port  string // scan port label, if any
	Team  int    // scanner team id, 0 = none
}

// World is a runnable synthetic Internet.
type World struct {
	Cfg  Config
	Geo  *geo.Registry
	Hier *dnssim.Hierarchy

	// Sensors. BRoot/MRoot always exist; National holds one sensor per
	// country that was attached (jp by default).
	BRoot    *dnssim.Sensor
	MRoot    *dnssim.Sensor
	National map[string]*dnssim.Sensor
	Finals   map[uint16]*dnssim.Sensor

	Campaigns []*activity.Campaign

	// Dark is non-nil when Config.DarknetSlash8 is set; it accumulates
	// the external scan evidence of Appendix A.
	Dark *darknet.Darknet

	pool     *querierPool
	truth    map[ipaddr.Addr]Truth
	mixes    map[ipaddr.Addr]classMix
	profiles map[ipaddr.Addr]dnssim.OriginatorProfile
	src      *rng.Source
	spawnSt  *rng.Stream
	darkSt   *rng.Stream
	nextTeam int

	m *worldMetrics

	ran bool
}

// worldMetrics holds the world's pre-resolved counters and gauges. All
// methods are no-ops on a nil receiver.
type worldMetrics struct {
	reg       *obs.Registry
	events    *obs.Counter
	deaths    *obs.Counter
	births    [activity.NumClasses]*obs.Counter
	campaigns *obs.Gauge
	queriers  *obs.Gauge
}

// SetMetrics instruments the world and everything beneath it: activity
// events (world_events_total), campaign births per class
// (world_campaign_births_total{class=...}), campaigns ending inside the
// simulated span (world_campaign_deaths_total), population gauges
// (world_campaigns, world_queriers), plus the hierarchy's per-level query
// counters and the shared resolver-cache counters. Call it before Run; a
// nil registry uninstruments. The counters are pure functions of the world
// seed and config, so two identically configured worlds produce identical
// snapshots.
func (w *World) SetMetrics(reg *obs.Registry) {
	w.Hier.SetMetrics(reg)
	w.pool.setMetrics(reg)
	if reg == nil {
		w.m = nil
		return
	}
	m := &worldMetrics{
		reg:       reg,
		events:    reg.Counter("world_events_total"),
		deaths:    reg.Counter("world_campaign_deaths_total"),
		campaigns: reg.Gauge("world_campaigns"),
		queriers:  reg.Gauge("world_queriers"),
	}
	for cls := activity.Class(0); cls < activity.NumClasses; cls++ {
		m.births[cls] = reg.Counter("world_campaign_births_total",
			obs.L("class", cls.String()))
	}
	w.m = m
}

// SetTracer installs the end-to-end lookup tracer on the DNS hierarchy;
// every activity-driven reverse lookup then begins a trace annotated with
// its campaign class and port. Nil removes it.
func (w *World) SetTracer(t *trace.Tracer) { w.Hier.SetTracer(t) }

func (m *worldMetrics) event(now simtime.Time) {
	if m != nil {
		m.events.IncAt(now)
	}
}

func (m *worldMetrics) birth(cls activity.Class, now simtime.Time) {
	if m != nil {
		m.births[cls].IncAt(now)
	}
}

// New builds a world from cfg. Sensors are attached but empty until Run.
func New(cfg Config) *World {
	if cfg.RateScale <= 0 {
		cfg.RateScale = 1
	}
	if cfg.QuerierRanks <= 0 {
		cfg.QuerierRanks = 4096
	}
	if cfg.ZipfS <= 1.01 {
		cfg.ZipfS = 1.4
	}
	if cfg.MSample < 1 {
		cfg.MSample = 1
	}
	if cfg.Hierarchy == (dnssim.Config{}) {
		cfg.Hierarchy = dnssim.DefaultConfig()
	}
	src := rng.NewSource(cfg.Seed)
	g := geo.NewRegistry(cfg.Seed)
	w := &World{
		Cfg:      cfg,
		Geo:      g,
		National: make(map[string]*dnssim.Sensor),
		Finals:   make(map[uint16]*dnssim.Sensor),
		truth:    make(map[ipaddr.Addr]Truth),
		mixes:    make(map[ipaddr.Addr]classMix),
		profiles: make(map[ipaddr.Addr]dnssim.OriginatorProfile),
		src:      src,
		spawnSt:  src.Stream("spawn"),
		nextTeam: 1,
	}
	if cfg.DarknetSlash8 != 0 {
		w.Dark = darknet.NewPaperDarknets(cfg.DarknetSlash8)
		w.darkSt = src.Stream("darknet")
	}
	w.Hier = dnssim.NewHierarchy(g, cfg.Hierarchy, w.profileFor)
	w.Hier.SetFaults(cfg.Faults)
	end := cfg.Start.Add(cfg.Duration)
	w.BRoot = dnssim.NewSensor("b-root", 1)
	w.BRoot.End = end
	w.MRoot = dnssim.NewSensor("m-root", cfg.MSample)
	w.MRoot.End = end
	w.Hier.AttachRoots(w.BRoot, w.MRoot)
	w.AttachNational("jp")
	w.pool = newQuerierPool(g, src, cfg.QuerierRanks, cfg.ZipfS)
	w.pool.qminFraction = cfg.QMinFraction
	return w
}

// AttachNational adds a sensor for one country's registry zone.
func (w *World) AttachNational(country string) *dnssim.Sensor {
	if s, ok := w.National[country]; ok {
		return s
	}
	s := dnssim.NewSensor(country, 1)
	s.End = w.Cfg.Start.Add(w.Cfg.Duration)
	w.National[country] = s
	w.Hier.AttachNational(country, s)
	return s
}

// AttachFinal instruments the final authority of a /16 reverse zone.
func (w *World) AttachFinal(slash16 uint16) *dnssim.Sensor {
	if s, ok := w.Finals[slash16]; ok {
		return s
	}
	s := dnssim.NewSensor(fmt.Sprintf("final-%04x", slash16), 1)
	s.End = w.Cfg.Start.Add(w.Cfg.Duration)
	w.Finals[slash16] = s
	w.Hier.AttachFinal(slash16, s)
	return s
}

// Truth returns the ground-truth record for an originator, if it ran a
// campaign in this world.
func (w *World) Truth(a ipaddr.Addr) (Truth, bool) {
	t, ok := w.truth[a]
	return t, ok
}

// TruthMap exposes the full ground truth (read-only by convention).
func (w *World) TruthMap() map[ipaddr.Addr]Truth { return w.truth }

// QuerierName returns the reverse name of a querier observed in the logs,
// plus whether the querier's own reverse zone is unreachable. This is the
// lookup the sensor performs when computing static features.
func (w *World) QuerierName(a ipaddr.Addr) (name string, unreach bool) {
	return w.pool.nameOf(a)
}

// QuerierCountry returns the country of a querier (used by spatial
// features via the same geo registry the sensor would consult).
func (w *World) QuerierCountry(a ipaddr.Addr) string { return w.Geo.Country(a) }

// profileFor answers the hierarchy's profile queries: campaign originators
// get class-flavored profiles assigned at spawn; everything else falls back
// to the default distribution.
func (w *World) profileFor(a ipaddr.Addr) dnssim.OriginatorProfile {
	if p, ok := w.profiles[a]; ok {
		return p
	}
	return dnssim.DefaultProfile(a)
}

// SetProfile overrides the reverse-DNS profile of one originator (the
// controlled-scan driver sets TTL 0 on its prober).
func (w *World) SetProfile(a ipaddr.Addr, p dnssim.OriginatorProfile) {
	w.profiles[a] = p
}

// ProfileOf reports the reverse-DNS posture of an originator — the TTL /
// nxdomain / unreachable flavor shown in the paper's Tables VII and VIII.
func (w *World) ProfileOf(a ipaddr.Addr) dnssim.OriginatorProfile {
	return w.profileFor(a)
}

// homeCountry draws a campaign's home country.
func (w *World) homeCountry(st *rng.Stream) string {
	if w.Cfg.JPShare > 0 && st.Bool(w.Cfg.JPShare) {
		return "jp"
	}
	total := 0
	for _, c := range geo.Countries {
		total += c.Weight
	}
	pick := st.Intn(total)
	for _, c := range geo.Countries {
		if pick < c.Weight {
			return c.Code
		}
		pick -= c.Weight
	}
	return "us"
}

// originatorIn draws an unused originator address in the given country.
func (w *World) originatorIn(country string, st *rng.Stream) ipaddr.Addr {
	for i := 0; i < 64; i++ {
		a, ok := w.Geo.RandomAddrIn(country, st)
		if !ok {
			a = ipaddr.Addr(st.Uint64())
		}
		if _, taken := w.truth[a]; !taken {
			return a
		}
	}
	// Extremely unlikely at simulation scales; accept a collision.
	a, _ := w.Geo.RandomAddrIn(country, st)
	return a
}
