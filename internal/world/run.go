package world

import (
	"math"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/dnssim"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/qname"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

// pickTarget is the TargetFunc campaigns use: global draws cover the whole
// allocated space, local draws stay in the campaign's home country.
func (w *World) pickTarget(global bool, home string, st *rng.Stream) ipaddr.Addr {
	if !global {
		if a, ok := w.Geo.RandomAddrIn(home, st); ok {
			return a
		}
	}
	return ipaddr.Addr(st.Uint64())
}

// touch routes one activity event through the reacting querier's resolver,
// producing backscatter at whichever authorities see the lookup. Scanning
// and misbehaving-P2P touches also feed the darknet: each touch stands for
// a much larger raw probe volume, thinned at the darknet's space fraction.
func (w *World) touch(c *activity.Campaign, e activity.Event) {
	w.m.event(e.Time)
	mix := w.mixes[c.Originator]
	q := w.pool.forTarget(c.Originator, &mix, e.Target)
	// Begin the lookup's trace here rather than inside Resolve so the
	// campaign activity that provoked it is annotated on the span.
	tc := w.Hier.Tracer().Begin(q.Resolver.Addr, c.Originator, e.Time)
	tc.Activity(c.Class.String(), c.Port)
	w.Hier.ResolveTraced(q.Resolver, c.Originator, e.Time, tc)
	// TTL-violating queriers re-resolve while handling one event (log
	// flushes, per-connection lookups); their repeats are what push the
	// paper's queries-per-querier to 3-5 for hammering activity.
	if ttl := q.Resolver.MaxPTRTTL; ttl > 0 {
		end := w.Cfg.Start.Add(w.Cfg.Duration)
		requeries := 1
		if q.Category == qname.FW || q.Category == qname.Home {
			requeries = 3 // per-connection log lookups
		}
		for k := 1; k <= requeries; k++ {
			rt := e.Time.Add(simtime.Duration(k) * (ttl + 30))
			if !rt.Before(end) {
				break
			}
			w.Hier.Resolve(q.Resolver, c.Originator, rt)
		}
	}
	if w.Dark != nil {
		switch c.Class {
		case activity.Scan:
			raw := w.Cfg.RawProbesPerTouch
			if raw <= 0 {
				raw = 2000
			}
			w.Dark.ObserveThinned(c.Originator, raw, w.darkSt)
		case activity.P2P:
			raw := w.Cfg.RawProbesPerTouch / 20
			if raw <= 0 {
				raw = 100
			}
			w.Dark.ObserveThinned(c.Originator, raw, w.darkSt)
		default:
			w.Dark.Observe(c.Originator, e.Target)
		}
	}
}

// profileForClass flavors an originator's reverse-DNS posture by class,
// echoing the TTL/nxdomain/unreachable patterns of Tables VII and VIII
// (spammers on home-style or missing names, many scanners with dead or
// absent reverse zones, ad-trackers and CDNs on short TTLs).
func (w *World) profileForClass(cls activity.Class, orig ipaddr.Addr, st *rng.Stream) dnssim.OriginatorProfile {
	name := "origin-" + orig.String() + "." + w.Geo.CCTLD(orig)
	mk := func(ttl simtime.Duration) dnssim.OriginatorProfile {
		return dnssim.OriginatorProfile{HasName: true, Name: name, TTL: ttl, NegTTL: ttl / 2}
	}
	switch cls {
	case activity.Spam:
		switch {
		case st.Bool(0.55):
			return mk(simtime.Duration(8+st.Intn(17)) * simtime.Hour)
		case st.Bool(0.6):
			return dnssim.OriginatorProfile{NegTTL: simtime.Duration(10+st.Intn(50)) * simtime.Minute}
		default:
			return mk(simtime.Duration(10+st.Intn(50)) * simtime.Minute)
		}
	case activity.Scan:
		switch {
		case st.Bool(0.4):
			return dnssim.OriginatorProfile{NegTTL: simtime.Duration(1+st.Intn(48)) * simtime.Hour}
		case st.Bool(0.4):
			return dnssim.OriginatorProfile{FinalUnreachable: true}
		default:
			return mk(simtime.Duration(1+st.Intn(2)) * simtime.Day)
		}
	case activity.AdTracker:
		return mk(simtime.Duration(10+st.Intn(35)) * simtime.Minute)
	case activity.CDN:
		if st.Bool(0.3) {
			return dnssim.OriginatorProfile{FinalUnreachable: true} // Akamai-style hidden edges
		}
		return mk(simtime.Duration(1+st.Intn(10)) * simtime.Minute)
	default:
		return mk(simtime.Duration(1+st.Intn(24)) * simtime.Hour)
	}
}

// spawn creates one campaign (and its team-mates for coordinated scans),
// registering ground truth and the originator's DNS profile.
func (w *World) spawn(cls activity.Class, start simtime.Time, port string, maxEnd simtime.Time) {
	st := w.spawnSt
	home := w.homeCountry(st)
	if cls == activity.Update {
		home = "jp" // the paper's update services are JP vendor hosts
	}
	orig := w.originatorIn(home, st)
	c := activity.NewCampaign(cls, orig, start, home, st)
	c.TouchesPerHour *= w.Cfg.RateScale
	if port != "" {
		c.Port = port
	}
	if maxEnd != 0 && c.End.After(maxEnd) {
		c.End = maxEnd
	}

	team := 0
	if cls == activity.Scan && st.Bool(w.Cfg.Teams) {
		team = w.nextTeam
		w.nextTeam++
		// Coordinated scanning from one /24: a handful to >100 members
		// (§VI-C observes a 140-address ssh team). Cap relative to the
		// steady-state population so one team cannot swamp a downscaled
		// world's trend lines.
		size := 3 + int(st.Pareto(3, 1.3))
		if cap := 2*w.Cfg.ClassPopulation[activity.Scan] + 4; size > cap {
			size = cap
		}
		if size > 100 {
			size = 100
		}
		base := ipaddr.NewPrefix(orig, 24)
		for i := 0; i < size; i++ {
			member := base.Nth(uint64(st.Intn(256)))
			if _, taken := w.truth[member]; taken {
				continue
			}
			mc := activity.NewCampaign(cls, member, start, home, st)
			// Team members mostly probe below the founder's rate; only a
			// fraction of a real team clears the analyzability bar in any
			// one week.
			mc.TouchesPerHour = c.TouchesPerHour * 0.4 * (0.25 + st.Float64())
			mc.Port = c.Port
			mc.Team = team
			mc.End = c.End
			if maxEnd != 0 && mc.End.After(maxEnd) {
				mc.End = maxEnd
			}
			w.register(mc, st)
		}
	}
	c.Team = team
	w.register(c, st)
}

func (w *World) register(c *activity.Campaign, st *rng.Stream) {
	w.m.birth(c.Class, c.Start)
	w.Campaigns = append(w.Campaigns, c)
	w.truth[c.Originator] = Truth{Class: c.Class, Port: c.Port, Team: c.Team}
	w.profiles[c.Originator] = w.profileForClass(c.Class, c.Originator, st)
	// Each campaign reacts through a slightly different querier
	// population: blend toward one random other class.
	other := activity.Class(st.Intn(int(activity.NumClasses)))
	lambda := 0.1 + st.Float64()*0.5
	w.mixes[c.Originator] = blendMix(&classMixes[c.Class], &classMixes[other], lambda)
}

// Run simulates the configured span, filling every attached sensor. It is
// idempotent: a second call is a no-op.
func (w *World) Run() {
	if w.ran {
		return
	}
	w.ran = true

	// Initial population. Exponential lifetimes are memoryless, so fresh
	// spawns at t0 have exactly the steady-state residual-lifetime
	// distribution; the birth process below maintains the population.
	for cls := activity.Class(0); cls < activity.NumClasses; cls++ {
		for i := 0; i < w.Cfg.ClassPopulation[cls]; i++ {
			w.spawn(cls, w.Cfg.Start, "", 0)
		}
	}

	end := w.Cfg.Start.Add(w.Cfg.Duration)
	var events []activity.Event
	for day := w.Cfg.Start; day.Before(end); day = day.Add(simtime.Day) {
		dayEnd := day.Add(simtime.Day)
		if end.Before(dayEnd) {
			dayEnd = end
		}

		if day != w.Cfg.Start {
			w.births(day, dayEnd)
		}
		for _, b := range w.Cfg.Bursts {
			if !b.Start.Before(day) && b.Start.Before(dayEnd) {
				w.burst(b)
			}
		}

		for _, c := range w.Campaigns {
			if !c.Overlaps(day, dayEnd) {
				continue
			}
			events = c.EventsIn(day, dayEnd, w.pickTarget, events[:0])
			for _, e := range events {
				w.touch(c, e)
			}
		}
	}

	if w.m != nil {
		for _, c := range w.Campaigns {
			if c.End != 0 && c.End.Before(end) {
				w.m.deaths.IncAt(c.End)
			}
		}
		w.m.campaigns.SetAt(int64(len(w.Campaigns)), end)
		w.m.queriers.SetAt(int64(w.pool.size()), end)
	}
}

// births replaces departed campaigns to hold each class population steady.
func (w *World) births(day, dayEnd simtime.Time) {
	for cls := activity.Class(0); cls < activity.NumClasses; cls++ {
		pop := w.Cfg.ClassPopulation[cls]
		if pop == 0 {
			continue
		}
		meanDays := float64(activity.Templates[cls].MeanLifetime) / float64(simtime.Day)
		expected := float64(pop) / meanDays
		n := poissonDraw(w.spawnSt, expected)
		for i := 0; i < n; i++ {
			at := day.Add(simtime.Duration(w.spawnSt.Intn(int(dayEnd.Sub(day)))))
			w.spawn(cls, at, "", 0)
		}
	}
}

// burst injects the extra campaigns of a security-event reaction, with
// lifetimes bounded by the burst window.
func (w *World) burst(b Burst) {
	for i := 0; i < b.Extra; i++ {
		at := b.Start.Add(simtime.Duration(w.spawnSt.Float64() * 0.3 * float64(b.Duration)))
		w.spawn(b.Class, at, b.Port, b.Start.Add(b.Duration))
	}
}

// poissonDraw mirrors activity's internal sampler for the birth process.
func poissonDraw(st *rng.Stream, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*st.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= st.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// QuerierPoolSize reports how many distinct queriers have been
// materialized so far (diagnostics).
func (w *World) QuerierPoolSize() int { return w.pool.size() }
