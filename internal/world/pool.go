package world

import (
	"math"

	"dnsbackscatter/internal/dnssim"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/intern"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/obs"
	"dnsbackscatter/internal/qname"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

// Querier is one reacting party: the resolver that contacts authorities on
// behalf of targets (a shared ISP cache, a self-resolving mail server, a
// firewall doing log lookups, ...).
type Querier struct {
	Addr     ipaddr.Addr
	Category qname.Category
	Name     string // reverse name; empty for NXDomain/Unreach
	Country  string
	Resolver *dnssim.Resolver
}

// poolKey identifies a querier slot by (category, country, popularity
// rank), packed for cheap hashing on the per-touch hot path.
type poolKey struct {
	cat     qname.Category
	country int // index into geo.Countries
	rank    int
}

// querierPool lazily materializes the world's querier population. A slot's
// querier is a pure function of (world seed, category, country, rank), so
// pools are reproducible regardless of materialization order, and the same
// target always reaches the same querier.
type querierPool struct {
	geo          *geo.Registry
	seed         uint64
	ranks        int
	zipfS        float64
	qminFraction float64

	byKey  map[poolKey]*Querier
	byAddr map[ipaddr.Addr]*Querier

	// names canonicalizes the registered domains inside generated
	// querier names across the whole pool — one shared copy per
	// (word, org-id, ccTLD) instead of one per querier. Seeded from the
	// pool seed; value-transparent, so names are byte-identical with or
	// without it.
	names *intern.Table

	obs *obs.Registry // instruments resolver caches as slots materialize
}

// setMetrics instruments the caches of every materialized resolver and of
// all resolvers created afterwards; they aggregate under the shared
// "resolver" cache name. A nil registry stops instrumenting new slots
// (already-materialized resolvers keep their counters).
func (p *querierPool) setMetrics(reg *obs.Registry) {
	p.obs = reg
	if reg == nil {
		return
	}
	for _, q := range p.byAddr {
		q.Resolver.SetCacheMetrics(reg)
	}
}

func newQuerierPool(g *geo.Registry, src *rng.Source, ranks int, zipfS float64) *querierPool {
	seed := src.Stream("querier-pool").Uint64()
	return &querierPool{
		geo:    g,
		seed:   seed,
		ranks:  ranks,
		zipfS:  zipfS,
		byKey:  make(map[poolKey]*Querier),
		byAddr: make(map[ipaddr.Addr]*Querier),
		names:  intern.New(seed),
	}
}

func mix64(a, b uint64) uint64 {
	z := a ^ (b+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// get returns the querier for a slot, creating it on first use.
func (p *querierPool) get(k poolKey) *Querier {
	if q, ok := p.byKey[k]; ok {
		return q
	}
	st := rng.New(mix64(p.seed, mix64(uint64(k.cat)<<32|uint64(k.rank), uint64(k.country)+0x1b3)))

	// Draw an address in the country, avoiding collisions with already
	// materialized queriers (two slots must stay distinguishable).
	var addr ipaddr.Addr
	for i := 0; ; i++ {
		a, ok := p.geo.RandomAddrIn(geo.CountryCode(k.country), st)
		if !ok {
			a = ipaddr.Addr(st.Uint64())
		}
		if _, taken := p.byAddr[a]; !taken || i >= 32 {
			addr = a
			break
		}
	}

	gen := qname.NewGenerator(st)
	gen.Intern = p.names
	name := gen.Name(k.cat, addr, p.geo.CCTLD(addr))

	// Popular slots (low rank) and shared resolvers (NS category) carry
	// more background traffic, keeping the upper reverse tree warm.
	base := 0.10
	if k.cat == qname.NS {
		base = 0.55
	}
	popularity := 1 / (1 + float64(k.rank)/50)
	busy := base + 0.4*popularity
	if busy > 0.97 {
		busy = 0.97
	}

	q := &Querier{
		Addr:     addr,
		Category: k.cat,
		Name:     name,
		Country:  geo.CountryCode(k.country),
		Resolver: dnssim.NewResolver(addr, busy, preferM(p.geo.Region(addr)), 2048, rng.New(st.Uint64())),
	}
	// Some queriers ignore DNS timeout rules and re-query aggressively
	// (§III-C). Firewalls and home gear logging per connection are the
	// usual offenders; shared resolvers and real mail servers cache
	// properly.
	violator := 0.25
	switch k.cat {
	case qname.NS:
		violator = 0.03
	case qname.Mail, qname.Antispam:
		violator = 0.10
	case qname.FW:
		violator = 0.55
	case qname.Home:
		violator = 0.45
	}
	if st.Bool(violator) {
		q.Resolver.MaxPTRTTL = simtime.Duration(60 + st.Intn(240))
		q.Resolver.RetransmitProb = 0.35
	}
	if p.qminFraction > 0 && st.Bool(p.qminFraction) {
		q.Resolver.QNameMin = true
	}
	if p.obs != nil {
		q.Resolver.SetCacheMetrics(p.obs)
	}
	p.byKey[k] = q
	p.byAddr[addr] = q
	return q
}

// preferM maps a querier's region to its probability of reaching M-Root
// (anycast in Asia/Europe/NA) rather than B-Root (US west coast only).
func preferM(region string) float64 {
	switch region {
	case "asia":
		return 0.85
	case "oceania":
		return 0.7
	case "europe":
		return 0.6
	case "africa":
		return 0.55
	case "south-america":
		return 0.35
	default: // north-america
		return 0.25
	}
}

// forTarget maps a touched target to its querier. The category comes from
// the originator's campaign mix, keyed by (originator, target) so that
// re-touching a target reaches the same querier; the popularity rank is
// keyed by the target alone, so shared resolvers absorb many targets
// across campaigns.
func (p *querierPool) forTarget(orig ipaddr.Addr, mix *classMix, target ipaddr.Addr) *Querier {
	h := mix64(p.seed^uint64(orig), uint64(target))
	u := float64(h>>11) / (1 << 53)
	cat := drawCategory(mix, u)

	country := p.geo.CountryIndex(target)
	rank := p.zipfRank(mix64(mix64(p.seed, uint64(target)), 0xabcd))
	return p.get(poolKey{cat: cat, country: country, rank: rank})
}

// zipfRank draws a Zipf(s)-distributed rank in [0, ranks) from a hash. The
// inverse-CDF of the continuous power law gives rank ~ u^{-1/(s-1)};
// out-of-range draws re-hash (rejection), preserving the tail shape.
func (p *querierPool) zipfRank(h uint64) int {
	for i := 0; i < 64; i++ {
		u := float64(h>>11) / (1 << 53)
		if u == 0 {
			u = 1e-12
		}
		r := int(math.Pow(u, -1/(p.zipfS-1))) - 1
		if r < p.ranks {
			return r
		}
		h = mix64(h, uint64(i)+1)
	}
	return p.ranks - 1
}

// nameOf resolves a querier address back to its reverse name. Unknown
// addresses (never materialized) report as having no name.
func (p *querierPool) nameOf(a ipaddr.Addr) (string, bool) {
	q, ok := p.byAddr[a]
	if !ok {
		return "", false
	}
	return q.Name, q.Category == qname.Unreach
}

// size returns how many queriers have been materialized.
func (p *querierPool) size() int { return len(p.byKey) }
