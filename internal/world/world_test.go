package world

import (
	"math"
	"testing"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/qname"
	"dnsbackscatter/internal/simtime"
)

// smallConfig keeps unit-test worlds quick: ~1 simulated day, modest rates.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = simtime.Day
	cfg.RateScale = 0.3
	return cfg
}

func TestRunProducesBackscatter(t *testing.T) {
	w := New(smallConfig())
	w.Run()
	if len(w.BRoot.Records()) == 0 || len(w.MRoot.Records()) == 0 {
		t.Fatalf("roots empty: b=%d m=%d", len(w.BRoot.Records()), len(w.MRoot.Records()))
	}
	if jp := w.National["jp"]; len(jp.Records()) == 0 {
		t.Fatal("jp national sensor empty")
	}
	if w.QuerierPoolSize() == 0 {
		t.Fatal("no queriers materialized")
	}
}

func TestRunIdempotent(t *testing.T) {
	w := New(smallConfig())
	w.Run()
	n := len(w.BRoot.Records())
	w.Run()
	if len(w.BRoot.Records()) != n {
		t.Error("second Run added records")
	}
}

func TestDeterminism(t *testing.T) {
	a := New(smallConfig())
	b := New(smallConfig())
	a.Run()
	b.Run()
	if len(a.BRoot.Records()) != len(b.BRoot.Records()) {
		t.Fatalf("record counts differ: %d vs %d", len(a.BRoot.Records()), len(b.BRoot.Records()))
	}
	for i := range a.BRoot.Records() {
		if a.BRoot.Records()[i] != b.BRoot.Records()[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if len(a.Campaigns) != len(b.Campaigns) {
		t.Error("campaign populations differ")
	}
}

func TestSeedChangesWorld(t *testing.T) {
	cfg := smallConfig()
	a := New(cfg)
	cfg.Seed = 2
	b := New(cfg)
	a.Run()
	b.Run()
	if len(a.BRoot.Records()) == len(b.BRoot.Records()) {
		// Equal lengths are possible but identical contents are not.
		same := true
		for i := range a.BRoot.Records() {
			if a.BRoot.Records()[i] != b.BRoot.Records()[i] {
				same = false
				break
			}
		}
		if same && len(a.BRoot.Records()) > 0 {
			t.Error("different seeds produced identical logs")
		}
	}
}

func TestTruthCoversAllSensedOriginators(t *testing.T) {
	w := New(smallConfig())
	w.Run()
	for _, r := range w.National["jp"].Records() {
		if _, ok := w.Truth(r.Originator); !ok {
			t.Fatalf("originator %v sensed but not in ground truth", r.Originator)
		}
	}
}

func TestJPSensorOnlySeesJPOriginators(t *testing.T) {
	w := New(smallConfig())
	w.Run()
	for _, r := range w.National["jp"].Records() {
		if got := w.Geo.Country(r.Originator); got != "jp" {
			t.Fatalf("jp sensor saw originator in %q", got)
		}
	}
}

func TestTimestampsInsideSpan(t *testing.T) {
	cfg := smallConfig()
	w := New(cfg)
	w.Run()
	end := cfg.Start.Add(cfg.Duration)
	check := func(recs []dnslog.Record, name string) {
		for _, r := range recs {
			if r.Time.Before(cfg.Start) || !r.Time.Before(end) {
				t.Fatalf("%s record at %v outside [%v, %v)", name, r.Time, cfg.Start, end)
			}
		}
	}
	check(w.BRoot.Records(), "b-root")
	check(w.MRoot.Records(), "m-root")
	check(w.National["jp"].Records(), "jp")
}

func TestQuerierNamesResolvable(t *testing.T) {
	w := New(smallConfig())
	w.Run()
	named, nameless := 0, 0
	seen := make(map[ipaddr.Addr]bool)
	for _, r := range w.BRoot.Records() {
		if seen[r.Querier] {
			continue
		}
		seen[r.Querier] = true
		name, _ := w.QuerierName(r.Querier)
		if name == "" {
			nameless++
		} else {
			named++
			if qname.Classify(name) == qname.Other && len(name) < 3 {
				t.Fatalf("suspicious querier name %q", name)
			}
		}
	}
	if named == 0 {
		t.Fatal("no named queriers in logs")
	}
	// The paper sees 14-19% of queriers without reverse names; the sim
	// should be in a broadly similar band.
	frac := float64(nameless) / float64(named+nameless)
	if frac < 0.05 || frac > 0.45 {
		t.Errorf("nameless querier fraction = %.2f, want 0.05-0.45", frac)
	}
}

func TestRootAttenuation(t *testing.T) {
	w := New(smallConfig())
	w.Run()
	// Roots must see far fewer queries than the sum of what all national
	// registries would: compare root volume against jp volume scaled by
	// jp's share of originators. Cheap proxy: roots see fewer queries per
	// originator than the jp sensor does for jp originators.
	jpSeen := w.National["jp"].Seen()
	rootSeen := w.BRoot.Seen() + w.MRoot.Seen()
	if jpSeen == 0 {
		t.Skip("no jp traffic this seed")
	}
	// jp covers ~25% of originators (JPShare); the roots cover all of
	// them. Without attenuation roots would see ≥4x jp volume.
	if float64(rootSeen) > 3.0*float64(jpSeen)/0.25 {
		t.Errorf("roots saw %d vs jp %d: no evidence of attenuation", rootSeen, jpSeen)
	}
}

func TestMRootPrefersAsia(t *testing.T) {
	w := New(smallConfig())
	w.Run()
	asiaM, asiaB := 0, 0
	for _, r := range w.MRoot.Records() {
		if w.Geo.Region(r.Querier) == "asia" {
			asiaM++
		}
	}
	for _, r := range w.BRoot.Records() {
		if w.Geo.Region(r.Querier) == "asia" {
			asiaB++
		}
	}
	fracM := float64(asiaM) / float64(len(w.MRoot.Records()))
	fracB := float64(asiaB) / float64(len(w.BRoot.Records()))
	if fracM <= fracB {
		t.Errorf("asia fraction at M (%.2f) not above B (%.2f)", fracM, fracB)
	}
}

func TestMSampling(t *testing.T) {
	cfg := smallConfig()
	cfg.MSample = 10
	w := New(cfg)
	w.Run()
	seen := w.MRoot.Seen()
	got := len(w.MRoot.Records())
	want := float64(seen) / 10
	if math.Abs(float64(got)-want) > want*0.02+2 {
		t.Errorf("sampled %d of %d, want ≈%0.f", got, seen, want)
	}
}

func TestScannerTeams(t *testing.T) {
	cfg := smallConfig()
	cfg.Teams = 1 // every scan campaign founds a team
	cfg.ClassPopulation = [activity.NumClasses]int{}
	cfg.ClassPopulation[activity.Scan] = 5
	w := New(cfg)
	w.Run()
	teams := make(map[int][]ipaddr.Addr)
	for a, tr := range w.TruthMap() {
		if tr.Team != 0 {
			teams[tr.Team] = append(teams[tr.Team], a)
		}
	}
	if len(teams) == 0 {
		t.Fatal("no teams formed")
	}
	for id, members := range teams {
		if len(members) < 2 {
			continue
		}
		s24 := members[0].Slash24()
		port := w.TruthMap()[members[0]].Port
		for _, m := range members[1:] {
			if m.Slash24() != s24 {
				t.Errorf("team %d spans /24s", id)
			}
			if w.TruthMap()[m].Port != port {
				t.Errorf("team %d mixes ports", id)
			}
		}
	}
}

func TestBurstIncreasesScanners(t *testing.T) {
	base := smallConfig()
	base.Duration = simtime.Days(3)
	base.ClassPopulation = [activity.NumClasses]int{}
	base.ClassPopulation[activity.Scan] = 10
	base.Teams = 0

	burst := base
	burst.Bursts = []Burst{{
		Class:    activity.Scan,
		Port:     "tcp443",
		Start:    base.Start.Add(simtime.Day),
		Duration: simtime.Days(2),
		Extra:    15,
	}}

	w1, w2 := New(base), New(burst)
	w1.Run()
	w2.Run()
	count := func(w *World) int {
		n := 0
		for _, tr := range w.TruthMap() {
			if tr.Class == activity.Scan {
				n++
			}
		}
		return n
	}
	if count(w2) < count(w1)+10 {
		t.Errorf("burst world has %d scanners vs %d baseline", count(w2), count(w1))
	}
	tcp443 := 0
	for _, tr := range w2.TruthMap() {
		if tr.Port == "tcp443" {
			tcp443++
		}
	}
	if tcp443 < 10 {
		t.Errorf("only %d tcp443 scanners after burst", tcp443)
	}
}

func TestUpdateOriginatorsAreJP(t *testing.T) {
	cfg := smallConfig()
	cfg.ClassPopulation = [activity.NumClasses]int{}
	cfg.ClassPopulation[activity.Update] = 5
	w := New(cfg)
	w.Run()
	for a, tr := range w.TruthMap() {
		if tr.Class == activity.Update && w.Geo.Country(a) != "jp" {
			t.Errorf("update originator %v in %q", a, w.Geo.Country(a))
		}
	}
}

func TestControlledScanGrowsWithSize(t *testing.T) {
	origin := ipaddr.MustParse("198.51.100.77")
	at := simtime.Date(2015, 1, 10, 0, 0)
	var prev int
	fracs := []float64{0.00001, 0.0001, 0.001}
	for _, f := range fracs {
		cfg := smallConfig()
		cfg.ClassPopulation = [activity.NumClasses]int{} // quiet world
		cfg.Start = at
		cfg.Duration = simtime.Days(30) // sensor window covers the scan
		w := New(cfg)
		res := w.ControlledScan(origin, f, 0.002, at)
		if res.FinalQueriers < prev {
			t.Errorf("frac %v: final queriers %d below smaller scan's %d", f, res.FinalQueriers, prev)
		}
		if res.FinalQueriers > 0 && res.RootQueriers > res.FinalQueriers {
			t.Errorf("frac %v: root queriers %d exceed final %d", f, res.RootQueriers, res.FinalQueriers)
		}
		prev = res.FinalQueriers
	}
	if prev == 0 {
		t.Error("largest controlled scan saw no queriers at the final authority")
	}
}

func TestControlledScanSublinear(t *testing.T) {
	origin := ipaddr.MustParse("198.51.100.77")
	at := simtime.Date(2015, 1, 10, 0, 0)
	run := func(frac float64) ScanResult {
		cfg := smallConfig()
		cfg.ClassPopulation = [activity.NumClasses]int{}
		cfg.Start = at
		cfg.Duration = simtime.Days(30)
		w := New(cfg)
		return w.ControlledScan(origin, frac, 0.002, at)
	}
	small := run(0.0001)
	big := run(0.01) // 100x more targets
	if small.FinalQueriers == 0 || big.FinalQueriers == 0 {
		t.Skip("scan too small for this seed")
	}
	growth := float64(big.FinalQueriers) / float64(small.FinalQueriers)
	// Pure linear growth would be 100x; Zipf sharing must compress it.
	if growth > 70 {
		t.Errorf("querier growth %.1fx for 100x targets: not sublinear", growth)
	}
	if growth < 3 {
		t.Errorf("querier growth %.1fx for 100x targets: implausibly flat", growth)
	}
}

func TestValidateAllCampaigns(t *testing.T) {
	w := New(smallConfig())
	w.Run()
	for _, c := range w.Campaigns {
		if err := c.Validate(); err != nil {
			t.Fatalf("world produced invalid campaign: %v", err)
		}
	}
}

func BenchmarkRunDay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := New(smallConfig())
		w.Run()
	}
}

func TestDarknetSeesScanners(t *testing.T) {
	cfg := smallConfig()
	cfg.DarknetSlash8 = 150
	cfg.ClassPopulation = [activity.NumClasses]int{}
	cfg.ClassPopulation[activity.Scan] = 8
	cfg.ClassPopulation[activity.Mail] = 8
	w := New(cfg)
	w.Run()
	if w.Dark == nil {
		t.Fatal("darknet not constructed")
	}
	scanHits, mailHits := 0, 0
	for a, tr := range w.TruthMap() {
		switch tr.Class {
		case activity.Scan:
			scanHits += w.Dark.Hits(a)
		case activity.Mail:
			mailHits += w.Dark.Hits(a)
		}
	}
	if scanHits == 0 {
		t.Error("darknet saw no scanner probes")
	}
	if mailHits > scanHits/10 {
		t.Errorf("darknet mail hits %d rival scan hits %d", mailHits, scanHits)
	}
}
