package world

import (
	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/qname"
)

// classMix is the distribution of querier name categories triggered by one
// application class — who reacts to the activity. These are the shapes of
// Figure 3: scanning wakes shared resolvers, firewalls, and home gateways;
// mail and spam wake mail infrastructure (spam with more anti-spam
// middleboxes); CDN traffic is resolved mostly by home-side resolvers.
// Weights are normalized at init.
type classMix [qname.NumCategories]float64

var classMixes [activity.NumClasses]classMix

func init() {
	set := func(cls activity.Class, pairs map[qname.Category]float64) {
		var m classMix
		total := 0.0
		for cat, wgt := range pairs {
			m[cat] = wgt
			total += wgt
		}
		for i := range m {
			m[i] /= total
		}
		classMixes[cls] = m
	}

	set(activity.Scan, map[qname.Category]float64{
		qname.NS: 28, qname.Home: 20, qname.NXDomain: 17, qname.Other: 13,
		qname.FW: 9, qname.Unreach: 6, qname.Mail: 3, qname.WWW: 2,
		qname.AWS: 1, qname.Antispam: 0.5, qname.NTP: 0.5,
	})
	set(activity.AdTracker, map[qname.Category]float64{
		qname.NS: 38, qname.Home: 17, qname.NXDomain: 15, qname.Other: 14,
		qname.FW: 5, qname.Unreach: 5, qname.Mail: 3, qname.WWW: 2, qname.AWS: 1,
	})
	set(activity.CDN, map[qname.Category]float64{
		qname.Home: 42, qname.NS: 22, qname.NXDomain: 12, qname.Other: 12,
		qname.Unreach: 5, qname.FW: 3, qname.Mail: 2, qname.WWW: 2,
	})
	set(activity.Mail, map[qname.Category]float64{
		qname.Mail: 45, qname.NS: 17, qname.NXDomain: 11, qname.Other: 10,
		qname.Home: 8, qname.Unreach: 4, qname.FW: 2, qname.WWW: 2,
		qname.Antispam: 1,
	})
	set(activity.Spam, map[qname.Category]float64{
		qname.Mail: 38, qname.NS: 16, qname.NXDomain: 15, qname.Home: 11,
		qname.Other: 9, qname.FW: 5, qname.Antispam: 3, qname.Unreach: 3,
	})
	set(activity.Crawler, map[qname.Category]float64{
		qname.NS: 30, qname.Home: 24, qname.NXDomain: 15, qname.Other: 14,
		qname.FW: 8, qname.Unreach: 4, qname.WWW: 3, qname.AWS: 2,
	})
	set(activity.DNSServer, map[qname.Category]float64{
		qname.NS: 50, qname.Other: 15, qname.NXDomain: 12, qname.Home: 10,
		qname.FW: 5, qname.Unreach: 5, qname.Mail: 3,
	})
	set(activity.NTP, map[qname.Category]float64{
		qname.NS: 35, qname.Home: 25, qname.NXDomain: 15, qname.Other: 13,
		qname.FW: 7, qname.Unreach: 5,
	})
	set(activity.P2P, map[qname.Category]float64{
		qname.Home: 45, qname.NXDomain: 20, qname.NS: 15, qname.Other: 12,
		qname.Unreach: 5, qname.FW: 3,
	})
	set(activity.Push, map[qname.Category]float64{
		qname.Home: 35, qname.NS: 30, qname.NXDomain: 15, qname.Other: 12,
		qname.Unreach: 5, qname.FW: 3,
	})
	set(activity.Cloud, map[qname.Category]float64{
		qname.NS: 30, qname.Home: 24, qname.NXDomain: 14, qname.Other: 13,
		qname.WWW: 6, qname.FW: 4, qname.Unreach: 4, qname.AWS: 3,
		qname.Google: 2,
	})
	set(activity.Update, map[qname.Category]float64{
		qname.Home: 40, qname.NS: 25, qname.NXDomain: 15, qname.Other: 12,
		qname.FW: 4, qname.Unreach: 4,
	})
}

// drawCategory picks a querier category from a mix using a uniform draw in
// [0, 1).
func drawCategory(m *classMix, u float64) qname.Category {
	acc := 0.0
	for cat := qname.Category(0); cat < qname.NumCategories; cat++ {
		acc += m[cat]
		if u < acc {
			return cat
		}
	}
	return qname.Other
}

// blendMix interpolates between two class mixes. Campaigns blend their
// class's canonical mix with a random other class's (weight lambda), which
// creates the within-class variance and between-class overlap that keeps
// classification in the paper's 70-80% band rather than at 100%.
func blendMix(base, other *classMix, lambda float64) classMix {
	var out classMix
	for i := range out {
		out[i] = (1-lambda)*base[i] + lambda*other[i]
	}
	return out
}
