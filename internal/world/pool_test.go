package world

import (
	"testing"

	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/geo"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/qname"
	"dnsbackscatter/internal/rng"
)

func newTestPool(seed uint64) *querierPool {
	g := geo.NewRegistry(seed)
	return newQuerierPool(g, rng.NewSource(seed), 4096, 1.4)
}

// TestPoolOrderIndependence: a querier's identity must be a pure function
// of its slot, regardless of the order slots are materialized in.
func TestPoolOrderIndependence(t *testing.T) {
	keys := []poolKey{
		{cat: qname.Mail, country: 3, rank: 0},
		{cat: qname.Home, country: 3, rank: 17},
		{cat: qname.NS, country: 8, rank: 2},
		{cat: qname.FW, country: 1, rank: 99},
	}
	a := newTestPool(42)
	b := newTestPool(42)
	var fromA []ipaddr.Addr
	for _, k := range keys {
		fromA = append(fromA, a.get(k).Addr)
	}
	for i := len(keys) - 1; i >= 0; i-- { // reverse order
		q := b.get(keys[i])
		if q.Addr != fromA[i] {
			t.Fatalf("slot %v: addr %v vs %v depending on order", keys[i], q.Addr, fromA[i])
		}
	}
}

func TestPoolSlotStability(t *testing.T) {
	p := newTestPool(42)
	k := poolKey{cat: qname.Mail, country: 3, rank: 5}
	q1 := p.get(k)
	q2 := p.get(k)
	if q1 != q2 {
		t.Error("same slot returned different queriers")
	}
}

func TestPoolAddressesUnique(t *testing.T) {
	p := newTestPool(42)
	seen := make(map[ipaddr.Addr]poolKey)
	for cat := qname.Category(0); cat < qname.NumCategories; cat++ {
		for rank := 0; rank < 40; rank++ {
			k := poolKey{cat: cat, country: int(rank % 10), rank: rank}
			q := p.get(k)
			if prev, dup := seen[q.Addr]; dup {
				t.Fatalf("address %v shared by %v and %v", q.Addr, prev, k)
			}
			seen[q.Addr] = k
		}
	}
}

func TestPoolNamesMatchCategory(t *testing.T) {
	p := newTestPool(42)
	for cat := qname.Category(0); cat < qname.NumCategories; cat++ {
		q := p.get(poolKey{cat: cat, country: 2, rank: 1})
		got := qname.Classify(q.Name)
		want := cat
		if cat == qname.Unreach {
			want = qname.NXDomain // nameless; unreach is flagged separately
		}
		if got != want {
			t.Errorf("cat %v: name %q classifies as %v", cat, q.Name, got)
		}
	}
}

func TestForTargetStability(t *testing.T) {
	p := newTestPool(42)
	mix := classMixes[activity.Scan]
	target := ipaddr.MustParse("100.50.3.4")
	orig := ipaddr.MustParse("1.2.3.4")
	q1 := p.forTarget(orig, &mix, target)
	q2 := p.forTarget(orig, &mix, target)
	if q1 != q2 {
		t.Error("re-touching a target reached a different querier")
	}
}

func TestForTargetSharing(t *testing.T) {
	// Different originators touching the same target with rank keyed by
	// target should often share queriers via the Zipf popularity draw:
	// verify at least that querier count grows sublinearly in touches.
	p := newTestPool(42)
	mix := classMixes[activity.Scan]
	st := rng.New(9)
	uniq := make(map[ipaddr.Addr]struct{})
	const touches = 5000
	for i := 0; i < touches; i++ {
		target := ipaddr.Addr(st.Uint64())
		q := p.forTarget(ipaddr.MustParse("1.2.3.4"), &mix, target)
		uniq[q.Addr] = struct{}{}
	}
	if len(uniq) >= touches*95/100 {
		t.Errorf("%d touches reached %d queriers: no sharing", touches, len(uniq))
	}
	if len(uniq) < touches/20 {
		t.Errorf("%d touches reached only %d queriers: oversharing", touches, len(uniq))
	}
}

func TestZipfRankDistribution(t *testing.T) {
	p := newTestPool(42)
	st := rng.New(11)
	counts := make(map[int]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		r := p.zipfRank(st.Uint64())
		if r < 0 || r >= p.ranks {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must dominate and the tail must exist.
	if counts[0] < draws/4 {
		t.Errorf("rank 0 drew %d of %d; want heavy head", counts[0], draws)
	}
	tail := 0
	for r, c := range counts {
		if r >= 100 {
			tail += c
		}
	}
	if tail == 0 {
		t.Error("no tail ranks drawn")
	}
}

func TestViolatorRatesByCategory(t *testing.T) {
	p := newTestPool(42)
	violFrac := func(cat qname.Category) float64 {
		n, v := 0, 0
		for rank := 0; rank < 400; rank++ {
			q := p.get(poolKey{cat: cat, country: rank % 8, rank: rank})
			n++
			if q.Resolver.MaxPTRTTL > 0 {
				v++
			}
		}
		return float64(v) / float64(n)
	}
	ns := violFrac(qname.NS)
	fw := violFrac(qname.FW)
	if ns > 0.1 {
		t.Errorf("NS violator fraction %.2f, want ≈0.03", ns)
	}
	if fw < 0.4 {
		t.Errorf("FW violator fraction %.2f, want ≈0.55", fw)
	}
}
