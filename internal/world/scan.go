package world

import (
	"dnsbackscatter/internal/activity"
	"dnsbackscatter/internal/dnslog"
	"dnsbackscatter/internal/dnssim"
	"dnsbackscatter/internal/ipaddr"
	"dnsbackscatter/internal/rng"
	"dnsbackscatter/internal/simtime"
)

// ScanResult summarizes one controlled scan trial (§IV-D / Figure 4).
type ScanResult struct {
	Targets       uint64 // addresses probed
	Reacting      int    // targets that triggered a reverse lookup
	FinalQueries  uint64 // queries arriving at the prober's final authority
	FinalQueriers int    // unique queriers there
	RootQueries   uint64 // queries reaching either root for the prober
	RootQueriers  int    // unique queriers there
}

// ControlledScan reproduces the paper's controlled experiment: probe frac
// of the IPv4 space from origin, with the origin's PTR record published at
// TTL 0 so the final authority sees every triggered lookup. react is the
// per-target probability of triggering a reverse lookup (occupied +
// monitoring targets); the paper's random scans saw ~1 querier per 1000
// targets after querier sharing.
//
// The scan runs over a window proportional to its size (the paper's 0.1%
// scan took 13 hours), which matters for delegation-cache dynamics at the
// upper tree.
func (w *World) ControlledScan(origin ipaddr.Addr, frac, react float64, at simtime.Time) ScanResult {
	final := w.AttachFinal(origin.Slash16())
	w.SetProfile(origin, dnssim.OriginatorProfile{
		HasName: true,
		Name:    "prober." + w.Geo.CCTLD(origin),
		TTL:     0, // disable caching, per the experiment design
	})

	targets := uint64(frac * (1 << 32))
	if targets == 0 {
		targets = 1
	}
	st := rng.New(mix64(w.Cfg.Seed, uint64(origin)^0x5ca9))
	// Only reacting targets generate any DNS work; non-reactors need not
	// be enumerated. The reacting count is a Poisson thinning of the scan.
	m := poissonDraw(st, float64(targets)*react)

	// Scan duration scales with size: ~13 h per 0.1% of the space, with a
	// floor of 10 minutes.
	dur := simtime.Duration(float64(13*simtime.Hour) * frac / 0.001)
	if dur < 10*simtime.Minute {
		dur = 10 * simtime.Minute
	}

	startFinalSeen := final.Seen()
	startB, startM := w.BRoot.Seen(), w.MRoot.Seen()
	finalQ := make(map[ipaddr.Addr]struct{})
	rootQ := make(map[ipaddr.Addr]struct{})
	finalBase := final.Len()
	bBase, mBase := w.BRoot.Len(), w.MRoot.Len()

	for i := 0; i < m; i++ {
		target := ipaddr.Addr(st.Uint64())
		t := at.Add(simtime.Duration(st.Int63() % int64(dur)))
		q := w.pool.forTarget(origin, &classMixes[activity.Scan], target)
		w.Hier.Resolve(q.Resolver, origin, t)
	}

	final.Range(finalBase, func(r dnslog.Record) {
		if r.Originator == origin {
			finalQ[r.Querier] = struct{}{}
		}
	})
	w.BRoot.Range(bBase, func(r dnslog.Record) {
		if r.Originator == origin {
			rootQ[r.Querier] = struct{}{}
		}
	})
	w.MRoot.Range(mBase, func(r dnslog.Record) {
		if r.Originator == origin {
			rootQ[r.Querier] = struct{}{}
		}
	})

	return ScanResult{
		Targets:       targets,
		Reacting:      m,
		FinalQueries:  final.Seen() - startFinalSeen,
		FinalQueriers: len(finalQ),
		RootQueries:   (w.BRoot.Seen() - startB) + (w.MRoot.Seen() - startM),
		RootQueriers:  len(rootQ),
	}
}
